(** The learned fallback predictor: model-file round-trips and rejection,
    training determinism (pinned digests), clean degradation to Ball–Larus
    on bad models, the fallback hook in the pipeline ladder, and the
    held-out fuzzer validation of the committed default model. *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Pipeline = Vrp_core.Pipeline
module Heuristics = Vrp_predict.Heuristics
module Features = Vrp_learn.Features
module Dataset = Vrp_learn.Dataset
module Tree = Vrp_learn.Tree
module Infer = Vrp_learn.Infer
module Ops = Vrp_server.Ops

let tc = Alcotest.test_case

(* The committed default model's training coordinates, pinned end to end:
   seed/count/profile fix the corpus digest, which (with the tree
   parameters) fixes the model bytes. CI's train-smoke job re-derives the
   same digests from a fresh `vrpc train` run. *)
let default_seed = 42
let default_count = 300
let default_depth = 7
let default_min_leaf = 10
let default_corpus_digest = "e54168c946e8dc3dd044c711745360e4"
let default_model_digest = "52da6c8644947fd51f6b8ba8d337ccc6"

let small_model () =
  let ds = Dataset.build ~seed:7 ~count:15 () in
  Tree.train ~depth:4 ~min_leaf:5 ds

(* --- serialization --- *)

let roundtrip_byte_identical () =
  let m = small_model () in
  let bytes = Tree.to_string m in
  match Tree.of_string bytes with
  | Error e -> Alcotest.failf "own serialization rejected: %s" e
  | Ok m' ->
    Alcotest.(check string) "re-serialization is byte-identical" bytes
      (Tree.to_string m');
    Alcotest.(check string) "digest stable" (Tree.digest m) (Tree.digest m')

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let committed_model_matches_embedded () =
  let committed = read_file "../models/default.vrpmodel" in
  Alcotest.(check string) "models/default.vrpmodel = embedded module bytes"
    Vrp_learn.Default_model.data committed;
  let m = Lazy.force Infer.default in
  Alcotest.(check string) "embedded default round-trips byte-identically"
    committed (Tree.to_string m);
  Alcotest.(check string) "pinned model digest" default_model_digest
    (Tree.digest m);
  Alcotest.(check string) "pinned corpus digest" default_corpus_digest
    m.Tree.corpus;
  Alcotest.(check int) "schema version" Features.version m.Tree.schema_version;
  Alcotest.(check int) "feature dimension" Features.dim m.Tree.dim

let corrupt_and_truncated_rejected () =
  let bytes = Tree.to_string (small_model ()) in
  let expect_error what s =
    match Tree.of_string s with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  expect_error "empty model" "";
  expect_error "bad magic" ("vrpmodelx 1\n" ^ bytes);
  (* Flip one byte inside a node line: the trailing MD5 must catch it. *)
  let flipped = Bytes.of_string bytes in
  let pos = String.index bytes 'L' in
  Bytes.set flipped pos 'S';
  expect_error "bit-flipped body" (Bytes.to_string flipped);
  (* Drop the checksum line entirely, then half of it. *)
  let before_md5 = String.length bytes - (String.length (Tree.digest (small_model ())) + 5) in
  expect_error "missing checksum" (String.sub bytes 0 before_md5);
  expect_error "truncated mid-line" (String.sub bytes 0 (String.length bytes - 7));
  (* A verifying checksum over a truncated body must still be rejected:
     re-sign a body whose node list is cut short. *)
  let body_lines = String.split_on_char '\n' bytes in
  let cut = List.filteri (fun i _ -> i < List.length body_lines - 4) body_lines in
  let cut_body = String.concat "\n" cut ^ "\nend\n" in
  expect_error "re-signed truncation"
    (cut_body ^ "md5 " ^ Digest.to_hex (Digest.string cut_body) ^ "\n")

let schema_mismatch_rejected () =
  let m = small_model () in
  let future = Tree.to_string { m with Tree.schema_version = Features.version + 1 } in
  (match Tree.of_string future with
  | Ok _ -> () (* the container accepts any schema; Infer must not *)
  | Error e -> Alcotest.failf "container rejected schema it should defer on: %s" e);
  match Infer.of_string future with
  | Ok _ -> Alcotest.fail "Infer accepted a future feature schema"
  | Error d ->
    Alcotest.(check bool) "kind is model-error" true (d.Diag.kind = Diag.Model_error);
    Alcotest.(check bool) "message names the schema" true
      (Astring.String.is_infix ~affix:"schema" d.Diag.message)

let load_errors_are_structured () =
  match Infer.load "/nonexistent/model.vrpmodel" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error d ->
    Alcotest.(check bool) "kind is model-error" true (d.Diag.kind = Diag.Model_error);
    Alcotest.(check bool) "severity is error" true (d.Diag.severity = Diag.Error)

(* --- degradation: a bad model file must not change the predictions --- *)

let bad_model_degrades_cleanly () =
  let source = (Option.get (Vrp_suite.Suite.find "qsort")).Vrp_suite.Suite.source in
  let plain = Ops.predict ~opts:Ops.default_opts ~source () in
  let bad_opts = { Ops.default_opts with Ops.model = Ops.Model_file "/nonexistent.vrpmodel" } in
  let degraded = Ops.predict ~opts:bad_opts ~source () in
  Alcotest.(check string) "output identical to Ball–Larus run" plain.Ops.out
    degraded.Ops.out;
  Alcotest.(check int) "exit 0 without --strict" 0 degraded.Ops.code;
  let diag =
    Ops.predict ~opts:{ bad_opts with Ops.diagnostics = true; strict = true } ~source ()
  in
  Alcotest.(check bool) "model-error in diagnostics" true
    (Astring.String.is_infix ~affix:"model-error" diag.Ops.err);
  Alcotest.(check int) "exit 3 under --strict" 3 diag.Ops.code

let good_model_changes_legend () =
  let source = (Option.get (Vrp_suite.Suite.find "qsort")).Vrp_suite.Suite.source in
  let opts = { Ops.default_opts with Ops.model = Ops.Default_model } in
  let o = Ops.predict ~opts ~source () in
  Alcotest.(check bool) "legend names the learned model" true
    (Astring.String.is_infix ~affix:"learned-model fallback" o.Ops.out)

(* --- training determinism --- *)

let corpus_digest_job_invariant () =
  let a = Dataset.build ~jobs:1 ~seed:5 ~count:25 () in
  let b = Dataset.build ~jobs:3 ~seed:5 ~count:25 () in
  Alcotest.(check string) "digest invariant under jobs" a.Dataset.digest b.Dataset.digest;
  Alcotest.(check string) "model bytes invariant under jobs"
    (Tree.to_string (Tree.train a))
    (Tree.to_string (Tree.train b));
  let c = Dataset.build ~seed:6 ~count:25 () in
  Alcotest.(check bool) "seed changes the corpus" true
    (a.Dataset.digest <> c.Dataset.digest)

let default_training_reproducible () =
  let ds =
    Dataset.build ~jobs:2 ~seed:default_seed ~count:default_count ()
  in
  Alcotest.(check string) "corpus digest pinned" default_corpus_digest ds.Dataset.digest;
  let m = Tree.train ~depth:default_depth ~min_leaf:default_min_leaf ds in
  Alcotest.(check string) "model digest pinned" default_model_digest (Tree.digest m);
  Alcotest.(check string) "re-training reproduces the committed bytes"
    Vrp_learn.Default_model.data (Tree.to_string m)

let dataset_invariants () =
  let ds = Dataset.build ~seed:11 ~count:20 () in
  Alcotest.(check bool) "nonempty" true (Array.length ds.Dataset.samples > 0);
  Array.iter
    (fun (s : Dataset.sample) ->
      Alcotest.(check int) "feature dimension" Features.dim (Array.length s.Dataset.fv);
      Alcotest.(check bool) "total positive" true (s.Dataset.total > 0);
      Alcotest.(check bool) "taken within total" true
        (s.Dataset.taken >= 0 && s.Dataset.taken <= s.Dataset.total);
      Alcotest.(check bool) "ball-larus per-mille in range" true
        (s.Dataset.bl_pm >= 0 && s.Dataset.bl_pm <= 1000))
    ds.Dataset.samples

(* --- the fallback hook in the pipeline ladder --- *)

let fallback_hook_reaches_bottom_branches () =
  (* A branch on main's parameter: its range is ⊥/unknown, so the paper's
     ladder ends in the fallback tier — which the hook replaces. *)
  let src = "int main(int n, int s) { if (n > 5) { return 1; } return 0; }" in
  let c = Pipeline.compile src in
  let hook ~ctx:_ ~res:_ ~src:_ _ = 0.123 in
  let preds, _ = Pipeline.vrp_predictions ~fallback:hook c.Pipeline.ssa in
  let hit =
    Hashtbl.fold (fun _ p acc -> acc || Float.equal p 0.123) preds false
  in
  Alcotest.(check bool) "hook prediction reached the surface" true hit;
  let plain, _ = Pipeline.vrp_predictions c.Pipeline.ssa in
  let bl_differs =
    Hashtbl.fold
      (fun key p acc ->
        acc || not (Float.equal p (Hashtbl.find preds key)))
      plain false
  in
  Alcotest.(check bool) "default tier is not the hook" true bl_differs

let compare_has_learned_column () =
  let source = (Option.get (Vrp_suite.Suite.find "qsort")).Vrp_suite.Suite.source in
  let o =
    Ops.compare_predictors ~opts:Ops.default_opts ~train:[ 100; 1 ]
      ~ref_args:[ 1000; 2 ] ~source ()
  in
  Alcotest.(check bool) "vrp+learned column present" true
    (Astring.String.is_infix ~affix:"vrp+learned" o.Ops.out);
  Alcotest.(check bool) "vrp+learned mean-error line present" true
    (Astring.String.is_infix ~affix:"mean |error| vrp+learned" o.Ops.out)

(* --- held-out validation: the acceptance bar for the committed model ---

   A corpus whose seed is disjoint from the training seed; the learned
   model must beat Ball–Larus at every §5 error margin on the branches
   both are asked to predict (the ⊥ fallback population), and on mean
   absolute error. *)

let held_out_validation_beats_ball_larus () =
  let model = Lazy.force Infer.default in
  let v = Dataset.build ~jobs:2 ~seed:1234 ~count:120 () in
  let n = Array.length v.Dataset.samples in
  Alcotest.(check bool) "validation corpus nonempty" true (n > 100);
  let errs =
    Array.map
      (fun (s : Dataset.sample) ->
        let actual = float_of_int s.Dataset.taken /. float_of_int s.Dataset.total in
        ( abs_float (Tree.predict model s.Dataset.fv -. actual) *. 100.,
          abs_float ((float_of_int s.Dataset.bl_pm /. 1000.) -. actual) *. 100. ))
      v.Dataset.samples
  in
  let within err m =
    Array.fold_left (fun acc e -> if err e < float_of_int m then acc + 1 else acc) 0 errs
  in
  List.iter
    (fun m ->
      let learned = within fst m and bl = within snd m in
      if learned <= bl then
        Alcotest.failf "margin <%d pp: learned %d of %d, Ball–Larus %d — not strictly better"
          m learned n bl)
    Vrp_evaluation.Error_analysis.margins;
  let mean err = Array.fold_left (fun a e -> a +. err e) 0. errs /. float_of_int n in
  let ml = mean fst and mb = mean snd in
  if ml >= mb then
    Alcotest.failf "mean |error|: learned %.2f pp, Ball–Larus %.2f pp — not lower" ml mb

let suite =
  ( "learn",
    [
      tc "model round-trip is byte-identical" `Quick roundtrip_byte_identical;
      tc "committed model = embedded module, digests pinned" `Quick
        committed_model_matches_embedded;
      tc "corrupt and truncated models rejected" `Quick corrupt_and_truncated_rejected;
      tc "future feature schema rejected by Infer" `Quick schema_mismatch_rejected;
      tc "load errors are structured Model_error diags" `Quick load_errors_are_structured;
      tc "bad model file degrades cleanly to Ball–Larus" `Quick bad_model_degrades_cleanly;
      tc "active model announces itself in the legend" `Quick good_model_changes_legend;
      tc "corpus digest and model bytes invariant under jobs" `Quick
        corpus_digest_job_invariant;
      tc "default training reproduces the committed model" `Slow
        default_training_reproducible;
      tc "dataset samples are well-formed" `Quick dataset_invariants;
      tc "fallback hook reaches bottom branches" `Quick fallback_hook_reaches_bottom_branches;
      tc "compare output has the vrp+learned column" `Quick compare_has_learned_column;
      tc "held-out validation beats Ball-Larus at every margin" `Slow
        held_out_validation_beats_ball_larus;
    ] )
