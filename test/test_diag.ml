(** Diagnostics subsystem tests: report collection and ordering, severity
    accounting, rendering, fault-spec parsing, and the scoped counter
    frames. *)

module Diag = Vrp_diag.Diag
module Counters = Vrp_ranges.Counters

let tc = Alcotest.test_case

let report_collects_in_order () =
  let r = Diag.create () in
  Diag.add r ~fn:"f" ~block:3 Diag.Warning Diag.Budget_exhausted "out of fuel";
  Diag.add r ~fn:"g" Diag.Info Diag.Fallback_heuristic "heuristic";
  Diag.add r Diag.Error Diag.Analysis_crashed "boom";
  Alcotest.(check int) "count" 3 (Diag.count r);
  let kinds = List.map (fun (d : Diag.diag) -> d.Diag.kind) (Diag.to_list r) in
  Alcotest.(check bool) "emission order" true
    (kinds = [ Diag.Budget_exhausted; Diag.Fallback_heuristic; Diag.Analysis_crashed ]);
  Alcotest.(check int) "count_kind" 1 (Diag.count_kind r Diag.Analysis_crashed)

let degraded_tracks_severity () =
  let r = Diag.create () in
  Alcotest.(check bool) "empty not degraded" false (Diag.degraded r);
  Diag.add r Diag.Info Diag.Widened "quota widening";
  Alcotest.(check bool) "info not degraded" false (Diag.degraded r);
  Diag.add r ~fn:"f" Diag.Warning Diag.Timeout "slow";
  Alcotest.(check bool) "warning degrades" true (Diag.degraded r)

let render_mentions_kinds_and_locations () =
  let r = Diag.create () in
  Diag.add r ~fn:"f" ~block:7 Diag.Warning Diag.Budget_exhausted "out of fuel";
  Diag.add r ~fn:"f" ~block:7 Diag.Warning Diag.Budget_exhausted "out of fuel";
  let s = Diag.render r in
  let has frag = Astring.String.is_infix ~affix:frag s in
  Alcotest.(check bool) "kind tag" true (has "[budget-exhausted]");
  Alcotest.(check bool) "location" true (has "f.B7");
  Alcotest.(check bool) "duplicates collapsed" true (has "(×2)");
  Alcotest.(check bool) "summary" true (has "2 diagnostics");
  Alcotest.(check bool) "degraded note" true (has "run degraded")

let fault_parse_roundtrip () =
  let ok spec expected =
    match Diag.Fault.parse spec with
    | Ok f ->
      Alcotest.(check string) spec (Diag.Fault.to_string expected) (Diag.Fault.to_string f)
    | Error msg -> Alcotest.failf "parse %S failed: %s" spec msg
  in
  ok "crash:main" (Diag.Fault.Crash_fn "main");
  ok "fuel:helper" (Diag.Fault.Starve_fuel "helper");
  ok "timeout:f" (Diag.Fault.Timeout_fn "f");
  ok "steps:120" (Diag.Fault.Trip_after 120);
  ok "hang:f" (Diag.Fault.Hang_fn "f");
  ok "flaky:f:3" (Diag.Fault.Flaky_fn ("f", 3));
  ok "crash-file:dir/x.mc" (Diag.Fault.Crash_file "dir/x.mc");
  ok "corrupt-cache:2" (Diag.Fault.Corrupt_cache 2);
  ok "torn-journal:0" (Diag.Fault.Torn_journal 0)

let fault_parse_rejects_garbage () =
  List.iter
    (fun spec ->
      match Diag.Fault.parse spec with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" spec
      | Error msg ->
        Alcotest.(check bool) "message mentions the spec" true
          (Astring.String.is_infix ~affix:spec msg))
    [
      "bogus"; "crash:"; "steps:banana"; "steps:-4"; "explode:f"; "hang:";
      "flaky:f"; "flaky:f:0"; "flaky::2"; "corrupt-cache:0"; "torn-journal:-1";
    ]

(* --- Scoped counter frames --- *)

let analysis_src =
  {|
int main(int n, int s) {
  int acc = 0;
  for (int i = 0; i < 100; i++) { if (i < 50) { acc = acc + i; } }
  return acc;
}
|}

let run_one () =
  let _, fn = Helpers.compile_main analysis_src in
  ignore (Vrp_core.Engine.analyze fn)

let counters_isolate_siblings () =
  let (), a = Counters.with_counters run_one in
  let (), b = Counters.with_counters run_one in
  Alcotest.(check bool) "work counted" true (a.Counters.sub_ops > 0);
  Alcotest.(check bool) "evaluations counted" true (a.Counters.evaluations > 0);
  (* identical deterministic runs in sibling frames: no smearing *)
  Alcotest.(check int) "sibling sub_ops equal" a.Counters.sub_ops b.Counters.sub_ops;
  Alcotest.(check int) "sibling evals equal" a.Counters.evaluations b.Counters.evaluations

let counters_nest () =
  let (inner_figures, outer) =
    Counters.with_counters (fun () ->
        let (), inner = Counters.with_counters run_one in
        run_one ();
        inner)
  in
  Alcotest.(check bool) "outer includes inner" true
    (outer.Counters.sub_ops >= 2 * inner_figures.Counters.sub_ops);
  Alcotest.(check int) "inner is exactly one run"
    (let (), solo = Counters.with_counters run_one in
     solo.Counters.sub_ops)
    inner_figures.Counters.sub_ops

let counters_pop_on_exception () =
  (try
     ignore
       (Counters.with_counters (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* the frame stack must be balanced again: a fresh frame sees only its
     own work *)
  let (), a = Counters.with_counters run_one in
  let (), b = Counters.with_counters (fun () -> ()) in
  Alcotest.(check bool) "fresh frame counts" true (a.Counters.sub_ops > 0);
  Alcotest.(check int) "empty frame is empty" 0 b.Counters.sub_ops

let suite =
  ( "diag",
    [
      tc "report collects in order" `Quick report_collects_in_order;
      tc "degraded tracks severity" `Quick degraded_tracks_severity;
      tc "render mentions kinds and locations" `Quick render_mentions_kinds_and_locations;
      tc "fault parse roundtrip" `Quick fault_parse_roundtrip;
      tc "fault parse rejects garbage" `Quick fault_parse_rejects_garbage;
      tc "counters isolate sibling frames" `Quick counters_isolate_siblings;
      tc "counters nest" `Quick counters_nest;
      tc "counters pop on exception" `Quick counters_pop_on_exception;
    ] )
