(** Range-domain tests: exact progression mathematics, the §3.5 worked
    example, and QCheck soundness properties — membership must be preserved
    by every operation, probability mass conserved, comparison probabilities
    exact against brute force on small ranges. *)

module P = Vrp_ranges.Progression
module Sym = Vrp_ranges.Sym
module Srange = Vrp_ranges.Srange
module Value = Vrp_ranges.Value
module Ast = Vrp_lang.Ast

let tc = Alcotest.test_case

(* --- generators --- *)

let gen_prog : P.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* lo = int_range (-50) 50 in
  let* len = int_range 0 40 in
  let* stride = int_range 1 7 in
  return (P.make lo (lo + len) stride)

let elements (pr : P.t) =
  List.init (P.count pr) (fun i -> pr.P.lo + (i * pr.P.stride))

let gen_value : Value.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n = int_range 1 3 in
  let* progs = list_size (return n) gen_prog in
  let k = List.length progs in
  return
    (Value.of_ranges
       (List.map (fun pr -> Srange.numeric ~p:(1.0 /. float_of_int k) pr) progs))

(* all concrete members of a numeric value *)
let members (v : Value.t) : int list =
  match v with
  | Value.Ranges rs ->
    List.concat_map
      (fun (r : Srange.t) ->
        match Srange.prog r with Some pr -> elements pr | None -> [])
      rs
  | Value.Top | Value.Bottom -> []

let print_value v = Value.to_string v

(* --- exact progression tests --- *)

let prog_count () =
  Alcotest.(check int) "count [0:10:2]" 6 (P.count (P.make 0 10 2));
  Alcotest.(check int) "count singleton" 1 (P.count (P.singleton 5));
  Alcotest.(check int) "count clamps hi" 3 (P.count (P.make 0 7 3))

let prog_mem () =
  let pr = P.make 3 21 3 in
  Alcotest.(check bool) "9 in [3:21:3]" true (P.mem 9 pr);
  Alcotest.(check bool) "10 not in [3:21:3]" false (P.mem 10 pr);
  Alcotest.(check bool) "24 out of bounds" false (P.mem 24 pr)

let prog_count_below () =
  let pr = P.make 0 20 5 in
  Alcotest.(check int) "below 0" 0 (P.count_below pr 0);
  Alcotest.(check int) "below 6" 2 (P.count_below pr 6);
  Alcotest.(check int) "below 100" 5 (P.count_below pr 100)

let prog_common () =
  (* CRT intersection: multiples of 3 and of 4 in [0,100] -> multiples of 12 *)
  Alcotest.(check int) "3-step meets 4-step" 9
    (P.count_common (P.make 0 99 3) (P.make 0 100 4));
  Alcotest.(check int) "disjoint parity" 0 (P.count_common (P.make 0 20 2) (P.make 1 21 2));
  Alcotest.(check int) "offset congruence" 4
    (P.count_common (P.make 1 100 6) (P.make 7 43 12))

let paper_section_3_5_example () =
  (* { 0.7[32:256:1], 0.3[3:21:3] } + { 0.6[16:100:4], 0.4[8:8:0] } *)
  let a =
    Value.of_ranges
      [ Srange.numeric ~p:0.7 (P.make 32 256 1); Srange.numeric ~p:0.3 (P.make 3 21 3) ]
  in
  let b =
    Value.of_ranges
      [ Srange.numeric ~p:0.6 (P.make 16 100 4); Srange.numeric ~p:0.4 (P.make 8 8 0) ]
  in
  Vrp_ranges.Config.with_max_ranges 8 (fun () ->
      match Value.binop Ast.Add a b with
      | Value.Ranges rs ->
        let strs = List.map Srange.to_string rs in
        List.iter
          (fun expected ->
            if not (List.mem expected strs) then
              Alcotest.failf "missing %s in { %s }" expected (String.concat ", " strs))
          [ "0.42[48:356:1]"; "0.28[40:264:1]"; "0.18[19:121:1]"; "0.12[11:29:3]" ]
      | v -> Alcotest.failf "unexpected %s" (print_value v))

let figure4_probabilities () =
  let x = Value.of_ranges [ Srange.numeric ~p:1.0 (P.make 0 10 1) ] in
  (match Value.cmp_prob Ast.Lt x (Value.const_int 10) with
  | Some p -> Helpers.check_prob "P(x<10)" (10.0 /. 11.0) p
  | None -> Alcotest.fail "must be computable");
  let y =
    Value.of_ranges
      [ Srange.numeric ~p:0.8 (P.make 0 7 1); Srange.numeric ~p:0.2 (P.singleton 1) ]
  in
  match Value.cmp_prob Ast.Eq y (Value.const_int 1) with
  | Some p -> Helpers.check_prob "P(y=1)" 0.3 p
  | None -> Alcotest.fail "must be computable"

let narrowing_basics () =
  let x = Value.of_ranges [ Srange.numeric ~p:1.0 (P.make 0 10 1) ] in
  Alcotest.(check string) "narrow <10" "{ 1[0:9:1] }"
    (print_value (Value.assert_narrow x Ast.Lt (Value.const_int 10)));
  Alcotest.(check string) "narrow >7" "{ 1[8:10:1] }"
    (print_value (Value.assert_narrow x Ast.Gt (Value.const_int 7)));
  Alcotest.(check string) "narrow ==3" "{ 1[3:3:0] }"
    (print_value (Value.assert_narrow x Ast.Eq (Value.const_int 3)));
  (* stride-aware: [0:12:3] with >= 4 starts at 6 *)
  let s = Value.of_ranges [ Srange.numeric ~p:1.0 (P.make 0 12 3) ] in
  Alcotest.(check string) "stride-aligned lower trim" "{ 1[6:12:3] }"
    (print_value (Value.assert_narrow s Ast.Ge (Value.const_int 4)))

let narrowing_keeps_contradictions () =
  (* Narrowing to an empty set returns the input unchanged (dead path). *)
  let x = Value.const_int 5 in
  Alcotest.(check string) "contradictory assert is a no-op" "{ 1[5:5:0] }"
    (print_value (Value.assert_narrow x Ast.Gt (Value.const_int 10)))

let symbolic_copy_and_narrow () =
  let v : Vrp_ir.Var.t = { Vrp_ir.Var.id = 0; base = "n"; version = 1; ty = Ast.Tint } in
  let c = Value.copy_of_var v in
  Alcotest.(check string) "copy" "{ 1[n.1:n.1:0] }" (print_value c);
  Alcotest.(check (option bool)) "as_copy" (Some true)
    (Option.map (Vrp_ir.Var.equal v) (Value.as_copy c));
  (* Numeric narrowing replaces the incomparable bound. *)
  let narrowed = Value.assert_narrow c Ast.Ge (Value.const_int 8) in
  Alcotest.(check string) "lo replaced" "{ 1[8:n.1:1] }" (print_value narrowed);
  let narrowed2 = Value.assert_narrow narrowed Ast.Le (Value.const_int 100) in
  Alcotest.(check string) "both sides numeric now" "{ 1[8:100:1] }" (print_value narrowed2)

let symbolic_one_sided_certainty () =
  let v : Vrp_ir.Var.t = { Vrp_ir.Var.id = 0; base = "n"; version = 1; ty = Ast.Tint } in
  let r = Option.get (Srange.make ~p:1.0 ~lo:(Sym.num 1) ~hi:(Sym.of_var v) ~stride:1) in
  let mixed = Value.of_ranges [ r ] in
  (* [1:n] > 0 is certain; [1:n] > 5 is unknown. *)
  (match Value.cmp_prob Ast.Gt mixed (Value.const_int 0) with
  | Some p -> Helpers.check_prob "certainly positive" 1.0 p
  | None -> Alcotest.fail "one-sided certainty must resolve");
  (match Value.cmp_prob Ast.Gt mixed (Value.const_int 5) with
  | None -> ()
  | Some p -> Alcotest.failf "must be unknown, got %f" p);
  (* same-base comparison: [1:n] <= [n:n] is certain *)
  let copy = Value.copy_of_var v in
  match Value.cmp_prob Ast.Le mixed copy with
  | Some p -> Helpers.check_prob "le than own bound" 1.0 p
  | None -> Alcotest.fail "same-base comparison must resolve"

let subst_resolves_bases () =
  let v : Vrp_ir.Var.t = { Vrp_ir.Var.id = 0; base = "n"; version = 1; ty = Ast.Tint } in
  let r = Option.get (Srange.make ~p:1.0 ~lo:(Sym.num 0) ~hi:(Sym.of_var v) ~stride:1) in
  let mixed = Value.of_ranges [ r ] in
  let lookup _ = Value.const_int 10 in
  Alcotest.(check string) "subst singleton" "{ 1[0:10:1] }"
    (print_value (Value.subst ~only_singleton:true mixed ~lookup));
  let lookup_wide _ = Value.of_ranges [ Srange.numeric ~p:1.0 (P.make 5 20 1) ] in
  (* hull substitution takes the loosest bound *)
  Alcotest.(check string) "subst hull" "{ 1[0:20:1] }"
    (print_value (Value.subst mixed ~lookup:lookup_wide));
  (* singleton-only substitution refuses a non-singleton base *)
  Alcotest.(check string) "subst only-singleton refuses" "{ 1[0:n.1:1] }"
    (print_value (Value.subst ~only_singleton:true mixed ~lookup:lookup_wide))

let compaction_respects_budget () =
  let rs = List.init 10 (fun i -> Srange.numeric ~p:0.1 (P.singleton (i * 10))) in
  match Value.union_weighted [ (1.0, Value.of_ranges rs) ] with
  | Value.Ranges out ->
    Alcotest.(check bool) "within budget" true
      (List.length out <= !Vrp_ranges.Config.max_ranges);
    (* all original members must still be covered *)
    List.iteri
      (fun i _ ->
        if not (Helpers.contains_int (Value.Ranges out) (i * 10)) then
          Alcotest.failf "lost member %d" (i * 10))
      rs
  | v -> Alcotest.failf "unexpected %s" (print_value v)

let union_weighted_masses () =
  let a = Value.const_int 1 and b = Value.const_int 2 in
  match Value.union_weighted [ (0.25, a); (0.75, b) ] with
  | Value.Ranges [ r1; r2 ] ->
    Helpers.check_prob "mass 1" 0.25 r1.Srange.p;
    Helpers.check_prob "mass 2" 0.75 r2.Srange.p
  | v -> Alcotest.failf "unexpected %s" (print_value v)

let union_with_bottom_is_bottom () =
  Alcotest.(check bool) "bottom absorbs" true
    (Value.is_bottom (Value.union_weighted [ (0.5, Value.const_int 1); (0.5, Value.bottom) ]))

let cmp_value_materialises () =
  let x = Value.of_ranges [ Srange.numeric ~p:1.0 (P.make 0 9 1) ] in
  match Value.cmp_value Ast.Lt x (Value.const_int 5) with
  | Value.Ranges [ zero; one ] ->
    Helpers.check_prob "P(0)" 0.5 zero.Srange.p;
    Helpers.check_prob "P(1)" 0.5 one.Srange.p
  | v -> Alcotest.failf "unexpected %s" (print_value v)

(* --- QCheck properties --- *)

let brute_prob rel xs ys =
  let holds =
    List.fold_left
      (fun acc x ->
        acc
        + List.length
            (List.filter
               (fun y ->
                 match rel with
                 | Ast.Eq -> x = y
                 | Ast.Ne -> x <> y
                 | Ast.Lt -> x < y
                 | Ast.Le -> x <= y
                 | Ast.Gt -> x > y
                 | Ast.Ge -> x >= y)
               ys))
      0 xs
  in
  float_of_int holds /. float_of_int (List.length xs * List.length ys)

let gen_rel =
  QCheck2.Gen.oneofl [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

let prop_prob_rel_exact =
  Helpers.qtest ~count:500 "prob_rel matches brute force"
    QCheck2.Gen.(triple gen_rel gen_prog gen_prog)
    (fun (rel, a, b) ->
      let got = P.prob_rel rel a b in
      let want = brute_prob rel (elements a) (elements b) in
      Float.abs (got -. want) < 1e-9)

let gen_binop =
  QCheck2.Gen.oneofl
    [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Band; Ast.Bor; Ast.Bxor; Ast.Shl; Ast.Shr ]

let apply_concrete op x y =
  match op with
  | Ast.Add -> Some (x + y)
  | Ast.Sub -> Some (x - y)
  | Ast.Mul -> Some (x * y)
  | Ast.Div -> if y = 0 then None else Some (x / y)
  | Ast.Mod -> if y = 0 then None else Some (x mod y)
  | Ast.Band -> Some (x land y)
  | Ast.Bor -> Some (x lor y)
  | Ast.Bxor -> Some (x lxor y)
  | Ast.Shl -> if y < 0 || y > 40 then None else Some (x lsl y)
  | Ast.Shr -> if y < 0 || y > 40 then None else Some (x asr y)

let prop_binop_sound =
  Helpers.qtest ~count:800 "binop result contains all concrete results"
    QCheck2.Gen.(triple gen_binop gen_value gen_value)
    (fun (op, a, b) ->
      let result = Value.binop op a b in
      List.for_all
        (fun x ->
          List.for_all
            (fun y ->
              match apply_concrete op x y with
              | None -> true (* concrete trap; any result is fine *)
              | Some z -> Helpers.contains_int result z)
            (members b))
        (members a))

let prop_mass_normalised =
  Helpers.qtest ~count:500 "binop preserves unit mass"
    QCheck2.Gen.(triple gen_binop gen_value gen_value)
    (fun (op, a, b) ->
      match Value.binop op a b with
      | Value.Ranges _ as v -> Float.abs (Value.mass v -. 1.0) < 1e-6
      | Value.Top | Value.Bottom -> true)

let prop_narrow_sound =
  Helpers.qtest ~count:800 "assert_narrow keeps every satisfying member"
    QCheck2.Gen.(triple gen_rel gen_value gen_prog)
    (fun (rel, a, bound) ->
      let bv = Value.of_ranges [ Srange.numeric ~p:1.0 bound ] in
      let narrowed = Value.assert_narrow a rel bv in
      let bs = elements bound in
      List.for_all
        (fun x ->
          let satisfiable =
            List.exists
              (fun y ->
                match rel with
                | Ast.Eq -> x = y
                | Ast.Ne -> x <> y
                | Ast.Lt -> x < y
                | Ast.Le -> x <= y
                | Ast.Gt -> x > y
                | Ast.Ge -> x >= y)
              bs
          in
          (not satisfiable) || Helpers.contains_int narrowed x)
        (members a))

let prop_cmp_prob_range =
  Helpers.qtest ~count:500 "cmp_prob stays in [0,1] and complements"
    QCheck2.Gen.(triple gen_rel gen_value gen_value)
    (fun (rel, a, b) ->
      match (Value.cmp_prob rel a b, Value.cmp_prob (Ast.relop_negate rel) a b) with
      | Some p, Some q -> p >= 0.0 && p <= 1.0 && Float.abs (p +. q -. 1.0) < 1e-6
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_union_contains_parts =
  Helpers.qtest ~count:500 "union contains both operands' members"
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) ->
      let u = Value.union_weighted [ (0.5, a); (0.5, b) ] in
      List.for_all (Helpers.contains_int u) (members a)
      && List.for_all (Helpers.contains_int u) (members b))

let prop_unop_sound =
  Helpers.qtest ~count:400 "unop soundness"
    QCheck2.Gen.(pair (oneofl [ Vrp_ir.Ir.Neg; Vrp_ir.Ir.Bnot ]) gen_value)
    (fun (op, a) ->
      let result = Value.unop op a in
      List.for_all
        (fun x ->
          let z = match op with Vrp_ir.Ir.Neg -> -x | Vrp_ir.Ir.Bnot -> lnot x in
          Helpers.contains_int result z)
        (members a))

(* Continuous approximation quality: for large progressions prob_lt switches
   to the closed form; its error against brute force must stay small. *)
let prop_prob_lt_approximation =
  Helpers.qtest ~count:100 "prob_lt continuous approximation is accurate"
    QCheck2.Gen.(pair (int_range (-2000) 2000) (int_range (-2000) 2000))
    (fun (lo1, lo2) ->
      (* ranges wide enough to force the approximation path *)
      let a = P.make lo1 (lo1 + 9000) 1 in
      let b = P.make lo2 (lo2 + 8000) 1 in
      let exact =
        (* brute force via counting formula rather than enumeration *)
        let total = ref 0.0 in
        let v = ref b.P.lo in
        for _ = 1 to P.count b do
          total := !total +. float_of_int (P.count_below a !v);
          v := !v + b.P.stride
        done;
        !total /. (float_of_int (P.count a) *. float_of_int (P.count b))
      in
      Float.abs (P.prob_lt a b -. exact) < 0.01)

let prop_normalize_idempotent =
  Helpers.qtest ~count:300 "normalize is idempotent"
    QCheck2.Gen.(pair gen_value gen_value)
    (fun (a, b) ->
      match Value.union_weighted [ (0.3, a); (0.7, b) ] with
      | Value.Ranges rs as v -> Value.equal v (Value.normalize rs)
      | Value.Top | Value.Bottom -> true)

let prop_narrow_never_gains_mass =
  Helpers.qtest ~count:400 "narrowing keeps unit mass"
    QCheck2.Gen.(triple gen_rel gen_value gen_prog)
    (fun (rel, a, bound) ->
      let bv = Value.of_ranges [ Srange.numeric ~p:1.0 bound ] in
      match Value.assert_narrow a rel bv with
      | Value.Ranges _ as v -> Float.abs (Value.mass v -. 1.0) < 1e-6
      | Value.Top | Value.Bottom -> true)

let prop_cmp_value_consistent_with_cmp_prob =
  Helpers.qtest ~count:300 "cmp_value mass matches cmp_prob"
    QCheck2.Gen.(triple gen_rel gen_value gen_value)
    (fun (rel, a, b) ->
      match (Value.cmp_prob rel a b, Value.cmp_value rel a b) with
      | Some p, Value.Ranges rs ->
        let mass_at_one =
          List.fold_left
            (fun acc (r : Srange.t) ->
              if r.Srange.lo.Sym.off = 1 then acc +. r.Srange.p else acc)
            0.0 rs
        in
        Float.abs (mass_at_one -. p) < 1e-6
      | None, (Value.Bottom | Value.Top) -> true
      | None, _ -> false
      | Some _, (Value.Top | Value.Bottom) -> false)

let ne_narrowing_with_strides () =
  (* [0:12:3] minus the endpoint 12 -> [0:9:3]; minus interior 6 keeps the
     shape but rescales mass *)
  let s = Value.of_ranges [ Srange.numeric ~p:1.0 (P.make 0 12 3) ] in
  Alcotest.(check string) "endpoint removed" "{ 1[0:9:3] }"
    (print_value (Value.assert_narrow s Ast.Ne (Value.const_int 12)));
  match Value.assert_narrow s Ast.Ne (Value.const_int 6) with
  | Value.Ranges [ r ] ->
    Alcotest.(check bool) "same shape" true
      (Srange.same_shape r (Srange.numeric ~p:1.0 (P.make 0 12 3)))
  | v -> Alcotest.failf "unexpected %s" (print_value v)

let mul_singleton_strides () =
  (* [0:10:2] * 3 keeps a stride of 6 *)
  let a = Value.of_ranges [ Srange.numeric ~p:1.0 (P.make 0 10 2) ] in
  Alcotest.(check string) "scaled stride" "{ 1[0:30:6] }"
    (print_value (Value.binop Ast.Mul a (Value.const_int 3)));
  Alcotest.(check string) "shift left" "{ 1[0:40:8] }"
    (print_value (Value.binop Ast.Shl a (Value.const_int 2)))

let mod_stride_residue () =
  (* [4:20:4] mod 8 = {4, 0, 4, 0, 4} -> residue class 0 mod 4 within [0,7] *)
  let a = Value.of_ranges [ Srange.numeric ~p:1.0 (P.make 4 20 4) ] in
  Alcotest.(check string) "residues" "{ 1[0:4:4] }"
    (print_value (Value.binop Ast.Mod a (Value.const_int 8)))

let prop_sym_algebra =
  Helpers.qtest ~count:300 "sym add/sub on numerics"
    QCheck2.Gen.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let sa = Sym.num a and sb = Sym.num b in
      Sym.add sa sb = Some (Sym.num (a + b))
      && Sym.sub sa sb = Some (Sym.num (a - b))
      && Sym.cmp sa sb = Some (Int.compare a b))

(* --- Lattice laws, driven by the fuzzer's value generator ---

   Equality is member-set equality: two values are "the same" when they
   contain exactly the same integers, whatever their internal range lists
   look like. Probes cover the fuzz generator's whole numeric span. *)

let gen_fuzz_value : Value.t QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun seed -> Vrp_fuzz.Gen.value (Vrp_util.Prng.create seed))
    QCheck2.Gen.(int_range 0 1_000_000)

let probes = List.init 601 (fun i -> i - 300)
let vmem = Vrp_fuzz.Oracle.value_contains
let same_members a b = List.for_all (fun n -> vmem a n = vmem b n) probes
let subset_members a b = List.for_all (fun n -> (not (vmem a n)) || vmem b n) probes

let prop_join_commutative =
  Helpers.qtest ~count:300 "lattice: join commutative (member sets)"
    QCheck2.Gen.(pair gen_fuzz_value gen_fuzz_value)
    (fun (a, b) -> same_members (Value.join a b) (Value.join b a))

let prop_join_idempotent =
  Helpers.qtest ~count:300 "lattice: join idempotent (member sets)"
    gen_fuzz_value
    (fun a -> same_members (Value.join a a) a)

let prop_join_associative_sound =
  (* Compaction to the range budget may hull differently per grouping, so
     the two groupings need not be member-identical — but both must contain
     every member of every operand, and each grouping's members must come
     from somewhere: check mutual soundness of the two groupings. *)
  Helpers.qtest ~count:300 "lattice: join associative (mutual soundness)"
    QCheck2.Gen.(triple gen_fuzz_value gen_fuzz_value gen_fuzz_value)
    (fun (a, b, c) ->
      let l = Value.join (Value.join a b) c in
      let r = Value.join a (Value.join b c) in
      List.for_all
        (fun v -> subset_members v l && subset_members v r)
        [ a; b; c ])

let prop_absorption =
  (* Only the soundness direction: compaction inside meet/join may hull
     several progressions together (e.g. [-25:-1:1] and [-24:6:2] into
     [-25:6:1]), so the absorbed value can gain members — but it must
     never lose one of x's. *)
  Helpers.qtest ~count:300 "lattice: absorption keeps every member of x"
    QCheck2.Gen.(pair gen_fuzz_value gen_fuzz_value)
    (fun (a, b) -> subset_members a (Value.meet a (Value.join a b)))

let prop_meet_is_intersection =
  Helpers.qtest ~count:300 "lattice: meet over-approximates intersection"
    QCheck2.Gen.(pair gen_fuzz_value gen_fuzz_value)
    (fun (a, b) ->
      let m = Value.meet a b in
      List.for_all (fun n -> (not (vmem a n && vmem b n)) || vmem m n) probes)

let prop_widen_sound =
  Helpers.qtest ~count:300 "lattice: widen contains next"
    QCheck2.Gen.(pair gen_fuzz_value gen_fuzz_value)
    (fun (prev, b) ->
      let next = Value.join prev b in
      subset_members next (Value.widen ~prev ~next))

let prop_widen_terminates =
  (* Every widened chain strictly descends through at most
     ⊤ → several ranges → one stride-1 hull → lo capped → hi capped → ⊥,
     so from an arbitrary start it changes at most 5 times. *)
  Helpers.qtest ~count:200 "lattice: widening chain changes at most 5 times"
    QCheck2.Gen.(pair gen_fuzz_value (list_size (return 12) gen_fuzz_value))
    (fun (a, bs) ->
      let changes = ref 0 in
      let w = ref a in
      List.iter
        (fun b ->
          let w' = Value.widen ~prev:!w ~next:(Value.join !w b) in
          if not (Value.equal !w w') then incr changes;
          w := w')
        bs;
      !changes <= 5)

(* --- Symbolic algebra v2: Sop / Alg_env laws ---

   Structural equality of Sop terms is semantic equality (normal form), so
   the ring laws are checked structurally; every decided comparison and
   every prover verdict is additionally driven through [Sop.eval] under
   random concrete environments (substitution soundness). *)

module Sop = Vrp_ranges.Sop
module Alg_env = Vrp_ranges.Alg_env

let sop_var i =
  { Vrp_ir.Var.id = i + 1; base = Printf.sprintf "x%d" i; version = 1; ty = Ast.Tint }

let sop_vars = Array.init 4 sop_var

let gen_sop : Sop.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map Sop.const (int_range (-30) 30);
        map (fun i -> Sop.of_var sop_vars.(i)) (int_range 0 (Array.length sop_vars - 1));
      ]
  in
  let rec build n =
    if n = 0 then leaf
    else
      let sub = build (n - 1) in
      oneof
        [
          leaf;
          map2 Sop.add sub sub;
          map2 Sop.sub sub sub;
          map2 Sop.scale (int_range (-5) 5) sub;
          map2
            (fun a b -> match Sop.mul a b with Some p -> p | None -> Sop.add a b)
            sub sub;
        ]
  in
  build 3

let gen_env : (Vrp_ir.Var.t -> int) QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun xs ->
      let arr = Array.of_list xs in
      fun (v : Vrp_ir.Var.t) -> arr.(v.Vrp_ir.Var.id mod Array.length arr))
    QCheck2.Gen.(list_size (return 8) (int_range (-9) 9))

let prop_sop_normal_form =
  Helpers.qtest ~count:500 "sop: normalisation idempotent" gen_sop (fun t ->
      Sop.equal (Sop.add t Sop.zero) t
      && Sop.equal (Sop.scale 1 t) t
      && Sop.equal (Sop.sub t t) Sop.zero
      && Sop.equal (Sop.neg (Sop.neg t)) t)

let prop_sop_add_laws =
  Helpers.qtest ~count:500 "sop: add commutative and associative"
    QCheck2.Gen.(triple gen_sop gen_sop gen_sop)
    (fun (a, b, c) ->
      Sop.equal (Sop.add a b) (Sop.add b a)
      && Sop.equal (Sop.add (Sop.add a b) c) (Sop.add a (Sop.add b c)))

let prop_sop_mul_laws =
  Helpers.qtest ~count:500 "sop: mul commutative, associative, distributive"
    QCheck2.Gen.(triple gen_sop gen_sop gen_sop)
    (fun (a, b, c) ->
      let comm =
        match (Sop.mul a b, Sop.mul b a) with
        | Some p, Some q -> Sop.equal p q
        | None, None -> true
        | _ -> false
      in
      let assoc =
        match (Sop.mul a b, Sop.mul b c) with
        | Some ab, Some bc -> (
          match (Sop.mul ab c, Sop.mul a bc) with
          | Some l, Some r -> Sop.equal l r
          | _ -> true (* the caps may cut either association *))
        | _ -> true
      in
      let distrib =
        match (Sop.mul a (Sop.add b c), Sop.mul a b, Sop.mul a c) with
        | Some l, Some ab, Some ac -> Sop.equal l (Sop.add ab ac)
        | _ -> true
      in
      comm && assoc && distrib)

let prop_sop_cmp_laws =
  Helpers.qtest ~count:500 "sop: cmp antisymmetric and transitive"
    QCheck2.Gen.(triple gen_sop gen_sop gen_sop)
    (fun (a, b, c) ->
      let anti =
        match (Sop.cmp a b, Sop.cmp b a) with
        | Some x, Some y -> y = -x
        | None, None -> true
        | _ -> false
      in
      let trans =
        match (Sop.cmp a b, Sop.cmp b c) with
        | Some x, Some y when x <= 0 && y <= 0 -> (
          match Sop.cmp a c with Some z -> z <= 0 | None -> false)
        | _ -> true
      in
      anti && trans)

let prop_sop_eval_homomorphism =
  Helpers.qtest ~count:500 "sop: eval is a ring homomorphism"
    QCheck2.Gen.(triple gen_env gen_sop gen_sop)
    (fun (env, a, b) ->
      Sop.eval ~env (Sop.add a b) = Sop.eval ~env a + Sop.eval ~env b
      && Sop.eval ~env (Sop.sub a b) = Sop.eval ~env a - Sop.eval ~env b
      && Sop.eval ~env (Sop.neg a) = -Sop.eval ~env a
      &&
      match Sop.mul a b with
      | Some p -> Sop.eval ~env p = Sop.eval ~env a * Sop.eval ~env b
      | None -> true)

let prop_sop_cmp_sound =
  Helpers.qtest ~count:500 "sop: decided cmp agrees with every environment"
    QCheck2.Gen.(triple gen_env gen_sop gen_sop)
    (fun (env, a, b) ->
      match Sop.cmp a b with
      | None -> true
      | Some c -> Int.compare (Sop.eval ~env a) (Sop.eval ~env b) = c)

(* Fact sets consistent by construction: each candidate polynomial is
   oriented to be >= 0 under a ground-truth environment, so the set is
   satisfiable and every prover verdict must hold in that model. *)
let oriented env p = if Sop.eval ~env p >= 0 then p else Sop.neg p

let env_of env polys =
  List.fold_left
    (fun acc p -> Alg_env.add_nonneg acc (oriented env p))
    Alg_env.empty polys

let eval_rel rel x y =
  match rel with
  | Ast.Eq -> x = y
  | Ast.Ne -> x <> y
  | Ast.Lt -> x < y
  | Ast.Le -> x <= y
  | Ast.Gt -> x > y
  | Ast.Ge -> x >= y

let gen_sop_query =
  QCheck2.Gen.(
    oneof
      [
        pair gen_sop gen_sop;
        map2 (fun p k -> (p, Sop.add p (Sop.const k))) gen_sop (int_range (-4) 4);
      ])

let prop_alg_env_sound =
  Helpers.qtest ~count:400 "alg_env: decided queries hold in the model"
    QCheck2.Gen.(quad gen_env (list_size (int_range 0 8) gen_sop) gen_rel gen_sop_query)
    (fun (env, polys, rel, (a, b)) ->
      let aenv = Alg_env.refine (env_of env polys) in
      let holds = eval_rel rel (Sop.eval ~env a) (Sop.eval ~env b) in
      match Alg_env.decide aenv rel a b with
      | Some true -> holds
      | Some false -> not holds
      | None -> true)

let prop_alg_env_monotone =
  Helpers.qtest ~count:400 "alg_env: adding facts never un-decides"
    QCheck2.Gen.(
      pair
        (quad gen_env (list_size (int_range 0 6) gen_sop) gen_rel gen_sop_query)
        (list_size (int_range 0 4) gen_sop))
    (fun ((env, polys, rel, (a, b)), more) ->
      let base = env_of env polys in
      let bigger = Alg_env.refine (env_of env (polys @ more)) in
      match Alg_env.decide base rel a b with
      | None -> true
      | Some r -> Alg_env.decide bigger rel a b = Some r)

let sop_normal_form_examples () =
  let vx = sop_vars.(0) and vy = sop_vars.(1) in
  let x = Sop.of_var vx and y = Sop.of_var vy in
  (* (x+2)(y+3) = xy + 3x + 2y + 6 *)
  (match Sop.mul (Sop.add x (Sop.const 2)) (Sop.add y (Sop.const 3)) with
  | None -> Alcotest.fail "product must stay inside the caps"
  | Some p ->
    Alcotest.(check int) "coeff x" 3 (Sop.coeff_of p [ vx ]);
    Alcotest.(check int) "coeff y" 2 (Sop.coeff_of p [ vy ]);
    Alcotest.(check int) "coeff xy" 1 (Sop.coeff_of p [ vx; vy ]);
    Alcotest.(check int) "const" 6 (Sop.const_part p);
    Alcotest.(check (option int)) "cmp against p+1" (Some (-1))
      (Sop.cmp p (Sop.add p Sop.one)));
  let x2 = Option.get (Sop.mul x x) in
  Alcotest.(check bool) "degree cap refuses x^4" true (Sop.mul x2 x2 = None)

let alg_env_proves_chains () =
  let sx = Sop.of_var sop_vars.(0) and sy = Sop.of_var sop_vars.(1) in
  (* x < y, y <= 11 *)
  let env = Alg_env.add_lt Alg_env.empty sx sy in
  let env = Alg_env.add_le env sy (Sop.const 11) in
  let env = Alg_env.refine env in
  Alcotest.(check (option bool)) "x < 11" (Some true)
    (Alg_env.decide env Ast.Lt sx (Sop.const 11));
  Alcotest.(check (option bool)) "2x+1 <= 21" (Some true)
    (Alg_env.decide env Ast.Le (Sop.add (Sop.scale 2 sx) Sop.one) (Sop.const 21));
  Alcotest.(check (option bool)) "x > 11 refuted" (Some false)
    (Alg_env.decide env Ast.Gt sx (Sop.const 11));
  Alcotest.(check (option bool)) "y < x refuted" (Some false)
    (Alg_env.decide env Ast.Lt sy sx);
  Alcotest.(check (option bool)) "x = 3 undecided" None
    (Alg_env.decide env Ast.Eq sx (Sop.const 3))

let sym_cmp_capped_at_limit () =
  (* The satellite pin for the sym.mli doc contract: same-base comparisons
     decide exactly up to [Sym.limit] and refuse beyond it. *)
  let v = sop_var 6 in
  let at off = Sym.of_var ~off v in
  Alcotest.(check (option int)) "at the limit" (Some 1)
    (Sym.cmp (at Sym.limit) (at (Sym.limit - 1)));
  Alcotest.(check (option int)) "beyond the limit" None
    (Sym.cmp (at (Sym.limit + 1)) (at 0));
  Alcotest.(check (option int)) "numeric beyond the limit" None
    (Sym.cmp (Sym.num (Sym.limit + 1)) (Sym.num 0));
  Alcotest.(check (option int)) "numeric at the limit" (Some 1)
    (Sym.cmp (Sym.num Sym.limit) (Sym.num (-1)))

let suite =
  ( "ranges",
    [
      tc "progression: count" `Quick prog_count;
      tc "progression: mem" `Quick prog_mem;
      tc "progression: count_below" `Quick prog_count_below;
      tc "progression: CRT intersection" `Quick prog_common;
      tc "paper 3.5 addition example" `Quick paper_section_3_5_example;
      tc "figure 4 probabilities" `Quick figure4_probabilities;
      tc "narrowing basics" `Quick narrowing_basics;
      tc "narrowing contradictions" `Quick narrowing_keeps_contradictions;
      tc "symbolic copy and narrowing" `Quick symbolic_copy_and_narrow;
      tc "symbolic one-sided certainty" `Quick symbolic_one_sided_certainty;
      tc "substitution" `Quick subst_resolves_bases;
      tc "compaction respects budget" `Quick compaction_respects_budget;
      tc "union masses" `Quick union_weighted_masses;
      tc "union with bottom" `Quick union_with_bottom_is_bottom;
      tc "cmp materialisation" `Quick cmp_value_materialises;
      tc "ne narrowing with strides" `Quick ne_narrowing_with_strides;
      tc "mul/shl singleton strides" `Quick mul_singleton_strides;
      tc "mod stride residues" `Quick mod_stride_residue;
      prop_prob_rel_exact;
      prop_prob_lt_approximation;
      prop_normalize_idempotent;
      prop_narrow_never_gains_mass;
      prop_cmp_value_consistent_with_cmp_prob;
      prop_binop_sound;
      prop_mass_normalised;
      prop_narrow_sound;
      prop_cmp_prob_range;
      prop_union_contains_parts;
      prop_unop_sound;
      prop_sym_algebra;
      prop_join_commutative;
      prop_join_idempotent;
      prop_join_associative_sound;
      prop_absorption;
      prop_meet_is_intersection;
      prop_widen_sound;
      prop_widen_terminates;
      tc "sop normal-form examples" `Quick sop_normal_form_examples;
      tc "alg_env elimination chains" `Quick alg_env_proves_chains;
      tc "sym cmp capped at limit" `Quick sym_cmp_capped_at_limit;
      prop_sop_normal_form;
      prop_sop_add_laws;
      prop_sop_mul_laws;
      prop_sop_cmp_laws;
      prop_sop_eval_homomorphism;
      prop_sop_cmp_sound;
      prop_alg_env_sound;
      prop_alg_env_monotone;
    ] )
