(** Summary-cache tests: structural digest stability and sensitivity,
    configuration digests, LRU and disk tiers, invalidation accounting, and
    the headline soundness property — cached analysis results are
    indistinguishable from fresh ones. *)

module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Digest_key = Vrp_cache.Digest_key
module Summary_cache = Vrp_cache.Summary_cache
module Batch = Vrp_sched.Batch

let tc = Alcotest.test_case

let src =
  {|
int helper(int k) {
  int acc = 0;
  for (int i = 0; i < 10; i++) { if (i < 7) { acc = acc + 1; } }
  return acc + k;
}
int main(int n, int s) { if (n > 0) { return helper(n); } return helper(s); }
|}

let fn_digests source =
  let c = Helpers.compile source in
  List.map
    (fun (fn : Ir.fn) -> (fn.Ir.fname, Digest_key.fn_digest fn))
    c.Pipeline.ssa.Ir.fns

(* --- Digests --- *)

let digest_stable_across_recompiles () =
  Alcotest.(check (list (pair string string)))
    "two parse->SSA round-trips digest identically" (fn_digests src) (fn_digests src)

let digest_changes_on_ir_edit () =
  let edited = Astring.String.cuts ~sep:"i < 7" src |> String.concat "i < 8" in
  let orig = List.assoc "helper" (fn_digests src) in
  let changed = List.assoc "helper" (fn_digests edited) in
  Alcotest.(check bool) "constant edit changes the digest" true (orig <> changed);
  (* the untouched sibling keeps its digest: per-function granularity *)
  Alcotest.(check string) "main unaffected by helper edit"
    (List.assoc "main" (fn_digests src))
    (List.assoc "main" (fn_digests edited))

let config_digest_covers_every_knob () =
  let d = Engine.default_config in
  let variants =
    [
      ("default", d);
      ("numeric", { d with Engine.symbolic = false });
      ("no-asserts", { d with Engine.use_assertions = false });
      ("no-algebra", { d with Engine.algebra = not d.Engine.algebra });
      ("no-derive", { d with Engine.use_derivation = false });
      ("quota", { d with Engine.eval_quota = d.Engine.eval_quota + 1 });
      ("trip-prior", { d with Engine.trip_prior = d.Engine.trip_prior +. 1.0 });
      ("ssa-first", { d with Engine.flow_first = not d.Engine.flow_first });
      ("fallback", { d with Engine.fallback = Engine.Even });
      ("fuel", { d with Engine.fuel = Some 123456 });
      ("time-limit", { d with Engine.time_limit_s = Some 9.5 });
      ("max-growth", { d with Engine.max_growth = d.Engine.max_growth + 1 });
      ("fault", { d with Engine.fault = Some (Vrp_diag.Diag.Fault.Crash_fn "x") });
    ]
  in
  let digests = List.map (fun (name, c) -> (Digest_key.config_digest c, name)) variants in
  let uniq = List.sort_uniq compare (List.map fst digests) in
  if List.length uniq <> List.length digests then
    Alcotest.failf "config digest collision among: %s"
      (String.concat ", " (List.map snd digests));
  (* the global range budget is part of the configuration identity *)
  Alcotest.(check bool) "max_ranges is in the digest" true
    (Vrp_ranges.Config.with_max_ranges 8 (fun () -> Digest_key.config_digest d)
    <> Digest_key.config_digest d);
  (* a supervision token is non-semantic and must NOT move the digest,
     or every retry attempt would be a spurious miss *)
  Alcotest.(check string) "cancel token is not in the digest"
    (Digest_key.config_digest d)
    (Digest_key.config_digest
       { d with Engine.cancel = Some (Vrp_diag.Diag.Cancel.make ()) })

let task_key_depends_on_inputs () =
  let fnd = List.assoc "helper" (fn_digests src) in
  let cfgd = Digest_key.config_digest Engine.default_config in
  let key ~params ~returns =
    Digest_key.task_key ~fn_digest:fnd ~config_digest:cfgd ~param_values:params
      ~callee_returns:returns
  in
  let v1 = Vrp_ranges.Value.const_int 1 and v2 = Vrp_ranges.Value.const_int 2 in
  Alcotest.(check bool) "param ranges keyed" true
    (key ~params:[ v1 ] ~returns:[] <> key ~params:[ v2 ] ~returns:[]);
  Alcotest.(check bool) "callee returns keyed" true
    (key ~params:[ v1 ] ~returns:[ ("f", v1) ] <> key ~params:[ v1 ] ~returns:[ ("f", v2) ]);
  Alcotest.(check string) "equal inputs, equal key"
    (key ~params:[ v1 ] ~returns:[ ("f", v2) ])
    (key ~params:[ v1 ] ~returns:[ ("f", v2) ])

(* --- Store behaviour --- *)

let some_summary = lazy (Helpers.analyze_main "int main(int n, int s) { return n; }")

let counters_check what (c : Summary_cache.counters) ~hits ~misses ~invalidations =
  Alcotest.(check int) (what ^ ": hits") hits c.Summary_cache.hits;
  Alcotest.(check int) (what ^ ": misses") misses c.Summary_cache.misses;
  Alcotest.(check int) (what ^ ": invalidations") invalidations c.Summary_cache.invalidations

let miss_hit_and_invalidation () =
  let t = Summary_cache.create () in
  let res = Lazy.force some_summary in
  let get ~stamp ~key = Summary_cache.find_or_compute t ~slot:"f" ~stamp ~key (fun () -> res) in
  ignore (get ~stamp:"s1" ~key:"k1");
  counters_check "first lookup" (Summary_cache.counters t) ~hits:0 ~misses:1 ~invalidations:0;
  ignore (get ~stamp:"s1" ~key:"k1");
  counters_check "repeat lookup" (Summary_cache.counters t) ~hits:1 ~misses:1 ~invalidations:0;
  (* same slot under a new stamp: the function changed underneath us *)
  ignore (get ~stamp:"s2" ~key:"k2");
  counters_check "stamp change" (Summary_cache.counters t) ~hits:1 ~misses:2 ~invalidations:1

let lru_evicts_oldest () =
  let t = Summary_cache.create ~memory_capacity:4 () in
  let res = Lazy.force some_summary in
  let get key = ignore (Summary_cache.find_or_compute t ~slot:key ~stamp:"s" ~key (fun () -> res)) in
  List.iter get [ "k1"; "k2"; "k3"; "k4"; "k5" ];
  (* exceeding capacity 4 evicts down to 3 entries: k1 and k2 are gone *)
  get "k5";
  get "k1";
  let c = Summary_cache.counters t in
  Alcotest.(check int) "k5 still cached" 1 c.Summary_cache.hits;
  Alcotest.(check int) "k1 was evicted" 6 c.Summary_cache.misses

let temp_dir () =
  let path = Filename.temp_file "vrpcache" "" in
  Sys.remove path;
  Sys.mkdir path 0o700;
  path

let disk_tier_survives_processes () =
  let dir = temp_dir () in
  let res = Lazy.force some_summary in
  let writer = Summary_cache.create ~disk_dir:dir () in
  ignore (Summary_cache.find_or_compute writer ~slot:"f" ~stamp:"s" ~key:"k1" (fun () -> res));
  (* a fresh store over the same directory models a new process *)
  let reader = Summary_cache.create ~disk_dir:dir () in
  let loaded =
    Summary_cache.find_or_compute reader ~slot:"f" ~stamp:"s" ~key:"k1" (fun () ->
        Alcotest.fail "disk hit expected, compute ran")
  in
  Alcotest.(check string) "same function came back"
    res.Engine.fn.Ir.fname loaded.Engine.fn.Ir.fname;
  Alcotest.(check string) "same return range"
    (Vrp_ranges.Value.to_string res.Engine.return_value)
    (Vrp_ranges.Value.to_string loaded.Engine.return_value);
  let c = Summary_cache.counters reader in
  Alcotest.(check int) "served from disk" 1 c.Summary_cache.disk_hits;
  (* a corrupt entry is a miss, never an error *)
  let oc = open_out_bin (Filename.concat dir "k2.sum") in
  output_string oc "garbage";
  close_out oc;
  let computed = ref false in
  ignore
    (Summary_cache.find_or_compute reader ~slot:"g" ~stamp:"s" ~key:"k2" (fun () ->
         computed := true;
         res));
  Alcotest.(check bool) "corrupt file fell back to compute" true !computed

(* --- Disk-tier integrity: corruption is a counted miss, never a crash --- *)

let entry_path dir key = Filename.concat dir (key ^ ".sum")

(* Write one real entry through the cache, then hand the file to [mangle]
   and assert a fresh store treats the lookup as a recomputing miss with
   the expected invalidation/quarantine accounting. *)
let corruption_case what ~mangle ~quarantined_delta () =
  let dir = temp_dir () in
  let res = Lazy.force some_summary in
  let writer = Summary_cache.create ~disk_dir:dir () in
  ignore (Summary_cache.find_or_compute writer ~slot:"f" ~stamp:"s" ~key:"k1" (fun () -> res));
  mangle (entry_path dir "k1");
  let reader = Summary_cache.create ~disk_dir:dir () in
  let computed = ref false in
  ignore
    (Summary_cache.find_or_compute reader ~slot:"f" ~stamp:"s" ~key:"k1" (fun () ->
         computed := true;
         res));
  Alcotest.(check bool) (what ^ ": fell back to compute") true !computed;
  let c = Summary_cache.counters reader in
  Alcotest.(check int) (what ^ ": one miss") 1 c.Summary_cache.misses;
  Alcotest.(check int) (what ^ ": no hits") 0 c.Summary_cache.hits;
  Alcotest.(check int) (what ^ ": invalidation counted") 1 c.Summary_cache.invalidations;
  Alcotest.(check int) (what ^ ": quarantine accounting") quarantined_delta
    c.Summary_cache.quarantined;
  (* the recomputed entry was rewritten; a third store serves it again *)
  let again = Summary_cache.create ~disk_dir:dir () in
  ignore
    (Summary_cache.find_or_compute again ~slot:"f" ~stamp:"s" ~key:"k1" (fun () ->
         Alcotest.fail (what ^ ": repaired entry should hit")));
  Alcotest.(check int)
    (what ^ ": repaired entry served from disk")
    1 (Summary_cache.counters again).Summary_cache.disk_hits

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let truncated_entry_is_quarantined =
  corruption_case "truncated entry" ~quarantined_delta:1 ~mangle:(fun path ->
      let s = read_file path in
      write_file path (String.sub s 0 (String.length s / 2)))

let bitflip_is_quarantined =
  corruption_case "bit-flipped payload" ~quarantined_delta:1 ~mangle:(fun path ->
      let b = Bytes.of_string (read_file path) in
      let i = Bytes.length b - 3 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      write_file path (Bytes.to_string b))

let wrong_version_is_dropped_not_quarantined =
  (* A clean frame from a future format: no foul play, so it is removed and
     recomputed without quarantine. Framing mirrors the store's layout. *)
  corruption_case "wrong format version" ~quarantined_delta:0 ~mangle:(fun path ->
      let res = Lazy.force some_summary in
      let payload =
        Marshal.to_string (Digest_key.format_version + 1, res) []
      in
      write_file path
        (Printf.sprintf "vrpsum2%08x%s%s" (String.length payload)
           (Digest.to_hex (Digest.string payload))
           payload))

let quarantine_moves_entry_aside () =
  let dir = temp_dir () in
  let res = Lazy.force some_summary in
  let writer = Summary_cache.create ~disk_dir:dir () in
  ignore (Summary_cache.find_or_compute writer ~slot:"f" ~stamp:"s" ~key:"k1" (fun () -> res));
  write_file (entry_path dir "k1") "garbage";
  let reader = Summary_cache.create ~disk_dir:dir () in
  ignore (Summary_cache.find_or_compute reader ~slot:"f" ~stamp:"s" ~key:"k1" (fun () -> res));
  Alcotest.(check bool) "corrupt bytes moved to .bad" true
    (Sys.file_exists (entry_path dir "k1" ^ ".bad"))

let corrupt_cache_fault_round_trip () =
  (* The injected bit-flip happens under the original checksum, so every
     poisoned write must come back as a quarantined miss — and the result
     values must be unaffected because corruption only costs recomputation. *)
  let dir = temp_dir () in
  let sources = [ ("t.mc", src) ] in
  let fresh = Batch.render (Batch.analyze_sources ~jobs:1 sources) in
  let poisoned =
    Summary_cache.create ~disk_dir:dir
      ~fault:(Vrp_diag.Diag.Fault.Corrupt_cache 1) ()
  in
  ignore (Batch.analyze_sources ~cache:poisoned ~jobs:1 sources);
  let reader = Summary_cache.create ~disk_dir:dir () in
  let warm = Batch.render (Batch.analyze_sources ~cache:reader ~jobs:1 sources) in
  Alcotest.(check string) "fully corrupted tier still yields the right report"
    fresh warm;
  let c = Summary_cache.counters reader in
  Alcotest.(check int) "nothing served from the poisoned tier" 0
    c.Summary_cache.disk_hits;
  Alcotest.(check bool) "every disk entry quarantined" true
    (c.Summary_cache.quarantined > 0
    && c.Summary_cache.quarantined = c.Summary_cache.misses)

let maintenance_sweeps_debris_and_evicts () =
  let dir = temp_dir () in
  let res = Lazy.force some_summary in
  let writer = Summary_cache.create ~disk_dir:dir () in
  List.iteri
    (fun i key ->
      ignore
        (Summary_cache.find_or_compute writer ~slot:key ~stamp:"s" ~key (fun () -> res));
      (* age entries deterministically: mtime drives eviction order *)
      let age = float_of_int (1_000_000 + i) in
      Unix.utimes (entry_path dir key) age age)
    [ "k1"; "k2"; "k3" ];
  (* debris a killed writer would leave behind *)
  write_file (Filename.concat dir "k9.sum.tmp.123.4") "partial";
  write_file (Filename.concat dir "k8.sum.bad") "old quarantine";
  Summary_cache.close writer;  (* the writing "process" exits *)
  let entry_size = (Unix.stat (entry_path dir "k1")).Unix.st_size in
  Alcotest.(check bool) "entries are small enough for a 1 MB budget" true
    (3 * entry_size < 1024 * 1024);
  let t = Summary_cache.create ~disk_dir:dir ~max_disk_mb:0 () in
  Alcotest.(check bool) "fresh store took the maintenance lock" true
    (Summary_cache.holds_maintenance_lock t);
  Alcotest.(check bool) "stale tmp swept" false
    (Sys.file_exists (Filename.concat dir "k9.sum.tmp.123.4"));
  Alcotest.(check bool) "old quarantine swept" false
    (Sys.file_exists (Filename.concat dir "k8.sum.bad"));
  (* budget 0 MB: every entry is over budget, oldest deleted first — all go *)
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " evicted") false
        (Sys.file_exists (entry_path dir key)))
    [ "k1"; "k2"; "k3" ]

let eviction_is_oldest_first () =
  let dir = temp_dir () in
  let res = Lazy.force some_summary in
  let writer = Summary_cache.create ~disk_dir:dir () in
  List.iteri
    (fun i key ->
      ignore
        (Summary_cache.find_or_compute writer ~slot:key ~stamp:"s" ~key (fun () -> res));
      let age = float_of_int (1_000_000 + i) in
      Unix.utimes (entry_path dir key) age age)
    [ "k1"; "k2"; "k3"; "k4" ];
  Summary_cache.close writer;
  let entry_size = (Unix.stat (entry_path dir "k1")).Unix.st_size in
  (* a budget that holds roughly half the tier: the two oldest must go *)
  let budget_mb = max 1 (2 * entry_size / (1024 * 1024)) in
  if 4 * entry_size > budget_mb * 1024 * 1024 then begin
    ignore (Summary_cache.create ~disk_dir:dir ~max_disk_mb:budget_mb ());
    Alcotest.(check bool) "oldest entry evicted" false
      (Sys.file_exists (entry_path dir "k1"));
    Alcotest.(check bool) "newest entry kept" true
      (Sys.file_exists (entry_path dir "k4"))
  end

let concurrent_stores_share_a_directory () =
  let dir = temp_dir () in
  let res = Lazy.force some_summary in
  let first = Summary_cache.create ~disk_dir:dir () in
  let second = Summary_cache.create ~disk_dir:dir () in
  Alcotest.(check bool) "first store holds the lock" true
    (Summary_cache.holds_maintenance_lock first);
  Alcotest.(check bool) "second store is denied maintenance" false
    (Summary_cache.holds_maintenance_lock second);
  ignore (Summary_cache.find_or_compute first ~slot:"f" ~stamp:"s" ~key:"k1" (fun () -> res));
  ignore
    (Summary_cache.find_or_compute second ~slot:"f" ~stamp:"s" ~key:"k1" (fun () ->
         Alcotest.fail "second store should read the first store's entry"));
  Alcotest.(check int) "entry flowed across stores" 1
    (Summary_cache.counters second).Summary_cache.disk_hits;
  (* releasing the lock hands maintenance to the next store *)
  Summary_cache.close first;
  let third = Summary_cache.create ~disk_dir:dir () in
  Alcotest.(check bool) "released lock is re-acquirable" true
    (Summary_cache.holds_maintenance_lock third)

(* --- Cached == fresh, end to end --- *)

let warm_run_computes_nothing () =
  let sources = [ ("t.mc", src) ] in
  let fresh = Batch.render (Batch.analyze_sources ~jobs:1 sources) in
  let cache = Summary_cache.create () in
  let cold = Batch.render (Batch.analyze_sources ~cache ~jobs:1 sources) in
  let after_cold = Summary_cache.counters cache in
  let warm = Batch.render (Batch.analyze_sources ~cache ~jobs:1 sources) in
  let after_warm = Summary_cache.counters cache in
  Alcotest.(check string) "cold run matches uncached analysis" fresh cold;
  Alcotest.(check string) "warm run matches uncached analysis" fresh warm;
  Alcotest.(check int) "warm run misses nothing" after_cold.Summary_cache.misses
    after_warm.Summary_cache.misses;
  Alcotest.(check bool) "warm run actually hit" true
    (after_warm.Summary_cache.hits > after_cold.Summary_cache.hits)

let config_change_invalidates () =
  let sources = [ ("t.mc", src) ] in
  let cache = Summary_cache.create () in
  ignore (Batch.analyze_sources ~cache ~jobs:1 sources);
  Alcotest.(check int) "first run sees only fresh slots" 0
    (Summary_cache.counters cache).Summary_cache.invalidations;
  ignore (Batch.analyze_sources ~config:Engine.numeric_only_config ~cache ~jobs:1 sources);
  Alcotest.(check bool) "config flip invalidates every cached function" true
    ((Summary_cache.counters cache).Summary_cache.invalidations > 0)

let cached_equals_fresh_prop =
  Helpers.qtest ~count:15 "synth programs: cached == fresh report"
    QCheck2.Gen.(pair (int_range 4 24) (int_range 0 1_000_000))
    (fun (units, seed) ->
      let sources = [ ("synth.mc", Vrp_suite.Synth.generate ~units ~seed ()) ] in
      let fresh = Batch.render (Batch.analyze_sources ~jobs:1 sources) in
      let cache = Summary_cache.create () in
      ignore (Batch.analyze_sources ~cache ~jobs:1 sources);
      let warm = Batch.render (Batch.analyze_sources ~cache ~jobs:1 sources) in
      String.equal fresh warm
      && (Summary_cache.counters cache).Summary_cache.hits > 0)

let suite =
  ( "cache",
    [
      tc "digest: stable across recompiles" `Quick digest_stable_across_recompiles;
      tc "digest: sensitive to IR edits" `Quick digest_changes_on_ir_edit;
      tc "digest: config knobs all keyed" `Quick config_digest_covers_every_knob;
      tc "digest: task key covers analysis inputs" `Quick task_key_depends_on_inputs;
      tc "store: miss, hit, invalidation" `Quick miss_hit_and_invalidation;
      tc "store: LRU evicts the oldest" `Quick lru_evicts_oldest;
      tc "store: disk tier round-trips" `Quick disk_tier_survives_processes;
      tc "disk: truncated entry quarantined" `Quick truncated_entry_is_quarantined;
      tc "disk: bit-flip quarantined" `Quick bitflip_is_quarantined;
      tc "disk: stale format dropped cleanly" `Quick wrong_version_is_dropped_not_quarantined;
      tc "disk: quarantine preserves evidence" `Quick quarantine_moves_entry_aside;
      tc "disk: corrupt-cache fault round-trip" `Quick corrupt_cache_fault_round_trip;
      tc "disk: maintenance sweeps and evicts" `Quick maintenance_sweeps_debris_and_evicts;
      tc "disk: eviction is oldest-first" `Quick eviction_is_oldest_first;
      tc "disk: two stores share a directory" `Quick concurrent_stores_share_a_directory;
      tc "batch: warm run computes nothing" `Quick warm_run_computes_nothing;
      tc "batch: config change invalidates" `Quick config_change_invalidates;
      cached_equals_fresh_prop;
    ] )
