(** Supervision and checkpoint/resume tests: deadlines contain injected
    hangs (demoting the function, not the batch), retries recover flaky
    tasks, the journal survives torn writes, an interrupted batch resumed
    from its journal is byte-identical to an uninterrupted run, and the
    batch exit-code policy is pinned. *)

module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Batch = Vrp_sched.Batch
module Journal = Vrp_sched.Journal
module Supervisor = Vrp_sched.Supervisor

let tc = Alcotest.test_case

let test_jobs =
  match Sys.getenv_opt "VRP_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with _ -> 3)
  | None -> 3

let srcs =
  [
    ( "one.mc",
      {|
int f(int x) { if (x > 10) { return 1; } return 0; }
int main(int n, int s) {
  int t = 0;
  for (int i = 0; i < n; i++) { t = t + f(i); }
  return t;
}
|}
    );
    ( "two.mc",
      {|
int g(int x) { int y = x; while (y > 0) { y = y - 2; } return y; }
int main(int n, int s) { return g(n); }
|}
    );
    ( "three.mc",
      {|
int h(int a, int b) { if (a < b) { return a; } return b; }
int main(int n, int s) { return h(n, s) + h(s, n); }
|}
    );
  ]

let temp_path suffix =
  let path = Filename.temp_file "vrpsup" suffix in
  Sys.remove path;
  path

let reference = lazy (Batch.render (Batch.analyze_sources ~jobs:1 srcs))

(* --- Deadlines --- *)

let deadline_contains_hang () =
  (* An injected hang beats its heartbeat forever; the monitor must cancel
     it and the escalation ladder must demote exactly that function. *)
  List.iter
    (fun jobs ->
      let config =
        { Engine.default_config with Engine.fault = Some (Diag.Fault.Hang_fn "f") }
      in
      let results =
        Supervisor.with_supervisor
          ~policy:{ Supervisor.default_policy with deadline_ms = Some 150 }
          (fun supervisor ->
            Batch.analyze_sources ~config ~supervisor ~jobs srcs)
      in
      let hung = List.find (fun (r : Batch.file_result) -> r.Batch.name = "one.mc") results in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "jobs=%d: f demoted with a deterministic reason" jobs)
        [ ("f", "deadline exceeded") ]
        hung.Batch.demoted;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d: the file itself survives" jobs)
        true (hung.Batch.error = None);
      List.iter
        (fun (r : Batch.file_result) ->
          if r.Batch.name <> "one.mc" then
            Alcotest.(check (list (pair string string)))
              (r.Batch.name ^ ": untouched") [] r.Batch.demoted)
        results)
    [ 1; test_jobs ]

let hung_run_is_deterministic () =
  (* The demotion reason carries no wall-clock numbers, so the whole
     report is byte-identical across parallelism. *)
  let config =
    { Engine.default_config with Engine.fault = Some (Diag.Fault.Hang_fn "f") }
  in
  let run jobs =
    Supervisor.with_supervisor
      ~policy:{ Supervisor.default_policy with deadline_ms = Some 150 }
      (fun supervisor ->
        Batch.render (Batch.analyze_sources ~config ~supervisor ~jobs srcs))
  in
  Alcotest.(check string) "hung run: jobs=N == jobs=1" (run 1) (run test_jobs)

let deadline_counters_move () =
  let config =
    { Engine.default_config with Engine.fault = Some (Diag.Fault.Hang_fn "f") }
  in
  Supervisor.with_supervisor
    ~policy:{ Supervisor.default_policy with deadline_ms = Some 150 }
    (fun supervisor ->
      ignore (Batch.analyze_sources ~config ~supervisor ~jobs:1 srcs);
      let c = Supervisor.counters supervisor in
      Alcotest.(check int) "one deadline hit" 1 c.Supervisor.deadline_hits;
      Alcotest.(check int) "task gave up (no retries)" 1 c.Supervisor.gave_up)

let unsupervised_results_unaffected () =
  (* Supervision with a generous deadline is a no-op on results. *)
  let rendered =
    Supervisor.with_supervisor
      ~policy:{ Supervisor.default_policy with deadline_ms = Some 60_000; retries = 2 }
      (fun supervisor ->
        Batch.render (Batch.analyze_sources ~supervisor ~jobs:test_jobs srcs))
  in
  Alcotest.(check string) "supervised == plain" (Lazy.force reference) rendered

(* --- Retries --- *)

let retry_recovers_flaky_task () =
  (* Fails the first attempt at f, succeeds on the second: with one retry
     the batch output must be exactly the healthy reference. *)
  let config =
    { Engine.default_config with Engine.fault = Some (Diag.Fault.Flaky_fn ("f", 1)) }
  in
  let rendered, counters =
    Supervisor.with_supervisor
      ~policy:{ Supervisor.default_policy with retries = 1; backoff_ms = 1 }
      (fun supervisor ->
        let r = Batch.analyze_sources ~config ~supervisor ~jobs:1 srcs in
        (Batch.render r, Supervisor.counters supervisor))
  in
  Alcotest.(check string) "flaky task recovered" (Lazy.force reference) rendered;
  Alcotest.(check bool) "at least one retry recorded" true
    (counters.Supervisor.retry_count >= 1);
  Alcotest.(check int) "nothing gave up" 0 counters.Supervisor.gave_up

let exhausted_retries_demote () =
  (* Needs two retries but only gets one: the function is demoted, and the
     demotion reason is the injected failure, not a supervisor artifact. *)
  let config =
    { Engine.default_config with Engine.fault = Some (Diag.Fault.Flaky_fn ("f", 5)) }
  in
  let results, counters =
    Supervisor.with_supervisor
      ~policy:{ Supervisor.default_policy with retries = 1; backoff_ms = 1 }
      (fun supervisor ->
        let r = Batch.analyze_sources ~config ~supervisor ~jobs:1 srcs in
        (r, Supervisor.counters supervisor))
  in
  let hit = List.find (fun (r : Batch.file_result) -> r.Batch.name = "one.mc") results in
  (match hit.Batch.demoted with
  | [ ("f", why) ] ->
    Alcotest.(check bool) "reason names the injected fault" true
      (Astring.String.is_infix ~affix:"flaky" why)
  | d -> Alcotest.failf "expected one demotion of f, got %d" (List.length d));
  Alcotest.(check bool) "gave up after the retry budget" true
    (counters.Supervisor.gave_up >= 1)

(* --- Journal --- *)

let record name payload = { Journal.name; input_digest = "d-" ^ name; payload }

let journal_round_trips () =
  let path = temp_path ".journal" in
  let w = Journal.open_append path in
  Journal.append w (record "a" "payload-a");
  Journal.append w (record "b" "payload-b");
  Journal.close w;
  (* append-only: reopening adds, never rewrites *)
  let w2 = Journal.open_append path in
  Journal.append w2 (record "c" "payload-c");
  Journal.close w2;
  let names = List.map (fun (r : Journal.record) -> r.Journal.name) (Journal.load path) in
  Alcotest.(check (list string)) "all records, append order" [ "a"; "b"; "c" ] names;
  Sys.remove path

let torn_tail_is_ignored () =
  let path = temp_path ".journal" in
  let w = Journal.open_append path in
  Journal.append w (record "a" "payload-a");
  Journal.append w (record "b" "payload-b");
  Journal.close w;
  (* chop bytes off the end: the torn record must vanish, intact ones stay *)
  let ic = open_in_bin path in
  let whole = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub whole 0 (String.length whole - 7));
  close_out oc;
  let names = List.map (fun (r : Journal.record) -> r.Journal.name) (Journal.load path) in
  Alcotest.(check (list string)) "only the intact prefix" [ "a" ] names;
  (* garbage after a tear must not resurrect anything *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "trailing garbage bytes";
  close_out oc;
  Alcotest.(check int) "tear still ends the read" 1 (List.length (Journal.load path));
  Sys.remove path

let missing_journal_is_empty () =
  Alcotest.(check int) "no file, no records" 0
    (List.length (Journal.load (temp_path ".journal")))

(* --- Checkpoint / resume --- *)

let resume_skips_completed_files () =
  let path = temp_path ".journal" in
  (* interrupted run: the journal writer tears after one record, which also
     kills that task — exactly a process dying mid-batch *)
  let torn =
    Batch.analyze_sources ~journal:path
      ~journal_fault:(Diag.Fault.Torn_journal 1) ~jobs:1 srcs
  in
  Alcotest.(check bool) "the torn run lost work" true
    (List.exists (fun (r : Batch.file_result) -> r.Batch.error <> None) torn);
  let checkpointed = List.length (Journal.load path) in
  Alcotest.(check int) "one intact checkpoint survived the tear" 1 checkpointed;
  (* resumed run: replays the checkpoint, re-analyzes the rest *)
  let resumed = Batch.analyze_sources ~journal:path ~jobs:1 srcs in
  Alcotest.(check string) "resumed == uninterrupted, byte for byte"
    (Lazy.force reference) (Batch.render resumed);
  Alcotest.(check int) "exactly the checkpointed files were skipped"
    checkpointed
    (Batch.aggregate resumed).Batch.resumed_files;
  (* a second resume now replays everything *)
  let again = Batch.analyze_sources ~journal:path ~jobs:test_jobs srcs in
  Alcotest.(check string) "full resume still byte-identical"
    (Lazy.force reference) (Batch.render again);
  Alcotest.(check int) "every file came from the journal" (List.length srcs)
    (Batch.aggregate again).Batch.resumed_files;
  Sys.remove path

let changed_source_is_reanalyzed () =
  let path = temp_path ".journal" in
  ignore (Batch.analyze_sources ~journal:path ~jobs:1 srcs);
  let edited =
    List.map
      (fun (name, src) ->
        if name = "two.mc" then
          (name, Astring.String.cuts ~sep:"y - 2" src |> String.concat "y - 3")
        else (name, src))
      srcs
  in
  let results = Batch.analyze_sources ~journal:path ~jobs:1 edited in
  let by_name n = List.find (fun (r : Batch.file_result) -> r.Batch.name = n) results in
  Alcotest.(check bool) "edited file re-analyzed" false (by_name "two.mc").Batch.resumed;
  Alcotest.(check bool) "untouched file replayed" true (by_name "one.mc").Batch.resumed;
  Alcotest.(check string) "report matches a fresh run of the edited corpus"
    (Batch.render (Batch.analyze_sources ~jobs:1 edited))
    (Batch.render results);
  Sys.remove path

let config_change_is_reanalyzed () =
  let path = temp_path ".journal" in
  ignore (Batch.analyze_sources ~journal:path ~jobs:1 srcs);
  let results =
    Batch.analyze_sources ~config:Engine.numeric_only_config ~journal:path ~jobs:1 srcs
  in
  Alcotest.(check int) "different config replays nothing" 0
    (Batch.aggregate results).Batch.resumed_files;
  Sys.remove path

let crashed_task_is_not_checkpointed () =
  let path = temp_path ".journal" in
  let config =
    { Engine.default_config with Engine.fault = Some (Diag.Fault.Crash_file "two") }
  in
  let crashed = Batch.analyze_sources ~config ~journal:path ~jobs:1 srcs in
  Alcotest.(check int) "the crash cost exactly one file" 1
    (Batch.aggregate crashed).Batch.failed_files;
  Alcotest.(check int) "only clean completions were checkpointed" 2
    (List.length (Journal.load path));
  (* resume without the fault: the crashed file is re-analyzed, healed *)
  let resumed = Batch.analyze_sources ~journal:path ~jobs:1 srcs in
  Alcotest.(check string) "healed resume == healthy reference"
    (Lazy.force reference) (Batch.render resumed);
  Sys.remove path

(* --- Exit codes --- *)

let exit_codes_pinned () =
  let healthy = Batch.analyze_sources ~jobs:1 srcs in
  Alcotest.(check int) "clean run, plain" 0 (Batch.exit_code ~strict:false healthy);
  Alcotest.(check int) "clean run, strict" 0 (Batch.exit_code ~strict:true healthy);
  let crashed =
    Batch.analyze_sources
      ~config:
        { Engine.default_config with Engine.fault = Some (Diag.Fault.Crash_file "two") }
      ~jobs:1 srcs
  in
  Alcotest.(check int) "failed file, plain" 2 (Batch.exit_code ~strict:false crashed);
  Alcotest.(check int) "failed file beats strict" 2 (Batch.exit_code ~strict:true crashed);
  let degraded =
    Batch.analyze_sources
      ~config:
        { Engine.default_config with Engine.fault = Some (Diag.Fault.Crash_fn "f") }
      ~jobs:1 srcs
  in
  Alcotest.(check int) "degraded, plain" 0 (Batch.exit_code ~strict:false degraded);
  Alcotest.(check int) "degraded, strict" 3 (Batch.exit_code ~strict:true degraded)

let suite =
  ( "supervisor",
    [
      tc "deadline: hang contained, function demoted" `Quick deadline_contains_hang;
      tc "deadline: hung run byte-identical across jobs" `Quick hung_run_is_deterministic;
      tc "deadline: counters record the hit" `Quick deadline_counters_move;
      tc "supervision: no-op on healthy runs" `Quick unsupervised_results_unaffected;
      tc "retry: flaky task recovered" `Quick retry_recovers_flaky_task;
      tc "retry: exhausted budget demotes" `Quick exhausted_retries_demote;
      tc "journal: records round-trip" `Quick journal_round_trips;
      tc "journal: torn tail ignored" `Quick torn_tail_is_ignored;
      tc "journal: missing file is empty" `Quick missing_journal_is_empty;
      tc "resume: skips completed, byte-identical" `Quick resume_skips_completed_files;
      tc "resume: edited source re-analyzed" `Quick changed_source_is_reanalyzed;
      tc "resume: config change re-analyzed" `Quick config_change_is_reanalyzed;
      tc "resume: crashes are never checkpointed" `Quick crashed_task_is_not_checkpointed;
      tc "exit codes: 0 / 2 / 3 pinned" `Quick exit_codes_pinned;
    ] )
