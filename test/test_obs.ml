(** Observability tests: Prometheus exposition correctness (escaping,
    histogram bucket discipline, idempotent re-render), registry cell
    semantics (find-or-create identity, kind mismatch, cross-domain
    counter sharding), the span tracer (disabled cost, parent links, ring
    overflow, Chrome-trace export), and the two end-to-end invariants —
    analysis output is byte-identical with tracing on, and the aggregated
    engine counters are deterministic across pool widths. *)

module Metrics = Vrp_obs.Metrics
module Trace = Vrp_obs.Trace
module Json = Vrp_server.Json
module Ops = Vrp_server.Ops
module Wavefront = Vrp_sched.Wavefront
module Pipeline = Vrp_core.Pipeline

let tc = Alcotest.test_case
let contains s affix = Astring.String.is_infix ~affix s

let lines_of s = String.split_on_char '\n' s

(* The numeric sample of a rendered series, e.g.
   [series_value text {|foo_bucket{le="+Inf"}|}]. *)
let series_value text series =
  let prefix = series ^ " " in
  lines_of text
  |> List.find_map (fun line ->
         if String.length line >= String.length prefix
            && String.sub line 0 (String.length prefix) = prefix
         then
           Some
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix))
         else None)

let series_int text series =
  match series_value text series with
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> n
    | None -> Alcotest.failf "series %s: non-integer sample %s" series v)
  | None -> Alcotest.failf "series %s not rendered" series

(* --- Exposition --- *)

let exposition_basics () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r ~help:"Things counted" "test_things_total" in
  Metrics.inc c;
  Metrics.inc ~by:41 c;
  let g = Metrics.gauge ~registry:r "test_level" in
  Metrics.set g 2.0;
  let text = Metrics.render ~registry:r () in
  Alcotest.(check bool) "HELP line" true
    (contains text "# HELP test_things_total Things counted\n");
  Alcotest.(check bool) "TYPE counter" true
    (contains text "# TYPE test_things_total counter\n");
  Alcotest.(check bool) "TYPE gauge" true
    (contains text "# TYPE test_level gauge\n");
  Alcotest.(check int) "counter sample" 42 (series_int text "test_things_total");
  (* Gauges render as floats; integral values get a trailing .0 so the
     sample is unambiguously a float to downstream parsers. *)
  Alcotest.(check (option string)) "gauge sample" (Some "2.0")
    (series_value text "test_level");
  Metrics.set g 2.5;
  Alcotest.(check (option string)) "gauge fraction" (Some "2.5")
    (series_value (Metrics.render ~registry:r ()) "test_level")

let label_escaping () =
  let r = Metrics.create () in
  let c =
    Metrics.counter ~registry:r
      ~help:"line one\nline two with \\ backslash"
      ~labels:[ ("path", "a\\b\"c\nd") ]
      "test_labeled_total"
  in
  Metrics.inc c;
  let text = Metrics.render ~registry:r () in
  Alcotest.(check bool) "label value escaped" true
    (contains text {|test_labeled_total{path="a\\b\"c\nd"} 1|});
  Alcotest.(check bool) "help newline escaped" true
    (contains text {|# HELP test_labeled_total line one\nline two with \\ backslash|})

let series_sorted_by_labels () =
  let r = Metrics.create () in
  (* Registered out of order; the exposition must sort by (name, labels)
     under one TYPE header so scrapers see a single well-formed family. *)
  Metrics.inc (Metrics.counter ~registry:r ~labels:[ ("op", "predict") ] "test_ops_total");
  Metrics.inc (Metrics.counter ~registry:r ~labels:[ ("op", "batch") ] "test_ops_total");
  Metrics.inc (Metrics.counter ~registry:r "test_aaa_total");
  let text = Metrics.render ~registry:r () in
  let idx affix =
    match Astring.String.find_sub ~sub:affix text with
    | Some i -> i
    | None -> Alcotest.failf "missing %s" affix
  in
  Alcotest.(check bool) "names sorted" true
    (idx "test_aaa_total" < idx "test_ops_total");
  Alcotest.(check bool) "labels sorted" true
    (idx {|test_ops_total{op="batch"}|} < idx {|test_ops_total{op="predict"}|});
  (* One TYPE header per family, not per series. *)
  let headers =
    lines_of text
    |> List.filter (fun l -> l = "# TYPE test_ops_total counter")
  in
  Alcotest.(check int) "one TYPE header" 1 (List.length headers)

let histogram_exposition () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~buckets:[ 1.0; 2.0; 5.0 ] "test_lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 10.0 ];
  let text = Metrics.render ~registry:r () in
  Alcotest.(check bool) "TYPE histogram" true
    (contains text "# TYPE test_lat histogram\n");
  (* Cumulative buckets: each le bound counts everything at or below it. *)
  Alcotest.(check int) "le=1" 1 (series_int text {|test_lat_bucket{le="1.0"}|});
  Alcotest.(check int) "le=2" 2 (series_int text {|test_lat_bucket{le="2.0"}|});
  Alcotest.(check int) "le=5" 2 (series_int text {|test_lat_bucket{le="5.0"}|});
  Alcotest.(check int) "le=+Inf" 3 (series_int text {|test_lat_bucket{le="+Inf"}|});
  Alcotest.(check int) "_count = +Inf" 3 (series_int text "test_lat_count");
  Alcotest.(check (option string)) "_sum" (Some "12.0")
    (series_value text "test_lat_sum");
  (* Bucket monotonicity over the rendered lines themselves. *)
  let bucket_counts =
    lines_of text
    |> List.filter_map (fun l ->
           if String.length l > 16 && String.sub l 0 16 = "test_lat_bucket{" then
             match String.rindex_opt l ' ' with
             | Some i ->
               int_of_string_opt
                 (String.sub l (i + 1) (String.length l - i - 1))
             | None -> None
           else None)
  in
  Alcotest.(check int) "bucket lines" 4 (List.length bucket_counts);
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "cumulative non-decreasing" true (monotone bucket_counts);
  Alcotest.(check int) "hist_count" 3 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "hist_sum" 12.0 (Metrics.hist_sum h)

let idempotent_rerender () =
  let r = Metrics.create () in
  Metrics.inc ~by:7 (Metrics.counter ~registry:r "test_again_total");
  Metrics.observe (Metrics.histogram ~registry:r ~buckets:[ 1.0 ] "test_h") 0.5;
  Metrics.set (Metrics.gauge ~registry:r "test_g") 3.25;
  let a = Metrics.render ~registry:r () in
  let b = Metrics.render ~registry:r () in
  Alcotest.(check string) "render is a pure read" a b

let find_or_create_identity () =
  let r = Metrics.create () in
  let a = Metrics.counter ~registry:r ~labels:[ ("k", "v") ] "test_same_total" in
  let b = Metrics.counter ~registry:r ~labels:[ ("k", "v") ] "test_same_total" in
  Metrics.inc a;
  Metrics.inc b;
  (* Same (name, labels) resolves to the same cell: definitions can live
     at their use sites without double counting. *)
  Alcotest.(check int) "one cell" 2 (Metrics.value a);
  let other = Metrics.counter ~registry:r ~labels:[ ("k", "w") ] "test_same_total" in
  Alcotest.(check int) "different labels, different cell" 0 (Metrics.value other);
  (match Metrics.gauge ~registry:r "test_same_total" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  Metrics.reset_counter a;
  Alcotest.(check int) "reset_counter zeroes" 0 (Metrics.value a);
  Metrics.inc other;
  Metrics.reset ~registry:r ();
  Alcotest.(check int) "reset zeroes all" 0 (Metrics.value other)

let sharded_counter_across_domains () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "test_shards_total" in
  let per_domain = 10_000 in
  let body () = for _ = 1 to per_domain do Metrics.inc c done in
  let domains = List.init 4 (fun _ -> Domain.spawn body) in
  body ();
  List.iter Domain.join domains;
  (* Five domains hammering one counter concurrently: the per-domain
     shards mean no increment is ever lost. *)
  Alcotest.(check int) "no lost increments" (5 * per_domain) (Metrics.value c)

(* --- Tracer --- *)

let tracer_disabled_no_events () =
  Trace.enable ~capacity:16 ();
  Trace.disable ();
  Trace.reset ();
  let v = Trace.with_span "ghost" (fun () -> 41 + 1) in
  Alcotest.(check int) "body ran" 42 v;
  Alcotest.(check int) "no events" 0 (List.length (Trace.events ()));
  Alcotest.(check bool) "disabled" false (Trace.enabled ())

let tracer_nesting_parent_links () =
  Trace.enable ~capacity:64 ();
  Fun.protect ~finally:Trace.disable (fun () ->
      Trace.with_span "outer" ~args:[ ("k", "v") ] (fun () ->
          Trace.with_span "inner" (fun () -> ());
          Trace.with_span "inner2" (fun () -> ()));
      match Trace.events () with
      | [ i1; i2; o ] ->
        (* Children complete (and are recorded) before their parent. *)
        Alcotest.(check string) "first child" "inner" i1.Trace.name;
        Alcotest.(check string) "second child" "inner2" i2.Trace.name;
        Alcotest.(check string) "parent last" "outer" o.Trace.name;
        Alcotest.(check int) "inner links outer" o.Trace.id i1.Trace.parent;
        Alcotest.(check int) "inner2 links outer" o.Trace.id i2.Trace.parent;
        Alcotest.(check int) "outer is a root" 0 o.Trace.parent;
        Alcotest.(check (list (pair string string))) "args carried"
          [ ("k", "v") ] o.Trace.args;
        Alcotest.(check bool) "durations non-negative" true
          (List.for_all (fun e -> e.Trace.dur_us >= 0.0) [ i1; i2; o ])
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let tracer_span_closed_on_raise () =
  Trace.enable ~capacity:64 ();
  Fun.protect ~finally:Trace.disable (fun () ->
      (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
      (* The raising span was recorded and popped: a sibling opened after
         it must not inherit it as parent. *)
      Trace.with_span "after" (fun () -> ());
      match Trace.events () with
      | [ b; a ] ->
        Alcotest.(check string) "raised span recorded" "boom" b.Trace.name;
        Alcotest.(check int) "sibling is a root" 0 a.Trace.parent
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let tracer_ring_overflow () =
  Trace.enable ~capacity:16 ();
  Fun.protect ~finally:Trace.disable (fun () ->
      for i = 1 to 20 do
        Trace.with_span (Printf.sprintf "s%d" i) (fun () -> ())
      done;
      let evs = Trace.events () in
      Alcotest.(check int) "ring holds capacity" 16 (List.length evs);
      Alcotest.(check int) "overwrites counted" 4 (Trace.dropped ());
      (* Oldest four were overwritten: the survivors start at s5. *)
      Alcotest.(check string) "oldest survivor" "s5" (List.hd evs).Trace.name;
      Alcotest.(check string) "newest last" "s20"
        (List.nth evs 15).Trace.name)

let tracer_export_parses () =
  Trace.enable ~capacity:64 ();
  Fun.protect ~finally:Trace.disable (fun () ->
      Trace.with_span "root" (fun () ->
          Trace.with_span "leaf" ~args:[ ("fn", "a\"b") ] (fun () -> ()));
      let doc = Trace.export () in
      match Json.parse doc with
      | Error msg -> Alcotest.failf "export is not JSON: %s" msg
      | Ok j -> (
        match Json.mem_list "traceEvents" j with
        | None -> Alcotest.fail "no traceEvents array"
        | Some evs ->
          Alcotest.(check int) "two events" 2 (List.length evs);
          List.iter
            (fun e ->
              Alcotest.(check (option string)) "complete event" (Some "X")
                (Json.mem_string "ph" e);
              match Json.member "args" e with
              | Some args ->
                if Json.mem_string "span_id" args = None then
                  Alcotest.fail "no span_id in args"
              | None -> Alcotest.fail "no args")
            evs;
          Alcotest.(check (option string)) "time unit" (Some "ms")
            (Json.mem_string "displayTimeUnit" j)))

(* --- End-to-end invariants --- *)

let obs_src =
  {|
int depth(int n) {
  int d = 0;
  while (n > 1) { n = n / 2; d = d + 1; }
  return d;
}
int scale(int k) {
  int acc = 0;
  for (int i = 0; i < 16; i++) { if (i < k) { acc = acc + depth(i); } }
  return acc;
}
int main(int a, int b) {
  if (a > b) { return scale(a); }
  return scale(b) + depth(a);
}
|}

(* The headline instrumentation contract: tracing must not perturb the
   analysis. Output with spans recording is byte-identical to output with
   the tracer off. *)
let predict_byte_identical_traced () =
  let want = Ops.predict ~opts:Ops.default_opts ~source:obs_src () in
  Trace.enable ();
  let got =
    Fun.protect ~finally:Trace.disable (fun () ->
        Ops.predict ~opts:Ops.default_opts ~source:obs_src ())
  in
  Alcotest.(check string) "stdout byte-identical" want.Ops.out got.Ops.out;
  Alcotest.(check string) "stderr byte-identical" want.Ops.err got.Ops.err;
  Alcotest.(check int) "code identical" want.Ops.code got.Ops.code;
  (* And the run actually produced a span tree: per-phase roots with the
     per-function engine spans below them. *)
  let evs = Trace.events () in
  let names = List.map (fun e -> e.Trace.name) evs in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "no %s span" n)
    [ "compile"; "interproc"; "engine"; "wave" ];
  List.iter
    (fun e ->
      if e.Trace.name = "engine" && e.Trace.parent = 0 then
        Alcotest.fail "engine span has no parent")
    evs

(* The migrated Counters frames aggregate per-domain registry shards; the
   totals must not depend on the pool width (same analysis, same counts —
   the counter companion to byte-identical output). *)
let four_job_counter_determinism () =
  let program = (Helpers.compile obs_src).Pipeline.ssa in
  let names =
    [
      "vrp_engine_runs_total";
      "vrp_engine_evaluations_total";
      "vrp_engine_sub_ops_total";
      "vrp_engine_widenings_total";
      "vrp_engine_fuel_exhaustions_total";
    ]
  in
  let cells = List.map Metrics.counter names in
  let deltas jobs =
    let before = List.map Metrics.value cells in
    ignore (Wavefront.analyze ~jobs program);
    List.map2 (fun c b -> Metrics.value c - b) cells before
  in
  let seq = deltas 1 in
  let par = deltas 4 in
  Alcotest.(check bool) "sequential run counted work" true
    (List.nth seq 2 > 0 && List.nth seq 0 > 0);
  List.iteri
    (fun i name ->
      Alcotest.(check int)
        (Printf.sprintf "%s delta (jobs 1 vs 4)" name)
        (List.nth seq i) (List.nth par i))
    names

let suite =
  ( "obs",
    [
      tc "exposition basics" `Quick exposition_basics;
      tc "label + help escaping" `Quick label_escaping;
      tc "series sorted, one TYPE header" `Quick series_sorted_by_labels;
      tc "histogram buckets + _sum/_count" `Quick histogram_exposition;
      tc "idempotent re-render" `Quick idempotent_rerender;
      tc "find-or-create identity + kind mismatch" `Quick find_or_create_identity;
      tc "counter sharded across domains" `Quick sharded_counter_across_domains;
      tc "tracer disabled records nothing" `Quick tracer_disabled_no_events;
      tc "span nesting + parent links" `Quick tracer_nesting_parent_links;
      tc "span closed on raise" `Quick tracer_span_closed_on_raise;
      tc "ring overflow drops oldest" `Quick tracer_ring_overflow;
      tc "chrome trace export parses" `Quick tracer_export_parses;
      tc "predict byte-identical under tracing" `Quick predict_byte_identical_traced;
      tc "engine counters deterministic at 4 jobs" `Quick four_job_counter_determinism;
    ] )
