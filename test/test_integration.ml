(** Whole-pipeline integration tests over the benchmark suite, including
    the two global soundness properties that tie the static analysis to the
    dynamic semantics:

    - {b certainty soundness}: a branch VRP predicts with probability
      exactly 0 or 1 (without heuristic fallback) must behave exactly that
      way in every execution;
    - {b return soundness}: analysing [main] with its concrete arguments as
      singleton parameter ranges must yield a return range containing the
      actually returned value.

    Plus the paper's headline shape claims over the measured figures and the
    linearity of the propagator. *)

module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Interp = Vrp_profile.Interp
module Value = Vrp_ranges.Value

let tc = Alcotest.test_case

let all_benchmarks_compile_run_analyze () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let c = Helpers.compile b.source in
      let ssa = c.Vrp_core.Pipeline.ssa in
      Vrp_ir.Check.check_ssa_program ssa;
      (* both inputs execute without trapping *)
      let train = Interp.run ssa ~args:b.train_args in
      let ref_ = Interp.run ssa ~args:b.ref_args in
      ignore (Helpers.ret_int train);
      ignore (Helpers.ret_int ref_);
      (* interprocedural analysis completes *)
      let ipa = Vrp_core.Interproc.analyze ssa in
      Alcotest.(check bool)
        (b.name ^ ": main analysed")
        true
        (Vrp_core.Interproc.result ipa "main" <> None))
    Vrp_suite.Suite.benchmarks

let synth_programs_compile_run_analyze () =
  List.iter
    (fun units ->
      let src = Vrp_suite.Synth.generate ~units ~seed:(units * 13) () in
      let c = Helpers.compile src in
      Vrp_ir.Check.check_ssa_program c.Vrp_core.Pipeline.ssa;
      let r = Interp.run c.Vrp_core.Pipeline.ssa ~args:[ 10; 3 ] in
      ignore (Helpers.ret_int r);
      List.iter
        (fun fn -> ignore (Engine.analyze fn))
        c.Vrp_core.Pipeline.ssa.Ir.fns)
    [ 1; 3; 10; 40 ]

(* Certainty soundness across the whole suite. *)
let certain_predictions_are_sound () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let c = Helpers.compile b.source in
      let ssa = c.Vrp_core.Pipeline.ssa in
      let observed = (Interp.run ssa ~args:b.ref_args).Interp.profile in
      let ipa = Vrp_core.Interproc.analyze ssa in
      List.iter
        (fun (fn : Ir.fn) ->
          match Vrp_core.Interproc.result ipa fn.Ir.fname with
          | None -> ()
          | Some res ->
            Hashtbl.iter
              (fun bid p ->
                if not (Engine.used_fallback res bid) && (p <= 0.0 || p >= 1.0) then begin
                  match Interp.observed_prob observed (fn.Ir.fname, bid) with
                  | Some actual ->
                    if Float.abs (actual -. p) > 1e-9 then
                      Alcotest.failf "%s/%s B%d: predicted certainly %.0f but observed %.3f"
                        b.name fn.Ir.fname bid p actual
                  | None -> () (* never executed *)
                end)
              res.Engine.branch_probs)
        ssa.Ir.fns)
    Vrp_suite.Suite.benchmarks

(* Return soundness: concrete arguments as singleton parameter ranges. *)
let return_ranges_contain_actual_results () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let c = Helpers.compile b.source in
      let ssa = c.Vrp_core.Pipeline.ssa in
      let actual = Helpers.ret_int (Interp.run ssa ~args:b.train_args) in
      let main = Option.get (Ir.find_fn ssa "main") in
      let param_values = List.map (fun v -> Value.const_int v) b.train_args in
      let res = Engine.analyze ~param_values main in
      if not (Helpers.contains_int res.Engine.return_value actual) then
        Alcotest.failf "%s: returned %d outside %s" b.name actual
          (Value.to_string res.Engine.return_value))
    Vrp_suite.Suite.benchmarks

(* The same property on randomly generated synthetic programs and inputs. *)
let prop_return_soundness =
  Helpers.qtest ~count:60 "return range contains actual result (synth programs)"
    QCheck2.Gen.(triple (int_range 1 12) (int_range 0 1000) (int_range 0 10000))
    (fun (units, n, seed) ->
      let src = Vrp_suite.Synth.generate ~units ~seed:(units * 3) () in
      let c = Helpers.compile src in
      let ssa = c.Vrp_core.Pipeline.ssa in
      match Interp.run ssa ~args:[ n; seed ] with
      | r ->
        let actual = Helpers.ret_int r in
        let main = Option.get (Ir.find_fn ssa "main") in
        let res =
          Engine.analyze ~param_values:[ Value.const_int n; Value.const_int seed ] main
        in
        Helpers.contains_int res.Engine.return_value actual
      | exception Interp.Trap _ -> true)

(* Paper §5 shape claims on the measured data. *)
let figure_shapes = lazy (Vrp_evaluation.Figures.accuracy ())

let mean_of r name = List.assoc name r.Vrp_evaluation.Figures.mean_errors

let shape_profiling_is_best () =
  List.iter
    (fun r ->
      let p = mean_of r "profiling" in
      List.iter
        (fun other ->
          if p > mean_of r other +. 1e-9 then
            Alcotest.failf "profiling must beat %s" other)
        [ "ball-larus"; "vrp"; "90/50"; "random" ])
    (Lazy.force figure_shapes)

let shape_vrp_beats_9050_and_random () =
  List.iter
    (fun r ->
      let v = mean_of r "vrp" in
      if v > mean_of r "90/50" +. 1e-9 then Alcotest.fail "vrp must beat 90/50";
      if v > mean_of r "random" +. 1e-9 then Alcotest.fail "vrp must beat random")
    (Lazy.force figure_shapes)

let shape_vrp_at_tight_margins () =
  (* the paper's key plot feature: VRP's curve is far above the heuristics
     at small error margins *)
  List.iter
    (fun (r : Vrp_evaluation.Figures.accuracy_result) ->
      let at_1 name = List.nth (List.assoc name r.Vrp_evaluation.Figures.curves) 0 in
      if at_1 "vrp" < at_1 "ball-larus" -. 1e-9 then
        Alcotest.fail "vrp must dominate heuristics within +-1pp";
      if at_1 "vrp" < at_1 "90/50" -. 1e-9 then
        Alcotest.fail "vrp must dominate 90/50 within +-1pp")
    (Lazy.force figure_shapes)

let shape_fp_better_than_int_for_vrp () =
  (* "the value range propagation method is significantly more accurate for
     numeric code than for integer and pointer code" *)
  let results = Lazy.force figure_shapes in
  let find cat w =
    List.find
      (fun (r : Vrp_evaluation.Figures.accuracy_result) ->
        r.Vrp_evaluation.Figures.suite = cat && r.Vrp_evaluation.Figures.weighted = w)
      results
  in
  List.iter
    (fun weighted ->
      let int_r = find Vrp_suite.Suite.Int_suite weighted in
      let fp_r = find Vrp_suite.Suite.Fp_suite weighted in
      let at_1 (r : Vrp_evaluation.Figures.accuracy_result) =
        List.nth (List.assoc "vrp" r.Vrp_evaluation.Figures.curves) 0
      in
      if at_1 fp_r <= at_1 int_r then
        Alcotest.failf "fp (%0.1f) must beat int (%0.1f) within +-1pp" (at_1 fp_r)
          (at_1 int_r))
    [ false; true ]

let shape_symbolic_helps () =
  (* "Adding symbolic ranges substantially increases the overall accuracy" *)
  let total config_name =
    List.fold_left
      (fun acc r -> acc +. mean_of r config_name)
      0.0 (Lazy.force figure_shapes)
  in
  if total "vrp" >= total "vrp-numeric" then
    Alcotest.failf "symbolic (%f) must improve on numeric-only (%f)" (total "vrp")
      (total "vrp-numeric")

let linearity_of_propagation () =
  (* Figures 5/6: evaluations and sub-operations grow linearly. *)
  let points = Vrp_evaluation.Figures.fig5_6 ~sizes:[ 4; 16; 64; 128; 256 ] () in
  let _, slope_e, r2_e =
    Vrp_evaluation.Figures.linear_fit points ~metric:(fun p ->
        p.Vrp_evaluation.Figures.evaluations)
  in
  let _, slope_s, r2_s =
    Vrp_evaluation.Figures.linear_fit points ~metric:(fun p ->
        p.Vrp_evaluation.Figures.sub_operations)
  in
  Alcotest.(check bool) "evaluations linear (r2 > 0.9)" true (r2_e > 0.9);
  Alcotest.(check bool) "sub-operations linear (r2 > 0.9)" true (r2_s > 0.9);
  Alcotest.(check bool) "slopes positive" true (slope_e > 0.0 && slope_s > 0.0)

let range_budget_bounds_work () =
  (* paper 4: up to R^2 sub-operations per evaluation; check the global
     ratio stays near that bound *)
  let points = Vrp_evaluation.Figures.fig5_6 ~sizes:[ 16; 64 ] () in
  List.iter
    (fun (p : Vrp_evaluation.Figures.complexity_point) ->
      let r = !Vrp_ranges.Config.max_ranges in
      let ratio =
        float_of_int p.Vrp_evaluation.Figures.sub_operations
        /. float_of_int (max 1 p.Vrp_evaluation.Figures.evaluations)
      in
      if ratio > float_of_int (4 * r * r) then
        Alcotest.failf "%s: %f sub-operations per evaluation" p.Vrp_evaluation.Figures.label
          ratio)
    points

let profiling_differs_between_inputs () =
  (* train and reference inputs genuinely behave differently somewhere —
     otherwise the experiment would not test generalisation *)
  let differs = ref 0 in
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let ssa = (Helpers.compile b.source).Vrp_core.Pipeline.ssa in
      let train = (Interp.run ssa ~args:b.train_args).Interp.profile in
      let observed = (Interp.run ssa ~args:b.ref_args).Interp.profile in
      Hashtbl.iter
        (fun key _ ->
          match (Interp.observed_prob train key, Interp.observed_prob observed key) with
          | Some a, Some b when Float.abs (a -. b) > 0.02 -> incr differs
          | _ -> ())
        observed.Interp.branches)
    Vrp_suite.Suite.benchmarks;
  Alcotest.(check bool) "some branches behave differently across inputs" true (!differs > 5)

let suite =
  ( "integration",
    [
      tc "suite compiles, runs, analyses" `Quick all_benchmarks_compile_run_analyze;
      tc "synthetic programs behave" `Quick synth_programs_compile_run_analyze;
      tc "certainty soundness" `Quick certain_predictions_are_sound;
      tc "return-range soundness (suite)" `Quick return_ranges_contain_actual_results;
      prop_return_soundness;
      tc "shape: profiling is best" `Quick shape_profiling_is_best;
      tc "shape: vrp beats 90/50 and random" `Quick shape_vrp_beats_9050_and_random;
      tc "shape: vrp dominates at tight margins" `Quick shape_vrp_at_tight_margins;
      tc "shape: fp beats int for vrp" `Quick shape_fp_better_than_int_for_vrp;
      tc "shape: symbolic ranges help" `Quick shape_symbolic_helps;
      tc "linearity of propagation" `Quick linearity_of_propagation;
      tc "sub-operations per evaluation bounded" `Quick range_budget_bounds_work;
      tc "train and reference inputs differ" `Quick profiling_differs_between_inputs;
    ] )
