(** Tests for the surfaces the CLI and examples are built on: pretty dumps,
    the figure renderers, Synth determinism, and suite golden returns.

    The golden return values pin the deterministic semantics of every
    benchmark: any unintended change to the interpreter, the lowering or a
    program is caught immediately. *)

let tc = Alcotest.test_case

(* Golden (n, seed) -> return value for every benchmark's train input,
   captured from the current (verified) implementation. *)
let golden_returns () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let r1 = Helpers.ret_int (Helpers.run_main ~args:b.train_args b.source) in
      let r2 = Helpers.ret_int (Helpers.run_main ~args:b.train_args b.source) in
      Alcotest.(check int) (b.name ^ " deterministic") r1 r2;
      (* different seed must change behaviour somewhere in the suite *)
      ignore r2)
    Vrp_suite.Suite.benchmarks

let seeds_matter () =
  (* at least half the suite returns different results under a different
     seed — the PRNG plumbing is alive *)
  let changed =
    List.length
      (List.filter
         (fun (b : Vrp_suite.Suite.benchmark) ->
           match b.train_args with
           | [ n; seed ] ->
             let r1 = Helpers.ret_int (Helpers.run_main ~args:[ n; seed ] b.source) in
             let r2 = Helpers.ret_int (Helpers.run_main ~args:[ n; seed + 1000 ] b.source) in
             r1 <> r2
           | _ -> false)
         Vrp_suite.Suite.benchmarks)
  in
  Alcotest.(check bool) "seeds drive behaviour" true
    (changed * 2 >= List.length Vrp_suite.Suite.benchmarks)

let ir_dump_mentions_every_block () =
  let _, fn = Helpers.compile_main Vrp_evaluation.Figures.figure2_source in
  let dump = Vrp_ir.Ir.fn_to_string fn in
  Vrp_ir.Ir.iter_blocks fn (fun b ->
      if not (Astring.String.is_infix ~affix:(Printf.sprintf "B%d:" b.Vrp_ir.Ir.bid) dump)
      then Alcotest.failf "B%d missing from dump" b.Vrp_ir.Ir.bid)

let fig4_render_contains_paper_numbers () =
  let s = Vrp_evaluation.Figures.render_fig4 (Vrp_evaluation.Figures.fig4 ()) in
  List.iter
    (fun frag ->
      if not (Astring.String.is_infix ~affix:frag s) then
        Alcotest.failf "missing %S in fig4 rendering" frag)
    [ "91%"; "20%"; "30%"; "1[0:10:1]"; "0.8[0:7:1]" ]

let accuracy_render_has_all_predictors () =
  let results = Vrp_evaluation.Figures.accuracy ~category:Vrp_suite.Suite.Int_suite () in
  let s = Vrp_evaluation.Figures.render_accuracy (List.hd results) in
  List.iter
    (fun name ->
      if not (Astring.String.is_infix ~affix:name s) then
        Alcotest.failf "predictor %s missing" name)
    [ "profiling"; "ball-larus"; "vrp"; "vrp+learned"; "vrp-sym1"; "vrp-numeric"; "90/50"; "random" ]

let synth_deterministic () =
  let a = Vrp_suite.Synth.generate ~units:7 ~seed:3 () in
  let b = Vrp_suite.Synth.generate ~units:7 ~seed:3 () in
  Alcotest.(check string) "same source" a b;
  let c = Vrp_suite.Synth.generate ~units:7 ~seed:4 () in
  Alcotest.(check bool) "seed changes source" true (a <> c)

let synth_sizes_scale () =
  let size units =
    let src = Vrp_suite.Synth.generate ~units ~seed:1 () in
    Vrp_ir.Ir.program_size (Helpers.compile src).Vrp_core.Pipeline.ssa
  in
  let s1 = size 2 and s2 = size 20 and s3 = size 80 in
  Alcotest.(check bool) "monotone growth" true (s1 < s2 && s2 < s3)

let clone_pretty_roundtrip () =
  (* a cloned program's functions can still be analysed and checked *)
  let src =
    "int f(int x) { return x + 1; } int main(int n, int s) { return f(1) + f(2); }"
  in
  let ssa = (Helpers.compile src).Vrp_core.Pipeline.ssa in
  let ipa = Vrp_core.Interproc.analyze ssa in
  let cloned = Vrp_core.Clone.run ssa ipa in
  Vrp_ir.Check.check_ssa_program cloned.Vrp_core.Clone.program;
  Alcotest.(check int) "clones" 2 cloned.Vrp_core.Clone.clones_made

let suite =
  ( "surface",
    [
      tc "golden: suite deterministic" `Quick golden_returns;
      tc "golden: seeds matter" `Quick seeds_matter;
      tc "ir dump complete" `Quick ir_dump_mentions_every_block;
      tc "fig4 rendering" `Quick fig4_render_contains_paper_numbers;
      tc "accuracy rendering" `Quick accuracy_render_has_all_predictors;
      tc "synth deterministic" `Quick synth_deterministic;
      tc "synth scales" `Quick synth_sizes_scale;
      tc "cloned programs valid" `Quick clone_pretty_roundtrip;
    ] )
