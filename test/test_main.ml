let () =
  Alcotest.run "vrp"
    [
      Test_front.suite;
      Test_ir.suite;
      Test_ranges.suite;
      Test_interp.suite;
      Test_sccp.suite;
      Test_engine.suite;
      Test_interproc.suite;
      Test_clients.suite;
      Test_predict.suite;
      Test_evaluation.suite;
      Test_util.suite;
      Test_semantics.suite;
      Test_cli_surface.suite;
      Test_diag.suite;
      Test_resilience.suite;
      Test_frequency.suite;
      Test_sched.suite;
      Test_supervisor.suite;
      Test_cache.suite;
      Test_integration.suite;
      Test_algebra.suite;
      Test_fuzz.suite;
      Test_learn.suite;
      Test_server.suite;
    ]
