(** Scheduler-subsystem tests: the domain pool (ordering, crash
    containment), the call-graph SCC condensation plan, and the headline
    determinism guarantee — wavefront-parallel and batch-parallel analysis
    must be byte-identical to the sequential reference, including under
    injected per-function faults and malformed input files. *)

module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc
module Diag = Vrp_diag.Diag
module Pool = Vrp_sched.Pool
module Callgraph = Vrp_sched.Callgraph
module Wavefront = Vrp_sched.Wavefront
module Batch = Vrp_sched.Batch
module Suite = Vrp_suite.Suite

let tc = Alcotest.test_case

(* The parallel width the determinism tests compare against jobs = 1. CI
   additionally runs the whole suite with VRP_TEST_JOBS=4. *)
let test_jobs =
  match Sys.getenv_opt "VRP_TEST_JOBS" with
  | Some s -> ( try max 2 (int_of_string s) with _ -> 3)
  | None -> 3

let suite_sources =
  List.map
    (fun (b : Suite.benchmark) -> (b.Suite.name ^ ".mc", b.Suite.source))
    Suite.benchmarks

(* --- Pool --- *)

let pool_preserves_task_order () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let input = Array.init 100 Fun.id in
          let out = Pool.map pool (fun x -> x * x) input in
          Array.iteri
            (fun i r ->
              match r with
              | Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v
              | Error e -> Alcotest.failf "slot %d raised %s" i (Printexc.to_string e))
            out))
    [ 1; test_jobs ]

let pool_contains_crashes () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let out =
            Pool.map pool
              (fun x -> if x = 2 then failwith "poisoned task" else x + 1)
              [| 0; 1; 2; 3; 4 |]
          in
          Array.iteri
            (fun i r ->
              match (i, r) with
              | 2, Error (Failure msg) ->
                Alcotest.(check string) "reason" "poisoned task" msg
              | 2, _ -> Alcotest.fail "poisoned slot did not yield its error"
              | i, Ok v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i + 1) v
              | i, Error e -> Alcotest.failf "slot %d raised %s" i (Printexc.to_string e))
            out;
          (* the pool survives a poisoned batch *)
          match Pool.map pool succ [| 41 |] with
          | [| Ok 42 |] -> ()
          | _ -> Alcotest.fail "pool unusable after a task crashed"))
    [ 1; test_jobs ]

let pool_clamps_jobs () =
  Pool.with_pool ~jobs:(-3) (fun pool -> Alcotest.(check int) "clamped" 1 (Pool.jobs pool))

(* --- Call graph --- *)

let chain_src =
  {|
int leaf(int n) { if (n > 3) { return n; } return 3; }
int mid(int n) { if (n > 1) { return leaf(n); } return leaf(n + 1); }
int main(int n, int s) { if (n > 0) { return mid(n); } return mid(s); }
|}

let scc_plan_is_topological () =
  let c = Helpers.compile chain_src in
  let groups = Callgraph.scc_groups c.Vrp_core.Pipeline.ssa in
  let flat = List.concat groups in
  Alcotest.(check (list string))
    "every function in exactly one SCC" [ "leaf"; "main"; "mid" ]
    (List.sort compare flat);
  let pos name =
    match List.find_index (List.mem name) groups with
    | Some i -> i
    | None -> Alcotest.failf "%s not in any SCC" name
  in
  Alcotest.(check bool) "main before mid" true (pos "main" < pos "mid");
  Alcotest.(check bool) "mid before leaf" true (pos "mid" < pos "leaf")

let self_recursion_is_own_scc () =
  let src =
    {|
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int main(int n, int s) { return fact(n); }
|}
  in
  let c = Helpers.compile src in
  let cg = Callgraph.build c.Vrp_core.Pipeline.ssa in
  Alcotest.(check (list string)) "fact calls itself" [ "fact" ] (Callgraph.callees cg "fact");
  let groups = Callgraph.sccs cg in
  Alcotest.(check bool) "fact is a singleton SCC" true (List.mem [ "fact" ] groups)

(* --- Wavefront determinism --- *)

(* Order-insensitive fingerprint of an interprocedural result: per-function
   branch probabilities, return range and the demotion table. *)
let ipa_signature (ipa : Interproc.t) =
  let results =
    Hashtbl.fold
      (fun name (res : Engine.t) acc ->
        let probs = ref [] in
        Ir.iter_blocks res.Engine.fn (fun b ->
            match Engine.branch_prob res b.Ir.bid with
            | Some p -> probs := (b.Ir.bid, p) :: !probs
            | None -> ());
        ( name,
          List.sort compare !probs,
          Vrp_ranges.Value.to_string res.Engine.return_value )
        :: acc)
      ipa.Interproc.results []
    |> List.sort compare
  in
  let failed =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) ipa.Interproc.failed []
    |> List.sort compare
  in
  (results, failed)

let wavefront_matches_sequential () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let c = Helpers.compile b.Suite.source in
      let ssa = c.Vrp_core.Pipeline.ssa in
      let seq = Interproc.analyze ssa in
      let par = Wavefront.analyze ~jobs:test_jobs ssa in
      if ipa_signature par <> ipa_signature seq then
        Alcotest.failf "%s: parallel wavefront diverged from sequential" b.Suite.name)
    Suite.benchmarks

(* --- Batch determinism (the --jobs 1 vs --jobs N regression test) --- *)

let batch_render ?config ~jobs sources = Batch.render (Batch.analyze_sources ?config ~jobs sources)

let batch_is_deterministic () =
  let reference = batch_render ~jobs:1 suite_sources in
  Alcotest.(check string)
    (Printf.sprintf "jobs=%d report identical to jobs=1" test_jobs)
    reference
    (batch_render ~jobs:test_jobs suite_sources);
  Alcotest.(check bool) "report is non-trivial" true (String.length reference > 100)

let batch_contains_bad_files () =
  let sources =
    [ ("bad.mc", "int main( {"); ("good.mc", chain_src) ]
  in
  let results = Batch.analyze_sources ~jobs:test_jobs sources in
  (match results with
  | [ bad; good ] ->
    Alcotest.(check bool) "bad file has an error" true (bad.Batch.error <> None);
    Alcotest.(check bool) "good file analysed" true
      (good.Batch.error = None && good.Batch.predictions <> [])
  | _ -> Alcotest.fail "expected two file results in input order");
  let a = Batch.aggregate results in
  Alcotest.(check int) "one failed file" 1 a.Batch.failed_files;
  Alcotest.(check string) "containment is deterministic"
    (batch_render ~jobs:1 sources)
    (Batch.render results)

let batch_deterministic_under_faults () =
  let config = { Engine.default_config with Engine.fault = Some (Diag.Fault.Crash_fn "mid") } in
  let sources = [ ("a.mc", chain_src); ("b.mc", chain_src) ] in
  let reference = batch_render ~config ~jobs:1 sources in
  Alcotest.(check string) "crash-injected run identical across jobs" reference
    (batch_render ~config ~jobs:test_jobs sources);
  let results = Batch.analyze_sources ~config ~jobs:test_jobs sources in
  List.iter
    (fun (r : Batch.file_result) ->
      Alcotest.(check bool)
        (r.Batch.name ^ ": mid demoted")
        true
        (List.exists (fun (fn, _) -> fn = "mid") r.Batch.demoted))
    results

let suite =
  ( "sched",
    [
      tc "pool: results in task order" `Quick pool_preserves_task_order;
      tc "pool: crash containment" `Quick pool_contains_crashes;
      tc "pool: jobs clamped to 1" `Quick pool_clamps_jobs;
      tc "callgraph: SCC plan is topological" `Quick scc_plan_is_topological;
      tc "callgraph: self-recursion" `Quick self_recursion_is_own_scc;
      tc "wavefront: parallel == sequential on the suite" `Slow wavefront_matches_sequential;
      tc "batch: jobs=1 vs jobs=N byte-identical" `Slow batch_is_deterministic;
      tc "batch: malformed file contained" `Quick batch_contains_bad_files;
      tc "batch: deterministic under injected faults" `Quick batch_deterministic_under_faults;
    ] )
