(** Symbolic algebra v2 (DESIGN.md §15), measured end to end on the
    committed suite. Two properties are pinned:

    - v2 strictly increases precision: more branches proved one-way and
      more bounds checks eliminated than v1, with exact counts so any
      regression (or unreviewed improvement) fails loudly.
    - v2 never perturbs the analysis itself: the algebra runs strictly
      after the fixpoint, so the converged value assignment, fuel and
      widening counters are byte-identical with the algebra on or off,
      and branch probabilities only change by upgrading a heuristic
      fallback to a proven 0/1. *)

module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc
module Pipeline = Vrp_core.Pipeline
module Bounds_check = Vrp_core.Bounds_check
module Value = Vrp_ranges.Value
module Suite = Vrp_suite.Suite

(* Pinned totals over [Suite.benchmarks] (22 programs, 386 bounds checks). *)
let v1_oneway = 4
let v2_oneway = 5
let v1_eliminated = 233
let v2_eliminated = 256
let total_checks = 386

(* Benchmarks where v2 proves strictly more, with the pinned deltas
   (one-way branches, eliminated checks). Everything else must be
   identical between the two configurations. *)
let improved =
  [
    ("kmp", (0, 1));
    ("affine", (1, 7));
    ("nbody", (0, 6));
    ("fir", (0, 1));
    ("rk4", (0, 4));
    ("cholesky", (0, 4));
  ]

let count_oneway (r : Engine.t) =
  Hashtbl.fold
    (fun _ p acc -> if p = 0.0 || p = 1.0 then acc + 1 else acc)
    r.Engine.branch_probs 0

let analyses algebra (ssa : Ir.program) =
  let config = { Engine.default_config with Engine.algebra } in
  let ipa = Interproc.analyze ~config ssa in
  List.filter_map
    (fun (f : Ir.fn) ->
      Interproc.result ipa f.Ir.fname |> Option.map (fun r -> (f, r)))
    ssa.Ir.fns

let measure algebra ssa =
  List.fold_left
    (fun (ow, el, tot) ((_ : Ir.fn), r) ->
      let rep = Bounds_check.analyze ~algebra ssa r in
      ( ow + count_oneway r,
        el + rep.Bounds_check.eliminated,
        tot + rep.Bounds_check.total ))
    (0, 0, 0) (analyses algebra ssa)

let per_benchmark () =
  List.map
    (fun (b : Suite.benchmark) ->
      let ssa = (Pipeline.compile b.Suite.source).Pipeline.ssa in
      (b.Suite.name, ssa, measure false ssa, measure true ssa))
    Suite.benchmarks

let v2_strictly_improves () =
  let measured = per_benchmark () in
  let tot sel which =
    List.fold_left (fun acc (_, _, m1, m2) -> acc + sel (which (m1, m2))) 0
      measured
  in
  let fst3 (a, _, _) = a and snd3 (_, b, _) = b and thd3 (_, _, c) = c in
  Alcotest.(check int) "v1 one-way branches" v1_oneway (tot fst3 fst);
  Alcotest.(check int) "v2 one-way branches" v2_oneway (tot fst3 snd);
  Alcotest.(check int) "v1 eliminated checks" v1_eliminated (tot snd3 fst);
  Alcotest.(check int) "v2 eliminated checks" v2_eliminated (tot snd3 snd);
  Alcotest.(check int) "total checks (v1 view)" total_checks (tot thd3 fst);
  Alcotest.(check int) "total checks (v2 view)" total_checks (tot thd3 snd);
  if v2_oneway <= v1_oneway then
    Alcotest.fail "v2 must prove strictly more one-way branches than v1";
  if v2_eliminated <= v1_eliminated then
    Alcotest.fail "v2 must eliminate strictly more bounds checks than v1";
  (* Per-benchmark: pinned improvements where expected, identity elsewhere. *)
  List.iter
    (fun (name, _, (ow1, el1, n1), (ow2, el2, n2)) ->
      Alcotest.(check int) (name ^ ": same checks") n1 n2;
      match List.assoc_opt name improved with
      | Some (dow, del) ->
        Alcotest.(check int) (name ^ ": one-way delta") dow (ow2 - ow1);
        Alcotest.(check int) (name ^ ": eliminated delta") del (el2 - el1)
      | None ->
        Alcotest.(check int) (name ^ ": one-way unchanged") ow1 ow2;
        Alcotest.(check int) (name ^ ": eliminated unchanged") el1 el2)
    measured

(* The algebra must not touch the fixpoint: identical values, fuel and
   widening counters either way, and probabilities may differ only by
   upgrading a v1 heuristic fallback to a proven one-way branch. *)
let v2_identical_analysis () =
  List.iter
    (fun (b : Suite.benchmark) ->
      let ssa = (Pipeline.compile b.Suite.source).Pipeline.ssa in
      let r1 = analyses false ssa and r2 = analyses true ssa in
      List.iter2
        (fun ((f : Ir.fn), (a : Engine.t)) ((_ : Ir.fn), (b' : Engine.t)) ->
          let where what =
            Printf.sprintf "%s/%s: %s" b.Suite.name f.Ir.fname what
          in
          Alcotest.(check int) (where "fuel") a.Engine.fuel_spent
            b'.Engine.fuel_spent;
          Alcotest.(check int) (where "widenings") a.Engine.widenings
            b'.Engine.widenings;
          Alcotest.(check int) (where "evaluations") a.Engine.evaluations
            b'.Engine.evaluations;
          Array.iteri
            (fun i v ->
              Alcotest.(check string)
                (where (Printf.sprintf "value %d" i))
                (Value.to_string v)
                (Value.to_string b'.Engine.values.(i)))
            a.Engine.values;
          Hashtbl.iter
            (fun bid p1 ->
              match Hashtbl.find_opt b'.Engine.branch_probs bid with
              | None -> Alcotest.fail (where "branch set changed")
              | Some p2 ->
                if p1 <> p2 then begin
                  if not (Engine.used_fallback a bid) then
                    Alcotest.fail
                      (where "v2 changed a branch v1 decided from ranges");
                  if p2 <> 0.0 && p2 <> 1.0 then
                    Alcotest.fail
                      (where "v2 changed a fallback to a non-proof")
                end)
            a.Engine.branch_probs)
        r1 r2)
    Suite.benchmarks

let suite =
  ( "algebra",
    [
      Alcotest.test_case "v2 strictly improves, counts pinned" `Quick
        v2_strictly_improves;
      Alcotest.test_case "v2 leaves the fixpoint byte-identical" `Quick
        v2_identical_analysis;
    ] )
