(** The fuzzing subsystem: corpus replay, pretty-printer round-trips, a
    smoke campaign, and the injected-unsoundness acceptance test. *)

module Ast = Vrp_lang.Ast
module Front = Vrp_lang.Front
module Pretty = Vrp_lang.Pretty
module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Diag = Vrp_diag.Diag
module Gen = Vrp_fuzz.Gen
module Oracle = Vrp_fuzz.Oracle
module Shrink = Vrp_fuzz.Shrink
module Runner = Vrp_fuzz.Runner

let tc = Alcotest.test_case

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mc")
  |> List.sort String.compare
  |> List.map (fun f -> (f, read_file (Filename.concat "corpus" f)))

(* --- Corpus replay: every shrunk repro must stay clean forever. --- *)

let corpus_is_nonempty () =
  let files = corpus_files () in
  if List.length files < 5 then
    Alcotest.failf "corpus has only %d programs, want >= 5" (List.length files)

let corpus_replays_clean () =
  List.iter
    (fun (name, source) ->
      let o = Oracle.check source in
      (match o.Oracle.violations with
      | [] -> ()
      | vs ->
        Alcotest.failf "corpus/%s: %s" name
          (String.concat "; " (List.map Oracle.violation_to_string vs)));
      if not o.Oracle.membership_checked then
        Alcotest.failf
          "corpus/%s: static results not trusted, membership oracles idle" name)
    (corpus_files ())

let corpus_determinism_clean () =
  (* The full differential check is expensive; run it on the corpus entry
     dedicated to the property. *)
  let source = read_file "corpus/determinism_calls.mc" in
  match Oracle.check_determinism ~name:"determinism_calls" source with
  | [] -> ()
  | vs ->
    Alcotest.failf "determinism corpus: %s"
      (String.concat "; " (List.map Oracle.violation_to_string vs))

(* --- Pretty-printer round-trip: parse (pretty p) re-typechecks and
       lowers to the identical SSA IR. --- *)

let ir_of source = Ir.program_to_string (Pipeline.compile source).Pipeline.ssa

let round_trip what source =
  let ast = Front.parse_and_check source in
  let printed = Pretty.program_to_string ast in
  let reparsed =
    try Front.parse_and_check printed
    with e ->
      Alcotest.failf "%s: pretty output no longer parses (%s):\n%s" what
        (match Front.describe_error e with Some m -> m | None -> Printexc.to_string e)
        printed
  in
  (* pretty is a fixpoint of parse ∘ pretty ... *)
  let printed2 = Pretty.program_to_string reparsed in
  if not (String.equal printed printed2) then
    Alcotest.failf "%s: pretty ∘ parse is not a fixpoint" what;
  (* ... and printing loses nothing the IR can see. *)
  if not (String.equal (ir_of source) (ir_of printed)) then
    Alcotest.failf "%s: SSA IR changed across the round trip" what

let round_trip_suite () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      round_trip b.Vrp_suite.Suite.name b.Vrp_suite.Suite.source)
    Vrp_suite.Suite.benchmarks

let round_trip_fuzzed () =
  (* 20 programs per profile, 100 total. *)
  List.iter
    (fun (p : Gen.profile) ->
      for i = 0 to 19 do
        let rng = Vrp_util.Prng.create ((i * 7919) + 17) in
        let ast = Gen.program rng ~weights:p.Gen.weights in
        round_trip
          (Printf.sprintf "fuzzed %s #%d" p.Gen.pname i)
          (Pretty.program_to_string ast)
      done)
    Gen.profiles

(* --- Smoke campaign: a small seeded run over every profile must come
       back clean, membership-checked, and deterministic in its report. --- *)

let smoke_campaign () =
  let run () =
    Runner.run ~seed:1 ~count:5 ~determinism_every:5 ~profiles:Gen.profiles ()
  in
  let s = run () in
  if s.Runner.failures <> [] then
    Alcotest.failf "smoke campaign failed:\n%s" (Runner.render s);
  Alcotest.(check int) "programs" (5 * List.length Gen.profiles) s.Runner.programs;
  if s.Runner.membership_checked = 0 then
    Alcotest.fail "smoke campaign never armed the membership oracles";
  if s.Runner.determinism_checked = 0 then
    Alcotest.fail "smoke campaign never ran the determinism oracle";
  if s.Runner.algebra_checked = 0 then
    Alcotest.fail "smoke campaign never armed the algebra differential";
  (* The report is a pure function of the campaign coordinates. *)
  Alcotest.(check string) "report deterministic" (Runner.render s)
    (Runner.render (run ()))

(* --- Acceptance: an injected unsoundness is caught and shrunk to a
       tiny repro. --- *)

let skewed_config () =
  match Diag.Fault.parse "skew:main" with
  | Ok fault -> { Engine.default_config with Engine.fault = Some fault }
  | Error m -> Alcotest.failf "fault spec rejected: %s" m

let injected_skew_is_caught () =
  let config = skewed_config () in
  let s =
    Runner.run ~config ~minimize:true ~seed:1 ~count:2
      ~profiles:[ Option.get (Gen.profile_named "loops") ]
      ()
  in
  (match s.Runner.failures with
  | [] -> Alcotest.fail "skew:main fault was not caught by any oracle"
  | fs ->
    List.iter
      (fun (f : Runner.failure) ->
        let is_range (v : Oracle.violation) =
          v.Oracle.prop = Oracle.Range_soundness
        in
        if not (List.exists is_range f.Runner.violations) then
          Alcotest.failf "failure %d not a range-soundness violation: %s"
            f.Runner.index
            (String.concat "; "
               (List.map Oracle.violation_to_string f.Runner.violations));
        match f.Runner.minimized with
        | None -> Alcotest.failf "failure %d was not minimised" f.Runner.index
        | Some src ->
          let lines =
            List.length
              (List.filter
                 (fun l -> String.trim l <> "")
                 (String.split_on_char '\n' src))
          in
          if lines > 25 then
            Alcotest.failf "shrunk repro is %d lines (> 25):\n%s" lines src)
      fs);
  (* The same campaign without the fault is clean: the oracle fires on the
     injected skew, not on the generator's programs. *)
  let clean =
    Runner.run ~seed:1 ~count:2
      ~profiles:[ Option.get (Gen.profile_named "loops") ]
      ()
  in
  if clean.Runner.failures <> [] then
    Alcotest.failf "same campaign unexpectedly fails without the fault:\n%s"
      (Runner.render clean)

(* --- Shrinker unit behaviour. --- *)

let shrinker_reaches_fixpoint () =
  (* Minimising under an always-true predicate must terminate and reach a
     program no candidate can shrink further. *)
  let rng = Vrp_util.Prng.create 424242 in
  let p = (Option.get (Gen.profile_named "mixed")).Gen.weights in
  let ast = Gen.program rng ~weights:p in
  let still_fails _ = true in
  let small, _tries = Shrink.minimize ~still_fails ast in
  Alcotest.(check int) "fully shrunk" 0
    (List.length (List.of_seq (Shrink.candidates small)))

let shrinker_preserves_predicate () =
  (* Under a real predicate, the result still satisfies it and is no
     larger than the input. *)
  let rng = Vrp_util.Prng.create 99 in
  let p = (Option.get (Gen.profile_named "branches")).Gen.weights in
  let ast = Gen.program rng ~weights:p in
  let still_fails (c : Ast.program) =
    (* "fails" = still defines a main that compiles *)
    match Pipeline.compile_result (Pretty.program_to_string c) with
    | Ok compiled -> Ir.find_fn compiled.Pipeline.ssa "main" <> None
    | Error _ -> false
  in
  if still_fails ast then begin
    let small, _ = Shrink.minimize ~still_fails ast in
    if not (still_fails small) then
      Alcotest.fail "shrinker returned a program violating the predicate";
    if Shrink.size small > Shrink.size ast then
      Alcotest.fail "shrinker grew the program"
  end

let suite =
  ( "fuzz",
    [
      tc "corpus: at least five repros" `Quick corpus_is_nonempty;
      tc "corpus: every repro replays clean" `Slow corpus_replays_clean;
      tc "corpus: determinism repro differential" `Slow corpus_determinism_clean;
      tc "round-trip: benchmark suite" `Quick round_trip_suite;
      tc "round-trip: 100 fuzzed programs" `Slow round_trip_fuzzed;
      tc "campaign: seeded smoke run is clean" `Slow smoke_campaign;
      tc "campaign: injected skew caught and shrunk" `Slow injected_skew_is_caught;
      tc "shrink: fixpoint under true predicate" `Quick shrinker_reaches_fixpoint;
      tc "shrink: predicate preserved" `Quick shrinker_preserves_predicate;
    ] )
