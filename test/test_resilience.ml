(** Resilience-layer tests: per-function fault containment, resource
    governors, and the totality guarantee — with any injected per-function
    fault the pipeline still predicts every conditional branch, the affected
    function degrades to Ball–Larus, sibling functions keep their exact VRP
    predictions, and the degradation is visible in the structured report.
    Also covers the front-end error paths: malformed MiniC must produce
    diagnostics, never exceptions escaping [Pipeline.compile_result]. *)

module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc
module Pipeline = Vrp_core.Pipeline
module Diag = Vrp_diag.Diag
module Predictor = Vrp_predict.Predictor

let tc = Alcotest.test_case

(* Two functions, both with branches VRP predicts exactly (no heuristic
   fallback in the healthy run): containment tests can check that faulting
   one function leaves the other's predictions bit-identical. *)
let two_fn_src =
  {|
int helper(int k) {
  int acc = 0;
  for (int i = 0; i < 10; i++) { if (i < 7) { acc = acc + 1; } }
  return acc + k;
}
int main(int n, int s) {
  int t = 0;
  for (int x = 0; x < 10; x++) { if (x > 7) { t = t + 1; } }
  return t + helper(n);
}
|}

let all_branches (ssa : Ir.program) =
  List.concat_map
    (fun (fn : Ir.fn) ->
      Array.to_list fn.Ir.blocks
      |> List.filter_map (fun (b : Ir.block) ->
             match b.Ir.term with
             | Ir.Br _ -> Some (fn.Ir.fname, b.Ir.bid)
             | Ir.Jump _ | Ir.Ret _ -> None))
    ssa.Ir.fns

(* The acceptance criterion: a prediction for every conditional branch,
   each a sane probability. *)
let check_total ssa (preds : Predictor.prediction) =
  List.iter
    (fun ((fname, bid) as key) ->
      match Hashtbl.find_opt preds key with
      | Some p ->
        if not (p >= 0.0 && p <= 1.0) then
          Alcotest.failf "%s.B%d: probability %f out of range" fname bid p
      | None -> Alcotest.failf "%s.B%d: no prediction" fname bid)
    (all_branches ssa)

let with_fault fault =
  { Engine.default_config with Engine.fault = Some fault }

let predictions_with ?config src =
  let c = Helpers.compile src in
  let report = Diag.create () in
  let preds, _ = Pipeline.vrp_predictions ?config ~report c.Pipeline.ssa in
  (c.Pipeline.ssa, preds, report)

let healthy_run_is_exact_and_clean () =
  let ssa, preds, report = predictions_with two_fn_src in
  check_total ssa preds;
  Alcotest.(check bool) "not degraded" false (Diag.degraded report);
  Alcotest.(check int) "no crashes" 0 (Diag.count_kind report Diag.Analysis_crashed)

(* Sibling isolation under each per-function fault: [main]'s predictions
   must equal the healthy run's. When [helper_is_bl] (crash: function fully
   demoted; forced timeout: zero drain steps) [helper]'s predictions must
   equal Ball–Larus and its branches must carry warning-severity fallback
   diagnostics. Fuel starvation keeps partial results, so there we only
   require containment + the governor diagnostic. *)
let check_containment ~fault ~expect_kind ~helper_is_bl () =
  let ssa0, healthy, _ = predictions_with two_fn_src in
  let ssa, preds, report = predictions_with ~config:(with_fault fault) two_fn_src in
  check_total ssa preds;
  let bl = Predictor.ball_larus ssa in
  List.iter
    (fun ((fname, bid) as key) ->
      let got = Hashtbl.find preds key in
      if String.equal fname "main" then
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "main.B%d unchanged" bid)
          (Hashtbl.find healthy key) got
      else if helper_is_bl then
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "helper.B%d falls back to Ball–Larus" bid)
          (Hashtbl.find bl key) got)
    (all_branches ssa0);
  Alcotest.(check bool) "run marked degraded" true (Diag.degraded report);
  Alcotest.(check bool)
    (Printf.sprintf "report has a %s diagnostic" (Diag.kind_to_string expect_kind))
    true
    (Diag.count_kind report expect_kind > 0);
  if helper_is_bl then begin
    (* the affected function's branches carry fallback diagnostics *)
    let helper_fallbacks =
      List.filter
        (fun (d : Diag.diag) ->
          d.Diag.kind = Diag.Fallback_heuristic
          && d.Diag.loc.Diag.fn = Some "helper"
          && d.Diag.severity <> Diag.Info)
        (Diag.to_list report)
    in
    Alcotest.(check bool) "helper branches carry degraded-fallback diags" true
      (List.length helper_fallbacks >= 2)
  end

let crash_contained () =
  check_containment ~fault:(Diag.Fault.Crash_fn "helper")
    ~expect_kind:Diag.Analysis_crashed ~helper_is_bl:true ()

let fuel_starvation_contained () =
  check_containment ~fault:(Diag.Fault.Starve_fuel "helper")
    ~expect_kind:Diag.Budget_exhausted ~helper_is_bl:false ()

let timeout_contained () =
  check_containment ~fault:(Diag.Fault.Timeout_fn "helper")
    ~expect_kind:Diag.Timeout ~helper_is_bl:true ()

let trip_after_still_total () =
  (* tripping after N steps crashes *every* function that gets that far:
     the map must still be total and the run degraded, never an escape *)
  let ssa, preds, report =
    predictions_with ~config:(with_fault (Diag.Fault.Trip_after 3)) two_fn_src
  in
  check_total ssa preds;
  Alcotest.(check bool) "degraded" true (Diag.degraded report);
  Alcotest.(check bool) "crash diagnostics" true
    (Diag.count_kind report Diag.Analysis_crashed > 0)

(* --- Resource governors on the engine itself --- *)

let fuel_accounting_explicit () =
  let _, fn = Helpers.compile_main two_fn_src in
  let report = Diag.create () in
  let res =
    Engine.analyze ~config:{ Engine.default_config with Engine.fuel = Some 2 } ~report fn
  in
  Alcotest.(check bool) "exhausted" true res.Engine.fuel_exhausted;
  Alcotest.(check int) "limit recorded" 2 res.Engine.fuel_limit;
  Alcotest.(check int) "spent everything" 2 res.Engine.fuel_spent;
  Alcotest.(check bool) "diagnosed" true
    (Diag.count_kind report Diag.Budget_exhausted > 0)

let fuel_accounting_healthy () =
  let _, fn = Helpers.compile_main two_fn_src in
  let res = Engine.analyze fn in
  Alcotest.(check bool) "not exhausted" false res.Engine.fuel_exhausted;
  Alcotest.(check bool) "not timed out" false res.Engine.timed_out;
  Alcotest.(check bool) "spent some fuel" true (res.Engine.fuel_spent > 0);
  Alcotest.(check bool) "within limit" true (res.Engine.fuel_spent < res.Engine.fuel_limit)

let wall_clock_governor () =
  let _, fn = Helpers.compile_main two_fn_src in
  let report = Diag.create () in
  (* a deadline in the past trips deterministically on the first check *)
  let res =
    Engine.analyze
      ~config:{ Engine.default_config with Engine.time_limit_s = Some (-1.0) }
      ~report fn
  in
  Alcotest.(check bool) "timed out" true res.Engine.timed_out;
  Alcotest.(check bool) "diagnosed" true (Diag.count_kind report Diag.Timeout > 0)

let quota_widening_diagnosed () =
  let _, fn = Helpers.compile_main two_fn_src in
  let report = Diag.create () in
  (* derivation off so the loop φ is actually iterated into the quota *)
  let config =
    { Engine.default_config with Engine.eval_quota = 1; Engine.use_derivation = false }
  in
  let res = Engine.analyze ~config ~report fn in
  Alcotest.(check bool) "widenings counted" true (res.Engine.widenings > 0);
  Alcotest.(check bool) "widening diagnosed" true
    (Diag.count_kind report Diag.Widened > 0)

let growth_cap_widening () =
  let _, fn = Helpers.compile_main two_fn_src in
  let report = Diag.create () in
  let res =
    Engine.analyze ~config:{ Engine.default_config with Engine.max_growth = 0 } ~report fn
  in
  Alcotest.(check bool) "cap forces widenings" true (res.Engine.widenings > 0);
  (* the engine still terminates and reports branch predictions *)
  Alcotest.(check bool) "still produced branch probabilities" true
    (Hashtbl.length res.Engine.branch_probs > 0)

(* --- Whole-driver containment --- *)

let no_main_program_degrades () =
  (* no [main]: the interprocedural driver refuses, the pipeline falls back
     to contained per-function analysis, and the map is still total *)
  let src = "int f(int a) { if (a > 0) { return 1; } return 0; }" in
  let c = Helpers.compile src in
  let report = Diag.create () in
  let preds, ipa = Pipeline.vrp_predictions ~report c.Pipeline.ssa in
  Alcotest.(check bool) "no interprocedural result" true (ipa = None);
  check_total c.Pipeline.ssa preds;
  Alcotest.(check bool) "degraded" true (Diag.degraded report)

(* --- Front-end error paths --- *)

let malformed_inputs = [
  ("truncated", "int main(int n, int s) { return");
  ("unbalanced braces", "int main(int n, int s) { if (n > 0) { return 1; return 0; }");
  ("lexical garbage", "int main(int n, int s) { return n @ 2; }");
  ("type error", "int main(int n, int s) { float f = 1.5; int x = f; return x; }");
  ("arity mismatch", "int g(int a) { return a; } int main(int n, int s) { return g(1, 2); }");
  ("unknown variable", "int main(int n, int s) { return zz + 1; }");
]

let front_end_errors_are_diagnostics () =
  List.iter
    (fun (what, src) ->
      match Pipeline.compile_result src with
      | Ok _ -> Alcotest.failf "%s: expected a front-end error" what
      | Error d ->
        Alcotest.(check bool)
          (what ^ " is a front-end-error diagnostic")
          true
          (d.Diag.kind = Diag.Front_end_error && d.Diag.severity = Diag.Error);
        Alcotest.(check bool) (what ^ " has a message") true
          (String.length d.Diag.message > 0)
      | exception e ->
        Alcotest.failf "%s: exception escaped compile_result: %s" what
          (Printexc.to_string e))
    malformed_inputs

let compile_result_ok_on_valid_input () =
  match Pipeline.compile_result two_fn_src with
  | Ok c -> Alcotest.(check bool) "has fns" true (List.length c.Pipeline.ssa.Ir.fns = 2)
  | Error d -> Alcotest.failf "unexpected error: %s" d.Diag.message

(* Every benchmark in the suite stays clean under the healthy pipeline:
   totality without any degradation diagnostics. *)
let suite_benchmarks_not_degraded () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let ssa, preds, report = predictions_with b.Vrp_suite.Suite.source in
      check_total ssa preds;
      if Diag.degraded report then
        Alcotest.failf "%s: healthy run reported degradation:\n%s" b.name
          (Diag.render report))
    Vrp_suite.Suite.benchmarks

let suite =
  ( "resilience",
    [
      tc "healthy run is exact and clean" `Quick healthy_run_is_exact_and_clean;
      tc "crash contained to one function" `Quick crash_contained;
      tc "fuel starvation contained" `Quick fuel_starvation_contained;
      tc "timeout contained" `Quick timeout_contained;
      tc "trip-after still total" `Quick trip_after_still_total;
      tc "explicit fuel accounting" `Quick fuel_accounting_explicit;
      tc "healthy fuel accounting" `Quick fuel_accounting_healthy;
      tc "wall-clock governor" `Quick wall_clock_governor;
      tc "quota widening diagnosed" `Quick quota_widening_diagnosed;
      tc "growth cap widening" `Quick growth_cap_widening;
      tc "no-main program degrades gracefully" `Quick no_main_program_degrades;
      tc "front-end errors are diagnostics" `Quick front_end_errors_are_diagnostics;
      tc "compile_result ok on valid input" `Quick compile_result_ok_on_valid_input;
      tc "suite benchmarks not degraded" `Slow suite_benchmarks_not_degraded;
    ] )
