(** Server-subsystem tests: the hand-rolled JSON codec, the framed wire
    protocol, and the vrpd daemon itself — request handling, the
    byte-identity contract against the one-shot CLI code path ({!Ops} is
    that code path; [bin/vrpc.ml] is a thin printer over it), concurrent
    mixed requests with an injected crash, session-scoped incremental
    re-analysis, and the interprocedural cancellation beat. *)

module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Interproc = Vrp_core.Interproc
module Suite = Vrp_suite.Suite
module Json = Vrp_server.Json
module Protocol = Vrp_server.Protocol
module Ops = Vrp_server.Ops
module Session = Vrp_server.Session
module Server = Vrp_server.Server
module Client = Vrp_server.Client
module Fleet = Vrp_server.Fleet
module Admit = Vrp_server.Admit

let tc = Alcotest.test_case

(* Fleet chaos tests write into sockets of freshly killed workers; like
   the daemons themselves, the harness must see EPIPE, not die of SIGPIPE. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* --- JSON codec --- *)

let json_roundtrip () =
  let v =
    Json.Obj
      [
        ("id", Json.Int 7);
        ("ok", Json.Bool true);
        ("pi", Json.Float 3.25);
        ("none", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.String "two"; Json.Bool false ]);
        ("nested", Json.Obj [ ("k", Json.String "v\n\"quoted\"") ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trip" true (v = v')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let json_bytes_lossless () =
  (* Captured CLI output travels as JSON strings; every byte value must
     survive the encode/decode round trip unchanged. *)
  let s = String.init 256 Char.chr in
  match Json.parse (Json.to_string (Json.String s)) with
  | Ok (Json.String s') -> Alcotest.(check string) "all 256 bytes" s s'
  | Ok _ -> Alcotest.fail "not a string"
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let json_parse_errors () =
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid document %S" doc)
    [ ""; "{"; "[1,"; "\"unterminated"; "tru"; "{\"k\" 1}"; "1 2"; "{\"k\":}" ]

(* --- Wire protocol --- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f a b)

let frame_roundtrip () =
  with_socketpair (fun a b ->
      Protocol.write_frame a "hello";
      Protocol.write_frame a "";
      Protocol.write_frame a (String.make 100_000 'x');
      Unix.close a;
      Alcotest.(check (option string)) "first" (Some "hello") (Protocol.read_frame b);
      Alcotest.(check (option string)) "empty" (Some "") (Protocol.read_frame b);
      (match Protocol.read_frame b with
      | Some s -> Alcotest.(check int) "large" 100_000 (String.length s)
      | None -> Alcotest.fail "large frame lost");
      Alcotest.(check (option string)) "clean EOF" None (Protocol.read_frame b))

let frame_rejects_oversize () =
  with_socketpair (fun a b ->
      (* A header claiming 1 GiB must be rejected before allocation. *)
      let header = Bytes.of_string "\x40\x00\x00\x01" in
      ignore (Unix.write a header 0 4);
      match Protocol.read_frame b with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "oversized frame accepted")

let frame_detects_torn () =
  with_socketpair (fun a b ->
      let header = Bytes.of_string "\x00\x00\x00\x0a" in
      ignore (Unix.write a header 0 4);
      ignore (Unix.write a (Bytes.of_string "abc") 0 3);
      Unix.close a;
      match Protocol.read_frame b with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "torn frame accepted")

let request_response_codec () =
  let req =
    {
      Protocol.id = 42;
      op = "predict";
      params = Json.Obj [ ("source", Json.String "int main(){}") ];
    }
  in
  (match Protocol.decode_request (Protocol.encode_request req) with
  | Ok req' -> Alcotest.(check bool) "request" true (req = req')
  | Error msg -> Alcotest.failf "request decode: %s" msg);
  let resp =
    {
      Protocol.rid = 42;
      ok = true;
      code = 3;
      out = "table\n";
      err = "diag\n";
      data = [ ("n", Json.Int 5) ];
    }
  in
  match Protocol.decode_response (Protocol.encode_response resp) with
  | Ok resp' -> Alcotest.(check bool) "response" true (resp = resp')
  | Error msg -> Alcotest.failf "response decode: %s" msg

let error_response_shape () =
  let r = Protocol.error_response ~rid:9 ~kind:"fault-injected" "boom" in
  Alcotest.(check bool) "not ok" false r.Protocol.ok;
  Alcotest.(check int) "exit-code-2 semantics" 2 r.Protocol.code;
  Alcotest.(check string) "stderr line" "vrpd: boom\n" r.Protocol.err;
  match List.assoc_opt "diagnostic" r.Protocol.data with
  | Some d ->
    Alcotest.(check (option string)) "kind" (Some "fault-injected") (Json.mem_string "kind" d)
  | None -> Alcotest.fail "no structured diagnostic"

(* --- Server harness --- *)

let corpus_sources () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mc")
  |> List.sort compare
  |> List.map (fun f ->
         let path = Filename.concat "corpus" f in
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> (f, really_input_string ic (in_channel_length ic))))

let bench_source name =
  match Suite.find name with
  | Some b -> b.Suite.source
  | None -> Alcotest.failf "no benchmark %s" name

let with_server ?settings f =
  let server = Server.create ?settings () in
  Fun.protect ~finally:(fun () -> Server.shutdown server) (fun () -> f server)

let predict_req ?(id = 1) ?fault ~name source =
  {
    Protocol.id;
    op = "predict";
    params =
      Json.Obj
        ([ ("source", Json.String source); ("name", Json.String name) ]
        @
        match fault with
        | Some spec -> [ ("fault", Json.String spec) ]
        | None -> []);
  }

let analyze_req ?(id = 1) ~session ~name source =
  {
    Protocol.id;
    op = "analyze";
    params =
      Json.Obj
        [
          ("session", Json.String session);
          ("name", Json.String name);
          ("source", Json.String source);
        ];
  }

(* The daemon's correctness contract: its response carries the one-shot
   CLI's exact bytes, at any pool width. *)
let server_predict_byte_identical () =
  let inputs =
    corpus_sources () @ [ ("qsort.mc", bench_source "qsort"); ("kmp.mc", bench_source "kmp") ]
  in
  let expected =
    List.map (fun (n, src) -> (n, Ops.predict ~opts:Ops.default_opts ~source:src ())) inputs
  in
  List.iter
    (fun jobs ->
      with_server ~settings:{ Server.default_settings with Server.jobs }
        (fun server ->
          List.iter2
            (fun (name, source) (_, (want : Ops.outcome)) ->
              let resp = Server.handle server (predict_req ~name source) in
              Alcotest.(check bool) (name ^ " ok") true resp.Protocol.ok;
              Alcotest.(check string)
                (Printf.sprintf "%s stdout (jobs=%d)" name jobs)
                want.Ops.out resp.Protocol.out;
              Alcotest.(check string) (name ^ " stderr") want.Ops.err resp.Protocol.err;
              Alcotest.(check int) (name ^ " code") want.Ops.code resp.Protocol.code)
            inputs expected))
    [ 1; 4 ]

(* Full wire replay of the corpus through a live daemon socket. *)
let wire_corpus_replay () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vrpd-test-%d.sock" (Unix.getpid ()))
  in
  with_server ~settings:{ Server.default_settings with Server.jobs = 2 }
    (fun server ->
      let listen_fd = Server.listen_unix sock in
      let th = Thread.create (fun () -> Server.serve server listen_fd) () in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Thread.join th;
          (try Unix.close listen_fd with _ -> ());
          try Sys.remove sock with _ -> ())
        (fun () ->
          Client.with_connection sock (fun conn ->
              List.iter
                (fun (name, source) ->
                  let want = Ops.predict ~opts:Ops.default_opts ~source () in
                  let resp =
                    Client.request conn ~op:"predict"
                      ~params:
                        (Json.Obj
                           [ ("source", Json.String source); ("name", Json.String name) ])
                      ()
                  in
                  Alcotest.(check string) (name ^ " wire stdout") want.Ops.out
                    resp.Protocol.out;
                  Alcotest.(check int) (name ^ " wire code") want.Ops.code
                    resp.Protocol.code)
                (corpus_sources ());
              (* A shutdown request is acknowledged, then stops the serve
                 loop after the response is on the wire. *)
              let resp = Client.request conn ~op:"shutdown" () in
              Alcotest.(check bool) "shutdown ok" true resp.Protocol.ok)))

(* The metrics op over a live socket: valid Prometheus text whose request
   counters move exactly with the work the daemon just did. The registry
   is process-wide (other tests in this binary also bump it), so the test
   asserts deltas between two scrapes, not absolute values. *)
let metrics_scrape_live () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vrpd-metrics-%d.sock" (Unix.getpid ()))
  in
  let series text name =
    let prefix = name ^ " " in
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           if String.length line >= String.length prefix
              && String.sub line 0 (String.length prefix) = prefix
           then
             int_of_string_opt
               (String.sub line (String.length prefix)
                  (String.length line - String.length prefix))
           else None)
    |> function
    | Some n -> n
    | None -> Alcotest.failf "series %s not in scrape" name
  in
  with_server ~settings:{ Server.default_settings with Server.jobs = 2 }
    (fun server ->
      let listen_fd = Server.listen_unix sock in
      let th = Thread.create (fun () -> Server.serve server listen_fd) () in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Thread.join th;
          (try Unix.close listen_fd with _ -> ());
          try Sys.remove sock with _ -> ())
        (fun () ->
          Client.with_connection sock (fun conn ->
              let scrape () =
                let resp = Client.request conn ~op:"metrics" () in
                Alcotest.(check bool) "metrics ok" true resp.Protocol.ok;
                resp.Protocol.out
              in
              let before = scrape () in
              Alcotest.(check bool) "TYPE line" true
                (Astring.String.is_infix
                   ~affix:"# TYPE vrpd_requests_total counter" before);
              Alcotest.(check bool) "uptime gauge" true
                (Astring.String.is_infix
                   ~affix:"# TYPE vrpd_uptime_seconds gauge" before);
              let qsort = bench_source "qsort" in
              for _ = 1 to 2 do
                let resp =
                  Client.request conn ~op:"predict"
                    ~params:
                      (Json.Obj
                         [ ("source", Json.String qsort);
                           ("name", Json.String "qsort.mc") ])
                    ()
                in
                Alcotest.(check bool) "predict ok" true resp.Protocol.ok
              done;
              let after = scrape () in
              let delta name = series after name - series before name in
              Alcotest.(check int) "predicts counted" 2
                (delta {|vrpd_requests_total{op="predict"}|});
              Alcotest.(check int) "latency histogram observed" 2
                (delta {|vrpd_request_seconds_count{op="predict"}|});
              (* The scrape counts itself: the [before] scrape is visible
                 in the [after] scrape's own op counter. *)
              Alcotest.(check bool) "scrapes counted" true
                (delta {|vrpd_requests_total{op="metrics"}|} >= 1);
              (* Engine counters flowed into the same registry. *)
              Alcotest.(check bool) "engine runs exposed" true
                (delta "vrp_engine_runs_total" > 0))))

(* 16 concurrent mixed requests; one carries a crash-file fault. The
   faulted one is contained with exit-code-2 semantics, every other
   response matches the one-shot bytes, and the daemon stays up. *)
let concurrent_mixed_with_crash () =
  let qsort = bench_source "qsort" in
  let sieve = bench_source "sieve" in
  let want_predict = Ops.predict ~opts:Ops.default_opts ~source:qsort () in
  let want_compare =
    Ops.compare_predictors ~opts:Ops.default_opts ~train:[ 100; 1 ]
      ~ref_args:[ 1000; 2 ] ~source:sieve ()
  in
  with_server ~settings:{ Server.default_settings with Server.jobs = 2 }
    (fun server ->
      let results = Array.make 16 None in
      let threads =
        List.init 16 (fun i ->
            Thread.create
              (fun () ->
                let resp =
                  match i with
                  | 5 ->
                    Server.handle server
                      (predict_req ~id:i ~fault:"crash-file:qsort" ~name:"qsort.mc" qsort)
                  | _ when i mod 3 = 0 ->
                    Server.handle server (predict_req ~id:i ~name:"qsort.mc" qsort)
                  | _ when i mod 3 = 1 ->
                    Server.handle server
                      {
                        Protocol.id = i;
                        op = "compare";
                        params = Json.Obj [ ("source", Json.String sieve) ];
                      }
                  | _ ->
                    Server.handle server
                      (analyze_req ~id:i ~session:(Printf.sprintf "s%d" (i mod 2))
                         ~name:"qsort.mc" qsort)
                in
                results.(i) <- Some resp)
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i resp ->
          match resp with
          | None -> Alcotest.failf "request %d lost" i
          | Some (resp : Protocol.response) ->
            Alcotest.(check int) (Printf.sprintf "id echo %d" i) i resp.Protocol.rid;
            if i = 5 then begin
              Alcotest.(check bool) "faulted contained" false resp.Protocol.ok;
              Alcotest.(check int) "faulted code" 2 resp.Protocol.code
            end
            else begin
              Alcotest.(check bool) (Printf.sprintf "ok %d" i) true resp.Protocol.ok;
              let want = if i mod 3 = 1 then want_compare else want_predict in
              Alcotest.(check string)
                (Printf.sprintf "stdout %d" i)
                want.Ops.out resp.Protocol.out
            end)
        results;
      let c = Server.counters server in
      Alcotest.(check int) "served" 15 c.Server.served;
      Alcotest.(check int) "contained" 1 c.Server.contained;
      (* The daemon survived: it still answers. *)
      let resp = Server.handle server { Protocol.id = 99; op = "status"; params = Json.Null } in
      Alcotest.(check bool) "still serving" true resp.Protocol.ok)

(* --- Incremental re-analysis --- *)

let inc_src cutoff =
  Printf.sprintf
    {|
int leaf(int x) {
  if (x > %d) { return 1; }
  return 0;
}
int mid(int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + leaf(i);
    i = i + 1;
  }
  return s;
}
int main(int n, int s) {
  int r = mid(n);
  if (r > 10) { return r; }
  return 0;
}
|}
    cutoff

let inc_v1 = inc_src 5

(* Same program with only [leaf]'s branch constant changed: its structural
   digest moves, its return range ({0,1}) does not — so callers' memo keys
   are unchanged and only leaf's wave must re-run. *)
let inc_v2 = inc_src 3

let get_plan (resp : Protocol.response) =
  match List.assoc_opt "plan" resp.Protocol.data with
  | Some p -> p
  | None -> Alcotest.fail "analyze response has no plan"

let get_cache_delta (resp : Protocol.response) =
  match List.assoc_opt "cache" resp.Protocol.data with
  | Some c -> c
  | None -> Alcotest.fail "analyze response has no cache delta"

let names plan key =
  match Json.mem_list key plan with
  | Some xs -> List.filter_map Json.get_string xs
  | None -> Alcotest.failf "plan has no %s" key

let cint c key = Option.value ~default:(-1) (Json.mem_int key c)

let session_incremental_edit () =
  with_server (fun server ->
      let call source = Server.handle server (analyze_req ~session:"edit" ~name:"inc.mc" source) in
      (* Cold: everything is new. *)
      let r1 = call inc_v1 in
      Alcotest.(check bool) "cold ok" true r1.Protocol.ok;
      let p1 = get_plan r1 in
      Alcotest.(check (option bool)) "fresh" (Some true) (Json.mem_bool "fresh" p1);
      Alcotest.(check (list string)) "all changed" [ "leaf"; "main"; "mid" ]
        (List.sort compare (names p1 "changed"));
      (* Warm identical re-submit: nothing re-runs. *)
      let r2 = call inc_v1 in
      let p2 = get_plan r2 in
      let d2 = get_cache_delta r2 in
      Alcotest.(check (list string)) "nothing changed" [] (names p2 "changed");
      Alcotest.(check (list string)) "all reused" [ "leaf"; "main"; "mid" ]
        (List.sort compare (names p2 "reused"));
      Alcotest.(check int) "warm misses" 0 (cint d2 "misses");
      Alcotest.(check int) "warm invalidations" 0 (cint d2 "invalidations");
      Alcotest.(check bool) "warm hits" true (cint d2 "hits" > 0);
      Alcotest.(check string) "warm bytes identical" r1.Protocol.out r2.Protocol.out;
      (* One-function edit: only leaf's wave is dirty; its callers are
         planned as reused and actually hit (the edit keeps leaf's return
         range, so their memo keys are unchanged). *)
      let r3 = call inc_v2 in
      let p3 = get_plan r3 in
      let d3 = get_cache_delta r3 in
      Alcotest.(check (list string)) "edit changed" [ "leaf" ] (names p3 "changed");
      Alcotest.(check (list string)) "edit dirty" [ "leaf" ] (names p3 "dirty");
      Alcotest.(check (list string)) "edit reused" [ "main"; "mid" ]
        (List.sort compare (names p3 "reused"));
      Alcotest.(check int) "edit invalidates one slot" 1 (cint d3 "invalidations");
      Alcotest.(check bool) "edit re-runs leaf" true (cint d3 "misses" >= 1);
      (* Only leaf's slot may miss: with 3 analysis rounds at most a few
         keys, never the 10+ a cold run costs. *)
      Alcotest.(check bool) "edit misses stay local" true
        (cint d3 "misses" < cint (get_cache_delta r1) "misses");
      Alcotest.(check bool) "edit callers hit" true (cint d3 "hits" > 0);
      (* The incremental answer is byte-identical to a cold one-shot of
         the edited source. *)
      let want = Ops.predict ~opts:Ops.default_opts ~source:inc_v2 () in
      Alcotest.(check string) "edit bytes identical" want.Ops.out r3.Protocol.out)

(* --- Interprocedural cancellation beat (deadline between functions) --- *)

let beat_demotes_between_functions () =
  let c = Pipeline.compile inc_v1 in
  let tok = Diag.Cancel.make () in
  Diag.Cancel.cancel tok;
  (* The engine never runs: the wave driver's own beat must observe the
     cancelled token before each function and demote it. *)
  let poison ~config:_ ~report:_ ~call_oracle:_ ~param_values:_ _ =
    Alcotest.fail "analyze_fn ran despite a cancelled token"
  in
  let report = Diag.create () in
  let config = { Engine.default_config with Engine.cancel = Some tok } in
  let ipa =
    Interproc.analyze ~config ~report ~analyze_fn:poison c.Pipeline.ssa
  in
  Alcotest.(check (option string)) "main demoted with deterministic reason"
    (Some "deadline exceeded")
    (Interproc.failure ipa "main");
  Alcotest.(check bool) "crash diagnostics recorded" true
    (Diag.count_kind report Diag.Analysis_crashed > 0);
  (* Demotion, not abortion: predictions stay total via the fallback. *)
  let vrp, _ =
    Pipeline.vrp_predictions ~config ~report:(Diag.create ()) ~analyze_fn:poison
      c.Pipeline.ssa
  in
  Alcotest.(check bool) "predictions total" true (Hashtbl.length vrp > 0)

(* --- Status / evict / sessions --- *)

let status_and_evict () =
  with_server (fun server ->
      ignore (Server.handle server (analyze_req ~session:"a" ~name:"x.mc" inc_v1));
      ignore (Server.handle server (predict_req ~id:2 ~name:"q.mc" (bench_source "qsort")));
      let status = Server.handle server { Protocol.id = 3; op = "status"; params = Json.Null } in
      Alcotest.(check bool) "status ok" true status.Protocol.ok;
      let data k = List.assoc_opt k status.Protocol.data in
      Alcotest.(check bool) "version present" true
        (data "version" <> None && data "version" = Some (Json.String Vrp_server.Version.version));
      (match data "sessions" with
      | Some (Json.List [ Json.String "a" ]) -> ()
      | _ -> Alcotest.fail "expected one session named a");
      Alcotest.(check bool) "served counted" true
        (match data "served" with Some (Json.Int n) -> n >= 2 | _ -> false);
      let evict = Server.handle server { Protocol.id = 4; op = "evict"; params = Json.Null } in
      Alcotest.(check bool) "evict ok" true evict.Protocol.ok;
      (match List.assoc_opt "evicted" evict.Protocol.data with
      | Some (Json.Int n) -> Alcotest.(check bool) "evicted warm entries" true (n > 0)
      | _ -> Alcotest.fail "no evicted count");
      (* Unknown ops are contained, not fatal. *)
      let bad = Server.handle server { Protocol.id = 5; op = "nonsense"; params = Json.Null } in
      Alcotest.(check bool) "unknown op contained" false bad.Protocol.ok;
      Alcotest.(check int) "unknown op code" 2 bad.Protocol.code)

let version_matches_dune_project () =
  (* lib/server/version.ml is generated from dune-project; pin the pipeline. *)
  let project = "../dune-project" in
  if Sys.file_exists project then begin
    let ic = open_in project in
    let rec find () =
      match input_line ic with
      | line when Astring.String.is_prefix ~affix:"(version " line ->
        Astring.String.with_range ~first:9 ~len:(String.length line - 10) line
      | _ -> find ()
      | exception End_of_file -> Alcotest.fail "dune-project has no (version ...)"
    in
    let v = Fun.protect ~finally:(fun () -> close_in ic) find in
    Alcotest.(check string) "single-sourced version" v Vrp_server.Version.version
  end
  else Alcotest.(check bool) "version non-empty" true (Vrp_server.Version.version <> "")

(* --- Address parsing (last-colon split; IPv6 literals) --- *)

let parse_hostport_units () =
  let check_ok addr want =
    match Protocol.parse_hostport addr with
    | Ok got -> Alcotest.(check (pair string int)) addr want got
    | Error msg -> Alcotest.failf "%s rejected: %s" addr msg
  in
  check_ok "127.0.0.1:7001" ("127.0.0.1", 7001);
  check_ok ":7001" ("127.0.0.1", 7001);
  check_ok "example.test:80" ("example.test", 80);
  (* The port is whatever follows the *last* colon, so IPv6 literals and
     colon-ridden hosts survive; brackets are stripped. *)
  check_ok "[::1]:7001" ("::1", 7001);
  check_ok "::1:7001" ("::1", 7001);
  check_ok "fe80::2:9000" ("fe80::2", 9000);
  List.iter
    (fun addr ->
      match Protocol.parse_hostport addr with
      | Error _ -> ()
      | Ok (h, p) -> Alcotest.failf "%s accepted as %s:%d" addr h p)
    [ "noport"; "host:"; "host:x"; "host:-1"; "host:65536"; "[::1]" ]

let client_parse_addr_units () =
  let addr = Alcotest.testable
      (fun ppf -> function
        | `Unix p -> Format.fprintf ppf "unix:%s" p
        | `Tcp (h, p) -> Format.fprintf ppf "tcp:%s:%d" h p)
      ( = )
  in
  let check name want got = Alcotest.check addr name want got in
  check "unix by slash" (`Unix "/tmp/vrpd.sock") (Client.parse_addr "/tmp/vrpd.sock");
  check "unix by no colon" (`Unix "vrpd.sock") (Client.parse_addr "vrpd.sock");
  check "tcp" (`Tcp ("localhost", 7001)) (Client.parse_addr "localhost:7001");
  check "tcp ipv6" (`Tcp ("::1", 7001)) (Client.parse_addr "[::1]:7001");
  (* A colon-bearing string that is not HOST:PORT stays a Unix path. *)
  check "fallback" (`Unix "weird:name") (Client.parse_addr "weird:name")

let fault_spec_units () =
  (match Diag.Fault.parse "kill-worker:12" with
  | Ok (Diag.Fault.Kill_worker 12) -> ()
  | _ -> Alcotest.fail "kill-worker:12 did not parse");
  (match Diag.Fault.parse "slow-worker:600" with
  | Ok (Diag.Fault.Slow_worker 600) -> ()
  | _ -> Alcotest.fail "slow-worker:600 did not parse");
  (match Diag.Fault.parse "flood-conns:300" with
  | Ok (Diag.Fault.Flood_conns 300) -> ()
  | _ -> Alcotest.fail "flood-conns:300 did not parse");
  (match Diag.Fault.parse "stall-frame:2500" with
  | Ok (Diag.Fault.Stall_frame 2500) -> ()
  | _ -> Alcotest.fail "stall-frame:2500 did not parse");
  List.iter
    (fun spec ->
      match Diag.Fault.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %s" spec)
    [ "kill-worker:0"; "kill-worker:"; "slow-worker:x"; "flood-conns:0"; "stall-frame:x" ];
  Alcotest.(check string) "round-trip" "kill-worker:3"
    (Diag.Fault.to_string (Diag.Fault.Kill_worker 3));
  Alcotest.(check string) "chaos round-trip" "flood-conns:64"
    (Diag.Fault.to_string (Diag.Fault.Flood_conns 64))

(* --- Socket hygiene: live daemons are not stolen, stale files are --- *)

let listen_unix_live_probe () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vrpd-probe-%d.sock" (Unix.getpid ()))
  in
  with_server (fun server ->
      let listen_fd = Server.listen_unix sock in
      let th = Thread.create (fun () -> Server.serve server listen_fd) () in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Thread.join th;
          (try Unix.close listen_fd with _ -> ());
          try Sys.remove sock with _ -> ())
        (fun () ->
          (* The path is a live daemon: binding again must refuse, and the
             daemon must still answer afterwards. *)
          (match Server.listen_unix sock with
          | fd ->
            (try Unix.close fd with _ -> ());
            Alcotest.fail "listen_unix stole a live daemon's socket"
          | exception Failure msg ->
            Alcotest.(check bool) "clear error" true
              (Astring.String.is_infix ~affix:"live daemon" msg));
          Client.with_connection sock (fun conn ->
              let resp = Client.request conn ~op:"ping" () in
              Alcotest.(check bool) "daemon survived the probe" true resp.Protocol.ok)));
  (* A stale socket file (bound once, daemon gone) is reclaimed. *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX sock);
  Unix.close fd;
  let fd2 = Server.listen_unix sock in
  (try Unix.close fd2 with _ -> ());
  try Sys.remove sock with _ -> ()

(* --- Ping --- *)

let ping_op () =
  with_server (fun server ->
      let resp = Server.handle server { Protocol.id = 7; op = "ping"; params = Json.Null } in
      Alcotest.(check bool) "ok" true resp.Protocol.ok;
      Alcotest.(check int) "rid echo" 7 resp.Protocol.rid;
      Alcotest.(check (option bool)) "pong" (Some true)
        (List.assoc_opt "pong" resp.Protocol.data |> Option.map (fun v -> v = Json.Bool true));
      Alcotest.(check (option int)) "pid" (Some (Unix.getpid ()))
        (Option.bind (List.assoc_opt "pid" resp.Protocol.data) Json.get_int);
      (* Ping doubles as the fleet's load probe. *)
      let n k = Option.bind (List.assoc_opt k resp.Protocol.data) Json.get_int in
      Alcotest.(check (option int)) "idle inflight" (Some 0) (n "inflight");
      Alcotest.(check (option int)) "capacity"
        (Some Vrp_server.Admit.default_limits.Vrp_server.Admit.max_inflight)
        (n "capacity");
      Alcotest.(check (option int)) "no shed yet" (Some 0) (n "shed"))

(* --- TCP round trip: the same wire suite over listen_tcp --- *)

let tcp_wire_round_trip () =
  with_server ~settings:{ Server.default_settings with Server.jobs = 2 }
    (fun server ->
      let listen_fd = Server.listen_tcp ~host:"127.0.0.1" ~port:0 in
      let port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, port) -> port
        | _ -> Alcotest.fail "listen_tcp did not bind an inet address"
      in
      let th = Thread.create (fun () -> Server.serve server listen_fd) () in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Thread.join th;
          try Unix.close listen_fd with _ -> ())
        (fun () ->
          let addr = Printf.sprintf "127.0.0.1:%d" port in
          Client.with_connection addr (fun conn ->
              List.iter
                (fun (name, source) ->
                  let want = Ops.predict ~opts:Ops.default_opts ~source () in
                  let resp =
                    Client.request conn ~op:"predict"
                      ~params:
                        (Json.Obj
                           [ ("source", Json.String source); ("name", Json.String name) ])
                      ()
                  in
                  Alcotest.(check string) (name ^ " tcp stdout") want.Ops.out
                    resp.Protocol.out;
                  Alcotest.(check int) (name ^ " tcp code") want.Ops.code
                    resp.Protocol.code)
                (corpus_sources ());
              let resp = Client.request conn ~op:"shutdown" () in
              Alcotest.(check bool) "tcp shutdown ok" true resp.Protocol.ok)))

(* --- Client failover retry --- *)

let request_retry_failover () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vrpd-retry-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove sock with _ -> ());
  (* The daemon comes up only after the client has started retrying — the
     connection-refused window a crash-replaced worker presents. *)
  let server = Server.create () in
  let listen_fd = ref Unix.stdin in
  let th =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        listen_fd := Server.listen_unix sock;
        Server.serve server !listen_fd)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join th;
      (try Unix.close !listen_fd with _ -> ());
      Server.shutdown server;
      try Sys.remove sock with _ -> ())
    (fun () ->
      let resp = Client.request_retry ~addr:sock ~op:"ping" () in
      Alcotest.(check bool) "retry reached the late daemon" true resp.Protocol.ok);
  (* Out of tries against nothing at all: the last error propagates. *)
  match Client.request_retry ~attempts:2 ~backoff_ms:1 ~addr:sock ~op:"ping" () with
  | _ -> Alcotest.fail "request_retry succeeded against no daemon"
  | exception (Unix.Unix_error _ | Failure _) -> ()

(* --- Fleet: routing, status, failover under worker kills, wedge --- *)

let fleet_dir tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "vrp-fleet-%s-%d" tag (Unix.getpid ()))

let with_fleet ~tag ?worker_settings settings_of f =
  let dir = fleet_dir tag in
  let settings = settings_of (Fleet.default_settings ~dir) in
  let fleet =
    Fleet.create ~settings ~spawner:(Fleet.in_process_spawner ?worker_settings ()) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Fleet.shutdown fleet;
      try Unix.rmdir dir with _ -> ())
    (fun () -> f fleet)

let fleet_routing_and_status () =
  with_fleet ~tag:"route"
    (fun s -> { s with Fleet.size = 2 })
    (fun fleet ->
      (* Routing is deterministic and session-sticky. *)
      let params = Json.Obj [ ("session", Json.String "edit") ] in
      let s1 = Fleet.route_sock fleet ~op:"analyze" ~params in
      let s2 = Fleet.route_sock fleet ~op:"analyze" ~params in
      Alcotest.(check string) "stable shard" s1 s2;
      (* A proxied predict answers the one-shot bytes. *)
      let qsort = bench_source "qsort" in
      let want = Ops.predict ~opts:Ops.default_opts ~source:qsort () in
      let resp = Fleet.handle fleet (predict_req ~id:3 ~name:"qsort.mc" qsort) in
      Alcotest.(check bool) "proxied ok" true resp.Protocol.ok;
      Alcotest.(check int) "proxied rid rewritten" 3 resp.Protocol.rid;
      Alcotest.(check string) "proxied bytes" want.Ops.out resp.Protocol.out;
      (* fleet-status is answered by the front door itself. *)
      let st = Fleet.handle fleet { Protocol.id = 4; op = "fleet-status"; params = Json.Null } in
      Alcotest.(check bool) "status ok" true st.Protocol.ok;
      Alcotest.(check (option int)) "size" (Some 2)
        (Option.bind (List.assoc_opt "size" st.Protocol.data) Json.get_int);
      Alcotest.(check (option int)) "healthy" (Some 2)
        (Option.bind (List.assoc_opt "healthy" st.Protocol.data) Json.get_int);
      (match List.assoc_opt "workers" st.Protocol.data with
      | Some (Json.List ws) ->
        Alcotest.(check int) "worker rows" 2 (List.length ws);
        (* Every worker row carries the load fields routing keys off. *)
        List.iter
          (fun w ->
            List.iter
              (fun k ->
                if Json.mem_int k w = None then
                  Alcotest.failf "worker row missing %s" k)
              [ "inflight"; "capacity"; "shed" ])
          ws
      | _ -> Alcotest.fail "no workers list");
      (* [metrics] is front-door-local: the proxy answers from its own
         registry with its fleet counters and per-worker health gauges. *)
      let m =
        Fleet.handle fleet { Protocol.id = 5; op = "metrics"; params = Json.Null }
      in
      Alcotest.(check bool) "metrics ok" true m.Protocol.ok;
      List.iter
        (fun affix ->
          if not (Astring.String.is_infix ~affix m.Protocol.out) then
            Alcotest.failf "fleet scrape missing %s" affix)
        [
          "# TYPE vrpd_fleet_requests_total counter";
          {|vrpd_fleet_requests_total{op="predict"}|};
          "vrpd_fleet_workers_healthy 2.0";
          {|vrpd_fleet_worker_up{worker="0"} 1.0|};
          {|vrpd_fleet_worker_up{worker="1"} 1.0|};
        ])

(* The acceptance scenario: a fleet front door on a live socket, 16
   concurrent clients, the kill-worker fault firing repeatedly mid-run.
   Zero requests may be lost, every response must carry the one-shot CLI's
   exact bytes, and fleet-status must report the replacements. *)
let fleet_kill_failover_16_clients () =
  let qsort = bench_source "qsort" and sieve = bench_source "sieve" in
  let want_q = Ops.predict ~opts:Ops.default_opts ~source:qsort () in
  let want_s = Ops.predict ~opts:Ops.default_opts ~source:sieve () in
  with_fleet ~tag:"chaos"
    (fun s ->
      {
        s with
        Fleet.size = 3;
        ping_interval_ms = 50;
        fault = Some (Diag.Fault.Kill_worker 8);
      })
    (fun fleet ->
      let front = Filename.concat (Fleet.settings fleet).Fleet.dir "front.sock" in
      let listen_fd = Server.listen_unix front in
      let th = Thread.create (fun () -> Fleet.serve fleet listen_fd) () in
      Fun.protect
        ~finally:(fun () ->
          Fleet.stop fleet;
          Thread.join th;
          (try Unix.close listen_fd with _ -> ());
          try Sys.remove front with _ -> ())
        (fun () ->
          let n_clients = 16 and per_client = 2 in
          let results = Array.make (n_clients * per_client) None in
          let threads =
            List.init n_clients (fun i ->
                Thread.create
                  (fun () ->
                    for j = 0 to per_client - 1 do
                      let idx = (i * per_client) + j in
                      let name, src =
                        if idx mod 2 = 0 then ("qsort.mc", qsort) else ("sieve.mc", sieve)
                      in
                      let resp =
                        Client.request_retry ~seed:idx ~addr:front ~op:"predict"
                          ~params:
                            (Json.Obj
                               [ ("source", Json.String src); ("name", Json.String name) ])
                          ()
                      in
                      results.(idx) <- Some resp
                    done)
                  ())
          in
          List.iter Thread.join threads;
          Array.iteri
            (fun idx resp ->
              match resp with
              | None -> Alcotest.failf "request %d lost under churn" idx
              | Some (resp : Protocol.response) ->
                let want = if idx mod 2 = 0 then want_q else want_s in
                Alcotest.(check bool) (Printf.sprintf "ok %d" idx) true resp.Protocol.ok;
                Alcotest.(check string)
                  (Printf.sprintf "stdout %d byte-identical" idx)
                  want.Ops.out resp.Protocol.out;
                Alcotest.(check string)
                  (Printf.sprintf "stderr %d" idx)
                  want.Ops.err resp.Protocol.err;
                Alcotest.(check int) (Printf.sprintf "code %d" idx) want.Ops.code
                  resp.Protocol.code)
            results;
          (* 32 proxied requests with kill-worker:8 fired 4 kills; the
             supervisor must have replaced workers and reported it. *)
          let st = Client.request_retry ~addr:front ~op:"fleet-status" () in
          let n k = Option.bind (List.assoc_opt k st.Protocol.data) Json.get_int in
          Alcotest.(check bool) "workers replaced" true
            (match n "replaced" with Some r -> r >= 1 | None -> false);
          Alcotest.(check bool) "failovers recorded" true
            (match n "failovers" with Some f -> f >= 1 | None -> false);
          let c = Fleet.counters fleet in
          Alcotest.(check int) "nothing contained" 0 c.Fleet.contained))

(* Wedged workers: every incarnation is slowed past the ping timeout, so
   the monitor replaces each slot until its restart budget is gone and the
   slot degrades; a fully degraded fleet contains requests instead of
   hanging them. *)
let fleet_wedged_worker_degrades () =
  with_fleet ~tag:"wedge"
    ~worker_settings:
      { Server.default_settings with Server.fault = Some (Diag.Fault.Slow_worker 600) }
    (fun s ->
      {
        s with
        Fleet.size = 2;
        ping_interval_ms = 60;
        ping_timeout_ms = 150;
        restarts = 1;
        retries = 2;
        retry_backoff_ms = 20;
      })
    (fun fleet ->
      let deadline = Unix.gettimeofday () +. 20.0 in
      while (not (Fleet.degraded fleet)) && Unix.gettimeofday () < deadline do
        Thread.delay 0.05
      done;
      Alcotest.(check bool) "wedged slots degraded" true (Fleet.degraded fleet);
      (* Give the monitor time to walk every slot to degradation. *)
      let all_degraded () =
        match
          Fleet.handle fleet { Protocol.id = 1; op = "fleet-status"; params = Json.Null }
        with
        | st -> (
          match Option.bind (List.assoc_opt "healthy" st.Protocol.data) Json.get_int with
          | Some 0 -> true
          | _ -> false)
      in
      while (not (all_degraded ())) && Unix.gettimeofday () < deadline do
        Thread.delay 0.05
      done;
      Alcotest.(check bool) "every slot degraded" true (all_degraded ());
      let c = Fleet.counters fleet in
      Alcotest.(check bool) "replacements were attempted" true (c.Fleet.replaced >= 1);
      (* Routing with no healthy workers contains, it does not hang. *)
      let resp = Fleet.handle fleet (predict_req ~id:9 ~name:"x.mc" "int main(){ return 0; }") in
      Alcotest.(check bool) "contained" false resp.Protocol.ok;
      Alcotest.(check int) "exit-code-2 semantics" 2 resp.Protocol.code)

(* --- Overload: framing edges, admission ladder, deadlines, sweeper --- *)

let busy_response_units () =
  let r = Protocol.busy_response ~rid:5 ~retry_after_ms:40 "at capacity" in
  Alcotest.(check bool) "not ok" false r.Protocol.ok;
  Alcotest.(check int) "exit-code-2 semantics" 2 r.Protocol.code;
  Alcotest.(check (option int)) "retry hint" (Some 40) (Protocol.retry_after_ms r);
  (match List.assoc_opt "diagnostic" r.Protocol.data with
  | Some d ->
    Alcotest.(check (option string)) "kind" (Some "busy") (Json.mem_string "kind" d)
  | None -> Alcotest.fail "busy response has no diagnostic");
  (* The hint survives the wire codec. *)
  (match Protocol.decode_response (Protocol.encode_response r) with
  | Ok r' ->
    Alcotest.(check (option int)) "hint on the wire" (Some 40)
      (Protocol.retry_after_ms r')
  | Error msg -> Alcotest.failf "decode: %s" msg);
  (* Only a failing response with a well-formed hint reads as busy. *)
  let ok_resp =
    { Protocol.rid = 1; ok = true; code = 0; out = ""; err = "";
      data = [ ("retry_after_ms", Json.Int 10) ] }
  in
  Alcotest.(check (option int)) "ok response is not busy" None
    (Protocol.retry_after_ms ok_resp);
  Alcotest.(check (option int)) "plain error is not busy" None
    (Protocol.retry_after_ms (Protocol.error_response ~rid:1 ~kind:"crashed" "x"))

(* A peer dying inside the 4-byte header is a torn frame, not a clean EOF
   and not a hang. *)
let frame_partial_header_eof () =
  with_socketpair (fun a b ->
      ignore (Unix.write a (Bytes.of_string "\x00\x00") 0 2);
      Unix.close a;
      match Protocol.read_frame b with
      | exception Failure _ -> ()
      | Some _ -> Alcotest.fail "partial header produced a frame"
      | None -> Alcotest.fail "partial header read as clean EOF")

(* An adversarial length prefix must not cost its claimed size up front:
   the payload is read in bounded chunks, so a 32 MiB claim followed by a
   disconnect allocates chunk-order memory, not 32 MiB. *)
let frame_oversize_prefix_bounded_alloc () =
  with_socketpair (fun a b ->
      let header = Bytes.of_string "\x02\x00\x00\x00" (* 32 MiB *) in
      ignore (Unix.write a header 0 4);
      Unix.close a;
      let before = Gc.allocated_bytes () in
      (match Protocol.read_frame b with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "torn 32 MiB frame accepted");
      let allocated = Gc.allocated_bytes () -. before in
      Alcotest.(check bool)
        (Printf.sprintf "bounded allocation (%.0f bytes)" allocated)
        true
        (allocated < 4_000_000.))

let overload_sock tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "vrpd-%s-%d.sock" tag (Unix.getpid ()))

(* Run a server on a live Unix socket with the given admission limits. *)
let with_live_server ?settings ~tag f =
  let sock = overload_sock tag in
  (try Sys.remove sock with _ -> ());
  with_server ?settings (fun server ->
      let listen_fd = Server.listen_unix sock in
      let th = Thread.create (fun () -> Server.serve server listen_fd) () in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Thread.join th;
          (try Unix.close listen_fd with _ -> ());
          try Sys.remove sock with _ -> ())
        (fun () -> f server sock))

(* An oversize length prefix on a live connection is answered with a
   structured bad-frame response (rid 0), only that connection dies, and
   the daemon keeps serving. *)
let oversize_prefix_contained_live () =
  with_live_server ~tag:"oversize" (fun _server sock ->
      let fd = Client.connect_fd sock in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          (* 64 MiB + 1: one past the cap. *)
          ignore (Unix.write fd (Bytes.of_string "\x04\x00\x00\x01") 0 4);
          match Protocol.read_frame fd with
          | Some payload -> (
            match Protocol.decode_response payload with
            | Ok resp ->
              Alcotest.(check bool) "refused" false resp.Protocol.ok;
              Alcotest.(check int) "rid 0 (no request read)" 0 resp.Protocol.rid;
              (match List.assoc_opt "diagnostic" resp.Protocol.data with
              | Some d ->
                Alcotest.(check (option string)) "bad-frame" (Some "bad-frame")
                  (Json.mem_string "kind" d)
              | None -> Alcotest.fail "no diagnostic")
            | Error msg -> Alcotest.failf "undecodable answer: %s" msg)
          | None -> Alcotest.fail "connection closed without a bad-frame answer");
      (* The daemon survived; a fresh connection analyses normally. *)
      let resp = Client.request_retry ~addr:sock ~op:"ping" () in
      Alcotest.(check bool) "daemon alive after bad frame" true resp.Protocol.ok)

(* A peer dying mid-payload kills only its own connection. *)
let eof_mid_payload_contained_live () =
  with_live_server ~tag:"midframe" (fun _server sock ->
      let fd = Client.connect_fd sock in
      ignore (Unix.write fd (Bytes.of_string "\x00\x00\x00\x0aabc") 0 7);
      Unix.close fd;
      let qsort = bench_source "qsort" in
      let want = Ops.predict ~opts:Ops.default_opts ~source:qsort () in
      let resp =
        Client.request_retry ~addr:sock ~op:"predict"
          ~params:
            (Json.Obj
               [ ("source", Json.String qsort); ("name", Json.String "qsort.mc") ])
          ()
      in
      Alcotest.(check bool) "served after torn peer" true resp.Protocol.ok;
      Alcotest.(check string) "byte-identical" want.Ops.out resp.Protocol.out)

let admit_shed_ladder_units () =
  let limits =
    { Admit.max_conns = 2; max_inflight = 1; max_queue = 0; queue_wait_ms = 10;
      idle_timeout_ms = 0 }
  in
  let a = Admit.create ~limits () in
  (match Admit.admit a () with
  | Admit.Admitted -> ()
  | _ -> Alcotest.fail "idle admit refused");
  (* Slot taken, zero queue: immediate shed with a positive hint. *)
  (match Admit.admit a () with
  | Admit.Shed ms -> Alcotest.(check bool) "positive hint" true (ms > 0)
  | _ -> Alcotest.fail "over-capacity admit not shed");
  (* A request already past its deadline is expired, not queued. *)
  (match Admit.admit a ~deadline:(Unix.gettimeofday () -. 1.) () with
  | Admit.Expired -> ()
  | _ -> Alcotest.fail "dead request not expired");
  Admit.release a;
  (match Admit.admit a () with
  | Admit.Admitted -> Admit.release a
  | _ -> Alcotest.fail "released slot not reusable");
  let c = Admit.counters a in
  Alcotest.(check int) "admitted" 2 c.Admit.admitted;
  Alcotest.(check int) "shed requests" 1 c.Admit.shed_requests;
  Alcotest.(check int) "expired" 1 c.Admit.expired;
  Alcotest.(check int) "peak inflight" 1 c.Admit.peak_inflight;
  (* Connection ladder: two slots, then shed. *)
  Alcotest.(check bool) "conn 1" true (Admit.try_conn a);
  Alcotest.(check bool) "conn 2" true (Admit.try_conn a);
  Alcotest.(check bool) "conn 3 shed" false (Admit.try_conn a);
  Admit.conn_closed a;
  Alcotest.(check bool) "slot freed" true (Admit.try_conn a)

(* deadline_ms is charged from arrival: a request whose budget is already
   gone is shed as deadline-expired, never dispatched. *)
let deadline_expired_before_dispatch () =
  with_server (fun server ->
      let req =
        {
          Protocol.id = 11;
          op = "predict";
          params =
            Json.Obj
              [
                ("source", Json.String "int main(){ return 0; }");
                ("name", Json.String "x.mc");
                ("deadline_ms", Json.Int 0);
              ];
        }
      in
      let resp = Server.handle server req in
      Alcotest.(check bool) "refused" false resp.Protocol.ok;
      Alcotest.(check int) "exit-code-2 semantics" 2 resp.Protocol.code;
      (match List.assoc_opt "diagnostic" resp.Protocol.data with
      | Some d ->
        Alcotest.(check (option string)) "kind" (Some "deadline-expired")
          (Json.mem_string "kind" d)
      | None -> Alcotest.fail "no diagnostic");
      let a = Admit.counters (Server.admit server) in
      Alcotest.(check int) "counted as expired" 1 a.Admit.expired;
      (* The same request without the dead budget is served. *)
      let ok =
        Server.handle server
          {
            Protocol.id = 12;
            op = "predict";
            params =
              Json.Obj
                [
                  ("source", Json.String "int main(){ return 0; }");
                  ("name", Json.String "x.mc");
                  ("deadline_ms", Json.Int 60_000);
                ];
          }
      in
      Alcotest.(check bool) "live budget served" true ok.Protocol.ok)

(* Accept-then-shed: the connection over max_conns gets one structured busy
   frame (rid 0) with a retry hint, and the admitted connection is
   undisturbed. *)
let max_conns_accept_shed () =
  let settings =
    { Server.default_settings with
      Server.limits = { Admit.default_limits with Admit.max_conns = 1 } }
  in
  with_live_server ~settings ~tag:"maxconns" (fun _server sock ->
      Client.with_connection sock (fun conn ->
          (* Ensure the first connection is accepted and registered. *)
          let resp = Client.request conn ~op:"ping" () in
          Alcotest.(check bool) "first conn admitted" true resp.Protocol.ok;
          let fd = Client.connect_fd sock in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with _ -> ())
            (fun () ->
              match Protocol.read_frame fd with
              | Some payload -> (
                match Protocol.decode_response payload with
                | Ok busy ->
                  Alcotest.(check int) "rid 0" 0 busy.Protocol.rid;
                  Alcotest.(check bool) "retry hint" true
                    (Protocol.retry_after_ms busy <> None)
                | Error msg -> Alcotest.failf "undecodable shed frame: %s" msg)
              | None -> Alcotest.fail "shed connection closed without a busy frame");
          (* The admitted connection still works. *)
          let resp = Client.request conn ~op:"ping" () in
          Alcotest.(check bool) "survivor still served" true resp.Protocol.ok))

(* The slow-loris drill: a client that sends 3 header bytes and stalls is
   disconnected by the idle sweeper; a well-behaved client on the same
   daemon is untouched. *)
let idle_sweeper_closes_stalled () =
  let settings =
    { Server.default_settings with
      Server.limits = { Admit.default_limits with Admit.idle_timeout_ms = 150 } }
  in
  with_live_server ~settings ~tag:"sweeper" (fun server sock ->
      let fd = Client.connect_fd sock in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          ignore (Unix.write fd (Bytes.of_string "\x00\x00\x00") 0 3);
          (* The sweeper (or SO_RCVTIMEO) must cut us off well within 5s. *)
          match Unix.select [ fd ] [] [] 5.0 with
          | [], _, _ -> Alcotest.fail "stalled connection was not disconnected"
          | _ ->
            let n = Unix.read fd (Bytes.create 64) 0 64 in
            Alcotest.(check int) "EOF, not data" 0 n);
      (* Normal traffic was never disturbed. *)
      let resp = Client.request_retry ~addr:sock ~op:"ping" () in
      Alcotest.(check bool) "daemon healthy" true resp.Protocol.ok;
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        (Admit.counters (Server.admit server)).Admit.idle_closed = 0
        && Unix.gettimeofday () < deadline
      do
        Thread.delay 0.02
      done;
      Alcotest.(check bool) "stall counted" true
        ((Admit.counters (Server.admit server)).Admit.idle_closed >= 1))

(* The acceptance scenario: a daemon capped at 2 in-flight requests, 16
   concurrent remote clients. Shed clients honor retry_after_ms and every
   one of them ends with the byte-identical one-shot answer. *)
let saturation_16_clients_byte_identical () =
  let settings =
    { Server.default_settings with
      Server.jobs = 2;
      Server.limits =
        { Admit.default_limits with
          Admit.max_inflight = 2; max_queue = 2; queue_wait_ms = 30 } }
  in
  with_live_server ~settings ~tag:"saturate" (fun server sock ->
      let qsort = bench_source "qsort" in
      let want = Ops.predict ~opts:Ops.default_opts ~source:qsort () in
      (* Deterministic shed first: pin both in-flight slots directly, so the
         wire request must climb the busy ladder. *)
      let admit = Server.admit server in
      (match (Admit.admit admit (), Admit.admit admit ()) with
      | Admit.Admitted, Admit.Admitted -> ()
      | _ -> Alcotest.fail "could not pin the in-flight slots");
      let busy =
        Client.with_connection sock (fun conn ->
            Client.request conn ~op:"predict"
              ~params:
                (Json.Obj
                   [ ("source", Json.String qsort); ("name", Json.String "qsort.mc") ])
              ())
      in
      Alcotest.(check bool) "saturated daemon sheds" true
        (Protocol.retry_after_ms busy <> None);
      Admit.release admit;
      Admit.release admit;
      (* Now the fleet of clients; request_retry rides out every shed. *)
      let n_clients = 16 in
      let results = Array.make n_clients None in
      let threads =
        List.init n_clients (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  Some
                    (Client.request_retry ~attempts:12 ~seed:i ~addr:sock
                       ~op:"predict"
                       ~params:
                         (Json.Obj
                            [ ("source", Json.String qsort);
                              ("name", Json.String "qsort.mc") ])
                       ()))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i resp ->
          match resp with
          | None -> Alcotest.failf "client %d lost" i
          | Some (resp : Protocol.response) ->
            Alcotest.(check bool) (Printf.sprintf "client %d ok" i) true
              resp.Protocol.ok;
            Alcotest.(check string)
              (Printf.sprintf "client %d byte-identical" i)
              want.Ops.out resp.Protocol.out)
        results;
      let c = Admit.counters admit in
      Alcotest.(check bool) "every dispatch admitted" true (c.Admit.admitted >= 16);
      Alcotest.(check bool) "shed ladder exercised" true (c.Admit.shed_requests >= 1);
      Alcotest.(check bool) "bounded peak" true (c.Admit.peak_inflight <= 2))

(* request_retry treats a busy answer as a delay, not a result: it sleeps
   the hint and replays, and only returns the busy response once out of
   tries. *)
let request_retry_honors_busy () =
  let sock = overload_sock "busyretry" in
  (try Sys.remove sock with _ -> ());
  let listen_fd = Server.listen_unix sock in
  let served_busy = ref 0 in
  let th =
    Thread.create
      (fun () ->
        (* First connection: shed with a 30ms hint. Second: answer. *)
        for round = 0 to 1 do
          let fd, _ = Unix.accept listen_fd in
          (match Protocol.read_frame fd with
          | Some payload -> (
            match Protocol.decode_request payload with
            | Ok req ->
              let resp =
                if round = 0 then begin
                  incr served_busy;
                  Protocol.busy_response ~rid:req.Protocol.id ~retry_after_ms:30
                    "shedding"
                end
                else
                  { Protocol.rid = req.Protocol.id; ok = true; code = 0;
                    out = "pong\n"; err = ""; data = [] }
              in
              Protocol.write_frame fd (Protocol.encode_response resp)
            | Error _ -> ())
          | None | (exception _) -> ());
          try Unix.close fd with _ -> ()
        done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Thread.join th;
      (try Unix.close listen_fd with _ -> ());
      try Sys.remove sock with _ -> ())
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let resp = Client.request_retry ~addr:sock ~op:"ping" () in
      let elapsed_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      Alcotest.(check bool) "retried through busy" true resp.Protocol.ok;
      Alcotest.(check string) "real answer" "pong\n" resp.Protocol.out;
      Alcotest.(check int) "was shed once" 1 !served_busy;
      Alcotest.(check bool) "waited the hint" true (elapsed_ms >= 25.))

(* The session table is bounded: minting fresh session ids evicts the
   least-recently-used session instead of growing without bound. *)
let session_lru_bound () =
  let t = Session.create ~max_sessions:2 () in
  ignore (Session.find_or_create t "a");
  ignore (Session.find_or_create t "b");
  (* Touch [a] so [b] is the LRU victim. *)
  ignore (Session.find_or_create t "a");
  ignore (Session.find_or_create t "c");
  Alcotest.(check int) "bounded" 2 (Session.count t);
  let ids = List.sort compare (Session.ids t) in
  Alcotest.(check (list string)) "LRU evicted" [ "a"; "c" ] ids

let suite =
  ( "server",
    [
      tc "json round-trip" `Quick json_roundtrip;
      tc "json byte-lossless strings" `Quick json_bytes_lossless;
      tc "json parse errors" `Quick json_parse_errors;
      tc "frame round-trip" `Quick frame_roundtrip;
      tc "frame rejects oversize" `Quick frame_rejects_oversize;
      tc "frame detects torn" `Quick frame_detects_torn;
      tc "request/response codec" `Quick request_response_codec;
      tc "error response shape" `Quick error_response_shape;
      tc "predict byte-identical (jobs 1 and 4)" `Quick server_predict_byte_identical;
      tc "wire corpus replay + shutdown" `Quick wire_corpus_replay;
      tc "metrics scrape live daemon" `Quick metrics_scrape_live;
      tc "16 concurrent mixed, one crash" `Quick concurrent_mixed_with_crash;
      tc "session incremental edit" `Quick session_incremental_edit;
      tc "interproc beat demotes between functions" `Quick beat_demotes_between_functions;
      tc "status, evict, unknown op" `Quick status_and_evict;
      tc "version single-sourced" `Quick version_matches_dune_project;
      tc "parse_hostport last-colon + ipv6" `Quick parse_hostport_units;
      tc "client parse_addr" `Quick client_parse_addr_units;
      tc "fault specs kill/slow-worker" `Quick fault_spec_units;
      tc "listen_unix live-daemon probe" `Quick listen_unix_live_probe;
      tc "ping op" `Quick ping_op;
      tc "tcp wire round-trip + shutdown" `Quick tcp_wire_round_trip;
      tc "request_retry failover" `Quick request_retry_failover;
      tc "fleet routing + fleet-status" `Quick fleet_routing_and_status;
      tc "fleet kill-worker failover, 16 clients" `Quick fleet_kill_failover_16_clients;
      tc "fleet wedged workers degrade" `Quick fleet_wedged_worker_degrades;
      tc "busy response + retry_after_ms" `Quick busy_response_units;
      tc "frame partial header EOF" `Quick frame_partial_header_eof;
      tc "frame oversize prefix, bounded alloc" `Quick frame_oversize_prefix_bounded_alloc;
      tc "oversize prefix contained live" `Quick oversize_prefix_contained_live;
      tc "EOF mid-payload contained live" `Quick eof_mid_payload_contained_live;
      tc "admit shed ladder" `Quick admit_shed_ladder_units;
      tc "deadline expired before dispatch" `Quick deadline_expired_before_dispatch;
      tc "max-conns accept-then-shed" `Quick max_conns_accept_shed;
      tc "idle sweeper closes stalled conn" `Quick idle_sweeper_closes_stalled;
      tc "saturation: 16 clients, 2 in-flight" `Quick saturation_16_clients_byte_identical;
      tc "request_retry honors busy" `Quick request_retry_honors_busy;
      tc "session table LRU-bounded" `Quick session_lru_bound;
    ] )
