(** Server-subsystem tests: the hand-rolled JSON codec, the framed wire
    protocol, and the vrpd daemon itself — request handling, the
    byte-identity contract against the one-shot CLI code path ({!Ops} is
    that code path; [bin/vrpc.ml] is a thin printer over it), concurrent
    mixed requests with an injected crash, session-scoped incremental
    re-analysis, and the interprocedural cancellation beat. *)

module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Interproc = Vrp_core.Interproc
module Suite = Vrp_suite.Suite
module Json = Vrp_server.Json
module Protocol = Vrp_server.Protocol
module Ops = Vrp_server.Ops
module Session = Vrp_server.Session
module Server = Vrp_server.Server
module Client = Vrp_server.Client

let tc = Alcotest.test_case

(* --- JSON codec --- *)

let json_roundtrip () =
  let v =
    Json.Obj
      [
        ("id", Json.Int 7);
        ("ok", Json.Bool true);
        ("pi", Json.Float 3.25);
        ("none", Json.Null);
        ("xs", Json.List [ Json.Int 1; Json.String "two"; Json.Bool false ]);
        ("nested", Json.Obj [ ("k", Json.String "v\n\"quoted\"") ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trip" true (v = v')
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let json_bytes_lossless () =
  (* Captured CLI output travels as JSON strings; every byte value must
     survive the encode/decode round trip unchanged. *)
  let s = String.init 256 Char.chr in
  match Json.parse (Json.to_string (Json.String s)) with
  | Ok (Json.String s') -> Alcotest.(check string) "all 256 bytes" s s'
  | Ok _ -> Alcotest.fail "not a string"
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let json_parse_errors () =
  List.iter
    (fun doc ->
      match Json.parse doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid document %S" doc)
    [ ""; "{"; "[1,"; "\"unterminated"; "tru"; "{\"k\" 1}"; "1 2"; "{\"k\":}" ]

(* --- Wire protocol --- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with _ -> ());
      try Unix.close b with _ -> ())
    (fun () -> f a b)

let frame_roundtrip () =
  with_socketpair (fun a b ->
      Protocol.write_frame a "hello";
      Protocol.write_frame a "";
      Protocol.write_frame a (String.make 100_000 'x');
      Unix.close a;
      Alcotest.(check (option string)) "first" (Some "hello") (Protocol.read_frame b);
      Alcotest.(check (option string)) "empty" (Some "") (Protocol.read_frame b);
      (match Protocol.read_frame b with
      | Some s -> Alcotest.(check int) "large" 100_000 (String.length s)
      | None -> Alcotest.fail "large frame lost");
      Alcotest.(check (option string)) "clean EOF" None (Protocol.read_frame b))

let frame_rejects_oversize () =
  with_socketpair (fun a b ->
      (* A header claiming 1 GiB must be rejected before allocation. *)
      let header = Bytes.of_string "\x40\x00\x00\x01" in
      ignore (Unix.write a header 0 4);
      match Protocol.read_frame b with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "oversized frame accepted")

let frame_detects_torn () =
  with_socketpair (fun a b ->
      let header = Bytes.of_string "\x00\x00\x00\x0a" in
      ignore (Unix.write a header 0 4);
      ignore (Unix.write a (Bytes.of_string "abc") 0 3);
      Unix.close a;
      match Protocol.read_frame b with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "torn frame accepted")

let request_response_codec () =
  let req =
    {
      Protocol.id = 42;
      op = "predict";
      params = Json.Obj [ ("source", Json.String "int main(){}") ];
    }
  in
  (match Protocol.decode_request (Protocol.encode_request req) with
  | Ok req' -> Alcotest.(check bool) "request" true (req = req')
  | Error msg -> Alcotest.failf "request decode: %s" msg);
  let resp =
    {
      Protocol.rid = 42;
      ok = true;
      code = 3;
      out = "table\n";
      err = "diag\n";
      data = [ ("n", Json.Int 5) ];
    }
  in
  match Protocol.decode_response (Protocol.encode_response resp) with
  | Ok resp' -> Alcotest.(check bool) "response" true (resp = resp')
  | Error msg -> Alcotest.failf "response decode: %s" msg

let error_response_shape () =
  let r = Protocol.error_response ~rid:9 ~kind:"fault-injected" "boom" in
  Alcotest.(check bool) "not ok" false r.Protocol.ok;
  Alcotest.(check int) "exit-code-2 semantics" 2 r.Protocol.code;
  Alcotest.(check string) "stderr line" "vrpd: boom\n" r.Protocol.err;
  match List.assoc_opt "diagnostic" r.Protocol.data with
  | Some d ->
    Alcotest.(check (option string)) "kind" (Some "fault-injected") (Json.mem_string "kind" d)
  | None -> Alcotest.fail "no structured diagnostic"

(* --- Server harness --- *)

let corpus_sources () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".mc")
  |> List.sort compare
  |> List.map (fun f ->
         let path = Filename.concat "corpus" f in
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> (f, really_input_string ic (in_channel_length ic))))

let bench_source name =
  match Suite.find name with
  | Some b -> b.Suite.source
  | None -> Alcotest.failf "no benchmark %s" name

let with_server ?settings f =
  let server = Server.create ?settings () in
  Fun.protect ~finally:(fun () -> Server.shutdown server) (fun () -> f server)

let predict_req ?(id = 1) ?fault ~name source =
  {
    Protocol.id;
    op = "predict";
    params =
      Json.Obj
        ([ ("source", Json.String source); ("name", Json.String name) ]
        @
        match fault with
        | Some spec -> [ ("fault", Json.String spec) ]
        | None -> []);
  }

let analyze_req ?(id = 1) ~session ~name source =
  {
    Protocol.id;
    op = "analyze";
    params =
      Json.Obj
        [
          ("session", Json.String session);
          ("name", Json.String name);
          ("source", Json.String source);
        ];
  }

(* The daemon's correctness contract: its response carries the one-shot
   CLI's exact bytes, at any pool width. *)
let server_predict_byte_identical () =
  let inputs =
    corpus_sources () @ [ ("qsort.mc", bench_source "qsort"); ("kmp.mc", bench_source "kmp") ]
  in
  let expected =
    List.map (fun (n, src) -> (n, Ops.predict ~opts:Ops.default_opts ~source:src ())) inputs
  in
  List.iter
    (fun jobs ->
      with_server ~settings:{ Server.default_settings with Server.jobs }
        (fun server ->
          List.iter2
            (fun (name, source) (_, (want : Ops.outcome)) ->
              let resp = Server.handle server (predict_req ~name source) in
              Alcotest.(check bool) (name ^ " ok") true resp.Protocol.ok;
              Alcotest.(check string)
                (Printf.sprintf "%s stdout (jobs=%d)" name jobs)
                want.Ops.out resp.Protocol.out;
              Alcotest.(check string) (name ^ " stderr") want.Ops.err resp.Protocol.err;
              Alcotest.(check int) (name ^ " code") want.Ops.code resp.Protocol.code)
            inputs expected))
    [ 1; 4 ]

(* Full wire replay of the corpus through a live daemon socket. *)
let wire_corpus_replay () =
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "vrpd-test-%d.sock" (Unix.getpid ()))
  in
  with_server ~settings:{ Server.default_settings with Server.jobs = 2 }
    (fun server ->
      let listen_fd = Server.listen_unix sock in
      let th = Thread.create (fun () -> Server.serve server listen_fd) () in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Thread.join th;
          (try Unix.close listen_fd with _ -> ());
          try Sys.remove sock with _ -> ())
        (fun () ->
          Client.with_connection sock (fun conn ->
              List.iter
                (fun (name, source) ->
                  let want = Ops.predict ~opts:Ops.default_opts ~source () in
                  let resp =
                    Client.request conn ~op:"predict"
                      ~params:
                        (Json.Obj
                           [ ("source", Json.String source); ("name", Json.String name) ])
                      ()
                  in
                  Alcotest.(check string) (name ^ " wire stdout") want.Ops.out
                    resp.Protocol.out;
                  Alcotest.(check int) (name ^ " wire code") want.Ops.code
                    resp.Protocol.code)
                (corpus_sources ());
              (* A shutdown request is acknowledged, then stops the serve
                 loop after the response is on the wire. *)
              let resp = Client.request conn ~op:"shutdown" () in
              Alcotest.(check bool) "shutdown ok" true resp.Protocol.ok)))

(* 16 concurrent mixed requests; one carries a crash-file fault. The
   faulted one is contained with exit-code-2 semantics, every other
   response matches the one-shot bytes, and the daemon stays up. *)
let concurrent_mixed_with_crash () =
  let qsort = bench_source "qsort" in
  let sieve = bench_source "sieve" in
  let want_predict = Ops.predict ~opts:Ops.default_opts ~source:qsort () in
  let want_compare =
    Ops.compare_predictors ~opts:Ops.default_opts ~train:[ 100; 1 ]
      ~ref_args:[ 1000; 2 ] ~source:sieve ()
  in
  with_server ~settings:{ Server.default_settings with Server.jobs = 2 }
    (fun server ->
      let results = Array.make 16 None in
      let threads =
        List.init 16 (fun i ->
            Thread.create
              (fun () ->
                let resp =
                  match i with
                  | 5 ->
                    Server.handle server
                      (predict_req ~id:i ~fault:"crash-file:qsort" ~name:"qsort.mc" qsort)
                  | _ when i mod 3 = 0 ->
                    Server.handle server (predict_req ~id:i ~name:"qsort.mc" qsort)
                  | _ when i mod 3 = 1 ->
                    Server.handle server
                      {
                        Protocol.id = i;
                        op = "compare";
                        params = Json.Obj [ ("source", Json.String sieve) ];
                      }
                  | _ ->
                    Server.handle server
                      (analyze_req ~id:i ~session:(Printf.sprintf "s%d" (i mod 2))
                         ~name:"qsort.mc" qsort)
                in
                results.(i) <- Some resp)
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i resp ->
          match resp with
          | None -> Alcotest.failf "request %d lost" i
          | Some (resp : Protocol.response) ->
            Alcotest.(check int) (Printf.sprintf "id echo %d" i) i resp.Protocol.rid;
            if i = 5 then begin
              Alcotest.(check bool) "faulted contained" false resp.Protocol.ok;
              Alcotest.(check int) "faulted code" 2 resp.Protocol.code
            end
            else begin
              Alcotest.(check bool) (Printf.sprintf "ok %d" i) true resp.Protocol.ok;
              let want = if i mod 3 = 1 then want_compare else want_predict in
              Alcotest.(check string)
                (Printf.sprintf "stdout %d" i)
                want.Ops.out resp.Protocol.out
            end)
        results;
      let c = Server.counters server in
      Alcotest.(check int) "served" 15 c.Server.served;
      Alcotest.(check int) "contained" 1 c.Server.contained;
      (* The daemon survived: it still answers. *)
      let resp = Server.handle server { Protocol.id = 99; op = "status"; params = Json.Null } in
      Alcotest.(check bool) "still serving" true resp.Protocol.ok)

(* --- Incremental re-analysis --- *)

let inc_src cutoff =
  Printf.sprintf
    {|
int leaf(int x) {
  if (x > %d) { return 1; }
  return 0;
}
int mid(int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + leaf(i);
    i = i + 1;
  }
  return s;
}
int main(int n, int s) {
  int r = mid(n);
  if (r > 10) { return r; }
  return 0;
}
|}
    cutoff

let inc_v1 = inc_src 5

(* Same program with only [leaf]'s branch constant changed: its structural
   digest moves, its return range ({0,1}) does not — so callers' memo keys
   are unchanged and only leaf's wave must re-run. *)
let inc_v2 = inc_src 3

let get_plan (resp : Protocol.response) =
  match List.assoc_opt "plan" resp.Protocol.data with
  | Some p -> p
  | None -> Alcotest.fail "analyze response has no plan"

let get_cache_delta (resp : Protocol.response) =
  match List.assoc_opt "cache" resp.Protocol.data with
  | Some c -> c
  | None -> Alcotest.fail "analyze response has no cache delta"

let names plan key =
  match Json.mem_list key plan with
  | Some xs -> List.filter_map Json.get_string xs
  | None -> Alcotest.failf "plan has no %s" key

let cint c key = Option.value ~default:(-1) (Json.mem_int key c)

let session_incremental_edit () =
  with_server (fun server ->
      let call source = Server.handle server (analyze_req ~session:"edit" ~name:"inc.mc" source) in
      (* Cold: everything is new. *)
      let r1 = call inc_v1 in
      Alcotest.(check bool) "cold ok" true r1.Protocol.ok;
      let p1 = get_plan r1 in
      Alcotest.(check (option bool)) "fresh" (Some true) (Json.mem_bool "fresh" p1);
      Alcotest.(check (list string)) "all changed" [ "leaf"; "main"; "mid" ]
        (List.sort compare (names p1 "changed"));
      (* Warm identical re-submit: nothing re-runs. *)
      let r2 = call inc_v1 in
      let p2 = get_plan r2 in
      let d2 = get_cache_delta r2 in
      Alcotest.(check (list string)) "nothing changed" [] (names p2 "changed");
      Alcotest.(check (list string)) "all reused" [ "leaf"; "main"; "mid" ]
        (List.sort compare (names p2 "reused"));
      Alcotest.(check int) "warm misses" 0 (cint d2 "misses");
      Alcotest.(check int) "warm invalidations" 0 (cint d2 "invalidations");
      Alcotest.(check bool) "warm hits" true (cint d2 "hits" > 0);
      Alcotest.(check string) "warm bytes identical" r1.Protocol.out r2.Protocol.out;
      (* One-function edit: only leaf's wave is dirty; its callers are
         planned as reused and actually hit (the edit keeps leaf's return
         range, so their memo keys are unchanged). *)
      let r3 = call inc_v2 in
      let p3 = get_plan r3 in
      let d3 = get_cache_delta r3 in
      Alcotest.(check (list string)) "edit changed" [ "leaf" ] (names p3 "changed");
      Alcotest.(check (list string)) "edit dirty" [ "leaf" ] (names p3 "dirty");
      Alcotest.(check (list string)) "edit reused" [ "main"; "mid" ]
        (List.sort compare (names p3 "reused"));
      Alcotest.(check int) "edit invalidates one slot" 1 (cint d3 "invalidations");
      Alcotest.(check bool) "edit re-runs leaf" true (cint d3 "misses" >= 1);
      (* Only leaf's slot may miss: with 3 analysis rounds at most a few
         keys, never the 10+ a cold run costs. *)
      Alcotest.(check bool) "edit misses stay local" true
        (cint d3 "misses" < cint (get_cache_delta r1) "misses");
      Alcotest.(check bool) "edit callers hit" true (cint d3 "hits" > 0);
      (* The incremental answer is byte-identical to a cold one-shot of
         the edited source. *)
      let want = Ops.predict ~opts:Ops.default_opts ~source:inc_v2 () in
      Alcotest.(check string) "edit bytes identical" want.Ops.out r3.Protocol.out)

(* --- Interprocedural cancellation beat (deadline between functions) --- *)

let beat_demotes_between_functions () =
  let c = Pipeline.compile inc_v1 in
  let tok = Diag.Cancel.make () in
  Diag.Cancel.cancel tok;
  (* The engine never runs: the wave driver's own beat must observe the
     cancelled token before each function and demote it. *)
  let poison ~config:_ ~report:_ ~call_oracle:_ ~param_values:_ _ =
    Alcotest.fail "analyze_fn ran despite a cancelled token"
  in
  let report = Diag.create () in
  let config = { Engine.default_config with Engine.cancel = Some tok } in
  let ipa =
    Interproc.analyze ~config ~report ~analyze_fn:poison c.Pipeline.ssa
  in
  Alcotest.(check (option string)) "main demoted with deterministic reason"
    (Some "deadline exceeded")
    (Interproc.failure ipa "main");
  Alcotest.(check bool) "crash diagnostics recorded" true
    (Diag.count_kind report Diag.Analysis_crashed > 0);
  (* Demotion, not abortion: predictions stay total via the fallback. *)
  let vrp, _ =
    Pipeline.vrp_predictions ~config ~report:(Diag.create ()) ~analyze_fn:poison
      c.Pipeline.ssa
  in
  Alcotest.(check bool) "predictions total" true (Hashtbl.length vrp > 0)

(* --- Status / evict / sessions --- *)

let status_and_evict () =
  with_server (fun server ->
      ignore (Server.handle server (analyze_req ~session:"a" ~name:"x.mc" inc_v1));
      ignore (Server.handle server (predict_req ~id:2 ~name:"q.mc" (bench_source "qsort")));
      let status = Server.handle server { Protocol.id = 3; op = "status"; params = Json.Null } in
      Alcotest.(check bool) "status ok" true status.Protocol.ok;
      let data k = List.assoc_opt k status.Protocol.data in
      Alcotest.(check bool) "version present" true
        (data "version" <> None && data "version" = Some (Json.String Vrp_server.Version.version));
      (match data "sessions" with
      | Some (Json.List [ Json.String "a" ]) -> ()
      | _ -> Alcotest.fail "expected one session named a");
      Alcotest.(check bool) "served counted" true
        (match data "served" with Some (Json.Int n) -> n >= 2 | _ -> false);
      let evict = Server.handle server { Protocol.id = 4; op = "evict"; params = Json.Null } in
      Alcotest.(check bool) "evict ok" true evict.Protocol.ok;
      (match List.assoc_opt "evicted" evict.Protocol.data with
      | Some (Json.Int n) -> Alcotest.(check bool) "evicted warm entries" true (n > 0)
      | _ -> Alcotest.fail "no evicted count");
      (* Unknown ops are contained, not fatal. *)
      let bad = Server.handle server { Protocol.id = 5; op = "nonsense"; params = Json.Null } in
      Alcotest.(check bool) "unknown op contained" false bad.Protocol.ok;
      Alcotest.(check int) "unknown op code" 2 bad.Protocol.code)

let version_matches_dune_project () =
  (* lib/server/version.ml is generated from dune-project; pin the pipeline. *)
  let project = "../dune-project" in
  if Sys.file_exists project then begin
    let ic = open_in project in
    let rec find () =
      match input_line ic with
      | line when Astring.String.is_prefix ~affix:"(version " line ->
        Astring.String.with_range ~first:9 ~len:(String.length line - 10) line
      | _ -> find ()
      | exception End_of_file -> Alcotest.fail "dune-project has no (version ...)"
    in
    let v = Fun.protect ~finally:(fun () -> close_in ic) find in
    Alcotest.(check string) "single-sourced version" v Vrp_server.Version.version
  end
  else Alcotest.(check bool) "version non-empty" true (Vrp_server.Version.version <> "")

let suite =
  ( "server",
    [
      tc "json round-trip" `Quick json_roundtrip;
      tc "json byte-lossless strings" `Quick json_bytes_lossless;
      tc "json parse errors" `Quick json_parse_errors;
      tc "frame round-trip" `Quick frame_roundtrip;
      tc "frame rejects oversize" `Quick frame_rejects_oversize;
      tc "frame detects torn" `Quick frame_detects_torn;
      tc "request/response codec" `Quick request_response_codec;
      tc "error response shape" `Quick error_response_shape;
      tc "predict byte-identical (jobs 1 and 4)" `Quick server_predict_byte_identical;
      tc "wire corpus replay + shutdown" `Quick wire_corpus_replay;
      tc "16 concurrent mixed, one crash" `Quick concurrent_mixed_with_crash;
      tc "session incremental edit" `Quick session_incremental_edit;
      tc "interproc beat demotes between functions" `Quick beat_demotes_between_functions;
      tc "status, evict, unknown op" `Quick status_and_evict;
      tc "version single-sourced" `Quick version_matches_dune_project;
    ] )
