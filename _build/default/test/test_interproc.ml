(** Interprocedural analysis tests: jump functions, return functions,
    recursion, reachability, cloning. *)

module Interproc = Vrp_core.Interproc
module Engine = Vrp_core.Engine
module Value = Vrp_ranges.Value
module Ir = Vrp_ir.Ir

let tc = Alcotest.test_case

let ipa src = Interproc.analyze (Helpers.compile src).Vrp_core.Pipeline.ssa

let param_value t fname idx =
  match Interproc.result t fname with
  | None -> Alcotest.failf "%s not analysed" fname
  | Some res ->
    let p = List.nth res.Engine.fn.Ir.params idx in
    Engine.value res p

let constant_jump_function () =
  let t =
    ipa
      {|
int f(int x) { return x + 1; }
int main(int n, int s) { return f(41); }
|}
  in
  Alcotest.(check (option int)) "x = 41" (Some 41) (Value.as_constant (param_value t "f" 0))

let merged_jump_functions () =
  let t =
    ipa
      {|
int f(int x) { return x; }
int main(int n, int s) { return f(10) + f(20); }
|}
  in
  let v = param_value t "f" 0 in
  Alcotest.(check bool) "contains both" true
    (Helpers.contains_int v 10 && Helpers.contains_int v 20);
  Alcotest.(check (option int)) "not a single constant" None (Value.as_constant v)

let return_ranges_flow_back () =
  let t =
    ipa
      {|
int pick(int c) {
  if (c > 0) { return 3; }
  return 7;
}
int main(int n, int s) {
  int v = pick(n);
  if (v > 10) { return 1; }
  return 0;
}
|}
  in
  let res = Option.get (Interproc.result t "main") in
  (* v in {3,7}: the v > 10 test is decided false *)
  let decided =
    Hashtbl.fold (fun _ p acc -> acc || p < 1e-9) res.Engine.branch_probs false
  in
  Alcotest.(check bool) "v > 10 decided impossible" true decided

let unknown_args_stay_bottom () =
  let t =
    ipa
      {|
int f(int x) { return x; }
int main(int n, int s) { return f(n); }
|}
  in
  Alcotest.(check bool) "param is bottom" true (Value.is_bottom (param_value t "f" 0))

let recursion_terminates () =
  let t =
    ipa
      {|
int fact(int k) {
  if (k <= 1) { return 1; }
  return k * fact(k - 1);
}
int main(int n, int s) { return fact(10); }
|}
  in
  Alcotest.(check bool) "bounded rounds" true (t.Interproc.rounds <= Interproc.default_max_rounds);
  match Interproc.result t "fact" with
  | Some _ -> ()
  | None -> Alcotest.fail "fact must be analysed"

let unreachable_functions_skipped () =
  let t =
    ipa
      {|
int dead(int x) { return x; }
int main(int n, int s) { return n; }
|}
  in
  Alcotest.(check bool) "dead not analysed" true (Interproc.result t "dead" = None)

let call_through_chain () =
  (* constants should survive two levels of calls *)
  let t =
    ipa
      {|
int inner(int x) { return x * 2; }
int outer(int x) { return inner(x); }
int main(int n, int s) { return outer(21); }
|}
  in
  Alcotest.(check (option int)) "inner sees 21" (Some 21)
    (Value.as_constant (param_value t "inner" 0));
  let res = Option.get (Interproc.result t "main") in
  Alcotest.(check (option int)) "main's return is 42" (Some 42)
    (Value.as_constant res.Engine.return_value)

let proto_validation_decided () =
  (* the flagship interprocedural + symbolic case from the suite *)
  let b = Option.get (Vrp_suite.Suite.find "proto") in
  let t = ipa b.Vrp_suite.Suite.source in
  let res = Option.get (Interproc.result t "validate") in
  Ir.iter_blocks res.Engine.fn (fun blk ->
      match blk.Ir.term with
      | Ir.Br _ -> (
        match Engine.branch_prob res blk.Ir.bid with
        | Some p -> Helpers.check_prob "validate branch impossible" 0.0 p
        | None -> Alcotest.fail "missing probability")
      | Ir.Jump _ | Ir.Ret _ -> ())

let symbolic_does_not_leak () =
  (* callee parameter values must be purely numeric or bottom *)
  let b = Option.get (Vrp_suite.Suite.find "qsort") in
  let t = ipa b.Vrp_suite.Suite.source in
  Hashtbl.iter
    (fun _ (res : Engine.t) ->
      List.iter
        (fun (p : Vrp_ir.Var.t) ->
          match Engine.value res p with
          | Value.Ranges rs ->
            if not (List.for_all Vrp_ranges.Srange.is_numeric rs) then
              Alcotest.failf "symbolic parameter leaked into %s" res.Engine.fn.Ir.fname
          | Value.Top | Value.Bottom -> ())
        res.Engine.fn.Ir.params)
    t.Interproc.results

(* --- cloning --- *)

let clone_source =
  {|
int work(int mode, int reps) {
  int acc = 0;
  for (int i = 0; i < reps; i++) {
    if (mode > 4) { acc = acc + 2; } else { acc = acc + 1; }
  }
  return acc;
}
int main(int n, int s) {
  return work(1, 10) + work(9, 100);
}
|}

let cloning_specialises () =
  let ssa = (Helpers.compile clone_source).Vrp_core.Pipeline.ssa in
  let t = Interproc.analyze ssa in
  let cloned = Vrp_core.Clone.run ssa t in
  Alcotest.(check int) "two clones" 2 cloned.Vrp_core.Clone.clones_made;
  let t' = Interproc.analyze cloned.Vrp_core.Clone.program in
  (* each clone's mode branch is decided one way *)
  let decided_dirs = ref [] in
  Hashtbl.iter
    (fun cname origin ->
      if String.equal origin "work" then begin
        match Interproc.result t' cname with
        | None -> Alcotest.failf "clone %s not analysed" cname
        | Some res ->
          Hashtbl.iter
            (fun _bid p ->
              if p < 1e-9 then decided_dirs := false :: !decided_dirs
              else if p > 1.0 -. 1e-9 then decided_dirs := true :: !decided_dirs)
            res.Engine.branch_probs
      end)
    cloned.Vrp_core.Clone.origin_of;
  Alcotest.(check bool) "one clone decides true, the other false" true
    (List.mem true !decided_dirs && List.mem false !decided_dirs)

let cloned_program_still_runs () =
  let ssa = (Helpers.compile clone_source).Vrp_core.Pipeline.ssa in
  let t = Interproc.analyze ssa in
  let cloned = Vrp_core.Clone.run ssa t in
  let before = Vrp_profile.Interp.run ssa ~args:[ 0; 0 ] in
  let after = Vrp_profile.Interp.run cloned.Vrp_core.Clone.program ~args:[ 0; 0 ] in
  match (before.Vrp_profile.Interp.ret, after.Vrp_profile.Interp.ret) with
  | Vrp_profile.Interp.Vint a, Vrp_profile.Interp.Vint b ->
    Alcotest.(check int) "cloning preserves semantics" a b
  | _ -> Alcotest.fail "int returns expected"

let suite =
  ( "interproc",
    [
      tc "constant jump function" `Quick constant_jump_function;
      tc "merged jump functions" `Quick merged_jump_functions;
      tc "return ranges flow back" `Quick return_ranges_flow_back;
      tc "unknown arguments stay bottom" `Quick unknown_args_stay_bottom;
      tc "recursion terminates" `Quick recursion_terminates;
      tc "unreachable functions skipped" `Quick unreachable_functions_skipped;
      tc "constants through call chain" `Quick call_through_chain;
      tc "proto validation decided" `Quick proto_validation_decided;
      tc "no symbolic leakage across calls" `Quick symbolic_does_not_leak;
      tc "cloning specialises contexts" `Quick cloning_specialises;
      tc "cloning preserves semantics" `Quick cloned_program_still_runs;
    ] )
