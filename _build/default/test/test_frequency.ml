(** Frequency-estimation tests (paper §6 application) and the DOT exporter. *)

module Engine = Vrp_core.Engine
module Frequency = Vrp_core.Frequency
module Ir = Vrp_ir.Ir

let tc = Alcotest.test_case

let fn_freq src =
  let _, fn = Helpers.compile_main src in
  let res = Engine.analyze fn in
  (Frequency.of_engine res, res)

let straight_line_everything_once () =
  let ff, _ = fn_freq "int main(int n, int s) { int x = n + 1; return x; }" in
  Array.iter (fun f -> Helpers.check_prob "once" 1.0 f) ff.Frequency.block_freq

let diamond_splits_and_rejoins () =
  let ff, res =
    fn_freq "int main(int n, int s) { int x = 0; if (n > 0) { x = 1; } else { x = 2; } return x; }"
  in
  (* entry and join execute once; the arms sum to 1 *)
  let fn = res.Engine.fn in
  let arm_sum = ref 0.0 in
  Ir.iter_blocks fn (fun b ->
      match b.Ir.term with
      | Ir.Jump _ -> arm_sum := !arm_sum +. ff.Frequency.block_freq.(b.Ir.bid)
      | Ir.Br _ | Ir.Ret _ -> ());
  Helpers.check_prob "arms sum to 1" 1.0 !arm_sum;
  Helpers.check_prob "entry once" 1.0 ff.Frequency.block_freq.(Ir.entry_bid)

let counted_loop_frequency_matches_trip_count () =
  let ff, res =
    fn_freq
      "int main(int n, int s) { int acc = 0; for (int i = 0; i < 100; i++) { acc = acc + i; \
       } return acc; }"
  in
  (* the loop header executes 101 times per invocation: VRP predicts the
     branch at 100/101, so 1/(1-p·stay...) reconstructs ~101 *)
  let fn = res.Engine.fn in
  let header_freq = ref 0.0 in
  Ir.iter_blocks fn (fun b ->
      match b.Ir.term with
      | Ir.Br _ -> header_freq := Float.max !header_freq ff.Frequency.block_freq.(b.Ir.bid)
      | Ir.Jump _ | Ir.Ret _ -> ());
  if Float.abs (!header_freq -. 101.0) > 1.0 then
    Alcotest.failf "expected header frequency ~101, got %f" !header_freq

let nonterminating_loop_is_capped () =
  let ff, _ =
    fn_freq "int main(int n, int s) { while (1 == 1) { n = n + 1; } return n; }"
  in
  Array.iter
    (fun f ->
      if Float.is_nan f || f > 1.1e12 then Alcotest.failf "frequency not capped: %f" f)
    ff.Frequency.block_freq

let call_graph_frequencies () =
  let src =
    {|
int leaf(int x) { return x + 1; }
int mid(int x) {
  int acc = 0;
  for (int i = 0; i < 10; i++) { acc = acc + leaf(i); }
  return acc;
}
int main(int n, int s) { return mid(1) + mid(2); }
|}
  in
  let c = Helpers.compile src in
  let ipa = Vrp_core.Interproc.analyze c.Vrp_core.Pipeline.ssa in
  let f = Frequency.of_interproc c.Vrp_core.Pipeline.ssa ipa in
  let get name = Option.value ~default:0.0 (Hashtbl.find_opt f.Frequency.call_freq name) in
  Helpers.check_prob "main once" 1.0 (get "main");
  Helpers.check_prob ~eps:0.01 "mid twice" 2.0 (get "mid");
  (* leaf: 2 invocations of mid x 10 loop iterations *)
  if Float.abs (get "leaf" -. 20.0) > 1.0 then
    Alcotest.failf "expected leaf ~20, got %f" (get "leaf")

let recursion_capped () =
  let src =
    {|
int forever(int x) { return forever(x + 1); }
int main(int n, int s) { return forever(0); }
|}
  in
  let c = Helpers.compile src in
  let ipa = Vrp_core.Interproc.analyze c.Vrp_core.Pipeline.ssa in
  let f = Frequency.of_interproc c.Vrp_core.Pipeline.ssa ipa in
  Hashtbl.iter
    (fun _ v -> if Float.is_nan v then Alcotest.fail "recursion produced NaN")
    f.Frequency.call_freq

let hottest_blocks_sorted () =
  let b = Option.get (Vrp_suite.Suite.find "proto") in
  let c = Helpers.compile b.source in
  let ipa = Vrp_core.Interproc.analyze c.Vrp_core.Pipeline.ssa in
  let f = Frequency.of_interproc c.Vrp_core.Pipeline.ssa ipa in
  let hot = Frequency.hottest_blocks f in
  let rec check = function
    | (_, _, a) :: ((_, _, b) :: _ as rest) ->
      if a < b then Alcotest.fail "not sorted";
      check rest
    | _ -> ()
  in
  check hot;
  Alcotest.(check bool) "non-empty" true (hot <> [])

(* frequencies should correlate with actual execution counts *)
let frequencies_correlate_with_reality () =
  let b = Option.get (Vrp_suite.Suite.find "matmul") in
  let c = Helpers.compile b.source in
  let ssa = c.Vrp_core.Pipeline.ssa in
  let observed = (Vrp_profile.Interp.run ssa ~args:b.ref_args).Vrp_profile.Interp.profile in
  let ipa = Vrp_core.Interproc.analyze ssa in
  let f = Frequency.of_interproc ssa ipa in
  (* compare ordering: the hottest observed branch should rank in the top
     half of predicted frequencies *)
  let observed_branches =
    Hashtbl.fold
      (fun (fname, bid) (st : Vrp_profile.Interp.branch_stats) acc ->
        ((fname, bid), st.Vrp_profile.Interp.total) :: acc)
      observed.Vrp_profile.Interp.branches []
    |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  in
  match observed_branches with
  | ((fname, bid), _) :: _ ->
    let predicted =
      Option.value ~default:0.0 (Frequency.global_block_freq f ~fname ~bid)
    in
    Alcotest.(check bool) "hottest observed branch predicted hot" true (predicted > 100.0)
  | [] -> Alcotest.fail "no branches"

(* --- DOT --- *)

let dot_output_well_formed () =
  let _, fn = Helpers.compile_main Vrp_evaluation.Figures.figure2_source in
  let res = Engine.analyze fn in
  let dot = Vrp_ir.Dot.fn_to_dot ~branch_prob:(Engine.branch_prob res) fn in
  Alcotest.(check bool) "digraph header" true
    (Astring.String.is_prefix ~affix:"digraph" dot);
  Alcotest.(check bool) "closed" true (Astring.String.is_suffix ~affix:"}\n" dot);
  Alcotest.(check bool) "has the 91% annotation" true
    (Astring.String.is_infix ~affix:"90.9%" dot);
  (* every block appears *)
  Ir.iter_blocks fn (fun b ->
      if not (Astring.String.is_infix ~affix:(Printf.sprintf "n%d " b.Ir.bid) dot) then
        Alcotest.failf "block %d missing from dot" b.Ir.bid)

let dot_escapes_quotes () =
  let dot =
    Vrp_ir.Dot.fn_to_dot
      ~block_note:(fun _ -> Some "note with \"quotes\" and \\ backslash")
      (snd (Helpers.compile_main "int main(int n, int s) { return n; }"))
  in
  Alcotest.(check bool) "escaped" true (Astring.String.is_infix ~affix:"\\\"quotes\\\"" dot)

let suite =
  ( "frequency",
    [
      tc "straight line" `Quick straight_line_everything_once;
      tc "diamond" `Quick diamond_splits_and_rejoins;
      tc "counted loop" `Quick counted_loop_frequency_matches_trip_count;
      tc "non-terminating loop capped" `Quick nonterminating_loop_is_capped;
      tc "call graph" `Quick call_graph_frequencies;
      tc "recursion capped" `Quick recursion_capped;
      tc "hottest blocks sorted" `Quick hottest_blocks_sorted;
      tc "correlates with reality" `Quick frequencies_correlate_with_reality;
      tc "dot well-formed" `Quick dot_output_well_formed;
      tc "dot escapes" `Quick dot_escapes_quotes;
    ] )
