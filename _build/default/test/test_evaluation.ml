(** Evaluation-harness tests: error-margin mathematics and curve properties. *)

module E = Vrp_evaluation.Error_analysis
module Interp = Vrp_profile.Interp

let tc = Alcotest.test_case

let mk_errors specs =
  List.map
    (fun (err, count) -> { E.key = ("f", 0); error_pp = err; count })
    specs

let margins_are_paper_margins () =
  Alcotest.(check (list int)) "margins <1..<39" (List.init 20 (fun i -> (2 * i) + 1)) E.margins

let percent_within_unweighted () =
  let errs = mk_errors [ (0.5, 1); (2.0, 100); (10.0, 1); (50.0, 1) ] in
  Helpers.check_prob "within 1" 25.0 (E.percent_within ~weighted:false errs 1);
  Helpers.check_prob "within 3" 50.0 (E.percent_within ~weighted:false errs 3);
  Helpers.check_prob "within 11" 75.0 (E.percent_within ~weighted:false errs 11);
  Helpers.check_prob "within 51" 100.0 (E.percent_within ~weighted:false errs 51)

let percent_within_weighted () =
  let errs = mk_errors [ (0.5, 90); (20.0, 10) ] in
  Helpers.check_prob "weighted within 1" 90.0 (E.percent_within ~weighted:true errs 1);
  Helpers.check_prob "weighted within 21" 100.0 (E.percent_within ~weighted:true errs 21)

let mean_error_math () =
  let errs = mk_errors [ (10.0, 1); (20.0, 3) ] in
  Helpers.check_prob "unweighted mean" 15.0 (E.mean_error ~weighted:false errs);
  Helpers.check_prob "weighted mean" 17.5 (E.mean_error ~weighted:true errs)

let curves_are_monotone () =
  let errs = mk_errors [ (0.2, 5); (4.0, 2); (12.0, 9); (33.0, 1) ] in
  let curve = E.curve ~weighted:false errs in
  let rec check = function
    | a :: (b :: _ as rest) ->
      if a > b +. 1e-9 then Alcotest.fail "curve must be non-decreasing";
      check rest
    | _ -> ()
  in
  check curve

let average_curves_math () =
  let c1 = List.map (fun _ -> 100.0) E.margins in
  let c2 = List.map (fun _ -> 0.0) E.margins in
  List.iter (fun v -> Helpers.check_prob "average" 50.0 v) (E.average_curves [ c1; c2 ])

let unexecuted_branches_excluded () =
  let observed = Interp.fresh_profile () in
  Hashtbl.replace observed.Interp.branches ("f", 0) { Interp.taken = 5; total = 10 };
  Hashtbl.replace observed.Interp.branches ("f", 1) { Interp.taken = 0; total = 0 };
  let prediction = Hashtbl.create 4 in
  Hashtbl.replace prediction ("f", 0) 0.5;
  Hashtbl.replace prediction ("f", 1) 0.9;
  let errs = E.branch_errors ~observed prediction in
  Alcotest.(check int) "only executed branches" 1 (List.length errs);
  Helpers.check_prob "exact error" 0.0 (List.hd errs).E.error_pp

let stats_least_squares () =
  let intercept, slope, r2 =
    Vrp_util.Stats.least_squares [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0); (3.0, 7.0) ]
  in
  Helpers.check_prob "intercept" 1.0 intercept;
  Helpers.check_prob "slope" 2.0 slope;
  Helpers.check_prob "r2" 1.0 r2

let suite =
  ( "evaluation",
    [
      tc "paper margins" `Quick margins_are_paper_margins;
      tc "percent within (unweighted)" `Quick percent_within_unweighted;
      tc "percent within (weighted)" `Quick percent_within_weighted;
      tc "mean error" `Quick mean_error_math;
      tc "curves monotone" `Quick curves_are_monotone;
      tc "average curves" `Quick average_curves_math;
      tc "unexecuted branches excluded" `Quick unexecuted_branches_excluded;
      tc "least squares" `Quick stats_least_squares;
    ] )
