(** Engine tests: the paper's worked example in full, loop derivation
    template coverage, assertion narrowing through branches, quota widening,
    unreachable-code probabilities, and configuration ablations. *)

module Engine = Vrp_core.Engine
module Value = Vrp_ranges.Value
module Ir = Vrp_ir.Ir

let tc = Alcotest.test_case

let figure2 =
  {|
int main(int n, int s) {
  int y = 0;
  int acc = 0;
  for (int x = 0; x < 10; x++) {
    if (x > 7) { y = 1; } else { y = x; }
    if (y == 1) { acc = acc + 1; }
  }
  return acc;
}
|}

let paper_figure4_probabilities () =
  let f = Vrp_evaluation.Figures.fig4 () in
  let expect desc p =
    match List.assoc_opt desc f.Vrp_evaluation.Figures.branch_probs with
    | Some got -> Helpers.check_prob ~eps:1e-4 desc p got
    | None ->
      Alcotest.failf "missing branch %s (have: %s)" desc
        (String.concat ", " (List.map fst f.Vrp_evaluation.Figures.branch_probs))
  in
  expect "x.1 < 10" (10.0 /. 11.0);
  expect "x.2 > 7" 0.2;
  expect "y.3 == 1" 0.3

let paper_figure4_ranges () =
  let res = Helpers.analyze_main figure2 in
  let check base expected =
    Alcotest.(check string) base expected (Value.to_string (Helpers.last_version res base))
  in
  (* the paper's x1 (the header φ) is our highest-versioned-but-one... we
     check the distinctive ranges by their paper values *)
  let all =
    let acc = ref [] in
    Ir.iter_blocks res.Engine.fn (fun b ->
        List.iter
          (fun i ->
            match Ir.instr_def i with
            | Some v ->
              acc := Value.to_string res.Engine.values.(v.Vrp_ir.Var.id) :: !acc
            | None -> ())
          b.Ir.instrs);
    !acc
  in
  let expect_present range =
    if not (List.mem range all) then
      Alcotest.failf "expected range %s among results" range
  in
  expect_present "{ 1[0:10:1] }";  (* x1 *)
  expect_present "{ 1[0:9:1] }";  (* x2 = assert(x1 < 10) *)
  expect_present "{ 1[1:10:1] }";  (* x5 = x4 + 1 *)
  expect_present "{ 0.8[0:7:1], 0.2[1:1:0] }";  (* y2 *)
  ignore check

let derive_up_lt () =
  let res =
    Helpers.analyze_main
      "int main(int n, int s) { int i; for (i = 0; i < 100; i++) { } return i; }"
  in
  Helpers.check_prob "P(i<100)" (100.0 /. 101.0) (Helpers.prob_of_branch_on res "i")

let derive_up_le () =
  let res =
    Helpers.analyze_main
      "int main(int n, int s) { int i; for (i = 0; i <= 100; i++) { } return i; }"
  in
  Helpers.check_prob "P(i<=100)" (101.0 /. 102.0) (Helpers.prob_of_branch_on res "i")

let derive_down () =
  let res =
    Helpers.analyze_main
      "int main(int n, int s) { int i; for (i = 99; i >= 0; i = i - 1) { } return i; }"
  in
  Helpers.check_prob "P(i>=0)" (100.0 /. 101.0) (Helpers.prob_of_branch_on res "i")

let derive_strided () =
  let res =
    Helpers.analyze_main
      "int main(int n, int s) { int i; for (i = 0; i < 30; i = i + 3) { } return i; }"
  in
  (* i in [0:30:3]: 10 of 11 values below 30 *)
  Helpers.check_prob "P(i<30)" (10.0 /. 11.0) (Helpers.prob_of_branch_on res "i")

let derive_while_form () =
  let res =
    Helpers.analyze_main
      "int main(int n, int s) { int i = 5; while (i < 25) { i = i + 5; } return i; }"
  in
  Helpers.check_prob "P(i<25)" (4.0 /. 5.0) (Helpers.prob_of_branch_on res "i")

let derive_multi_increment () =
  (* increments {1,2}: gcd 1, conservative overshoot *)
  let src =
    "int main(int n, int s) {\n\
     int i = 0;\n\
     while (i < 100) {\n\
     if (s > 0) { i = i + 2; } else { i = i + 1; }\n\
     }\n\
     return i; }"
  in
  let res = Helpers.analyze_main src in
  let p = Helpers.prob_of_branch_on res "i" in
  (* derived range is [0:101:1]: 100/102 <= p <= 101/102 *)
  if p < 0.95 || p > 1.0 then Alcotest.failf "loop probability out of range: %f" p

let derive_interproc_bound () =
  (* the loop bound arrives as an exactly-known parameter *)
  let src =
    {|
int spin(int k) {
  int i;
  for (i = 0; i < k; i++) { }
  return i;
}
int main(int n, int s) { return spin(50); }
|}
  in
  let c = Helpers.compile src in
  let ipa = Vrp_core.Interproc.analyze c.Vrp_core.Pipeline.ssa in
  let res = Option.get (Vrp_core.Interproc.result ipa "spin") in
  Helpers.check_prob "P(i<50)" (50.0 /. 51.0) (Helpers.prob_of_branch_on res "i")

let derive_symbolic_bound_falls_back () =
  (* unknown bound: the loop branch must fall back to heuristics, not to a
     fabricated probability *)
  let res =
    Helpers.analyze_main
      "int main(int n, int s) { int i; for (i = 0; i < n; i++) { } return i; }"
  in
  let bid =
    let found = ref (-1) in
    Ir.iter_blocks res.Engine.fn (fun b ->
        match b.Ir.term with Ir.Br _ -> if !found < 0 then found := b.Ir.bid | _ -> ());
    !found
  in
  Alcotest.(check bool) "used heuristic fallback" true (Engine.used_fallback res bid)

let assertion_narrowing_through_branch () =
  let src =
    "int main(int n, int s) {\n\
     int x = n;\n\
     if (x < 0) { x = 0; }\n\
     if (x > 100) { x = 100; }\n\
     if (x > 200) { return 1; }\n\
     return 0; }"
  in
  let res = Helpers.analyze_main src in
  (* the third test is decided: x <= 100 < 200 *)
  let probs = Hashtbl.fold (fun _ p acc -> p :: acc) res.Engine.branch_probs [] in
  Alcotest.(check bool) "some branch has probability 0" true
    (List.exists (fun p -> p < 1e-9) probs)

let unreachable_code_probability_zero () =
  let src =
    "int main(int n, int s) { int x = 1; if (x == 2) { return 42; } return 0; }"
  in
  let res = Helpers.analyze_main src in
  (* one block must be unexecuted *)
  Alcotest.(check bool) "has unreachable block" true
    (Array.exists not res.Engine.visited);
  let bid =
    let found = ref (-1) in
    Ir.iter_blocks res.Engine.fn (fun b ->
        match b.Ir.term with Ir.Br _ -> found := b.Ir.bid | _ -> ());
    !found
  in
  Helpers.check_prob "P(x==2)" 0.0 (Helpers.branch_probability res bid)

let quota_widens_to_bottom () =
  (* a non-inductive loop variable (mixed increments signs) must end ⊥ *)
  let src =
    "int main(int n, int s) {\n\
     int x = 0;\n\
     for (int i = 0; i < 100; i++) {\n\
     if (i % 2 == 0) { x = x + 3; } else { x = x - 1; }\n\
     }\n\
     return x; }"
  in
  let res = Helpers.analyze_main src in
  Alcotest.(check bool) "x widened to bottom" true
    (Value.is_bottom (Helpers.last_version res "x")
    ||
    (* the φ specifically *)
    Array.exists Value.is_bottom res.Engine.values)

let copy_is_symbolic_singleton () =
  let res = Helpers.analyze_main "int main(int n, int s) { int x = n; return x; }" in
  match Value.as_copy (Helpers.last_version res "x") with
  | Some v -> Alcotest.(check string) "copies n" "n" v.Vrp_ir.Var.base
  | None -> Alcotest.fail "x must be a symbolic copy of n"

let constant_via_both_arms () =
  let res =
    Helpers.analyze_main
      "int main(int n, int s) { int x; if (n > 0) { x = 21 * 2; } else { x = 42; } return x; }"
  in
  Alcotest.(check (option int)) "x = 42" (Some 42)
    (Value.as_constant (Helpers.last_version res "x"))

let evaluation_counter_positive () =
  let res = Helpers.analyze_main figure2 in
  Alcotest.(check bool) "counted evaluations" true (res.Engine.evaluations > 0)

let no_assertions_ablation_loses_precision () =
  let src =
    "int main(int n, int s) {\n\
     int x = n;\n\
     if (x < 0) { x = 0; }\n\
     if (x > 100) { x = 100; }\n\
     if (x > 200) { return 1; }\n\
     return 0; }"
  in
  let with_a = Helpers.analyze_main src in
  let without_a =
    Helpers.analyze_main
      ~config:{ Engine.default_config with Engine.use_assertions = false }
      src
  in
  let decided res =
    Hashtbl.fold (fun _ p acc -> acc || p < 1e-9 || p > 1.0 -. 1e-9) res.Engine.branch_probs false
  in
  Alcotest.(check bool) "assertions decide a branch" true (decided with_a);
  Alcotest.(check bool) "without assertions nothing is decided" false (decided without_a)

let numeric_only_drops_symbolic_facts () =
  let src =
    "int main(int n, int s) { int x = n; if (x > 10) { x = 10; } if (x > 50) { return 1; } \
     return 0; }"
  in
  let sym = Helpers.analyze_main src in
  let num = Helpers.analyze_main ~config:Engine.numeric_only_config src in
  let count_decided res =
    Hashtbl.fold
      (fun _ p acc -> if p < 1e-9 || p > 1.0 -. 1e-9 then acc + 1 else acc)
      res.Engine.branch_probs 0
  in
  Alcotest.(check bool) "symbolic decides more branches" true
    (count_decided sym > count_decided num)

let derivation_dependency_retriggers () =
  (* The loop bound is a clamped unknown: when its range refines, the
     derived φ must be re-derived (registered dependency). *)
  let src =
    "int main(int n, int s) {\n\
     int bound = 10;\n\
     if (n > 0) { bound = 10; }\n\
     int i;\n\
     for (i = 0; i < bound; i++) { }\n\
     return i; }"
  in
  let res = Helpers.analyze_main src in
  Helpers.check_prob "P(i<bound=10)" (10.0 /. 11.0) (Helpers.prob_of_branch_on res "i")

let even_fallback_config () =
  (* fallback = Even gives exactly 50% for unpredictable branches *)
  let src = "int main(int n, int s) { if (n > 0) { return 1; } return 0; }" in
  let res =
    Helpers.analyze_main ~config:{ Engine.default_config with Engine.fallback = Engine.Even } src
  in
  Hashtbl.iter (fun _ p -> Helpers.check_prob "even fallback" 0.5 p) res.Engine.branch_probs

let ssa_first_worklist_agrees () =
  (* both worklist disciplines must reach the same certain conclusions *)
  let src = Vrp_evaluation.Figures.figure2_source in
  let flow = Helpers.analyze_main src in
  let ssa_first =
    Helpers.analyze_main ~config:{ Engine.default_config with Engine.flow_first = false } src
  in
  Hashtbl.iter
    (fun bid p ->
      match Hashtbl.find_opt ssa_first.Engine.branch_probs bid with
      | Some p' -> Helpers.check_prob ~eps:1e-6 "same probabilities" p p'
      | None -> Alcotest.fail "missing branch under ssa-first")
    flow.Engine.branch_probs

let tiny_quota_still_sound () =
  (* an absurdly small quota must degrade to ⊥/heuristics, never crash or
     produce certainties that contradict execution *)
  let src = Vrp_evaluation.Figures.figure2_source in
  let res = Helpers.analyze_main ~config:{ Engine.default_config with Engine.eval_quota = 1 } src in
  let observed =
    (Vrp_profile.Interp.run (Helpers.compile src).Vrp_core.Pipeline.ssa ~args:[ 0; 0 ])
      .Vrp_profile.Interp.profile
  in
  Hashtbl.iter
    (fun bid p ->
      if (p <= 0.0 || p >= 1.0) && not (Engine.used_fallback res bid) then begin
        match
          Vrp_profile.Interp.observed_prob observed (res.Engine.fn.Ir.fname, bid)
        with
        | Some actual when Float.abs (actual -. p) > 1e-9 ->
          Alcotest.failf "unsound certainty under tiny quota: B%d" bid
        | _ -> ()
      end)
    res.Engine.branch_probs

let termination_on_suite () =
  (* engine must reach a fixed point on every benchmark in bounded work *)
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let c = Helpers.compile b.source in
      List.iter
        (fun fn ->
          let res = Engine.analyze fn in
          let size = Ir.fn_size fn in
          if res.Engine.evaluations > 600 * size then
            Alcotest.failf "%s/%s: %d evaluations for %d instructions" b.name fn.Ir.fname
              res.Engine.evaluations size)
        c.Vrp_core.Pipeline.ssa.Ir.fns)
    Vrp_suite.Suite.benchmarks

let suite =
  ( "engine",
    [
      tc "paper figure 4: probabilities" `Quick paper_figure4_probabilities;
      tc "paper figure 4: ranges" `Quick paper_figure4_ranges;
      tc "derive: up with <" `Quick derive_up_lt;
      tc "derive: up with <=" `Quick derive_up_le;
      tc "derive: down" `Quick derive_down;
      tc "derive: strided" `Quick derive_strided;
      tc "derive: while form" `Quick derive_while_form;
      tc "derive: multiple increments" `Quick derive_multi_increment;
      tc "derive: interprocedural bound" `Quick derive_interproc_bound;
      tc "derive: unknown bound falls back" `Quick derive_symbolic_bound_falls_back;
      tc "assertions narrow through branches" `Quick assertion_narrowing_through_branch;
      tc "unreachable code has probability 0" `Quick unreachable_code_probability_zero;
      tc "quota widens non-inductive vars" `Quick quota_widens_to_bottom;
      tc "copies are symbolic singletons" `Quick copy_is_symbolic_singleton;
      tc "constants through both arms" `Quick constant_via_both_arms;
      tc "evaluation counter" `Quick evaluation_counter_positive;
      tc "ablation: assertions" `Quick no_assertions_ablation_loses_precision;
      tc "ablation: numeric only" `Quick numeric_only_drops_symbolic_facts;
      tc "derivation dependency retriggers" `Quick derivation_dependency_retriggers;
      tc "even fallback" `Quick even_fallback_config;
      tc "ssa-first worklist agrees" `Quick ssa_first_worklist_agrees;
      tc "tiny quota still sound" `Quick tiny_quota_still_sound;
      tc "termination within budget on suite" `Quick termination_on_suite;
    ] )
