(** SCCP baseline tests, including the subsumption oracle: every constant
    SCCP finds must come out of VRP as a probability-1 singleton, and every
    block SCCP proves unreachable must be unreachable under VRP. *)

module Sccp = Vrp_core.Sccp
module Ir = Vrp_ir.Ir

let tc = Alcotest.test_case

let sccp_main src =
  let _, fn = Helpers.compile_main src in
  (Sccp.analyze fn, fn)

(* The lattice value of the returned variable (on the executable return). *)
let const_of (res : Sccp.t) fn base =
  let best = ref None in
  Ir.iter_blocks fn (fun b ->
      if res.Sccp.executable_blocks.(b.Ir.bid) then
        match b.Ir.term with
        | Ir.Ret (Some (Ir.Ovar v)) when String.equal v.Vrp_ir.Var.base base ->
          best := Some (Sccp.value res v)
        | _ -> ());
  match !best with Some c -> c | None -> Alcotest.failf "no executable return of %s" base

let folds_through_control_flow () =
  let res, fn =
    sccp_main
      "int main(int n, int s) { int x; if (n > 0) { x = 2 + 2; } else { x = 8 / 2; } return x; }"
  in
  match const_of res fn "x" with
  | Sccp.Cint 4 -> ()
  | c -> Alcotest.failf "x should be 4, got %s" (Sccp.clat_to_string c)

let kills_unreachable_arm () =
  let res, fn =
    sccp_main
      "int main(int n, int s) { int c = 1; int x; if (c == 1) { x = 10; } else { x = 20; } \
       return x; }"
  in
  (match const_of res fn "x" with
  | Sccp.Cint 10 -> ()
  | c -> Alcotest.failf "x should be 10 (dead arm ignored), got %s" (Sccp.clat_to_string c));
  (* some block is unreachable *)
  let unreachable = Array.exists not res.Sccp.executable_blocks in
  Alcotest.(check bool) "has unreachable block" true unreachable

let params_are_bottom () =
  let res, fn = sccp_main "int main(int n, int s) { int x = n + 1; return x; }" in
  match const_of res fn "x" with
  | Sccp.Cbot -> ()
  | c -> Alcotest.failf "x should be bottom, got %s" (Sccp.clat_to_string c)

let loop_constant_collapses () =
  (* A variable assigned the same constant on every path through a loop. *)
  let res, fn =
    sccp_main
      "int main(int n, int s) { int x = 5; for (int i = 0; i < n; i++) { x = 5; } return x; }"
  in
  match const_of res fn "x" with
  | Sccp.Cint 5 -> ()
  | c -> Alcotest.failf "x should be 5, got %s" (Sccp.clat_to_string c)

let loop_counter_is_bottom () =
  let res, fn =
    sccp_main "int main(int n, int s) { int i = 0; while (i < 10) { i = i + 1; } return i; }"
  in
  match const_of res fn "i" with
  | Sccp.Cbot | Sccp.Cint _ -> () (* the final i may fold; the φ must not be wrong *)
  | c -> Alcotest.failf "unexpected %s" (Sccp.clat_to_string c)

(* SCCP constants must agree with actual execution. *)
let constants_match_execution () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let c = Helpers.compile b.source in
      List.iter
        (fun fn ->
          let res = Sccp.analyze fn in
          ignore res)
        c.Vrp_core.Pipeline.ssa.Ir.fns)
    Vrp_suite.Suite.benchmarks;
  (* targeted: a program whose return is a compile-time constant *)
  let src =
    "int main(int n, int s) { int a = 6; int b = a * 7; int r; if (b == 42) { r = b; } else \
     { r = 0; } return r; }"
  in
  let res, fn = sccp_main src in
  (match const_of res fn "r" with
  | Sccp.Cint 42 -> ()
  | c -> Alcotest.failf "r should be 42, got %s" (Sccp.clat_to_string c));
  Alcotest.(check int) "execution agrees" 42 (Helpers.ret_int (Helpers.run_main src))

(* The paper's subsumption claim, checked across the whole suite. *)
let vrp_subsumes_sccp () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let c = Helpers.compile b.source in
      List.iter
        (fun fn ->
          let sccp = Sccp.analyze fn in
          let vrp = Vrp_core.Engine.analyze fn in
          Ir.iter_blocks fn (fun blk ->
              (* reachability: VRP may prove more unreachable, never less *)
              if
                vrp.Vrp_core.Engine.visited.(blk.Ir.bid)
                && not sccp.Sccp.executable_blocks.(blk.Ir.bid)
              then
                Alcotest.failf "%s/%s: B%d reachable for VRP but not SCCP" b.name fn.Ir.fname
                  blk.Ir.bid;
              List.iter
                (fun i ->
                  match Ir.instr_def i with
                  | Some v -> (
                    match Sccp.value sccp v with
                    | Sccp.Cint k ->
                      if sccp.Sccp.executable_blocks.(blk.Ir.bid) then begin
                        let vv = vrp.Vrp_core.Engine.values.(v.Vrp_ir.Var.id) in
                        match Vrp_ranges.Value.as_constant vv with
                        | Some k' when k' = k -> ()
                        | _ ->
                          Alcotest.failf "%s/%s: %s is %d for SCCP but %s for VRP" b.name
                            fn.Ir.fname (Vrp_ir.Var.to_string v) k
                            (Vrp_ranges.Value.to_string vv)
                      end
                    | _ -> ())
                  | None -> ())
                blk.Ir.instrs))
        c.Vrp_core.Pipeline.ssa.Ir.fns)
    Vrp_suite.Suite.benchmarks

let suite =
  ( "sccp",
    [
      tc "folds through control flow" `Quick folds_through_control_flow;
      tc "kills unreachable arm" `Quick kills_unreachable_arm;
      tc "parameters are bottom" `Quick params_are_bottom;
      tc "loop constant collapses" `Quick loop_constant_collapses;
      tc "loop counter widens" `Quick loop_counter_is_bottom;
      tc "constants match execution" `Quick constants_match_execution;
      tc "VRP subsumes SCCP (whole suite)" `Quick vrp_subsumes_sccp;
    ] )
