(** Front-end tests: lexer, parser, pretty-printer round trips, type
    checker acceptance and diagnostics. *)

open Vrp_lang

let tc = Alcotest.test_case

(* --- Lexer --- *)

let tokens src =
  List.map (fun (l : Lexer.lexed) -> l.Lexer.tok) (Lexer.tokenize src)

let lex_ints () =
  Alcotest.(check bool)
    "ints and floats" true
    (tokens "42 3.5 0" = [ INT 42; FLOAT 3.5; INT 0; EOF ])

let lex_operators () =
  Alcotest.(check bool)
    "compound operators" true
    (tokens "<= >= == != << >> && || += ++"
    = [ LE; GE; EQEQ; NEQ; SHL; SHR; ANDAND; OROR; PLUSEQ; PLUSPLUS; EOF ])

let lex_keywords_vs_idents () =
  Alcotest.(check bool)
    "keywords vs identifiers" true
    (tokens "if iffy for fortune int integer"
    = [ KW_IF; IDENT "iffy"; KW_FOR; IDENT "fortune"; KW_INT; IDENT "integer"; EOF ])

let lex_comments () =
  Alcotest.(check bool)
    "line and block comments" true
    (tokens "a // comment\nb /* multi\nline */ c" = [ IDENT "a"; IDENT "b"; IDENT "c"; EOF ])

let lex_positions () =
  match Lexer.tokenize "x\n  y" with
  | [ a; b; _eof ] ->
    Alcotest.(check (pair int int)) "x at 1:1" (1, 1) (a.Lexer.line, a.Lexer.col);
    Alcotest.(check (pair int int)) "y at 2:3" (2, 3) (b.Lexer.line, b.Lexer.col)
  | _ -> Alcotest.fail "expected two tokens"

let lex_error_char () =
  match Lexer.tokenize "a $ b" with
  | exception Lexer.Error (_, 1, 3) -> ()
  | exception Lexer.Error (m, l, c) -> Alcotest.failf "wrong position %s %d:%d" m l c
  | _ -> Alcotest.fail "expected lexical error"

let lex_unterminated_comment () =
  match Lexer.tokenize "a /* never closed" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lexical error"

(* --- Parser --- *)

let parse src = Parser.parse_program src

let expr_of src =
  match (List.hd (parse ("int f() { return " ^ src ^ "; }")).funcs).body with
  | [ { sdesc = Ast.Sreturn (Some e); _ } ] -> e
  | _ -> Alcotest.fail "unexpected shape"

let parse_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  (match expr_of "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)) -> ()
  | e -> Alcotest.failf "bad precedence: %s" (Pretty.expr_to_string e));
  (* comparisons bind looser than arithmetic *)
  (match expr_of "a + 1 < b * 2" with
  | Ast.Rel (Ast.Lt, Ast.Binop (Ast.Add, _, _), Ast.Binop (Ast.Mul, _, _)) -> ()
  | e -> Alcotest.failf "bad precedence: %s" (Pretty.expr_to_string e));
  (* && binds looser than == *)
  match expr_of "a == 1 && b == 2" with
  | Ast.And (Ast.Rel (Ast.Eq, _, _), Ast.Rel (Ast.Eq, _, _)) -> ()
  | e -> Alcotest.failf "bad precedence: %s" (Pretty.expr_to_string e)

let parse_associativity () =
  match expr_of "10 - 3 - 2" with
  | Ast.Binop (Ast.Sub, Ast.Binop (Ast.Sub, Ast.Int 10, Ast.Int 3), Ast.Int 2) -> ()
  | e -> Alcotest.failf "subtraction must be left-associative: %s" (Pretty.expr_to_string e)

let parse_unary_minus_folds () =
  match expr_of "-5" with
  | Ast.Int (-5) -> ()
  | e -> Alcotest.failf "-5 should fold to a literal: %s" (Pretty.expr_to_string e)

let parse_compound_assign () =
  let p = parse "int f() { int x = 1; x += 2; x++; return x; }" in
  match (List.hd p.funcs).body with
  | [ _; { sdesc = Ast.Sassign (Ast.Lvar "x", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int 2)); _ };
      { sdesc = Ast.Sassign (Ast.Lvar "x", Ast.Binop (Ast.Add, Ast.Var "x", Ast.Int 1)); _ };
      _ ] ->
    ()
  | _ -> Alcotest.fail "compound assignment desugaring"

let parse_dangling_else () =
  let p = parse "int f(int a, int b) { if (a) if (b) return 1; else return 2; return 3; }" in
  match (List.hd p.funcs).body with
  | [ { sdesc = Ast.Sif (_, [ { sdesc = Ast.Sif (_, _, Some _); _ } ], None); _ }; _ ] -> ()
  | _ -> Alcotest.fail "else must attach to the nearest if"

let parse_for_variants () =
  let p = parse "int f() { for (;;) { break; } for (int i = 0; i < 3; i++) {} return 0; }" in
  match (List.hd p.funcs).body with
  | [ { sdesc = Ast.Sfor (None, None, None, _); _ };
      { sdesc = Ast.Sfor (Some _, Some _, Some _, _); _ }; _ ] ->
    ()
  | _ -> Alcotest.fail "for-loop header variants"

let parse_globals () =
  let p = parse "int g;\nfloat arr[10];\nint main(int a, int b) { return 0; }" in
  Alcotest.(check int) "two globals" 2 (List.length p.globals);
  match p.globals with
  | [ { Ast.gsize = None; _ }; { Ast.gsize = Some 10; gty = Ast.Tfloat; _ } ] -> ()
  | _ -> Alcotest.fail "global shapes"

let parse_error_position () =
  match parse "int f() { return 1 + ; }" with
  | exception Parser.Error (_, 1, _) -> ()
  | _ -> Alcotest.fail "expected parse error"

let parse_error_missing_brace () =
  match parse "int f() { return 1;" with
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

(* Round trip: pretty output re-parses to a structurally equal program
   (modulo source lines, which the printer does not preserve). *)
let rec strip_stmt (s : Ast.stmt) = { Ast.sline = 0; sdesc = strip_desc s.Ast.sdesc }

and strip_desc = function
  | Ast.Sif (c, a, b) ->
    Ast.Sif (c, List.map strip_stmt a, Option.map (List.map strip_stmt) b)
  | Ast.Swhile (c, body) -> Ast.Swhile (c, List.map strip_stmt body)
  | Ast.Sfor (i, c, st, body) ->
    Ast.Sfor (Option.map strip_stmt i, c, Option.map strip_stmt st, List.map strip_stmt body)
  | d -> d

let strip (p : Ast.program) =
  {
    Ast.globals = List.map (fun g -> { g with Ast.gline = 0 }) p.globals;
    funcs =
      List.map
        (fun (f : Ast.func) ->
          { f with Ast.fline = 0; Ast.body = List.map strip_stmt f.Ast.body })
        p.funcs;
  }

let roundtrip_suite () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let p1 = Front.parse_and_check b.source in
      let printed = Pretty.program_to_string p1 in
      let p2 =
        try Front.parse_and_check printed
        with e ->
          Alcotest.failf "%s: reprinted source does not parse: %s" b.name
            (Option.value ~default:(Printexc.to_string e) (Front.describe_error e))
      in
      if strip p1 <> strip p2 then Alcotest.failf "%s: round trip not structural" b.name)
    Vrp_suite.Suite.benchmarks

(* --- Type checker --- *)

let accepts src =
  match Front.parse_and_check src with
  | _ -> ()
  | exception e ->
    Alcotest.failf "should type-check: %s"
      (Option.value ~default:(Printexc.to_string e) (Front.describe_error e))

let rejects ?fragment src =
  match Front.parse_and_check src with
  | _ -> Alcotest.fail "should be rejected"
  | exception Typecheck.Error (msg, _) -> (
    match fragment with
    | Some f ->
      if not (Astring.String.is_infix ~affix:f msg) then
        Alcotest.failf "wrong message %S (wanted %S)" msg f
    | None -> ())
  | exception e ->
    Alcotest.failf "wrong exception: %s"
      (Option.value ~default:(Printexc.to_string e) (Front.describe_error e))

let ty_good () =
  accepts "int main(int n, int s) { float f = n; f = f * 2.0; return n; }";
  accepts "int g[4]; int main(int n, int s) { g[0] = n; return g[0]; }";
  accepts "int f(int x) { return x; } int main(int n, int s) { return f(n); }";
  accepts "int main(int n, int s) { for (int i = 0; i < n; i++) { int i2 = i; } return 0; }"

let ty_scoping () =
  (* redeclaration in disjoint scopes and shadowing are both legal *)
  accepts
    "int main(int n, int s) { for (int i = 0; i < 2; i++) {} for (int i = 0; i < 2; i++) {} \
     return 0; }";
  accepts "int main(int n, int s) { int x = 1; if (n) { int x = 2; x = x + 1; } return x; }";
  rejects ~fragment:"duplicate"
    "int main(int n, int s) { int x = 1; int x = 2; return x; }";
  (* a scoped variable is not visible outside its block *)
  rejects ~fragment:"undeclared"
    "int main(int n, int s) { if (n) { int y = 1; } return y; }"

let ty_errors () =
  rejects ~fragment:"undeclared" "int main(int n, int s) { return zz; }";
  rejects ~fragment:"int operands" "int main(int n, int s) { float f = 1.0; return n % 2 + (f % 2.0 > 0.0); }";
  rejects ~fragment:"cannot assign" "int main(int n, int s) { int x = 0; float f = 1.5; x = f; return x; }";
  rejects ~fragment:"argument" "int f(int x) { return x; } int main(int n, int s) { float g = 1.5; return f(g); }";
  rejects ~fragment:"expects" "int f(int x) { return x; } int main(int n, int s) { return f(n, s); }";
  rejects ~fragment:"index" "int a[4]; int main(int n, int s) { float f = 0.5; return a[f]; }";
  rejects ~fragment:"scalar, not an array" "int main(int n, int s) { return n[0]; }";
  rejects ~fragment:"without an index" "int a[4]; int main(int n, int s) { return a; }";
  rejects ~fragment:"break" "int main(int n, int s) { break; return 0; }";
  rejects ~fragment:"continue" "int main(int n, int s) { continue; return 0; }";
  rejects ~fragment:"return a value" "void f() { return 1; } int main(int n, int s) { return 0; }";
  rejects ~fragment:"must return" "int f() { return; } int main(int n, int s) { return 0; }";
  rejects ~fragment:"positive size" "int a[0]; int main(int n, int s) { return 0; }";
  rejects ~fragment:"duplicate function" "int f() { return 0; } int f() { return 1; } int main(int n, int s) { return 0; }";
  rejects ~fragment:"condition" "void p() {} int main(int n, int s) { if (p()) { return 1; } return 0; }"

let suite =
  ( "front",
    [
      tc "lex: ints and floats" `Quick lex_ints;
      tc "lex: operators" `Quick lex_operators;
      tc "lex: keywords vs identifiers" `Quick lex_keywords_vs_idents;
      tc "lex: comments" `Quick lex_comments;
      tc "lex: positions" `Quick lex_positions;
      tc "lex: bad character" `Quick lex_error_char;
      tc "lex: unterminated comment" `Quick lex_unterminated_comment;
      tc "parse: precedence" `Quick parse_precedence;
      tc "parse: associativity" `Quick parse_associativity;
      tc "parse: unary minus folds" `Quick parse_unary_minus_folds;
      tc "parse: compound assignment" `Quick parse_compound_assign;
      tc "parse: dangling else" `Quick parse_dangling_else;
      tc "parse: for variants" `Quick parse_for_variants;
      tc "parse: globals" `Quick parse_globals;
      tc "parse: error position" `Quick parse_error_position;
      tc "parse: missing brace" `Quick parse_error_missing_brace;
      tc "pretty: suite round-trips" `Quick roundtrip_suite;
      tc "types: accepted programs" `Quick ty_good;
      tc "types: lexical scoping" `Quick ty_scoping;
      tc "types: rejected programs" `Quick ty_errors;
    ] )
