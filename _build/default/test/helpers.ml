(** Shared test helpers. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value
module Srange = Vrp_ranges.Srange
module Sym = Vrp_ranges.Sym
module P = Vrp_ranges.Progression

let compile src = Vrp_core.Pipeline.compile src

(** Compile and return the single function [main]. *)
let compile_main src =
  let c = compile src in
  match Ir.find_fn c.Vrp_core.Pipeline.ssa "main" with
  | Some fn -> (c, fn)
  | None -> Alcotest.fail "program has no main"

let analyze_main ?config src =
  let _, fn = compile_main src in
  Vrp_core.Engine.analyze ?config fn

(** Value of the highest SSA version of source variable [base] in [res]
    (its final value at the end of straight-line code). *)
let last_version (res : Vrp_core.Engine.t) (base : string) : Value.t =
  let best = ref None in
  Ir.iter_blocks res.Vrp_core.Engine.fn (fun b ->
      List.iter
        (fun instr ->
          match Ir.instr_def instr with
          | Some v when String.equal v.Vrp_ir.Var.base base -> (
            match !best with
            | Some (prev : Vrp_ir.Var.t) when prev.Vrp_ir.Var.version >= v.Vrp_ir.Var.version
              ->
              ()
            | _ -> best := Some v)
          | _ -> ())
        b.Ir.instrs);
  match !best with
  | Some v -> res.Vrp_core.Engine.values.(v.Vrp_ir.Var.id)
  | None -> Alcotest.failf "no variable with base %s" base

(** Membership of a concrete integer in a value (⊥/⊤/symbolic count as
    containing — the test cares about unsound exclusion only). *)
let contains_int (v : Value.t) (x : int) : bool =
  match v with
  | Value.Top | Value.Bottom -> true
  | Value.Ranges rs ->
    List.exists
      (fun (r : Srange.t) ->
        match Srange.prog r with
        | Some pr when Srange.is_numeric r -> P.mem x pr
        | _ -> true (* symbolic: cannot decide, assume containing *))
      rs

let branch_probability (res : Vrp_core.Engine.t) bid =
  match Vrp_core.Engine.branch_prob res bid with
  | Some p -> p
  | None -> Alcotest.failf "no probability for branch in B%d" bid

(** The probability of the branch whose condition mentions source variable
    [base] (first match in block order). *)
let prob_of_branch_on (res : Vrp_core.Engine.t) (base : string) : float =
  let found = ref None in
  Ir.iter_blocks res.Vrp_core.Engine.fn (fun b ->
      if !found = None then
        match b.Ir.term with
        | Ir.Br br ->
          let mentions =
            List.exists
              (fun (v : Vrp_ir.Var.t) -> String.equal v.Vrp_ir.Var.base base)
              (Ir.term_uses b.Ir.term)
          in
          ignore br;
          if mentions then
            found := Vrp_core.Engine.branch_prob res b.Ir.bid
        | Ir.Jump _ | Ir.Ret _ -> ());
  match !found with
  | Some p -> p
  | None -> Alcotest.failf "no branch on %s" base

let float_eq ?(eps = 1e-6) a b = Float.abs (a -. b) < eps

let check_prob ?(eps = 1e-6) what expected actual =
  if not (float_eq ~eps expected actual) then
    Alcotest.failf "%s: expected %.6f, got %.6f" what expected actual

let run_main ?(args = [ 100; 1 ]) src =
  let c = compile src in
  Vrp_profile.Interp.run c.Vrp_core.Pipeline.ssa ~args

let ret_int (r : Vrp_profile.Interp.result) =
  match r.Vrp_profile.Interp.ret with
  | Vrp_profile.Interp.Vint n -> n
  | Vrp_profile.Interp.Vfloat _ -> Alcotest.fail "expected int return"

(* QCheck plumbing *)
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
