(** Tests for the utility library: growable vectors, the deterministic PRNG,
    statistics helpers. *)

module Vec = Vrp_util.Vec
module Prng = Vrp_util.Prng
module Stats = Vrp_util.Stats

let tc = Alcotest.test_case

let vec_push_get () =
  let v = Vec.create ~dummy:0 in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get 7" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  Alcotest.(check int) "set 7" (-1) (Vec.get v 7)

let vec_pop_clear () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.(check int) "pop" 3 (Vec.pop v);
  Alcotest.(check (list int)) "to_list" [ 1; 2 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let vec_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1 ] in
  (match Vec.get v 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected bounds failure");
  match Vec.pop (Vec.create ~dummy:0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected pop failure"

let vec_iterators () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "fold" 10 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 3) v);
  let doubled = Vec.map ~dummy:0 (fun x -> 2 * x) v in
  Alcotest.(check (list int)) "map" [ 2; 4; 6; 8 ] (Vec.to_list doubled);
  let sum = ref 0 in
  Vec.iteri (fun i x -> sum := !sum + (i * x)) v;
  Alcotest.(check int) "iteri" 20 !sum

let prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let prng_ranges () =
  let r = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "int out of range: %d" v;
    let f = Prng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f;
    let x = Prng.range r (-5) 5 in
    if x < -5 || x > 5 then Alcotest.failf "range out of range: %d" x
  done

let prng_spreads () =
  (* all values of a small range are hit *)
  let r = Prng.create 3 in
  let seen = Array.make 8 false in
  for _ = 1 to 500 do
    seen.(Prng.int r 8) <- true
  done;
  Array.iteri (fun i hit -> if not hit then Alcotest.failf "value %d never drawn" i) seen

let stats_mean () =
  Helpers.check_prob "mean empty" 0.0 (Stats.mean []);
  Helpers.check_prob "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ])

let stats_clamp () =
  Helpers.check_prob "clamp low" 0.0 (Stats.clamp ~lo:0.0 ~hi:1.0 (-0.5));
  Helpers.check_prob "clamp high" 1.0 (Stats.clamp ~lo:0.0 ~hi:1.0 2.0);
  Helpers.check_prob "clamp mid" 0.25 (Stats.clamp ~lo:0.0 ~hi:1.0 0.25)

let stats_least_squares_noise () =
  (* near-linear data: slope recovered, r2 high *)
  let pts = List.init 50 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 5.0)) in
  let intercept, slope, r2 = Stats.least_squares pts in
  Helpers.check_prob ~eps:1e-6 "slope" 3.0 slope;
  Helpers.check_prob ~eps:1e-6 "intercept" 5.0 intercept;
  Helpers.check_prob ~eps:1e-6 "r2" 1.0 r2

let stats_degenerate () =
  let _, _, r2 = Stats.least_squares [ (1.0, 1.0) ] in
  Helpers.check_prob "single point" 0.0 r2;
  let _, slope, _ = Stats.least_squares [ (2.0, 1.0); (2.0, 5.0) ] in
  Helpers.check_prob "vertical" 0.0 slope

let suite =
  ( "util",
    [
      tc "vec: push/get/set" `Quick vec_push_get;
      tc "vec: pop/clear" `Quick vec_pop_clear;
      tc "vec: bounds" `Quick vec_bounds;
      tc "vec: iterators" `Quick vec_iterators;
      tc "prng: deterministic" `Quick prng_deterministic;
      tc "prng: ranges" `Quick prng_ranges;
      tc "prng: spreads" `Quick prng_spreads;
      tc "stats: mean" `Quick stats_mean;
      tc "stats: clamp" `Quick stats_clamp;
      tc "stats: least squares" `Quick stats_least_squares_noise;
      tc "stats: degenerate fits" `Quick stats_degenerate;
    ] )
