test/helpers.ml: Alcotest Array Float List QCheck2 QCheck_alcotest String Vrp_core Vrp_ir Vrp_profile Vrp_ranges
