test/test_semantics.ml: Alcotest Array Float Hashtbl Helpers List Option Printexc Vrp_core Vrp_ir Vrp_profile Vrp_ranges
