test/test_ir.ml: Alcotest Array Hashtbl Helpers List Option Vrp_ir Vrp_lang Vrp_suite
