test/test_ranges.ml: Alcotest Float Helpers Int List Option QCheck2 String Vrp_ir Vrp_lang Vrp_ranges
