test/test_evaluation.ml: Alcotest Hashtbl Helpers List Vrp_evaluation Vrp_profile Vrp_util
