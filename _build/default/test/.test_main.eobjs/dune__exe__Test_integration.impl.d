test/test_integration.ml: Alcotest Float Hashtbl Helpers Lazy List Option QCheck2 Vrp_core Vrp_evaluation Vrp_ir Vrp_profile Vrp_ranges Vrp_suite
