test/test_frequency.ml: Alcotest Array Astring Float Hashtbl Helpers Int List Option Printf Vrp_core Vrp_evaluation Vrp_ir Vrp_profile Vrp_suite
