test/test_interproc.ml: Alcotest Hashtbl Helpers List Option String Vrp_core Vrp_ir Vrp_profile Vrp_ranges Vrp_suite
