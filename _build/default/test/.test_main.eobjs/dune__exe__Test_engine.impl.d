test/test_engine.ml: Alcotest Array Float Hashtbl Helpers List Option String Vrp_core Vrp_evaluation Vrp_ir Vrp_profile Vrp_ranges Vrp_suite
