test/test_front.ml: Alcotest Ast Astring Front Lexer List Option Parser Pretty Printexc Typecheck Vrp_lang Vrp_suite
