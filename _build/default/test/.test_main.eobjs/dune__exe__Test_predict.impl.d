test/test_predict.ml: Alcotest Float Hashtbl Helpers List Option Vrp_core Vrp_evaluation Vrp_ir Vrp_predict Vrp_profile Vrp_suite
