test/test_interp.ml: Alcotest Astring Hashtbl Helpers List Option Printf Vrp_core Vrp_ir Vrp_profile Vrp_suite
