test/test_clients.ml: Alcotest Helpers List Option String Vrp_core Vrp_ir Vrp_profile Vrp_ranges Vrp_suite
