test/test_sccp.ml: Alcotest Array Helpers List String Vrp_core Vrp_ir Vrp_ranges Vrp_suite
