test/test_util.ml: Alcotest Array Helpers List Vrp_util
