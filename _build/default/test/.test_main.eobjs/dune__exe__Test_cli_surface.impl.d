test/test_cli_surface.ml: Alcotest Astring Helpers List Printf Vrp_core Vrp_evaluation Vrp_ir Vrp_suite
