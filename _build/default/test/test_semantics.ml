(** Targeted semantic agreement tests: for a matrix of small programs, the
    static analysis' exact claims must agree with the interpreter, and the
    interpreter must agree with OCaml's own arithmetic. Also covers the
    geometric-derivation extension and engine corner cases. *)

module Engine = Vrp_core.Engine
module Value = Vrp_ranges.Value
module Ir = Vrp_ir.Ir

let tc = Alcotest.test_case

(* Programs whose return value is a compile-time constant: VRP must find
   exactly the value the interpreter computes. *)
let constant_programs =
  [
    ("arith", "int main(int n, int s) { return 2 + 3 * 4 - 6 / 2; }");
    ("shift-mask", "int main(int n, int s) { return ((1 << 10) - 1) & 3; }");
    ("mod-chain", "int main(int n, int s) { return 1000 % 7 % 5; }");
    ("neg", "int main(int n, int s) { return -(3 - 10); }");
    ("bnot", "int main(int n, int s) { return ~(-1); }");
    ( "branchy",
      "int main(int n, int s) { int x = 10; int y; if (x > 5) { y = x * 2; } else { y = 0; \
       } return y; }" );
    ( "calls",
      "int sq(int v) { return v * v; } int main(int n, int s) { return sq(3) + sq(3); }" );
    ( "shortcircuit",
      "int main(int n, int s) { int a = 1; int b = 0; if (a == 1 && b == 0) { return 42; } \
       return 0; }" );
    ( "nested-if",
      "int main(int n, int s) { int a = 3; int b; if (a > 1) { if (a > 2) { b = 7; } else { \
       b = 8; } } else { b = 9; } return b * a; }" );
  ]

let vrp_finds_interpreter_constants () =
  List.iter
    (fun (name, src) ->
      let actual = Helpers.ret_int (Helpers.run_main ~args:[ 0; 0 ] src) in
      let c = Helpers.compile src in
      let ipa = Vrp_core.Interproc.analyze c.Vrp_core.Pipeline.ssa in
      let res = Option.get (Vrp_core.Interproc.result ipa "main") in
      match Value.as_constant res.Engine.return_value with
      | Some k when k = actual -> ()
      | Some k -> Alcotest.failf "%s: VRP says %d, runtime says %d" name k actual
      | None ->
        Alcotest.failf "%s: VRP failed to fold (got %s, runtime %d)" name
          (Value.to_string res.Engine.return_value)
          actual)
    constant_programs

(* Context-insensitive jump-function merging: sq(3) + sq(4) cannot fold (the
   callee sees {3,4}), but the result must still contain the real value —
   and procedure cloning recovers the constant. *)
let context_merge_sound_and_cloning_recovers () =
  let src = "int sq(int v) { return v * v; } int main(int n, int s) { return sq(3) + sq(4); }" in
  let c = Helpers.compile src in
  let ssa = c.Vrp_core.Pipeline.ssa in
  let ipa = Vrp_core.Interproc.analyze ssa in
  let res = Option.get (Vrp_core.Interproc.result ipa "main") in
  Alcotest.(check bool) "contains 25" true
    (Helpers.contains_int res.Engine.return_value 25);
  Alcotest.(check (option int)) "not folded without cloning" None
    (Value.as_constant res.Engine.return_value);
  let cloned = Vrp_core.Clone.run ssa ipa in
  let ipa2 = Vrp_core.Interproc.analyze cloned.Vrp_core.Clone.program in
  let res2 = Option.get (Vrp_core.Interproc.result ipa2 "main") in
  Alcotest.(check (option int)) "cloning recovers the constant" (Some 25)
    (Value.as_constant res2.Engine.return_value)

(* Exact loop-branch predictions across loop shapes: (source, expected). *)
let loop_predictions =
  [
    ("int main(int n, int s) { int i; for (i = 0; i < 10; i++) { } return i; }", 10.0 /. 11.0);
    ("int main(int n, int s) { int i; for (i = 10; i > 0; i = i - 1) { } return i; }", 10.0 /. 11.0);
    ("int main(int n, int s) { int i; for (i = 0; i <= 9; i++) { } return i; }", 10.0 /. 11.0);
    ("int main(int n, int s) { int i; for (i = 5; i < 100; i = i + 10) { } return i; }", 10.0 /. 11.0);
    ("int main(int n, int s) { int i; for (i = 0; i != 8; i++) { } return i; }", 8.0 /. 9.0);
  ]

let loop_branch_predictions_exact () =
  List.iter
    (fun (src, expected) ->
      match Helpers.analyze_main src with
      | res -> (
        match
          Hashtbl.fold (fun _ p acc -> p :: acc) res.Engine.branch_probs []
        with
        | [ p ] -> Helpers.check_prob ~eps:1e-6 src expected p
        | ps -> Alcotest.failf "%s: expected one branch, got %d" src (List.length ps))
      | exception e -> Alcotest.failf "%s: %s" src (Printexc.to_string e))
    loop_predictions

(* The ≠ loop above also cross-checks against runtime behaviour. *)
let loop_predictions_match_runtime () =
  List.iter
    (fun (src, _) ->
      let res = Helpers.analyze_main src in
      let observed =
        (Vrp_profile.Interp.run (Helpers.compile src).Vrp_core.Pipeline.ssa ~args:[ 0; 0 ])
          .Vrp_profile.Interp.profile
      in
      Hashtbl.iter
        (fun bid p ->
          match
            Vrp_profile.Interp.observed_prob observed (res.Engine.fn.Ir.fname, bid)
          with
          | Some actual -> Helpers.check_prob ~eps:1e-6 src actual p
          | None -> ())
        res.Engine.branch_probs)
    loop_predictions

(* Geometric (multiplicative) induction: sound hull + heuristic branch. *)
let geometric_derivation_hull () =
  let src = "int main(int n, int s) { int w = 1; while (w < 1000) { w = w * 2; } return w; }" in
  let res = Helpers.analyze_main src in
  (* final w at runtime is 1024; the φ hull must contain every iterate *)
  let actual = Helpers.ret_int (Helpers.run_main ~args:[ 0; 0 ] src) in
  Alcotest.(check int) "runtime" 1024 actual;
  let phi_value =
    let found = ref Value.bottom in
    Ir.iter_blocks res.Engine.fn (fun b ->
        List.iter
          (fun i ->
            match i with
            | Ir.Def (v, Ir.Phi _) when v.Vrp_ir.Var.base = "w" ->
              found := res.Engine.values.(v.Vrp_ir.Var.id)
            | _ -> ())
          b.Ir.instrs);
    !found
  in
  List.iter
    (fun k ->
      if not (Helpers.contains_int phi_value k) then
        Alcotest.failf "hull misses %d (%s)" k (Value.to_string phi_value))
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024 ];
  (* the loop branch must NOT trust the even-distribution assumption *)
  let bid =
    let found = ref (-1) in
    Ir.iter_blocks res.Engine.fn (fun b ->
        match b.Ir.term with Ir.Br _ -> found := b.Ir.bid | _ -> ());
    !found
  in
  Alcotest.(check bool) "geometric loop branch uses heuristics" true
    (Engine.used_fallback res bid)

let geometric_shl_form () =
  let src = "int main(int n, int s) { int w = 2; while (w < 100) { w = w << 1; } return w; }" in
  let res = Helpers.analyze_main src in
  let actual = Helpers.ret_int (Helpers.run_main ~args:[ 0; 0 ] src) in
  Alcotest.(check int) "runtime" 128 actual;
  (* w's φ must not be ⊥: the derivation handled it *)
  let phi_bottom = ref true in
  Ir.iter_blocks res.Engine.fn (fun b ->
      List.iter
        (fun i ->
          match i with
          | Ir.Def (v, Ir.Phi _) when v.Vrp_ir.Var.base = "w" ->
            phi_bottom := Value.is_bottom res.Engine.values.(v.Vrp_ir.Var.id)
          | _ -> ())
        b.Ir.instrs);
  Alcotest.(check bool) "derived, not bottom" false !phi_bottom

(* The materialised comparison value: t = (a < b) used later. *)
let cmp_materialisation_in_program () =
  let src =
    "int main(int n, int s) {\n\
     int hits = 0;\n\
     for (int i = 0; i < 10; i++) {\n\
     int flag = i < 5;\n\
     if (flag == 1) { hits++; }\n\
     }\n\
     return hits; }"
  in
  let res = Helpers.analyze_main src in
  let actual = Helpers.ret_int (Helpers.run_main ~args:[ 0; 0 ] src) in
  Alcotest.(check int) "runtime" 5 actual;
  (* the flag == 1 branch should be predicted at 50% (5 of 10) *)
  let ok = ref false in
  Hashtbl.iter (fun _ p -> if Float.abs (p -. 0.5) < 0.01 then ok := true) res.Engine.branch_probs;
  Alcotest.(check bool) "flag branch at 50%" true !ok

(* Division and modulo by possibly-zero values must not be folded. *)
let division_never_folded_unsoundly () =
  let src =
    "int main(int n, int s) { int d = n % 3; if (d != 0) { return 100 / d; } return 0; }"
  in
  (* runtime check across several inputs *)
  List.iter
    (fun n ->
      let r = Helpers.ret_int (Helpers.run_main ~args:[ n; 0 ] src) in
      let d = n mod 3 in
      Alcotest.(check int) "agrees" (if d <> 0 then 100 / d else 0) r)
    [ 0; 1; 2; 5; 7 ];
  (* and the analysis completes without claiming a constant *)
  let res = Helpers.analyze_main src in
  match Value.as_constant res.Engine.return_value with
  | Some _ -> Alcotest.fail "return is input-dependent; folding it is wrong"
  | None -> ()

(* Interprocedural numeric-only mode still transports constants. *)
let interproc_numeric_mode () =
  let src =
    "int f(int x) { return x * 3; } int main(int n, int s) { return f(7); }"
  in
  let c = Helpers.compile src in
  let ipa =
    Vrp_core.Interproc.analyze ~config:Engine.numeric_only_config c.Vrp_core.Pipeline.ssa
  in
  let res = Option.get (Vrp_core.Interproc.result ipa "main") in
  Alcotest.(check (option int)) "folds through the call" (Some 21)
    (Value.as_constant res.Engine.return_value)

(* Branch on equal variables: x == x must be certain. *)
let self_comparison_certain () =
  let src = "int main(int n, int s) { if (n == n) { return 1; } return 0; }" in
  let res = Helpers.analyze_main src in
  let p = Hashtbl.fold (fun _ p _ -> Some p) res.Engine.branch_probs None in
  match p with
  | Some p -> Helpers.check_prob "n == n" 1.0 p
  | None -> Alcotest.fail "missing branch"

(* x - x is exactly zero even for unknown x (symbolic cancellation). *)
let symbolic_cancellation () =
  let src = "int main(int n, int s) { int z = n - n; if (z == 0) { return 1; } return 0; }" in
  let res = Helpers.analyze_main src in
  Alcotest.(check (option int)) "returns 1" (Some 1) (Value.as_constant res.Engine.return_value)

let suite =
  ( "semantics",
    [
      tc "VRP finds interpreter constants" `Quick vrp_finds_interpreter_constants;
      tc "context merge sound; cloning folds" `Quick context_merge_sound_and_cloning_recovers;
      tc "loop predictions exact" `Quick loop_branch_predictions_exact;
      tc "loop predictions match runtime" `Quick loop_predictions_match_runtime;
      tc "geometric derivation hull" `Quick geometric_derivation_hull;
      tc "geometric shl form" `Quick geometric_shl_form;
      tc "cmp materialisation" `Quick cmp_materialisation_in_program;
      tc "division never folded unsoundly" `Quick division_never_folded_unsoundly;
      tc "interproc numeric mode" `Quick interproc_numeric_mode;
      tc "self comparison" `Quick self_comparison_certain;
      tc "symbolic cancellation" `Quick symbolic_cancellation;
    ] )
