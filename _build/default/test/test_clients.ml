(** Client-optimization tests (paper §6): constant/copy subsumption and the
    rewriting pass, array-bounds-check elimination, array access
    independence. The rewrite is validated semantically: the rewritten
    function still passes the SSA checker and the whole rewritten program
    computes the same results as the original. *)

module Engine = Vrp_core.Engine
module Optimize = Vrp_core.Optimize
module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value

let tc = Alcotest.test_case

let subsumption_source =
  {|
int main(int n, int s) {
  int base = 6 * 7;
  int doubled;
  if (n > 0) { doubled = base + base; } else { doubled = 84; }
  int alias = doubled;
  int alias2 = alias;
  int dead = 0;
  if (doubled < 50) { dead = s; }
  return alias2 + dead;
}
|}

let finds_constants_and_copies () =
  let res = Helpers.analyze_main subsumption_source in
  let report = Optimize.find_report res in
  Alcotest.(check bool) "found the folded constant 84" true
    (List.exists (fun (_, k) -> k = 84) report.Optimize.constants);
  Alcotest.(check bool) "found copies" true (List.length report.Optimize.copies >= 1);
  Alcotest.(check bool) "decided the impossible branch" true
    (List.exists (fun (_, dir) -> dir = false) report.Optimize.decided_branches)

let rewrite_is_valid_ssa () =
  let res = Helpers.analyze_main subsumption_source in
  let fn' = Optimize.rewrite res in
  Vrp_ir.Check.check_ssa_fn fn';
  Alcotest.(check bool) "rewrite shrinks the cfg" true
    (Ir.num_blocks fn' < Ir.num_blocks res.Engine.fn)

let rewrite_preserves_semantics () =
  (* Rewrite main in several suite programs and compare executions.
     Only intraprocedural facts are used, so the rewritten main is a
     drop-in replacement. *)
  List.iter
    (fun name ->
      let b = Option.get (Vrp_suite.Suite.find name) in
      let c = Helpers.compile b.Vrp_suite.Suite.source in
      let ssa = c.Vrp_core.Pipeline.ssa in
      let fns' =
        List.map
          (fun (fn : Ir.fn) ->
            let res = Engine.analyze fn in
            let fn' = Optimize.rewrite res in
            Vrp_ir.Check.check_ssa_fn fn';
            fn')
          ssa.Ir.fns
      in
      let rewritten = { ssa with Ir.fns = fns' } in
      let r1 = Vrp_profile.Interp.run ssa ~args:b.Vrp_suite.Suite.train_args in
      let r2 = Vrp_profile.Interp.run rewritten ~args:b.Vrp_suite.Suite.train_args in
      match (r1.Vrp_profile.Interp.ret, r2.Vrp_profile.Interp.ret) with
      | Vrp_profile.Interp.Vint a, Vrp_profile.Interp.Vint bb ->
        Alcotest.(check int) (name ^ ": rewrite preserves result") a bb
      | _ -> Alcotest.fail "int returns expected")
    [ "qsort"; "lexer"; "huffman"; "proto"; "fir" ]

let copy_chains_resolve () =
  let src =
    "int main(int n, int s) { int a = n; int b = a; int c = b; return c; }"
  in
  let res = Helpers.analyze_main src in
  let fn' = Optimize.rewrite res in
  (* after rewriting, the return must reference n directly *)
  let returns_param = ref false in
  Ir.iter_blocks fn' (fun b ->
      match b.Ir.term with
      | Ir.Ret (Some (Ir.Ovar v)) when String.equal v.Vrp_ir.Var.base "n" ->
        returns_param := true
      | _ -> ());
  Alcotest.(check bool) "copy chain collapsed to n" true !returns_param

(* --- bounds checks --- *)

let bounds_report src =
  let c = Helpers.compile src in
  let ipa = Vrp_core.Interproc.analyze c.Vrp_core.Pipeline.ssa in
  let res = Option.get (Vrp_core.Interproc.result ipa "main") in
  Vrp_core.Bounds_check.analyze c.Vrp_core.Pipeline.ssa res

let bounds_counted_loop () =
  let r =
    bounds_report
      "int a[100]; int main(int n, int s) { int t = 0; for (int i = 0; i < 100; i++) { t = \
       t + a[i]; } return t; }"
  in
  Alcotest.(check (pair int int)) "all eliminated" (1, 1)
    (r.Vrp_core.Bounds_check.total, r.Vrp_core.Bounds_check.eliminated)

let bounds_clamped_index () =
  let r =
    bounds_report
      "int a[100]; int main(int n, int s) { int i = n; if (i < 0) { i = 0; } if (i > 99) { \
       i = 99; } return a[i]; }"
  in
  Alcotest.(check int) "clamped access eliminated" 1 r.Vrp_core.Bounds_check.eliminated

let bounds_unknown_kept () =
  let r = bounds_report "int a[100]; int main(int n, int s) { return a[n]; }" in
  Alcotest.(check int) "raw index kept" 0 r.Vrp_core.Bounds_check.eliminated

let bounds_off_by_one_kept () =
  let r =
    bounds_report
      "int a[100]; int main(int n, int s) { int t = 0; for (int i = 0; i <= 100; i++) { t = \
       t + a[i % 101]; } return t; }"
  in
  (* the modulus yields [0:100], which overflows a[100]: must be kept *)
  Alcotest.(check int) "kept" 0 r.Vrp_core.Bounds_check.eliminated

let bounds_symbolic_loop_bound () =
  (* i < n with n <= 100 asserted: needs symbolic narrowing + substitution *)
  let r =
    bounds_report
      "int a[100]; int main(int n, int s) { if (n > 100) { n = 100; } int t = 0; for (int i \
       = 0; i < n; i++) { t = t + a[i]; } return t; }"
  in
  Alcotest.(check int) "eliminated through symbolic bound" 1
    r.Vrp_core.Bounds_check.eliminated

(* --- aliasing --- *)

let alias_report src =
  let c = Helpers.compile src in
  let ipa = Vrp_core.Interproc.analyze c.Vrp_core.Pipeline.ssa in
  let res = Option.get (Vrp_core.Interproc.result ipa "main") in
  Vrp_core.Alias.analyze res

let alias_disjoint_halves () =
  let r =
    alias_report
      "int a[200]; int main(int n, int s) {\n\
       int t = 0;\n\
       for (int i = 0; i < 100; i++) {\n\
       a[i] = i;\n\
       t = t + a[i + 100];\n\
       }\n\
       return t; }"
  in
  Alcotest.(check bool) "halves are disjoint" true (r.Vrp_core.Alias.disjoint >= 1)

let alias_parity_strides () =
  let r =
    alias_report
      "int a[200]; int main(int n, int s) {\n\
       int t = 0;\n\
       for (int i = 0; i < 99; i = i + 2) {\n\
       a[i] = i;\n\
       t = t + a[i + 1];\n\
       }\n\
       return t; }"
  in
  (* even store vs odd load: CRT proves disjointness despite overlap *)
  Alcotest.(check bool) "parity-disjoint" true (r.Vrp_core.Alias.disjoint >= 1)

let alias_overlap_detected () =
  let r =
    alias_report
      "int a[200]; int main(int n, int s) {\n\
       int t = 0;\n\
       for (int i = 0; i < 100; i++) {\n\
       a[i] = i;\n\
       t = t + a[i + 50];\n\
       }\n\
       return t; }"
  in
  Alcotest.(check int) "overlapping windows may alias" 0 r.Vrp_core.Alias.disjoint

let suite =
  ( "clients",
    [
      tc "subsumption: constants and copies" `Quick finds_constants_and_copies;
      tc "rewrite: valid ssa" `Quick rewrite_is_valid_ssa;
      tc "rewrite: preserves semantics" `Quick rewrite_preserves_semantics;
      tc "rewrite: copy chains resolve" `Quick copy_chains_resolve;
      tc "bounds: counted loop" `Quick bounds_counted_loop;
      tc "bounds: clamped index" `Quick bounds_clamped_index;
      tc "bounds: unknown kept" `Quick bounds_unknown_kept;
      tc "bounds: off-by-one kept" `Quick bounds_off_by_one_kept;
      tc "bounds: symbolic loop bound" `Quick bounds_symbolic_loop_bound;
      tc "alias: disjoint halves" `Quick alias_disjoint_halves;
      tc "alias: parity strides" `Quick alias_parity_strides;
      tc "alias: overlap detected" `Quick alias_overlap_detected;
    ] )
