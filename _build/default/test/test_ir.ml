(** IR tests: lowering shapes, dominators (vs a naive reference), loops,
    SSA construction invariants, assertion insertion. *)

module Ir = Vrp_ir.Ir
module Dom = Vrp_ir.Dom
module Loops = Vrp_ir.Loops

let tc = Alcotest.test_case

let build src =
  let ast = Vrp_lang.Front.parse_and_check src in
  Vrp_ir.Build.program ast

let build_main src =
  match Ir.find_fn (build src) "main" with
  | Some fn -> fn
  | None -> Alcotest.fail "no main"

(* --- Lowering --- *)

let straight_line_is_one_block () =
  let fn = build_main "int main(int n, int s) { int x = n + 1; int y = x * 2; return y; }" in
  Alcotest.(check int) "single block" 1 (Ir.num_blocks fn)

let if_produces_diamond () =
  let fn = build_main "int main(int n, int s) { int x = 0; if (n > 0) { x = 1; } else { x = 2; } return x; }" in
  (* entry + then + else + join = 4 *)
  Alcotest.(check int) "diamond" 4 (Ir.num_blocks fn)

let branch_successors_single_pred () =
  (* After critical-edge splitting every Br successor has one predecessor. *)
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let p = build b.source in
      List.iter
        (fun (fn : Ir.fn) ->
          Ir.iter_blocks fn (fun blk ->
              match blk.Ir.term with
              | Ir.Br { tdst; fdst; _ } ->
                List.iter
                  (fun d ->
                    if List.length (Ir.block fn d).Ir.preds <> 1 then
                      Alcotest.failf "%s/%s: B%d has several preds" b.name fn.Ir.fname d)
                  [ tdst; fdst ]
              | Ir.Jump _ | Ir.Ret _ -> ()))
        p.Ir.fns)
    Vrp_suite.Suite.benchmarks

let no_unreachable_blocks () =
  let fn =
    build_main
      "int main(int n, int s) { return 1; n = n + 1; while (n > 0) { n = n - 1; } return n; }"
  in
  (* everything after the first return is swept by cleanup *)
  Ir.iter_blocks fn (fun b ->
      if b.Ir.bid <> Ir.entry_bid && b.Ir.preds = [] then
        Alcotest.failf "unreachable block B%d survived cleanup" b.Ir.bid)

let short_circuit_branches () =
  let fn =
    build_main "int main(int n, int s) { if (n > 0 && s > 0) { return 1; } return 0; }"
  in
  let branches = ref 0 in
  Ir.iter_blocks fn (fun b ->
      match b.Ir.term with Ir.Br _ -> incr branches | Ir.Jump _ | Ir.Ret _ -> ());
  Alcotest.(check int) "two conditional branches for &&" 2 !branches

let global_scalars_are_memory () =
  let p = build "int g; int main(int n, int s) { g = n; return g; }" in
  let fn = Option.get (Ir.find_fn p "main") in
  let loads = ref 0 and stores = ref 0 in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun i ->
          match i with
          | Ir.Def (_, Ir.Load ("g", _)) -> incr loads
          | Ir.Store ("g", _, _) -> incr stores
          | _ -> ())
        b.Ir.instrs);
  Alcotest.(check (pair int int)) "load/store pair" (1, 1) (!loads, !stores)

(* --- Dominators: compare against a naive O(n^2) fixpoint --- *)

let naive_dominators (fn : Ir.fn) : bool array array =
  let n = Ir.num_blocks fn in
  let dom = Array.init n (fun _ -> Array.make n true) in
  dom.(Ir.entry_bid) <- Array.init n (fun j -> j = Ir.entry_bid);
  let changed = ref true in
  while !changed do
    changed := false;
    Ir.iter_blocks fn (fun b ->
        if b.Ir.bid <> Ir.entry_bid then begin
          let inter = Array.make n true in
          (match b.Ir.preds with
          | [] -> Array.fill inter 0 n false
          | preds ->
            List.iter (fun p -> Array.iteri (fun i v -> inter.(i) <- inter.(i) && v) dom.(p)) preds);
          inter.(b.Ir.bid) <- true;
          if inter <> dom.(b.Ir.bid) then begin
            dom.(b.Ir.bid) <- inter;
            changed := true
          end
        end)
  done;
  dom

let dominators_match_reference () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let p = build b.source in
      List.iter
        (fun (fn : Ir.fn) ->
          let fast = Dom.compute fn in
          let naive = naive_dominators fn in
          let n = Ir.num_blocks fn in
          for a = 0 to n - 1 do
            for bb = 0 to n - 1 do
              let reachable = fast.Dom.rpo_index.(bb) >= 0 in
              if reachable && Dom.dominates fast a bb <> naive.(bb).(a) then
                Alcotest.failf "%s/%s: dominates %d %d disagrees" b.name fn.Ir.fname a bb
            done
          done)
        p.Ir.fns)
    Vrp_suite.Suite.benchmarks

let idom_is_strict_dominator () =
  let fn = build_main (Option.get (Vrp_suite.Suite.find "qsort")).source in
  let d = Dom.compute fn in
  Array.iteri
    (fun node idom ->
      if idom >= 0 && not (Dom.strictly_dominates d idom node) then
        Alcotest.failf "idom(%d)=%d is not a strict dominator" node idom)
    d.Dom.idom

let postdominators_sane () =
  let fn =
    build_main "int main(int n, int s) { int x = 0; if (n > 0) { x = 1; } else { x = 2; } return x; }"
  in
  let pd = Dom.compute_post fn in
  (* The join block (the one ending in Ret) postdominates everything. *)
  let ret_block = ref (-1) in
  Ir.iter_blocks fn (fun b ->
      match b.Ir.term with Ir.Ret _ -> ret_block := b.Ir.bid | _ -> ());
  Ir.iter_blocks fn (fun b ->
      if not (Dom.postdominates pd !ret_block b.Ir.bid) then
        Alcotest.failf "return block must postdominate B%d" b.Ir.bid);
  (* The then-arm does not postdominate the entry. *)
  let entry_succs = Ir.successors (Ir.block fn Ir.entry_bid).Ir.term in
  List.iter
    (fun s ->
      if Dom.postdominates pd s Ir.entry_bid then
        Alcotest.failf "branch arm B%d must not postdominate entry" s)
    entry_succs

(* --- Loops --- *)

let loop_detection () =
  let fn =
    build_main
      "int main(int n, int s) {\n\
       int acc = 0;\n\
       for (int i = 0; i < n; i++) {\n\
       for (int j = 0; j < i; j++) { acc = acc + j; }\n\
       }\n\
       while (acc > 10) { acc = acc / 2; }\n\
       return acc; }"
  in
  let l = Loops.compute fn in
  Alcotest.(check int) "three natural loops" 3 (Array.length l.Loops.loops);
  let max_depth = Array.fold_left (fun acc lo -> max acc lo.Loops.depth) 0 l.Loops.loops in
  Alcotest.(check int) "nesting depth two" 2 max_depth

let back_edges_vs_headers () =
  let fn = build_main (Option.get (Vrp_suite.Suite.find "kmp")).source in
  let l = Loops.compute fn in
  List.iter
    (fun (latch, header) ->
      if not (Loops.is_loop_header l header) then
        Alcotest.failf "back edge target B%d is not a loop header" header;
      if not (Loops.is_back_edge l ~src:latch ~dst:header) then Alcotest.fail "inconsistent")
    l.Loops.back_edges

let loop_exit_edges () =
  let fn = build_main "int main(int n, int s) { int i = 0; while (i < n) { i++; } return i; }" in
  let l = Loops.compute fn in
  let header = (Array.get l.Loops.loops 0).Loops.header in
  match (Ir.block fn header).Ir.term with
  | Ir.Br { tdst; fdst; _ } ->
    let t_exit = Loops.is_loop_exit_edge l ~src:header ~dst:tdst in
    let f_exit = Loops.is_loop_exit_edge l ~src:header ~dst:fdst in
    Alcotest.(check (pair bool bool)) "true edge stays, false edge exits" (false, true)
      (t_exit, f_exit)
  | _ -> Alcotest.fail "loop header must end in a conditional branch"

(* --- SSA --- *)

let ssa_of src =
  let p = build src in
  let ssa, _ = Vrp_ir.Ssa.transform_program p in
  ssa

let ssa_checker_passes_suite () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let ssa = ssa_of b.source in
      try Vrp_ir.Check.check_ssa_program ssa
      with Vrp_ir.Check.Violation msg -> Alcotest.failf "%s: %s" b.name msg)
    Vrp_suite.Suite.benchmarks

let ssa_assertions_on_both_edges () =
  let ssa = ssa_of "int main(int n, int s) { if (n < 10) { return 1; } return 0; }" in
  let fn = Option.get (Ir.find_fn ssa "main") in
  let asserts = ref [] in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun i ->
          match i with
          | Ir.Def (_, Ir.Assertion { arel; _ }) -> asserts := arel :: !asserts
          | _ -> ())
        b.Ir.instrs);
  let sorted = List.sort compare !asserts in
  Alcotest.(check bool) "Lt and Ge assertions present" true
    (sorted = List.sort compare [ Vrp_lang.Ast.Lt; Vrp_lang.Ast.Ge ])

let ssa_assertions_on_both_operands () =
  let ssa = ssa_of "int main(int n, int s) { if (n < s) { return 1; } return 0; }" in
  let fn = Option.get (Ir.find_fn ssa "main") in
  let count = ref 0 in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun i -> match i with Ir.Def (_, Ir.Assertion _) -> incr count | _ -> ())
        b.Ir.instrs);
  Alcotest.(check int) "two assertions per edge, two edges" 4 !count

let ssa_phi_for_merged_variable () =
  let ssa =
    ssa_of "int main(int n, int s) { int x = 0; if (n) { x = 1; } else { x = 2; } return x; }"
  in
  let fn = Option.get (Ir.find_fn ssa "main") in
  let found = ref false in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun i ->
          match i with
          | Ir.Def (v, Ir.Phi args) when v.Vrp_ir.Var.base = "x" ->
            found := true;
            Alcotest.(check int) "phi arity" (List.length b.Ir.preds) (List.length args)
          | _ -> ())
        b.Ir.instrs);
  Alcotest.(check bool) "x has a phi at the join" true !found

let ssa_never_assigned_reads_zero () =
  (* A use on a path where the variable was never assigned reads 0; the SSA
     construction must realise that as a constant operand, and the
     interpreter agrees. *)
  let src =
    "int main(int n, int s) {\n\
     int y;\n\
     if (n > 0) { y = 7; }\n\
     return y; }"
  in
  let r = Helpers.run_main ~args:[ 0; 0 ] src in
  Alcotest.(check int) "unassigned path reads 0" 0 (Helpers.ret_int r);
  let r = Helpers.run_main ~args:[ 5; 0 ] src in
  Alcotest.(check int) "assigned path reads 7" 7 (Helpers.ret_int r)

let ssa_versions_are_fresh () =
  let ssa = ssa_of (Option.get (Vrp_suite.Suite.find "huffman")).source in
  List.iter
    (fun (fn : Ir.fn) ->
      let seen = Hashtbl.create 64 in
      let defd (v : Vrp_ir.Var.t) =
        if Hashtbl.mem seen v.Vrp_ir.Var.id then
          Alcotest.failf "%s: %s defined twice" fn.Ir.fname (Vrp_ir.Var.to_string v);
        Hashtbl.replace seen v.Vrp_ir.Var.id ()
      in
      List.iter defd fn.Ir.params;
      Ir.iter_blocks fn (fun b ->
          List.iter (fun i -> Option.iter defd (Ir.instr_def i)) b.Ir.instrs))
    ssa.Ir.fns

let suite =
  ( "ir",
    [
      tc "lower: straight line" `Quick straight_line_is_one_block;
      tc "lower: if diamond" `Quick if_produces_diamond;
      tc "lower: branch targets have one pred" `Quick branch_successors_single_pred;
      tc "lower: unreachable code swept" `Quick no_unreachable_blocks;
      tc "lower: short-circuit becomes branches" `Quick short_circuit_branches;
      tc "lower: global scalars are memory" `Quick global_scalars_are_memory;
      tc "dom: matches naive reference" `Quick dominators_match_reference;
      tc "dom: idom strictness" `Quick idom_is_strict_dominator;
      tc "dom: postdominators" `Quick postdominators_sane;
      tc "loops: detection and nesting" `Quick loop_detection;
      tc "loops: back edges vs headers" `Quick back_edges_vs_headers;
      tc "loops: exit edges" `Quick loop_exit_edges;
      tc "ssa: checker passes on the suite" `Quick ssa_checker_passes_suite;
      tc "ssa: assertions on both edges" `Quick ssa_assertions_on_both_edges;
      tc "ssa: assertions on both operands" `Quick ssa_assertions_on_both_operands;
      tc "ssa: phi at join" `Quick ssa_phi_for_merged_variable;
      tc "ssa: unassigned reads zero" `Quick ssa_never_assigned_reads_zero;
      tc "ssa: single assignment" `Quick ssa_versions_are_fresh;
    ] )
