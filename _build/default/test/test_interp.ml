(** Interpreter tests: language semantics, traps, profiling counters. *)

module Interp = Vrp_profile.Interp

let tc = Alcotest.test_case

let eval_int ?(args = [ 0; 0 ]) src = Helpers.ret_int (Helpers.run_main ~args src)

let ret_main body = Printf.sprintf "int main(int n, int s) { %s }" body

let arithmetic_semantics () =
  (* C-style truncating division and remainder. *)
  Alcotest.(check int) "7/2" 3 (eval_int (ret_main "return 7 / 2;"));
  Alcotest.(check int) "-7/2" (-3) (eval_int (ret_main "return (0 - 7) / 2;"));
  Alcotest.(check int) "-7%2" (-1) (eval_int (ret_main "return (0 - 7) % 2;"));
  Alcotest.(check int) "7%-2" 1 (eval_int (ret_main "return 7 % (0 - 2);"));
  Alcotest.(check int) "shifts" 40 (eval_int (ret_main "return (5 << 3) % 100 + (1 >> 1);"));
  Alcotest.(check int) "bitwise" 6 (eval_int (ret_main "return (12 & 7) ^ (2 | 0);"));
  Alcotest.(check int) "bnot" (-6) (eval_int (ret_main "return ~5;"))

let float_semantics () =
  Alcotest.(check int) "float division is not truncated" 1
    (eval_int (ret_main "float f = 1.0; f = f / 2.0; if (f > 0.4) { return 1; } return 0;"));
  Alcotest.(check int) "int promotes to float" 1
    (eval_int (ret_main "float f = 3; f = f / 2; if (f == 1.5) { return 1; } return 0;"))

let short_circuit_effects () =
  (* && must not evaluate its right operand when the left is false. *)
  let src =
    {|
int hits;
int bump() { hits = hits + 1; return 1; }
int main(int n, int s) {
  if (n > 0 && bump() == 1) { }
  if (n > 0 || bump() == 1) { }
  return hits;
}
|}
  in
  Alcotest.(check int) "n=0: one bump via ||" 1 (eval_int ~args:[ 0; 0 ] src);
  Alcotest.(check int) "n=1: one bump via &&" 1 (eval_int ~args:[ 1; 0 ] src)

let loops_and_break () =
  Alcotest.(check int) "for with break" 5
    (eval_int (ret_main "int i; for (i = 0; i < 100; i++) { if (i == 5) { break; } } return i;"));
  Alcotest.(check int) "continue skips" 25
    (eval_int
       (ret_main
          "int acc = 0; for (int i = 0; i < 10; i++) { if (i % 2 == 0) { continue; } acc = \
           acc + i; } return acc;"))

let recursion () =
  let src =
    {|
int fib(int k) {
  if (k < 2) { return k; }
  return fib(k - 1) + fib(k - 2);
}
int main(int n, int s) { return fib(15); }
|}
  in
  Alcotest.(check int) "fib 15" 610 (eval_int src)

let arrays_and_globals () =
  let src =
    {|
int g;
int buf[8];
void setg(int v) { g = v; }
int main(int n, int s) {
  for (int i = 0; i < 8; i++) { buf[i] = i * i; }
  setg(buf[3]);
  return g + buf[7];
}
|}
  in
  Alcotest.(check int) "global + array" 58 (eval_int src)

let local_arrays_per_frame () =
  let src =
    {|
int leak(int v) {
  int scratch[4];
  int old = scratch[0];
  scratch[0] = v;
  return old;
}
int main(int n, int s) { int a = leak(7); return leak(9) * 10 + a; }
|}
  in
  (* fresh zeroed array per activation: both calls see 0 *)
  Alcotest.(check int) "frames isolated" 0 (eval_int src)

let trap_division_by_zero () =
  match Helpers.run_main (ret_main "return 1 / (n - n);") with
  | exception Interp.Trap msg ->
    Alcotest.(check bool) "mentions zero" true (Astring.String.is_infix ~affix:"zero" msg)
  | _ -> Alcotest.fail "expected trap"

let trap_out_of_bounds () =
  match Helpers.run_main (ret_main "int a[4]; return a[n + 10];") with
  | exception Interp.Trap msg ->
    Alcotest.(check bool) "mentions bounds" true
      (Astring.String.is_infix ~affix:"bounds" msg)
  | _ -> Alcotest.fail "expected trap"

let trap_step_budget () =
  let src = ret_main "while (1 == 1) { n = n + 1; } return n;" in
  let c = Helpers.compile src in
  match Vrp_profile.Interp.run ~max_steps:10_000 c.Vrp_core.Pipeline.ssa ~args:[ 0; 0 ] with
  | exception Interp.Trap msg ->
    Alcotest.(check bool) "mentions budget" true
      (Astring.String.is_infix ~affix:"budget" msg)
  | _ -> Alcotest.fail "expected trap"

let profile_counts_exact () =
  let src =
    ret_main
      "int acc = 0; for (int i = 0; i < 10; i++) { if (i > 7) { acc = acc + 1; } } return acc;"
  in
  let r = Helpers.run_main ~args:[ 0; 0 ] src in
  let profile = r.Interp.profile in
  (* Find the branch executed 10 times: the i>7 test; 11 times: loop header. *)
  let totals =
    Hashtbl.fold (fun _ (st : Interp.branch_stats) acc -> (st.total, st.taken) :: acc)
      profile.Interp.branches []
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "branch counts" [ (10, 2); (11, 10) ] totals

let edge_counts_consistent () =
  let b = Option.get (Vrp_suite.Suite.find "lexer") in
  let c = Helpers.compile b.source in
  let r = Vrp_profile.Interp.run c.Vrp_core.Pipeline.ssa ~args:b.train_args in
  (* For every branch, taken + not-taken must equal the sum of its two edge
     counts. *)
  Hashtbl.iter
    (fun (fname, bid) (st : Interp.branch_stats) ->
      let fn = Option.get (Vrp_ir.Ir.find_fn c.Vrp_core.Pipeline.ssa fname) in
      match (Vrp_ir.Ir.block fn bid).Vrp_ir.Ir.term with
      | Vrp_ir.Ir.Br { tdst; fdst; _ } ->
        let edge d =
          Option.value ~default:0
            (Hashtbl.find_opt r.Interp.profile.Interp.edges (fname, bid, d))
        in
        Alcotest.(check int)
          (Printf.sprintf "%s B%d edges sum" fname bid)
          st.Interp.total
          (edge tdst + edge fdst)
      | _ -> Alcotest.fail "branch stats on a non-branch")
    r.Interp.profile.Interp.branches

let determinism () =
  let b = Option.get (Vrp_suite.Suite.find "bfs") in
  let r1 = Helpers.run_main ~args:b.train_args b.source in
  let r2 = Helpers.run_main ~args:b.train_args b.source in
  Alcotest.(check int) "same result" (Helpers.ret_int r1) (Helpers.ret_int r2);
  Alcotest.(check int) "same steps" r1.Interp.profile.Interp.steps
    r2.Interp.profile.Interp.steps

let output_capture () =
  let src = ret_main "print_int(42); print_int(n); return 0;" in
  let c = Helpers.compile src in
  let r = Vrp_profile.Interp.run ~capture_output:true c.Vrp_core.Pipeline.ssa ~args:[ 7; 0 ] in
  Alcotest.(check string) "captured" "42\n7\n" r.Interp.output

let suite =
  ( "interp",
    [
      tc "arithmetic semantics" `Quick arithmetic_semantics;
      tc "float semantics" `Quick float_semantics;
      tc "short-circuit effects" `Quick short_circuit_effects;
      tc "loops, break, continue" `Quick loops_and_break;
      tc "recursion" `Quick recursion;
      tc "arrays and globals" `Quick arrays_and_globals;
      tc "local arrays per frame" `Quick local_arrays_per_frame;
      tc "trap: division by zero" `Quick trap_division_by_zero;
      tc "trap: out of bounds" `Quick trap_out_of_bounds;
      tc "trap: step budget" `Quick trap_step_budget;
      tc "profile counts exact" `Quick profile_counts_exact;
      tc "edge counts consistent" `Quick edge_counts_consistent;
      tc "determinism" `Quick determinism;
      tc "output capture" `Quick output_capture;
    ] )
