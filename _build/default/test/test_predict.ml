(** Heuristic-predictor tests: each Ball–Larus heuristic on a CFG crafted to
    trigger it, the Dempster–Shafer combination, the 90/50 rule, and the
    predictor-interface invariants. *)

module H = Vrp_predict.Heuristics
module Predictor = Vrp_predict.Predictor
module Ir = Vrp_ir.Ir

let tc = Alcotest.test_case

(* Probability of the first conditional branch of main under a heuristic. *)
let first_branch_prob src f =
  let _, fn = Helpers.compile_main src in
  let ctx = H.make_ctx fn in
  let found = ref None in
  Ir.iter_blocks fn (fun b ->
      if !found = None then
        match b.Ir.term with
        | Ir.Br br -> found := Some (f ctx ~src:b.Ir.bid br)
        | Ir.Jump _ | Ir.Ret _ -> ());
  match !found with Some p -> p | None -> Alcotest.fail "no branch"

let loop_branch_heuristic () =
  (* the loop header branch: staying edge predicted with LBH confidence *)
  let p =
    first_branch_prob
      "int main(int n, int s) { int i = 0; while (i < n) { i++; } return i; }"
      (fun ctx ~src br ->
        match H.loop_branch ctx ~src br with Some p -> p | None -> Alcotest.fail "LBH silent")
  in
  Helpers.check_prob "LBH predicts stay" 0.88 p

let opcode_heuristic_eq () =
  let p =
    first_branch_prob "int main(int n, int s) { if (n == 3) { return 1; } return 0; }"
      (fun ctx ~src br ->
        match H.opcode ctx ~src br with Some p -> p | None -> Alcotest.fail "OH silent")
  in
  Helpers.check_prob "OH: == unlikely" (1.0 -. 0.84) p

let opcode_heuristic_lt_zero () =
  let p =
    first_branch_prob "int main(int n, int s) { if (n < 0) { return 1; } return 0; }"
      (fun ctx ~src br ->
        match H.opcode ctx ~src br with Some p -> p | None -> Alcotest.fail "OH silent")
  in
  Helpers.check_prob "OH: < 0 unlikely" (1.0 -. 0.84) p

let opcode_heuristic_silent_on_plain_lt () =
  let src = "int main(int n, int s) { if (n < s) { return 1; } return 0; }" in
  let _, fn = Helpers.compile_main src in
  let ctx = H.make_ctx fn in
  Ir.iter_blocks fn (fun b ->
      match b.Ir.term with
      | Ir.Br br ->
        if H.opcode ctx ~src:b.Ir.bid br <> None then
          Alcotest.fail "OH must not fire on a plain < between variables"
      | Ir.Jump _ | Ir.Ret _ -> ())

let return_heuristic () =
  let p =
    first_branch_prob
      "int main(int n, int s) { if (n > 0) { return 1; } n = n + s; if (n > 99) { n = 0; } \
       return n; }"
      (fun ctx ~src br ->
        match H.return ctx ~src br with Some p -> p | None -> Alcotest.fail "RH silent")
  in
  Helpers.check_prob "RH: returning arm not taken" (1.0 -. 0.72) p

let call_heuristic () =
  let src =
    {|
int helper(int x) { return x; }
int main(int n, int s) {
  int acc = 0;
  if (n > 0) { acc = helper(n); acc = acc + 1; } else { acc = 2; }
  return acc;
}
|}
  in
  let p =
    first_branch_prob src (fun ctx ~src br ->
        match H.call ctx ~src br with Some p -> p | None -> Alcotest.fail "CH silent")
  in
  Helpers.check_prob "CH: calling arm not taken" (1.0 -. 0.78) p

let store_heuristic () =
  let src =
    "int g[4]; int main(int n, int s) { if (n > 0) { g[0] = n; n = n + 1; } else { n = 2; } \
     return n; }"
  in
  let p =
    first_branch_prob src (fun ctx ~src br ->
        match H.store ctx ~src br with Some p -> p | None -> Alcotest.fail "SH silent")
  in
  Helpers.check_prob "SH: storing arm not taken" (1.0 -. 0.55) p

let loop_header_heuristic () =
  let src =
    "int main(int n, int s) {\n\
     int acc = 0;\n\
     if (n > 0) {\n\
     for (int i = 0; i < 10; i++) { acc = acc + i; }\n\
     } else { acc = 1; }\n\
     return acc; }"
  in
  let p =
    first_branch_prob src (fun ctx ~src br ->
        match H.loop_header ctx ~src br with Some p -> p | None -> Alcotest.fail "LHH silent")
  in
  Helpers.check_prob "LHH: loop-heading arm taken" 0.75 p

let dempster_shafer_math () =
  Helpers.check_prob "neutral element" 0.7 (Vrp_predict.Combine.dempster_shafer 0.7 0.5);
  Helpers.check_prob "two agreeing" (0.64 /. (0.64 +. 0.04))
    (Vrp_predict.Combine.dempster_shafer 0.8 0.8);
  Helpers.check_prob "combine empty" 0.5 (Vrp_predict.Combine.combine []);
  (* commutativity *)
  Helpers.check_prob "commutative"
    (Vrp_predict.Combine.combine [ 0.9; 0.3; 0.6 ])
    (Vrp_predict.Combine.combine [ 0.6; 0.9; 0.3 ])

let ninety_fifty_rule () =
  let loop_prob =
    first_branch_prob
      "int main(int n, int s) { int i = 0; while (i < n) { i++; } return i; }"
      (fun ctx ~src br -> H.ninety_fifty ctx ~src br)
  in
  Helpers.check_prob "loop-continuing edge 90%" 0.9 loop_prob;
  let fwd_prob =
    first_branch_prob "int main(int n, int s) { if (n > s) { return 1; } return 0; }"
      (fun ctx ~src br -> H.ninety_fifty ctx ~src br)
  in
  Helpers.check_prob "forward branch 50%" 0.5 fwd_prob

let predictions_are_total_and_valid () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      let c = Helpers.compile b.source in
      let ssa = c.Vrp_core.Pipeline.ssa in
      let branches = Predictor.branches ssa in
      let train =
        (Vrp_profile.Interp.run ssa ~args:b.train_args).Vrp_profile.Interp.profile
      in
      List.iter
        (fun (name, prediction) ->
          List.iter
            (fun (key, _) ->
              match Hashtbl.find_opt prediction key with
              | Some p ->
                if p < 0.0 || p > 1.0 || Float.is_nan p then
                  Alcotest.failf "%s/%s: probability %f out of range" b.name name p
              | None ->
                let fname, bid = key in
                Alcotest.failf "%s/%s: missing prediction for %s.B%d" b.name name fname bid)
            branches)
        (Vrp_core.Pipeline.all_predictors ~train ssa))
    [ List.hd Vrp_suite.Suite.benchmarks; Option.get (Vrp_suite.Suite.find "jacobi") ]

let profiling_predictor_reproduces_training () =
  let b = Option.get (Vrp_suite.Suite.find "lexer") in
  let c = Helpers.compile b.source in
  let ssa = c.Vrp_core.Pipeline.ssa in
  let train = (Vrp_profile.Interp.run ssa ~args:b.train_args).Vrp_profile.Interp.profile in
  let prediction = Predictor.profiling train ssa in
  Hashtbl.iter
    (fun key (st : Vrp_profile.Interp.branch_stats) ->
      if st.Vrp_profile.Interp.total > 0 then begin
        let want =
          float_of_int st.Vrp_profile.Interp.taken /. float_of_int st.Vrp_profile.Interp.total
        in
        match Hashtbl.find_opt prediction key with
        | Some got -> Helpers.check_prob "training behaviour reproduced" want got
        | None -> Alcotest.fail "missing branch"
      end)
    train.Vrp_profile.Interp.branches

let random_predictor_is_deterministic () =
  let b = Option.get (Vrp_suite.Suite.find "bfs") in
  let ssa = (Helpers.compile b.source).Vrp_core.Pipeline.ssa in
  let p1 = Predictor.random ssa and p2 = Predictor.random ssa in
  Hashtbl.iter
    (fun key v ->
      match Hashtbl.find_opt p2 key with
      | Some v' -> Helpers.check_prob "deterministic" v v'
      | None -> Alcotest.fail "missing")
    p1

let perfect_predictor_has_zero_error () =
  let b = Option.get (Vrp_suite.Suite.find "kmp") in
  let ssa = (Helpers.compile b.source).Vrp_core.Pipeline.ssa in
  let observed = (Vrp_profile.Interp.run ssa ~args:b.ref_args).Vrp_profile.Interp.profile in
  let prediction = Predictor.perfect observed ssa in
  let errs = Vrp_evaluation.Error_analysis.branch_errors ~observed prediction in
  Helpers.check_prob "zero error" 0.0
    (Vrp_evaluation.Error_analysis.mean_error ~weighted:false errs)

let suite =
  ( "predict",
    [
      tc "ball-larus: loop branch" `Quick loop_branch_heuristic;
      tc "ball-larus: opcode ==" `Quick opcode_heuristic_eq;
      tc "ball-larus: opcode < 0" `Quick opcode_heuristic_lt_zero;
      tc "ball-larus: opcode silent" `Quick opcode_heuristic_silent_on_plain_lt;
      tc "ball-larus: return" `Quick return_heuristic;
      tc "ball-larus: call" `Quick call_heuristic;
      tc "ball-larus: store" `Quick store_heuristic;
      tc "ball-larus: loop header" `Quick loop_header_heuristic;
      tc "dempster-shafer" `Quick dempster_shafer_math;
      tc "90/50 rule" `Quick ninety_fifty_rule;
      tc "predictions total and valid" `Quick predictions_are_total_and_valid;
      tc "profiling reproduces training" `Quick profiling_predictor_reproduces_training;
      tc "random is deterministic" `Quick random_predictor_is_deterministic;
      tc "perfect predictor zero error" `Quick perfect_predictor_has_zero_error;
    ] )
