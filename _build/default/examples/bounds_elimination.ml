(* Array-bounds-check elimination (paper §6).

   MiniC checks every array access at run time. This example shows value
   range propagation proving most of those checks redundant: loop counters
   get derived ranges, branch assertions narrow validated indices, and
   interprocedural parameter ranges cover helper functions. Accesses whose
   index comes straight from unanalysable data keep their checks — exactly
   the split the paper describes.

   Run with:  dune exec examples/bounds_elimination.exe *)

let source =
  {|
int table[256];
int image[1024];

// Interprocedural case: every caller passes a validated offset.
int sum_row(int base) {
  int total = 0;
  for (int j = 0; j < 32; j++) {
    total = total + image[base + j];
  }
  return total;
}

int main(int n, int seed) {
  // Counted loop: the derived range [0:255] proves both bounds.
  for (int i = 0; i < 256; i++) {
    table[i] = (i * 7) % 256;
  }
  // Clamped index: assertions narrow an unknown value into [0, 255].
  int idx = seed;
  if (idx < 0) { idx = 0; }
  if (idx > 255) { idx = 255; }
  int picked = table[idx];
  // Validated helper argument: base ranges over {0, 32, ..., 992 - 32}.
  int total = 0;
  for (int row = 0; row < 30; row++) {
    total = total + sum_row(row * 32);
  }
  // Unanalysable index: the load from table defeats the analysis, so this
  // check must stay (the paper: loads yield bottom without alias analysis).
  int wild = table[(picked + total) % 256];
  return picked + total + wild + idx;
}
|}

let () =
  print_endline "=== Program ===";
  print_string source;
  let compiled = Vrp_core.Pipeline.compile source in
  let ssa = compiled.Vrp_core.Pipeline.ssa in
  let ipa = Vrp_core.Interproc.analyze ssa in
  print_endline "\n=== Bounds checks ===";
  List.iter
    (fun (fn : Vrp_ir.Ir.fn) ->
      match Vrp_core.Interproc.result ipa fn.Vrp_ir.Ir.fname with
      | None -> ()
      | Some res ->
        let report = Vrp_core.Bounds_check.analyze ssa res in
        List.iter
          (fun (c : Vrp_core.Bounds_check.check) ->
            Printf.printf "  %s B%-3d %-6s[%-10s]  %s%s\n" fn.Vrp_ir.Ir.fname
              c.Vrp_core.Bounds_check.block c.Vrp_core.Bounds_check.array
              (Vrp_ir.Ir.operand_to_string c.Vrp_core.Bounds_check.index)
              (if c.Vrp_core.Bounds_check.provably_safe then "ELIMINATED"
               else "kept")
              (if c.Vrp_core.Bounds_check.provably_safe then ""
               else
                 Printf.sprintf " (lower %s, upper %s)"
                   (if c.Vrp_core.Bounds_check.lower_safe then "proven" else "unknown")
                   (if c.Vrp_core.Bounds_check.upper_safe then "proven" else "unknown")))
          report.Vrp_core.Bounds_check.checks;
        Printf.printf "  -> %s: %d of %d checks eliminated\n\n" fn.Vrp_ir.Ir.fname
          report.Vrp_core.Bounds_check.eliminated report.Vrp_core.Bounds_check.total)
    ssa.Vrp_ir.Ir.fns;
  (* Also demonstrate the aliasing client on the same analysis results. *)
  print_endline "=== Array access independence ===";
  List.iter
    (fun (fn : Vrp_ir.Ir.fn) ->
      match Vrp_core.Interproc.result ipa fn.Vrp_ir.Ir.fname with
      | None -> ()
      | Some res ->
        let r = Vrp_core.Alias.analyze res in
        if r.Vrp_core.Alias.pairs <> [] then
          Printf.printf "  %s: %d of %d access pairs proven disjoint\n" fn.Vrp_ir.Ir.fname
            r.Vrp_core.Alias.disjoint
            (List.length r.Vrp_core.Alias.pairs))
    ssa.Vrp_ir.Ir.fns
