(* Procedure cloning for calling-context-sensitive prediction (paper §3.7).

   "Procedure cloning involves duplicating a critical procedure which is not
   inlined but which is called in two (or more) significantly different
   contexts so that each copy may be optimized in a different way ... Since
   the calling context has a large impact on the branching behavior, this
   leads to substantially more accurate predictions."

   The program below calls [blur] from two very different contexts: a
   thumbnail path (radius 2) and a full-image path (radius 16). Merging the
   jump functions loses the radius; cloning recovers a precise range — and a
   precise prediction for the radius-dependent branch — per context.

   Run with:  dune exec examples/cloning.exe *)

let source =
  {|
int pixels[4096];

int blur(int radius, int limit) {
  int acc = 0;
  for (int i = 0; i < limit; i++) {
    // radius-dependent branch: wide blurs take the slow path
    if (radius > 8) {
      acc = acc + pixels[i] * 2;
    } else {
      acc = acc + pixels[i];
    }
  }
  return acc % 65536;
}

int main(int n, int seed) {
  for (int i = 0; i < 4096; i++) { pixels[i] = (i * 31 + seed) % 251; }
  int thumbs = 0;
  int fulls = 0;
  for (int frame = 0; frame < 40; frame++) {
    thumbs = (thumbs + blur(2, 64)) % 100000;    // thumbnail context
    fulls = (fulls + blur(16, 4096)) % 100000;   // full-image context
  }
  return thumbs + fulls;
}
|}

let branch_report label (program : Vrp_ir.Ir.program) (ipa : Vrp_core.Interproc.t)
    (origin_of : (string, string) Hashtbl.t) =
  Printf.printf "\n=== %s ===\n" label;
  List.iter
    (fun (fn : Vrp_ir.Ir.fn) ->
      let origin =
        Option.value ~default:fn.Vrp_ir.Ir.fname
          (Hashtbl.find_opt origin_of fn.Vrp_ir.Ir.fname)
      in
      if String.equal origin "blur" then begin
        match Vrp_core.Interproc.result ipa fn.Vrp_ir.Ir.fname with
        | None -> ()
        | Some res ->
          (* parameter ranges *)
          List.iter
            (fun (p : Vrp_ir.Var.t) ->
              Printf.printf "  %s param %s = %s\n" fn.Vrp_ir.Ir.fname
                (Vrp_ir.Var.to_string p)
                (Vrp_ranges.Value.to_string (Vrp_core.Engine.value res p)))
            fn.Vrp_ir.Ir.params;
          Vrp_ir.Ir.iter_blocks fn (fun b ->
              match b.Vrp_ir.Ir.term with
              | Vrp_ir.Ir.Br br -> (
                match Vrp_core.Engine.branch_prob res b.Vrp_ir.Ir.bid with
                | Some p ->
                  Printf.printf "  %s branch (%s %s %s) predicted %.1f%%\n"
                    fn.Vrp_ir.Ir.fname
                    (Vrp_ir.Ir.operand_to_string br.ba)
                    (Vrp_lang.Ast.relop_to_string br.rel)
                    (Vrp_ir.Ir.operand_to_string br.bb)
                    (100.0 *. p)
                | None -> ())
              | Vrp_ir.Ir.Jump _ | Vrp_ir.Ir.Ret _ -> ())
      end)
    program.Vrp_ir.Ir.fns

let () =
  let compiled = Vrp_core.Pipeline.compile source in
  let ssa = compiled.Vrp_core.Pipeline.ssa in
  (* Without cloning: one merged context. *)
  let ipa = Vrp_core.Interproc.analyze ssa in
  branch_report "Without cloning (jump functions merged across call sites)" ssa ipa
    (Hashtbl.create 1);
  (* With cloning: one specialised copy per calling context. *)
  let cloned = Vrp_core.Clone.run ssa ipa in
  Printf.printf "\ncloning made %d specialised copies\n" cloned.Vrp_core.Clone.clones_made;
  let ipa' = Vrp_core.Interproc.analyze cloned.Vrp_core.Clone.program in
  branch_report "With cloning (one copy per calling context)"
    cloned.Vrp_core.Clone.program ipa' cloned.Vrp_core.Clone.origin_of;
  (* Ground truth. *)
  print_endline "\n=== Observed at run time (radius > 8 branch) ===";
  let observed = (Vrp_profile.Interp.run ssa ~args:[ 0; 1 ]).Vrp_profile.Interp.profile in
  Hashtbl.iter
    (fun (fname, bid) (st : Vrp_profile.Interp.branch_stats) ->
      if String.equal fname "blur" then
        Printf.printf "  blur.B%d taken %.1f%% of %d executions\n" bid
          (100.0 *. float_of_int st.Vrp_profile.Interp.taken
          /. float_of_int st.Vrp_profile.Interp.total)
          st.Vrp_profile.Interp.total)
    observed.Vrp_profile.Interp.branches
