examples/bounds_elimination.mli:
