examples/subsumption.mli:
