examples/quickstart.mli:
