examples/subsumption.ml: Array List Printf Vrp_core Vrp_ir Vrp_ranges
