examples/bounds_elimination.ml: List Printf Vrp_core Vrp_ir
