examples/predictor_comparison.ml: Array Float Hashtbl List Option Printf String Sys Vrp_core Vrp_evaluation Vrp_profile Vrp_suite
