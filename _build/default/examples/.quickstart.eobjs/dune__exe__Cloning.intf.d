examples/cloning.mli:
