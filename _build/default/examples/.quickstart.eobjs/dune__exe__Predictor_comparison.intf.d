examples/predictor_comparison.mli:
