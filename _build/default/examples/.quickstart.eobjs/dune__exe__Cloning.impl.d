examples/cloning.ml: Hashtbl List Option Printf String Vrp_core Vrp_ir Vrp_lang Vrp_profile Vrp_ranges
