examples/hot_paths.ml: Array Float Fun Hashtbl List Option Printf String Sys Vrp_core Vrp_ir Vrp_profile Vrp_suite
