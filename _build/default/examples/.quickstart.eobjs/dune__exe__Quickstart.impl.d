examples/quickstart.ml: List Printf Vrp_core Vrp_evaluation Vrp_ir Vrp_profile
