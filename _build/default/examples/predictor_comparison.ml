(* Predictor comparison on a realistic workload.

   This is the paper's §5 experiment in miniature: run a benchmark under a
   training input and a (different) reference input, then compare how close
   each predictor's branch probabilities come to the observed behaviour.

   Run with:  dune exec examples/predictor_comparison.exe [BENCHMARK]
   (default benchmark: proto — the packet-validation workload where symbolic
   ranges visibly beat both the numeric-only configuration and heuristics) *)

module Interp = Vrp_profile.Interp
module E = Vrp_evaluation.Error_analysis

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "proto" in
  let bench =
    match Vrp_suite.Suite.find name with
    | Some b -> b
    | None ->
      Printf.eprintf "unknown benchmark %s\n" name;
      exit 2
  in
  Printf.printf "benchmark %s (%s suite), train input %s, reference input %s\n\n"
    bench.Vrp_suite.Suite.name
    (Vrp_suite.Suite.category_to_string bench.Vrp_suite.Suite.category)
    (String.concat "," (List.map string_of_int bench.Vrp_suite.Suite.train_args))
    (String.concat "," (List.map string_of_int bench.Vrp_suite.Suite.ref_args));
  let compiled = Vrp_core.Pipeline.compile bench.Vrp_suite.Suite.source in
  let ssa = compiled.Vrp_core.Pipeline.ssa in
  let train = (Interp.run ssa ~args:bench.Vrp_suite.Suite.train_args).Interp.profile in
  let observed = (Interp.run ssa ~args:bench.Vrp_suite.Suite.ref_args).Interp.profile in
  let predictors = Vrp_core.Pipeline.all_predictors ~train ssa in
  (* Per-branch table. *)
  Printf.printf "%-26s %8s" "branch (fn.block)" "actual";
  List.iter (fun (pname, _) -> Printf.printf " %12s" pname) predictors;
  print_newline ();
  let keys =
    Hashtbl.fold
      (fun key (st : Interp.branch_stats) acc ->
        if st.Interp.total > 0 then (key, st) :: acc else acc)
      observed.Interp.branches []
    |> List.sort compare
  in
  List.iter
    (fun (((fname, bid) as key), (st : Interp.branch_stats)) ->
      let actual = float_of_int st.Interp.taken /. float_of_int st.Interp.total in
      Printf.printf "%-26s %7.1f%%" (Printf.sprintf "%s.B%d" fname bid) (100.0 *. actual);
      List.iter
        (fun (_, prediction) ->
          let p = Option.value ~default:Float.nan (Hashtbl.find_opt prediction key) in
          Printf.printf " %11.1f%%" (100.0 *. p))
        predictors;
      print_newline ())
    keys;
  (* Summary: the paper's error-margin analysis. *)
  print_newline ();
  Printf.printf "%-14s %22s %20s %22s\n" "predictor" "mean |error| (unwt)" "mean |error| (wt)"
    "% within 5pp (unwt)";
  List.iter
    (fun (pname, prediction) ->
      let errs = E.branch_errors ~observed prediction in
      Printf.printf "%-14s %19.2f pp %17.2f pp %21.1f%%\n" pname
        (E.mean_error ~weighted:false errs)
        (E.mean_error ~weighted:true errs)
        (E.percent_within ~weighted:false errs 5))
    predictors
