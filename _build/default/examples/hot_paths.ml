(* Code layout from predicted frequencies (paper §6).

   "compilers must pay careful attention to the way they lay out their
   generated code. This usually means ... coding likely paths as
   straight-line code with branches to less likely code which is placed
   out-of-line" — and ordering optimizations "in descending order of
   execution frequency".

   This example derives block frequencies from VRP's branch probabilities,
   lays out each function greedily along its hottest edges (a Pettis–Hansen
   style trace), and validates the frequency estimates against observed
   execution counts.

   Run with:  dune exec examples/hot_paths.exe [BENCHMARK] *)

module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Frequency = Vrp_core.Frequency
module Interp = Vrp_profile.Interp

(* Greedy trace layout: start from the entry, repeatedly follow the hottest
   not-yet-placed successor; start new traces at the hottest unplaced block. *)
let layout (fn : Ir.fn) (ff : Frequency.fn_freq) : int list =
  let n = Ir.num_blocks fn in
  let placed = Array.make n false in
  let order = ref [] in
  let hottest_unplaced () =
    let best = ref None in
    Array.iteri
      (fun bid f ->
        if not placed.(bid) then
          match !best with
          | Some (_, bf) when bf >= f -> ()
          | _ -> best := Some (bid, f))
      ff.Frequency.block_freq;
    Option.map fst !best
  in
  let rec follow bid =
    placed.(bid) <- true;
    order := bid :: !order;
    let succs = Ir.successors (Ir.block fn bid).Ir.term in
    let next =
      List.fold_left
        (fun acc s ->
          if placed.(s) then acc
          else begin
            let w =
              Option.value ~default:0.0
                (Hashtbl.find_opt ff.Frequency.edge_freq (bid, s))
            in
            match acc with Some (_, bw) when bw >= w -> acc | _ -> Some (s, w)
          end)
        None succs
    in
    match next with Some (s, _) -> follow s | None -> ()
  in
  let rec traces () =
    match hottest_unplaced () with
    | Some bid ->
      follow bid;
      traces ()
    | None -> ()
  in
  follow Ir.entry_bid;
  traces ();
  List.rev !order

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "huffman" in
  let bench =
    match Vrp_suite.Suite.find name with
    | Some b -> b
    | None ->
      Printf.eprintf "unknown benchmark %s\n" name;
      exit 2
  in
  let compiled = Vrp_core.Pipeline.compile bench.Vrp_suite.Suite.source in
  let ssa = compiled.Vrp_core.Pipeline.ssa in
  let ipa = Vrp_core.Interproc.analyze ssa in
  let freqs = Frequency.of_interproc ssa ipa in
  let observed =
    (Interp.run ssa ~args:bench.Vrp_suite.Suite.ref_args).Interp.profile
  in
  Printf.printf "benchmark %s: predicted layout per function\n\n" name;
  List.iter
    (fun (fn : Ir.fn) ->
      match Hashtbl.find_opt freqs.Frequency.per_fn fn.Ir.fname with
      | None -> ()
      | Some ff ->
        let order = layout fn ff in
        Printf.printf "%s: original order  %s\n" fn.Ir.fname
          (String.concat " " (List.init (Ir.num_blocks fn) (Printf.sprintf "B%d")));
        Printf.printf "%s  hot-path order  %s\n" (String.make (String.length fn.Ir.fname) ' ')
          (String.concat " " (List.map (Printf.sprintf "B%d") order));
        (* fall-through quality: fraction of layout-adjacent pairs that are
           real CFG edges (higher = fewer taken branches on the hot path) *)
        let adjacent_edges order =
          let rec count = function
            | a :: (b :: _ as rest) ->
              let is_edge = List.mem b (Ir.successors (Ir.block fn a).Ir.term) in
              (if is_edge then 1 else 0) + count rest
            | _ -> 0
          in
          count order
        in
        let straight = adjacent_edges order in
        let baseline = adjacent_edges (List.init (Ir.num_blocks fn) Fun.id) in
        Printf.printf "%s  fall-through edges: %d (source order: %d)\n\n"
          (String.make (String.length fn.Ir.fname) ' ')
          straight baseline)
    ssa.Ir.fns;
  (* Validate the frequency model: rank correlation with observed counts. *)
  print_endline "frequency model vs observed branch execution counts:";
  let rows = ref [] in
  Hashtbl.iter
    (fun (fname, bid) (st : Interp.branch_stats) ->
      match Frequency.global_block_freq freqs ~fname ~bid with
      | Some predicted -> rows := (fname, bid, predicted, st.Interp.total) :: !rows
      | None -> ())
    observed.Interp.branches;
  let sorted = List.sort (fun (_, _, a, _) (_, _, b, _) -> Float.compare b a) !rows in
  List.iteri
    (fun i (fname, bid, predicted, actual) ->
      if i < 8 then
        Printf.printf "  %-12s B%-4d predicted %12.1f  observed %10d\n" fname bid predicted
          actual)
    sorted
