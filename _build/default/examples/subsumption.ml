(* VRP subsumes constant propagation, copy propagation and unreachable-code
   detection (paper §1 and §6).

   The example program hides constants behind arithmetic and control flow,
   contains copies through several names, and has a branch that can never be
   taken. The analysis finds all of them, and this example also cross-checks
   VRP against the classic Wegman–Zadeck SCCP baseline: everything SCCP
   proves constant must come out of VRP as a probability-1 singleton.

   Run with:  dune exec examples/subsumption.exe *)

let source =
  {|
int main(int n, int seed) {
  int base = 6 * 7;            // plain constant folding
  int doubled;
  if (n > 0) { doubled = base + base; } else { doubled = 84; }
  // doubled is 84 on both paths: constant despite control flow
  int alias = doubled;         // copy
  int alias2 = alias;          // copy of a copy
  int dead = 0;
  if (doubled < 50) {          // never taken: 84 < 50 is impossible
    dead = seed;
  }
  int spin = n;
  if (spin > 100) { spin = 100; }
  if (spin > 200) {            // unreachable: spin <= 100 here
    dead = dead + 1;
  }
  return alias2 + dead;
}
|}

let () =
  print_endline "=== Program ===";
  print_string source;
  let compiled = Vrp_core.Pipeline.compile source in
  let fn = List.hd compiled.Vrp_core.Pipeline.ssa.Vrp_ir.Ir.fns in
  let res = Vrp_core.Engine.analyze fn in
  print_endline "\n=== VRP findings ===";
  let report = Vrp_core.Optimize.find_report res in
  print_string (Vrp_core.Optimize.report_to_string report);
  List.iter
    (fun (bid, dir) ->
      Printf.printf "  branch in B%d always goes %s\n" bid (if dir then "true" else "false"))
    report.Vrp_core.Optimize.decided_branches;
  (* Cross-check against SCCP: VRP must find every SCCP constant. *)
  print_endline "\n=== Cross-check vs Wegman-Zadeck SCCP ===";
  let sccp = Vrp_core.Sccp.analyze fn in
  let agreement = ref 0 and extra = ref 0 in
  Vrp_ir.Ir.iter_blocks fn (fun b ->
      List.iter
        (fun instr ->
          match instr with
          | Vrp_ir.Ir.Def (v, _) -> (
            let vrp_const =
              Vrp_ranges.Value.as_constant res.Vrp_core.Engine.values.(v.Vrp_ir.Var.id)
            in
            match (Vrp_core.Sccp.value sccp v, vrp_const) with
            | Vrp_core.Sccp.Cint n, Some m when n = m -> incr agreement
            | Vrp_core.Sccp.Cint n, _ ->
              Printf.printf "  DISAGREEMENT on %s: sccp=%d vrp=%s\n" (Vrp_ir.Var.to_string v)
                n
                (Vrp_ranges.Value.to_string res.Vrp_core.Engine.values.(v.Vrp_ir.Var.id))
            | _, Some _ -> incr extra
            | _, None -> ())
          | Vrp_ir.Ir.Store _ -> ())
        b.Vrp_ir.Ir.instrs);
  Printf.printf "  %d constants found by both; %d found only by VRP\n" !agreement !extra;
  (* Apply the rewrite and show the optimized function. *)
  print_endline "\n=== After rewriting (constants/copies substituted, branches folded) ===";
  let rewritten = Vrp_core.Optimize.rewrite res in
  print_string (Vrp_ir.Ir.fn_to_string rewritten);
  Printf.printf "blocks: %d -> %d\n" (Vrp_ir.Ir.num_blocks fn)
    (Vrp_ir.Ir.num_blocks rewritten)
