(* Quickstart: the paper's worked example, end to end.

   Runs value range propagation on the Figure 2 program and prints the final
   weighted value ranges and branch probabilities — the content of the
   paper's Figure 4. Expected output includes:

     x < 10  predicted 91% taken   (x ranges over 1[0:10:1])
     x > 7   predicted 20% taken
     y == 1  predicted 30% taken   (y2 = { 0.8[0:7:1], 0.2[1:1:0] })

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
int main(int n, int seed) {
  int y = 0;
  int acc = 0;
  for (int x = 0; x < 10; x++) {
    if (x > 7) { y = 1; } else { y = x; }
    if (y == 1) { acc = acc + 1; }
  }
  return acc;
}
|}

let () =
  print_endline "=== The program (paper Figure 2) ===";
  print_string source;
  (* Compile: parse -> type check -> CFG -> SSA (with branch assertions). *)
  let compiled = Vrp_core.Pipeline.compile source in
  let fn = List.hd compiled.Vrp_core.Pipeline.ssa.Vrp_ir.Ir.fns in
  print_endline "\n=== SSA form (paper Figure 3) ===";
  print_string (Vrp_ir.Ir.fn_to_string fn);
  (* Analyse: propagate weighted value ranges to a fixed point. *)
  let result = Vrp_core.Engine.analyze fn in
  print_endline "\n=== Final ranges and branch probabilities (paper Figure 4) ===";
  print_string (Vrp_evaluation.Figures.render_fig4 (Vrp_evaluation.Figures.fig4 ()));
  (* Cross-check the analysis against actual execution. *)
  let observed =
    (Vrp_profile.Interp.run compiled.Vrp_core.Pipeline.ssa ~args:[ 0; 0 ])
      .Vrp_profile.Interp.profile
  in
  print_endline "\n=== Observed at run time ===";
  Vrp_ir.Ir.iter_blocks fn (fun b ->
      match b.Vrp_ir.Ir.term with
      | Vrp_ir.Ir.Br _ -> (
        match
          ( Vrp_profile.Interp.observed_prob observed (fn.Vrp_ir.Ir.fname, b.Vrp_ir.Ir.bid),
            Vrp_core.Engine.branch_prob result b.Vrp_ir.Ir.bid )
        with
        | Some actual, Some predicted ->
          Printf.printf "  branch in B%-3d predicted %5.1f%%, observed %5.1f%%\n"
            b.Vrp_ir.Ir.bid (100.0 *. predicted) (100.0 *. actual)
        | _ -> ())
      | Vrp_ir.Ir.Jump _ | Vrp_ir.Ir.Ret _ -> ())
