(** Dempster–Shafer combination of branch-probability estimates
    (Wu & Larus, MICRO-27 1994), as used by the paper's heuristic
    baseline. *)

val dempster_shafer : float -> float -> float

(** Combine all applicable estimates; no evidence = 0.5. *)
val combine : float list -> float
