(** Uniform interface over the branch predictors: a prediction maps each
    conditional branch — [(function name, block id)] — to the probability of
    taking its true edge. *)

module Ir = Vrp_ir.Ir

type branch_key = string * int

type prediction = (branch_key, float) Hashtbl.t

(** All conditional branches of a program. *)
val branches : Ir.program -> (branch_key * Ir.branch) list

(** The 90/50 rule. *)
val ninety_fifty : Ir.program -> prediction

(** Ball–Larus heuristics, Dempster–Shafer combined. *)
val ball_larus : Ir.program -> prediction

(** Deterministic random baseline. *)
val random : ?seed:int -> Ir.program -> prediction

(** Execution profiling: each branch behaves as in the training run;
    untrained branches fall back to 50/50. *)
val profiling : Vrp_profile.Interp.profile -> Ir.program -> prediction

(** The hypothetical perfect static predictor (paper §5), for harness
    sanity checks. *)
val perfect : Vrp_profile.Interp.profile -> Ir.program -> prediction
