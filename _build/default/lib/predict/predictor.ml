(** Uniform interface over all branch predictors.

    A prediction maps every conditional branch — identified by
    [(function name, block id)] — to the probability of taking its true
    edge. The evaluation harness compares these maps against observed
    behaviour. *)

module Ir = Vrp_ir.Ir

type branch_key = string * int

type prediction = (branch_key, float) Hashtbl.t

(** All conditional branches of a program. *)
let branches (program : Ir.program) : (branch_key * Ir.branch) list =
  List.concat_map
    (fun (fn : Ir.fn) ->
      Array.to_list fn.blocks
      |> List.filter_map (fun (b : Ir.block) ->
             match b.term with
             | Ir.Br br -> Some (((fn.fname, b.bid) : branch_key), br)
             | Ir.Jump _ | Ir.Ret _ -> None))
    program.fns

let of_fun (program : Ir.program) (f : ctx:Heuristics.ctx -> src:int -> Ir.branch -> float)
    : prediction =
  let out = Hashtbl.create 64 in
  List.iter
    (fun (fn : Ir.fn) ->
      let ctx = Heuristics.make_ctx fn in
      Array.iter
        (fun (b : Ir.block) ->
          match b.term with
          | Ir.Br br -> Hashtbl.replace out (fn.fname, b.bid) (f ~ctx ~src:b.bid br)
          | Ir.Jump _ | Ir.Ret _ -> ())
        fn.blocks)
    program.fns;
  out

(** The 90/50 rule. *)
let ninety_fifty program : prediction =
  of_fun program (fun ~ctx ~src br -> Heuristics.ninety_fifty ctx ~src br)

(** Ball–Larus heuristics, Dempster–Shafer combined (Wu–Larus). *)
let ball_larus program : prediction =
  of_fun program (fun ~ctx ~src br -> Heuristics.ball_larus ctx ~src br)

(** Random predictions — the floor of the paper's figures. Deterministic in
    the branch key so every run reproduces identical numbers. *)
let random ?(seed = 0x5eed) program : prediction =
  let out = Hashtbl.create 64 in
  List.iter
    (fun ((key : branch_key), _) ->
      let fname, bid = key in
      let h = Hashtbl.hash (fname, bid, seed) in
      let rng = Vrp_util.Prng.create (h + seed) in
      Hashtbl.replace out key (Vrp_util.Prng.float rng))
    (branches program);
  out

(** Execution profiling: predict each branch behaves as it did in a training
    run. Branches never executed during training fall back to 50/50 — the
    profiler has no evidence for them (as in real feedback compilation). *)
let profiling (train : Vrp_profile.Interp.profile) program : prediction =
  let out = Hashtbl.create 64 in
  List.iter
    (fun ((key : branch_key), _) ->
      let p =
        match Vrp_profile.Interp.observed_prob train key with
        | Some p -> p
        | None -> 0.5
      in
      Hashtbl.replace out key p)
    (branches program);
  out

(** The hypothetical perfect static predictor (§5: "would mark each branch
    with the same probability as was observed in the trial runs") — for
    sanity-checking the harness. *)
let perfect (observed : Vrp_profile.Interp.profile) program : prediction =
  let out = Hashtbl.create 64 in
  List.iter
    (fun ((key : branch_key), _) ->
      match Vrp_profile.Interp.observed_prob observed key with
      | Some p -> Hashtbl.replace out key p
      | None -> Hashtbl.replace out key 0.5)
    (branches program);
  out
