(** Static branch-prediction heuristics: the 90/50 rule and the Ball–Larus
    heuristic set, with Wu–Larus hit-rate probabilities.

    These are the baselines of the paper's evaluation and also its fallback:
    "Heuristics similar to those of [BallLarus93] were used in cases where
    the value range propagation algorithm encountered a branch with a
    variable whose value range was ⊥" (§5).

    The hit rates attached to each heuristic are the empirical frequencies
    published by Wu & Larus (1994, Table 1); the Dempster–Shafer combination
    of all applicable heuristics produces the final probability.

    Our IR has no linear code layout, so "backward branch" (90/50) is
    interpreted structurally: an edge is backward when it is a CFG back edge
    or keeps execution inside the branch's innermost loop while the other
    edge leaves it — which is what backward conditional branches are in
    compiled code. MiniC has no pointers, so the Ball–Larus pointer
    heuristic never applies (documented substitution; its absence only
    removes one evidence source). *)

module Ast = Vrp_lang.Ast
module Ir = Vrp_ir.Ir
module Dom = Vrp_ir.Dom
module Loops = Vrp_ir.Loops

(** Per-function context shared by all heuristics. *)
type ctx = {
  fn : Ir.fn;
  loops : Loops.t;
  postdom : Dom.t;
}

let make_ctx (fn : Ir.fn) = { fn; loops = Loops.compute fn; postdom = Dom.compute_post fn }

(* --- Wu–Larus hit rates --- *)

let lbh_prob = 0.88 (* loop branch *)
let leh_prob = 0.80 (* loop exit *)
let lhh_prob = 0.75 (* loop header *)
let ch_prob = 0.78 (* call *)
let oh_prob = 0.84 (* opcode *)
let gh_prob = 0.62 (* guard *)
let sh_prob = 0.55 (* store *)
let rh_prob = 0.72 (* return *)

let block_has_call ctx bid =
  List.exists
    (fun instr ->
      match instr with Ir.Def (_, Ir.Call _) -> true | Ir.Def _ | Ir.Store _ -> false)
    (Ir.block ctx.fn bid).instrs

let block_has_store ctx bid =
  List.exists
    (fun instr -> match instr with Ir.Store _ -> true | Ir.Def _ -> false)
    (Ir.block ctx.fn bid).instrs

let block_returns ctx bid =
  match (Ir.block ctx.fn bid).term with Ir.Ret _ -> true | Ir.Jump _ | Ir.Br _ -> false

let postdominates ctx a b = Dom.postdominates ctx.postdom a b

(* Each heuristic: Some p = predicted probability of taking the TRUE edge. *)

(** Loop branch: predict the edge that is a back edge (or directly enters the
    loop body when the other edge exits the loop). *)
let loop_branch ctx ~src (br : Ir.branch) =
  let is_back dst = Loops.is_back_edge ctx.loops ~src ~dst in
  let t_back = is_back br.tdst and f_back = is_back br.fdst in
  if t_back && not f_back then Some lbh_prob
  else if f_back && not t_back then Some (1.0 -. lbh_prob)
  else begin
    (* header-style loop branch: one edge stays in the innermost loop of
       [src], the other leaves it *)
    let t_exit = Loops.is_loop_exit_edge ctx.loops ~src ~dst:br.tdst in
    let f_exit = Loops.is_loop_exit_edge ctx.loops ~src ~dst:br.fdst in
    if Loops.in_loop ctx.loops src then
      if t_exit && not f_exit then Some (1.0 -. lbh_prob)
      else if f_exit && not t_exit then Some lbh_prob
      else None
    else None
  end

(** Loop exit: inside a loop, neither successor a loop header, one edge
    leaves the loop — predict it is not taken. (Subsumed by our loop-branch
    formulation for header branches; still fires for breaks.) *)
let loop_exit ctx ~src (br : Ir.branch) =
  if not (Loops.in_loop ctx.loops src) then None
  else if Loops.is_loop_header ctx.loops br.tdst || Loops.is_loop_header ctx.loops br.fdst
  then None
  else begin
    let t_exit = Loops.is_loop_exit_edge ctx.loops ~src ~dst:br.tdst in
    let f_exit = Loops.is_loop_exit_edge ctx.loops ~src ~dst:br.fdst in
    if t_exit && not f_exit then Some (1.0 -. leh_prob)
    else if f_exit && not t_exit then Some leh_prob
    else None
  end

(** Loop header: predict a successor that is a loop header or pre-header and
    does not post-dominate the branch. *)
let loop_header ctx ~src (br : Ir.branch) =
  let header_or_preheader dst =
    Loops.is_loop_header ctx.loops dst
    ||
    match (Ir.block ctx.fn dst).Ir.term with
    | Ir.Jump d -> Loops.is_loop_header ctx.loops d
    | Ir.Br _ | Ir.Ret _ -> false
  in
  let qualifies dst = header_or_preheader dst && not (postdominates ctx dst src) in
  let t = qualifies br.tdst and f = qualifies br.fdst in
  if t && not f then Some lhh_prob else if f && not t then Some (1.0 -. lhh_prob) else None

(** Call: predict a successor containing a call that does not post-dominate
    the branch is not taken. *)
let call ctx ~src (br : Ir.branch) =
  let qualifies dst = block_has_call ctx dst && not (postdominates ctx dst src) in
  let t = qualifies br.tdst and f = qualifies br.fdst in
  if t && not f then Some (1.0 -. ch_prob)
  else if f && not t then Some ch_prob
  else None

(** Opcode: comparisons [a < 0], [a <= 0] and equality tests are predicted
    to fail. *)
let opcode _ctx ~src:_ (br : Ir.branch) =
  let is_neg_const = function Ir.Cint n -> n <= 0 | Ir.Cfloat f -> f <= 0.0 | Ir.Ovar _ -> false in
  match br.rel with
  | Ast.Eq -> Some (1.0 -. oh_prob)
  | Ast.Ne -> Some oh_prob
  | Ast.Lt when is_neg_const br.bb -> Some (1.0 -. oh_prob)
  | Ast.Le when is_neg_const br.bb -> Some (1.0 -. oh_prob)
  | Ast.Gt when is_neg_const br.bb -> Some oh_prob
  | Ast.Ge when is_neg_const br.bb -> Some oh_prob
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> None

(** Guard: a register compared by the branch is used in a successor (before
    being redefined there) that does not post-dominate the branch — predict
    that successor taken. In SSA any use of the same variable qualifies. *)
let guard ctx ~src (br : Ir.branch) =
  let branch_vars =
    List.filter_map Ir.operand_var [ br.ba; br.bb ] |> List.map (fun v -> v.Vrp_ir.Var.id)
  in
  if branch_vars = [] then None
  else begin
    let uses_var dst =
      List.exists
        (fun instr ->
          match instr with
          | Ir.Def (_, Ir.Assertion _) -> false  (* assertions are bookkeeping *)
          | instr ->
            List.exists
              (fun (v : Vrp_ir.Var.t) -> List.mem v.Vrp_ir.Var.id branch_vars)
              (Ir.instr_uses instr))
        (Ir.block ctx.fn dst).instrs
    in
    let qualifies dst = uses_var dst && not (postdominates ctx dst src) in
    let t = qualifies br.tdst and f = qualifies br.fdst in
    if t && not f then Some gh_prob else if f && not t then Some (1.0 -. gh_prob) else None
  end

(** Store: predict a successor containing a store that does not post-dominate
    the branch is not taken. *)
let store ctx ~src (br : Ir.branch) =
  let qualifies dst = block_has_store ctx dst && not (postdominates ctx dst src) in
  let t = qualifies br.tdst and f = qualifies br.fdst in
  if t && not f then Some (1.0 -. sh_prob)
  else if f && not t then Some sh_prob
  else None

(** Return: predict a successor containing a return is not taken. *)
let return ctx ~src:_ (br : Ir.branch) =
  let t = block_returns ctx br.tdst and f = block_returns ctx br.fdst in
  if t && not f then Some (1.0 -. rh_prob)
  else if f && not t then Some rh_prob
  else None

let all_heuristics = [ loop_branch; loop_exit; loop_header; call; opcode; guard; store; return ]

(** Ball–Larus estimate for the branch terminating [src]: Dempster–Shafer
    combination of every applicable heuristic. *)
let ball_larus ctx ~src (br : Ir.branch) : float =
  let estimates = List.filter_map (fun h -> h ctx ~src br) all_heuristics in
  Combine.combine estimates

(** The 90/50 rule: structurally-backward branches are taken 90% of the
    time, everything else 50/50. *)
let ninety_fifty ctx ~src (br : Ir.branch) : float =
  let backward dst =
    Loops.is_back_edge ctx.loops ~src ~dst
    || (Loops.in_loop ctx.loops src
       && (not (Loops.is_loop_exit_edge ctx.loops ~src ~dst))
       && Loops.is_loop_exit_edge ctx.loops ~src
            ~dst:(if dst = br.tdst then br.fdst else br.tdst))
  in
  if backward br.tdst then 0.9 else if backward br.fdst then 0.1 else 0.5
