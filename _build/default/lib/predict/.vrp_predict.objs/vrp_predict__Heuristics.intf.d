lib/predict/heuristics.mli: Vrp_ir
