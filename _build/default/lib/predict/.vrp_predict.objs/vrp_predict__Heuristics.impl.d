lib/predict/heuristics.ml: Combine List Vrp_ir Vrp_lang
