lib/predict/predictor.ml: Array Hashtbl Heuristics List Vrp_ir Vrp_profile Vrp_util
