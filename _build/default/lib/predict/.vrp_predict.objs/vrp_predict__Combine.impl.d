lib/predict/combine.ml: List
