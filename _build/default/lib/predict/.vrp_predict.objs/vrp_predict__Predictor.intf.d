lib/predict/predictor.mli: Hashtbl Vrp_ir Vrp_profile
