lib/predict/combine.mli:
