(** Combining independent branch-probability estimates.

    Wu & Larus, "Static Branch Frequency and Program Profile Analysis"
    (MICRO-27, 1994) combine the evidence of several applicable Ball–Larus
    heuristics with the Dempster–Shafer rule; the paper under reproduction
    uses the same combination ("the [BallLarus93] heuristics combined as in
    [WuLarus94] to produce probabilities", §5). *)

(** Dempster–Shafer combination of two taken-probabilities. *)
let dempster_shafer p1 p2 =
  let num = p1 *. p2 in
  let denom = num +. ((1.0 -. p1) *. (1.0 -. p2)) in
  if denom <= 0.0 then 0.5 else num /. denom

(** Combine a list of estimates; no evidence means an even 50/50 guess. *)
let combine = function
  | [] -> 0.5
  | p :: rest -> List.fold_left dempster_shafer p rest
