(** Deterministic pseudo-random number generator (splitmix64).

    Used wherever reproducible randomness is needed — the random baseline
    predictor, workload generation on the OCaml side and property tests —
    so that every run of the benchmark harness prints identical numbers. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] returns a value in [[0, bound)]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let x = Int64.to_int (next_int64 t) land max_int in
  x mod bound

(** [float t] returns a value in [[0, 1)]. *)
let float t =
  let x = Int64.to_int (next_int64 t) land ((1 lsl 53) - 1) in
  float_of_int x /. float_of_int (1 lsl 53)

(** [range t lo hi] returns a value in [[lo, hi]] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Prng.range: empty range";
  lo + int t (hi - lo + 1)
