(** Deterministic pseudo-random number generator (splitmix64), used wherever
    reproducible randomness is needed so that every run prints identical
    numbers. *)

type t

val create : int -> t
val next_int64 : t -> int64

(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [[0, 1)]. *)
val float : t -> float

(** [range t lo hi] is uniform in [[lo, hi]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)
val range : t -> int -> int -> int
