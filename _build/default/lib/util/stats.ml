(** Small statistics helpers for the evaluation harness and the linearity
    figures (least-squares fit, means). *)

let mean xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** Ordinary least-squares fit of [y = a + b * x].
    Returns [(intercept, slope, r2)]. *)
let least_squares (points : (float * float) list) =
  match points with
  | [] | [ _ ] -> (0.0, 0.0, 0.0)
  | _ ->
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
    let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-12 then (0.0, 0.0, 0.0)
    else begin
      let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (slope *. sx)) /. n in
      let ybar = sy /. n in
      let ss_tot =
        List.fold_left (fun acc (_, y) -> acc +. ((y -. ybar) ** 2.0)) 0.0 points
      in
      let ss_res =
        List.fold_left
          (fun acc (x, y) ->
            let fit = intercept +. (slope *. x) in
            acc +. ((y -. fit) ** 2.0))
          0.0 points
      in
      let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
      (intercept, slope, r2)
    end

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x
