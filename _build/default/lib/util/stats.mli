(** Small statistics helpers for the evaluation harness and the linearity
    figures. *)

(** Arithmetic mean; 0 for the empty list. *)
val mean : float list -> float

(** Ordinary least-squares fit of [y = a + b*x]: [(intercept, slope, r²)].
    Degenerate inputs (fewer than two points, zero variance) give zeros. *)
val least_squares : (float * float) list -> float * float * float

val clamp : lo:float -> hi:float -> float -> float
