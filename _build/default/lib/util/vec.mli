(** Growable arrays (OCaml 5.1 has no [Dynarray]). *)

type 'a t

(** [create ~dummy] is an empty vector; [dummy] fills unused capacity. *)
val create : dummy:'a -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** @raise Invalid_argument on out-of-bounds access. *)
val get : 'a t -> int -> 'a

(** @raise Invalid_argument on out-of-bounds access. *)
val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

(** @raise Invalid_argument when empty. *)
val pop : 'a t -> 'a

val clear : 'a t -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val to_array : 'a t -> 'a array
val map : dummy:'b -> ('a -> 'b) -> 'a t -> 'b t
