lib/util/stats.mli:
