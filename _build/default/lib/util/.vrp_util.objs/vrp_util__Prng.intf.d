lib/util/prng.mli:
