lib/util/vec.mli:
