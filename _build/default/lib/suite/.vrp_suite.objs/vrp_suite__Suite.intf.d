lib/suite/suite.mli:
