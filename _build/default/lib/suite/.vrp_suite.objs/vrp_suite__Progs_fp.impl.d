lib/suite/progs_fp.ml: Progs_int
