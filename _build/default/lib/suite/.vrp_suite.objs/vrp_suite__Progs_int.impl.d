lib/suite/progs_int.ml:
