lib/suite/suite.ml: List Progs_fp Progs_int String
