lib/suite/synth.mli:
