lib/suite/synth.ml: Buffer Printf Progs_int Vrp_util
