(** Synthetic MiniC program generator for the complexity study (Figures
    5/6): structured programs of parametric size with the same ingredient
    mix as the hand-written suite. Deterministic in [(units, seed)]. *)

val generate : units:int -> seed:int -> string
