(** The benchmark registry: programs, their suite, and their train/reference
    inputs (paper §5's input.short vs input.ref regime). *)

type category = Int_suite | Fp_suite

type benchmark = {
  name : string;
  category : category;
  source : string;
  train_args : int list;  (** (n, seed) for the profiling run *)
  ref_args : int list;  (** (n, seed) for the observed behaviour *)
}

val category_to_string : category -> string
val benchmarks : benchmark list
val find : string -> benchmark option
val by_category : category -> benchmark list
