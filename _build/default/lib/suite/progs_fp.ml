(** The numeric benchmark suite: MiniC programs whose branch mix mirrors
    SPECfp92 — kernels dominated by counted loops over arrays, where almost
    every branch is controlled by an induction variable. This is the regime
    in which the paper reports value range propagation doing markedly better
    than on integer code ("numeric code often has a very simple branching
    structure, with most branches depending on loop control variables",
    §5). *)

let rng_preamble = Progs_int.rng_preamble

(* Fixed-size float data; [frand] yields values in [0, 1). *)
let frand_preamble =
  rng_preamble
  ^ {|
float frand() {
  int r = rand_below(1000000);
  return r / 1000000.0;
}
|}

let matmul =
  frand_preamble
  ^ {|
// Fixed 40x40 matrices (like SPECfp kernels with compiled-in dimensions);
// n selects the number of multiply rounds.
float a[1600];
float b[1600];
float c[1600];

int main(int n, int seed) {
  if (n < 1) { n = 1; }
  if (n > 8) { n = 8; }
  rng = seed % 65536 + 1;
  for (int i = 0; i < 1600; i++) {
    a[i] = frand();
    b[i] = frand();
  }
  int above = 0;
  for (int round = 0; round < n; round++) {
    for (int i = 0; i < 40; i++) {
      for (int j = 0; j < 40; j++) {
        float acc = 0.0;
        for (int k = 0; k < 40; k++) {
          acc = acc + a[i * 40 + k] * b[k * 40 + j];
        }
        c[i * 40 + j] = acc;
      }
    }
    // Checksum and feedback so the rounds are not idempotent.
    float threshold = 10.0;
    for (int i = 0; i < 1600; i++) {
      if (c[i] > threshold) { above++; }
      a[i] = c[i] / 16.0;
    }
  }
  return above;
}
|}

let jacobi =
  frand_preamble
  ^ {|
float grid[2500];
float next[2500];

// Fixed 48x48 interior on a 50-wide grid; n selects the sweep count.
int main(int n, int seed) {
  if (n < 4) { n = 4; }
  if (n > 80) { n = 80; }
  rng = seed % 65536 + 1;
  // Hot boundary on one edge, cold elsewhere.
  for (int i = 0; i < 2500; i++) { grid[i] = 0.0; }
  for (int j = 0; j < 50; j++) { grid[j] = 100.0; }
  float delta = 0.0;
  for (int s = 0; s < n; s++) {
    delta = 0.0;
    for (int i = 1; i <= 48; i++) {
      for (int j = 1; j <= 48; j++) {
        float v = (grid[(i - 1) * 50 + j] + grid[(i + 1) * 50 + j]
          + grid[i * 50 + j - 1] + grid[i * 50 + j + 1]) / 4.0;
        next[i * 50 + j] = v;
        float d = v - grid[i * 50 + j];
        if (d < 0.0) { d = 0.0 - d; }
        if (d > delta) { delta = d; }
      }
    }
    for (int i = 1; i <= 48; i++) {
      for (int j = 1; j <= 48; j++) {
        grid[i * 50 + j] = next[i * 50 + j];
      }
    }
    if (delta < 0.001) { break; }
  }
  // Quantised checksum.
  float total = 0.0;
  for (int i = 1; i <= 48; i++) {
    for (int j = 1; j <= 48; j++) { total = total + grid[i * 50 + j]; }
  }
  int q = 0;
  while (total > 1.0) {
    total = total - 1.0;
    q++;
    if (q > 100000) { break; }
  }
  return q;
}
|}

let nbody =
  frand_preamble
  ^ {|
float px[256];
float py[256];
float vx[256];
float vy[256];

// Fixed 80-body system; n selects the number of time steps.
int main(int n, int seed) {
  if (n < 2) { n = 2; }
  if (n > 40) { n = 40; }
  rng = seed % 65536 + 1;
  for (int i = 0; i < 80; i++) {
    px[i] = frand() * 10.0;
    py[i] = frand() * 10.0;
    vx[i] = 0.0;
    vy[i] = 0.0;
  }
  float dt = 0.01;
  float eps = 0.05;
  for (int s = 0; s < n; s++) {
    for (int i = 0; i < 80; i++) {
      float ax = 0.0;
      float ay = 0.0;
      for (int j = 0; j < 80; j++) {
        if (j != i) {
          float dx = px[j] - px[i];
          float dy = py[j] - py[i];
          float d2 = dx * dx + dy * dy + eps;
          // inverse by Newton iteration (no math library)
          float inv = 1.0;
          if (d2 > 1.0) { inv = 0.1; }
          for (int it = 0; it < 5; it++) {
            inv = inv * (2.0 - d2 * inv);
          }
          ax = ax + dx * inv;
          ay = ay + dy * inv;
        }
      }
      vx[i] = vx[i] + ax * dt;
      vy[i] = vy[i] + ay * dt;
    }
    for (int i = 0; i < 80; i++) {
      px[i] = px[i] + vx[i] * dt;
      py[i] = py[i] + vy[i] * dt;
    }
  }
  // Count particles that drifted out of the 10x10 box.
  int out = 0;
  for (int i = 0; i < 80; i++) {
    if (px[i] < 0.0 || px[i] > 10.0 || py[i] < 0.0 || py[i] > 10.0) { out++; }
  }
  return out * 1000 + n;
}
|}

let fir =
  frand_preamble
  ^ {|
float signal[8192];
float output[8192];
float taps[16];

int main(int n, int seed) {
  if (n < 32) { n = 32; }
  if (n > 8192) { n = 8192; }
  rng = seed % 65536 + 1;
  int ntaps = 12;
  for (int t = 0; t < ntaps; t++) {
    taps[t] = (frand() - 0.5) / ntaps;
  }
  for (int i = 0; i < n; i++) {
    signal[i] = frand() * 2.0 - 1.0;
  }
  for (int i = 0; i < n; i++) {
    float acc = 0.0;
    for (int t = 0; t < ntaps; t++) {
      if (i - t >= 0) {
        acc = acc + taps[t] * signal[i - t];
      }
    }
    output[i] = acc;
  }
  // Count zero crossings of the filtered signal.
  int crossings = 0;
  for (int i = 1; i < n; i++) {
    if (output[i - 1] < 0.0 && output[i] >= 0.0) { crossings++; }
    if (output[i - 1] >= 0.0 && output[i] < 0.0) { crossings++; }
  }
  return crossings;
}
|}

let gauss =
  frand_preamble
  ^ {|
float m[1056];
float x[32];

// Fixed 24x24 systems; n selects how many systems are solved.
int main(int n, int seed) {
  if (n < 1) { n = 1; }
  if (n > 24) { n = 24; }
  rng = seed % 65536 + 1;
  int good = 0;
  for (int solve = 0; solve < n; solve++) {
    good = good + solve_one();
  }
  return good;
}

int solve_one() {
  int n = 24;
  int w = n + 1;
  // Diagonally dominant system (always solvable).
  for (int i = 0; i < n; i++) {
    float rowsum = 0.0;
    for (int j = 0; j < n; j++) {
      float v = frand() - 0.5;
      m[i * w + j] = v;
      if (v < 0.0) { rowsum = rowsum - v; } else { rowsum = rowsum + v; }
    }
    m[i * w + i] = rowsum + 1.0;
    m[i * w + n] = frand() * 4.0;
  }
  // Forward elimination with partial pivoting.
  for (int col = 0; col < n; col++) {
    int pivot = col;
    float best = m[col * w + col];
    if (best < 0.0) { best = 0.0 - best; }
    for (int r = col + 1; r < n; r++) {
      float cand = m[r * w + col];
      if (cand < 0.0) { cand = 0.0 - cand; }
      if (cand > best) { best = cand; pivot = r; }
    }
    if (pivot != col) {
      for (int j = col; j <= n; j++) {
        float t = m[col * w + j];
        m[col * w + j] = m[pivot * w + j];
        m[pivot * w + j] = t;
      }
    }
    float diag = m[col * w + col];
    for (int r = col + 1; r < n; r++) {
      float factor = m[r * w + col] / diag;
      for (int j = col; j <= n; j++) {
        m[r * w + j] = m[r * w + j] - factor * m[col * w + j];
      }
    }
  }
  // Back substitution.
  for (int i = n - 1; i >= 0; i = i - 1) {
    float acc = m[i * w + n];
    for (int j = i + 1; j < n; j++) {
      acc = acc - m[i * w + j] * x[j];
    }
    x[i] = acc / m[i * w + i];
  }
  // Sanity: every solution component should be bounded.
  int good = 0;
  for (int i = 0; i < n; i++) {
    if (x[i] > 0.0 - 100.0 && x[i] < 100.0) { good++; }
  }
  return good;
}
|}

let rk4 =
  frand_preamble
  ^ {|
// RK4 integration of the damped oscillator x'' = -k x - c x'.
float trace[4096];

int main(int n, int seed) {
  if (n < 16) { n = 16; }
  if (n > 4096) { n = 4096; }
  rng = seed % 65536 + 1;
  float k = 1.0 + frand();
  float c = 0.1 + frand() * 0.2;
  float x = 1.0;
  float v = 0.0;
  float h = 0.05;
  for (int s = 0; s < n; s++) {
    float k1x = v;
    float k1v = 0.0 - k * x - c * v;
    float k2x = v + h / 2.0 * k1v;
    float k2v = 0.0 - k * (x + h / 2.0 * k1x) - c * (v + h / 2.0 * k1v);
    float k3x = v + h / 2.0 * k2v;
    float k3v = 0.0 - k * (x + h / 2.0 * k2x) - c * (v + h / 2.0 * k2v);
    float k4x = v + h * k3v;
    float k4v = 0.0 - k * (x + h * k3x) - c * (v + h * k3v);
    x = x + h / 6.0 * (k1x + 2.0 * k2x + 2.0 * k3x + k4x);
    v = v + h / 6.0 * (k1v + 2.0 * k2v + 2.0 * k3v + k4v);
    trace[s] = x;
  }
  // Count oscillation peaks in the trace.
  int peaks = 0;
  for (int s = 1; s + 1 < n; s++) {
    if (trace[s] > trace[s - 1] && trace[s] > trace[s + 1]) { peaks++; }
  }
  return peaks;
}
|}

let dft =
  frand_preamble
  ^ {|
// Naive DFT magnitude spectrum with Taylor sin/cos (no math library).
float signal[512];
float re[512];
float im[512];

float poly_sin(float t) {
  // reduce to [-pi, pi] by repeated subtraction
  while (t > 3.14159265) { t = t - 6.2831853; }
  while (t < 0.0 - 3.14159265) { t = t + 6.2831853; }
  float t2 = t * t;
  return t * (1.0 - t2 / 6.0 * (1.0 - t2 / 20.0 * (1.0 - t2 / 42.0)));
}

float poly_cos(float t) {
  return poly_sin(t + 1.5707963);
}

// Fixed 64-point transform; n selects how many frames are analysed.
int main(int n, int seed) {
  if (n < 1) { n = 1; }
  if (n > 16) { n = 16; }
  rng = seed % 65536 + 1;
  int bins = 0;
  for (int frame = 0; frame < n; frame++) {
    // Two embedded tones plus noise, fresh per frame.
    int f1 = 1 + rand_below(16);
    int f2 = 1 + rand_below(16);
    for (int i = 0; i < 64; i++) {
      float t = i * 6.2831853 / 64.0;
      signal[i] = poly_sin (f1 * t) + 0.5 * poly_sin (f2 * t) + (frand() - 0.5) * 0.1;
    }
    for (int k = 0; k < 64; k++) {
      float sr = 0.0;
      float si = 0.0;
      for (int i = 0; i < 64; i++) {
        int ki = (k * i) % 64;
        float ang = 0.0 - ki * 6.2831853 / 64.0;
        sr = sr + signal[i] * poly_cos (ang);
        si = si + signal[i] * poly_sin (ang);
      }
      re[k] = sr;
      im[k] = si;
    }
    // Count significant bins (power above 4.0).
    for (int k = 0; k < 64; k++) {
      float power = re[k] * re[k] + im[k] * im[k];
      if (power > 4.0) { bins++; }
    }
  }
  return bins;
}
|}

let cholesky =
  frand_preamble
  ^ {|
// Cholesky-like LDL^T decomposition of a random SPD matrix, with
// Newton-iteration reciprocals (data-dependent convergence loops).
float a[1024];
float l[1024];
float d[32];

float recip(float v) {
  float inv = 1.0;
  if (v > 1.0) { inv = 0.5; }
  if (v > 4.0) { inv = 0.125; }
  int it = 0;
  float err = 1.0;
  while (err > 0.000001 && it < 40) {
    inv = inv * (2.0 - v * inv);
    err = 1.0 - v * inv;
    if (err < 0.0) { err = 0.0 - err; }
    it++;
  }
  return inv;
}

int main(int n, int seed) {
  if (n < 3) { n = 3; }
  if (n > 32) { n = 32; }
  rng = seed % 65536 + 1;
  // SPD via A = B B^T + n I (computed directly).
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      a[i * n + j] = 0.0;
    }
  }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j <= i; j++) {
      float acc = 0.0;
      for (int k = 0; k < n; k++) {
        // pseudo row vectors from the generator, deterministic per (i,k)
        int h1 = (i * 131 + k * 17 + seed) % 97;
        int h2 = (j * 131 + k * 17 + seed) % 97;
        acc = acc + (h1 - 48) * (h2 - 48) / 2304.0;
      }
      a[i * n + j] = acc;
      a[j * n + i] = acc;
    }
    a[i * n + i] = a[i * n + i] + n;
  }
  // LDL^T decomposition.
  for (int j = 0; j < n; j++) {
    float dj = a[j * n + j];
    for (int k = 0; k < j; k++) {
      dj = dj - l[j * n + k] * l[j * n + k] * d[k];
    }
    d[j] = dj;
    float inv_dj = recip(dj);
    l[j * n + j] = 1.0;
    for (int i = j + 1; i < n; i++) {
      float acc = a[i * n + j];
      for (int k = 0; k < j; k++) {
        acc = acc - l[i * n + k] * l[j * n + k] * d[k];
      }
      l[i * n + j] = acc * inv_dj;
    }
  }
  // All pivots of an SPD matrix must be positive.
  int positive = 0;
  for (int j = 0; j < n; j++) {
    if (d[j] > 0.0) { positive++; }
  }
  return positive;
}
|}

let conv2d =
  frand_preamble
  ^ {|
// 5x5 convolution over a fixed 40x40 image; n selects the number of passes
// (classic fixed-dimension image kernel).
float image[1600];
float out[1600];
float kernel[25];

int main(int n, int seed) {
  if (n < 1) { n = 1; }
  if (n > 10) { n = 10; }
  rng = seed % 65536 + 1;
  for (int i = 0; i < 1600; i++) { image[i] = frand(); }
  for (int k = 0; k < 25; k++) { kernel[k] = (frand() - 0.5) / 5.0; }
  kernel[12] = 1.0;
  int bright = 0;
  for (int pass = 0; pass < n; pass++) {
    for (int y = 2; y < 38; y++) {
      for (int x = 2; x < 38; x++) {
        float acc = 0.0;
        for (int ky = 0; ky < 5; ky++) {
          for (int kx = 0; kx < 5; kx++) {
            acc = acc + kernel[ky * 5 + kx] * image[(y + ky - 2) * 40 + (x + kx - 2)];
          }
        }
        out[y * 40 + x] = acc;
        if (acc > 0.75) { bright++; }
      }
    }
    // Feed the result back (clamped) for the next pass.
    for (int i = 0; i < 1600; i++) {
      float v = out[i];
      if (v < 0.0) { v = 0.0; }
      if (v > 1.0) { v = 1.0; }
      image[i] = v;
    }
  }
  return bright;
}
|}

let simpson =
  frand_preamble
  ^ {|
// Composite Simpson integration of random cubic polynomials over [0,1]
// with a fixed 128-panel rule; n selects how many integrals are computed.
float coeff[4];

float poly(float t) {
  return coeff[0] + t * (coeff[1] + t * (coeff[2] + t * coeff[3]));
}

float integrate() {
  float h = 1.0 / 128.0;
  float acc = poly(0.0) + poly(1.0);
  for (int i = 1; i < 128; i++) {
    float t = i * h;
    if (i % 2 == 1) { acc = acc + 4.0 * poly(t); }
    else { acc = acc + 2.0 * poly(t); }
  }
  return acc * h / 3.0;
}

int main(int n, int seed) {
  if (n < 4) { n = 4; }
  if (n > 600) { n = 600; }
  rng = seed % 65536 + 1;
  int close = 0;
  for (int trial = 0; trial < n; trial++) {
    for (int k = 0; k < 4; k++) { coeff[k] = frand() * 2.0 - 1.0; }
    float numeric = integrate();
    // Exact antiderivative value for the cross-check.
    float exact = coeff[0] + coeff[1] / 2.0 + coeff[2] / 3.0 + coeff[3] / 4.0;
    float err = numeric - exact;
    if (err < 0.0) { err = 0.0 - err; }
    if (err < 0.0001) { close++; }
  }
  return close;
}
|}

let all : (string * string) list =
  [
    ("matmul", matmul);
    ("jacobi", jacobi);
    ("nbody", nbody);
    ("fir", fir);
    ("gauss", gauss);
    ("rk4", rk4);
    ("dft", dft);
    ("cholesky", cholesky);
    ("conv2d", conv2d);
    ("simpson", simpson);
  ]
