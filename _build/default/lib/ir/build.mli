(** Lowering from the MiniC AST to the CFG IR: expression flattening to
    three-address code, short-circuit control flow, implicit zero
    initialisation, global scalars as memory, CFG cleanup and critical-edge
    splitting. See the implementation header for the full list of
    conventions the rest of the pipeline relies on. *)

exception Lower_error of string

(** Drop unreachable blocks and renumber densely (preserving φ argument
    consistency). *)
val cleanup : Ir.fn -> Ir.fn

(** Ensure each successor of a conditional branch has exactly one
    predecessor (gives assertions a unique edge to guard). *)
val split_critical_edges : Ir.fn -> Ir.fn

(** Lower a type-checked program to a canonical (cleaned, split) CFG
    program. SSA conversion is the separate {!Ssa} pass. *)
val program : Vrp_lang.Ast.program -> Ir.program
