(** IR well-formedness and SSA invariant checks.

    Used by the test suite and callable from the CLI; [check_ssa_fn] raises
    [Violation] describing the first broken invariant. Checked invariants:

    - block ids are dense and terminator targets are in range;
    - predecessor caches match the successor relation;
    - every SSA variable has exactly one definition;
    - φ-functions have exactly one argument per predecessor, in
      correspondence with the predecessor list;
    - every use is dominated by its definition (φ uses checked at the end of
      the corresponding predecessor);
    - conditional branches have distinct targets, and each successor of a
      conditional branch has exactly one predecessor (so assertions guard a
      unique edge). *)

exception Violation of string

let failf fmt = Printf.ksprintf (fun msg -> raise (Violation msg)) fmt

let check_structure (fn : Ir.fn) =
  let n = Ir.num_blocks fn in
  Array.iteri
    (fun i b ->
      if b.Ir.bid <> i then failf "%s: block at index %d has id %d" fn.fname i b.Ir.bid;
      List.iter
        (fun s ->
          if s < 0 || s >= n then failf "%s: B%d jumps to out-of-range B%d" fn.fname i s)
        (Ir.successors b.Ir.term))
    fn.blocks;
  (* preds caches *)
  let expected = Array.make n [] in
  Ir.iter_blocks fn (fun b ->
      List.iter (fun s -> expected.(s) <- b.Ir.bid :: expected.(s)) (Ir.successors b.Ir.term));
  Ir.iter_blocks fn (fun b ->
      let want = List.sort Int.compare expected.(b.Ir.bid) in
      let got = List.sort Int.compare b.Ir.preds in
      if want <> got then failf "%s: B%d has stale predecessor cache" fn.fname b.Ir.bid)

let check_ssa_fn (fn : Ir.fn) =
  check_structure fn;
  let dom = Dom.compute fn in
  (* Definition points: var id -> (block, index within block; -1 for params). *)
  let defs : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v : Var.t) ->
      if Hashtbl.mem defs v.Var.id then failf "%s: parameter %s defined twice" fn.fname v.base;
      Hashtbl.replace defs v.Var.id (Ir.entry_bid, -1))
    fn.params;
  Ir.iter_blocks fn (fun b ->
      List.iteri
        (fun idx i ->
          match Ir.instr_def i with
          | Some v ->
            if Hashtbl.mem defs v.Var.id then
              failf "%s: variable %s has multiple definitions" fn.fname (Var.to_string v);
            Hashtbl.replace defs v.Var.id (b.Ir.bid, idx)
          | None -> ())
        b.Ir.instrs);
  let check_use ~user_bid ~user_idx (v : Var.t) =
    match Hashtbl.find_opt defs v.Var.id with
    | None -> failf "%s: use of undefined variable %s in B%d" fn.fname (Var.to_string v) user_bid
    | Some (def_bid, def_idx) ->
      let ok =
        if def_bid = user_bid then def_idx < user_idx
        else Dom.strictly_dominates dom def_bid user_bid
      in
      if not ok then
        failf "%s: use of %s in B%d not dominated by its definition in B%d" fn.fname
          (Var.to_string v) user_bid def_bid
  in
  Ir.iter_blocks fn (fun b ->
      List.iteri
        (fun idx instr ->
          match instr with
          | Ir.Def (_, Ir.Phi args) ->
            let arg_preds = List.sort Int.compare (List.map fst args) in
            let preds = List.sort Int.compare b.Ir.preds in
            if arg_preds <> preds then
              failf "%s: phi in B%d has arguments %s but predecessors %s" fn.fname b.Ir.bid
                (String.concat "," (List.map string_of_int arg_preds))
                (String.concat "," (List.map string_of_int preds));
            List.iter
              (fun (pred, arg) ->
                match Ir.operand_var arg with
                | Some v ->
                  (* The argument must be available at the end of [pred]. *)
                  check_use ~user_bid:pred ~user_idx:max_int v
                | None -> ())
              args
          | instr ->
            List.iter (check_use ~user_bid:b.Ir.bid ~user_idx:idx) (Ir.instr_uses instr))
        b.Ir.instrs;
      List.iter
        (check_use ~user_bid:b.Ir.bid ~user_idx:max_int)
        (Ir.term_uses b.Ir.term);
      match b.Ir.term with
      | Ir.Br { tdst; fdst; _ } ->
        if tdst = fdst then
          failf "%s: conditional branch in B%d has identical targets" fn.fname b.Ir.bid;
        List.iter
          (fun dst ->
            if List.length (Ir.block fn dst).preds <> 1 then
              failf "%s: branch successor B%d of B%d has multiple predecessors" fn.fname dst
                b.Ir.bid)
          [ tdst; fdst ]
      | Ir.Jump _ | Ir.Ret _ -> ())

let check_ssa_program (p : Ir.program) = List.iter check_ssa_fn p.fns
