(** Graphviz (DOT) export of control flow graphs, optionally annotated with
    branch probabilities and block frequencies — handy for inspecting what
    the analyses believe about a function. *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\l"
      | '<' | '>' | '{' | '}' | '|' -> Buffer.add_char buf c
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Render one function. [branch_prob bid] annotates conditional out-edges;
    [block_note bid] adds a line (e.g. a frequency) to the block label. *)
let fn_to_dot ?(branch_prob = fun _ -> None) ?(block_note = fun _ -> None) (fn : Ir.fn) :
    string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" fn.Ir.fname);
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
  Ir.iter_blocks fn (fun b ->
      let body =
        String.concat "\n"
          ((Printf.sprintf "B%d:" b.Ir.bid
           :: List.map Ir.instr_to_string b.Ir.instrs)
          @ [ Ir.term_to_string b.Ir.term ]
          @ (match block_note b.Ir.bid with Some note -> [ note ] | None -> []))
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\l\"];\n" b.Ir.bid (escape body));
      match b.Ir.term with
      | Ir.Jump d -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" b.Ir.bid d)
      | Ir.Ret _ -> ()
      | Ir.Br { tdst; fdst; _ } -> (
        match branch_prob b.Ir.bid with
        | Some p ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"T %.1f%%\", color=darkgreen];\n" b.Ir.bid
               tdst (100.0 *. p));
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"F %.1f%%\", color=firebrick];\n" b.Ir.bid
               fdst (100.0 *. (1.0 -. p)))
        | None ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"T\"];\n" b.Ir.bid tdst);
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"F\"];\n" b.Ir.bid fdst)));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
