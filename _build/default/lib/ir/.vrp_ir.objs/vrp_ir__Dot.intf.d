lib/ir/dot.mli: Ir
