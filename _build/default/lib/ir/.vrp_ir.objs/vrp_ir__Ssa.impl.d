lib/ir/ssa.ml: Array Dom Hashtbl Ir List Option Queue Var Vrp_lang
