lib/ir/check.ml: Array Dom Hashtbl Int Ir List Printf String Var
