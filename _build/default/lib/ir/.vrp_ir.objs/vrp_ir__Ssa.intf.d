lib/ir/ssa.mli: Dom Hashtbl Ir Var
