lib/ir/build.mli: Ir Vrp_lang
