lib/ir/dom.ml: Array Ir List
