lib/ir/loops.ml: Array Dom Hashtbl Int Ir List Option Set
