lib/ir/loops.mli: Dom Ir Set
