lib/ir/build.ml: Array Fun Hashtbl Int Ir List Option Printf String Var Vrp_lang
