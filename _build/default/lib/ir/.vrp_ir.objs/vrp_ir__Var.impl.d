lib/ir/var.ml: Format Hashtbl Int Map Printf Set Vrp_lang
