lib/ir/dom.mli: Ir
