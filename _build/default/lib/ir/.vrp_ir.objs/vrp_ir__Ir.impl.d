lib/ir/ir.ml: Array Buffer List Option Printf String Var Vrp_lang
