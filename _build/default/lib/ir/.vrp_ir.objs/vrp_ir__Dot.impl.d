lib/ir/dot.ml: Buffer Ir List Printf String
