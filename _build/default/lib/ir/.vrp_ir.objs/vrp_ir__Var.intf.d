lib/ir/var.mli: Format Hashtbl Map Set Vrp_lang
