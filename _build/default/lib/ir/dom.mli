(** Dominator trees and dominance frontiers (Cooper–Harvey–Kennedy), plus
    postdominators via the reversed CFG. *)

type t = {
  idom : int array;  (** immediate dominator; [-1] for the root/unreachable *)
  rpo_index : int array;  (** reverse-postorder position; [-1] if unreachable *)
  children : int list array;  (** dominator-tree children *)
  root : int;
}

(** Reverse postorder of the nodes reachable from [root]. *)
val reverse_postorder : nblocks:int -> succs:(int -> int list) -> root:int -> int array

(** Graph-generic driver (used for both directions). *)
val compute_generic :
  nblocks:int -> succs:(int -> int list) -> preds:(int -> int list) -> root:int -> t

(** Dominator tree of a function (root = entry block). *)
val compute : Ir.fn -> t

(** Reflexive dominance. *)
val dominates : t -> int -> int -> bool

val strictly_dominates : t -> int -> int -> bool

(** Dominance frontiers (Cytron et al.), for φ placement. *)
val frontiers : Ir.fn -> t -> int list array

(** Postdominator tree over the reversed CFG with a virtual exit node (id
    [num_blocks fn]). *)
val compute_post : Ir.fn -> t

(** [postdominates pt a b]: every path from [b] to exit passes through [a]
    (use with a tree from {!compute_post}). *)
val postdominates : t -> int -> int -> bool
