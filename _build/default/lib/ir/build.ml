(** Lowering from the MiniC AST to the CFG IR.

    Conventions established here (the rest of the pipeline relies on them):

    - every local scalar is zero-initialised at function entry, so SSA
      renaming never meets an undefined use and the interpreter, SCCP and VRP
      agree on the semantics of paths that skip a textual initialisation;
    - global scalars are lowered as size-1 arrays accessed through
      [Load]/[Store]; as in the paper, loads from memory are opaque to the
      range analysis;
    - short-circuit [&&]/[||] become explicit control flow, so they
      contribute conditional branches exactly like C compilers' IRs;
    - conditions are normalised to a comparison terminator
      [Br (a rel b)]; a bare numeric condition becomes [a != 0]. *)

open Vrp_lang.Ast

type blk = { mutable rinstrs : Ir.instr list; mutable bterm : Ir.term option }

type fsig = { fret : ty }

type builder = {
  blocks : (int, blk) Hashtbl.t;
  mutable nblocks : int;
  mutable cur : int;
  fn_rec : Ir.fn;  (** under construction: used for fresh variables *)
  mutable scopes : (string, Var.t) Hashtbl.t list;
      (** lexical scopes for scalars, innermost first; each declaration gets
          a fresh IR variable so shadowing just works *)
  local_arrays : (string, Ir.array_info) Hashtbl.t;
  global_scalars : (string, ty) Hashtbl.t;
  global_arrays : (string, Ir.array_info) Hashtbl.t;
  fsigs : (string, fsig) Hashtbl.t;
  mutable break_targets : int list;
  mutable continue_targets : int list;
}

exception Lower_error of string

let new_block bld =
  let id = bld.nblocks in
  bld.nblocks <- bld.nblocks + 1;
  Hashtbl.add bld.blocks id { rinstrs = []; bterm = None };
  id

let cur_blk bld = Hashtbl.find bld.blocks bld.cur

let emit bld instr =
  let blk = cur_blk bld in
  (* Code after a return/break in the same source block is unreachable; we
     park it in a fresh block so it gets swept by the cleanup pass. *)
  (match blk.bterm with
  | None -> ()
  | Some _ -> bld.cur <- new_block bld);
  let blk = cur_blk bld in
  blk.rinstrs <- instr :: blk.rinstrs

let seal bld term =
  let blk = cur_blk bld in
  match blk.bterm with
  | None -> blk.bterm <- Some term
  | Some _ ->
    (* already terminated: the rest of this source block is dead code *)
    bld.cur <- new_block bld;
    (cur_blk bld).bterm <- Some term

(* Temporaries get distinct base names so SSA dumps stay unambiguous. *)
let fresh_temp bld ty =
  let base = Printf.sprintf "%%t%d" bld.fn_rec.Ir.nvars in
  Ir.fresh_var bld.fn_rec ~base ~version:(-1) ~ty

let lookup_scalar bld name =
  let rec walk = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with Some v -> Some v | None -> walk rest)
  in
  walk bld.scopes

let declare_scalar bld name ty : Var.t =
  let v = Ir.fresh_var bld.fn_rec ~base:name ~version:(-1) ~ty in
  (match bld.scopes with
  | scope :: _ -> Hashtbl.replace scope name v
  | [] -> assert false);
  v

let in_new_scope bld f =
  bld.scopes <- Hashtbl.create 8 :: bld.scopes;
  Fun.protect ~finally:(fun () -> bld.scopes <- List.tl bld.scopes) f

let lookup_array bld name =
  match Hashtbl.find_opt bld.local_arrays name with
  | Some info -> Some info
  | None -> Hashtbl.find_opt bld.global_arrays name

(* Static expression type, for choosing temp variable types. *)
let rec ty_of bld = function
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Var name -> (
    match lookup_scalar bld name with
    | Some v -> v.Var.ty
    | None -> (
      match Hashtbl.find_opt bld.global_scalars name with
      | Some ty -> ty
      | None -> raise (Lower_error ("unknown variable " ^ name))))
  | Index (name, _) -> (
    match lookup_array bld name with
    | Some info -> info.elem_ty
    | None -> raise (Lower_error ("unknown array " ^ name)))
  | Binop ((Add | Sub | Mul | Div), a, b) -> (
    match (ty_of bld a, ty_of bld b) with
    | Tint, Tint -> Tint
    | _ -> Tfloat)
  | Binop ((Mod | Band | Bor | Bxor | Shl | Shr), _, _) -> Tint
  | Rel _ | And _ | Or _ -> Tint
  | Unop (Neg, a) -> ty_of bld a
  | Unop ((Lnot | Bnot), _) -> Tint
  | Call (name, _) -> (
    match Hashtbl.find_opt bld.fsigs name with
    | Some { fret } -> fret
    | None -> raise (Lower_error ("unknown function " ^ name)))

(** Lower [e] to a right-hand side, emitting instructions for
    sub-expressions. Top-level operations are returned directly so that
    source assignments become a single [Def] rather than a temp + copy. *)
let rec lower_rhs bld (e : expr) : Ir.rhs =
  match e with
  | Int n -> Ir.Op (Ir.Cint n)
  | Float f -> Ir.Op (Ir.Cfloat f)
  | Var name -> (
    match lookup_scalar bld name with
    | Some v -> Ir.Op (Ir.Ovar v)
    | None ->
      if Hashtbl.mem bld.global_scalars name then Ir.Load (name, Ir.Cint 0)
      else raise (Lower_error ("unknown variable " ^ name)))
  | Index (name, idx) -> Ir.Load (name, lower_operand bld idx)
  | Binop (op, a, b) ->
    let oa = lower_operand bld a in
    let ob = lower_operand bld b in
    Ir.Binop (op, oa, ob)
  | Rel (op, a, b) ->
    let oa = lower_operand bld a in
    let ob = lower_operand bld b in
    Ir.Cmp (op, oa, ob)
  | Unop (Neg, a) -> Ir.Unop (Ir.Neg, lower_operand bld a)
  | Unop (Bnot, a) -> Ir.Unop (Ir.Bnot, lower_operand bld a)
  | Unop (Lnot, a) -> Ir.Cmp (Eq, lower_operand bld a, Ir.Cint 0)
  | Call (name, args) ->
    let ops = List.map (lower_operand bld) args in
    Ir.Call (name, ops)
  | And _ | Or _ ->
    (* Materialise the 0/1 result through control flow. *)
    let t = fresh_temp bld Tint in
    let join = new_block bld in
    let yes = new_block bld in
    let no = new_block bld in
    lower_cond bld e yes no;
    bld.cur <- yes;
    emit bld (Ir.Def (t, Ir.Op (Ir.Cint 1)));
    seal bld (Ir.Jump join);
    bld.cur <- no;
    emit bld (Ir.Def (t, Ir.Op (Ir.Cint 0)));
    seal bld (Ir.Jump join);
    bld.cur <- join;
    Ir.Op (Ir.Ovar t)

and lower_operand bld (e : expr) : Ir.operand =
  match lower_rhs bld e with
  | Ir.Op op -> op
  | rhs ->
    let t = fresh_temp bld (ty_of bld e) in
    emit bld (Ir.Def (t, rhs));
    Ir.Ovar t

(** Lower [e] as a condition transferring control to [tdst]/[fdst]. *)
and lower_cond bld (e : expr) (tdst : int) (fdst : int) : unit =
  match e with
  | And (a, b) ->
    let mid = new_block bld in
    lower_cond bld a mid fdst;
    bld.cur <- mid;
    lower_cond bld b tdst fdst
  | Or (a, b) ->
    let mid = new_block bld in
    lower_cond bld a tdst mid;
    bld.cur <- mid;
    lower_cond bld b tdst fdst
  | Unop (Lnot, a) -> lower_cond bld a fdst tdst
  | Rel (op, a, b) ->
    let oa = lower_operand bld a in
    let ob = lower_operand bld b in
    if tdst = fdst then seal bld (Ir.Jump tdst)
    else seal bld (Ir.Br { rel = op; ba = oa; bb = ob; tdst; fdst })
  | Int n -> seal bld (Ir.Jump (if n <> 0 then tdst else fdst))
  | e ->
    let op = lower_operand bld e in
    if tdst = fdst then seal bld (Ir.Jump tdst)
    else seal bld (Ir.Br { rel = Ne; ba = op; bb = Ir.Cint 0; tdst; fdst })

let lower_assign bld lv (rhs : Ir.rhs) =
  match lv with
  | Lvar name -> (
    match lookup_scalar bld name with
    | Some v -> emit bld (Ir.Def (v, rhs))
    | None ->
      if Hashtbl.mem bld.global_scalars name then begin
        let op =
          match rhs with
          | Ir.Op op -> op
          | rhs ->
            let t = fresh_temp bld (Hashtbl.find bld.global_scalars name) in
            emit bld (Ir.Def (t, rhs));
            Ir.Ovar t
        in
        emit bld (Ir.Store (name, Ir.Cint 0, op))
      end
      else raise (Lower_error ("unknown variable " ^ name)))
  | Lindex (name, idx) ->
    let oidx = lower_operand bld idx in
    let op =
      match rhs with
      | Ir.Op op -> op
      | rhs ->
        let info =
          match lookup_array bld name with
          | Some info -> info
          | None -> raise (Lower_error ("unknown array " ^ name))
        in
        let t = fresh_temp bld info.elem_ty in
        emit bld (Ir.Def (t, rhs));
        Ir.Ovar t
    in
    emit bld (Ir.Store (name, oidx, op))

let rec lower_stmt bld (s : stmt) : unit =
  match s.sdesc with
  | Sdecl (ty, name, Iscalar init) ->
    let v = declare_scalar bld name ty in
    let rhs =
      match init with
      | Some e -> lower_rhs bld e
      | None ->
        (* MiniC defines uninitialised scalars as zero. *)
        Ir.Op (if ty = Tfloat then Ir.Cfloat 0.0 else Ir.Cint 0)
    in
    emit bld (Ir.Def (v, rhs))
  | Sdecl (_, _, Iarray _) -> ()  (* arrays are hoisted during the pre-scan *)
  | Sassign (lv, e) -> lower_assign bld lv (lower_rhs bld e)
  | Sif (cond, then_blk, else_blk) ->
    let bthen = new_block bld in
    let join = new_block bld in
    let belse = match else_blk with Some _ -> new_block bld | None -> join in
    lower_cond bld cond bthen belse;
    bld.cur <- bthen;
    in_new_scope bld (fun () -> List.iter (lower_stmt bld) then_blk);
    seal bld (Ir.Jump join);
    (match else_blk with
    | Some blk ->
      bld.cur <- belse;
      in_new_scope bld (fun () -> List.iter (lower_stmt bld) blk);
      seal bld (Ir.Jump join)
    | None -> ());
    bld.cur <- join
  | Swhile (cond, body) ->
    let header = new_block bld in
    let bbody = new_block bld in
    let exit = new_block bld in
    seal bld (Ir.Jump header);
    bld.cur <- header;
    lower_cond bld cond bbody exit;
    bld.cur <- bbody;
    bld.break_targets <- exit :: bld.break_targets;
    bld.continue_targets <- header :: bld.continue_targets;
    in_new_scope bld (fun () -> List.iter (lower_stmt bld) body);
    bld.break_targets <- List.tl bld.break_targets;
    bld.continue_targets <- List.tl bld.continue_targets;
    seal bld (Ir.Jump header);
    bld.cur <- exit
  | Sfor (init, cond, step, body) ->
    in_new_scope bld (fun () ->
        Option.iter (lower_stmt bld) init;
        let header = new_block bld in
        let bbody = new_block bld in
        let bstep = new_block bld in
        let exit = new_block bld in
        seal bld (Ir.Jump header);
        bld.cur <- header;
        (match cond with
        | Some c -> lower_cond bld c bbody exit
        | None -> seal bld (Ir.Jump bbody));
        bld.cur <- bbody;
        bld.break_targets <- exit :: bld.break_targets;
        bld.continue_targets <- bstep :: bld.continue_targets;
        in_new_scope bld (fun () -> List.iter (lower_stmt bld) body);
        bld.break_targets <- List.tl bld.break_targets;
        bld.continue_targets <- List.tl bld.continue_targets;
        seal bld (Ir.Jump bstep);
        bld.cur <- bstep;
        Option.iter (lower_stmt bld) step;
        seal bld (Ir.Jump header);
        bld.cur <- exit)
  | Sreturn None -> seal bld (Ir.Ret None)
  | Sreturn (Some e) ->
    let op = lower_operand bld e in
    seal bld (Ir.Ret (Some op))
  | Sbreak -> (
    match bld.break_targets with
    | target :: _ -> seal bld (Ir.Jump target)
    | [] -> raise (Lower_error "break outside loop"))
  | Scontinue -> (
    match bld.continue_targets with
    | target :: _ -> seal bld (Ir.Jump target)
    | [] -> raise (Lower_error "continue outside loop"))
  | Sexpr e -> (
    match lower_rhs bld e with
    | Ir.Op _ -> ()  (* pure, no effect *)
    | Ir.Call (name, ops) ->
      let ret = match Hashtbl.find_opt bld.fsigs name with Some s -> s.fret | None -> Tint in
      let t = fresh_temp bld (if ret = Tvoid then Tint else ret) in
      emit bld (Ir.Def (t, Ir.Call (name, ops)))
    | rhs ->
      let t = fresh_temp bld Tint in
      emit bld (Ir.Def (t, rhs)))

(* Collect every array declaration in a function body: arrays are hoisted to
   function scope in the IR (storage, not a binding). *)
let rec collect_arrays stmts (arrays : (string * ty * int) list ref) =
  List.iter
    (fun s ->
      match s.sdesc with
      | Sdecl (_, _, Iscalar _) -> ()
      | Sdecl (ty, name, Iarray size) ->
        if not (List.exists (fun (n, _, _) -> String.equal n name) !arrays) then
          arrays := (name, ty, size) :: !arrays
      | Sif (_, a, b) ->
        collect_arrays a arrays;
        Option.iter (fun blk -> collect_arrays blk arrays) b
      | Swhile (_, body) -> collect_arrays body arrays
      | Sfor (init, _, step, body) ->
        Option.iter (fun st -> collect_arrays [ st ] arrays) init;
        Option.iter (fun st -> collect_arrays [ st ] arrays) step;
        collect_arrays body arrays
      | Sassign _ | Sreturn _ | Sbreak | Scontinue | Sexpr _ -> ())
    stmts

let lower_fn ~fsigs ~global_scalars ~global_arrays (f : func) : Ir.fn =
  let array_decls = ref [] in
  collect_arrays f.body array_decls;
  let fn_rec =
    {
      Ir.fname = f.fname;
      ret_ty = f.fty;
      params = [];
      blocks = [||];
      nvars = 0;
      local_arrays =
        List.rev_map
          (fun (aname, elem_ty, size) -> { Ir.aname; elem_ty; size })
          !array_decls;
    }
  in
  let bld =
    {
      blocks = Hashtbl.create 32;
      nblocks = 0;
      cur = 0;
      fn_rec;
      scopes = [ Hashtbl.create 32 ];
      local_arrays = Hashtbl.create 8;
      global_scalars;
      global_arrays;
      fsigs;
      break_targets = [];
      continue_targets = [];
    }
  in
  List.iter
    (fun a -> Hashtbl.add bld.local_arrays a.Ir.aname a)
    fn_rec.local_arrays;
  let entry = new_block bld in
  assert (entry = Ir.entry_bid);
  bld.cur <- entry;
  (* Parameters. *)
  let params =
    List.map
      (fun p -> Ir.fresh_var fn_rec ~base:p.pname ~version:(-1) ~ty:p.pty)
      f.params
  in
  List.iter
    (fun (v : Var.t) ->
      match bld.scopes with
      | scope :: _ -> Hashtbl.replace scope v.base v
      | [] -> assert false)
    params;
  List.iter (lower_stmt bld) f.body;
  (* Implicit return at fall-off-the-end. *)
  (match f.fty with
  | Tvoid -> seal bld (Ir.Ret None)
  | Tint -> seal bld (Ir.Ret (Some (Ir.Cint 0)))
  | Tfloat -> seal bld (Ir.Ret (Some (Ir.Cfloat 0.0))));
  (* Materialise blocks; unsealed blocks are unreachable leftovers. *)
  let blocks =
    Array.init bld.nblocks (fun bid ->
        let blk = Hashtbl.find bld.blocks bid in
        let term = match blk.bterm with Some t -> t | None -> Ir.Ret None in
        { Ir.bid; instrs = List.rev blk.rinstrs; term; preds = [] })
  in
  let fn = { fn_rec with Ir.params; blocks } in
  Ir.recompute_preds fn;
  fn

(* --- CFG cleanup: drop unreachable blocks, renumber densely --- *)

let remap_term map = function
  | Ir.Jump d -> Ir.Jump map.(d)
  | Ir.Br b -> Ir.Br { b with tdst = map.(b.tdst); fdst = map.(b.fdst) }
  | Ir.Ret _ as t -> t

let remap_instr map = function
  | Ir.Def (v, Ir.Phi args) -> (
    (* drop arguments arriving from unreachable predecessors *)
    let args =
      List.filter_map
        (fun (pred, op) -> if map.(pred) >= 0 then Some (map.(pred), op) else None)
        args
    in
    match args with
    | [ (_, single) ] -> Ir.Def (v, Ir.Op single)
    | args -> Ir.Def (v, Ir.Phi args))
  | i -> i

let cleanup (fn : Ir.fn) : Ir.fn =
  let n = Ir.num_blocks fn in
  let reachable = Array.make n false in
  let rec visit bid =
    if not reachable.(bid) then begin
      reachable.(bid) <- true;
      List.iter visit (Ir.successors (Ir.block fn bid).term)
    end
  in
  visit Ir.entry_bid;
  let map = Array.make n (-1) in
  let count = ref 0 in
  for bid = 0 to n - 1 do
    if reachable.(bid) then begin
      map.(bid) <- !count;
      incr count
    end
  done;
  let blocks = Array.make !count (Ir.block fn Ir.entry_bid) in
  for bid = 0 to n - 1 do
    if reachable.(bid) then begin
      let b = Ir.block fn bid in
      blocks.(map.(bid)) <-
        {
          Ir.bid = map.(bid);
          instrs = List.map (remap_instr map) b.instrs;
          term = remap_term map b.term;
          preds = [];
        }
    end
  done;
  let fn = { fn with Ir.blocks } in
  Ir.recompute_preds fn;
  fn

(* --- Critical edge splitting ---
   Ensures each successor of a conditional branch has exactly one
   predecessor, so the SSA pass has a place to put edge assertions. *)

let split_critical_edges (fn : Ir.fn) : Ir.fn =
  let extra = ref [] in
  let next = ref (Ir.num_blocks fn) in
  let split_target dst =
    let mid = !next in
    incr next;
    extra := (mid, dst) :: !extra;
    mid
  in
  Ir.iter_blocks fn (fun b ->
      match b.term with
      | Ir.Br br ->
        let tdst =
          if List.length (Ir.block fn br.tdst).preds > 1 then split_target br.tdst
          else br.tdst
        in
        let fdst =
          if List.length (Ir.block fn br.fdst).preds > 1 then split_target br.fdst
          else br.fdst
        in
        if tdst <> br.tdst || fdst <> br.fdst then b.term <- Ir.Br { br with tdst; fdst }
      | Ir.Jump _ | Ir.Ret _ -> ());
  let extra_blocks =
    List.rev_map
      (fun (bid, dst) -> { Ir.bid; instrs = []; term = Ir.Jump dst; preds = [] })
      !extra
  in
  let blocks = Array.append fn.blocks (Array.of_list (List.rev extra_blocks)) in
  Array.sort (fun (a : Ir.block) b -> Int.compare a.bid b.bid) blocks;
  let fn = { fn with Ir.blocks } in
  Ir.recompute_preds fn;
  fn

(** Lower a type-checked program to a canonical CFG program (cleaned, with
    critical edges split). SSA conversion is a separate pass ({!Ssa}). *)
let program (p : Vrp_lang.Ast.program) : Ir.program =
  let fsigs = Hashtbl.create 16 in
  List.iter
    (fun (name, (s : Vrp_lang.Typecheck.fsig)) ->
      Hashtbl.replace fsigs name { fret = s.ret })
    Vrp_lang.Typecheck.builtins;
  List.iter (fun f -> Hashtbl.replace fsigs f.fname { fret = f.fty }) p.funcs;
  let global_scalars = Hashtbl.create 8 in
  let global_arrays = Hashtbl.create 8 in
  let global_infos =
    List.map
      (fun g ->
        match g.gsize with
        | None ->
          Hashtbl.replace global_scalars g.gname g.gty;
          { Ir.aname = g.gname; elem_ty = g.gty; size = 1 }
        | Some size ->
          let info = { Ir.aname = g.gname; elem_ty = g.gty; size } in
          Hashtbl.replace global_arrays g.gname info;
          info)
      p.globals
  in
  let fns =
    List.map
      (fun f ->
        let fn = lower_fn ~fsigs ~global_scalars ~global_arrays f in
        split_critical_edges (cleanup fn))
      p.funcs
  in
  { Ir.fns; global_arrays = global_infos }
