(** Graphviz (DOT) export of control flow graphs, optionally annotated with
    branch probabilities and per-block notes. *)

val fn_to_dot :
  ?branch_prob:(int -> float option) -> ?block_note:(int -> string option) -> Ir.fn -> string
