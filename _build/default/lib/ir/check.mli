(** IR well-formedness and SSA invariant checking (single assignment,
    φ-arity = predecessors, uses dominated by definitions, branch targets
    single-predecessor). *)

exception Violation of string

(** Structural checks only (ids dense, targets in range, preds caches). *)
val check_structure : Ir.fn -> unit

(** Full SSA validation.
    @raise Violation describing the first broken invariant. *)
val check_ssa_fn : Ir.fn -> unit

val check_ssa_program : Ir.program -> unit
