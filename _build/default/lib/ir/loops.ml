(** Natural-loop detection.

    Back edges are edges [latch -> header] where the header dominates the
    latch; the natural loop of a back edge is the set of nodes that reach the
    latch without passing through the header. Loop structure feeds the
    Ball–Larus heuristics (loop branch / loop exit / loop header) and the
    90/50 rule's notion of "backward branch", and VRP's derivation step uses
    [is_back_edge] to spot loop-carried φ-functions (paper §3.3 step 4). *)

module IntSet = Set.Make (Int)

type loop = {
  header : int;
  body : IntSet.t;  (** includes the header *)
  latches : int list;
  mutable parent : int option;  (** index of enclosing loop in [loops] *)
  mutable depth : int;
}

type t = {
  loops : loop array;
  loop_of_block : int option array;  (** innermost loop index per block *)
  back_edges : (int * int) list;  (** (latch, header) *)
  dom : Dom.t;
}

let natural_loop fn ~header ~latch =
  let body = ref (IntSet.of_list [ header; latch ]) in
  let rec pull node =
    (Ir.block fn node).preds
    |> List.iter (fun p ->
           if not (IntSet.mem p !body) then begin
             body := IntSet.add p !body;
             pull p
           end)
  in
  if latch <> header then pull latch;
  !body

let compute (fn : Ir.fn) : t =
  let dom = Dom.compute fn in
  let back_edges = ref [] in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun succ ->
          if Dom.dominates dom succ b.bid then back_edges := (b.bid, succ) :: !back_edges)
        (Ir.successors b.term));
  let back_edges = List.rev !back_edges in
  (* Merge the natural loops of back edges sharing a header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let body = natural_loop fn ~header ~latch in
      match Hashtbl.find_opt by_header header with
      | None -> Hashtbl.replace by_header header (body, [ latch ])
      | Some (prev, latches) ->
        Hashtbl.replace by_header header (IntSet.union prev body, latch :: latches))
    back_edges;
  let loops =
    Hashtbl.fold
      (fun header (body, latches) acc ->
        { header; body; latches; parent = None; depth = 1 } :: acc)
      by_header []
    (* Sort by body size so that inner (smaller) loops come first. *)
    |> List.sort (fun a b -> Int.compare (IntSet.cardinal a.body) (IntSet.cardinal b.body))
    |> Array.of_list
  in
  (* Nesting: the parent of loop i is the smallest loop properly containing it. *)
  Array.iteri
    (fun i li ->
      let rec find j =
        if j >= Array.length loops then None
        else if j <> i && IntSet.subset li.body loops.(j).body
                && not (IntSet.equal li.body loops.(j).body) then Some j
        else find (j + 1)
      in
      li.parent <- find (i + 1))
    loops;
  Array.iter
    (fun l ->
      let rec depth_of l =
        match l.parent with None -> 1 | Some p -> 1 + depth_of loops.(p)
      in
      l.depth <- depth_of l)
    loops;
  let loop_of_block = Array.make (Ir.num_blocks fn) None in
  (* Iterate outer->inner so the innermost loop wins. *)
  for i = Array.length loops - 1 downto 0 do
    IntSet.iter (fun bid -> loop_of_block.(bid) <- Some i) loops.(i).body
  done;
  { loops = Array.of_list (Array.to_list loops); loop_of_block; back_edges; dom }

let is_back_edge t ~src ~dst = List.mem (src, dst) t.back_edges

let in_loop t bid = t.loop_of_block.(bid) <> None

let loop_depth t bid =
  match t.loop_of_block.(bid) with None -> 0 | Some i -> t.loops.(i).depth

let is_loop_header t bid = Array.exists (fun l -> l.header = bid) t.loops

(** Is [src -> dst] an exit edge of the innermost loop containing [src]? *)
let is_loop_exit_edge t ~src ~dst =
  match t.loop_of_block.(src) with
  | None -> false
  | Some i -> not (IntSet.mem dst t.loops.(i).body)

(** Innermost loop containing [bid], if any. *)
let innermost t bid = Option.map (fun i -> t.loops.(i)) t.loop_of_block.(bid)
