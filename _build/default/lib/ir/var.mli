(** IR variables (virtual registers): a source [base] name, an SSA [version]
    ([-1] before SSA renaming) and a per-function unique [id], which is the
    identity. *)

type t = { id : int; base : string; version : int; ty : Vrp_lang.Ast.ty }

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** ["base.version"], or just ["base"] before SSA. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
