(** Natural-loop detection: back edges (edges to a dominator), loop bodies,
    nesting. Feeds the Ball–Larus heuristics, the 90/50 rule and the VRP
    derivation step. *)

module IntSet : Set.S with type elt = int

type loop = {
  header : int;
  body : IntSet.t;  (** includes the header *)
  latches : int list;
  mutable parent : int option;  (** index of enclosing loop in [loops] *)
  mutable depth : int;  (** 1 = outermost *)
}

type t = {
  loops : loop array;
  loop_of_block : int option array;  (** innermost loop index per block *)
  back_edges : (int * int) list;  (** (latch, header) *)
  dom : Dom.t;
}

val compute : Ir.fn -> t
val is_back_edge : t -> src:int -> dst:int -> bool
val in_loop : t -> int -> bool
val loop_depth : t -> int -> int
val is_loop_header : t -> int -> bool

(** Does [src -> dst] leave the innermost loop containing [src]? *)
val is_loop_exit_edge : t -> src:int -> dst:int -> bool

(** Innermost loop containing a block, if any. *)
val innermost : t -> int -> loop option
