(** SSA construction (Cytron et al.) with the paper's branch assertions.

    The pass has three steps:

    1. {b assertion insertion} (paper §3.8): after a conditional branch
       [a rel b], the unique successor on the true edge gets
       [a' = assert(a rel b)] (and [b' = assert(b rel' a)] when [b] is a
       variable); the false edge gets the negated predicate. Critical edges
       were split during construction, so each successor of a branch has one
       predecessor and the assertion narrows exactly that path.
    2. {b φ placement} on iterated dominance frontiers of each variable's
       definition sites.
    3. {b renaming} by a dominator-tree walk. A use whose renaming stack is
       empty denotes a path on which the variable was never assigned; MiniC
       defines such reads as zero, so the use is replaced by the constant 0
       (matching the interpreter's semantics exactly).

    The result is the canonical factored single-assignment form the paper's
    propagation runs on. *)

open Vrp_lang.Ast

type info = {
  fn : Ir.fn;
  dom : Dom.t;
  orig_of : (int, Var.t) Hashtbl.t;  (** SSA variable id -> pre-SSA variable *)
}

(* --- Step 1: assertion insertion --- *)

let insert_assertions (fn : Ir.fn) =
  Ir.iter_blocks fn (fun b ->
      match b.term with
      | Ir.Br { rel; ba; bb; tdst; fdst } when tdst <> fdst ->
        let add_asserts dst rel =
          let dblk = Ir.block fn dst in
          if List.length dblk.preds = 1 then begin
            let asserts = ref [] in
            (match ba with
            | Ir.Ovar va ->
              asserts :=
                Ir.Def (va, Ir.Assertion { parent = va; arel = rel; abound = bb })
                :: !asserts
            | Ir.Cint _ | Ir.Cfloat _ -> ());
            (match bb with
            | Ir.Ovar vb ->
              asserts :=
                Ir.Def
                  (vb, Ir.Assertion { parent = vb; arel = relop_swap rel; abound = ba })
                :: !asserts
            | Ir.Cint _ | Ir.Cfloat _ -> ());
            dblk.instrs <- List.rev_append !asserts dblk.instrs
          end
        in
        add_asserts tdst rel;
        add_asserts fdst (relop_negate rel)
      | Ir.Br _ | Ir.Jump _ | Ir.Ret _ -> ())

(* --- Step 2: φ placement --- *)

let place_phis (fn : Ir.fn) (dom : Dom.t) =
  let df = Dom.frontiers fn dom in
  (* Definition sites per pre-SSA variable. *)
  let defsites : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let vars : (int, Var.t) Hashtbl.t = Hashtbl.create 64 in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun i ->
          match Ir.instr_def i with
          | Some v ->
            Hashtbl.replace vars v.Var.id v;
            let sites = Option.value ~default:[] (Hashtbl.find_opt defsites v.Var.id) in
            Hashtbl.replace defsites v.Var.id (b.bid :: sites)
          | None -> ())
        b.instrs);
  List.iter
    (fun (v : Var.t) ->
      Hashtbl.replace vars v.Var.id v;
      let sites = Option.value ~default:[] (Hashtbl.find_opt defsites v.Var.id) in
      Hashtbl.replace defsites v.Var.id (Ir.entry_bid :: sites))
    fn.params;
  Hashtbl.iter
    (fun vid sites ->
      let v = Hashtbl.find vars vid in
      let has_phi = Hashtbl.create 8 in
      let worklist = Queue.create () in
      List.iter (fun s -> Queue.add s worklist) sites;
      while not (Queue.is_empty worklist) do
        let site = Queue.pop worklist in
        List.iter
          (fun join ->
            if not (Hashtbl.mem has_phi join) then begin
              Hashtbl.replace has_phi join ();
              let jblk = Ir.block fn join in
              let args = List.map (fun pred -> (pred, Ir.Ovar v)) jblk.preds in
              jblk.instrs <- Ir.Def (v, Ir.Phi args) :: jblk.instrs;
              Queue.add join worklist
            end)
          df.(site)
      done)
    defsites

(* --- Step 3: renaming --- *)

let rename (fn : Ir.fn) (dom : Dom.t) (orig_of : (int, Var.t) Hashtbl.t) =
  let stacks : (int, Var.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let versions : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let stack_of (v : Var.t) =
    match Hashtbl.find_opt stacks v.Var.id with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks v.Var.id s;
      s
  in
  let zero_operand (v : Var.t) =
    match v.Var.ty with Tfloat -> Ir.Cfloat 0.0 | Tint | Tvoid -> Ir.Cint 0
  in
  let current_operand (v : Var.t) =
    match !(stack_of v) with
    | top :: _ -> Ir.Ovar top
    | [] -> zero_operand v  (* never-assigned path: reads as zero *)
  in
  let current_var_exn (v : Var.t) =
    match !(stack_of v) with top :: _ -> top | [] -> v
  in
  let rewrite_operand = function
    | Ir.Ovar v -> current_operand v
    | (Ir.Cint _ | Ir.Cfloat _) as c -> c
  in
  let new_version (v : Var.t) =
    let orig = match Hashtbl.find_opt orig_of v.Var.id with Some o -> o | None -> v in
    let n = Option.value ~default:0 (Hashtbl.find_opt versions orig.Var.id) in
    Hashtbl.replace versions orig.Var.id (n + 1);
    let nv = Ir.fresh_var fn ~base:orig.Var.base ~version:n ~ty:orig.Var.ty in
    Hashtbl.replace orig_of nv.Var.id orig;
    let s = stack_of orig in
    s := nv :: !s;
    nv
  in
  (* Parameters are versioned at entry. *)
  let new_params = List.map new_version fn.params in
  let rec walk bid =
    let blk = Ir.block fn bid in
    let pushed = ref [] in
    let instrs =
      List.map
        (fun instr ->
          match instr with
          | Ir.Def (v, Ir.Phi args) ->
            let nv = new_version v in
            pushed := Hashtbl.find orig_of nv.Var.id :: !pushed;
            Ir.Def (nv, Ir.Phi args)  (* args are filled in from predecessors *)
          | Ir.Def (v, Ir.Assertion { parent; arel; abound }) ->
            let nparent = current_var_exn parent in
            let nabound = rewrite_operand abound in
            let nv = new_version v in
            pushed := Hashtbl.find orig_of nv.Var.id :: !pushed;
            Ir.Def (nv, Ir.Assertion { parent = nparent; arel; abound = nabound })
          | Ir.Def (v, rhs) ->
            let rhs =
              match rhs with
              | Ir.Op a -> Ir.Op (rewrite_operand a)
              | Ir.Binop (op, a, b) -> Ir.Binop (op, rewrite_operand a, rewrite_operand b)
              | Ir.Unop (op, a) -> Ir.Unop (op, rewrite_operand a)
              | Ir.Cmp (op, a, b) -> Ir.Cmp (op, rewrite_operand a, rewrite_operand b)
              | Ir.Load (arr, idx) -> Ir.Load (arr, rewrite_operand idx)
              | Ir.Call (name, args) -> Ir.Call (name, List.map rewrite_operand args)
              | Ir.Phi _ | Ir.Assertion _ -> assert false
            in
            let nv = new_version v in
            pushed := Hashtbl.find orig_of nv.Var.id :: !pushed;
            Ir.Def (nv, rhs)
          | Ir.Store (arr, idx, v) ->
            Ir.Store (arr, rewrite_operand idx, rewrite_operand v))
        blk.instrs
    in
    blk.instrs <- instrs;
    (blk.term <-
       (match blk.term with
       | Ir.Jump _ as t -> t
       | Ir.Br br -> Ir.Br { br with ba = rewrite_operand br.ba; bb = rewrite_operand br.bb }
       | Ir.Ret None -> Ir.Ret None
       | Ir.Ret (Some op) -> Ir.Ret (Some (rewrite_operand op))));
    (* Fill φ arguments in successors for the edge [bid -> succ]. *)
    List.iter
      (fun succ ->
        let sblk = Ir.block fn succ in
        sblk.instrs <-
          List.map
            (fun instr ->
              match instr with
              | Ir.Def (pv, Ir.Phi args) ->
                let orig =
                  match Hashtbl.find_opt orig_of pv.Var.id with Some o -> o | None -> pv
                in
                let args =
                  List.map
                    (fun (pred, arg) ->
                      if pred = bid then (pred, current_operand orig) else (pred, arg))
                    args
                in
                Ir.Def (pv, Ir.Phi args)
              | instr -> instr)
            sblk.instrs)
      (Ir.successors blk.term);
    (* Recurse into dominator-tree children. *)
    List.iter walk dom.Dom.children.(bid);
    (* Pop what this block pushed. *)
    List.iter
      (fun (orig : Var.t) ->
        let s = stack_of orig in
        match !s with _ :: rest -> s := rest | [] -> assert false)
      !pushed
  in
  walk Ir.entry_bid;
  new_params

(** Convert [fn] to SSA in place (assertions + φs + renaming) and return the
    analysis info. *)
let transform (fn : Ir.fn) : info =
  insert_assertions fn;
  let dom = Dom.compute fn in
  place_phis fn dom;
  let orig_of = Hashtbl.create 64 in
  let new_params = rename fn dom orig_of in
  let fn = { fn with Ir.params = new_params } in
  { fn; dom; orig_of }

(** Convert every function of [p]; returns the SSA program plus per-function
    info, keyed by function name. *)
let transform_program (p : Ir.program) : Ir.program * (string, info) Hashtbl.t =
  let infos = Hashtbl.create 16 in
  let fns =
    List.map
      (fun fn ->
        let info = transform fn in
        Hashtbl.replace infos fn.Ir.fname info;
        info.fn)
      p.fns
  in
  ({ p with Ir.fns }, infos)
