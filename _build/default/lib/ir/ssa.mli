(** SSA construction (Cytron et al.) with the paper's branch assertions
    (§3.8): φ placement on iterated dominance frontiers, renaming by a
    dominator-tree walk, and [x' = assert(x rel k)] narrowing copies on both
    successors of every conditional branch. A use whose renaming stack is
    empty denotes a never-assigned path and becomes the constant 0 (MiniC's
    defined semantics). *)

type info = {
  fn : Ir.fn;
  dom : Dom.t;
  orig_of : (int, Var.t) Hashtbl.t;  (** SSA variable id -> pre-SSA variable *)
}

(** Convert one function in place; returns the analysis info (with the
    re-versioned parameter list). *)
val transform : Ir.fn -> info

(** Convert every function; infos are keyed by function name. *)
val transform_program : Ir.program -> Ir.program * (string, info) Hashtbl.t
