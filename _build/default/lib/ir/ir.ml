(** The mid-level intermediate representation.

    A function is a control flow graph of basic blocks holding three-address
    instructions. After construction the CFG is cleaned (unreachable blocks
    removed), critical edges are split, and SSA conversion adds φ-functions
    and the paper's branch {e assertions} (§3.8: "assertions such as this one
    are placed in the graph after conditional branches to assert specific
    properties of a variable"). All analyses and the reference interpreter
    consume this one canonical SSA CFG, so branch identities line up across
    predictors and the profiler. *)

type operand = Cint of int | Cfloat of float | Ovar of Var.t

type unop = Neg | Bnot

(** Right-hand sides of definitions. *)
type rhs =
  | Op of operand  (** copy / constant *)
  | Binop of Vrp_lang.Ast.binop * operand * operand
  | Unop of unop * operand
  | Cmp of Vrp_lang.Ast.relop * operand * operand  (** materialised 0/1 *)
  | Load of string * operand  (** array element read *)
  | Call of string * operand list
  | Phi of (int * operand) list  (** (predecessor block id, argument) *)
  | Assertion of assertion
      (** SSA-renamed copy of [parent] carrying the predicate established by
          the conditional branch guarding this block *)

and assertion = { parent : Var.t; arel : Vrp_lang.Ast.relop; abound : operand }

type instr =
  | Def of Var.t * rhs
  | Store of string * operand * operand  (** array, index, value *)

type term =
  | Jump of int
  | Br of branch
  | Ret of operand option

and branch = {
  rel : Vrp_lang.Ast.relop;
  ba : operand;
  bb : operand;
  tdst : int;  (** destination when [ba rel bb] holds *)
  fdst : int;
}

type block = {
  bid : int;
  mutable instrs : instr list;
  mutable term : term;
  mutable preds : int list;  (** cached; maintain via [recompute_preds] *)
}

type array_info = { aname : string; elem_ty : Vrp_lang.Ast.ty; size : int }

type fn = {
  fname : string;
  ret_ty : Vrp_lang.Ast.ty;
  params : Var.t list;
  mutable blocks : block array;  (** indexed by block id; entry is block 0 *)
  mutable nvars : int;
  local_arrays : array_info list;
}

type program = {
  fns : fn list;
  global_arrays : array_info list;
      (** includes scalar globals, modelled as size-1 arrays *)
}

let entry_bid = 0

let successors = function
  | Jump d -> [ d ]
  | Br { tdst; fdst; _ } -> [ tdst; fdst ]
  | Ret _ -> []

let block f bid = f.blocks.(bid)
let num_blocks f = Array.length f.blocks

let iter_blocks f g = Array.iter g f.blocks

let recompute_preds (f : fn) =
  iter_blocks f (fun b -> b.preds <- []);
  iter_blocks f (fun b ->
      List.iter
        (fun s -> f.blocks.(s).preds <- b.bid :: f.blocks.(s).preds)
        (successors b.term));
  iter_blocks f (fun b -> b.preds <- List.rev b.preds)

let fresh_var (f : fn) ~base ~version ~ty : Var.t =
  let id = f.nvars in
  f.nvars <- f.nvars + 1;
  { Var.id; base; version; ty }

let find_fn program name = List.find_opt (fun f -> String.equal f.fname name) program.fns

let find_array (program : program) (f : fn) name =
  match List.find_opt (fun a -> String.equal a.aname name) f.local_arrays with
  | Some a -> Some a
  | None -> List.find_opt (fun a -> String.equal a.aname name) program.global_arrays

(* --- Operand/instruction traversal helpers --- *)

let operand_var = function Ovar v -> Some v | Cint _ | Cfloat _ -> None

let rhs_operands = function
  | Op a | Unop (_, a) | Load (_, a) -> [ a ]
  | Binop (_, a, b) | Cmp (_, a, b) -> [ a; b ]
  | Call (_, args) -> args
  | Phi args -> List.map snd args
  | Assertion { parent; abound; _ } -> [ Ovar parent; abound ]

let instr_uses = function
  | Def (_, rhs) -> List.filter_map operand_var (rhs_operands rhs)
  | Store (_, idx, v) -> List.filter_map operand_var [ idx; v ]

let instr_def = function Def (v, _) -> Some v | Store _ -> None

let term_uses = function
  | Jump _ -> []
  | Br { ba; bb; _ } -> List.filter_map operand_var [ ba; bb ]
  | Ret (Some op) -> Option.to_list (operand_var op)
  | Ret None -> []

(** Count of instructions plus terminators: the "number of instructions"
    metric of the paper's Figures 5 and 6. *)
let fn_size (f : fn) =
  Array.fold_left (fun acc b -> acc + List.length b.instrs + 1) 0 f.blocks

let program_size (p : program) = List.fold_left (fun acc f -> acc + fn_size f) 0 p.fns

(* --- Printing --- *)

let operand_to_string = function
  | Cint n -> string_of_int n
  | Cfloat f -> Printf.sprintf "%g" f
  | Ovar v -> Var.to_string v

let rhs_to_string = function
  | Op a -> operand_to_string a
  | Binop (op, a, b) ->
    Printf.sprintf "%s %s %s" (operand_to_string a)
      (Vrp_lang.Ast.binop_to_string op)
      (operand_to_string b)
  | Unop (Neg, a) -> Printf.sprintf "-%s" (operand_to_string a)
  | Unop (Bnot, a) -> Printf.sprintf "~%s" (operand_to_string a)
  | Cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (operand_to_string a)
      (Vrp_lang.Ast.relop_to_string op)
      (operand_to_string b)
  | Load (arr, idx) -> Printf.sprintf "%s[%s]" arr (operand_to_string idx)
  | Call (fn, args) ->
    Printf.sprintf "%s(%s)" fn (String.concat ", " (List.map operand_to_string args))
  | Phi args ->
    Printf.sprintf "phi(%s)"
      (String.concat ", "
         (List.map
            (fun (pred, op) -> Printf.sprintf "B%d: %s" pred (operand_to_string op))
            args))
  | Assertion { parent; arel; abound } ->
    Printf.sprintf "assert(%s %s %s)" (Var.to_string parent)
      (Vrp_lang.Ast.relop_to_string arel)
      (operand_to_string abound)

let instr_to_string = function
  | Def (v, rhs) -> Printf.sprintf "%s = %s" (Var.to_string v) (rhs_to_string rhs)
  | Store (arr, idx, v) ->
    Printf.sprintf "%s[%s] = %s" arr (operand_to_string idx) (operand_to_string v)

let term_to_string = function
  | Jump d -> Printf.sprintf "jump B%d" d
  | Br { rel; ba; bb; tdst; fdst } ->
    Printf.sprintf "br (%s %s %s) B%d B%d" (operand_to_string ba)
      (Vrp_lang.Ast.relop_to_string rel)
      (operand_to_string bb) tdst fdst
  | Ret None -> "ret"
  | Ret (Some op) -> Printf.sprintf "ret %s" (operand_to_string op)

let fn_to_string (f : fn) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "function %s(%s):\n" f.fname
       (String.concat ", " (List.map Var.to_string f.params)));
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "  array %s[%d]\n" a.aname a.size))
    f.local_arrays;
  iter_blocks f (fun b ->
      Buffer.add_string buf
        (Printf.sprintf "B%d:  ; preds: %s\n" b.bid
           (String.concat " " (List.map (Printf.sprintf "B%d") b.preds)));
      List.iter
        (fun i -> Buffer.add_string buf (Printf.sprintf "  %s\n" (instr_to_string i)))
        b.instrs;
      Buffer.add_string buf (Printf.sprintf "  %s\n" (term_to_string b.term)));
  Buffer.contents buf

let program_to_string (p : program) =
  String.concat "\n" (List.map fn_to_string p.fns)
