(** Dominator trees and dominance frontiers.

    Implementation of Cooper, Harvey & Kennedy, "A Simple, Fast Dominance
    Algorithm". The module is graph-generic so the same code computes
    postdominators on the reversed CFG (needed by the Ball–Larus
    heuristics). *)

type t = {
  idom : int array;  (** immediate dominator; [-1] for the root / unreachable *)
  rpo_index : int array;  (** position in reverse postorder; [-1] if unreachable *)
  children : int list array;  (** dominator-tree children *)
  root : int;
}

(** Reverse postorder of the reachable nodes from [root]. *)
let reverse_postorder ~nblocks ~succs ~root =
  let visited = Array.make nblocks false in
  let order = ref [] in
  (* Explicit stack to survive deep CFGs. *)
  let rec visit node =
    if not visited.(node) then begin
      visited.(node) <- true;
      List.iter visit (succs node);
      order := node :: !order
    end
  in
  visit root;
  Array.of_list !order

let compute_generic ~nblocks ~succs ~preds ~root : t =
  let rpo = reverse_postorder ~nblocks ~succs ~root in
  let rpo_index = Array.make nblocks (-1) in
  Array.iteri (fun i node -> rpo_index.(node) <- i) rpo;
  let idom = Array.make nblocks (-1) in
  idom.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun node ->
        if node <> root then begin
          let processed_preds =
            List.filter (fun p -> rpo_index.(p) >= 0 && idom.(p) >= 0) (preds node)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left (fun acc p -> intersect acc p) first rest in
            if idom.(node) <> new_idom then begin
              idom.(node) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  idom.(root) <- -1;
  let children = Array.make nblocks [] in
  for node = 0 to nblocks - 1 do
    let d = idom.(node) in
    if d >= 0 then children.(d) <- node :: children.(d)
  done;
  Array.iteri (fun i cs -> children.(i) <- List.rev cs) children;
  { idom; rpo_index; children; root }

(** Dominator tree of [fn] (root = entry block). *)
let compute (fn : Ir.fn) : t =
  compute_generic ~nblocks:(Ir.num_blocks fn)
    ~succs:(fun bid -> Ir.successors (Ir.block fn bid).term)
    ~preds:(fun bid -> (Ir.block fn bid).preds)
    ~root:Ir.entry_bid

(** [dominates t a b] — does [a] dominate [b] (reflexively)? *)
let dominates t a b =
  let rec walk node = node = a || (t.idom.(node) >= 0 && walk t.idom.(node)) in
  a = b || (t.rpo_index.(b) >= 0 && walk b)

let strictly_dominates t a b = a <> b && dominates t a b

(** Dominance frontiers (Cytron et al.), for φ placement. *)
let frontiers (fn : Ir.fn) (t : t) : int list array =
  let n = Ir.num_blocks fn in
  let df = Array.make n [] in
  let add bid node = if not (List.mem node df.(bid)) then df.(bid) <- node :: df.(bid) in
  Ir.iter_blocks fn (fun b ->
      if List.length b.preds >= 2 then
        List.iter
          (fun pred ->
            if t.rpo_index.(pred) >= 0 then begin
              let runner = ref pred in
              while !runner <> t.idom.(b.bid) && !runner >= 0 do
                add !runner b.bid;
                runner := t.idom.(!runner)
              done
            end)
          b.preds);
  df

(** Postdominator tree. Computed on the reversed CFG with a virtual exit
    node (id [num_blocks fn]) that every [Ret] block — and, to handle
    infinite loops, every block with no reachable exit — feeds into.
    [idom.(b)] is then the immediate postdominator, with the virtual exit as
    root. *)
let compute_post (fn : Ir.fn) : t =
  let n = Ir.num_blocks fn in
  let virtual_exit = n in
  let exits =
    Array.to_list fn.blocks
    |> List.filter_map (fun (b : Ir.block) ->
           match b.term with Ir.Ret _ -> Some b.bid | Ir.Jump _ | Ir.Br _ -> None)
  in
  let rsuccs bid = if bid = virtual_exit then exits else (Ir.block fn bid).preds in
  let rpreds bid =
    if bid = virtual_exit then []
    else begin
      let s = Ir.successors (Ir.block fn bid).term in
      if s = [] then [ virtual_exit ] else s
    end
  in
  compute_generic ~nblocks:(n + 1) ~succs:rsuccs ~preds:rpreds ~root:virtual_exit

(** [postdominates pt a b]: every path from [b] to exit passes through [a].
    Uses the tree from {!compute_post}. *)
let postdominates (pt : t) a b = dominates pt a b
