(** IR variables (virtual registers).

    A variable has a [base] source name, a [version] (assigned by SSA
    renaming; [-1] before SSA) and a per-function unique [id]. Identity is
    the [id]; the rest is for printing and for mapping SSA names back to the
    source variable they version. *)

type t = { id : int; base : string; version : int; ty : Vrp_lang.Ast.ty }

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash a = a.id

let to_string v =
  if v.version < 0 then v.base else Printf.sprintf "%s.%d" v.base v.version

let pp fmt v = Format.pp_print_string fmt (to_string v)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
