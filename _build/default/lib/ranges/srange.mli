(** One weighted range: the paper's [P[L:U:S]] (§3.4), with independent
    symbolic bounds. See the implementation header for the countability
    classification. *)

module Var = Vrp_ir.Var

type t = { p : float; lo : Sym.t; hi : Sym.t; stride : int }

type kind =
  | Numeric  (** both bounds numeric *)
  | Same_base of Var.t  (** both bounds offsets of one variable *)
  | Mixed  (** one symbolic bound, or two with distinct bases *)

val kind : t -> kind

(** The offsets progression, for countable (Numeric/Same_base) ranges. *)
val prog : t -> Progression.t option

val countable : t -> bool

(** Element count, when countable. *)
val count : t -> int option

val is_numeric : t -> bool
val is_singleton : t -> bool

(** Normalising constructor; [None] when the range is provably empty (for
    mixed bounds emptiness is undecidable and the range is kept). *)
val make : p:float -> lo:Sym.t -> hi:Sym.t -> stride:int -> t option

val numeric : p:float -> Progression.t -> t
val singleton : p:float -> Sym.t -> t
val same_shape : t -> t -> bool

(** Canonical ordering for range sets. *)
val compare_sr : t -> t -> int

val too_big : t -> bool
val to_string : t -> string
