(** Instrumentation for the paper's complexity figures: every range-pair
    primitive ticks [sub_ops] (Figure 6's "evaluation sub-operations"). *)

val sub_ops : int ref
val tick : unit -> unit
val reset : unit -> unit
val read : unit -> int
