(** Instrumentation counters for the paper's complexity figures.

    Figure 5 plots the number of {e expression evaluations} (counted by the
    propagation engine) and Figure 6 the number of {e evaluation
    sub-operations} — the primitive operations on pairs of ranges — against
    program size. Every range-pair primitive in this library ticks
    [sub_ops]. *)

let sub_ops = ref 0

let tick () = incr sub_ops

let reset () = sub_ops := 0

let read () = !sub_ops
