(** One weighted range: the paper's [P[L:U:S]] (§3.4).

    [L] and [U] are independent symbolic bounds ([variable + constant] or
    plain constants), [S] the stride and [P] the probability of the range
    applying at run time, with values assumed evenly distributed.

    A range is {e countable} when both bounds are numeric or both share one
    base variable (the offsets then form a finite {!Progression});
    probabilities of two-sided predicates are only computable over countable
    ranges. Mixed ranges such as [1[0 : n+1 : 1]] — the shape of derived
    loop-counter ranges with a symbolic bound — still support one-sided
    certainty tests and narrowing, which is what the paper's symbolic
    accuracy gains come from. *)

module Var = Vrp_ir.Var

type t = { p : float; lo : Sym.t; hi : Sym.t; stride : int }

(** Structural classification of a range's bounds. *)
type kind =
  | Numeric  (** both bounds numeric *)
  | Same_base of Var.t  (** both bounds offsets of one variable *)
  | Mixed  (** one symbolic bound, or two with distinct bases *)

let kind r =
  match (r.lo.Sym.base, r.hi.Sym.base) with
  | None, None -> Numeric
  | Some va, Some vb when Var.equal va vb -> Same_base va
  | (None | Some _), (None | Some _) -> Mixed

(** The offsets progression, for countable ranges. *)
let prog r : Progression.t option =
  match kind r with
  | Numeric | Same_base _ ->
    if r.hi.Sym.off < r.lo.Sym.off then None
    else Some (Progression.make r.lo.Sym.off r.hi.Sym.off r.stride)
  | Mixed -> None

let countable r = match kind r with Numeric | Same_base _ -> true | Mixed -> false

let count r = Option.map Progression.count (prog r)

let is_numeric r = kind r = Numeric

let is_singleton r = Sym.equal r.lo r.hi

(** Normalising constructor; [None] when the range is provably empty. For
    mixed bounds emptiness is not decidable, so the range is kept. *)
let make ~p ~lo ~hi ~stride : t option =
  match (lo.Sym.base, hi.Sym.base) with
  | None, None | Some _, Some _ when Sym.same_base lo hi ->
    if hi.Sym.off < lo.Sym.off then None
    else begin
      let pr = Progression.make lo.Sym.off hi.Sym.off stride in
      Some
        {
          p;
          lo = { lo with Sym.off = pr.Progression.lo };
          hi = { hi with Sym.off = pr.Progression.hi };
          stride = pr.Progression.stride;
        }
    end
  | _ -> Some { p; lo; hi; stride = max stride 1 }

let numeric ~p (pr : Progression.t) =
  {
    p;
    lo = Sym.num pr.Progression.lo;
    hi = Sym.num pr.Progression.hi;
    stride = pr.Progression.stride;
  }

let singleton ~p (s : Sym.t) = { p; lo = s; hi = s; stride = 0 }

let same_shape a b = Sym.equal a.lo b.lo && Sym.equal a.hi b.hi && a.stride = b.stride

(** Ordering used to keep range sets canonical. *)
let compare_sr a b =
  let base_key (s : Sym.t) = match s.Sym.base with None -> -1 | Some v -> v.Var.id in
  let c = Int.compare (base_key a.lo) (base_key b.lo) in
  if c <> 0 then c
  else begin
    let c = Int.compare (base_key a.hi) (base_key b.hi) in
    if c <> 0 then c
    else begin
      let c = Int.compare a.lo.Sym.off b.lo.Sym.off in
      if c <> 0 then c
      else begin
        let c = Int.compare a.hi.Sym.off b.hi.Sym.off in
        if c <> 0 then c else Int.compare a.stride b.stride
      end
    end
  end

let too_big r = Sym.too_big r.lo || Sym.too_big r.hi

let to_string r =
  let p =
    if Float.abs (r.p -. 1.0) < 1e-9 then "1" else Printf.sprintf "%.3g" r.p
  in
  Printf.sprintf "%s[%s:%s:%d]" p (Sym.to_string r.lo) (Sym.to_string r.hi) r.stride
