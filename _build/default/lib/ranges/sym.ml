(** Symbolic bounds: [SSA variable + constant] (paper §3.4).

    "each number in a range definition [may] be defined as:
    {e SSA Variable operator Constant}. For numeric values the variable
    component is NULL, and for purely symbolic values the constant component
    is +0." Allowing a single variable plus an offset keeps range operations
    and comparisons simple while capturing the common symbolic cases (loop
    bounds like [n - 1], copies, [x + 2]). *)

module Var = Vrp_ir.Var

type t = { base : Var.t option; off : int }

let num n = { base = None; off = n }
let of_var ?(off = 0) v = { base = Some v; off }

let is_numeric s = s.base = None

let equal a b =
  a.off = b.off
  &&
  match (a.base, b.base) with
  | None, None -> true
  | Some va, Some vb -> Var.equal va vb
  | None, Some _ | Some _, None -> false

let same_base a b =
  match (a.base, b.base) with
  | None, None -> true
  | Some va, Some vb -> Var.equal va vb
  | None, Some _ | Some _, None -> false

let add_const s n = { s with off = s.off + n }

let to_string s =
  match s.base with
  | None -> string_of_int s.off
  | Some v ->
    if s.off = 0 then Var.to_string v
    else if s.off > 0 then Printf.sprintf "%s+%d" (Var.to_string v) s.off
    else Printf.sprintf "%s%d" (Var.to_string v) s.off

(** Offsets beyond this magnitude are treated as unrepresentable; the caller
    widens to ⊥. Keeps all internal arithmetic far from [max_int]. *)
let limit = 1 lsl 40

let too_big s = abs s.off > limit

(* --- Partial arithmetic (None = not representable as [var + const]) --- *)

let add a b =
  match (a.base, b.base) with
  | None, None -> Some { base = None; off = a.off + b.off }
  | Some _, None -> Some { a with off = a.off + b.off }
  | None, Some _ -> Some { b with off = a.off + b.off }
  | Some _, Some _ -> None

let sub a b =
  match (a.base, b.base) with
  | None, None -> Some { base = None; off = a.off - b.off }
  | Some _, None -> Some { a with off = a.off - b.off }
  | Some va, Some vb when Var.equal va vb -> Some { base = None; off = a.off - b.off }
  | (None | Some _), Some _ -> None

(* --- Partial comparison (None = undecidable without the base's value) --- *)

let cmp a b : int option = if same_base a b then Some (Int.compare a.off b.off) else None

let le a b = Option.map (fun c -> c <= 0) (cmp a b)
let lt a b = Option.map (fun c -> c < 0) (cmp a b)
let ge a b = Option.map (fun c -> c >= 0) (cmp a b)
let gt a b = Option.map (fun c -> c > 0) (cmp a b)

let min_sym a b = Option.map (fun c -> if c <= 0 then a else b) (cmp a b)
let max_sym a b = Option.map (fun c -> if c >= 0 then a else b) (cmp a b)
