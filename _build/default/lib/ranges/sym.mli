(** Symbolic bounds: [SSA variable + constant] (paper §3.4). A bound is a
    plain integer when [base = None]. Arithmetic and comparison are partial:
    [None] means the answer needs more than one base variable. *)

module Var = Vrp_ir.Var

type t = { base : Var.t option; off : int }

val num : int -> t
val of_var : ?off:int -> Var.t -> t
val is_numeric : t -> bool
val equal : t -> t -> bool
val same_base : t -> t -> bool
val add_const : t -> int -> t
val to_string : t -> string

(** Magnitude cap on offsets; beyond it callers widen to ⊥. *)
val limit : int

val too_big : t -> bool

(** Partial arithmetic: [None] = not representable as [var + const]. *)
val add : t -> t -> t option

(** Subtraction; same-base operands cancel to a numeric result. *)
val sub : t -> t -> t option

(** Partial comparison: [None] = undecidable without the base's value. *)
val cmp : t -> t -> int option

val le : t -> t -> bool option
val lt : t -> t -> bool option
val ge : t -> t -> bool option
val gt : t -> t -> bool option
val min_sym : t -> t -> t option
val max_sym : t -> t -> t option
