lib/ranges/value.ml: Array Config Counters Float List Option Printf Progression Srange String Sym Vrp_ir Vrp_lang Vrp_util
