lib/ranges/value.mli: Srange Vrp_ir Vrp_lang
