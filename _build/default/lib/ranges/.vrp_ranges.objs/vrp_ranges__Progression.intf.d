lib/ranges/progression.mli: Vrp_lang
