lib/ranges/sym.ml: Int Option Printf Vrp_ir
