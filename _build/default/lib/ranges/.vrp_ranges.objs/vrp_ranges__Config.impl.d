lib/ranges/config.ml: Fun
