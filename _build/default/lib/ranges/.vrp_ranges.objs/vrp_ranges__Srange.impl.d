lib/ranges/srange.ml: Float Int Option Printf Progression Sym Vrp_ir
