lib/ranges/counters.ml:
