lib/ranges/config.mli:
