lib/ranges/sym.mli: Vrp_ir
