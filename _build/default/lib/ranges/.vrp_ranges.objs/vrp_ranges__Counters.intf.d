lib/ranges/counters.mli:
