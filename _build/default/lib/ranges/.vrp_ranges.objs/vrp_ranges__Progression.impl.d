lib/ranges/progression.ml: Counters Float Printf Vrp_lang Vrp_util
