lib/ranges/srange.mli: Progression Sym Vrp_ir
