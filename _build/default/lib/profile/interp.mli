(** Reference interpreter and execution profiler: executes the canonical SSA
    CFG directly, so observed branch behaviour attaches to exactly the
    branch identities the static predictors annotate. Stands in for the
    paper's instrumented SPEC binaries. *)

module Ir = Vrp_ir.Ir

type value = Vint of int | Vfloat of float

(** Runtime traps: division by zero, out-of-bounds access, step-budget
    exhaustion, arity mismatches. *)
exception Trap of string

type branch_stats = { mutable taken : int; mutable total : int }

type profile = {
  branches : (string * int, branch_stats) Hashtbl.t;
      (** per conditional branch: (function, block) -> outcome counts *)
  edges : (string * int * int, int) Hashtbl.t;
      (** per CFG edge traversal counts *)
  mutable steps : int;  (** executed instructions *)
}

val fresh_profile : unit -> profile
val branch_stats : profile -> string * int -> branch_stats option

(** Observed P(taken), if the branch executed. *)
val observed_prob : profile -> string * int -> float option

val exec_count : profile -> string * int -> int

type result = { ret : value; profile : profile; output : string }

(** Interpret [main] on integer arguments. [max_steps] bounds the run
    (default 50M); [capture_output] collects [print_*] output.
    @raise Trap on runtime errors. *)
val run : ?max_steps:int -> ?capture_output:bool -> Ir.program -> args:int list -> result
