lib/profile/interp.mli: Hashtbl Vrp_ir
