lib/profile/interp.ml: Array Buffer Float Hashtbl Int List Option Printf Vrp_ir Vrp_lang
