(** Abstract syntax for MiniC, the source language of the reproduction.

    MiniC is a small C-like imperative language with integer and float
    scalars, fixed-size arrays, functions and structured control flow. It is
    the stand-in for the C subset the paper's compiler consumed; it keeps
    exactly the constructs value range propagation cares about (arithmetic on
    scalars, comparisons controlling branches, counted and data-dependent
    loops, array loads that defeat static analysis, calls that carry ranges
    interprocedurally). *)

type ty = Tint | Tfloat | Tvoid

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type relop = Eq | Ne | Lt | Le | Gt | Ge

type unop = Neg | Lnot | Bnot

type expr =
  | Int of int
  | Float of float
  | Var of string
  | Index of string * expr
  | Binop of binop * expr * expr
  | Rel of relop * expr * expr
  | And of expr * expr  (** short-circuit, yields 0/1 *)
  | Or of expr * expr  (** short-circuit, yields 0/1 *)
  | Unop of unop * expr
  | Call of string * expr list

type lvalue = Lvar of string | Lindex of string * expr

(** Statements carry the source line they started on, for diagnostics. *)
type stmt = { sline : int; sdesc : stmt_desc }

and stmt_desc =
  | Sdecl of ty * string * decl_init
  | Sassign of lvalue * expr
  | Sif of expr * block * block option
  | Swhile of expr * block
  | Sfor of stmt option * expr option * stmt option * block
      (** [for (init; cond; step) body]; [init]/[step] are simple statements *)
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sexpr of expr

and block = stmt list

and decl_init =
  | Iscalar of expr option  (** [int x;] or [int x = e;] *)
  | Iarray of int  (** [int a[n];] with constant size *)

type param = { pty : ty; pname : string }

type func = {
  fty : ty;
  fname : string;
  params : param list;
  body : block;
  fline : int;
}

(** Globals are modelled as memory (size-1 arrays for scalars) so that, as in
    the paper, every load from them yields an unknown range. *)
type global = {
  gty : ty;
  gname : string;
  gsize : int option;  (** [None] for scalars *)
  gline : int;
}

type program = { globals : global list; funcs : func list }

let ty_to_string = function Tint -> "int" | Tfloat -> "float" | Tvoid -> "void"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let relop_to_string = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let unop_to_string = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

(** Negation of a comparison operator: [not (a op b) = a (negate op) b]. *)
let relop_negate = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(** Mirror image of a comparison: [a op b = b (swap op) a]. *)
let relop_swap = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let find_func program name =
  List.find_opt (fun f -> String.equal f.fname name) program.funcs
