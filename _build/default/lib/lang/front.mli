(** Convenience entry point: lex, parse and type-check a MiniC source. *)

(** @raise Lexer.Error, Parser.Error or Typecheck.Error on bad input. *)
val parse_and_check : string -> Ast.program

(** Human-readable rendering of front-end exceptions; [None] for other
    exceptions. *)
val describe_error : exn -> string option
