(** Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_INT
  | KW_FLOAT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | ANDAND
  | OROR
  | EQ  (** [=] *)
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PERCENTEQ
  | PLUSPLUS
  | MINUSMINUS
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | EOF

exception Error of string * int * int  (** message, line, column *)

type lexed = { tok : token; line : int; col : int }

let keyword_of_string = function
  | "int" -> Some KW_INT
  | "float" -> Some KW_FLOAT
  | "void" -> Some KW_VOID
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | _ -> None

let token_to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_FLOAT -> "float"
  | KW_VOID -> "void"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_FOR -> "for"
  | KW_RETURN -> "return"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | SHL -> "<<"
  | SHR -> ">>"
  | ANDAND -> "&&"
  | OROR -> "||"
  | EQ -> "="
  | EQEQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PERCENTEQ -> "%="
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

(** [tokenize src] turns [src] into a token list ending with [EOF].
    Supports [//] line comments and [/* */] block comments.
    @raise Error on malformed input. *)
let tokenize (src : string) : lexed list =
  let n = String.length src in
  let pos = ref 0 in
  let line = ref 1 in
  let bol = ref 0 in
  let out = ref [] in
  let col () = !pos - !bol + 1 in
  let fail msg = raise (Error (msg, !line, col ())) in
  let peek off = if !pos + off < n then Some src.[!pos + off] else None in
  let advance () =
    (if src.[!pos] = '\n' then begin
       incr line;
       bol := !pos + 1
     end);
    incr pos
  in
  let emit tok ~line ~col = out := { tok; line; col } :: !out in
  while !pos < n do
    let c = src.[!pos] in
    let tok_line = !line and tok_col = col () in
    let emit1 tok = advance (); emit tok ~line:tok_line ~col:tok_col in
    let emit2 tok = advance (); advance (); emit tok ~line:tok_line ~col:tok_col in
    match c with
    | ' ' | '\t' | '\r' | '\n' -> advance ()
    | '/' when peek 1 = Some '/' ->
      while !pos < n && src.[!pos] <> '\n' do
        advance ()
      done
    | '/' when peek 1 = Some '*' ->
      advance ();
      advance ();
      let rec skip () =
        if !pos + 1 >= n then fail "unterminated block comment"
        else if src.[!pos] = '*' && src.[!pos + 1] = '/' then begin
          advance ();
          advance ()
        end
        else begin
          advance ();
          skip ()
        end
      in
      skip ()
    | '0' .. '9' ->
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        advance ()
      done;
      let is_float =
        !pos < n && src.[!pos] = '.' && !pos + 1 < n && is_digit src.[!pos + 1]
      in
      if is_float then begin
        advance ();
        while !pos < n && is_digit src.[!pos] do
          advance ()
        done;
        let text = String.sub src start (!pos - start) in
        emit (FLOAT (float_of_string text)) ~line:tok_line ~col:tok_col
      end
      else begin
        let text = String.sub src start (!pos - start) in
        match int_of_string_opt text with
        | Some v -> emit (INT v) ~line:tok_line ~col:tok_col
        | None -> fail (Printf.sprintf "integer literal too large: %s" text)
      end
    | c when is_ident_start c ->
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        advance ()
      done;
      let text = String.sub src start (!pos - start) in
      let tok =
        match keyword_of_string text with Some kw -> kw | None -> IDENT text
      in
      emit tok ~line:tok_line ~col:tok_col
    | '+' ->
      if peek 1 = Some '+' then emit2 PLUSPLUS
      else if peek 1 = Some '=' then emit2 PLUSEQ
      else emit1 PLUS
    | '-' ->
      if peek 1 = Some '-' then emit2 MINUSMINUS
      else if peek 1 = Some '=' then emit2 MINUSEQ
      else emit1 MINUS
    | '*' -> if peek 1 = Some '=' then emit2 STAREQ else emit1 STAR
    | '/' -> if peek 1 = Some '=' then emit2 SLASHEQ else emit1 SLASH
    | '%' -> if peek 1 = Some '=' then emit2 PERCENTEQ else emit1 PERCENT
    | '&' -> if peek 1 = Some '&' then emit2 ANDAND else emit1 AMP
    | '|' -> if peek 1 = Some '|' then emit2 OROR else emit1 PIPE
    | '^' -> emit1 CARET
    | '~' -> emit1 TILDE
    | '!' -> if peek 1 = Some '=' then emit2 NEQ else emit1 BANG
    | '=' -> if peek 1 = Some '=' then emit2 EQEQ else emit1 EQ
    | '<' ->
      if peek 1 = Some '<' then emit2 SHL
      else if peek 1 = Some '=' then emit2 LE
      else emit1 LT
    | '>' ->
      if peek 1 = Some '>' then emit2 SHR
      else if peek 1 = Some '=' then emit2 GE
      else emit1 GT
    | '(' -> emit1 LPAREN
    | ')' -> emit1 RPAREN
    | '{' -> emit1 LBRACE
    | '}' -> emit1 RBRACE
    | '[' -> emit1 LBRACKET
    | ']' -> emit1 RBRACKET
    | ',' -> emit1 COMMA
    | ';' -> emit1 SEMI
    | c -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  emit EOF ~line:!line ~col:(col ());
  List.rev !out
