(** Recursive-descent parser for MiniC.

    Grammar (C-like precedence, tightest last):
    {v
    program   := (global | func)*
    global    := type ident ("[" INT "]")? ";"
    func      := type ident "(" params? ")" block
    block     := "{" stmt* "}"
    stmt      := decl ";" | simple ";" | if | while | for | flow ";" | block
    simple    := lvalue "=" expr | lvalue op"=" expr | lvalue "++"/"--" | expr
    expr      := or
    or        := and ("||" and)*
    and       := bitor ("&&" bitor)*
    bitor     := bitxor ("|" bitxor)*
    bitxor    := bitand ("^" bitand)*
    bitand    := equality ("&" equality)*
    equality  := relational (("==" | "!=") relational)*
    relational:= shift (("<" | "<=" | ">" | ">=") shift)*
    shift     := additive (("<<" | ">>") additive)*
    additive  := term (("+" | "-") term)*
    term      := unary (("*" | "/" | "%") unary)*
    unary     := ("-" | "!" | "~") unary | postfix
    postfix   := INT | FLOAT | ident | ident "(" args ")" | ident "[" expr "]"
               | "(" expr ")"
    v} *)

open Ast

exception Error of string * int * int  (** message, line, column *)

type state = { toks : Lexer.lexed array; mutable pos : int }

let peek st = st.toks.(st.pos)
let peek_tok st = (peek st).tok

let advance st = st.pos <- st.pos + 1

let fail st msg =
  let l = peek st in
  raise (Error (msg, l.line, l.col))

let expect st tok =
  if peek_tok st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected '%s' but found '%s'"
         (Lexer.token_to_string tok)
         (Lexer.token_to_string (peek_tok st)))

let expect_ident st =
  match peek_tok st with
  | Lexer.IDENT name ->
    advance st;
    name
  | tok -> fail st (Printf.sprintf "expected identifier, found '%s'" (Lexer.token_to_string tok))

let parse_type_opt st =
  match peek_tok st with
  | Lexer.KW_INT -> advance st; Some Tint
  | Lexer.KW_FLOAT -> advance st; Some Tfloat
  | Lexer.KW_VOID -> advance st; Some Tvoid
  | _ -> None

let parse_type st =
  match parse_type_opt st with
  | Some ty -> ty
  | None ->
    fail st (Printf.sprintf "expected a type, found '%s'" (Lexer.token_to_string (peek_tok st)))

(* --- Expressions --- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek_tok st = Lexer.OROR do
    advance st;
    lhs := Or (!lhs, parse_and st)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_bitor st) in
  while peek_tok st = Lexer.ANDAND do
    advance st;
    lhs := And (!lhs, parse_bitor st)
  done;
  !lhs

and parse_bitor st =
  let lhs = ref (parse_bitxor st) in
  while peek_tok st = Lexer.PIPE do
    advance st;
    lhs := Binop (Bor, !lhs, parse_bitxor st)
  done;
  !lhs

and parse_bitxor st =
  let lhs = ref (parse_bitand st) in
  while peek_tok st = Lexer.CARET do
    advance st;
    lhs := Binop (Bxor, !lhs, parse_bitand st)
  done;
  !lhs

and parse_bitand st =
  let lhs = ref (parse_equality st) in
  while peek_tok st = Lexer.AMP do
    advance st;
    lhs := Binop (Band, !lhs, parse_equality st)
  done;
  !lhs

and parse_equality st =
  let lhs = ref (parse_relational st) in
  let continue = ref true in
  while !continue do
    match peek_tok st with
    | Lexer.EQEQ ->
      advance st;
      lhs := Rel (Eq, !lhs, parse_relational st)
    | Lexer.NEQ ->
      advance st;
      lhs := Rel (Ne, !lhs, parse_relational st)
    | _ -> continue := false
  done;
  !lhs

and parse_relational st =
  let lhs = ref (parse_shift st) in
  let continue = ref true in
  while !continue do
    match peek_tok st with
    | Lexer.LT ->
      advance st;
      lhs := Rel (Lt, !lhs, parse_shift st)
    | Lexer.LE ->
      advance st;
      lhs := Rel (Le, !lhs, parse_shift st)
    | Lexer.GT ->
      advance st;
      lhs := Rel (Gt, !lhs, parse_shift st)
    | Lexer.GE ->
      advance st;
      lhs := Rel (Ge, !lhs, parse_shift st)
    | _ -> continue := false
  done;
  !lhs

and parse_shift st =
  let lhs = ref (parse_additive st) in
  let continue = ref true in
  while !continue do
    match peek_tok st with
    | Lexer.SHL ->
      advance st;
      lhs := Binop (Shl, !lhs, parse_additive st)
    | Lexer.SHR ->
      advance st;
      lhs := Binop (Shr, !lhs, parse_additive st)
    | _ -> continue := false
  done;
  !lhs

and parse_additive st =
  let lhs = ref (parse_term st) in
  let continue = ref true in
  while !continue do
    match peek_tok st with
    | Lexer.PLUS ->
      advance st;
      lhs := Binop (Add, !lhs, parse_term st)
    | Lexer.MINUS ->
      advance st;
      lhs := Binop (Sub, !lhs, parse_term st)
    | _ -> continue := false
  done;
  !lhs

and parse_term st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek_tok st with
    | Lexer.STAR ->
      advance st;
      lhs := Binop (Mul, !lhs, parse_unary st)
    | Lexer.SLASH ->
      advance st;
      lhs := Binop (Div, !lhs, parse_unary st)
    | Lexer.PERCENT ->
      advance st;
      lhs := Binop (Mod, !lhs, parse_unary st)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  match peek_tok st with
  | Lexer.MINUS ->
    advance st;
    (* Fold negation into literals so "-5" is a constant, not an operation. *)
    (match parse_unary st with
    | Int n -> Int (-n)
    | Float f -> Float (-.f)
    | e -> Unop (Neg, e))
  | Lexer.BANG ->
    advance st;
    Unop (Lnot, parse_unary st)
  | Lexer.TILDE ->
    advance st;
    Unop (Bnot, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  match peek_tok st with
  | Lexer.INT n ->
    advance st;
    Int n
  | Lexer.FLOAT f ->
    advance st;
    Float f
  | Lexer.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name -> (
    advance st;
    match peek_tok st with
    | Lexer.LPAREN ->
      advance st;
      let args = parse_args st in
      expect st Lexer.RPAREN;
      Call (name, args)
    | Lexer.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Lexer.RBRACKET;
      Index (name, idx)
    | _ -> Var name)
  | tok -> fail st (Printf.sprintf "expected expression, found '%s'" (Lexer.token_to_string tok))

and parse_args st =
  if peek_tok st = Lexer.RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_expr st in
      if peek_tok st = Lexer.COMMA then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []
  end

(* --- Statements --- *)

let parse_lvalue_from_expr st = function
  | Var name -> Lvar name
  | Index (name, idx) -> Lindex (name, idx)
  | _ -> fail st "left-hand side of assignment must be a variable or array element"

(** Simple statement: assignment, compound assignment, ++/--, or a bare
    expression. Used both as a statement and in [for] headers. *)
let parse_simple st =
  let line = (peek st).line in
  let e = parse_expr st in
  let mk sdesc = { sline = line; sdesc } in
  match peek_tok st with
  | Lexer.EQ ->
    advance st;
    let lv = parse_lvalue_from_expr st e in
    mk (Sassign (lv, parse_expr st))
  | Lexer.PLUSEQ | Lexer.MINUSEQ | Lexer.STAREQ | Lexer.SLASHEQ | Lexer.PERCENTEQ ->
    let op =
      match peek_tok st with
      | Lexer.PLUSEQ -> Add
      | Lexer.MINUSEQ -> Sub
      | Lexer.STAREQ -> Mul
      | Lexer.SLASHEQ -> Div
      | Lexer.PERCENTEQ -> Mod
      | _ -> assert false
    in
    advance st;
    let lv = parse_lvalue_from_expr st e in
    let lv_expr = match lv with Lvar v -> Var v | Lindex (a, i) -> Index (a, i) in
    mk (Sassign (lv, Binop (op, lv_expr, parse_expr st)))
  | Lexer.PLUSPLUS ->
    advance st;
    let lv = parse_lvalue_from_expr st e in
    let lv_expr = match lv with Lvar v -> Var v | Lindex (a, i) -> Index (a, i) in
    mk (Sassign (lv, Binop (Add, lv_expr, Int 1)))
  | Lexer.MINUSMINUS ->
    advance st;
    let lv = parse_lvalue_from_expr st e in
    let lv_expr = match lv with Lvar v -> Var v | Lindex (a, i) -> Index (a, i) in
    mk (Sassign (lv, Binop (Sub, lv_expr, Int 1)))
  | _ -> mk (Sexpr e)

let rec parse_stmt st : stmt list =
  let line = (peek st).line in
  let mk sdesc = { sline = line; sdesc } in
  match peek_tok st with
  | Lexer.KW_INT | Lexer.KW_FLOAT ->
    let ty = parse_type st in
    let decls = parse_decl_list st ty ~line in
    expect st Lexer.SEMI;
    decls
  | Lexer.KW_IF ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let then_blk = parse_stmt_as_block st in
    let else_blk =
      if peek_tok st = Lexer.KW_ELSE then begin
        advance st;
        Some (parse_stmt_as_block st)
      end
      else None
    in
    [ mk (Sif (cond, then_blk, else_blk)) ]
  | Lexer.KW_WHILE ->
    advance st;
    expect st Lexer.LPAREN;
    let cond = parse_expr st in
    expect st Lexer.RPAREN;
    let body = parse_stmt_as_block st in
    [ mk (Swhile (cond, body)) ]
  | Lexer.KW_FOR ->
    advance st;
    expect st Lexer.LPAREN;
    let init =
      if peek_tok st = Lexer.SEMI then None
      else begin
        (* Allow a declaration in the for header: for (int i = 0; ...). *)
        match parse_type_opt st with
        | Some ty ->
          let name = expect_ident st in
          expect st Lexer.EQ;
          let e = parse_expr st in
          Some { sline = line; sdesc = Sdecl (ty, name, Iscalar (Some e)) }
        | None -> Some (parse_simple st)
      end
    in
    expect st Lexer.SEMI;
    let cond = if peek_tok st = Lexer.SEMI then None else Some (parse_expr st) in
    expect st Lexer.SEMI;
    let step = if peek_tok st = Lexer.RPAREN then None else Some (parse_simple st) in
    expect st Lexer.RPAREN;
    let body = parse_stmt_as_block st in
    [ mk (Sfor (init, cond, step, body)) ]
  | Lexer.KW_RETURN ->
    advance st;
    let e = if peek_tok st = Lexer.SEMI then None else Some (parse_expr st) in
    expect st Lexer.SEMI;
    [ mk (Sreturn e) ]
  | Lexer.KW_BREAK ->
    advance st;
    expect st Lexer.SEMI;
    [ mk Sbreak ]
  | Lexer.KW_CONTINUE ->
    advance st;
    expect st Lexer.SEMI;
    [ mk Scontinue ]
  | Lexer.LBRACE ->
    (* A nested block is flattened into the surrounding statement list; MiniC
       scoping is per-function, as the analyses all run on the CFG anyway. *)
    parse_block st
  | Lexer.SEMI ->
    advance st;
    []
  | _ ->
    let s = parse_simple st in
    expect st Lexer.SEMI;
    [ s ]

and parse_decl_list st ty ~line =
  let rec loop acc =
    let name = expect_ident st in
    let decl =
      match peek_tok st with
      | Lexer.LBRACKET ->
        advance st;
        let size =
          match peek_tok st with
          | Lexer.INT n ->
            advance st;
            n
          | _ -> fail st "array size must be an integer literal"
        in
        expect st Lexer.RBRACKET;
        { sline = line; sdesc = Sdecl (ty, name, Iarray size) }
      | Lexer.EQ ->
        advance st;
        let e = parse_expr st in
        { sline = line; sdesc = Sdecl (ty, name, Iscalar (Some e)) }
      | _ -> { sline = line; sdesc = Sdecl (ty, name, Iscalar None) }
    in
    if peek_tok st = Lexer.COMMA then begin
      advance st;
      loop (decl :: acc)
    end
    else List.rev (decl :: acc)
  in
  loop []

and parse_block st : block =
  expect st Lexer.LBRACE;
  let rec loop acc =
    if peek_tok st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else begin
      let stmts = parse_stmt st in
      loop (List.rev_append stmts acc)
    end
  in
  loop []

and parse_stmt_as_block st : block =
  if peek_tok st = Lexer.LBRACE then parse_block st else parse_stmt st

(* --- Top level --- *)

let parse_params st =
  if peek_tok st = Lexer.RPAREN then []
  else begin
    let rec loop acc =
      let pty = parse_type st in
      let pname = expect_ident st in
      let p = { pty; pname } in
      if peek_tok st = Lexer.COMMA then begin
        advance st;
        loop (p :: acc)
      end
      else List.rev (p :: acc)
    in
    loop []
  end

let parse_program (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let globals = ref [] in
  let funcs = ref [] in
  while peek_tok st <> Lexer.EOF do
    let line = (peek st).line in
    let ty = parse_type st in
    let name = expect_ident st in
    match peek_tok st with
    | Lexer.LPAREN ->
      advance st;
      let params = parse_params st in
      expect st Lexer.RPAREN;
      let body = parse_block st in
      funcs := { fty = ty; fname = name; params; body; fline = line } :: !funcs
    | Lexer.LBRACKET ->
      advance st;
      let size =
        match peek_tok st with
        | Lexer.INT n ->
          advance st;
          n
        | _ -> fail st "global array size must be an integer literal"
      in
      expect st Lexer.RBRACKET;
      expect st Lexer.SEMI;
      globals := { gty = ty; gname = name; gsize = Some size; gline = line } :: !globals
    | Lexer.SEMI ->
      advance st;
      globals := { gty = ty; gname = name; gsize = None; gline = line } :: !globals
    | tok ->
      fail st
        (Printf.sprintf "expected '(', '[' or ';' after top-level name, found '%s'"
           (Lexer.token_to_string tok))
  done;
  { globals = List.rev !globals; funcs = List.rev !funcs }
