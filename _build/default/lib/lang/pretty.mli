(** Pretty printer for MiniC: emits source that re-parses to a structurally
    identical program (modulo statement line numbers). *)

val program_to_string : Ast.program -> string
val expr_to_string : Ast.expr -> string
