(** Type checker for MiniC.

    MiniC has three types ([int], [float], [void]) and a flat per-function
    scope (declarations anywhere in a function body share one namespace, as
    everything is analysed on the CFG afterwards). The checker enforces:

    - every name is declared before use and declared at most once per scope;
    - arithmetic is over numbers, with implicit [int -> float] promotion;
    - [%], bitwise operators and shifts are integer-only;
    - array indexing applies to arrays with an integer index, scalars are not
      indexed;
    - calls match a known function's arity and parameter types;
    - [return] matches the function type; [break]/[continue] appear in loops. *)

open Ast

exception Error of string * int  (** message, source line *)

type sym = Scalar of ty | Array of ty * int

type fsig = { ret : ty; args : ty list }

type env = {
  globals : (string, sym) Hashtbl.t;
  funcs : (string, fsig) Hashtbl.t;
  mutable scopes : (string, sym) Hashtbl.t list;
      (** innermost scope first; a new scope opens per block *)
  arrays_declared : (string, unit) Hashtbl.t;
      (** arrays are hoisted to function scope in the IR, so array names
          must be unique per function even across blocks *)
}

let builtins : (string * fsig) list =
  [
    ("print_int", { ret = Tvoid; args = [ Tint ] });
    ("print_float", { ret = Tvoid; args = [ Tfloat ] });
  ]

let fail line fmt = Printf.ksprintf (fun msg -> raise (Error (msg, line))) fmt

let lookup env name =
  let rec in_scopes = function
    | [] -> Hashtbl.find_opt env.globals name
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with Some sym -> Some sym | None -> in_scopes rest)
  in
  in_scopes env.scopes

let declare env line name sym =
  match env.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope name then fail line "duplicate declaration of '%s' in this scope" name;
    Hashtbl.add scope name sym
  | [] -> assert false

let in_new_scope env f =
  env.scopes <- Hashtbl.create 8 :: env.scopes;
  Fun.protect ~finally:(fun () -> env.scopes <- List.tl env.scopes) f

let is_numeric = function Tint | Tfloat -> true | Tvoid -> false

(** [t1] accepts a value of type [t2] (implicit int->float widening only). *)
let compatible ~target ~source =
  match (target, source) with
  | Tint, Tint | Tfloat, Tfloat | Tfloat, Tint -> true
  | _ -> false

let join_numeric line t1 t2 =
  match (t1, t2) with
  | Tfloat, (Tint | Tfloat) | Tint, Tfloat -> Tfloat
  | Tint, Tint -> Tint
  | _ -> fail line "arithmetic on non-numeric operand"

let rec type_of_expr env line (e : expr) : ty =
  match e with
  | Int _ -> Tint
  | Float _ -> Tfloat
  | Var name -> (
    match lookup env name with
    | Some (Scalar ty) -> ty
    | Some (Array _) -> fail line "array '%s' used without an index" name
    | None -> fail line "undeclared variable '%s'" name)
  | Index (name, idx) -> (
    match lookup env name with
    | Some (Array (ty, _)) ->
      let ti = type_of_expr env line idx in
      if ti <> Tint then fail line "array index must be an int";
      ty
    | Some (Scalar _) -> fail line "'%s' is a scalar, not an array" name
    | None -> fail line "undeclared array '%s'" name)
  | Binop (op, a, b) -> (
    let ta = type_of_expr env line a in
    let tb = type_of_expr env line b in
    if not (is_numeric ta && is_numeric tb) then
      fail line "operator '%s' applied to non-numeric operand" (binop_to_string op);
    match op with
    | Add | Sub | Mul | Div -> join_numeric line ta tb
    | Mod | Band | Bor | Bxor | Shl | Shr ->
      if ta <> Tint || tb <> Tint then
        fail line "operator '%s' requires int operands" (binop_to_string op);
      Tint)
  | Rel (op, a, b) ->
    let ta = type_of_expr env line a in
    let tb = type_of_expr env line b in
    if not (is_numeric ta && is_numeric tb) then
      fail line "comparison '%s' applied to non-numeric operand" (relop_to_string op);
    Tint
  | And (a, b) | Or (a, b) ->
    let ta = type_of_expr env line a in
    let tb = type_of_expr env line b in
    if not (is_numeric ta && is_numeric tb) then
      fail line "logical operator applied to non-numeric operand";
    Tint
  | Unop (Neg, a) ->
    let ta = type_of_expr env line a in
    if not (is_numeric ta) then fail line "unary '-' applied to non-numeric operand";
    ta
  | Unop (Lnot, a) ->
    let ta = type_of_expr env line a in
    if not (is_numeric ta) then fail line "'!' applied to non-numeric operand";
    Tint
  | Unop (Bnot, a) ->
    let ta = type_of_expr env line a in
    if ta <> Tint then fail line "'~' requires an int operand";
    Tint
  | Call (name, args) -> (
    match Hashtbl.find_opt env.funcs name with
    | None -> fail line "call to undeclared function '%s'" name
    | Some fsig ->
      let nargs = List.length args and nparams = List.length fsig.args in
      if nargs <> nparams then
        fail line "function '%s' expects %d argument(s), got %d" name nparams nargs;
      List.iter2
        (fun pty arg ->
          let ta = type_of_expr env line arg in
          if not (compatible ~target:pty ~source:ta) then
            fail line "argument of type %s passed where %s expected in call to '%s'"
              (ty_to_string ta) (ty_to_string pty) name)
        fsig.args args;
      fsig.ret)

let check_condition env line e =
  let t = type_of_expr env line e in
  if not (is_numeric t) then fail line "condition must be numeric"

let rec check_stmt env ~ret ~in_loop (s : stmt) =
  let line = s.sline in
  match s.sdesc with
  | Sdecl (ty, name, init) -> (
    if ty = Tvoid then fail line "variable '%s' cannot have type void" name;
    match init with
    | Iscalar None -> declare env line name (Scalar ty)
    | Iscalar (Some e) ->
      let te = type_of_expr env line e in
      if not (compatible ~target:ty ~source:te) then
        fail line "cannot initialise %s '%s' with a %s value" (ty_to_string ty) name
          (ty_to_string te);
      declare env line name (Scalar ty)
    | Iarray size ->
      if size <= 0 then fail line "array '%s' must have positive size" name;
      if Hashtbl.mem env.arrays_declared name then
        fail line "duplicate array '%s' in this function (arrays have function scope)" name;
      Hashtbl.add env.arrays_declared name ();
      declare env line name (Array (ty, size)))
  | Sassign (lv, e) -> (
    let te = type_of_expr env line e in
    match lv with
    | Lvar name -> (
      match lookup env name with
      | Some (Scalar ty) ->
        if not (compatible ~target:ty ~source:te) then
          fail line "cannot assign %s value to %s variable '%s'" (ty_to_string te)
            (ty_to_string ty) name
      | Some (Array _) -> fail line "cannot assign to array '%s' without an index" name
      | None -> fail line "assignment to undeclared variable '%s'" name)
    | Lindex (name, idx) -> (
      match lookup env name with
      | Some (Array (ty, _)) ->
        let ti = type_of_expr env line idx in
        if ti <> Tint then fail line "array index must be an int";
        if not (compatible ~target:ty ~source:te) then
          fail line "cannot store %s value into %s array '%s'" (ty_to_string te)
            (ty_to_string ty) name
      | Some (Scalar _) -> fail line "'%s' is a scalar, not an array" name
      | None -> fail line "store to undeclared array '%s'" name))
  | Sif (cond, then_blk, else_blk) ->
    check_condition env line cond;
    in_new_scope env (fun () -> List.iter (check_stmt env ~ret ~in_loop) then_blk);
    Option.iter
      (fun blk -> in_new_scope env (fun () -> List.iter (check_stmt env ~ret ~in_loop) blk))
      else_blk
  | Swhile (cond, body) ->
    check_condition env line cond;
    in_new_scope env (fun () -> List.iter (check_stmt env ~ret ~in_loop:true) body)
  | Sfor (init, cond, step, body) ->
    (* The for header opens a scope covering condition, step and body. *)
    in_new_scope env (fun () ->
        Option.iter (check_stmt env ~ret ~in_loop) init;
        Option.iter (check_condition env line) cond;
        (* The step runs inside the loop but break/continue cannot occur
           there syntactically (it is a simple statement). *)
        Option.iter (check_stmt env ~ret ~in_loop) step;
        in_new_scope env (fun () -> List.iter (check_stmt env ~ret ~in_loop:true) body))
  | Sreturn None ->
    if ret <> Tvoid then fail line "non-void function must return a value"
  | Sreturn (Some e) ->
    if ret = Tvoid then fail line "void function cannot return a value";
    let te = type_of_expr env line e in
    if not (compatible ~target:ret ~source:te) then
      fail line "returning %s from a function of type %s" (ty_to_string te)
        (ty_to_string ret)
  | Sbreak -> if not in_loop then fail line "'break' outside of a loop"
  | Scontinue -> if not in_loop then fail line "'continue' outside of a loop"
  | Sexpr e -> ignore (type_of_expr env line e)

(** Check a whole program.
    @raise Error on the first type error found. *)
let check_program (p : program) : unit =
  let globals = Hashtbl.create 16 in
  let funcs = Hashtbl.create 16 in
  List.iter (fun (name, fsig) -> Hashtbl.add funcs name fsig) builtins;
  List.iter
    (fun g ->
      if g.gty = Tvoid then fail g.gline "global '%s' cannot have type void" g.gname;
      if Hashtbl.mem globals g.gname then fail g.gline "duplicate global '%s'" g.gname;
      match g.gsize with
      | None -> Hashtbl.add globals g.gname (Scalar g.gty)
      | Some size ->
        if size <= 0 then fail g.gline "global array '%s' must have positive size" g.gname;
        Hashtbl.add globals g.gname (Array (g.gty, size)))
    p.globals;
  List.iter
    (fun f ->
      if Hashtbl.mem funcs f.fname then fail f.fline "duplicate function '%s'" f.fname;
      Hashtbl.add funcs f.fname { ret = f.fty; args = List.map (fun p -> p.pty) f.params })
    p.funcs;
  List.iter
    (fun f ->
      let top_scope = Hashtbl.create 16 in
      List.iter
        (fun prm ->
          if prm.pty = Tvoid then
            fail f.fline "parameter '%s' of '%s' cannot be void" prm.pname f.fname;
          if Hashtbl.mem top_scope prm.pname then
            fail f.fline "duplicate parameter '%s' in '%s'" prm.pname f.fname;
          Hashtbl.add top_scope prm.pname (Scalar prm.pty))
        f.params;
      let env =
        { globals; funcs; scopes = [ top_scope ]; arrays_declared = Hashtbl.create 8 }
      in
      List.iter (check_stmt env ~ret:f.fty ~in_loop:false) f.body)
    p.funcs
