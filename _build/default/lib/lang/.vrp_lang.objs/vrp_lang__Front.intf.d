lib/lang/front.mli: Ast
