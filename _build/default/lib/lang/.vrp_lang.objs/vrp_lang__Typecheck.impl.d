lib/lang/typecheck.ml: Ast Fun Hashtbl List Option Printf
