lib/lang/lexer.mli:
