lib/lang/pretty.ml: Ast Buffer List Printf String
