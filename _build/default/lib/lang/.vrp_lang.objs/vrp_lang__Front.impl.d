lib/lang/front.ml: Ast Lexer Parser Printf Typecheck
