(** Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW_INT
  | KW_FLOAT
  | KW_VOID
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_FOR
  | KW_RETURN
  | KW_BREAK
  | KW_CONTINUE
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | SHL
  | SHR
  | ANDAND
  | OROR
  | EQ
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PERCENTEQ
  | PLUSPLUS
  | MINUSMINUS
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | EOF

(** (message, line, column) *)
exception Error of string * int * int

type lexed = { tok : token; line : int; col : int }

val keyword_of_string : string -> token option
val token_to_string : token -> string

(** Tokenise a whole source (supports [//] and [/* */] comments); the result
    ends with [EOF].
    @raise Error on malformed input. *)
val tokenize : string -> lexed list
