(** Convenience entry point: lex, parse and type-check a MiniC source. *)

(** @raise Lexer.Error, Parser.Error or Typecheck.Error on bad input. *)
let parse_and_check (src : string) : Ast.program =
  let program = Parser.parse_program src in
  Typecheck.check_program program;
  program

(** Human-readable rendering of front-end errors, for CLI drivers. *)
let describe_error = function
  | Lexer.Error (msg, line, col) ->
    Some (Printf.sprintf "lexical error at %d:%d: %s" line col msg)
  | Parser.Error (msg, line, col) ->
    Some (Printf.sprintf "parse error at %d:%d: %s" line col msg)
  | Typecheck.Error (msg, line) -> Some (Printf.sprintf "type error at line %d: %s" line msg)
  | _ -> None
