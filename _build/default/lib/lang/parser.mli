(** Recursive-descent parser for MiniC (C-like precedence; grammar in the
    implementation header). *)

(** (message, line, column) *)
exception Error of string * int * int

(** @raise Error or {!Lexer.Error} on malformed input. *)
val parse_program : string -> Ast.program
