(** Type checker for MiniC: declaration-before-use with lexical scoping,
    numeric arithmetic with implicit [int -> float] widening, integer-only
    [%]/bitwise/shift operators, arity- and type-checked calls, placement
    checks for [return]/[break]/[continue]. *)

(** (message, source line) *)
exception Error of string * int

type sym = Scalar of Ast.ty | Array of Ast.ty * int

type fsig = { ret : Ast.ty; args : Ast.ty list }

(** Built-in functions ([print_int], [print_float]). *)
val builtins : (string * fsig) list

(** @raise Error on the first type error found. *)
val check_program : Ast.program -> unit
