(** The paper's §5 evaluation methodology: per-branch |predicted − observed|
    error in percentage points, cumulative curves over the paper's margins,
    unweighted and execution-weighted. *)

module Interp = Vrp_profile.Interp
module Predictor = Vrp_predict.Predictor

type branch_error = { key : Predictor.branch_key; error_pp : float; count : int }

(** Errors for every branch that executed under the reference profile. *)
val branch_errors : observed:Interp.profile -> Predictor.prediction -> branch_error list

(** The paper's x-axis: <1, <3, ..., <39 percentage points. *)
val margins : int list

(** Percentage (0..100) of branch weight predicted within a margin. *)
val percent_within : weighted:bool -> branch_error list -> int -> float

(** Cumulative curve over {!margins}. *)
val curve : weighted:bool -> branch_error list -> float list

(** Equal-weight average of per-benchmark curves. *)
val average_curves : float list list -> float list

(** Mean absolute error in percentage points. *)
val mean_error : weighted:bool -> branch_error list -> float
