(** The paper's §5 evaluation methodology.

    "The resulting branch predictions were analyzed in terms of how far each
    branch's predicted probability deviated from its actual behavior. This
    involved determining the difference between the predicted probability
    for each branch and the actual probability observed for that branch when
    the program was given the SPEC reference inputs. The analysis was done
    in both an unweighted context, where each branch contributed equally,
    and in a context where each branch was weighted according to its
    execution count."

    A cumulative curve maps an error margin (percentage points) to the
    fraction of branch weight predicted within that margin; Figures 7/8 plot
    margins <1, <3, ..., <39. *)

module Interp = Vrp_profile.Interp
module Predictor = Vrp_predict.Predictor

(** Per-branch absolute error in percentage points with its execution
    count. Only branches that executed under the reference input
    participate (unexecuted branches have no observed behaviour). *)
type branch_error = { key : Predictor.branch_key; error_pp : float; count : int }

let branch_errors ~(observed : Interp.profile) (prediction : Predictor.prediction) :
    branch_error list =
  Hashtbl.fold
    (fun key (stats : Interp.branch_stats) acc ->
      if stats.Interp.total = 0 then acc
      else begin
        let actual = float_of_int stats.Interp.taken /. float_of_int stats.Interp.total in
        let predicted = Option.value ~default:0.5 (Hashtbl.find_opt prediction key) in
        let error_pp = 100.0 *. Float.abs (predicted -. actual) in
        { key; error_pp; count = stats.Interp.total } :: acc
      end)
    observed.Interp.branches []

(** The paper's x-axis: margins <1, <3, ..., <39 percentage points. *)
let margins = List.init 20 (fun i -> (2 * i) + 1)

(** Fraction (0..100) of branches predicted within [margin] percentage
    points; [weighted] weights each branch by its execution count. *)
let percent_within ~(weighted : bool) (errors : branch_error list) (margin : int) : float =
  let weight e = if weighted then float_of_int e.count else 1.0 in
  let total = List.fold_left (fun acc e -> acc +. weight e) 0.0 errors in
  if total <= 0.0 then 0.0
  else begin
    let inside =
      List.fold_left
        (fun acc e -> if e.error_pp < float_of_int margin then acc +. weight e else acc)
        0.0 errors
    in
    100.0 *. inside /. total
  end

(** Cumulative curve over {!margins}. *)
let curve ~weighted errors = List.map (fun m -> percent_within ~weighted errors m) margins

(** Equal-weight average of per-benchmark curves ("Each benchmark is
    weighted equally within its suite"). *)
let average_curves (curves : float list list) : float list =
  match curves with
  | [] -> List.map (fun _ -> 0.0) margins
  | _ ->
    let n = float_of_int (List.length curves) in
    List.fold_left
      (fun acc c -> List.map2 ( +. ) acc c)
      (List.map (fun _ -> 0.0) margins)
      curves
    |> List.map (fun total -> total /. n)

(** Mean absolute error in percentage points (summary statistic used by the
    shape tests; lower is better). *)
let mean_error ~(weighted : bool) (errors : branch_error list) : float =
  let weight e = if weighted then float_of_int e.count else 1.0 in
  let total = List.fold_left (fun acc e -> acc +. weight e) 0.0 errors in
  if total <= 0.0 then 0.0
  else
    List.fold_left (fun acc e -> acc +. (weight e *. e.error_pp)) 0.0 errors /. total
