lib/evaluation/error_analysis.mli: Vrp_predict Vrp_profile
