lib/evaluation/figures.mli: Vrp_suite
