lib/evaluation/figures.ml: Array Buffer Error_analysis Int List Printf String Vrp_core Vrp_ir Vrp_lang Vrp_profile Vrp_ranges Vrp_suite Vrp_util
