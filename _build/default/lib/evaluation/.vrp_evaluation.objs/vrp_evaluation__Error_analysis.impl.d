lib/evaluation/error_analysis.ml: Float Hashtbl List Option Vrp_predict Vrp_profile
