lib/vrp/bounds_check.ml: Array Engine List Vrp_ir Vrp_ranges
