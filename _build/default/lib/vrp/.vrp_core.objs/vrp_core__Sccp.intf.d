lib/vrp/sccp.mli: Hashtbl Vrp_ir
