lib/vrp/clone.mli: Hashtbl Interproc Vrp_ir
