lib/vrp/derive.ml: Hashtbl List Option Vrp_ir Vrp_lang Vrp_ranges
