lib/vrp/frequency.ml: Array Engine Float Hashtbl Interproc List Option Vrp_ir Vrp_util
