lib/vrp/alias.ml: Array Engine List String Vrp_ir Vrp_ranges
