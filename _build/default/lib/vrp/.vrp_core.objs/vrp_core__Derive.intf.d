lib/vrp/derive.mli: Vrp_ir Vrp_ranges
