lib/vrp/bounds_check.mli: Engine Vrp_ir
