lib/vrp/clone.ml: Array Engine Hashtbl Interproc List Printf String Vrp_ir Vrp_ranges
