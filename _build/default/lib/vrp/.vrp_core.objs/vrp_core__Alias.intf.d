lib/vrp/alias.mli: Engine Vrp_ir Vrp_ranges
