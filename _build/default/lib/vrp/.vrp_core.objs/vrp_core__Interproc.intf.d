lib/vrp/interproc.mli: Engine Hashtbl Vrp_ir Vrp_ranges
