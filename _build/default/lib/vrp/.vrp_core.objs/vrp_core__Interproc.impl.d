lib/vrp/interproc.ml: Array Engine Hashtbl List Queue Vrp_ir Vrp_ranges
