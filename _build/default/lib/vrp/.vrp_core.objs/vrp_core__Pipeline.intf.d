lib/vrp/pipeline.mli: Engine Hashtbl Interproc Vrp_ir Vrp_lang Vrp_predict Vrp_profile
