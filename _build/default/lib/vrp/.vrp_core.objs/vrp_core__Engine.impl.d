lib/vrp/engine.ml: Array Derive Float Hashtbl List Option Queue Vrp_ir Vrp_lang Vrp_predict Vrp_ranges
