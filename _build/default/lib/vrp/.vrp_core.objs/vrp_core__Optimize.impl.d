lib/vrp/optimize.ml: Array Buffer Engine Hashtbl List Printf Vrp_ir Vrp_ranges
