lib/vrp/sccp.ml: Array Float Hashtbl Int List Option Printf Queue Vrp_ir Vrp_lang
