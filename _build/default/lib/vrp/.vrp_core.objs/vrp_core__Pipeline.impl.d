lib/vrp/pipeline.ml: Array Engine Hashtbl Interproc Lazy List Vrp_ir Vrp_lang Vrp_predict Vrp_profile Vrp_ranges
