lib/vrp/optimize.mli: Engine Vrp_ir
