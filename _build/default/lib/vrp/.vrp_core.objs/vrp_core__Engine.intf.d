lib/vrp/engine.mli: Hashtbl Vrp_ir Vrp_ranges
