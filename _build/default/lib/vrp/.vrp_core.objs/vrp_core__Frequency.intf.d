lib/vrp/frequency.mli: Engine Hashtbl Interproc Vrp_ir
