(** Sparse conditional constant propagation (Wegman & Zadeck 1991).

    The paper builds value range propagation on SCCP's mechanism and claims
    to subsume it ("value range propagation subsumes both constant
    propagation and copy propagation", §1). This module is the classic
    three-level-lattice algorithm, used as (a) the baseline the engine is
    measured against, (b) a test oracle: every constant SCCP finds must come
    out of VRP as a probability-1 singleton, and every block SCCP proves
    unreachable must be unreachable under VRP. *)

module Ast = Vrp_lang.Ast
module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var

type clat = Ctop | Cint of int | Cfloat of float | Cbot

let clat_equal a b =
  match (a, b) with
  | Ctop, Ctop | Cbot, Cbot -> true
  | Cint x, Cint y -> x = y
  | Cfloat x, Cfloat y -> Float.equal x y
  | (Ctop | Cint _ | Cfloat _ | Cbot), _ -> false

let meet a b =
  match (a, b) with
  | Ctop, x | x, Ctop -> x
  | Cbot, _ | _, Cbot -> Cbot
  | x, y -> if clat_equal x y then x else Cbot

let clat_to_string = function
  | Ctop -> "T"
  | Cint n -> string_of_int n
  | Cfloat f -> Printf.sprintf "%g" f
  | Cbot -> "_|_"

type t = {
  fn : Ir.fn;
  values : clat array;
  executable_blocks : bool array;
  decided_branches : (int, bool) Hashtbl.t;
      (** branches SCCP folded: block id -> constant direction *)
}

let value t (v : Var.t) = t.values.(v.Var.id)

type site = Instr of int | Term

type state = {
  sfn : Ir.fn;
  vals : clat array;
  uses : (int, (int * site) list) Hashtbl.t;
  visited : bool array;
  edge_exec : (int * int, bool) Hashtbl.t;
  flow_list : (int * int) Queue.t;
  ssa_list : (int * site) Queue.t;
}

let to_float = function Cint n -> Some (float_of_int n) | Cfloat f -> Some f | _ -> None

let eval_binop op a b =
  match (a, b) with
  | Cbot, _ | _, Cbot -> Cbot
  | Ctop, _ | _, Ctop -> Ctop
  | Cint x, Cint y -> (
    match op with
    | Ast.Add -> Cint (x + y)
    | Ast.Sub -> Cint (x - y)
    | Ast.Mul -> Cint (x * y)
    | Ast.Div -> if y = 0 then Cbot else Cint (x / y)
    | Ast.Mod -> if y = 0 then Cbot else Cint (x mod y)
    | Ast.Band -> Cint (x land y)
    | Ast.Bor -> Cint (x lor y)
    | Ast.Bxor -> Cint (x lxor y)
    | Ast.Shl -> if y < 0 || y > 62 then Cbot else Cint (x lsl y)
    | Ast.Shr -> if y < 0 || y > 62 then Cbot else Cint (x asr y))
  | a, b -> (
    (* mixed/float arithmetic *)
    match (to_float a, to_float b) with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Cfloat (x +. y)
      | Ast.Sub -> Cfloat (x -. y)
      | Ast.Mul -> Cfloat (x *. y)
      | Ast.Div -> if y = 0.0 then Cbot else Cfloat (x /. y)
      | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr -> Cbot)
    | _ -> Cbot)

let eval_rel rel a b : bool option =
  let cmp =
    match (a, b) with
    | Cint x, Cint y -> Some (Int.compare x y)
    | a, b -> (
      match (to_float a, to_float b) with
      | Some x, Some y -> Some (Float.compare x y)
      | _ -> None)
  in
  Option.map
    (fun c ->
      match rel with
      | Ast.Eq -> c = 0
      | Ast.Ne -> c <> 0
      | Ast.Lt -> c < 0
      | Ast.Le -> c <= 0
      | Ast.Gt -> c > 0
      | Ast.Ge -> c >= 0)
    cmp

(** Run SCCP over [fn]. Parameters and loads are ⊥. *)
let analyze (fn : Ir.fn) : t =
  let uses = Hashtbl.create 64 in
  let add_use (v : Var.t) site =
    let cur = Option.value ~default:[] (Hashtbl.find_opt uses v.Var.id) in
    Hashtbl.replace uses v.Var.id (site :: cur)
  in
  Ir.iter_blocks fn (fun b ->
      List.iteri
        (fun idx instr -> List.iter (fun v -> add_use v (b.Ir.bid, Instr idx)) (Ir.instr_uses instr))
        b.Ir.instrs;
      List.iter (fun v -> add_use v (b.Ir.bid, Term)) (Ir.term_uses b.Ir.term));
  let st =
    {
      sfn = fn;
      vals = Array.make fn.Ir.nvars Ctop;
      uses;
      visited = Array.make (Ir.num_blocks fn) false;
      edge_exec = Hashtbl.create 64;
      flow_list = Queue.create ();
      ssa_list = Queue.create ();
    }
  in
  List.iter (fun (p : Var.t) -> st.vals.(p.Var.id) <- Cbot) fn.Ir.params;
  let operand_value = function
    | Ir.Cint n -> Cint n
    | Ir.Cfloat f -> Cfloat f
    | Ir.Ovar v -> st.vals.(v.Var.id)
  in
  let enqueue_uses (v : Var.t) =
    List.iter
      (fun site -> Queue.add site st.ssa_list)
      (Option.value ~default:[] (Hashtbl.find_opt st.uses v.Var.id))
  in
  let set (v : Var.t) nv =
    (* SCCP values only move down the lattice. *)
    let merged = meet st.vals.(v.Var.id) nv in
    let merged = if clat_equal st.vals.(v.Var.id) Ctop then nv else merged in
    if not (clat_equal st.vals.(v.Var.id) merged) then begin
      st.vals.(v.Var.id) <- merged;
      enqueue_uses v
    end
  in
  let eval_instr ~bid instr =
    match instr with
    | Ir.Store _ -> ()
    | Ir.Def (v, rhs) -> (
      match rhs with
      | Ir.Op a -> set v (operand_value a)
      | Ir.Binop (op, a, b) ->
        if v.Var.ty = Ast.Tfloat && (op = Ast.Div || op = Ast.Mod) then set v Cbot
        else begin
          (* float-typed arithmetic must use float semantics *)
          let va = operand_value a and vb = operand_value b in
          let va =
            if v.Var.ty = Ast.Tfloat then
              match va with Cint n -> Cfloat (float_of_int n) | x -> x
            else va
          in
          set v (eval_binop op va vb)
        end
      | Ir.Unop (Ir.Neg, a) -> (
        match operand_value a with
        | Cint n -> set v (Cint (-n))
        | Cfloat f -> set v (Cfloat (-.f))
        | x -> set v x)
      | Ir.Unop (Ir.Bnot, a) -> (
        match operand_value a with Cint n -> set v (Cint (lnot n)) | _ -> set v Cbot)
      | Ir.Cmp (rel, a, b) -> (
        let va = operand_value a and vb = operand_value b in
        match (va, vb) with
        | Ctop, _ | _, Ctop -> ()
        | _ -> (
          match eval_rel rel va vb with
          | Some r -> set v (Cint (if r then 1 else 0))
          | None -> set v Cbot))
      | Ir.Load _ | Ir.Call _ -> set v Cbot
      | Ir.Assertion { parent; _ } -> set v st.vals.(parent.Var.id)
      | Ir.Phi args ->
        let parts =
          List.filter_map
            (fun (pred, op) ->
              if Option.value ~default:false (Hashtbl.find_opt st.edge_exec (pred, bid))
              then Some (operand_value op)
              else None)
            args
        in
        if parts <> [] then set v (List.fold_left meet Ctop parts))
  in
  let eval_term ~bid term =
    let enqueue_edge dst = Queue.add (bid, dst) st.flow_list in
    match term with
    | Ir.Jump dst -> enqueue_edge dst
    | Ir.Ret _ -> ()
    | Ir.Br { rel; ba; bb; tdst; fdst } -> (
      let va = operand_value ba and vb = operand_value bb in
      match (va, vb) with
      | Ctop, _ | _, Ctop -> ()
      | _ -> (
        match eval_rel rel va vb with
        | Some true -> enqueue_edge tdst
        | Some false -> enqueue_edge fdst
        | None ->
          enqueue_edge tdst;
          enqueue_edge fdst))
  in
  let visit bid =
    let blk = Ir.block fn bid in
    if not st.visited.(bid) then begin
      st.visited.(bid) <- true;
      List.iteri (fun _ instr -> eval_instr ~bid instr) blk.Ir.instrs;
      eval_term ~bid blk.Ir.term
    end
    else
      List.iter
        (fun instr ->
          match instr with
          | Ir.Def (_, Ir.Phi _) -> eval_instr ~bid instr
          | Ir.Def _ | Ir.Store _ -> ())
        blk.Ir.instrs
  in
  st.visited.(Ir.entry_bid) <- false;
  Queue.add (-1, Ir.entry_bid) st.flow_list;
  let continue = ref true in
  while !continue do
    if not (Queue.is_empty st.flow_list) then begin
      let src, dst = Queue.pop st.flow_list in
      let first =
        not (Option.value ~default:false (Hashtbl.find_opt st.edge_exec (src, dst)))
      in
      Hashtbl.replace st.edge_exec (src, dst) true;
      if first then visit dst
    end
    else if not (Queue.is_empty st.ssa_list) then begin
      let bid, site = Queue.pop st.ssa_list in
      if st.visited.(bid) then begin
        match site with
        | Term -> eval_term ~bid (Ir.block fn bid).Ir.term
        | Instr idx -> (
          match List.nth_opt (Ir.block fn bid).Ir.instrs idx with
          | Some instr -> eval_instr ~bid instr
          | None -> ())
      end
    end
    else continue := false
  done;
  let decided = Hashtbl.create 16 in
  Ir.iter_blocks fn (fun b ->
      if st.visited.(b.Ir.bid) then
        match b.Ir.term with
        | Ir.Br { rel; ba; bb; _ } -> (
          match eval_rel rel (operand_value ba) (operand_value bb) with
          | Some dir -> Hashtbl.replace decided b.Ir.bid dir
          | None -> ())
        | Ir.Jump _ | Ir.Ret _ -> ());
  { fn; values = st.vals; executable_blocks = st.visited; decided_branches = decided }
