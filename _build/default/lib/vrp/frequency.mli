(** Block, edge and function execution-frequency estimation from branch
    probabilities (paper §6, Wu–Larus style): frequencies are propagated
    around the CFG and the call graph to a (capped) fixed point, giving the
    "apply optimizations in descending order of execution frequency"
    ordering the paper describes. *)

module Ir = Vrp_ir.Ir

type fn_freq = {
  fn : Ir.fn;
  block_freq : float array;  (** executions per invocation of the function *)
  edge_freq : (int * int, float) Hashtbl.t;
}

type t = {
  per_fn : (string, fn_freq) Hashtbl.t;
  call_freq : (string, float) Hashtbl.t;  (** invocations per run of main *)
}

(** Per-invocation frequencies of one analysed function. *)
val of_engine : Engine.t -> fn_freq

(** Whole-program frequencies from an interprocedural analysis. *)
val of_interproc : Ir.program -> Interproc.t -> t

val global_block_freq : t -> fname:string -> bid:int -> float option

(** All blocks hottest-first: [(function, block, global frequency)]. *)
val hottest_blocks : t -> (string * int * float) list
