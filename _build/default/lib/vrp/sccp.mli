(** Sparse conditional constant propagation (Wegman & Zadeck 1991): the
    mechanism VRP generalises, the baseline it is measured against, and a
    subsumption oracle for the tests. *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var

type clat = Ctop | Cint of int | Cfloat of float | Cbot

val clat_equal : clat -> clat -> bool
val meet : clat -> clat -> clat
val clat_to_string : clat -> string

type t = {
  fn : Ir.fn;
  values : clat array;  (** indexed by variable id *)
  executable_blocks : bool array;
  decided_branches : (int, bool) Hashtbl.t;
      (** branches SCCP folded: block id -> constant direction *)
}

val value : t -> Var.t -> clat

(** Run SCCP over one function (parameters and loads are ⊥). *)
val analyze : Ir.fn -> t
