(** Loop-carried expression derivation (paper §3.6): matches a loop-carried
    φ's SSA chain against the induction template
    [new = old ± {increments}; assert(new within bounds)] and produces the
    φ's whole value range — initial value, gcd-of-increments stride, final
    value from the termination assertion (including the first failing value,
    as in the paper's Figure 4). *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Value = Vrp_ranges.Value

type outcome = {
  value : Value.t;
  depends : Var.t list;
      (** variables consulted; the engine re-derives when any changes *)
  even_distribution : bool;
      (** false for geometric inductions: the range hull is sound but the
          even-distribution assumption is not, so branch probabilities on it
          are unreliable *)
}

(** Per-function context, built once and reused (keeps each attempt
    O(chain length)). *)
type ctx

val make_ctx : Ir.fn -> Vrp_ir.Loops.t -> ctx

(** Attempt derivation for φ [phi_var] with arguments [args] in block
    [phi_bid]; [None] when the chain does not match the template. *)
val attempt :
  ctx:ctx ->
  values:(Var.t -> Value.t) ->
  symbolic:bool ->
  phi_bid:int ->
  phi_var:Var.t ->
  args:(int * Ir.operand) list ->
  outcome option
