(** VRP as an optimizer (paper §6): probability-1 singleton ranges are
    constants, singleton symbolic ranges are copies, probability-0 edges are
    unreachable code. [rewrite] applies all three to a copy of the
    function. *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var

type report = {
  constants : (Var.t * int) list;
  copies : (Var.t * Var.t) list;  (** (variable, the variable it copies) *)
  decided_branches : (int * bool) list;  (** block id, constant direction *)
  unreachable_blocks : int list;
}

val find_report : Engine.t -> report

(** Substitute constants and copies into uses, fold decided branches, sweep
    unreachable blocks. The result is valid SSA. *)
val rewrite : Engine.t -> Ir.fn

val report_to_string : report -> string
