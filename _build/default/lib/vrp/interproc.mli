(** Interprocedural value range propagation (paper §3.7): a round-based
    whole-program driver where jump functions are the argument ranges
    observed at executable call sites and return-jump functions flow callee
    return ranges back. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value

type t = {
  results : (string, Engine.t) Hashtbl.t;  (** per reachable function *)
  param_env : (string, Value.t list) Hashtbl.t;
  return_env : (string, Value.t) Hashtbl.t;
  rounds : int;  (** rounds actually executed *)
}

val result : t -> string -> Engine.t option

val default_max_rounds : int

(** Whole-program analysis entered at [main].
    @raise Invalid_argument if the program has no [main]. *)
val analyze : ?config:Engine.config -> ?max_rounds:int -> Ir.program -> t
