(** Procedure cloning for calling-context-sensitive prediction (paper §3.7):
    callees whose call sites supply materially different argument ranges are
    duplicated per context and the call sites retargeted. *)

module Ir = Vrp_ir.Ir

type t = {
  program : Ir.program;  (** the cloned program *)
  origin_of : (string, string) Hashtbl.t;  (** clone name -> original name *)
  clones_made : int;
}

val default_max_clones_per_fn : int

(** Decide and apply cloning, driven by a prior interprocedural analysis. *)
val run : ?max_clones_per_fn:int -> Ir.program -> Interproc.t -> t
