(** End-to-end convenience pipeline shared by the CLI, examples, harness and
    tests: MiniC source → canonical SSA CFG → predictions. *)

module Ir = Vrp_ir.Ir
module Predictor = Vrp_predict.Predictor

type compiled = {
  source : string;
  ast : Vrp_lang.Ast.program;
  ssa : Ir.program;  (** the canonical SSA program all consumers share *)
  ssa_infos : (string, Vrp_ir.Ssa.info) Hashtbl.t;
}

(** Parse, check, lower, clean, split, convert to SSA and validate.
    @raise front-end errors or {!Vrp_ir.Check.Violation}. *)
val compile : string -> compiled

(** Branch predictions from (by default interprocedural) VRP; unreachable
    branches fall back to Ball–Larus so the map is total. *)
val vrp_predictions :
  ?config:Engine.config ->
  ?interprocedural:bool ->
  Ir.program ->
  Predictor.prediction * Interproc.t option

(** The six predictors of the paper's Figures 7/8, keyed by legend name.
    [train] is the profiling predictor's training profile. *)
val all_predictors :
  train:Vrp_profile.Interp.profile ->
  Ir.program ->
  (string * Predictor.prediction) list
