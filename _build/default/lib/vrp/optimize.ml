(** VRP as an optimizer (paper §6).

    "value range propagation subsumes both constant propagation and copy
    propagation. If a variable's final value range is a single constant such
    as [1[7:7:0]], then the variable's value is constant for all possible
    executions ... Similarly, a variable x whose value range is the single
    symbolic range of another variable such as [1[y:y:0]] is simply a copy
    of y ... Just as constant and copy propagation identify unreachable
    code, so does value range propagation — branches to unreachable code
    have a probability of 0."

    [report] extracts those facts from an analysis; [rewrite] applies them:
    constants and copies are substituted into uses, statically-decided
    branches are folded to jumps, and unreachable blocks are swept. The
    result remains valid SSA (checked by the test suite). *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Value = Vrp_ranges.Value
module Config = Vrp_ranges.Config

type report = {
  constants : (Var.t * int) list;
  copies : (Var.t * Var.t) list;  (** (variable, the variable it copies) *)
  decided_branches : (int * bool) list;  (** block id, constant direction *)
  unreachable_blocks : int list;
}

let find_report (res : Engine.t) : report =
  let constants = ref [] and copies = ref [] in
  Ir.iter_blocks res.Engine.fn (fun b ->
      if res.Engine.visited.(b.Ir.bid) then
        List.iter
          (fun instr ->
            match instr with
            | Ir.Def (v, rhs) -> (
              let value = res.Engine.values.(v.Var.id) in
              match Value.as_constant value with
              | Some n -> (
                (* a def that was already a literal constant is not a find *)
                match rhs with
                | Ir.Op (Ir.Cint _) -> ()
                | _ -> constants := (v, n) :: !constants)
              | None -> (
                match Value.as_copy value with
                | Some src when not (Var.equal src v) -> copies := (v, src) :: !copies
                | Some _ | None -> ()))
            | Ir.Store _ -> ())
          b.Ir.instrs);
  let decided = ref [] in
  Hashtbl.iter
    (fun bid p ->
      if p <= Config.eps then decided := (bid, false) :: !decided
      else if p >= 1.0 -. Config.eps then decided := (bid, true) :: !decided)
    res.Engine.branch_probs;
  let unreachable = ref [] in
  Array.iteri
    (fun bid visited -> if not visited then unreachable := bid :: !unreachable)
    res.Engine.visited;
  {
    constants = List.rev !constants;
    copies = List.rev !copies;
    decided_branches = List.sort compare !decided;
    unreachable_blocks = List.sort compare !unreachable;
  }

(** Apply the report to a {e copy} of the function: substitute constants and
    copies into operands, fold decided branches, drop unreachable blocks.
    Returns the rewritten function. *)
let rewrite (res : Engine.t) : Ir.fn =
  let report = find_report res in
  let const_tbl = Hashtbl.create 16 and copy_tbl = Hashtbl.create 16 in
  List.iter (fun ((v : Var.t), n) -> Hashtbl.replace const_tbl v.Var.id n) report.constants;
  List.iter (fun ((v : Var.t), src) -> Hashtbl.replace copy_tbl v.Var.id src) report.copies;
  (* Resolve copy chains down to their final source. *)
  let rec chase (v : Var.t) depth : Var.t =
    if depth > 64 then v
    else begin
      match Hashtbl.find_opt copy_tbl v.Var.id with
      | Some src -> chase src (depth + 1)
      | None -> v
    end
  in
  let subst_operand (op : Ir.operand) : Ir.operand =
    match op with
    | Ir.Ovar v -> (
      match Hashtbl.find_opt const_tbl v.Var.id with
      | Some n -> Ir.Cint n
      | None ->
        let root = chase v 0 in
        if Var.equal root v then op else Ir.Ovar root)
    | Ir.Cint _ | Ir.Cfloat _ -> op
  in
  let fn = res.Engine.fn in
  let decided = Hashtbl.create 8 in
  List.iter (fun (bid, dir) -> Hashtbl.replace decided bid dir) report.decided_branches;
  let blocks =
    Array.map
      (fun (b : Ir.block) ->
        let instrs =
          List.map
            (fun instr ->
              match instr with
              | Ir.Def (v, rhs) ->
                let rhs =
                  match rhs with
                  | Ir.Op a -> Ir.Op (subst_operand a)
                  | Ir.Binop (op, a, c) -> Ir.Binop (op, subst_operand a, subst_operand c)
                  | Ir.Unop (op, a) -> Ir.Unop (op, subst_operand a)
                  | Ir.Cmp (op, a, c) -> Ir.Cmp (op, subst_operand a, subst_operand c)
                  | Ir.Load (arr, idx) -> Ir.Load (arr, subst_operand idx)
                  | Ir.Call (name, args) -> Ir.Call (name, List.map subst_operand args)
                  | Ir.Phi args ->
                    Ir.Phi (List.map (fun (p, a) -> (p, subst_operand a)) args)
                  | Ir.Assertion { parent; arel; abound } ->
                    Ir.Assertion { parent; arel; abound = subst_operand abound }
                in
                Ir.Def (v, rhs)
              | Ir.Store (arr, idx, v) -> Ir.Store (arr, subst_operand idx, subst_operand v))
            b.Ir.instrs
        in
        let term =
          match b.Ir.term with
          | Ir.Br { rel; ba; bb; tdst; fdst } -> (
            let ba = subst_operand ba and bb = subst_operand bb in
            match Hashtbl.find_opt decided b.Ir.bid with
            | Some true -> Ir.Jump tdst
            | Some false -> Ir.Jump fdst
            | None -> Ir.Br { rel; ba; bb; tdst; fdst })
          | Ir.Jump _ as t -> t
          | Ir.Ret (Some op) -> Ir.Ret (Some (subst_operand op))
          | Ir.Ret None -> Ir.Ret None
        in
        { b with Ir.instrs; term; preds = [] })
      fn.Ir.blocks
  in
  let fn' = { fn with Ir.blocks } in
  Ir.recompute_preds fn';
  (* Remove φ arguments for predecessors that no longer reach the block, then
     sweep unreachable blocks. *)
  Ir.iter_blocks fn' (fun b ->
      b.Ir.instrs <-
        List.filter_map
          (fun instr ->
            match instr with
            | Ir.Def (v, Ir.Phi args) -> (
              let args = List.filter (fun (p, _) -> List.mem p b.Ir.preds) args in
              match args with
              | [] -> None  (* block is unreachable; swept below *)
              | [ (_, single) ] -> Some (Ir.Def (v, Ir.Op single))
              | args -> Some (Ir.Def (v, Ir.Phi args)))
            | instr -> Some instr)
          b.Ir.instrs);
  Vrp_ir.Build.cleanup fn'

let report_to_string (r : report) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "constants: %d, copies: %d, decided branches: %d, unreachable blocks: %d\n"
       (List.length r.constants) (List.length r.copies)
       (List.length r.decided_branches)
       (List.length r.unreachable_blocks));
  List.iter
    (fun ((v : Var.t), n) ->
      Buffer.add_string buf (Printf.sprintf "  const %s = %d\n" (Var.to_string v) n))
    r.constants;
  List.iter
    (fun ((v : Var.t), (src : Var.t)) ->
      Buffer.add_string buf
        (Printf.sprintf "  copy  %s = %s\n" (Var.to_string v) (Var.to_string src)))
    r.copies;
  Buffer.contents buf
