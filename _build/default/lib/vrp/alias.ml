(** Array-access independence from value ranges (paper §6).

    "Using value range propagation it is sometimes possible to show that the
    ranges of the indices of two array accesses cannot overlap. As a result,
    these two accesses cannot alias each other. This analysis is much more
    limited than sophisticated data dependency analysis ... However it does
    offer a simple false-dependency breaking mechanism."

    Two accesses to the same array are declared independent when the
    intersection of their (resolved, numeric) index range sets is provably
    empty — exact over strided ranges via the progression CRT intersection. *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Value = Vrp_ranges.Value
module Srange = Vrp_ranges.Srange
module Progression = Vrp_ranges.Progression

type access = { block : int; index_value : Value.t; is_store : bool; array : string }

type verdict = Disjoint | May_alias

type pair = { a : access; b : access; verdict : verdict }

type report = { accesses : access list; pairs : pair list; disjoint : int }

(* Do two values certainly denote disjoint index sets? *)
let certainly_disjoint (va : Value.t) (vb : Value.t) : bool =
  match (va, vb) with
  | Value.Ranges ra, Value.Ranges rb ->
    List.for_all
      (fun (x : Srange.t) ->
        List.for_all
          (fun (y : Srange.t) ->
            match (Srange.kind x, Srange.kind y, Srange.prog x, Srange.prog y) with
            | Srange.Numeric, Srange.Numeric, Some px, Some py ->
              Progression.count_common px py = 0
            | Srange.Same_base bx, Srange.Same_base by, Some px, Some py
              when Var.equal bx by ->
              Progression.count_common px py = 0
            | _ -> false)
          rb)
      ra
  | (Value.Top | Value.Bottom | Value.Ranges _), _ -> false

(** Analyse all array accesses of the function in [res]; every pair touching
    the same array is classified. *)
let analyze (res : Engine.t) : report =
  let fn = res.Engine.fn in
  let lookup (v : Var.t) = res.Engine.values.(v.Var.id) in
  let index_value (op : Ir.operand) : Value.t =
    match op with
    | Ir.Cint n -> Value.const_int n
    | Ir.Cfloat _ -> Value.bottom
    | Ir.Ovar v -> Value.subst (lookup v) ~lookup
  in
  let accesses = ref [] in
  Ir.iter_blocks fn (fun b ->
      if res.Engine.visited.(b.Ir.bid) then
        List.iter
          (fun instr ->
            match instr with
            | Ir.Def (_, Ir.Load (array, index)) ->
              accesses :=
                { block = b.Ir.bid; index_value = index_value index; is_store = false; array }
                :: !accesses
            | Ir.Store (array, index, _) ->
              accesses :=
                { block = b.Ir.bid; index_value = index_value index; is_store = true; array }
                :: !accesses
            | Ir.Def _ -> ())
          b.Ir.instrs);
  let accesses = List.rev !accesses in
  let pairs = ref [] in
  let rec all_pairs = function
    | [] -> ()
    | a :: rest ->
      List.iter
        (fun b ->
          if String.equal a.array b.array && (a.is_store || b.is_store) then begin
            let verdict =
              if certainly_disjoint a.index_value b.index_value then Disjoint
              else May_alias
            in
            pairs := { a; b; verdict } :: !pairs
          end)
        rest;
      all_pairs rest
  in
  all_pairs accesses;
  let pairs = List.rev !pairs in
  let disjoint = List.length (List.filter (fun p -> p.verdict = Disjoint) pairs) in
  { accesses; pairs; disjoint }
