(** Array-access independence from value ranges (paper §6): two accesses to
    one array are independent when their index range sets have a provably
    empty intersection (exact over strided ranges via CRT). *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value

type access = { block : int; index_value : Value.t; is_store : bool; array : string }

type verdict = Disjoint | May_alias

type pair = { a : access; b : access; verdict : verdict }

type report = { accesses : access list; pairs : pair list; disjoint : int }

val certainly_disjoint : Value.t -> Value.t -> bool

(** Classify every same-array pair involving at least one store. *)
val analyze : Engine.t -> report
