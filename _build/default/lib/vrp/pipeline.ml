(** End-to-end convenience pipeline: MiniC source → canonical SSA CFG →
    predictions. Shared by the CLI driver, the examples, the evaluation
    harness and the tests so they all agree on what "the program" is. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value
module Predictor = Vrp_predict.Predictor
module Heuristics = Vrp_predict.Heuristics

type compiled = {
  source : string;
  ast : Vrp_lang.Ast.program;
  ssa : Ir.program;  (** the canonical SSA program all consumers share *)
  ssa_infos : (string, Vrp_ir.Ssa.info) Hashtbl.t;
}

(** Parse, check, lower, clean, split, convert to SSA and validate.
    @raise Vrp_lang front-end errors or {!Vrp_ir.Check.Violation}. *)
let compile (source : string) : compiled =
  let ast = Vrp_lang.Front.parse_and_check source in
  let cfg = Vrp_ir.Build.program ast in
  let ssa, ssa_infos = Vrp_ir.Ssa.transform_program cfg in
  Vrp_ir.Check.check_ssa_program ssa;
  { source; ast; ssa; ssa_infos }

(** Branch predictions from (interprocedural) value range propagation.
    Unreachable branches fall back to the Ball–Larus estimate so the map is
    total, like the other predictors'. *)
let vrp_predictions ?(config = Engine.default_config) ?(interprocedural = true)
    (ssa : Ir.program) : Predictor.prediction * Interproc.t option =
  let out = Hashtbl.create 64 in
  let fill (fn : Ir.fn) (res : Engine.t option) =
    let hctx = lazy (Heuristics.make_ctx fn) in
    Array.iter
      (fun (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Br br ->
          let p =
            match res with
            | Some res -> (
              match Engine.branch_prob res b.Ir.bid with
              | Some p -> p
              | None -> Heuristics.ball_larus (Lazy.force hctx) ~src:b.Ir.bid br)
            | None -> Heuristics.ball_larus (Lazy.force hctx) ~src:b.Ir.bid br
          in
          Hashtbl.replace out (fn.Ir.fname, b.Ir.bid) p
        | Ir.Jump _ | Ir.Ret _ -> ())
      fn.Ir.blocks
  in
  if interprocedural then begin
    let ipa = Interproc.analyze ~config ssa in
    List.iter (fun fn -> fill fn (Interproc.result ipa fn.Ir.fname)) ssa.Ir.fns;
    (out, Some ipa)
  end
  else begin
    List.iter (fun fn -> fill fn (Some (Engine.analyze ~config fn))) ssa.Ir.fns;
    (out, None)
  end

(** All the predictors of the paper's Figures 7/8, keyed by the legend names
    used in the harness output. [train] is the profiling predictor's
    training run. *)
let all_predictors ~(train : Vrp_profile.Interp.profile) (ssa : Ir.program) :
    (string * Predictor.prediction) list =
  let vrp_full, _ = vrp_predictions ~config:Engine.default_config ssa in
  let vrp_numeric, _ = vrp_predictions ~config:Engine.numeric_only_config ssa in
  [
    ("profiling", Predictor.profiling train ssa);
    ("ball-larus", Predictor.ball_larus ssa);
    ("vrp", vrp_full);
    ("vrp-numeric", vrp_numeric);
    ("90/50", Predictor.ninety_fifty ssa);
    ("random", Predictor.random ssa);
  ]
