(* vrpd — the long-running analysis daemon.

   Listens on a Unix-domain socket (default) or TCP (--listen HOST:PORT)
   and serves vrpc's analysis operations from resident state: a warm
   domain pool, an always-warm summary cache, and per-session incremental
   re-analysis. Clients talk to it with `vrpc remote ... --socket ADDR`.

   Exit codes: 0 clean shutdown (signal or shutdown request); 1 failed to
   bind or serve; 124 malformed command line. *)

open Cmdliner
module Server = Vrp_server.Server
module Diag = Vrp_diag.Diag

let run socket listen jobs deadline_ms fault =
  let settings = { Server.jobs; deadline_ms; fault } in
  let server = Server.create ~settings () in
  let listen_fd, where, cleanup =
    match listen with
    | Some addr -> (
      match String.rindex_opt addr ':' with
      | None ->
        prerr_endline "vrpd: --listen wants HOST:PORT";
        exit 1
      | Some i ->
        let host = String.sub addr 0 i in
        let host = if host = "" then "127.0.0.1" else host in
        let port = int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) in
        (Server.listen_tcp ~host ~port, Printf.sprintf "%s:%d" host port, fun () -> ()))
    | None ->
      let path = Option.value ~default:(Vrp_server.Client.default_address ()) socket in
      ( Server.listen_unix path,
        path,
        fun () -> try Unix.unlink path with _ -> () )
  in
  let stop_signal _ = Server.stop server in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
  (* A client vanishing mid-response must not kill the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.eprintf "vrpd %s: listening on %s (%d job%s%s)\n%!"
    Vrp_server.Version.version where jobs
    (if jobs = 1 then "" else "s")
    (match deadline_ms with
    | Some ms -> Printf.sprintf ", %dms deadline" ms
    | None -> "");
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with _ -> ());
      cleanup ();
      Server.shutdown server)
    (fun () -> Server.serve server listen_fd);
  prerr_endline "vrpd: stopped"

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default: vrpd.sock in the temp dir).")

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"HOST:PORT"
        ~doc:"Listen on TCP instead of a Unix-domain socket.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Width of the resident analysis domain pool. Results are \
           byte-identical to --jobs 1.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request analysis deadline: a request running longer has its \
           remaining functions demoted to the Ball–Larus fallback and \
           completes with the degradation in its diagnostics.")

let fault_arg =
  let fault_conv =
    let parse s =
      match Diag.Fault.parse s with Ok f -> Ok f | Error msg -> Error (`Msg msg)
    in
    let print ppf f = Format.pp_print_string ppf (Diag.Fault.to_string f) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "inject-fault" ] ~docv:"SPEC" ~docs:"TESTING (HIDDEN)"
        ~doc:
          "Daemon-wide deterministic fault injection (same specs as vrpc); \
           a request's own fault param overrides it.")

let cmd =
  Cmd.v
    (Cmd.info "vrpd" ~version:Vrp_server.Version.version
       ~doc:"Persistent value-range-propagation analysis server"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"clean shutdown (signal or shutdown request).";
           Cmd.Exit.info 1 ~doc:"failed to bind or serve.";
           Cmd.Exit.info 124 ~doc:"malformed command line.";
         ])
    Term.(const run $ socket_arg $ listen_arg $ jobs_arg $ deadline_arg $ fault_arg)

let () = exit (Cmd.eval cmd)
