(* vrpd — the long-running analysis daemon.

   Listens on a Unix-domain socket (default) or TCP (--listen HOST:PORT)
   and serves vrpc's analysis operations from resident state: a warm
   domain pool, an always-warm summary cache, and per-session incremental
   re-analysis. Clients talk to it with `vrpc remote ... --socket ADDR`.

   With --fleet N the same binary becomes a front door: it spawns N vrpd
   worker child processes on per-slot sockets in --fleet-dir, routes each
   request to a worker sharded by session/source digest, health-checks
   them with ping, and crash-replaces dead or wedged workers. Workers
   share one on-disk summary-cache tier when given --cache DIR.

   Exit codes: 0 clean shutdown (signal or shutdown request); 1 failed to
   bind or serve; 3 a fleet worker degraded under --strict; 124 malformed
   command line. *)

open Cmdliner
module Server = Vrp_server.Server
module Fleet = Vrp_server.Fleet
module Protocol = Vrp_server.Protocol
module Diag = Vrp_diag.Diag

(* Each fleet worker is this same binary in plain single-daemon mode; a
   stale socket left by a SIGKILLed predecessor is reclaimed by the
   child's own listen_unix connect-probe. *)
let process_spawner ~jobs ~deadline_ms ~cache_dir ~model_path ~worker_fault
    ~(limits : Vrp_server.Admit.limits) : Fleet.spawner =
 fun ~wid:_ ~incarnation:_ ~sock ->
  let args =
    [ Sys.executable_name; "--socket"; sock; "--jobs"; string_of_int jobs ]
    @ (match deadline_ms with
      | Some ms -> [ "--deadline-ms"; string_of_int ms ]
      | None -> [])
    @ (match cache_dir with Some d -> [ "--cache"; d ] | None -> [])
    @ (match model_path with Some m -> [ "--model"; m ] | None -> [])
    @ [
        "--max-conns"; string_of_int limits.Vrp_server.Admit.max_conns;
        "--max-inflight"; string_of_int limits.Vrp_server.Admit.max_inflight;
        "--idle-timeout-ms"; string_of_int limits.Vrp_server.Admit.idle_timeout_ms;
      ]
    @
    match worker_fault with
    | Some f -> [ "--inject-fault"; Diag.Fault.to_string f ]
    | None -> []
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let pid =
    Unix.create_process Sys.executable_name (Array.of_list args) devnull
      Unix.stderr Unix.stderr
  in
  Unix.close devnull;
  let reaped = ref false in
  {
    Fleet.sock;
    describe = Printf.sprintf "vrpd pid %d" pid;
    kill = (fun () -> try Unix.kill pid Sys.sigkill with _ -> ());
    alive =
      (fun () ->
        if !reaped then false
        else
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> true
          | _ ->
            reaped := true;
            (* A SIGKILLed worker leaves its socket file behind; reclaim
               it so the replacement's bind does not race the probe. *)
            (try Unix.unlink sock with _ -> ());
            false
          | exception _ ->
            reaped := true;
            false);
  }

let bind_listener ~socket ~listen =
  match listen with
  | Some addr -> (
    match Protocol.parse_hostport addr with
    | Error msg ->
      prerr_endline ("vrpd: --listen " ^ msg);
      exit 1
    | Ok (host, port) ->
      (Server.listen_tcp ~host ~port, Printf.sprintf "%s:%d" host port, fun () -> ()))
  | None ->
    let path = Option.value ~default:(Vrp_server.Client.default_address ()) socket in
    (Server.listen_unix path, path, fun () -> try Unix.unlink path with _ -> ())

let install_signals stop =
  let stop_signal _ = stop () in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
  (* A client vanishing mid-response must not kill the daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let run_single ~socket ~listen ~jobs ~deadline_ms ~fault ~cache_dir ~model_path
    ~limits =
  let settings = { Server.jobs; deadline_ms; fault; cache_dir; model_path; limits } in
  let server =
    match Server.create ~settings () with
    | server -> server
    | exception Failure msg ->
      prerr_endline ("vrpd: " ^ msg);
      exit 1
  in
  let listen_fd, where, cleanup = bind_listener ~socket ~listen in
  install_signals (fun () -> Server.stop server);
  Printf.eprintf "vrpd %s: listening on %s (%d job%s%s)\n%!"
    Vrp_server.Version.version where jobs
    (if jobs = 1 then "" else "s")
    (match deadline_ms with
    | Some ms -> Printf.sprintf ", %dms deadline" ms
    | None -> "");
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with _ -> ());
      cleanup ();
      Server.shutdown server)
    (fun () -> Server.serve server listen_fd);
  prerr_endline "vrpd: stopped"

let run_fleet ~socket ~listen ~jobs ~deadline_ms ~fault ~cache_dir ~model_path
    ~limits ~size ~fleet_dir ~strict =
  (* kill-worker is the front door's chaos fault; every other spec (an
     analysis fault, slow-worker) belongs daemon-wide in the workers. *)
  let fleet_fault, worker_fault =
    match fault with
    | Some (Diag.Fault.Kill_worker _) as f -> (f, None)
    | f -> (None, f)
  in
  let dir =
    Option.value fleet_dir
      ~default:(Filename.concat (Filename.get_temp_dir_name ()) "vrpd-fleet")
  in
  let settings =
    {
      (Fleet.default_settings ~dir) with
      Fleet.size;
      strict;
      fault = fleet_fault;
      limits;
    }
  in
  let fleet =
    Fleet.create ~settings
      ~spawner:
        (process_spawner ~jobs ~deadline_ms ~cache_dir ~model_path ~worker_fault
           ~limits)
      ()
  in
  let listen_fd, where, cleanup = bind_listener ~socket ~listen in
  install_signals (fun () -> Fleet.stop fleet);
  Printf.eprintf "vrpd %s: fleet of %d worker(s) in %s, front door on %s\n%!"
    Vrp_server.Version.version size dir where;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close listen_fd with _ -> ());
      cleanup ();
      Fleet.shutdown fleet)
    (fun () -> Fleet.serve fleet listen_fd);
  if strict && Fleet.degraded fleet then begin
    prerr_endline "vrpd: fleet degraded under --strict";
    exit 3
  end;
  prerr_endline "vrpd: stopped"

let run socket listen jobs deadline_ms fault cache_dir model_path max_conns
    max_inflight idle_timeout_ms fleet fleet_dir strict =
  if max_conns < 1 || max_inflight < 1 || idle_timeout_ms < 0 then begin
    prerr_endline
      "vrpd: --max-conns and --max-inflight want >= 1, --idle-timeout-ms >= 0";
    exit 1
  end;
  let limits =
    {
      Vrp_server.Admit.default_limits with
      Vrp_server.Admit.max_conns;
      max_inflight;
      idle_timeout_ms;
    }
  in
  match fleet with
  | None ->
    run_single ~socket ~listen ~jobs ~deadline_ms ~fault ~cache_dir ~model_path
      ~limits
  | Some size ->
    if size < 1 then begin
      prerr_endline "vrpd: --fleet wants at least 1 worker";
      exit 1
    end;
    run_fleet ~socket ~listen ~jobs ~deadline_ms ~fault ~cache_dir ~model_path
      ~limits ~size ~fleet_dir ~strict

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default: vrpd.sock in the temp dir).")

let listen_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "listen" ] ~docv:"HOST:PORT"
        ~doc:
          "Listen on TCP instead of a Unix-domain socket. The port is \
           whatever follows the last colon, so IPv6 literals like \
           [::1]:7001 work.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Width of the resident analysis domain pool (per worker under \
           --fleet). Results are byte-identical to --jobs 1.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request analysis deadline: a request running longer has its \
           remaining functions demoted to the Ball–Larus fallback and \
           completes with the degradation in its diagnostics.")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Disk tier for the summary cache. Under --fleet every worker \
           points at the same directory and shares it (advisory locks).")

let model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "model" ] ~docv:"FILE"
        ~doc:
          "Learned fallback model (.vrpmodel) loaded once at startup and \
           served warm by every request; predictions for branches VRP \
           cannot decide then come from it instead of Ball\xe2\x80\x93Larus. A bad \
           file fails startup. Under --fleet the path is passed to every \
           worker.")

let max_conns_arg =
  Arg.(
    value
    & opt int Vrp_server.Admit.default_limits.Vrp_server.Admit.max_conns
    & info [ "max-conns" ] ~docv:"N"
        ~doc:
          "Concurrent connection bound (per daemon). A connection over the \
           bound is answered with one structured busy response carrying \
           retry_after_ms and closed — accept-then-shed — instead of \
           spawning a handler thread.")

let max_inflight_arg =
  Arg.(
    value
    & opt int Vrp_server.Admit.default_limits.Vrp_server.Admit.max_inflight
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:
          "Concurrent analysis-request bound (per daemon). Requests over \
           the bound wait briefly in a bounded queue, then are shed with a \
           busy response; vrpc remote retries them after retry_after_ms.")

let idle_timeout_arg =
  Arg.(
    value
    & opt int Vrp_server.Admit.default_limits.Vrp_server.Admit.idle_timeout_ms
    & info [ "idle-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-connection stall budget: a connection idle or stalled \
           mid-frame longer than this is closed by the sweeper (and by \
           SO_RCVTIMEO/SO_SNDTIMEO), so slow or dead clients cannot pin \
           handler threads. 0 disables.")

let fleet_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fleet" ] ~docv:"N"
        ~doc:
          "Fleet mode: spawn N vrpd worker processes and serve as their \
           front-door router; dead or wedged workers are crash-replaced \
           with a bounded restart budget.")

let fleet_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fleet-dir" ] ~docv:"DIR"
        ~doc:
          "Directory for the fleet's per-worker sockets (default: \
           vrpd-fleet in the temp dir).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Fleet mode: stop serving and exit 3 when any worker slot \
           exhausts its restart budget, instead of routing around it.")

let fault_arg =
  let fault_conv =
    let parse s =
      match Diag.Fault.parse s with Ok f -> Ok f | Error msg -> Error (`Msg msg)
    in
    let print ppf f = Format.pp_print_string ppf (Diag.Fault.to_string f) in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "inject-fault" ] ~docv:"SPEC" ~docs:"TESTING (HIDDEN)"
        ~doc:
          "Daemon-wide deterministic fault injection (same specs as vrpc); \
           a request's own fault param overrides it. Under --fleet, \
           kill-worker:N stays in the front door and every other spec is \
           passed to the workers.")

let cmd =
  Cmd.v
    (Cmd.info "vrpd" ~version:Vrp_server.Version.version
       ~doc:"Persistent value-range-propagation analysis server"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"clean shutdown (signal or shutdown request).";
           Cmd.Exit.info 1 ~doc:"failed to bind or serve.";
           Cmd.Exit.info 3 ~doc:"a fleet worker degraded under --strict.";
           Cmd.Exit.info 124 ~doc:"malformed command line.";
         ])
    Term.(
      const run $ socket_arg $ listen_arg $ jobs_arg $ deadline_arg $ fault_arg
      $ cache_arg $ model_arg $ max_conns_arg $ max_inflight_arg
      $ idle_timeout_arg $ fleet_arg $ fleet_dir_arg $ strict_arg)

let () = exit (Cmd.eval cmd)
