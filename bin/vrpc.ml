(* vrpc — command-line driver for the value-range-propagation tool chain.

   Input programs come from a MiniC file or from the built-in benchmark
   suite (-b NAME). Subcommands expose each stage: AST and SSA dumps, value
   ranges, branch predictions, profiled execution, predictor-vs-observed
   comparison, and the paper's client optimizations.

   Exit codes: 0 success; 1 bad input program or internal analysis error;
   2 usage error (no input given); 3 analysis degraded under --strict;
   124 malformed command line (cmdliner's standard). In batch mode the
   per-severity codes are: 2 when any file failed (front-end error or a
   crashed task — the batch still completes and reports every other file),
   3 under --strict when no file failed but some analysis degraded. *)

open Cmdliner

module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Interp = Vrp_profile.Interp
module Diag = Vrp_diag.Diag
module Ops = Vrp_server.Ops
module Json = Vrp_server.Json
module Client = Vrp_server.Client
module Protocol = Vrp_server.Protocol

(* --- Program source selection --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_source file bench =
  match (file, bench) with
  | Some path, None -> Ok (read_file path)
  | None, Some name -> (
    match Vrp_suite.Suite.find name with
    | Some b -> Ok b.Vrp_suite.Suite.source
    | None ->
      Error
        (Printf.sprintf "unknown benchmark %S; available: %s" name
           (String.concat ", "
              (List.map (fun (b : Vrp_suite.Suite.benchmark) -> b.name)
                 Vrp_suite.Suite.benchmarks))))
  | Some _, Some _ -> Error "give either FILE or -b NAME, not both"
  | None, None -> Error "no input: give a FILE or -b NAME"

(* Compilation is total at this boundary: front-end errors, IR-check
   violations and internal crashes all become a one-line message and exit 1
   instead of an uncaught backtrace. *)
let with_source file bench k =
  match load_source file bench with
  | Error msg ->
    prerr_endline ("vrpc: " ^ msg);
    exit 2
  | Ok source -> (
    match Pipeline.compile_result source with
    | Ok compiled -> k compiled
    | Error d ->
      prerr_endline ("vrpc: " ^ d.Diag.message);
      exit 1)

(* --- Common arguments --- *)

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"MiniC source file.")

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Use a built-in suite benchmark.")

let numeric_arg =
  Arg.(
    value & flag
    & info [ "numeric-only" ] ~doc:"Disable symbolic ranges (paper's numeric configuration).")

let fn_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "function" ] ~docv:"FN" ~doc:"Restrict output to one function.")

let config_of_flags numeric =
  if numeric then Engine.numeric_only_config else Engine.default_config

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Analyse with $(docv) concurrent domains (SCC waves for a single \
           program, whole files in batch mode). Results are byte-identical \
           to --jobs 1.")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Persist function summaries content-addressed under $(docv); warm \
           runs skip re-analysing unchanged functions.")

(* --- Diagnostics / resilience options --- *)

(* (diagnostics, strict, fault spec); shared by the analysis subcommands. *)
let diag_args =
  let diagnostics =
    Arg.(
      value & flag
      & info [ "diagnostics" ]
          ~doc:
            "Print the structured diagnostics report (degradations, \
             heuristic fallbacks, widenings) to stderr after the output.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit 3 when the analysis degraded: a function crashed, ran out \
             of fuel or timed out and fell back to heuristics.")
  in
  let fault_conv =
    let parse s =
      match Diag.Fault.parse s with
      | Ok f -> Ok f
      | Error msg -> Error (`Msg msg)
    in
    let print ppf f = Format.pp_print_string ppf (Diag.Fault.to_string f) in
    Arg.conv (parse, print)
  in
  let fault =
    (* Hidden from the manual's visible sections: a deterministic
       fault-injection hook for exercising the degradation paths. *)
    Arg.(
      value
      & opt (some fault_conv) None
      & info [ "inject-fault" ] ~docv:"SPEC" ~docs:"TESTING (HIDDEN)"
          ~doc:
            "Inject a deterministic fault: $(b,crash:FN), $(b,fuel:FN), \
             $(b,timeout:FN), $(b,steps:N), $(b,hang:FN), $(b,flaky:FN:K), \
             $(b,crash-file:NAME), $(b,corrupt-cache:N), \
             $(b,torn-journal:N) or $(b,skew:FN). Under $(b,remote), also \
             the client-side transport chaos $(b,flood-conns:N) and \
             $(b,stall-frame:MS).")
  in
  Term.(const (fun d s f -> (d, s, f)) $ diagnostics $ strict $ fault)

(* Run [k] with a diagnostics report and a fault-patched engine config,
   then render the report and apply --strict. *)
let with_diag (diagnostics, strict, fault) config k =
  let report = Diag.create () in
  let config = { config with Engine.fault } in
  k ~report ~config;
  if diagnostics then prerr_string (Diag.render report);
  if strict && Diag.degraded report then exit 3

let select_fns (p : Ir.program) = function
  | None -> p.Ir.fns
  | Some name -> List.filter (fun (fn : Ir.fn) -> String.equal fn.Ir.fname name) p.Ir.fns

(* --- Subcommands --- *)

let dump_ast file bench =
  with_source file bench (fun c ->
      print_string (Vrp_lang.Pretty.program_to_string c.Pipeline.ast))

let dump_ir file bench fn_filter =
  with_source file bench (fun c ->
      List.iter
        (fun fn -> print_string (Ir.fn_to_string fn))
        (select_fns c.Pipeline.ssa fn_filter))

let ranges file bench numeric fn_filter dopts =
  with_source file bench (fun c ->
      with_diag dopts (config_of_flags numeric) (fun ~report ~config ->
      let ipa = Vrp_core.Interproc.analyze ~config ~report c.Pipeline.ssa in
      List.iter
        (fun (fn : Ir.fn) ->
          match Vrp_core.Interproc.result ipa fn.Ir.fname with
          | None -> (
            match Vrp_core.Interproc.failure ipa fn.Ir.fname with
            | Some why -> Printf.printf "%s: analysis demoted (%s)\n" fn.Ir.fname why
            | None -> Printf.printf "%s: unreachable from main\n" fn.Ir.fname)
          | Some res ->
            Printf.printf "function %s:\n" fn.Ir.fname;
            Ir.iter_blocks fn (fun b ->
                List.iter
                  (fun instr ->
                    match instr with
                    | Ir.Def (v, _) ->
                      Printf.printf "  %-12s %s\n" (Vrp_ir.Var.to_string v)
                        (Vrp_ranges.Value.to_string (Engine.value res v))
                    | Ir.Store _ -> ())
                  b.Ir.instrs))
        (select_fns c.Pipeline.ssa fn_filter)))

(* Print an Ops outcome exactly as the in-line implementation used to:
   report on stdout, diagnostics/counters on stderr, code as exit code. *)
let print_outcome (o : Ops.outcome) =
  print_string o.Ops.out;
  prerr_string o.Ops.err;
  if o.Ops.code <> 0 then exit o.Ops.code

let opts_of ?(jobs = 1) ?model numeric (diagnostics, strict, fault) =
  let model =
    match model with Some path -> Ops.Model_file path | None -> Ops.No_model
  in
  { Ops.default_opts with Ops.numeric; jobs; diagnostics; strict; fault; model }

(* Resolve the input source, mapping selection errors to exit 2. *)
let with_loaded file bench k =
  match load_source file bench with
  | Error msg ->
    prerr_endline ("vrpc: " ^ msg);
    exit 2
  | Ok source -> k source

(* --trace-out: record per-phase spans (compile, interproc waves, engine
   runs, algebra) around the analysis and write them as Chrome trace_event
   JSON — loadable in chrome://tracing or Perfetto for a flamegraph view.
   The file is written from a [Fun.protect] finaliser before the outcome's
   exit code is raised, and tracing never perturbs analysis results (the
   golden tests pin byte-identity with tracing on). *)
let with_trace trace_out k =
  match trace_out with
  | None -> k ()
  | Some path ->
    Vrp_obs.Trace.enable ();
    Fun.protect
      ~finally:(fun () ->
        Vrp_obs.Trace.disable ();
        Vrp_obs.Trace.write path;
        Printf.eprintf "trace: wrote %d span(s) to %s\n%!"
          (List.length (Vrp_obs.Trace.events ()))
          path)
      k

let predict file bench numeric jobs model trace_out dopts =
  with_loaded file bench (fun source ->
      let o =
        with_trace trace_out (fun () ->
            Ops.predict ~opts:(opts_of ~jobs ?model numeric dopts) ~source ())
      in
      print_outcome o)

let run file bench args =
  with_source file bench (fun c ->
      match Interp.run ~capture_output:true c.Pipeline.ssa ~args with
      | { ret; profile; output } ->
        print_string output;
        (match ret with
        | Interp.Vint n -> Printf.printf "main returned %d\n" n
        | Interp.Vfloat f -> Printf.printf "main returned %g\n" f);
        Printf.printf "executed %d instructions, %d distinct conditional branches\n"
          profile.Interp.steps
          (Hashtbl.length profile.Interp.branches)
      | exception Interp.Trap msg ->
        Printf.printf "trap: %s\n" msg;
        exit 1)

let compare file bench train_args ref_args model dopts =
  with_loaded file bench (fun source ->
      print_outcome
        (Ops.compare_predictors ~opts:(opts_of ?model false dopts) ~train:train_args
           ~ref_args ~source ()))

let optimize file bench numeric dopts =
  with_source file bench (fun c ->
      with_diag dopts (config_of_flags numeric) (fun ~report ~config ->
      let ipa = Vrp_core.Interproc.analyze ~config ~report c.Pipeline.ssa in
      List.iter
        (fun (fn : Ir.fn) ->
          match Vrp_core.Interproc.result ipa fn.Ir.fname with
          | None -> ()
          | Some res ->
            let report = Vrp_core.Optimize.find_report res in
            Printf.printf "function %s: %s" fn.Ir.fname
              (Vrp_core.Optimize.report_to_string report);
            let rewritten = Vrp_core.Optimize.rewrite res in
            Printf.printf "  %d blocks -> %d blocks after rewrite\n"
              (Ir.num_blocks fn) (Ir.num_blocks rewritten))
        c.Pipeline.ssa.Ir.fns))

let bounds file bench numeric dopts =
  with_source file bench (fun c ->
      with_diag dopts (config_of_flags numeric) (fun ~report ~config ->
      let ipa = Vrp_core.Interproc.analyze ~config ~report c.Pipeline.ssa in
      List.iter
        (fun (fn : Ir.fn) ->
          match Vrp_core.Interproc.result ipa fn.Ir.fname with
          | None -> ()
          | Some res ->
            let r = Vrp_core.Bounds_check.analyze c.Pipeline.ssa res in
            if r.Vrp_core.Bounds_check.total > 0 then
              Printf.printf "function %-12s %d/%d bounds checks eliminated\n" fn.Ir.fname
                r.Vrp_core.Bounds_check.eliminated r.Vrp_core.Bounds_check.total)
        c.Pipeline.ssa.Ir.fns))

let alias file bench =
  with_source file bench (fun c ->
      let ipa = Vrp_core.Interproc.analyze c.Pipeline.ssa in
      List.iter
        (fun (fn : Ir.fn) ->
          match Vrp_core.Interproc.result ipa fn.Ir.fname with
          | None -> ()
          | Some res ->
            let r = Vrp_core.Alias.analyze res in
            if r.Vrp_core.Alias.pairs <> [] then
              Printf.printf "function %-12s %d/%d access pairs proven disjoint\n"
                fn.Ir.fname r.Vrp_core.Alias.disjoint
                (List.length r.Vrp_core.Alias.pairs))
        c.Pipeline.ssa.Ir.fns)

let freq file bench numeric top dopts =
  with_source file bench (fun c ->
      with_diag dopts (config_of_flags numeric) (fun ~report ~config ->
      let ipa = Vrp_core.Interproc.analyze ~config ~report c.Pipeline.ssa in
      let f = Vrp_core.Frequency.of_interproc c.Pipeline.ssa ipa in
      Printf.printf "function invocation frequencies (per run of main):\n";
      (* Sorted by name: hash-table order must never reach the report. *)
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) f.Vrp_core.Frequency.call_freq []
      |> List.sort Stdlib.compare
      |> List.iter (fun (name, v) -> Printf.printf "  %-14s %12.1f\n" name v);
      Printf.printf "\nhottest blocks (predicted global execution frequency):\n";
      List.iteri
        (fun i (fname, bid, v) ->
          if i < top then Printf.printf "  %-14s B%-4d %12.1f\n" fname bid v)
        (Vrp_core.Frequency.hottest_blocks f)))

let dot file bench fn_filter annotate =
  with_source file bench (fun c ->
      List.iter
        (fun (fn : Ir.fn) ->
          if annotate then begin
            let res = Engine.analyze fn in
            let ff = Vrp_core.Frequency.of_engine res in
            print_string
              (Vrp_ir.Dot.fn_to_dot
                 ~branch_prob:(Engine.branch_prob res)
                 ~block_note:(fun bid ->
                   Some
                     (Printf.sprintf "freq %.2f" ff.Vrp_core.Frequency.block_freq.(bid)))
                 fn)
          end
          else print_string (Vrp_ir.Dot.fn_to_dot fn))
        (select_fns c.Pipeline.ssa fn_filter))

(* Batch mode: fan out over a directory of MiniC files on a domain pool,
   with an optional content-addressed summary cache, per-task supervision
   (--deadline-ms / --retries) and checkpoint/resume (--resume JOURNAL).
   Predictions go to stdout and are byte-identical for any --jobs and for
   resumed runs; timing, cache traffic and supervision counters — which
   legitimately vary — go to stderr. *)
let batch_paths dir =
  match Vrp_sched.Batch.list_dir dir with
  | [] ->
    prerr_endline (Printf.sprintf "vrpc: no MiniC files (.mc, .minic, .c) in %s" dir);
    exit 2
  | paths -> paths
  | exception Sys_error msg ->
    prerr_endline ("vrpc: " ^ msg);
    exit 2

let batch dir jobs cache_dir cache_max_mb deadline_ms retries resume numeric
    trace_out ((_, _, fault) as dopts) =
  let module Supervisor = Vrp_sched.Supervisor in
  let module Summary_cache = Vrp_cache.Summary_cache in
  let sources = List.map (fun p -> (p, read_file p)) (batch_paths dir) in
  let cache_fault, journal_fault, _ = Ops.route_fault fault in
  let cache =
    Option.map
      (fun dir ->
        Summary_cache.create ~disk_dir:dir ?max_disk_mb:cache_max_mb
          ?fault:cache_fault ())
      cache_dir
  in
  let supervisor =
    if deadline_ms <> None || retries > 0 then
      Some
        (Supervisor.create
           ~policy:{ Supervisor.default_policy with deadline_ms; retries }
           ())
    else None
  in
  let o =
    Fun.protect
      ~finally:(fun () -> Option.iter Supervisor.shutdown supervisor)
      (fun () ->
        with_trace trace_out (fun () ->
            Ops.batch ?cache ?supervisor ?journal:resume ?journal_fault
              ~opts:(opts_of ~jobs numeric dopts) ~sources ()))
  in
  print_string o.Ops.out;
  prerr_string o.Ops.err;
  exit o.Ops.code

(* --- remote: drive a running vrpd daemon --- *)

(* The daemon answers the byte-identical stdout/stderr/exit-code of the
   one-shot subcommand, so a remote call prints exactly like a local one;
   only daemon-unreachable errors are new (exit 2). *)

(* Transport chaos is enacted by the client itself, at the socket level —
   never sent to the daemon as a request param. [flood-conns:N] holds N
   idle raw connections open around the real request, driving the daemon
   into its connection-capacity shed path; [stall-frame:MS] sends a
   partial frame header on a throwaway connection and stalls, which the
   daemon's idle sweeper must disconnect. In both cases the real request
   must still answer byte-identically — that is the point of the drill. *)
let with_transport_chaos socket fault k =
  match fault with
  | Some (Diag.Fault.Flood_conns n) ->
    let conns =
      List.filter_map
        (fun _ -> try Some (Client.connect_fd socket) with _ -> None)
        (List.init n Fun.id)
    in
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun fd -> try Unix.close fd with _ -> ()) conns)
      k
  | Some (Diag.Fault.Stall_frame ms) ->
    (* The stall runs on its own thread so the real request proceeds
       concurrently; any error (including the sweeper's disconnect
       surfacing as EPIPE/ECONNRESET) is the expected outcome. *)
    let stall =
      Thread.create
        (fun () ->
          try
            let fd = Client.connect_fd socket in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with _ -> ())
              (fun () ->
                ignore (Unix.write fd (Bytes.make 3 '\000') 0 3);
                Thread.delay (float_of_int ms /. 1000.))
          with _ -> ())
        ()
    in
    Fun.protect ~finally:(fun () -> Thread.join stall) k
  | Some _ | None -> k ()

(* All analysis ops are idempotent, so a dropped or refused connection —
   the signature of a fleet worker being crash-replaced — is retried with
   backoff and replayed byte-identically. A shutdown is sent exactly once:
   retrying it against a daemon that already acknowledged and died would
   turn a clean stop into a spurious failure. *)
let remote_call ?fault socket ~op params k =
  (* A daemon (or fleet worker) dying mid-request must surface as a
     retryable EPIPE, not kill the client. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let params = Json.Obj params in
  match
    with_transport_chaos socket fault (fun () ->
        if op = "shutdown" then
          Client.with_connection socket (fun c -> Client.request c ~op ~params ())
        else Client.request_retry ~addr:socket ~op ~params ())
  with
  | resp ->
    print_string resp.Protocol.out;
    prerr_string resp.Protocol.err;
    k resp;
    if resp.Protocol.code <> 0 then exit resp.Protocol.code
  | exception Unix.Unix_error (e, _, _) ->
    prerr_endline
      (Printf.sprintf "vrpc: cannot reach vrpd at %s: %s" socket
         (Unix.error_message e));
    exit 2
  | exception Failure msg ->
    prerr_endline ("vrpc: " ^ msg);
    exit 2

let input_name file bench =
  match (file, bench) with
  | Some path, _ -> path
  | None, Some name -> name
  | None, None -> "<stdin>"

let common_params ?deadline_ms numeric (diagnostics, strict, fault) =
  [ ("numeric", Json.Bool numeric);
    ("diagnostics", Json.Bool diagnostics);
    ("strict", Json.Bool strict) ]
  @ (match deadline_ms with
    | Some ms -> [ ("deadline_ms", Json.Int ms) ]
    | None -> [])
  @
  (* Transport chaos never travels in the request: it is enacted at the
     socket by {!with_transport_chaos}. *)
  match fault with
  | Some (Diag.Fault.Flood_conns _ | Diag.Fault.Stall_frame _) | None -> []
  | Some f -> [ ("fault", Json.String (Diag.Fault.to_string f)) ]

let remote_predict socket deadline_ms file bench numeric
    ((_, _, fault) as dopts) =
  with_loaded file bench (fun source ->
      remote_call ?fault socket ~op:"predict"
        ([ ("source", Json.String source);
           ("name", Json.String (input_name file bench)) ]
        @ common_params ?deadline_ms numeric dopts)
        (fun _ -> ()))

let remote_analyze socket deadline_ms session name file bench numeric
    ((_, _, fault) as dopts) =
  with_loaded file bench (fun source ->
      let name = Option.value ~default:(input_name file bench) name in
      remote_call ?fault socket ~op:"analyze"
        ([ ("session", Json.String session);
           ("name", Json.String name);
           ("source", Json.String source) ]
        @ common_params ?deadline_ms numeric dopts)
        (fun resp ->
          (* Incremental accounting: what the daemon planned to re-analyze
             and what its session cache actually did. Stderr, like every
             other run-varying counter. *)
          match List.assoc_opt "plan" resp.Protocol.data with
          | None -> ()
          | Some plan ->
            let n k = Option.value ~default:0 (Json.mem_int k plan) in
            let len k =
              match Json.mem_list k plan with Some l -> List.length l | None -> 0
            in
            Printf.eprintf "plan: %d functions, %d changed, %d dirty, %d reused%s\n"
              (n "functions") (len "changed") (len "dirty") (len "reused")
              (if Json.mem_bool "fresh" plan = Some true then " (fresh)" else "");
            (match List.assoc_opt "cache" resp.Protocol.data with
            | Some c ->
              let n k = Option.value ~default:0 (Json.mem_int k c) in
              Printf.eprintf "cache: +%d hits, +%d misses, +%d invalidations\n"
                (n "hits") (n "misses") (n "invalidations")
            | None -> ())))

let remote_compare socket deadline_ms file bench (tn, ts) (rn, rs)
    ((_, _, fault) as dopts) =
  with_loaded file bench (fun source ->
      remote_call ?fault socket ~op:"compare"
        ([ ("source", Json.String source);
           ("name", Json.String (input_name file bench));
           ("train", Json.List [ Json.Int tn; Json.Int ts ]);
           ("reference", Json.List [ Json.Int rn; Json.Int rs ]) ]
        @ common_params ?deadline_ms false dopts)
        (fun _ -> ()))

let remote_batch socket deadline_ms dir jobs numeric ((_, _, fault) as dopts) =
  let files =
    List.map
      (fun p ->
        Json.Obj [ ("name", Json.String p); ("source", Json.String (read_file p)) ])
      (batch_paths dir)
  in
  remote_call ?fault socket ~op:"batch"
    ([ ("files", Json.List files); ("jobs", Json.Int jobs) ]
    @ common_params ?deadline_ms numeric dopts)
    (fun _ -> ())

let remote_simple op socket = remote_call socket ~op [] (fun _ -> ())

let list_benchmarks () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      Printf.printf "%-10s %-4s train=%s ref=%s\n" b.name
        (Vrp_suite.Suite.category_to_string b.category)
        (String.concat "," (List.map string_of_int b.train_args))
        (String.concat "," (List.map string_of_int b.ref_args)))
    Vrp_suite.Suite.benchmarks

(* --- Terms --- *)

let args_pair ~names ~doc ~default =
  Arg.(value & opt (pair ~sep:',' int int) default & info names ~docv:"N,SEED" ~doc)

(* --- train / predict --model: the learned fallback predictor --- *)

let model_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "model" ] ~docv:"FILE"
        ~doc:
          "Learned fallback model (.vrpmodel): branches whose range the \
           analysis cannot decide are predicted by it instead of the \
           Ball–Larus heuristics. A file that fails to load or verify is a \
           $(b,model-error) diagnostic and the run degrades back to \
           Ball–Larus.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record per-phase analysis spans and write them to $(docv) as \
           Chrome trace_event JSON (open in chrome://tracing or Perfetto \
           for a flamegraph). Tracing does not change analysis output.")

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* lib/learn/default_model.ml is generated: the model bytes as an OCaml
   string literal, so the default model is compiled into every consumer. *)
let emit_ml_module bytes =
  String.concat "\n"
    [
      "(* The committed default model, embedded as a string. Regenerated by";
      "   [vrpc train --emit-ml] from the pinned seed — do not edit by hand; CI's";
      "   train-smoke job diffs this module against a fresh training run and";
      "   against models/default.vrpmodel. *)";
      "";
      Printf.sprintf "let data = \"%s\"" (String.escaped bytes);
      "";
    ]

let resolve_profile name =
  match Vrp_fuzz.Gen.profile_named name with
  | Some p -> p
  | None ->
    prerr_endline
      (Printf.sprintf "vrpc: unknown fuzz profile %S; available: %s" name
         (String.concat ", "
            (List.map
               (fun (p : Vrp_fuzz.Gen.profile) -> p.Vrp_fuzz.Gen.pname)
               Vrp_fuzz.Gen.profiles)));
    exit 2

let train seed count profile depth min_leaf jobs out emit_ml =
  let module Dataset = Vrp_learn.Dataset in
  let module Tree = Vrp_learn.Tree in
  let profile =
    match profile with
    | None -> Dataset.default_profile
    | Some name -> resolve_profile name
  in
  let ds = Dataset.build ~jobs ~profile ~seed ~count () in
  let model = Tree.train ~depth ~min_leaf ds in
  Printf.printf "corpus: seed %d, profile %s, %d program(s) (%d compiled), %d sample(s)\n"
    ds.Dataset.seed ds.Dataset.profile ds.Dataset.count ds.Dataset.programs
    (Array.length ds.Dataset.samples);
  Printf.printf "corpus digest: %s\n" ds.Dataset.digest;
  Printf.printf "model: depth %d (fitted %d), min-leaf %d, %d node(s)\n" depth
    (Tree.node_depth model.Tree.root) min_leaf
    (Tree.node_count model.Tree.root);
  Printf.printf "model digest: %s\n" (Tree.digest model);
  let bytes = Tree.to_string model in
  (match out with
  | Some path ->
    write_file path bytes;
    Printf.printf "wrote %s\n" path
  | None -> ());
  match emit_ml with
  | Some path ->
    write_file path (emit_ml_module bytes);
    Printf.printf "wrote %s\n" path
  | None -> ()

let train_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Corpus seed; fixes every generated program, hence (with --count \
           and --profile) the corpus digest and the model bytes.")

let train_count_arg =
  Arg.(
    value & opt int 300
    & info [ "count" ] ~docv:"N" ~doc:"Programs to generate for the corpus.")

let train_profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"NAME"
        ~doc:"Corpus generation profile. Default: $(b,features).")

let train_depth_arg =
  Arg.(
    value & opt int 7
    & info [ "depth" ] ~docv:"N" ~doc:"Maximum tree depth.")

let train_min_leaf_arg =
  Arg.(
    value & opt int 10
    & info [ "min-leaf" ] ~docv:"N" ~doc:"Minimum training samples per leaf.")

let train_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE" ~doc:"Write the trained .vrpmodel to $(docv).")

let train_emit_ml_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-ml" ] ~docv:"FILE"
        ~doc:
          "Also write the model as the generated OCaml module embedding the \
           default model (lib/learn/default_model.ml).")

(* --- fuzz: property-based soundness campaign --- *)

let fuzz seed count profile minimize out determinism_every
    (_diagnostics, _strict, fault) =
  let config = { Engine.default_config with Engine.fault } in
  let profiles =
    match profile with
    | None -> Vrp_fuzz.Gen.profiles
    | Some name -> (
      match Vrp_fuzz.Gen.profile_named name with
      | Some p -> [ p ]
      | None ->
        prerr_endline
          (Printf.sprintf "vrpc: unknown fuzz profile %S; available: %s" name
             (String.concat ", "
                (List.map
                   (fun (p : Vrp_fuzz.Gen.profile) -> p.Vrp_fuzz.Gen.pname)
                   Vrp_fuzz.Gen.profiles)));
        exit 2)
  in
  let summary =
    Vrp_fuzz.Runner.run ~config ~minimize ~determinism_every ~seed ~count
      ~profiles ()
  in
  print_string (Vrp_fuzz.Runner.render summary);
  (match out with
  | Some dir ->
    List.iter
      (fun f ->
        let path = Vrp_fuzz.Runner.write_repro ~dir ~seed f in
        Printf.printf "wrote %s\n" path)
      summary.Vrp_fuzz.Runner.failures
  | None -> ());
  if summary.Vrp_fuzz.Runner.failures <> [] then exit 1

let fuzz_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed; fixes every generated program.")

let fuzz_count_arg =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N" ~doc:"Programs to generate per profile.")

let fuzz_profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"NAME"
        ~doc:
          "Weight profile: $(b,mixed), $(b,loops), $(b,branches), \
           $(b,arrays), $(b,calls) or $(b,features). Default: all of them.")

let fuzz_minimize_arg =
  Arg.(
    value & flag
    & info [ "minimize" ]
        ~doc:"Shrink each failing program to a minimal repro before reporting.")

let fuzz_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Write each failure as a replayable .mc repro under $(docv).")

let fuzz_det_arg =
  Arg.(
    value & opt int 10
    & info [ "determinism-every" ] ~docv:"N"
        ~doc:
          "Run the (expensive) differential-determinism oracle on every \
           $(docv)-th program; 0 disables it.")

let cmd_of name doc term = Cmd.v (Cmd.info name ~doc) term

let dump_ast_cmd =
  cmd_of "dump-ast" "Parse, type-check and pretty-print the program."
    Term.(const dump_ast $ file_arg $ bench_arg)

let dump_ir_cmd =
  cmd_of "dump-ir" "Print the canonical SSA control flow graph."
    Term.(const dump_ir $ file_arg $ bench_arg $ fn_arg)

let ranges_cmd =
  cmd_of "ranges" "Print the final value range of every SSA variable."
    Term.(const ranges $ file_arg $ bench_arg $ numeric_arg $ fn_arg $ diag_args)

let predict_cmd =
  cmd_of "predict" "Print branch probabilities from VRP and the heuristic baselines."
    Term.(
      const predict $ file_arg $ bench_arg $ numeric_arg $ jobs_arg $ model_arg
      $ trace_out_arg $ diag_args)

let batch_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Directory of MiniC files to analyse.")
  in
  let cache_max_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-mb" ] ~docv:"MB"
          ~doc:
            "Cap the on-disk summary cache at $(docv) megabytes; the oldest \
             entries are evicted at startup to fit the budget.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Cancel any single function analysis running longer than \
             $(docv) milliseconds of wall clock; the function is demoted to \
             the Ball–Larus fallback instead of stalling the batch.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a failed or cancelled function analysis up to $(docv) \
             times (with deterministic backoff) before demoting it.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"JOURNAL"
          ~doc:
            "Checkpoint each completed file to $(docv) and, if it already \
             holds records from an interrupted run, skip the files whose \
             inputs are unchanged — the report stays byte-identical to an \
             uninterrupted run.")
  in
  cmd_of "batch"
    "Analyse every MiniC file in a directory concurrently with summary \
     caching, supervision and checkpoint/resume."
    Term.(
      const batch $ dir_arg $ jobs_arg $ cache_arg $ cache_max_mb_arg
      $ deadline_arg $ retries_arg $ resume_arg $ numeric_arg $ trace_out_arg
      $ diag_args)

let run_cmd =
  let args =
    Arg.(
      value
      & opt (list ~sep:',' int) [ 100; 1 ]
      & info [ "args" ] ~docv:"N,SEED" ~doc:"Arguments passed to main.")
  in
  cmd_of "run" "Interpret the program and report its execution profile."
    Term.(const run $ file_arg $ bench_arg $ args)

let compare_cmd =
  let train = args_pair ~names:[ "train" ] ~doc:"Training input." ~default:(100, 1) in
  let ref_ = args_pair ~names:[ "reference" ] ~doc:"Reference input." ~default:(1000, 2) in
  let wrap f b (tn, ts) (rn, rs) model dopts =
    compare f b [ tn; ts ] [ rn; rs ] model dopts
  in
  cmd_of "compare" "Compare every predictor against observed branch behaviour."
    Term.(const wrap $ file_arg $ bench_arg $ train $ ref_ $ model_arg $ diag_args)

let optimize_cmd =
  cmd_of "optimize" "Report and apply constant/copy subsumption and unreachable code."
    Term.(const optimize $ file_arg $ bench_arg $ numeric_arg $ diag_args)

let bounds_cmd =
  cmd_of "bounds" "Report array bounds checks proven redundant by value ranges."
    Term.(const bounds $ file_arg $ bench_arg $ numeric_arg $ diag_args)

let alias_cmd =
  cmd_of "alias" "Report array access pairs proven disjoint by value ranges."
    Term.(const alias $ file_arg $ bench_arg)

let freq_cmd =
  let top =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc:"How many hot blocks to list.")
  in
  cmd_of "freq" "Predicted block and function execution frequencies (paper section 6)."
    Term.(const freq $ file_arg $ bench_arg $ numeric_arg $ top $ diag_args)

let dot_cmd =
  let annotate =
    Arg.(value & flag & info [ "annotate" ] ~doc:"Annotate with probabilities/frequencies.")
  in
  cmd_of "dot" "Emit the control flow graph in Graphviz DOT format."
    Term.(const dot $ file_arg $ bench_arg $ fn_arg $ annotate)

let list_cmd =
  cmd_of "list" "List the built-in benchmark suite." Term.(const list_benchmarks $ const ())

let train_cmd =
  cmd_of "train"
    "Train the learned fallback predictor: generate a labeled corpus \
     (fuzzer programs, interpreter ground truth) and fit the decision-tree \
     model. Fully deterministic: the same seed, count, profile and \
     parameters reproduce the model byte-for-byte."
    Term.(
      const train $ train_seed_arg $ train_count_arg $ train_profile_arg
      $ train_depth_arg $ train_min_leaf_arg $ jobs_arg $ train_out_arg
      $ train_emit_ml_arg)

let fuzz_cmd =
  cmd_of "fuzz"
    "Property-based soundness fuzzing: generate random programs, check the \
     analysis against the interpreter, shrink failures."
    Term.(
      const fuzz $ fuzz_seed_arg $ fuzz_count_arg $ fuzz_profile_arg
      $ fuzz_minimize_arg $ fuzz_out_arg $ fuzz_det_arg $ diag_args)

let socket_arg =
  Arg.(
    value
    & opt string (Client.default_address ())
    & info [ "socket" ] ~docv:"ADDR"
        ~doc:
          "vrpd address: a Unix-domain socket path, or $(b,HOST:PORT) for a \
           daemon started with --listen.")

let remote_deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Stamp the request with a deadline budget. The daemon charges \
           queue wait against it and answers $(b,deadline-expired) instead \
           of dispatching a request whose budget is already gone.")

let session_arg =
  Arg.(
    value & opt string "default"
    & info [ "session" ] ~docv:"ID"
        ~doc:
          "Session id. Re-submitting an edited source under the same session \
           re-analyses only the functions downstream of the edit.")

let name_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "name" ] ~docv:"NAME"
        ~doc:"Source name within the session (default: the file or benchmark name).")

let remote_cmd =
  let predict =
    cmd_of "predict" "Predict through the daemon (byte-identical to local predict)."
      Term.(
        const remote_predict $ socket_arg $ remote_deadline_arg $ file_arg
        $ bench_arg $ numeric_arg $ diag_args)
  in
  let analyze =
    cmd_of "analyze"
      "Session-scoped incremental predict: unchanged functions come from the \
       session's warm cache."
      Term.(
        const remote_analyze $ socket_arg $ remote_deadline_arg $ session_arg
        $ name_arg $ file_arg $ bench_arg $ numeric_arg $ diag_args)
  in
  let compare =
    let train = args_pair ~names:[ "train" ] ~doc:"Training input." ~default:(100, 1) in
    let ref_ =
      args_pair ~names:[ "reference" ] ~doc:"Reference input." ~default:(1000, 2)
    in
    cmd_of "compare" "Compare predictors through the daemon."
      Term.(
        const remote_compare $ socket_arg $ remote_deadline_arg $ file_arg
        $ bench_arg $ train $ ref_ $ diag_args)
  in
  let batch =
    let dir_arg =
      Arg.(
        required
        & pos 0 (some dir) None
        & info [] ~docv:"DIR" ~doc:"Directory of MiniC files to analyse.")
    in
    cmd_of "batch" "Batch-analyse a directory through the daemon."
      Term.(
        const remote_batch $ socket_arg $ remote_deadline_arg $ dir_arg
        $ jobs_arg $ numeric_arg $ diag_args)
  in
  let simple name doc op =
    cmd_of name doc Term.(const (remote_simple op) $ socket_arg)
  in
  Cmd.group
    (Cmd.info "remote" ~doc:"Drive a running vrpd analysis daemon.")
    [
      predict;
      analyze;
      compare;
      batch;
      simple "status" "Daemon version, sessions, request and cache counters." "status";
      simple "metrics"
        "Scrape the daemon's metrics registry as Prometheus text." "metrics";
      simple "fleet-status"
        "Fleet front-door counters and per-worker health (vrpd --fleet)."
        "fleet-status";
      simple "evict" "Drop every cached summary from daemon memory." "evict";
      simple "shutdown" "Stop the daemon after acknowledging." "shutdown";
    ]

let main_cmd =
  Cmd.group
    (Cmd.info "vrpc" ~version:Vrp_server.Version.version
       ~doc:"Static branch prediction by value range propagation (PLDI 1995)"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"success.";
           Cmd.Exit.info 1
             ~doc:
               "bad input program, internal analysis error, or a failed fuzz \
                campaign.";
           Cmd.Exit.info 2
             ~doc:
               "usage error (no input, unknown benchmark), unreachable vrpd \
                daemon, a failed batch file, or a contained server request.";
           Cmd.Exit.info 3 ~doc:"analysis degraded under $(b,--strict).";
           Cmd.Exit.info 124 ~doc:"malformed command line.";
         ])
    [
      dump_ast_cmd;
      dump_ir_cmd;
      ranges_cmd;
      predict_cmd;
      batch_cmd;
      run_cmd;
      compare_cmd;
      optimize_cmd;
      bounds_cmd;
      alias_cmd;
      freq_cmd;
      dot_cmd;
      list_cmd;
      fuzz_cmd;
      train_cmd;
      remote_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
