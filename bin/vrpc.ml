(* vrpc — command-line driver for the value-range-propagation tool chain.

   Input programs come from a MiniC file or from the built-in benchmark
   suite (-b NAME). Subcommands expose each stage: AST and SSA dumps, value
   ranges, branch predictions, profiled execution, predictor-vs-observed
   comparison, and the paper's client optimizations.

   Exit codes: 0 success; 1 bad input program or internal analysis error;
   2 usage error (no input given); 3 analysis degraded under --strict;
   124 malformed command line (cmdliner's standard). In batch mode the
   per-severity codes are: 2 when any file failed (front-end error or a
   crashed task — the batch still completes and reports every other file),
   3 under --strict when no file failed but some analysis degraded. *)

open Cmdliner

module Ir = Vrp_ir.Ir
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Interp = Vrp_profile.Interp
module Diag = Vrp_diag.Diag

(* --- Program source selection --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_source file bench =
  match (file, bench) with
  | Some path, None -> Ok (read_file path)
  | None, Some name -> (
    match Vrp_suite.Suite.find name with
    | Some b -> Ok b.Vrp_suite.Suite.source
    | None ->
      Error
        (Printf.sprintf "unknown benchmark %S; available: %s" name
           (String.concat ", "
              (List.map (fun (b : Vrp_suite.Suite.benchmark) -> b.name)
                 Vrp_suite.Suite.benchmarks))))
  | Some _, Some _ -> Error "give either FILE or -b NAME, not both"
  | None, None -> Error "no input: give a FILE or -b NAME"

(* Compilation is total at this boundary: front-end errors, IR-check
   violations and internal crashes all become a one-line message and exit 1
   instead of an uncaught backtrace. *)
let with_source file bench k =
  match load_source file bench with
  | Error msg ->
    prerr_endline ("vrpc: " ^ msg);
    exit 2
  | Ok source -> (
    match Pipeline.compile_result source with
    | Ok compiled -> k compiled
    | Error d ->
      prerr_endline ("vrpc: " ^ d.Diag.message);
      exit 1)

(* --- Common arguments --- *)

let file_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"MiniC source file.")

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "benchmark" ] ~docv:"NAME" ~doc:"Use a built-in suite benchmark.")

let numeric_arg =
  Arg.(
    value & flag
    & info [ "numeric-only" ] ~doc:"Disable symbolic ranges (paper's numeric configuration).")

let fn_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "f"; "function" ] ~docv:"FN" ~doc:"Restrict output to one function.")

let config_of_flags numeric =
  if numeric then Engine.numeric_only_config else Engine.default_config

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Analyse with $(docv) concurrent domains (SCC waves for a single \
           program, whole files in batch mode). Results are byte-identical \
           to --jobs 1.")

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Persist function summaries content-addressed under $(docv); warm \
           runs skip re-analysing unchanged functions.")

(* --- Diagnostics / resilience options --- *)

(* (diagnostics, strict, fault spec); shared by the analysis subcommands. *)
let diag_args =
  let diagnostics =
    Arg.(
      value & flag
      & info [ "diagnostics" ]
          ~doc:
            "Print the structured diagnostics report (degradations, \
             heuristic fallbacks, widenings) to stderr after the output.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit 3 when the analysis degraded: a function crashed, ran out \
             of fuel or timed out and fell back to heuristics.")
  in
  let fault_conv =
    let parse s =
      match Diag.Fault.parse s with
      | Ok f -> Ok f
      | Error msg -> Error (`Msg msg)
    in
    let print ppf f = Format.pp_print_string ppf (Diag.Fault.to_string f) in
    Arg.conv (parse, print)
  in
  let fault =
    (* Hidden from the manual's visible sections: a deterministic
       fault-injection hook for exercising the degradation paths. *)
    Arg.(
      value
      & opt (some fault_conv) None
      & info [ "inject-fault" ] ~docv:"SPEC" ~docs:"TESTING (HIDDEN)"
          ~doc:
            "Inject a deterministic fault: $(b,crash:FN), $(b,fuel:FN), \
             $(b,timeout:FN), $(b,steps:N), $(b,hang:FN), $(b,flaky:FN:K), \
             $(b,crash-file:NAME), $(b,corrupt-cache:N), \
             $(b,torn-journal:N) or $(b,skew:FN).")
  in
  Term.(const (fun d s f -> (d, s, f)) $ diagnostics $ strict $ fault)

(* Run [k] with a diagnostics report and a fault-patched engine config,
   then render the report and apply --strict. *)
let with_diag (diagnostics, strict, fault) config k =
  let report = Diag.create () in
  let config = { config with Engine.fault } in
  k ~report ~config;
  if diagnostics then prerr_string (Diag.render report);
  if strict && Diag.degraded report then exit 3

(* Branches the report attributes to heuristic fallback, for output
   annotation: (fn, block) -> caused by degradation (vs ordinary ⊥). *)
let fallback_branches report =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : Diag.diag) ->
      match (d.Diag.kind, d.Diag.loc.Diag.fn, d.Diag.loc.Diag.block) with
      | Diag.Fallback_heuristic, Some fn, Some bid ->
        let degraded = d.Diag.severity <> Diag.Info in
        let prev = Option.value ~default:false (Hashtbl.find_opt tbl (fn, bid)) in
        Hashtbl.replace tbl (fn, bid) (degraded || prev)
      | _ -> ())
    (Diag.to_list report);
  tbl

let select_fns (p : Ir.program) = function
  | None -> p.Ir.fns
  | Some name -> List.filter (fun (fn : Ir.fn) -> String.equal fn.Ir.fname name) p.Ir.fns

(* --- Subcommands --- *)

let dump_ast file bench =
  with_source file bench (fun c ->
      print_string (Vrp_lang.Pretty.program_to_string c.Pipeline.ast))

let dump_ir file bench fn_filter =
  with_source file bench (fun c ->
      List.iter
        (fun fn -> print_string (Ir.fn_to_string fn))
        (select_fns c.Pipeline.ssa fn_filter))

let ranges file bench numeric fn_filter dopts =
  with_source file bench (fun c ->
      with_diag dopts (config_of_flags numeric) (fun ~report ~config ->
      let ipa = Vrp_core.Interproc.analyze ~config ~report c.Pipeline.ssa in
      List.iter
        (fun (fn : Ir.fn) ->
          match Vrp_core.Interproc.result ipa fn.Ir.fname with
          | None -> (
            match Vrp_core.Interproc.failure ipa fn.Ir.fname with
            | Some why -> Printf.printf "%s: analysis demoted (%s)\n" fn.Ir.fname why
            | None -> Printf.printf "%s: unreachable from main\n" fn.Ir.fname)
          | Some res ->
            Printf.printf "function %s:\n" fn.Ir.fname;
            Ir.iter_blocks fn (fun b ->
                List.iter
                  (fun instr ->
                    match instr with
                    | Ir.Def (v, _) ->
                      Printf.printf "  %-12s %s\n" (Vrp_ir.Var.to_string v)
                        (Vrp_ranges.Value.to_string (Engine.value res v))
                    | Ir.Store _ -> ())
                  b.Ir.instrs))
        (select_fns c.Pipeline.ssa fn_filter)))

let predict file bench numeric jobs dopts =
  with_source file bench (fun c ->
      with_diag dopts (config_of_flags numeric) (fun ~report ~config ->
      (* Always schedule through the SCC wavefront plan so --jobs N is
         byte-identical to --jobs 1 (the sequential reference). *)
      let groups = Vrp_sched.Callgraph.scc_groups c.Pipeline.ssa in
      let vrp, _ =
        Vrp_sched.Pool.with_pool ~jobs (fun pool ->
            Pipeline.vrp_predictions ~config ~report ~groups
              ~run_tasks:(Vrp_sched.Wavefront.runner pool) c.Pipeline.ssa)
      in
      let bl = Vrp_predict.Predictor.ball_larus c.Pipeline.ssa in
      let nf = Vrp_predict.Predictor.ninety_fifty c.Pipeline.ssa in
      let fb = fallback_branches report in
      Printf.printf "%-28s %9s %12s %8s\n" "branch" "vrp" "ball-larus" "90/50";
      List.iter
        (fun (((fname, bid) as key), (br : Ir.branch)) ->
          let get tbl = Option.value ~default:Float.nan (Hashtbl.find_opt tbl key) in
          let marker =
            match Hashtbl.find_opt fb key with
            | Some true -> "!"  (* degraded: crash / fuel / timeout *)
            | Some false -> "*"  (* ordinary ⊥-range heuristic fallback *)
            | None -> ""
          in
          Printf.printf "%-28s %7.1f%%%-1s %11.1f%% %7.1f%%\n"
            (Printf.sprintf "%s.B%d (%s %s %s)" fname bid (Ir.operand_to_string br.ba)
               (Vrp_lang.Ast.relop_to_string br.rel)
               (Ir.operand_to_string br.bb))
            (100.0 *. get vrp) marker (100.0 *. get bl) (100.0 *. get nf))
        (Vrp_predict.Predictor.branches c.Pipeline.ssa);
      if Hashtbl.length fb > 0 then
        Printf.printf
          "(* = Ball–Larus fallback on ⊥ range, ! = degraded: crashed, \
           fuel-starved or timed-out analysis)\n"))

let run file bench args =
  with_source file bench (fun c ->
      match Interp.run ~capture_output:true c.Pipeline.ssa ~args with
      | { ret; profile; output } ->
        print_string output;
        (match ret with
        | Interp.Vint n -> Printf.printf "main returned %d\n" n
        | Interp.Vfloat f -> Printf.printf "main returned %g\n" f);
        Printf.printf "executed %d instructions, %d distinct conditional branches\n"
          profile.Interp.steps
          (Hashtbl.length profile.Interp.branches)
      | exception Interp.Trap msg ->
        Printf.printf "trap: %s\n" msg;
        exit 1)

let compare file bench train_args ref_args dopts =
  with_source file bench (fun c ->
      with_diag dopts Engine.default_config (fun ~report ~config ->
      let train = (Interp.run c.Pipeline.ssa ~args:train_args).Interp.profile in
      let observed = (Interp.run c.Pipeline.ssa ~args:ref_args).Interp.profile in
      let predictors = Pipeline.all_predictors ~report ~config ~train c.Pipeline.ssa in
      let fb = fallback_branches report in
      Printf.printf "%-24s %8s" "branch" "actual";
      List.iter (fun (name, _) -> Printf.printf " %12s" name) predictors;
      print_newline ();
      let keys =
        Hashtbl.fold
          (fun key (st : Interp.branch_stats) acc ->
            if st.Interp.total > 0 then (key, st) :: acc else acc)
          observed.Interp.branches []
        |> List.sort compare
      in
      List.iter
        (fun (((fname, bid) as key), (st : Interp.branch_stats)) ->
          let actual = float_of_int st.Interp.taken /. float_of_int st.Interp.total in
          let marker =
            match Hashtbl.find_opt fb key with
            | Some true -> "!"
            | Some false -> "*"
            | None -> ""
          in
          Printf.printf "%-24s %7.1f%%"
            (Printf.sprintf "%s.B%d%s" fname bid marker)
            (100.0 *. actual);
          List.iter
            (fun (_, p) ->
              let v = Option.value ~default:Float.nan (Hashtbl.find_opt p key) in
              Printf.printf " %11.1f%%" (100.0 *. v))
            predictors;
          print_newline ())
        keys;
      List.iter
        (fun (name, p) ->
          let errs = Vrp_evaluation.Error_analysis.branch_errors ~observed p in
          Printf.printf "mean |error| %-12s unweighted %.2f pp, weighted %.2f pp\n" name
            (Vrp_evaluation.Error_analysis.mean_error ~weighted:false errs)
            (Vrp_evaluation.Error_analysis.mean_error ~weighted:true errs))
        predictors;
      if Hashtbl.length fb > 0 then
        Printf.printf
          "(* = vrp used Ball–Larus fallback, ! = degraded analysis)\n"))

let optimize file bench numeric dopts =
  with_source file bench (fun c ->
      with_diag dopts (config_of_flags numeric) (fun ~report ~config ->
      let ipa = Vrp_core.Interproc.analyze ~config ~report c.Pipeline.ssa in
      List.iter
        (fun (fn : Ir.fn) ->
          match Vrp_core.Interproc.result ipa fn.Ir.fname with
          | None -> ()
          | Some res ->
            let report = Vrp_core.Optimize.find_report res in
            Printf.printf "function %s: %s" fn.Ir.fname
              (Vrp_core.Optimize.report_to_string report);
            let rewritten = Vrp_core.Optimize.rewrite res in
            Printf.printf "  %d blocks -> %d blocks after rewrite\n"
              (Ir.num_blocks fn) (Ir.num_blocks rewritten))
        c.Pipeline.ssa.Ir.fns))

let bounds file bench numeric dopts =
  with_source file bench (fun c ->
      with_diag dopts (config_of_flags numeric) (fun ~report ~config ->
      let ipa = Vrp_core.Interproc.analyze ~config ~report c.Pipeline.ssa in
      List.iter
        (fun (fn : Ir.fn) ->
          match Vrp_core.Interproc.result ipa fn.Ir.fname with
          | None -> ()
          | Some res ->
            let r = Vrp_core.Bounds_check.analyze c.Pipeline.ssa res in
            if r.Vrp_core.Bounds_check.total > 0 then
              Printf.printf "function %-12s %d/%d bounds checks eliminated\n" fn.Ir.fname
                r.Vrp_core.Bounds_check.eliminated r.Vrp_core.Bounds_check.total)
        c.Pipeline.ssa.Ir.fns))

let alias file bench =
  with_source file bench (fun c ->
      let ipa = Vrp_core.Interproc.analyze c.Pipeline.ssa in
      List.iter
        (fun (fn : Ir.fn) ->
          match Vrp_core.Interproc.result ipa fn.Ir.fname with
          | None -> ()
          | Some res ->
            let r = Vrp_core.Alias.analyze res in
            if r.Vrp_core.Alias.pairs <> [] then
              Printf.printf "function %-12s %d/%d access pairs proven disjoint\n"
                fn.Ir.fname r.Vrp_core.Alias.disjoint
                (List.length r.Vrp_core.Alias.pairs))
        c.Pipeline.ssa.Ir.fns)

let freq file bench numeric top dopts =
  with_source file bench (fun c ->
      with_diag dopts (config_of_flags numeric) (fun ~report ~config ->
      let ipa = Vrp_core.Interproc.analyze ~config ~report c.Pipeline.ssa in
      let f = Vrp_core.Frequency.of_interproc c.Pipeline.ssa ipa in
      Printf.printf "function invocation frequencies (per run of main):\n";
      (* Sorted by name: hash-table order must never reach the report. *)
      Hashtbl.fold (fun name v acc -> (name, v) :: acc) f.Vrp_core.Frequency.call_freq []
      |> List.sort Stdlib.compare
      |> List.iter (fun (name, v) -> Printf.printf "  %-14s %12.1f\n" name v);
      Printf.printf "\nhottest blocks (predicted global execution frequency):\n";
      List.iteri
        (fun i (fname, bid, v) ->
          if i < top then Printf.printf "  %-14s B%-4d %12.1f\n" fname bid v)
        (Vrp_core.Frequency.hottest_blocks f)))

let dot file bench fn_filter annotate =
  with_source file bench (fun c ->
      List.iter
        (fun (fn : Ir.fn) ->
          if annotate then begin
            let res = Engine.analyze fn in
            let ff = Vrp_core.Frequency.of_engine res in
            print_string
              (Vrp_ir.Dot.fn_to_dot
                 ~branch_prob:(Engine.branch_prob res)
                 ~block_note:(fun bid ->
                   Some
                     (Printf.sprintf "freq %.2f" ff.Vrp_core.Frequency.block_freq.(bid)))
                 fn)
          end
          else print_string (Vrp_ir.Dot.fn_to_dot fn))
        (select_fns c.Pipeline.ssa fn_filter))

(* Batch mode: fan out over a directory of MiniC files on a domain pool,
   with an optional content-addressed summary cache, per-task supervision
   (--deadline-ms / --retries) and checkpoint/resume (--resume JOURNAL).
   Predictions go to stdout and are byte-identical for any --jobs and for
   resumed runs; timing, cache traffic and supervision counters — which
   legitimately vary — go to stderr. *)
let batch dir jobs cache_dir cache_max_mb deadline_ms retries resume numeric
    (diagnostics, strict, fault) =
  let module Batch = Vrp_sched.Batch in
  let module Supervisor = Vrp_sched.Supervisor in
  let module Summary_cache = Vrp_cache.Summary_cache in
  let paths =
    match Batch.list_dir dir with
    | [] ->
      prerr_endline
        (Printf.sprintf "vrpc: no MiniC files (.mc, .minic, .c) in %s" dir);
      exit 2
    | paths -> paths
    | exception Sys_error msg ->
      prerr_endline ("vrpc: " ^ msg);
      exit 2
  in
  let sources = List.map (fun p -> (p, read_file p)) paths in
  (* One fault spec, routed to the layer it exercises: the cache writer,
     the journal writer, or the analysis engine. *)
  let cache_fault, journal_fault, engine_fault =
    match fault with
    | Some (Diag.Fault.Corrupt_cache _) -> (fault, None, None)
    | Some (Diag.Fault.Torn_journal _) -> (None, fault, None)
    | _ -> (None, None, fault)
  in
  let cache =
    Option.map
      (fun dir ->
        Summary_cache.create ~disk_dir:dir ?max_disk_mb:cache_max_mb
          ?fault:cache_fault ())
      cache_dir
  in
  let config = { (config_of_flags numeric) with Engine.fault = engine_fault } in
  let supervisor =
    if deadline_ms <> None || retries > 0 then
      Some
        (Supervisor.create
           ~policy:{ Supervisor.default_policy with deadline_ms; retries }
           ())
    else None
  in
  let t0 = Unix.gettimeofday () in
  let results =
    Fun.protect
      ~finally:(fun () -> Option.iter Supervisor.shutdown supervisor)
      (fun () ->
        Batch.analyze_sources ~config ?cache ?supervisor ?journal:resume
          ?journal_fault ~jobs sources)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  print_string (Batch.render results);
  let a = Batch.aggregate results in
  Printf.eprintf "analyzed %d files (%d functions, %d branches) in %.3fs with %d job%s (%.1f functions/s)\n"
    a.Batch.files a.Batch.functions a.Batch.branches elapsed jobs
    (if jobs = 1 then "" else "s")
    (if elapsed > 0.0 then float_of_int a.Batch.functions /. elapsed else 0.0);
  if resume <> None then
    Printf.eprintf "journal: %d of %d file(s) resumed from checkpoint\n"
      a.Batch.resumed_files a.Batch.files;
  Option.iter (fun s -> prerr_endline (Supervisor.counters_line s)) supervisor;
  (match cache with
  | Some c -> prerr_endline (Summary_cache.counters_line c)
  | None -> ());
  if diagnostics then
    List.iter
      (fun (r : Batch.file_result) ->
        if Diag.count r.Batch.report > 0 then begin
          Printf.eprintf "-- %s --\n" r.Batch.name;
          prerr_string (Diag.render r.Batch.report)
        end)
      results;
  exit (Batch.exit_code ~strict results)

let list_benchmarks () =
  List.iter
    (fun (b : Vrp_suite.Suite.benchmark) ->
      Printf.printf "%-10s %-4s train=%s ref=%s\n" b.name
        (Vrp_suite.Suite.category_to_string b.category)
        (String.concat "," (List.map string_of_int b.train_args))
        (String.concat "," (List.map string_of_int b.ref_args)))
    Vrp_suite.Suite.benchmarks

(* --- Terms --- *)

let args_pair ~names ~doc ~default =
  Arg.(value & opt (pair ~sep:',' int int) default & info names ~docv:"N,SEED" ~doc)

(* --- fuzz: property-based soundness campaign --- *)

let fuzz seed count profile minimize out determinism_every
    (_diagnostics, _strict, fault) =
  let config = { Engine.default_config with Engine.fault } in
  let profiles =
    match profile with
    | None -> Vrp_fuzz.Gen.profiles
    | Some name -> (
      match Vrp_fuzz.Gen.profile_named name with
      | Some p -> [ p ]
      | None ->
        prerr_endline
          (Printf.sprintf "vrpc: unknown fuzz profile %S; available: %s" name
             (String.concat ", "
                (List.map
                   (fun (p : Vrp_fuzz.Gen.profile) -> p.Vrp_fuzz.Gen.pname)
                   Vrp_fuzz.Gen.profiles)));
        exit 2)
  in
  let summary =
    Vrp_fuzz.Runner.run ~config ~minimize ~determinism_every ~seed ~count
      ~profiles ()
  in
  print_string (Vrp_fuzz.Runner.render summary);
  (match out with
  | Some dir ->
    List.iter
      (fun f ->
        let path = Vrp_fuzz.Runner.write_repro ~dir ~seed f in
        Printf.printf "wrote %s\n" path)
      summary.Vrp_fuzz.Runner.failures
  | None -> ());
  if summary.Vrp_fuzz.Runner.failures <> [] then exit 1

let fuzz_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed; fixes every generated program.")

let fuzz_count_arg =
  Arg.(
    value & opt int 100
    & info [ "count" ] ~docv:"N" ~doc:"Programs to generate per profile.")

let fuzz_profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"NAME"
        ~doc:
          "Weight profile: $(b,mixed), $(b,loops), $(b,branches), \
           $(b,arrays) or $(b,calls). Default: all of them.")

let fuzz_minimize_arg =
  Arg.(
    value & flag
    & info [ "minimize" ]
        ~doc:"Shrink each failing program to a minimal repro before reporting.")

let fuzz_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Write each failure as a replayable .mc repro under $(docv).")

let fuzz_det_arg =
  Arg.(
    value & opt int 10
    & info [ "determinism-every" ] ~docv:"N"
        ~doc:
          "Run the (expensive) differential-determinism oracle on every \
           $(docv)-th program; 0 disables it.")

let cmd_of name doc term = Cmd.v (Cmd.info name ~doc) term

let dump_ast_cmd =
  cmd_of "dump-ast" "Parse, type-check and pretty-print the program."
    Term.(const dump_ast $ file_arg $ bench_arg)

let dump_ir_cmd =
  cmd_of "dump-ir" "Print the canonical SSA control flow graph."
    Term.(const dump_ir $ file_arg $ bench_arg $ fn_arg)

let ranges_cmd =
  cmd_of "ranges" "Print the final value range of every SSA variable."
    Term.(const ranges $ file_arg $ bench_arg $ numeric_arg $ fn_arg $ diag_args)

let predict_cmd =
  cmd_of "predict" "Print branch probabilities from VRP and the heuristic baselines."
    Term.(const predict $ file_arg $ bench_arg $ numeric_arg $ jobs_arg $ diag_args)

let batch_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some dir) None
      & info [] ~docv:"DIR" ~doc:"Directory of MiniC files to analyse.")
  in
  let cache_max_mb_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-mb" ] ~docv:"MB"
          ~doc:
            "Cap the on-disk summary cache at $(docv) megabytes; the oldest \
             entries are evicted at startup to fit the budget.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Cancel any single function analysis running longer than \
             $(docv) milliseconds of wall clock; the function is demoted to \
             the Ball–Larus fallback instead of stalling the batch.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry a failed or cancelled function analysis up to $(docv) \
             times (with deterministic backoff) before demoting it.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"JOURNAL"
          ~doc:
            "Checkpoint each completed file to $(docv) and, if it already \
             holds records from an interrupted run, skip the files whose \
             inputs are unchanged — the report stays byte-identical to an \
             uninterrupted run.")
  in
  cmd_of "batch"
    "Analyse every MiniC file in a directory concurrently with summary \
     caching, supervision and checkpoint/resume."
    Term.(
      const batch $ dir_arg $ jobs_arg $ cache_arg $ cache_max_mb_arg
      $ deadline_arg $ retries_arg $ resume_arg $ numeric_arg $ diag_args)

let run_cmd =
  let args =
    Arg.(
      value
      & opt (list ~sep:',' int) [ 100; 1 ]
      & info [ "args" ] ~docv:"N,SEED" ~doc:"Arguments passed to main.")
  in
  cmd_of "run" "Interpret the program and report its execution profile."
    Term.(const run $ file_arg $ bench_arg $ args)

let compare_cmd =
  let train = args_pair ~names:[ "train" ] ~doc:"Training input." ~default:(100, 1) in
  let ref_ = args_pair ~names:[ "reference" ] ~doc:"Reference input." ~default:(1000, 2) in
  let wrap f b (tn, ts) (rn, rs) dopts = compare f b [ tn; ts ] [ rn; rs ] dopts in
  cmd_of "compare" "Compare every predictor against observed branch behaviour."
    Term.(const wrap $ file_arg $ bench_arg $ train $ ref_ $ diag_args)

let optimize_cmd =
  cmd_of "optimize" "Report and apply constant/copy subsumption and unreachable code."
    Term.(const optimize $ file_arg $ bench_arg $ numeric_arg $ diag_args)

let bounds_cmd =
  cmd_of "bounds" "Report array bounds checks proven redundant by value ranges."
    Term.(const bounds $ file_arg $ bench_arg $ numeric_arg $ diag_args)

let alias_cmd =
  cmd_of "alias" "Report array access pairs proven disjoint by value ranges."
    Term.(const alias $ file_arg $ bench_arg)

let freq_cmd =
  let top =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc:"How many hot blocks to list.")
  in
  cmd_of "freq" "Predicted block and function execution frequencies (paper section 6)."
    Term.(const freq $ file_arg $ bench_arg $ numeric_arg $ top $ diag_args)

let dot_cmd =
  let annotate =
    Arg.(value & flag & info [ "annotate" ] ~doc:"Annotate with probabilities/frequencies.")
  in
  cmd_of "dot" "Emit the control flow graph in Graphviz DOT format."
    Term.(const dot $ file_arg $ bench_arg $ fn_arg $ annotate)

let list_cmd =
  cmd_of "list" "List the built-in benchmark suite." Term.(const list_benchmarks $ const ())

let fuzz_cmd =
  cmd_of "fuzz"
    "Property-based soundness fuzzing: generate random programs, check the \
     analysis against the interpreter, shrink failures."
    Term.(
      const fuzz $ fuzz_seed_arg $ fuzz_count_arg $ fuzz_profile_arg
      $ fuzz_minimize_arg $ fuzz_out_arg $ fuzz_det_arg $ diag_args)

let main_cmd =
  Cmd.group
    (Cmd.info "vrpc" ~version:"1.0.0"
       ~doc:"Static branch prediction by value range propagation (PLDI 1995)")
    [
      dump_ast_cmd;
      dump_ir_cmd;
      ranges_cmd;
      predict_cmd;
      batch_cmd;
      run_cmd;
      compare_cmd;
      optimize_cmd;
      bounds_cmd;
      alias_cmd;
      freq_cmd;
      dot_cmd;
      list_cmd;
      fuzz_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
