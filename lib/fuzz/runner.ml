(** Fuzzing campaign driver (see the interface). *)

module Prng = Vrp_util.Prng
module Pretty = Vrp_lang.Pretty
module Engine = Vrp_core.Engine

type failure = {
  profile : string;
  index : int;
  source : string;
  violations : Oracle.violation list;
  minimized : string option;
  shrink_tries : int;
}

type summary = {
  programs : int;
  trapped : int;
  membership_checked : int;
  determinism_checked : int;
  algebra_checked : int;
  failures : failure list;
}

(* Per-program seed: an explicit string/int mix (not [Hashtbl.hash], whose
   algorithm is not a documented contract) so campaign coordinates map to
   the same program forever. *)
let mix_seed seed pname index =
  let h = ref (seed land max_int) in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land max_int) pname;
  ((!h * 1_000_003) + index) land max_int

let run ?(config = Engine.default_config) ?(minimize = false)
    ?(determinism_every = 10) ?(shrink_budget = 500) ~seed ~count ~profiles ()
    : summary =
  let programs = ref 0 in
  let trapped = ref 0 in
  let checked = ref 0 in
  let det = ref 0 in
  let alg = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (p : Gen.profile) ->
      for i = 0 to count - 1 do
        incr programs;
        let rng = Prng.create (mix_seed seed p.Gen.pname i) in
        let ast = Gen.program rng ~weights:p.Gen.weights in
        let source = Pretty.program_to_string ast in
        let o = Oracle.check ~config source in
        if o.Oracle.trapped then incr trapped;
        if o.Oracle.membership_checked then incr checked;
        let violations = ref o.Oracle.violations in
        (* Differential algebra refinement: v1 vs v2 on every program the
           full config would run with the algebra on. *)
        if config.Engine.symbolic && config.Engine.algebra then begin
          let armed, av = Oracle.check_algebra ~config source in
          if armed then incr alg;
          violations := !violations @ av
        end;
        if determinism_every > 0 && i mod determinism_every = 0 then begin
          incr det;
          let name = Printf.sprintf "%s_%d" p.Gen.pname i in
          violations := !violations @ Oracle.check_determinism ~config ~name source
        end;
        if !violations <> [] then begin
          let prop = (List.hd !violations).Oracle.prop in
          let minimized, shrink_tries =
            if not minimize then (None, 0)
            else begin
              let still_fails cand =
                let src = Pretty.program_to_string cand in
                match prop with
                | Oracle.Determinism ->
                  Oracle.check_determinism ~config ~name:"shrink" src <> []
                | Oracle.Algebra_refinement ->
                  snd (Oracle.check_algebra ~config src) <> []
                | _ ->
                  let oc = Oracle.check ~config src in
                  List.exists
                    (fun (v : Oracle.violation) -> v.Oracle.prop = prop)
                    oc.Oracle.violations
              in
              (* Guard against a pretty/AST mismatch: only shrink when the
                 AST itself reproduces the failure. *)
              if still_fails ast then begin
                let small, tries =
                  Shrink.minimize ~budget:shrink_budget ~still_fails ast
                in
                (Some (Pretty.program_to_string small), tries)
              end
              else (None, 0)
            end
          in
          failures :=
            {
              profile = p.Gen.pname;
              index = i;
              source;
              violations = !violations;
              minimized;
              shrink_tries;
            }
            :: !failures
        end
      done)
    profiles;
  {
    programs = !programs;
    trapped = !trapped;
    membership_checked = !checked;
    determinism_checked = !det;
    algebra_checked = !alg;
    failures = List.rev !failures;
  }

let line_count s =
  String.split_on_char '\n' (String.trim s) |> List.length

let render (s : summary) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b "programs: %d\n" s.programs;
  Printf.bprintf b "trapped: %d\n" s.trapped;
  Printf.bprintf b "membership-checked: %d\n" s.membership_checked;
  Printf.bprintf b "determinism-checked: %d\n" s.determinism_checked;
  Printf.bprintf b "algebra-checked: %d\n" s.algebra_checked;
  Printf.bprintf b "failures: %d\n" (List.length s.failures);
  List.iter
    (fun f ->
      Printf.bprintf b "\nFAIL profile=%s program=%d\n" f.profile f.index;
      List.iter
        (fun v -> Printf.bprintf b "  %s\n" (Oracle.violation_to_string v))
        f.violations;
      match f.minimized with
      | Some m ->
        Printf.bprintf b "  minimized to %d lines (%d shrink evaluations):\n"
          (line_count m) f.shrink_tries;
        List.iter
          (fun l -> Printf.bprintf b "    %s\n" l)
          (String.split_on_char '\n' (String.trim m))
      | None -> ())
    s.failures;
  Buffer.contents b

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write_repro ~dir ~seed (f : failure) : string =
  mkdir_p dir;
  let prop = Oracle.property_name (List.hd f.violations).Oracle.prop in
  let path =
    Filename.concat dir
      (Printf.sprintf "repro_%s_%s_%d_%d.mc" prop f.profile seed f.index)
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "// vrpc fuzz repro\n";
      Printf.fprintf oc "// campaign: seed %d, profile %s, program %d\n" seed
        f.profile f.index;
      List.iter
        (fun v ->
          Printf.fprintf oc "// %s\n" (Oracle.violation_to_string v))
        f.violations;
      Printf.fprintf oc "\n%s"
        (match f.minimized with Some m -> m | None -> f.source));
  path
