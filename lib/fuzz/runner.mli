(** Fuzzing campaign driver: generate, check, shrink, report.

    A campaign is fully determined by [(seed, count, profiles)]: program
    [i] of profile [p] is generated from a PRNG seeded by mixing [seed],
    the profile name and [i], so any failure is replayable in isolation.
    Each program runs through {!Oracle.check} and (when the configuration
    enables the sum-of-products algebra) the differential
    {!Oracle.check_algebra}; every [determinism_every]-th program
    additionally runs the (much more expensive) differential
    {!Oracle.check_determinism}. Failures are optionally minimised with
    {!Shrink.minimize} under a predicate that accepts only candidates
    failing the same property. The summary is deterministic — no timing,
    no absolute paths — so campaign output can be diffed across runs. *)

module Engine = Vrp_core.Engine

type failure = {
  profile : string;
  index : int;  (** which program of the profile's [count] *)
  source : string;  (** the generated program *)
  violations : Oracle.violation list;
  minimized : string option;  (** shrunk source, when minimisation ran *)
  shrink_tries : int;  (** predicate evaluations the shrinker used *)
}

type summary = {
  programs : int;
  trapped : int;  (** programs where some run trapped (benign) *)
  membership_checked : int;
      (** programs whose static results were trusted end to end *)
  determinism_checked : int;
  algebra_checked : int;
      (** programs where the {!Oracle.check_algebra} differential was
          armed (both the algebra-off and algebra-on runs converged) *)
  failures : failure list;
}

(** The campaign-coordinate contract: program [index] of profile [pname]
    under [seed] is generated from [Prng.create (mix_seed seed pname
    index)], forever. Exposed so other corpus producers (e.g. the learned
    predictor's training sets) share the same coordinates. *)
val mix_seed : int -> string -> int -> int

val run :
  ?config:Engine.config ->
  ?minimize:bool ->
  ?determinism_every:int ->
  ?shrink_budget:int ->
  seed:int ->
  count:int ->
  profiles:Gen.profile list ->
  unit ->
  summary

val render : summary -> string

(** Write one failure as a replayable repro under [dir] (created if
    missing): a [//]-comment header with the campaign coordinates and the
    violations, followed by the minimised (preferred) or original source.
    Returns the file path. *)
val write_repro : dir:string -> seed:int -> failure -> string
