(** Soundness oracles: the five checkable properties relating static
    analysis claims to concrete interpreter behaviour.

    The interpreter is the ground truth. {!check} compiles one program,
    runs the full static pipeline (interprocedural VRP, SCCP, bounds-check
    elimination), then executes the program under {!Vrp_profile.Interp}'s
    observation hook for several argument vectors and compares every
    event against the static claims:

    - {b Range soundness} — every runtime value of every SSA definition
      lies within its inferred range (symbolic ranges are conservatively
      treated as containing; an executed definition the analysis claims
      unreachable is a violation).
    - {b Constant soundness} — every variable SCCP proves a constant
      equals that constant at runtime.
    - {b Bounds safety} — no access whose check was [provably_safe]
      is ever out of bounds.
    - {b Prediction consistency} — a branch VRP proves one-way
      (probability exactly 0.0 or 1.0, no fallback) never takes the
      other edge.
    - {b Determinism} ({!check_determinism}) — parallel, cache-hit and
      journal-resumed batch runs render byte-identically to sequential.

    Membership-style oracles (range / bounds / prediction) are only armed
    when the static results are trustworthy end to end: the
    interprocedural driver converged, no function was demoted, and no
    analysis exhausted fuel or timed out. Otherwise the documented
    contracts already waive the claims, so checking them would only
    produce false positives. The constant oracle is unconditional (SCCP is
    intraprocedural and treats parameters and loads as ⊥).

    Runtime traps (division by zero, out-of-bounds access, step budget)
    are benign: events observed before the trap are still checked. *)

module Engine = Vrp_core.Engine

type property =
  | Well_formed
      (** the pipeline or interpreter itself failed on a generated program *)
  | Range_soundness
  | Constant_soundness
  | Bounds_safety
  | Prediction_consistency
  | Determinism
  | Algebra_refinement
      (** the sum-of-products algebra weakened a claim the v1 analysis
          made: a range loosened, a one-way branch un-proved, or a
          bounds-check elimination lost (see {!check_algebra}) *)

val property_name : property -> string

type violation = { prop : property; vfn : string; detail : string }

val violation_to_string : violation -> string

(** Is [n] certainly a member of the value? ⊥ contains everything, ⊤
    nothing, symbolic ranges conservatively everything. This is the
    membership relation of the range-soundness oracle and of the
    lattice-law property tests (member-set semantics). *)
val value_contains : Vrp_ranges.Value.t -> int -> bool

type outcome = {
  violations : violation list;  (** deduplicated per site, capped *)
  trapped : bool;  (** some run trapped (benign, events still checked) *)
  membership_checked : bool;
      (** static results were trusted end to end, so the range, bounds and
          prediction oracles were armed *)
}

(** Check one program against the four execution oracles. [args_list]
    (default {!Gen.main_args}) are the [main] argument vectors, padded or
    truncated to [main]'s arity. *)
val check :
  ?config:Engine.config -> ?args_list:int list list -> string -> outcome

(** Check the differential-determinism property for one [(name, source)]
    program: sequential vs [--jobs 4], cold vs warm vs reopened summary
    cache, and fresh vs resumed checkpoint journal must all render
    byte-identical batch reports. Uses temporary cache/journal paths,
    removed before returning. *)
val check_determinism :
  ?config:Engine.config -> name:string -> string -> violation list

(** Differential refinement check for the sum-of-products algebra: analyse
    the program with [algebra] off and on (everything else from [config]),
    and require that switching it on only refines — inferred ranges only
    tighten (checked decidably over a probe grid, v2-⊥ vacuous), branches
    proven one-way stay proven with the same direction, and per-site
    bounds-check eliminations only grow. Returns [(armed, violations)]:
    [armed] is false (and the list empty) when either side failed to
    converge end to end, in which case governor timing — not the algebra —
    would explain any difference. *)
val check_algebra : ?config:Engine.config -> string -> bool * violation list
