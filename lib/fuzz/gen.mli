(** Grammar fuzzer: random well-typed MiniC programs.

    A real expression/statement generator over the {!Vrp_lang.Ast} grammar,
    richer than [Synth.generate]'s fixed shape mix but parameterised by the
    same {!Vrp_suite.Synth.weights} table so the two generators cannot
    drift. Programs are constructed to be accepted by the type checker and
    to terminate: every [for] loop has literal bounds and a positive
    literal stride, every [while] loop counts a dedicated variable down by
    a literal, loop counters are never targets of random assignments, and
    functions only call previously generated functions (no recursion).
    Runtime traps (division by zero, out-of-bounds indices) are possible
    but deliberately rare. Deterministic in the PRNG state. *)

module Ast = Vrp_lang.Ast

(** A named weight profile for {!program}. *)
type profile = { pname : string; weights : Vrp_suite.Synth.weights }

(** The fuzzing profiles of the CLI and CI: [mixed], [loops], [branches],
    [arrays], [calls], [features] (branch-shape diversity for
    learned-predictor training corpora), plus [affine] — guarded affine
    index patterns ([2*i+1], [size-1-i], [x+c]) only the sum-of-products
    algebra can discharge. *)
val profiles : profile list

val profile_named : string -> profile option

(** Generate one program. *)
val program : Vrp_util.Prng.t -> weights:Vrp_suite.Synth.weights -> Ast.program

(** [main] argument vectors the oracles drive each program with. *)
val main_args : int list list

(** Random numeric {!Vrp_ranges.Value.t} (including occasional ⊤/⊥) for
    the lattice-law property tests. *)
val value : Vrp_util.Prng.t -> Vrp_ranges.Value.t
