(** Soundness oracles (see the interface for the property catalogue). *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Value = Vrp_ranges.Value
module Srange = Vrp_ranges.Srange
module P = Vrp_ranges.Progression
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc
module Pipeline = Vrp_core.Pipeline
module Sccp = Vrp_core.Sccp
module Bounds_check = Vrp_core.Bounds_check
module Interp = Vrp_profile.Interp
module Diag = Vrp_diag.Diag
module Batch = Vrp_sched.Batch
module Summary_cache = Vrp_cache.Summary_cache

type property =
  | Well_formed
  | Range_soundness
  | Constant_soundness
  | Bounds_safety
  | Prediction_consistency
  | Determinism
  | Algebra_refinement

let property_name = function
  | Well_formed -> "well-formed"
  | Range_soundness -> "range-soundness"
  | Constant_soundness -> "constant-soundness"
  | Bounds_safety -> "bounds-safety"
  | Prediction_consistency -> "prediction-consistency"
  | Determinism -> "determinism"
  | Algebra_refinement -> "algebra-refinement"

type violation = { prop : property; vfn : string; detail : string }

let violation_to_string v =
  if v.vfn = "" then Printf.sprintf "[%s] %s" (property_name v.prop) v.detail
  else Printf.sprintf "[%s] %s: %s" (property_name v.prop) v.vfn v.detail

type outcome = {
  violations : violation list;
  trapped : bool;
  membership_checked : bool;
}

(* Keep the violation list small and stable: one report per static site,
   at most [max_violations] total — a buggy analysis inside a loop would
   otherwise flood the report with copies of the same unsoundness. *)
let max_violations = 25

let interp_max_steps = 200_000

(* Is the concrete integer [n] certainly a member of [v]? Symbolic ranges
   are conservatively "yes" (their concrete extent is not decidable here);
   ⊤ is "no": under end-to-end trust an executed definition the analysis
   never evaluated means an edge it proved dead was taken. *)
let value_contains (v : Value.t) (n : int) : bool =
  match v with
  | Value.Bottom -> true
  | Value.Top -> false
  | Value.Ranges rs ->
    List.exists
      (fun r ->
        if Srange.is_numeric r then
          match Srange.prog r with Some pr -> P.mem n pr | None -> true
        else true)
      rs

let memo (f : string -> 'a) : string -> 'a =
  let tbl : (string, 'a) Hashtbl.t = Hashtbl.create 8 in
  fun key ->
    match Hashtbl.find_opt tbl key with
    | Some v -> v
    | None ->
      let v = f key in
      Hashtbl.add tbl key v;
      v

(* Static results are trustworthy end to end: the driver converged, no
   function was demoted, no analysis exhausted fuel or timed out. *)
let end_to_end_trusted (ssa : Ir.program) (ipa : Interproc.t) : bool =
  ipa.Interproc.converged
  && Hashtbl.length ipa.Interproc.failed = 0
  && List.for_all
       (fun (f : Ir.fn) ->
         match Interproc.result ipa f.Ir.fname with
         | Some r -> not (r.Engine.fuel_exhausted || r.Engine.timed_out)
         | None -> true)
       ssa.Ir.fns

let check ?(config = Engine.default_config)
    ?(args_list = Gen.main_args) (source : string) : outcome =
  match Pipeline.compile_result source with
  | Error d ->
    {
      violations = [ { prop = Well_formed; vfn = ""; detail = Diag.diag_to_string d } ];
      trapped = false;
      membership_checked = false;
    }
  | Ok compiled ->
    let ssa = compiled.Pipeline.ssa in
    let ipa = Interproc.analyze ~config ssa in
    (* Membership oracles are armed only when the static results are
       trustworthy end to end (see the interface). *)
    let trusted = end_to_end_trusted ssa ipa in
    let engine_of = memo (fun fn -> Interproc.result ipa fn) in
    let sccp_of =
      memo (fun fn ->
          List.find_opt (fun (f : Ir.fn) -> f.Ir.fname = fn) ssa.Ir.fns
          |> Option.map Sccp.analyze)
    in
    (* (fn, block, instr index) -> static check: an instruction holds at
       most one access, so the key is exact. *)
    let bounds_map : (string * int * int, Bounds_check.check) Hashtbl.t =
      Hashtbl.create 32
    in
    if trusted then
      List.iter
        (fun (f : Ir.fn) ->
          match engine_of f.Ir.fname with
          | None -> ()
          | Some res ->
            let report =
              Bounds_check.analyze
                ~algebra:(config.Engine.symbolic && config.Engine.algebra)
                ssa res
            in
            List.iter
              (fun (c : Bounds_check.check) ->
                Hashtbl.replace bounds_map
                  (f.Ir.fname, c.Bounds_check.block, c.Bounds_check.instr_index)
                  c)
              report.Bounds_check.checks)
        ssa.Ir.fns;
    let violations = ref [] in
    let nviol = ref 0 in
    (* site: a small int identifying the static site within [vfn], for
       per-site dedup. *)
    let seen : (string * string * int, unit) Hashtbl.t = Hashtbl.create 16 in
    let add prop ~vfn ~site detail =
      let key = (property_name prop, vfn, site) in
      if (not (Hashtbl.mem seen key)) && !nviol < max_violations then begin
        Hashtbl.add seen key ();
        incr nviol;
        violations := { prop; vfn; detail } :: !violations
      end
    in
    let branch_counts : (string * int, int * int) Hashtbl.t =
      Hashtbl.create 64
    in
    let observe (ev : Interp.event) =
      match ev with
      | Interp.Ev_def { fn; var; value = Interp.Vint n } ->
        (if trusted then
           match engine_of fn with
           | Some res when var.Var.id < Array.length res.Engine.values ->
             let v = res.Engine.values.(var.Var.id) in
             if not (value_contains v n) then
               add Range_soundness ~vfn:fn ~site:var.Var.id
                 (Printf.sprintf "%s = %d outside inferred %s"
                    (Var.to_string var) n (Value.to_string v))
           | _ -> ());
        (match sccp_of fn with
         | Some s when var.Var.id < Array.length s.Sccp.values -> (
           match s.Sccp.values.(var.Var.id) with
           | Sccp.Cint k when k <> n ->
             add Constant_soundness ~vfn:fn ~site:var.Var.id
               (Printf.sprintf "%s proven constant %d, observed %d"
                  (Var.to_string var) k n)
           | _ -> ())
         | _ -> ())
      | Interp.Ev_def _ -> ()
      | Interp.Ev_branch { fn; block; taken } ->
        let t, tot =
          Option.value ~default:(0, 0)
            (Hashtbl.find_opt branch_counts (fn, block))
        in
        Hashtbl.replace branch_counts (fn, block)
          ((if taken then t + 1 else t), tot + 1)
      | Interp.Ev_access { fn; block; instr; array; index; size; is_store } ->
        if trusted then (
          match Hashtbl.find_opt bounds_map (fn, block, instr) with
          | Some c when c.Bounds_check.provably_safe ->
            if index < 0 || index >= size then
              add Bounds_safety ~vfn:fn ~site:((block * 1024) + instr)
                (Printf.sprintf
                   "%s of %s[%d] (size %d) proven safe but out of bounds"
                   (if is_store then "store" else "load")
                   array index size)
          | _ -> ())
      | Interp.Ev_enter _ | Interp.Ev_return _ -> ()
    in
    let main_arity =
      match List.find_opt (fun (f : Ir.fn) -> f.Ir.fname = "main") ssa.Ir.fns with
      | Some f -> List.length f.Ir.params
      | None -> 0
    in
    let adapt args =
      let rec fit n = function
        | _ when n = 0 -> []
        | [] -> 0 :: fit (n - 1) []
        | a :: rest -> a :: fit (n - 1) rest
      in
      fit main_arity args
    in
    let trapped = ref false in
    List.iter
      (fun args ->
        match
          Interp.run ~max_steps:interp_max_steps ~capture_output:true ~observe
            ssa ~args:(adapt args)
        with
        | _ -> ()
        | exception Interp.Trap _ -> trapped := true
        | exception e ->
          add Well_formed ~vfn:"" ~site:0
            ("interpreter raised " ^ Printexc.to_string e))
      args_list;
    (* Prediction consistency: compare accumulated outcome counts against
       branches proven one-way. Exact 0.0 / 1.0 only — merged probabilities
       are float sums, and anything strictly inside (0,1) claims nothing
       about individual executions. *)
    if trusted then
      List.iter
        (fun (f : Ir.fn) ->
          match engine_of f.Ir.fname with
          | None -> ()
          | Some res ->
            Ir.iter_blocks f (fun b ->
                match b.Ir.term with
                | Ir.Br _ -> (
                  match Engine.branch_prob res b.Ir.bid with
                  | Some p
                    when (p = 0.0 || p = 1.0)
                         && not (Engine.used_fallback res b.Ir.bid) -> (
                    match
                      Hashtbl.find_opt branch_counts (f.Ir.fname, b.Ir.bid)
                    with
                    | Some (taken, total) ->
                      if p = 1.0 && taken < total then
                        add Prediction_consistency ~vfn:f.Ir.fname
                          ~site:b.Ir.bid
                          (Printf.sprintf
                             "block %d proven always-taken, observed %d/%d \
                              taken"
                             b.Ir.bid taken total)
                      else if p = 0.0 && taken > 0 then
                        add Prediction_consistency ~vfn:f.Ir.fname
                          ~site:b.Ir.bid
                          (Printf.sprintf
                             "block %d proven never-taken, observed %d/%d \
                              taken"
                             b.Ir.bid taken total)
                    | None -> ())
                  | _ -> ())
                | _ -> ()))
        ssa.Ir.fns;
    {
      violations = List.rev !violations;
      trapped = !trapped;
      membership_checked = trusted;
    }

(* ------------------------------------------------------------------ *)
(* Differential determinism                                            *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let temp_path prefix =
  let f = Filename.temp_file prefix "" in
  Sys.remove f;
  f

let check_determinism ?(config = Engine.default_config) ~(name : string)
    (source : string) : violation list =
  let sources = [ (name, source) ] in
  let render ?cache ?journal jobs =
    Batch.render (Batch.analyze_sources ~config ?cache ?journal ~jobs sources)
  in
  let reference = render 1 in
  let violations = ref [] in
  let expect mode rendered =
    if rendered <> reference then
      violations :=
        {
          prop = Determinism;
          vfn = name;
          detail = mode ^ " batch report differs from the sequential render";
        }
        :: !violations
  in
  expect "parallel (--jobs 4)" (render 4);
  let cache_dir = temp_path "vrpfuzz_cache" in
  let journal = temp_path "vrpfuzz_journal" in
  Fun.protect
    ~finally:(fun () ->
      rm_rf cache_dir;
      if Sys.file_exists journal then Sys.remove journal)
    (fun () ->
      let cache = Summary_cache.create ~disk_dir:cache_dir () in
      expect "cold-cache" (render ~cache 1);
      expect "warm-cache" (render ~cache 1);
      Summary_cache.close cache;
      let reopened = Summary_cache.create ~disk_dir:cache_dir () in
      expect "reopened-cache" (render ~cache:reopened 1);
      Summary_cache.close reopened;
      expect "journalled" (render ~journal 1);
      expect "journal-resumed" (render ~journal 1));
  List.rev !violations

(* ------------------------------------------------------------------ *)
(* Differential algebra refinement                                     *)

(* Membership probes for the "ranges only tighten" direction: a dense grid
   around the magnitudes the generator emits, plus a few outliers. *)
let probe_grid =
  List.init 131 (fun i -> i - 65) @ [ -65536; -1000; -256; 255; 1000; 65535 ]

(* Decidable membership: [Some] only when the value is numeric enough to
   decide. Symbolic bounds are undecided — their concrete extent depends on
   the base — so they can never produce a (false-positive) disagreement. *)
let decided_mem (v : Value.t) (n : int) : bool option =
  match v with
  | Value.Bottom -> Some true
  | Value.Top -> Some false
  | Value.Ranges rs ->
    let rec go = function
      | [] -> Some false
      | r :: rest ->
        if not (Srange.is_numeric r) then None
        else (
          match Srange.prog r with
          | None -> None
          | Some p -> if P.mem n p then Some true else go rest)
    in
    go rs

let check_algebra ?(config = Engine.default_config) (source : string) :
    bool * violation list =
  match Pipeline.compile_result source with
  | Error _ -> (false, []) (* [check] reports the Well_formed failure *)
  | Ok compiled ->
    let ssa = compiled.Pipeline.ssa in
    let ipa1 = Interproc.analyze ~config:{ config with Engine.algebra = false } ssa in
    let ipa2 = Interproc.analyze ~config:{ config with Engine.algebra = true } ssa in
    (* Both sides must be trustworthy end to end, else governor timing —
       not the algebra — explains any difference. *)
    if not (end_to_end_trusted ssa ipa1 && end_to_end_trusted ssa ipa2) then
      (false, [])
    else begin
      let violations = ref [] in
      let nviol = ref 0 in
      let add ~vfn detail =
        if !nviol < max_violations then begin
          incr nviol;
          violations := { prop = Algebra_refinement; vfn; detail } :: !violations
        end
      in
      List.iter
        (fun (f : Ir.fn) ->
          match (Interproc.result ipa1 f.Ir.fname, Interproc.result ipa2 f.Ir.fname) with
          | Some r1, Some r2 ->
            (* Ranges only tighten: no value decidably excluded without the
               algebra may be decidably admitted with it. A ⊥ on the v2
               side claims nothing and is vacuous. *)
            Array.iteri
              (fun id val1 ->
                if id < Array.length r2.Engine.values then
                  match r2.Engine.values.(id) with
                  | Value.Bottom -> ()
                  | val2 ->
                    List.iter
                      (fun n ->
                        match (decided_mem val1 n, decided_mem val2 n) with
                        | Some false, Some true ->
                          add ~vfn:f.Ir.fname
                            (Printf.sprintf
                               "v%d: %d excluded without algebra (%s) but \
                                admitted with it (%s)"
                               id n (Value.to_string val1) (Value.to_string val2))
                        | _ -> ())
                      probe_grid)
              r1.Engine.values;
            (* One-way branches are preserved: a branch proven one-way
               without the algebra stays proven, with the same direction
               (unless the whole block died, which is strictly stronger). *)
            Ir.iter_blocks f (fun b ->
                match b.Ir.term with
                | Ir.Br _ when r2.Engine.visited.(b.Ir.bid) -> (
                  match Engine.branch_prob r1 b.Ir.bid with
                  | Some p
                    when (p = 0.0 || p = 1.0)
                         && not (Engine.used_fallback r1 b.Ir.bid) -> (
                    match Engine.branch_prob r2 b.Ir.bid with
                    | Some q when q = p && not (Engine.used_fallback r2 b.Ir.bid)
                      ->
                      ()
                    | _ ->
                      add ~vfn:f.Ir.fname
                        (Printf.sprintf
                           "block %d proven one-way (p=%.1f) without algebra \
                            but not with it"
                           b.Ir.bid p))
                  | _ -> ())
                | _ -> ());
            (* Bounds-check eliminations only grow (site by site). *)
            let rep1 = Bounds_check.analyze ~algebra:false ssa r1 in
            let rep2 = Bounds_check.analyze ~algebra:true ssa r2 in
            let safe2 = Hashtbl.create 16 in
            List.iter
              (fun (c : Bounds_check.check) ->
                Hashtbl.replace safe2
                  (c.Bounds_check.block, c.Bounds_check.instr_index)
                  c.Bounds_check.provably_safe)
              rep2.Bounds_check.checks;
            List.iter
              (fun (c : Bounds_check.check) ->
                if c.Bounds_check.provably_safe then
                  match
                    Hashtbl.find_opt safe2
                      (c.Bounds_check.block, c.Bounds_check.instr_index)
                  with
                  | Some true | None -> ()
                  | Some false ->
                    add ~vfn:f.Ir.fname
                      (Printf.sprintf
                         "check %s[.] at block %d instr %d eliminated without \
                          algebra but not with it"
                         c.Bounds_check.array c.Bounds_check.block
                         c.Bounds_check.instr_index))
              rep1.Bounds_check.checks
          | _ -> ())
        ssa.Ir.fns;
      (true, List.rev !violations)
    end
