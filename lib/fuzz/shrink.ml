(** Greedy structural shrinker (see the interface for the strategy). *)

module Ast = Vrp_lang.Ast
open Ast

let rec stmt_size (s : stmt) : int =
  match s.sdesc with
  | Sif (_, t, e) ->
    1 + block_size t + (match e with Some b -> block_size b | None -> 0)
  | Swhile (_, b) -> 1 + block_size b
  | Sfor (init, _, step, b) ->
    1
    + (match init with Some s -> stmt_size s | None -> 0)
    + (match step with Some s -> stmt_size s | None -> 0)
    + block_size b
  | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue | Sexpr _ -> 1

and block_size (b : block) : int = List.fold_left (fun a s -> a + stmt_size s) 0 b

let size (p : program) : int =
  List.fold_left (fun a f -> a + block_size f.body) 0 p.funcs

(* Expression rewrites, smaller-first: literal constants, then direct
   subexpressions, then one side simplified recursively. Ill-typed results
   (a float where an int is needed, a void call as a value) are fine —
   the caller's predicate rejects anything that stops compiling. *)
let rec expr_variants (e : expr) : expr list =
  let atoms = match e with Int _ | Float _ -> [] | _ -> [ Int 0; Int 1 ] in
  let subs =
    match e with
    | Binop (_, a, b) | Rel (_, a, b) | And (a, b) | Or (a, b) -> [ a; b ]
    | Unop (_, a) -> [ a ]
    | Index (_, i) -> [ i ]
    | Call (_, args) -> args
    | Int _ | Float _ | Var _ -> []
  in
  let inner =
    match e with
    | Binop (op, a, b) ->
      List.map (fun a' -> Binop (op, a', b)) (expr_variants a)
      @ List.map (fun b' -> Binop (op, a, b')) (expr_variants b)
    | Rel (op, a, b) ->
      List.map (fun a' -> Rel (op, a', b)) (expr_variants a)
      @ List.map (fun b' -> Rel (op, a, b')) (expr_variants b)
    | Index (a, i) -> List.map (fun i' -> Index (a, i')) (expr_variants i)
    | Call (f, args) ->
      List.concat
        (List.mapi
           (fun i a ->
             List.map
               (fun a' -> Call (f, List.mapi (fun j x -> if i = j then a' else x) args))
               (expr_variants a))
           args)
    | _ -> []
  in
  atoms @ subs @ inner

(* Replacing a compound statement with (a prefix of) its own body. *)
let unwrap (s : stmt) : block option =
  match s.sdesc with
  | Sif (_, t, None) -> Some t
  | Sif (_, t, Some e) -> Some (t @ e)
  | Swhile (_, b) -> Some b
  | Sfor (init, _, _, b) ->
    Some ((match init with Some i -> [ i ] | None -> []) @ b)
  | _ -> None

let rec stmt_variants (s : stmt) : stmt list =
  let mk sdesc = { s with sdesc } in
  match s.sdesc with
  | Sif (c, t, e) ->
    (match e with Some _ -> [ mk (Sif (c, t, None)) ] | None -> [])
    @ List.map (fun t' -> mk (Sif (c, t', e))) (block_variants t)
    @ (match e with
      | Some eb ->
        List.map (fun e' -> mk (Sif (c, t, Some e'))) (block_variants eb)
      | None -> [])
    @ List.map (fun c' -> mk (Sif (c', t, e))) (expr_variants c)
  | Swhile (c, b) ->
    List.map (fun b' -> mk (Swhile (c, b'))) (block_variants b)
    @ List.map (fun c' -> mk (Swhile (c', b))) (expr_variants c)
  | Sfor (init, cond, step, b) ->
    List.map (fun b' -> mk (Sfor (init, cond, step, b'))) (block_variants b)
  | Sassign (lv, e) ->
    List.map (fun e' -> mk (Sassign (lv, e'))) (expr_variants e)
  | Sdecl (ty, n, Iscalar (Some e)) ->
    mk (Sdecl (ty, n, Iscalar None))
    :: List.map (fun e' -> mk (Sdecl (ty, n, Iscalar (Some e')))) (expr_variants e)
  | Sreturn (Some e) ->
    List.map (fun e' -> mk (Sreturn (Some e'))) (expr_variants e)
  | Sexpr e -> List.map (fun e' -> mk (Sexpr e')) (expr_variants e)
  | Sdecl _ | Sreturn None | Sbreak | Scontinue -> []

and block_variants (b : block) : block list =
  let replace_at i repl =
    List.concat (List.mapi (fun j s -> if i = j then repl else [ s ]) b)
  in
  let drops = List.mapi (fun i _ -> replace_at i []) b in
  let unwraps =
    List.concat
      (List.mapi
         (fun i s ->
           match unwrap s with Some body -> [ replace_at i body ] | None -> [])
         b)
  in
  let rewrites =
    List.concat
      (List.mapi
         (fun i s -> List.map (fun s' -> replace_at i [ s' ]) (stmt_variants s))
         b)
  in
  drops @ unwraps @ rewrites

(* Candidate programs, coarsest-first. Lazily enumerated per round: the
   greedy loop adopts the first accepted candidate and restarts, so later
   (finer) candidates of a round are often never materialised. *)
let candidates (p : program) : program Seq.t =
  let drop_funcs =
    List.filter_map
      (fun (f : func) ->
        if f.fname = "main" then None
        else
          Some
            (fun () ->
              { p with funcs = List.filter (fun g -> g.fname <> f.fname) p.funcs }))
      p.funcs
  in
  let drop_globals =
    List.map
      (fun (g : global) ->
        fun () ->
          { p with globals = List.filter (fun h -> h.gname <> g.gname) p.globals })
      p.globals
  in
  let body_rewrites =
    List.concat_map
      (fun (f : func) ->
        List.map
          (fun body' ->
            fun () ->
              {
                p with
                funcs =
                  List.map
                    (fun g -> if g.fname = f.fname then { g with body = body' } else g)
                    p.funcs;
              })
          (block_variants f.body))
      p.funcs
  in
  List.to_seq (drop_funcs @ drop_globals @ body_rewrites)
  |> Seq.map (fun thunk -> thunk ())

let minimize ?(budget = 500) ~(still_fails : program -> bool) (p0 : program) :
    program * int =
  let tries = ref 0 in
  let current = ref p0 in
  let progress = ref true in
  while !progress && !tries < budget do
    progress := false;
    let rec scan seq =
      if !tries >= budget then ()
      else
        match Seq.uncons seq with
        | None -> ()
        | Some (cand, rest) ->
          incr tries;
          if still_fails cand then begin
            current := cand;
            progress := true
          end
          else scan rest
    in
    scan (candidates !current)
  done;
  (!current, !tries)
