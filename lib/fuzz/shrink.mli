(** Greedy structural shrinker: minimise a failing program while
    preserving its failure.

    Candidates are tried coarsest-first — drop whole functions and
    globals, drop statements, splice loop/conditional bodies into their
    parent block, then rewrite expressions to constants or their own
    subexpressions — and the first candidate accepted by [still_fails]
    becomes the new current program, restarting the scan. The predicate is
    total responsibility of the caller: it should pretty-print the
    candidate, reject anything that no longer compiles, and accept only
    candidates failing the {e same} oracle property, so the minimised
    repro demonstrates the original bug and not a new one. *)

module Ast = Vrp_lang.Ast

(** Number of statements in a program (shrink progress metric). *)
val size : Ast.program -> int

(** The one-step shrink candidates of a program, coarsest first, lazily
    materialised. A fully minimised program has none its predicate
    accepts; an empty sequence means none exist at all. *)
val candidates : Ast.program -> Ast.program Seq.t

(** [minimize ~still_fails p] greedily shrinks [p], calling [still_fails]
    at most [budget] (default 500) times. [still_fails p] itself must be
    true — the caller established the failure. Returns the smallest
    failing program found and the number of predicate evaluations used. *)
val minimize :
  ?budget:int ->
  still_fails:(Ast.program -> bool) ->
  Ast.program ->
  Ast.program * int
