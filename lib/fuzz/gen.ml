(** Grammar fuzzer: random well-typed, terminating MiniC programs.

    Design constraints, all by construction rather than by filtering:

    - {b well-typed}: names are globally fresh (no shadowing), every
      variable is declared before use, integer-only operators never see
      floats, calls match the callee's arity;
    - {b terminating}: [for] loops have literal bounds with positive
      literal strides, [while] loops count a dedicated variable down by a
      literal each iteration, loop counters are excluded from the pool of
      assignable variables, and calls only target functions generated
      earlier (the call graph is a DAG);
    - {b mostly trap-free}: denominators are shaped to be non-zero
      ([x % 7 + 9]), shift amounts are small literals and most array
      indices are reduced modulo the array size — but each also has a rare
      raw variant, so out-of-bounds and division traps still occur and
      exercise the trap paths of the oracles;
    - {b analysis-friendly magnitudes}: literals are small and products of
      two variables are damped with [% 65536], so claimed ranges stay far
      below the engine's symbolic magnitude limit and native-int overflow
      cannot make a claimed range silently wrong (overflowing computations
      widen to ⊥ long before the wrap, and ⊥ claims nothing). *)

module Ast = Vrp_lang.Ast
module Prng = Vrp_util.Prng
module Synth = Vrp_suite.Synth

type profile = { pname : string; weights : Synth.weights }

let profiles =
  [
    {
      pname = "mixed";
      weights =
        { Synth.counted_loops = 1; nested_arrays = 1; data_loops = 1; branchy = 1; calls = 1; affine = 0 };
    };
    {
      pname = "loops";
      weights =
        { Synth.counted_loops = 4; nested_arrays = 1; data_loops = 3; branchy = 1; calls = 1; affine = 0 };
    };
    {
      pname = "branches";
      weights =
        { Synth.counted_loops = 1; nested_arrays = 1; data_loops = 1; branchy = 5; calls = 1; affine = 0 };
    };
    {
      pname = "arrays";
      weights =
        { Synth.counted_loops = 1; nested_arrays = 5; data_loops = 1; branchy = 1; calls = 1; affine = 0 };
    };
    {
      pname = "calls";
      weights =
        { Synth.counted_loops = 1; nested_arrays = 1; data_loops = 1; branchy = 1; calls = 5; affine = 0 };
    };
    (* Branch-shape diversity for learned-predictor corpora: heavy on
       conditionals, with enough loops and array traffic that the loop- and
       range-sensitive features all get exercised. *)
    {
      pname = "features";
      weights =
        { Synth.counted_loops = 3; nested_arrays = 3; data_loops = 2; branchy = 5; calls = 1; affine = 0 };
    };
    (* Affine index patterns ([2*i+1], [size-1-i], guarded [x+c]) whose
       guards recompute the tested expression at the use site — discharged
       by the sum-of-products algebra, never by v1 [var + const] bounds. *)
    {
      pname = "affine";
      weights =
        { Synth.counted_loops = 1; nested_arrays = 1; data_loops = 1; branchy = 1; calls = 1; affine = 6 };
    };
  ]

let profile_named name = List.find_opt (fun p -> String.equal p.pname name) profiles

let main_args = [ [ 0; 0 ]; [ 3; 1 ]; [ 11; 7 ]; [ 64; 13 ] ]

(* --- Generation context --- *)

type ctx = {
  rng : Prng.t;
  w : Synth.weights;
  mutable fresh : int;
  mutable ints : string list;  (** readable int scalars in scope *)
  mutable assignable : string list;  (** subset of [ints] random assigns may target *)
  mutable floats : string list;
  mutable arrays : (string * int) list;  (** name, size *)
  callees : (string * int) list;  (** earlier functions: name, arity *)
  mutable depth : int;  (** control-structure nesting *)
  mutable loop : [ `None | `For | `While ];
      (** innermost enclosing loop kind: [break] needs a loop, and
          [continue] is only safe in [for] loops (in a [while] body it
          would skip the countdown decrement and spin forever) *)
  mutable budget : int;  (** statements left for this function *)
}

let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let stmt sdesc = { Ast.sline = 0; Ast.sdesc }

let pick_list ctx xs = List.nth xs (Prng.int ctx.rng (List.length xs))

(* Weighted choice over (weight, thunk) pairs; weights <= 0 drop out. *)
let weighted ctx choices =
  let choices = List.filter (fun (w, _) -> w > 0) choices in
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  let r = Prng.int ctx.rng total in
  let rec go acc = function
    | [ (_, f) ] -> f
    | (w, f) :: rest -> if r < acc + w then f else go (acc + w) rest
    | [] -> assert false
  in
  (go 0 choices) ()

(* --- Expressions --- *)

let literal ctx =
  (* small, occasionally into the hundreds *)
  if Prng.int ctx.rng 8 = 0 then Ast.Int (Prng.int ctx.rng 1000)
  else Ast.Int (Prng.int ctx.rng 65)

(* An atom: literal, variable, or (rarely) a safe array load. Atoms are the
   only operands multiplication and shifts see (see the header). *)
let rec atom ctx =
  let vars = ctx.ints in
  weighted ctx
    [
      (3, fun () -> literal ctx);
      ((if vars = [] then 0 else 4), fun () -> Ast.Var (pick_list ctx vars));
      ((if ctx.arrays = [] then 0 else 1), fun () -> array_load ctx);
    ]

and safe_index ctx size =
  (* mostly provably in-bounds, sometimes merely dynamically fine, rarely raw *)
  weighted ctx
    [
      (4, fun () -> Ast.Int (Prng.int ctx.rng size));
      ( 3,
        fun () ->
          (* ((e % size) + size) % size: total and in-bounds *)
          let e = atom ctx in
          Ast.Binop
            ( Ast.Mod,
              Ast.Binop (Ast.Add, Ast.Binop (Ast.Mod, e, Ast.Int size), Ast.Int size),
              Ast.Int size ) );
      ( (if ctx.ints = [] then 0 else 2),
        fun () -> Ast.Binop (Ast.Mod, Ast.Var (pick_list ctx ctx.ints), Ast.Int size) );
      (1, fun () -> atom ctx);
    ]

and array_load ctx =
  let name, size = pick_list ctx ctx.arrays in
  Ast.Index (name, safe_index ctx size)

(* A non-zero denominator: [x % 7 + 9] lands in [3, 15]. *)
let denominator ctx =
  weighted ctx
    [
      (5, fun () -> Ast.Int (2 + Prng.int ctx.rng 15));
      ( 3,
        fun () ->
          Ast.Binop (Ast.Add, Ast.Binop (Ast.Mod, atom ctx, Ast.Int 7), Ast.Int 9) );
      (1, fun () -> atom ctx (* may trap *));
    ]

let rec int_expr ctx d =
  if d <= 0 then atom ctx
  else
    weighted ctx
      [
        (3, fun () -> atom ctx);
        ( 4,
          fun () ->
            let op = pick_list ctx [ Ast.Add; Ast.Add; Ast.Sub; Ast.Band; Ast.Bor; Ast.Bxor ] in
            Ast.Binop (op, int_expr ctx (d - 1), int_expr ctx (d - 1)) );
        ( 2,
          fun () ->
            (* literal * atom, or damped atom * atom *)
            if Prng.int ctx.rng 2 = 0 then
              Ast.Binop (Ast.Mul, Ast.Int (2 + Prng.int ctx.rng 11), atom ctx)
            else
              Ast.Binop (Ast.Mod, Ast.Binop (Ast.Mul, atom ctx, atom ctx), Ast.Int 65536) );
        ( 2,
          fun () ->
            let op = if Prng.int ctx.rng 2 = 0 then Ast.Div else Ast.Mod in
            Ast.Binop (op, int_expr ctx (d - 1), denominator ctx) );
        ( 1,
          fun () ->
            let op = if Prng.int ctx.rng 2 = 0 then Ast.Shl else Ast.Shr in
            Ast.Binop (op, atom ctx, Ast.Int (Prng.int ctx.rng 5)) );
        (1, fun () -> Ast.Unop (Ast.Neg, atom ctx));
        (1, fun () -> Ast.Rel (relop ctx, int_expr ctx (d - 1), int_expr ctx (d - 1)));
        ( (if ctx.callees = [] then 0 else 2),
          fun () ->
            let name, arity = pick_list ctx ctx.callees in
            Ast.Call (name, List.init arity (fun _ -> int_expr ctx (d - 1))) );
      ]

and relop ctx = pick_list ctx [ Ast.Eq; Ast.Ne; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge ]

let float_expr ctx =
  let float_lit () =
    (* dyadic literals: exactly representable, round-trip clean *)
    Ast.Float (float_of_int (Prng.int ctx.rng 64) +. (0.25 *. float_of_int (Prng.int ctx.rng 4)))
  in
  weighted ctx
    [
      (3, fun () -> float_lit ());
      ((if ctx.floats = [] then 0 else 3), fun () -> Ast.Var (pick_list ctx ctx.floats));
      ( 2,
        fun () ->
          let op = pick_list ctx [ Ast.Add; Ast.Sub; Ast.Mul ] in
          let arg () =
            if ctx.floats <> [] && Prng.int ctx.rng 2 = 0 then Ast.Var (pick_list ctx ctx.floats)
            else float_lit ()
          in
          Ast.Binop (op, arg (), arg ()) );
      (1, fun () -> atom ctx (* int, promoted *));
    ]

(* Conditions lean on comparisons of tracked variables against literals —
   the shapes VRP actually predicts. *)
let condition ctx =
  let simple () =
    match ctx.ints with
    | [] -> Ast.Rel (relop ctx, int_expr ctx 1, literal ctx)
    | vars -> Ast.Rel (relop ctx, Ast.Var (pick_list ctx vars), literal ctx)
  in
  weighted ctx
    [
      (5, fun () -> simple ());
      (2, fun () -> Ast.Rel (relop ctx, int_expr ctx 2, int_expr ctx 1));
      ( 1,
        fun () ->
          if Prng.int ctx.rng 2 = 0 then Ast.And (simple (), simple ())
          else Ast.Or (simple (), simple ()) );
      ( (if ctx.floats = [] then 0 else 1),
        fun () -> Ast.Rel (relop ctx, Ast.Var (pick_list ctx ctx.floats), float_expr ctx) );
    ]

(* --- Statements --- *)

let rec gen_stmt ctx : Ast.stmt list =
  ctx.budget <- ctx.budget - 1;
  let w = ctx.w in
  let nested = ctx.depth >= 3 in
  weighted ctx
    [
      (3, fun () -> [ decl ctx ]);
      ((if ctx.assignable = [] then 0 else 3), fun () -> [ assign ctx ]);
      ((if nested then 0 else 1 + (2 * w.Synth.branchy)), fun () -> [ if_stmt ctx ]);
      ((if nested then 0 else 2 * w.Synth.counted_loops), fun () -> [ for_stmt ctx ]);
      ((if nested then 0 else w.Synth.data_loops), fun () -> while_stmt ctx);
      ((if ctx.arrays = [] then 0 else 1 + (2 * w.Synth.nested_arrays)), fun () -> [ store ctx ]);
      ((if ctx.callees = [] then 0 else 2 * w.Synth.calls), fun () -> [ call_stmt ctx ]);
      ((if ctx.depth = 0 then 0 else 1), fun () -> [ escape ctx ]);
      (* appended last so profiles with [affine = 0] keep their historical
         RNG stream byte for byte *)
      ((if nested then 0 else 2 * w.Synth.affine), fun () -> affine_stmt ctx);
    ]

and decl ctx =
  if Prng.int ctx.rng 6 = 0 then begin
    let name = fresh ctx "f" in
    let s = stmt (Ast.Sdecl (Ast.Tfloat, name, Ast.Iscalar (Some (float_expr ctx)))) in
    ctx.floats <- name :: ctx.floats;
    s
  end
  else begin
    let name = fresh ctx "v" in
    let init = if Prng.int ctx.rng 8 = 0 then None else Some (int_expr ctx 2) in
    let s = stmt (Ast.Sdecl (Ast.Tint, name, Ast.Iscalar init)) in
    ctx.ints <- name :: ctx.ints;
    ctx.assignable <- name :: ctx.assignable;
    s
  end

and assign ctx =
  let name = pick_list ctx ctx.assignable in
  stmt (Ast.Sassign (Ast.Lvar name, int_expr ctx 2))

and store ctx =
  let name, size = pick_list ctx ctx.arrays in
  stmt (Ast.Sassign (Ast.Lindex (name, safe_index ctx size), int_expr ctx 2))

and call_stmt ctx =
  let name, arity = pick_list ctx ctx.callees in
  let call = Ast.Call (name, List.init arity (fun _ -> int_expr ctx 1)) in
  if Prng.int ctx.rng 3 = 0 || ctx.assignable = [] then stmt (Ast.Sexpr call)
  else stmt (Ast.Sassign (Ast.Lvar (pick_list ctx ctx.assignable), call))

and if_stmt ctx =
  let cond = condition ctx in
  let then_blk = sub_block ctx in
  let else_blk = if Prng.int ctx.rng 2 = 0 then Some (sub_block ctx) else None in
  stmt (Ast.Sif (cond, then_blk, else_blk))

and for_stmt ctx =
  let i = fresh ctx "i" in
  let lo = Prng.int ctx.rng 9 in
  let hi = lo + 1 + Prng.int ctx.rng 24 in
  let step = 1 + Prng.int ctx.rng 3 in
  let saved_ints = ctx.ints and saved_loop = ctx.loop in
  ctx.ints <- i :: ctx.ints (* readable, never assignable *);
  ctx.loop <- `For;
  let body = sub_block ctx in
  ctx.ints <- saved_ints;
  ctx.loop <- saved_loop;
  stmt
    (Ast.Sfor
       ( Some (stmt (Ast.Sdecl (Ast.Tint, i, Ast.Iscalar (Some (Ast.Int lo))))),
         Some (Ast.Rel (Ast.Lt, Ast.Var i, Ast.Int hi)),
         Some (stmt (Ast.Sassign (Ast.Lvar i, Ast.Binop (Ast.Add, Ast.Var i, Ast.Int step)))),
         body ))

and while_stmt ctx =
  (* int t = e % K; while (t > 0) { ...; t = t - d; } — at most K-1 trips *)
  let t = fresh ctx "t" in
  let k = 8 + Prng.int ctx.rng 41 in
  let d = 1 + Prng.int ctx.rng 3 in
  let init =
    stmt (Ast.Sdecl (Ast.Tint, t, Ast.Iscalar (Some (Ast.Binop (Ast.Mod, int_expr ctx 2, Ast.Int k)))))
  in
  let saved_ints = ctx.ints and saved_loop = ctx.loop in
  ctx.ints <- t :: ctx.ints (* readable, never assignable *);
  ctx.loop <- `While;
  let body = sub_block ctx in
  ctx.ints <- saved_ints;
  ctx.loop <- saved_loop;
  let dec = stmt (Ast.Sassign (Ast.Lvar t, Ast.Binop (Ast.Sub, Ast.Var t, Ast.Int d))) in
  [ init; stmt (Ast.Swhile (Ast.Rel (Ast.Gt, Ast.Var t, Ast.Int 0), body @ [ dec ])) ]

and escape ctx =
  (* guarded break/continue/early-return so following statements stay live *)
  let cond = condition ctx in
  let inner =
    weighted ctx
      [
        ((if ctx.loop = `None then 0 else 2), fun () -> stmt Ast.Sbreak);
        ((if ctx.loop = `For then 1 else 0), fun () -> stmt Ast.Scontinue);
        (1, fun () -> stmt (Ast.Sreturn (Some (int_expr ctx 1))));
      ]
  in
  stmt (Ast.Sif (cond, [ inner ], None))

(* Affine index patterns whose guards recompute the tested expression at
   the use site: lowering gives the guard and the access {e distinct}
   temporaries, so v1 [var + const] bounds cannot connect them — only the
   sum-of-products algebra can. Loops keep [for_stmt]'s termination
   discipline (literal bounds, positive literal stride, counter never
   assignable). *)
and affine_stmt ctx : Ast.stmt list =
  weighted ctx
    [
      ((if ctx.arrays = [] then 0 else 3), fun () -> affine_odd_loop ctx);
      ((if ctx.arrays = [] then 0 else 2), fun () -> affine_reverse_loop ctx);
      ((if ctx.ints = [] then 0 else 2), fun () -> affine_guard_chain ctx);
      ( (if ctx.ints = [] || ctx.arrays = [] then 0 else 2),
        fun () -> affine_offset_store ctx );
      (1, fun () -> [ decl ctx ]);
    ]

and affine_odd_loop ctx =
  (* for (i = 0; i < size; i++) if (2*i+1 < size) a[2*i+1] = e;
     The stride-2 image [2*i+1] reaches up to [2*size-1], so the numeric
     interval never proves the upper bound — the guard does, but only once
     the algebra equates the guard temp and the index temp. *)
  let name, size = pick_list ctx ctx.arrays in
  let i = fresh ctx "i" in
  let idx () =
    Ast.Binop (Ast.Add, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Var i), Ast.Int 1)
  in
  let saved_ints = ctx.ints and saved_loop = ctx.loop in
  ctx.ints <- i :: ctx.ints (* readable, never assignable *);
  ctx.loop <- `For;
  let rhs = int_expr ctx 1 in
  ctx.ints <- saved_ints;
  ctx.loop <- saved_loop;
  let body =
    [
      stmt
        (Ast.Sif
           ( Ast.Rel (Ast.Lt, idx (), Ast.Int size),
             [ stmt (Ast.Sassign (Ast.Lindex (name, idx ()), rhs)) ],
             None ));
    ]
  in
  [
    stmt
      (Ast.Sfor
         ( Some (stmt (Ast.Sdecl (Ast.Tint, i, Ast.Iscalar (Some (Ast.Int 0))))),
           Some (Ast.Rel (Ast.Lt, Ast.Var i, Ast.Int size)),
           Some (stmt (Ast.Sassign (Ast.Lvar i, Ast.Binop (Ast.Add, Ast.Var i, Ast.Int 1)))),
           body ));
  ]

and affine_reverse_loop ctx =
  (* for (i = 0; i < size + slack; i++) if (size-1-i >= 0) a[size-1-i] = e;
     the overshooting bound drives [size-1-i] negative, so only the
     recomputed-expression guard proves the lower bound. *)
  let name, size = pick_list ctx ctx.arrays in
  let i = fresh ctx "i" in
  let slack = 1 + Prng.int ctx.rng 8 in
  let idx () = Ast.Binop (Ast.Sub, Ast.Int (size - 1), Ast.Var i) in
  let saved_ints = ctx.ints and saved_loop = ctx.loop in
  ctx.ints <- i :: ctx.ints (* readable, never assignable *);
  ctx.loop <- `For;
  let rhs = int_expr ctx 1 in
  ctx.ints <- saved_ints;
  ctx.loop <- saved_loop;
  let body =
    [
      stmt
        (Ast.Sif
           ( Ast.Rel (Ast.Ge, idx (), Ast.Int 0),
             [ stmt (Ast.Sassign (Ast.Lindex (name, idx ()), rhs)) ],
             None ));
    ]
  in
  [
    stmt
      (Ast.Sfor
         ( Some (stmt (Ast.Sdecl (Ast.Tint, i, Ast.Iscalar (Some (Ast.Int 0))))),
           Some (Ast.Rel (Ast.Lt, Ast.Var i, Ast.Int (size + slack))),
           Some (stmt (Ast.Sassign (Ast.Lvar i, Ast.Binop (Ast.Add, Ast.Var i, Ast.Int 1)))),
           body ));
  ]

and affine_guard_chain ctx =
  (* if (2*x+1 < K) if (2*x < K) { ... } — the inner branch is provably
     one-way, but only through the polynomial implication. *)
  let x = pick_list ctx ctx.ints in
  let k = 4 + Prng.int ctx.rng 60 in
  let e coeff c =
    Ast.Binop (Ast.Add, Ast.Binop (Ast.Mul, Ast.Int coeff, Ast.Var x), Ast.Int c)
  in
  let inner_body =
    match ctx.assignable with
    | [] -> [ stmt (Ast.Sreturn (Some (int_expr ctx 1))) ]
    | vs -> [ stmt (Ast.Sassign (Ast.Lvar (pick_list ctx vs), int_expr ctx 1)) ]
  in
  [
    stmt
      (Ast.Sif
         ( Ast.Rel (Ast.Lt, e 2 1, Ast.Int k),
           [ stmt (Ast.Sif (Ast.Rel (Ast.Lt, e 2 0, Ast.Int k), inner_body, None)) ],
           None ));
  ]

and affine_offset_store ctx =
  (* if (x+c < size) if (x+c >= 0) a[x+c] = e; — both bounds come from
     guards on a recomputed expression. *)
  let name, size = pick_list ctx ctx.arrays in
  let x = pick_list ctx ctx.ints in
  let c = Prng.int ctx.rng 5 in
  let idx () = Ast.Binop (Ast.Add, Ast.Var x, Ast.Int c) in
  [
    stmt
      (Ast.Sif
         ( Ast.Rel (Ast.Lt, idx (), Ast.Int size),
           [
             stmt
               (Ast.Sif
                  ( Ast.Rel (Ast.Ge, idx (), Ast.Int 0),
                    [ stmt (Ast.Sassign (Ast.Lindex (name, idx ()), int_expr ctx 1)) ],
                    None ));
           ],
           None ));
  ]

and sub_block ctx : Ast.block =
  ctx.depth <- ctx.depth + 1;
  let saved_ints = ctx.ints
  and saved_assignable = ctx.assignable
  and saved_floats = ctx.floats in
  let n = 1 + Prng.int ctx.rng 3 in
  let stmts = ref [] in
  for _ = 1 to n do
    if ctx.budget > 0 then stmts := gen_stmt ctx :: !stmts
  done;
  ctx.depth <- ctx.depth - 1;
  ctx.ints <- saved_ints;
  ctx.assignable <- saved_assignable;
  ctx.floats <- saved_floats;
  List.concat (List.rev !stmts)

(* --- Functions and programs --- *)

let gen_body ctx ~budget : Ast.block =
  ctx.budget <- budget;
  let stmts = ref [] in
  while ctx.budget > 0 do
    stmts := gen_stmt ctx :: !stmts
  done;
  let ret = stmt (Ast.Sreturn (Some (int_expr ctx 2))) in
  List.concat (List.rev !stmts) @ [ ret ]

let gen_fn rng ~w ~globals ~callees ~fname ~params ~budget : Ast.func =
  let ctx =
    {
      rng;
      w;
      fresh = 0;
      ints = params;
      assignable = params;
      floats = [];
      arrays = globals;
      callees;
      depth = 0;
      loop = `None;
      budget = 0;
    }
  in
  (* occasional function-local array *)
  let local_array =
    if Prng.int rng 3 = 0 then begin
      let name = "loc" in
      let size = 4 + Prng.int rng 29 in
      ctx.arrays <- (name, size) :: ctx.arrays;
      [ stmt (Ast.Sdecl (Ast.Tint, name, Ast.Iarray size)) ]
    end
    else []
  in
  let body = local_array @ gen_body ctx ~budget in
  {
    Ast.fty = Ast.Tint;
    fname;
    params = List.map (fun p -> { Ast.pty = Ast.Tint; pname = p }) params;
    body;
    fline = 0;
  }

let program rng ~(weights : Synth.weights) : Ast.program =
  let globals = ref [] in
  let garrays = ref [] in
  let n_arrays = 1 + Prng.int rng 2 in
  for i = 0 to n_arrays - 1 do
    let size = 8 + Prng.int rng 57 in
    let name = Printf.sprintf "g%d" i in
    globals :=
      { Ast.gty = Ast.Tint; gname = name; gsize = Some size; gline = 0 } :: !globals;
    garrays := (name, size) :: !garrays
  done;
  let nhelpers = Prng.int rng 4 in
  let funcs = ref [] in
  let callees = ref [] in
  for i = 0 to nhelpers - 1 do
    let fname = Printf.sprintf "h%d" i in
    let arity = 1 + Prng.int rng 3 in
    let params = List.init arity (fun j -> Printf.sprintf "p%d" j) in
    let budget = 4 + Prng.int rng 8 in
    let fn = gen_fn rng ~w:weights ~globals:!garrays ~callees:!callees ~fname ~params ~budget in
    funcs := fn :: !funcs;
    callees := (fname, arity) :: !callees
  done;
  let main =
    gen_fn rng ~w:weights ~globals:!garrays ~callees:!callees ~fname:"main"
      ~params:[ "n"; "s" ]
      ~budget:(6 + Prng.int rng 10)
  in
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs @ [ main ] }

(* --- Random lattice values --- *)

module Srange = Vrp_ranges.Srange
module Progression = Vrp_ranges.Progression
module Value = Vrp_ranges.Value

let value rng =
  match Prng.int rng 10 with
  | 0 -> Value.top
  | 1 -> Value.bottom
  | _ ->
    let n = 1 + Prng.int rng 3 in
    let ranges =
      List.init n (fun _ ->
          let lo = -60 + Prng.int rng 121 in
          let len = Prng.int rng 41 in
          let stride = 1 + Prng.int rng 4 in
          Srange.numeric ~p:(1.0 /. float_of_int n) (Progression.make lo (lo + len) stride))
    in
    Value.normalize ranges
