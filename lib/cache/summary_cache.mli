(** Content-addressed function-summary store.

    Two tiers: a bounded in-memory LRU map from {!Digest_key.task_key} to
    the full analysis result, and an optional on-disk tier (one marshalled
    file per key under [disk_dir]) that survives across processes — a warm
    [vrpc batch --cache DIR] run re-analyzes zero unchanged functions.

    Thread safety: every operation is mutex-guarded except the summary
    computation itself, which runs unlocked — two domains racing on the
    same missing key may both compute it (identical results; the counters
    then record two misses). That keeps workers out of each other's way and
    can never produce a wrong hit. *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc

type counters = {
  mutable hits : int;  (** served from memory or disk *)
  mutable disk_hits : int;  (** subset of [hits] loaded from the disk tier *)
  mutable misses : int;  (** computed fresh *)
  mutable stores : int;  (** entries written into the memory tier *)
  mutable invalidations : int;
      (** lookups whose slot (function) was previously cached under a
          different IR or configuration digest — an IR edit or a config
          change made the old summaries stale *)
}

type t

(** [create ()] builds a store with an in-memory LRU of [memory_capacity]
    entries (default 4096) and, when [disk_dir] is given, a persistent tier
    under that directory (created if missing). *)
val create : ?memory_capacity:int -> ?disk_dir:string -> unit -> t

(** Snapshot of the traffic counters. *)
val counters : t -> counters

(** Render the counters as a one-line summary, e.g. for a batch report. *)
val counters_line : t -> string

(** Append a [Cache_event] diagnostic with the current counters. *)
val report_into : t -> Diag.report -> unit

(** [find_or_compute t ~slot ~stamp ~key compute] returns the summary for
    [key], computing and storing it on a miss. [slot] names the cached
    entity (used only for invalidation accounting — pass a file-qualified
    function name) and [stamp] is its (IR digest, config digest) identity:
    a lookup for a known slot under a new stamp counts as an invalidation. *)
val find_or_compute :
  t -> slot:string -> stamp:string -> key:string -> (unit -> Engine.t) -> Engine.t

(** A memoizing {!Interproc.analyze_fn}: IR digests and static callee sets
    are precomputed for [program]'s functions, and each per-function task
    is served from the cache when its full key matches. On a hit the
    engine's governor diagnostics (fuel exhaustion, timeout, widenings) are
    re-emitted from the stored summary so [--diagnostics]/[--strict] keep
    their meaning on warm runs. [slot_prefix] qualifies function names for
    invalidation accounting (pass the source path in batch mode). *)
val memoized : ?slot_prefix:string -> t -> Ir.program -> Interproc.analyze_fn
