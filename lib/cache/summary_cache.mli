(** Content-addressed function-summary store.

    Two tiers: a bounded in-memory LRU map from {!Digest_key.task_key} to
    the full analysis result, and an optional on-disk tier (one checksummed
    file per key under [disk_dir]) that survives across processes — a warm
    [vrpc batch --cache DIR] run re-analyzes zero unchanged functions.

    Disk-tier integrity: every entry is framed with a payload checksum that
    is verified on read. A torn, truncated, or bit-rotted entry is counted
    as a miss plus an invalidation, quarantined aside as [KEY.sum.bad], and
    recomputed — corruption can degrade performance but never crashes a run
    or poisons a result. An entry written by an older format version is
    silently dropped and rewritten. At open, the first process to take the
    advisory lock file ([DIR/.lock]) becomes the directory's maintenance
    process: it sweeps debris left by killed writers (stale [*.sum.tmp.*]
    temp files, old quarantine files) and applies the optional disk budget
    by evicting the oldest entries. Entry reads and writes themselves are
    lock-free: they are content-addressed and atomically renamed, so the
    worst cross-process race is a harmless double write of identical bytes.

    Thread safety: every operation is mutex-guarded except the summary
    computation itself, which runs unlocked — two domains racing on the
    same missing key may both compute it (identical results; the counters
    then record two misses). That keeps workers out of each other's way and
    can never produce a wrong hit. *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc

type counters = {
  mutable hits : int;  (** served from memory or disk *)
  mutable disk_hits : int;  (** subset of [hits] loaded from the disk tier *)
  mutable misses : int;  (** computed fresh *)
  mutable stores : int;  (** entries written into the memory tier *)
  mutable invalidations : int;
      (** lookups whose slot (function) was previously cached under a
          different IR or configuration digest — an IR edit or a config
          change made the old summaries stale — plus disk entries dropped
          as stale-format or corrupt *)
  mutable quarantined : int;
      (** disk entries that failed checksum or frame verification and were
          moved aside as [KEY.sum.bad]; always a subset of [invalidations] *)
}

type t

(** [create ()] builds a store with an in-memory LRU of [memory_capacity]
    entries (default 4096) and, when [disk_dir] is given, a persistent tier
    under that directory (created if missing). [max_disk_mb] caps the disk
    tier's total size in megabytes, enforced at open by the maintenance
    process (oldest entries evicted first). [fault] enables deterministic
    fault injection — [corrupt-cache:N] flips a payload bit in every Nth
    disk write so the verified read path can be exercised end to end. *)
val create :
  ?memory_capacity:int ->
  ?disk_dir:string ->
  ?max_disk_mb:int ->
  ?fault:Diag.Fault.t ->
  unit ->
  t

(** True when this store won the advisory directory lock at [create] time
    and performed (and may perform) debris sweeping and eviction. *)
val holds_maintenance_lock : t -> bool

(** Release the maintenance lock so another store (or process) can take it
    over; lookups and stores keep working. A process exiting releases the
    lock implicitly — this is for long-running embedders and tests. *)
val close : t -> unit

(** Snapshot of the traffic counters. *)
val counters : t -> counters

(** [delta ~before after] is the componentwise difference of two counter
    snapshots — request-scoped accounting for a long-lived store shared by
    many server requests. Meaningful when no other request ran in between
    (the server serializes per-session analyses). *)
val delta : before:counters -> counters -> counters

(** Drop every memory-tier entry and the slot-stamp table, returning how
    many entries were evicted. The disk tier (if any) is untouched, so the
    next lookup round-trips through it; counters keep accumulating. This is
    the server's [evict] operation for a long-running daemon whose memory
    tier must be reclaimable without a restart. *)
val evict_memory : t -> int

(** Render the counters as a one-line summary, e.g. for a batch report. *)
val counters_line : t -> string

(** Append a [Cache_event] diagnostic with the current counters. *)
val report_into : t -> Diag.report -> unit

(** [find_or_compute t ~slot ~stamp ~key compute] returns the summary for
    [key], computing and storing it on a miss. [slot] names the cached
    entity (used only for invalidation accounting — pass a file-qualified
    function name) and [stamp] is its (IR digest, config digest) identity:
    a lookup for a known slot under a new stamp counts as an invalidation. *)
val find_or_compute :
  t -> slot:string -> stamp:string -> key:string -> (unit -> Engine.t) -> Engine.t

(** A memoizing {!Interproc.analyze_fn}: IR digests and static callee sets
    are precomputed for [program]'s functions, and each per-function task
    is served from the cache when its full key matches. On a hit the
    engine's governor diagnostics (fuel exhaustion, timeout, widenings) are
    re-emitted from the stored summary so [--diagnostics]/[--strict] keep
    their meaning on warm runs. [slot_prefix] qualifies function names for
    invalidation accounting (pass the source path in batch mode). *)
val memoized : ?slot_prefix:string -> t -> Ir.program -> Interproc.analyze_fn
