(** Content-addressed keys for function summaries.

    A summary is keyed by everything its analysis depends on:

    - a {e structural digest} of the function's SSA IR — stable across
      parse→SSA round-trips of the same source, changed by any IR edit;
    - a digest of the engine configuration (every {!Vrp_core.Engine.config}
      field, the global range budget and a format version);
    - a digest of the analysis inputs: the parameter ranges and the return
      ranges the call oracle would answer for the function's static callees.

    Digests are MD5 over an explicit byte serialization (ints exact, floats
    by IEEE bit pattern), so equal keys mean structurally identical inputs
    and the memoized summary can be reused soundly. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value
module Engine = Vrp_core.Engine

(** Bump when the serialization or the summary format changes: invalidates
    every existing on-disk cache entry. *)
val format_version : int

(** Structural digest (hex) of one function's SSA IR. *)
val fn_digest : Ir.fn -> string

(** Digest (hex) of an engine configuration, including the global
    {!Vrp_ranges.Config.max_ranges} budget and {!format_version}. *)
val config_digest : Engine.config -> string

(** The function names a [Call] instruction of this function can target,
    sorted and deduplicated — the complete set of names the call oracle may
    be asked about. *)
val static_callees : Ir.fn -> string list

(** Full memo key for one analysis task. [callee_returns] must cover
    {!static_callees} (in that order). *)
val task_key :
  fn_digest:string ->
  config_digest:string ->
  param_values:Value.t list ->
  callee_returns:(string * Value.t) list ->
  string
