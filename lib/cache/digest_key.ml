(** Content-addressed keys for function summaries (see the interface).

    The serializer is hand-rolled rather than [Marshal]-based for the IR
    and the configuration so the digest depends on structure alone: ints
    are written in decimal, floats by IEEE-754 bit pattern, strings
    length-prefixed, constructors as one-byte tags. Parameter and oracle
    values are digested through [Marshal] with sharing disabled — their
    representation is produced deterministically by the range algebra, and
    a representation difference can only cause a spurious miss, never a
    wrong hit. *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Ast = Vrp_lang.Ast
module Value = Vrp_ranges.Value
module Engine = Vrp_core.Engine

let format_version = 1

(* --- Primitive serializers --- *)

let add_tag buf c = Buffer.add_char buf c

let add_int buf n =
  Buffer.add_string buf (string_of_int n);
  Buffer.add_char buf ';'

let add_float buf f =
  Buffer.add_string buf (Printf.sprintf "%Lx" (Int64.bits_of_float f));
  Buffer.add_char buf ';'

let add_string buf s =
  add_int buf (String.length s);
  Buffer.add_string buf s

let add_list buf add xs =
  add_int buf (List.length xs);
  List.iter (add buf) xs

let add_option buf add = function
  | None -> add_tag buf 'N'
  | Some x ->
    add_tag buf 'S';
    add buf x

(* --- IR serialization --- *)

let add_ty buf (ty : Ast.ty) =
  add_tag buf (match ty with Ast.Tint -> 'i' | Ast.Tfloat -> 'f' | Ast.Tvoid -> 'v')

let add_var buf (v : Var.t) =
  add_int buf v.Var.id;
  add_string buf v.Var.base;
  add_int buf v.Var.version;
  add_ty buf v.Var.ty

let add_operand buf = function
  | Ir.Cint n ->
    add_tag buf 'i';
    add_int buf n
  | Ir.Cfloat f ->
    add_tag buf 'f';
    add_float buf f
  | Ir.Ovar v ->
    add_tag buf 'v';
    add_var buf v

let add_relop buf (r : Ast.relop) = add_string buf (Ast.relop_to_string r)

let add_rhs buf = function
  | Ir.Op a ->
    add_tag buf 'o';
    add_operand buf a
  | Ir.Binop (op, a, b) ->
    add_tag buf 'b';
    add_string buf (Ast.binop_to_string op);
    add_operand buf a;
    add_operand buf b
  | Ir.Unop (u, a) ->
    add_tag buf 'u';
    add_tag buf (match u with Ir.Neg -> 'n' | Ir.Bnot -> 'b');
    add_operand buf a
  | Ir.Cmp (r, a, b) ->
    add_tag buf 'c';
    add_relop buf r;
    add_operand buf a;
    add_operand buf b
  | Ir.Load (arr, idx) ->
    add_tag buf 'l';
    add_string buf arr;
    add_operand buf idx
  | Ir.Call (fn, args) ->
    add_tag buf 'C';
    add_string buf fn;
    add_list buf add_operand args
  | Ir.Phi args ->
    add_tag buf 'p';
    add_list buf
      (fun buf (pred, op) ->
        add_int buf pred;
        add_operand buf op)
      args
  | Ir.Assertion { parent; arel; abound } ->
    add_tag buf 'a';
    add_var buf parent;
    add_relop buf arel;
    add_operand buf abound

let add_instr buf = function
  | Ir.Def (v, rhs) ->
    add_tag buf 'd';
    add_var buf v;
    add_rhs buf rhs
  | Ir.Store (arr, idx, v) ->
    add_tag buf 's';
    add_string buf arr;
    add_operand buf idx;
    add_operand buf v

let add_term buf = function
  | Ir.Jump d ->
    add_tag buf 'j';
    add_int buf d
  | Ir.Br { rel; ba; bb; tdst; fdst } ->
    add_tag buf 'B';
    add_relop buf rel;
    add_operand buf ba;
    add_operand buf bb;
    add_int buf tdst;
    add_int buf fdst
  | Ir.Ret op ->
    add_tag buf 'r';
    add_option buf add_operand op

let add_array_info buf (a : Ir.array_info) =
  add_string buf a.Ir.aname;
  add_ty buf a.Ir.elem_ty;
  add_int buf a.Ir.size

let fn_digest (fn : Ir.fn) =
  let buf = Buffer.create 1024 in
  add_int buf format_version;
  add_string buf fn.Ir.fname;
  add_ty buf fn.Ir.ret_ty;
  add_list buf add_var fn.Ir.params;
  add_list buf add_array_info fn.Ir.local_arrays;
  add_int buf fn.Ir.nvars;
  add_int buf (Array.length fn.Ir.blocks);
  Array.iter
    (fun (b : Ir.block) ->
      add_int buf b.Ir.bid;
      add_list buf add_instr b.Ir.instrs;
      add_term buf b.Ir.term)
    fn.Ir.blocks;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- Configuration serialization ---

   Every field of [Engine.config] is written out explicitly: adding a field
   to the record breaks this match-free construction loudly only if you
   remember it here, so keep the list in sync (the cache tests flip each
   analysis-relevant flag and assert the digest moves). *)

let config_digest (c : Engine.config) =
  let buf = Buffer.create 128 in
  add_int buf format_version;
  add_tag buf (if c.Engine.symbolic then 't' else 'f');
  add_tag buf (if c.Engine.use_assertions then 't' else 'f');
  add_tag buf (if c.Engine.use_derivation then 't' else 'f');
  add_tag buf (if c.Engine.algebra then 't' else 'f');
  add_int buf c.Engine.eval_quota;
  add_float buf c.Engine.trip_prior;
  add_tag buf (if c.Engine.flow_first then 't' else 'f');
  add_tag buf (match c.Engine.fallback with Engine.Heuristic -> 'h' | Engine.Even -> 'e');
  add_option buf add_int c.Engine.fuel;
  add_option buf add_float c.Engine.time_limit_s;
  add_int buf c.Engine.max_growth;
  add_option buf (fun buf fault -> add_string buf (Vrp_diag.Diag.Fault.to_string fault))
    c.Engine.fault;
  (* [c.Engine.cancel] is deliberately NOT digested: a supervision token is
     non-semantic (it can only abort an analysis, never change its result),
     and keying on it would make every retry attempt a spurious miss. *)
  (* Global tunables the engine reads outside its config record. *)
  add_int buf !Vrp_ranges.Config.max_ranges;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- Analysis inputs --- *)

let static_callees (fn : Ir.fn) =
  let names = ref [] in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Def (_, Ir.Call (callee, _)) -> names := callee :: !names
          | Ir.Def _ | Ir.Store _ -> ())
        b.Ir.instrs);
  List.sort_uniq String.compare !names

let add_value buf (v : Value.t) =
  (* Values are acyclic immutable trees built deterministically by the
     range algebra; [No_sharing] makes the bytes a function of structure. *)
  add_string buf (Marshal.to_string v [ Marshal.No_sharing ])

let task_key ~fn_digest ~config_digest ~param_values ~callee_returns =
  let buf = Buffer.create 256 in
  add_list buf add_value param_values;
  add_list buf
    (fun buf (name, v) ->
      add_string buf name;
      add_value buf v)
    callee_returns;
  Printf.sprintf "%s-%s-%s" fn_digest config_digest
    (Digest.to_hex (Digest.string (Buffer.contents buf)))
