(** Content-addressed function-summary store (see the interface). *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc

type counters = {
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable invalidations : int;
}

let zero_counters () =
  { hits = 0; disk_hits = 0; misses = 0; stores = 0; invalidations = 0 }

type entry = { res : Engine.t; mutable last_use : int }

type t = {
  capacity : int;
  mem : (string, entry) Hashtbl.t;
  seen : (string, string) Hashtbl.t;  (* slot -> last (IR, config) stamp *)
  disk_dir : string option;
  lock : Mutex.t;
  c : counters;
  mutable tick : int;
}

let create ?(memory_capacity = 4096) ?disk_dir () =
  (match disk_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  {
    capacity = max 1 memory_capacity;
    mem = Hashtbl.create 256;
    seen = Hashtbl.create 64;
    disk_dir;
    lock = Mutex.create ();
    c = zero_counters ();
    tick = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counters t =
  locked t (fun () ->
      {
        hits = t.c.hits;
        disk_hits = t.c.disk_hits;
        misses = t.c.misses;
        stores = t.c.stores;
        invalidations = t.c.invalidations;
      })

let counters_line t =
  let c = counters t in
  Printf.sprintf "summary cache: %d hits (%d from disk), %d misses, %d invalidations"
    c.hits c.disk_hits c.misses c.invalidations

let report_into t report =
  Diag.add report Diag.Info Diag.Cache_event (counters_line t)

(* --- Memory tier --- *)

(* Call under the lock. Evicts down to 3/4 capacity by last use, so
   eviction cost is amortized over at least capacity/4 insertions. *)
let insert_locked t key res =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.mem key { res; last_use = t.tick };
  t.c.stores <- t.c.stores + 1;
  if Hashtbl.length t.mem > t.capacity then begin
    let entries = Hashtbl.fold (fun k e acc -> (e.last_use, k) :: acc) t.mem [] in
    let by_age = List.sort compare entries in
    let excess = Hashtbl.length t.mem - (t.capacity * 3 / 4) in
    List.iteri (fun i (_, k) -> if i < excess then Hashtbl.remove t.mem k) by_age
  end

(* --- Disk tier ---

   One marshalled file per key, written atomically (temp file + rename).
   Any read problem — torn file, format drift across builds — is treated
   as a miss; [format_version] inside the payload guards deliberate format
   changes. *)

let disk_magic = "vrpsum1"

let disk_path dir key = Filename.concat dir (key ^ ".sum")

let disk_load t key =
  match t.disk_dir with
  | None -> None
  | Some dir -> (
    let path = disk_path dir key in
    if not (Sys.file_exists path) then None
    else
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            let magic = really_input_string ic (String.length disk_magic) in
            if not (String.equal magic disk_magic) then None
            else
              let version : int = Marshal.from_channel ic in
              if version <> Digest_key.format_version then None
              else
                let res : Engine.t = Marshal.from_channel ic in
                Some res)
      with _ -> None)

let disk_store t key (res : Engine.t) =
  match t.disk_dir with
  | None -> ()
  | Some dir -> (
    let path = disk_path dir key in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Domain.self () :> int)
    in
    try
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc disk_magic;
          Marshal.to_channel oc Digest_key.format_version [];
          Marshal.to_channel oc res []);
      Sys.rename tmp path
    with _ -> ( try Sys.remove tmp with _ -> ()))

(* --- Lookup --- *)

let find_or_compute t ~slot ~stamp ~key compute =
  let cached =
    locked t (fun () ->
        (match Hashtbl.find_opt t.seen slot with
        | Some old when not (String.equal old stamp) ->
          t.c.invalidations <- t.c.invalidations + 1
        | _ -> ());
        Hashtbl.replace t.seen slot stamp;
        match Hashtbl.find_opt t.mem key with
        | Some e ->
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          t.c.hits <- t.c.hits + 1;
          Some e.res
        | None -> None)
  in
  match cached with
  | Some res -> res
  | None -> (
    match disk_load t key with
    | Some res ->
      locked t (fun () ->
          t.c.hits <- t.c.hits + 1;
          t.c.disk_hits <- t.c.disk_hits + 1;
          insert_locked t key res);
      res
    | None ->
      locked t (fun () -> t.c.misses <- t.c.misses + 1);
      let res = compute () in
      locked t (fun () -> insert_locked t key res);
      disk_store t key res;
      res)

(* --- The memoizing analyze_fn --- *)

(* A hit skips the engine run, so the diagnostics the engine would have
   emitted are replayed from the summary's governor fields — warm runs keep
   the same degradation verdict as cold ones. *)
let replay_diags (res : Engine.t) report =
  match report with
  | None -> ()
  | Some r ->
    let fn = res.Engine.fn.Ir.fname in
    if res.Engine.fuel_exhausted then
      Diag.add r ~fn Diag.Warning Diag.Budget_exhausted
        (Printf.sprintf "fuel exhausted after %d steps (cached summary); results are partial"
           res.Engine.fuel_spent);
    if res.Engine.timed_out then
      Diag.add r ~fn Diag.Warning Diag.Timeout
        (Printf.sprintf "wall-clock limit hit after %d steps (cached summary); results are \
                         partial"
           res.Engine.fuel_spent);
    if res.Engine.widenings > 0 then
      Diag.add r ~fn Diag.Warning Diag.Widened
        (Printf.sprintf "%d value(s) widened to ⊥ (cached summary)" res.Engine.widenings)

let memoized ?(slot_prefix = "") t (program : Ir.program) : Interproc.analyze_fn =
  let info : (string, string * string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (fn : Ir.fn) ->
      Hashtbl.replace info fn.Ir.fname
        (Digest_key.fn_digest fn, Digest_key.static_callees fn))
    program.Ir.fns;
  fun ~config ~report ~call_oracle ~param_values fn ->
    let fname = fn.Ir.fname in
    let ir_digest, callees =
      match Hashtbl.find_opt info fname with
      | Some i -> i
      | None -> (Digest_key.fn_digest fn, Digest_key.static_callees fn)
    in
    let config_digest = Digest_key.config_digest config in
    let key =
      Digest_key.task_key ~fn_digest:ir_digest ~config_digest ~param_values
        ~callee_returns:(List.map (fun c -> (c, call_oracle c [])) callees)
    in
    let computed = ref false in
    let res =
      find_or_compute t
        ~slot:(slot_prefix ^ fname)
        ~stamp:(ir_digest ^ config_digest)
        ~key
        (fun () ->
          computed := true;
          Engine.analyze ~config ?report ~call_oracle ~param_values fn)
    in
    if not !computed then replay_diags res report;
    res
