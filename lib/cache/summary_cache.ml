(** Content-addressed function-summary store (see the interface). *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc

type counters = {
  mutable hits : int;
  mutable disk_hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable invalidations : int;
  mutable quarantined : int;
}

let zero_counters () =
  { hits = 0; disk_hits = 0; misses = 0; stores = 0; invalidations = 0;
    quarantined = 0 }

type entry = { res : Engine.t; mutable last_use : int }

type t = {
  capacity : int;
  mem : (string, entry) Hashtbl.t;
  seen : (string, string) Hashtbl.t;  (* slot -> last (IR, config) stamp *)
  disk_dir : string option;
  lock : Mutex.t;
  c : counters;
  mutable tick : int;
  mutable maintenance : bool;
      (* this process holds the directory lock and may sweep/evict *)
  mutable lock_fd : Unix.file_descr option;  (* held until [close] / exit *)
  fault : Diag.Fault.t option;
  mutable disk_writes : int;  (* for Corrupt_cache cadence *)
}

let is_sum_file name = Filename.check_suffix name ".sum"

let is_stale_debris name =
  (* Temp files a killed writer left behind ([KEY.sum.tmp.PID.DOMAIN]) and
     quarantined corrupt entries from earlier runs. *)
  Vrp_util.Strutil.is_infix ~affix:".sum.tmp." name
  || Filename.check_suffix name ".sum.bad"

(* Advisory exclusive lock on DIR/.lock. The holder is the maintenance
   process for the directory: only it sweeps debris and applies the disk
   eviction cap, so two concurrent [vrpc batch --cache DIR] runs cannot
   delete files out from under each other. Entry reads/writes themselves
   are lock-free — they are content-addressed and atomically renamed, so
   the worst cross-process race is a harmless double write of identical
   bytes. The lock is released when the process exits. *)
(* POSIX record locks are per-process: a second [lockf] from the same
   process would succeed (and closing either fd would drop both), so the
   cross-process [lockf] is paired with a process-local registry giving two
   in-process stores over one directory the same winner-takes-it semantics
   two processes get. Maintenance rights are held until the process exits. *)
let process_locked_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4
let process_locked_dirs_mutex = Mutex.create ()

let try_lock_dir dir =
  Mutex.lock process_locked_dirs_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock process_locked_dirs_mutex)
    (fun () ->
      if Hashtbl.mem process_locked_dirs dir then (false, None)
      else
        match
          Unix.openfile (Filename.concat dir ".lock")
            [ Unix.O_CREAT; Unix.O_RDWR ] 0o644
        with
        | exception Unix.Unix_error _ -> (false, None)
        | fd -> (
          match Unix.lockf fd Unix.F_TLOCK 0 with
          | () ->
            Hashtbl.replace process_locked_dirs dir ();
            (true, Some fd)
          | exception Unix.Unix_error _ ->
            Unix.close fd;
            (false, None)))

let sweep_debris dir =
  Array.iter
    (fun name ->
      if is_stale_debris name then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||])

(* Cap the disk tier at [max_mb] megabytes by deleting the oldest entries
   (mtime order) until under budget. Runs only at open, under the lock. *)
let evict_to_cap dir max_mb =
  let budget = max_mb * 1024 * 1024 in
  let entries =
    (try Sys.readdir dir with Sys_error _ -> [||])
    |> Array.to_list
    |> List.filter_map (fun name ->
           if not (is_sum_file name) then None
           else
             let path = Filename.concat dir name in
             match Unix.stat path with
             | st -> Some (st.Unix.st_mtime, st.Unix.st_size, path)
             | exception Unix.Unix_error _ -> None)
  in
  let total = List.fold_left (fun acc (_, sz, _) -> acc + sz) 0 entries in
  if total > budget then begin
    let by_age = List.sort compare entries in
    let excess = ref (total - budget) in
    List.iter
      (fun (_, sz, path) ->
        if !excess > 0 then begin
          (try Sys.remove path with Sys_error _ -> ());
          excess := !excess - sz
        end)
      by_age
  end

let create ?(memory_capacity = 4096) ?disk_dir ?max_disk_mb ?fault () =
  (match disk_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  let maintenance, lock_fd =
    match disk_dir with
    | None -> (false, None)
    | Some dir ->
      let locked, fd = try_lock_dir dir in
      if locked then begin
        sweep_debris dir;
        Option.iter (fun mb -> evict_to_cap dir (max 0 mb)) max_disk_mb
      end;
      (locked, fd)
  in
  {
    capacity = max 1 memory_capacity;
    mem = Hashtbl.create 256;
    seen = Hashtbl.create 64;
    disk_dir;
    lock = Mutex.create ();
    c = zero_counters ();
    tick = 0;
    maintenance;
    lock_fd;
    fault;
    disk_writes = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counters t =
  locked t (fun () ->
      {
        hits = t.c.hits;
        disk_hits = t.c.disk_hits;
        misses = t.c.misses;
        stores = t.c.stores;
        invalidations = t.c.invalidations;
        quarantined = t.c.quarantined;
      })

(* Registry mirrors of the cache counters: same increment sites as the
   per-cache record, so the Prometheus exposition and [counters_line] can
   never disagree. *)
let obs_hits =
  Vrp_obs.Metrics.counter ~help:"Summary cache hits (memory or disk)"
    "vrp_cache_hits_total"

let obs_disk_hits =
  Vrp_obs.Metrics.counter ~help:"Summary cache hits served from the disk tier"
    "vrp_cache_disk_hits_total"

let obs_misses =
  Vrp_obs.Metrics.counter ~help:"Summary cache misses" "vrp_cache_misses_total"

let obs_stores =
  Vrp_obs.Metrics.counter ~help:"Summary cache stores" "vrp_cache_stores_total"

let obs_invalidations =
  Vrp_obs.Metrics.counter ~help:"Summary cache invalidations (stamp changes, stale or corrupt entries)"
    "vrp_cache_invalidations_total"

let obs_quarantined =
  Vrp_obs.Metrics.counter ~help:"Corrupt summary files quarantined"
    "vrp_cache_quarantined_total"

let obs_evictions =
  Vrp_obs.Metrics.counter ~help:"Summary cache memory-tier evictions"
    "vrp_cache_evictions_total"

let delta ~before (after : counters) =
  {
    hits = after.hits - before.hits;
    disk_hits = after.disk_hits - before.disk_hits;
    misses = after.misses - before.misses;
    stores = after.stores - before.stores;
    invalidations = after.invalidations - before.invalidations;
    quarantined = after.quarantined - before.quarantined;
  }

let evict_memory t =
  locked t (fun () ->
      let n = Hashtbl.length t.mem in
      Hashtbl.reset t.mem;
      Hashtbl.reset t.seen;
      Vrp_obs.Metrics.inc ~by:n obs_evictions;
      n)

let holds_maintenance_lock t = t.maintenance

(* Release the maintenance lock (closing the fd drops the [lockf] lock).
   The entry tiers stay usable; only the right to sweep/evict is given up,
   exactly as if the owning process had exited. *)
let close t =
  locked t (fun () ->
      (match (t.lock_fd, t.disk_dir) with
      | Some fd, Some dir ->
        Mutex.lock process_locked_dirs_mutex;
        Hashtbl.remove process_locked_dirs dir;
        Mutex.unlock process_locked_dirs_mutex;
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | _ -> ());
      t.lock_fd <- None;
      t.maintenance <- false)

let counters_line t =
  let c = counters t in
  Printf.sprintf
    "summary cache: %d hits (%d from disk), %d misses, %d invalidations, %d quarantined"
    c.hits c.disk_hits c.misses c.invalidations c.quarantined

let report_into t report =
  Diag.add report Diag.Info Diag.Cache_event (counters_line t)

(* --- Memory tier --- *)

(* Call under the lock. Evicts down to 3/4 capacity by last use, so
   eviction cost is amortized over at least capacity/4 insertions. *)
let insert_locked t key res =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.mem key { res; last_use = t.tick };
  t.c.stores <- t.c.stores + 1;
  Vrp_obs.Metrics.inc obs_stores;
  if Hashtbl.length t.mem > t.capacity then begin
    let entries = Hashtbl.fold (fun k e acc -> (e.last_use, k) :: acc) t.mem [] in
    let by_age = List.sort compare entries in
    let excess = Hashtbl.length t.mem - (t.capacity * 3 / 4) in
    List.iteri (fun i (_, k) -> if i < excess then Hashtbl.remove t.mem k) by_age;
    Vrp_obs.Metrics.inc ~by:excess obs_evictions
  end

(* --- Disk tier ---

   One file per key, written atomically (temp file + rename), framed for
   end-to-end integrity verification:

     magic (7 bytes) | payload length (8 hex) | MD5(payload) (32 hex) | payload

   where payload = Marshal (format_version, summary). Reads classify every
   entry as served / stale (clean frame, old format version — deleted and
   recomputed) / corrupt (torn write, bit rot, foreign bytes — quarantined
   aside as KEY.sum.bad so it is kept as evidence but never retried). Both
   degradations are a counted miss plus an invalidation; neither can crash
   or poison the run. *)

let disk_magic = "vrpsum2"

let disk_path dir key = Filename.concat dir (key ^ ".sum")

type disk_read = Served of Engine.t | Stale | Corrupt | Absent

let read_frame path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let magic = really_input_string ic (String.length disk_magic) in
        if not (String.equal magic disk_magic) then Corrupt
        else
          match int_of_string_opt ("0x" ^ really_input_string ic 8) with
          | None -> Corrupt
          | Some len ->
            let sum = really_input_string ic 32 in
            let payload = really_input_string ic len in
            if not (String.equal sum (Digest.to_hex (Digest.string payload))) then
              Corrupt
            else
              let version, (res : Engine.t) = Marshal.from_string payload 0 in
              if version <> Digest_key.format_version then Stale else Served res)
  with
  | End_of_file -> Corrupt  (* truncated frame *)
  | _ -> Corrupt

let disk_load t key =
  match t.disk_dir with
  | None -> Absent
  | Some dir ->
    let path = disk_path dir key in
    if not (Sys.file_exists path) then Absent
    else begin
      match read_frame path with
      | Served res -> Served res
      | Stale ->
        (* old format: no foul play, just drop it for rewrite *)
        (try Sys.remove path with Sys_error _ -> ());
        Stale
      | Corrupt ->
        (* quarantine: keep the bytes as evidence, never retry them *)
        (try Sys.rename path (path ^ ".bad")
         with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
        Corrupt
      | Absent -> Absent
    end

let frame_of payload =
  Printf.sprintf "%s%08x%s%s" disk_magic (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

let disk_store t key (res : Engine.t) =
  match t.disk_dir with
  | None -> ()
  | Some dir -> (
    let path = disk_path dir key in
    let tmp =
      Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
        (Domain.self () :> int)
    in
    let payload = Marshal.to_string (Digest_key.format_version, res) [] in
    let frame = frame_of payload in
    let frame =
      (* Fault injection: flip a payload bit *after* framing, so the stored
         checksum still describes the original bytes — exactly what on-disk
         bit rot looks like. The read path must fail verification and
         quarantine the entry; the corrupt bytes must never reach Marshal. *)
      match t.fault with
      | Some (Diag.Fault.Corrupt_cache n) when n >= 1 ->
        let nth = locked t (fun () -> t.disk_writes <- t.disk_writes + 1; t.disk_writes) in
        if nth mod n = 0 then begin
          let b = Bytes.of_string frame in
          let mid = String.length frame - (String.length payload / 2) - 1 in
          Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0xff));
          Bytes.to_string b
        end
        else frame
      | _ -> frame
    in
    try
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc frame);
      Sys.rename tmp path
    with _ -> ( try Sys.remove tmp with _ -> ()))

(* --- Lookup --- *)

let find_or_compute t ~slot ~stamp ~key compute =
  let cached =
    locked t (fun () ->
        (match Hashtbl.find_opt t.seen slot with
        | Some old when not (String.equal old stamp) ->
          t.c.invalidations <- t.c.invalidations + 1;
          Vrp_obs.Metrics.inc obs_invalidations
        | _ -> ());
        Hashtbl.replace t.seen slot stamp;
        match Hashtbl.find_opt t.mem key with
        | Some e ->
          t.tick <- t.tick + 1;
          e.last_use <- t.tick;
          t.c.hits <- t.c.hits + 1;
          Vrp_obs.Metrics.inc obs_hits;
          Some e.res
        | None -> None)
  in
  match cached with
  | Some res -> res
  | None -> (
    match disk_load t key with
    | Served res ->
      locked t (fun () ->
          t.c.hits <- t.c.hits + 1;
          t.c.disk_hits <- t.c.disk_hits + 1;
          Vrp_obs.Metrics.inc obs_hits;
          Vrp_obs.Metrics.inc obs_disk_hits;
          insert_locked t key res);
      res
    | (Stale | Corrupt | Absent) as verdict ->
      locked t (fun () ->
          t.c.misses <- t.c.misses + 1;
          Vrp_obs.Metrics.inc obs_misses;
          match verdict with
          | Stale ->
            t.c.invalidations <- t.c.invalidations + 1;
            Vrp_obs.Metrics.inc obs_invalidations
          | Corrupt ->
            t.c.invalidations <- t.c.invalidations + 1;
            t.c.quarantined <- t.c.quarantined + 1;
            Vrp_obs.Metrics.inc obs_invalidations;
            Vrp_obs.Metrics.inc obs_quarantined
          | Served _ | Absent -> ());
      let res = compute () in
      locked t (fun () -> insert_locked t key res);
      disk_store t key res;
      res)

(* --- The memoizing analyze_fn --- *)

(* A hit skips the engine run, so the diagnostics the engine would have
   emitted are replayed from the summary's governor fields — warm runs keep
   the same degradation verdict as cold ones. *)
let replay_diags (res : Engine.t) report =
  match report with
  | None -> ()
  | Some r ->
    let fn = res.Engine.fn.Ir.fname in
    if res.Engine.fuel_exhausted then
      Diag.add r ~fn Diag.Warning Diag.Budget_exhausted
        (Printf.sprintf "fuel exhausted after %d steps (cached summary); results are partial"
           res.Engine.fuel_spent);
    if res.Engine.timed_out then
      Diag.add r ~fn Diag.Warning Diag.Timeout
        (Printf.sprintf "wall-clock limit hit after %d steps (cached summary); results are \
                         partial"
           res.Engine.fuel_spent);
    if res.Engine.widenings > 0 then
      Diag.add r ~fn Diag.Warning Diag.Widened
        (Printf.sprintf "%d value(s) widened to ⊥ (cached summary)" res.Engine.widenings)

let memoized ?(slot_prefix = "") t (program : Ir.program) : Interproc.analyze_fn =
  let info : (string, string * string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (fn : Ir.fn) ->
      Hashtbl.replace info fn.Ir.fname
        (Digest_key.fn_digest fn, Digest_key.static_callees fn))
    program.Ir.fns;
  fun ~config ~report ~call_oracle ~param_values fn ->
    let fname = fn.Ir.fname in
    let ir_digest, callees =
      match Hashtbl.find_opt info fname with
      | Some i -> i
      | None -> (Digest_key.fn_digest fn, Digest_key.static_callees fn)
    in
    let config_digest = Digest_key.config_digest config in
    let key =
      Digest_key.task_key ~fn_digest:ir_digest ~config_digest ~param_values
        ~callee_returns:(List.map (fun c -> (c, call_oracle c [])) callees)
    in
    let computed = ref false in
    let res =
      find_or_compute t
        ~slot:(slot_prefix ^ fname)
        ~stamp:(ir_digest ^ config_digest)
        ~key
        (fun () ->
          computed := true;
          Engine.analyze ~config ?report ~call_oracle ~param_values fn)
    in
    if not !computed then replay_diags res report;
    res
