(** The 90/50 rule and the Ball–Larus heuristic set with Wu–Larus hit-rate
    probabilities — the paper's baselines and its fallback for branches
    whose value range is ⊥. Each heuristic returns [Some p] (probability of
    the true edge) when it applies. See the implementation header for how
    "backward branch" is interpreted structurally and why the pointer
    heuristic is absent in MiniC. *)

module Ir = Vrp_ir.Ir

type ctx = { fn : Ir.fn; loops : Vrp_ir.Loops.t; postdom : Vrp_ir.Dom.t }

val make_ctx : Ir.fn -> ctx

(** Block-shape predicates shared with the learned predictor's feature
    extractor, so both tiers read the same structural signals. *)
val block_has_call : ctx -> int -> bool

val block_has_store : ctx -> int -> bool
val block_returns : ctx -> int -> bool

(** [postdominates ctx a b]: does block [a] postdominate block [b]? *)
val postdominates : ctx -> int -> int -> bool

(** Wu–Larus hit rates. *)
val lbh_prob : float

val leh_prob : float
val lhh_prob : float
val ch_prob : float
val oh_prob : float
val gh_prob : float
val sh_prob : float
val rh_prob : float

(** The individual heuristics (exposed for testing and ablation). *)
val loop_branch : ctx -> src:int -> Ir.branch -> float option

val loop_exit : ctx -> src:int -> Ir.branch -> float option
val loop_header : ctx -> src:int -> Ir.branch -> float option
val call : ctx -> src:int -> Ir.branch -> float option
val opcode : ctx -> src:int -> Ir.branch -> float option
val guard : ctx -> src:int -> Ir.branch -> float option
val store : ctx -> src:int -> Ir.branch -> float option
val return : ctx -> src:int -> Ir.branch -> float option

(** Dempster–Shafer combination of every applicable heuristic. *)
val ball_larus : ctx -> src:int -> Ir.branch -> float

(** The 90/50 rule: structurally-backward branches 90%, else 50/50. *)
val ninety_fifty : ctx -> src:int -> Ir.branch -> float
