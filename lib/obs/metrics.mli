(** Process-wide metrics registry with Prometheus text exposition.

    Dependency-free (stdlib + unix) so every layer of the stack can link
    it: counters, gauges and fixed-bucket histograms registered by name +
    label set, aggregated on read, rendered in the Prometheus text format
    (v0.0.4).

    Concurrency model: registration is mutex-guarded (rare, idempotent)
    but the hot-path cells never take a lock — counters are sharded per
    domain ([inc] is a fetch-and-add on a domain-private atomic, [value]
    sums the shards so increments are never lost across domains), gauges
    are one atomic float, histograms one atomic count per bucket plus an
    atomic sum. Reads are racy snapshots by design: they never block
    writers and are monotonic per cell, which is all a scraper needs. *)

type counter
type gauge
type histogram

(** A metric namespace. Most callers use the implicit {!default}; tests
    create private registries so assertions don't see process-wide
    state. *)
type registry

val create : unit -> registry

(** The process-wide registry every [?registry]-defaulted call targets —
    what [vrpd]'s [metrics] op renders. *)
val default : registry

(** Find-or-create: the same (name, label set) always yields the same
    cell, so metric definitions can live at their use sites.
    @raise Invalid_argument if the name is already registered as a
    different metric kind. *)
val counter :
  ?registry:registry -> ?help:string -> ?labels:(string * string) list ->
  string -> counter

val gauge :
  ?registry:registry -> ?help:string -> ?labels:(string * string) list ->
  string -> gauge

(** Default latency buckets (seconds), log-spaced 0.5ms..10s. *)
val default_buckets : float list

(** @raise Invalid_argument on empty or non-increasing [buckets]. *)
val histogram :
  ?registry:registry -> ?help:string -> ?labels:(string * string) list ->
  ?buckets:float list -> string -> histogram

val inc : ?by:int -> counter -> unit

(** Sum over the per-domain shards. *)
val value : counter -> int

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float
val observe : histogram -> float -> unit

(** [time h f] runs [f], records its wall-clock duration (seconds) in [h]
    — also when [f] raises — and returns its result. *)
val time : histogram -> (unit -> 'a) -> 'a

val hist_count : histogram -> int
val hist_sum : histogram -> float

(** Zero a counter's shards (tests; the exposition never resets). *)
val reset_counter : counter -> unit

(** Zero every cell in the registry, keeping the registrations. *)
val reset : ?registry:registry -> unit -> unit

(** Prometheus text exposition: one [# HELP]/[# TYPE] block per metric
    name, series sorted by (name, labels), label values escaped,
    histograms rendered as cumulative [_bucket{le=...}] lines plus
    [+Inf], [_sum] and [_count]. Pure read — rendering twice with no
    writes in between yields identical text. *)
val render : ?registry:registry -> unit -> string
