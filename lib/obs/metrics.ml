(* Process-wide metrics registry with Prometheus text exposition.

   Dependency-free (stdlib + unix only) so every layer of the stack can link
   it: counters, gauges and fixed-bucket histograms registered by name +
   label set, aggregated on read, rendered in the Prometheus text format.

   Concurrency model: the registry itself is a mutex-guarded list (metric
   registration is rare and idempotent), but the cells on the hot path never
   take a lock:

   - counters are sharded per domain: each domain increments its own
     [Atomic.t] cell (created lazily through [Domain.DLS]); [value] sums the
     shards. Increments are never lost across domains and uncontended
     fetch-and-add on a domain-private cache line is a few nanoseconds.
   - gauges are a single atomic float (set/add via CAS).
   - histograms keep one atomic count per bucket plus an atomic float sum;
     observation is a bounded linear scan over the (small) bucket array and
     two atomic updates.

   Reads (render, value) are racy snapshots by design: they never block
   writers and are monotonic per cell, which is all Prometheus needs. *)

type counter = {
  c_cells : int Atomic.t list ref;
  c_lock : Mutex.t;
  c_key : int Atomic.t Domain.DLS.key;
}

type gauge = { g_value : float Atomic.t }

type histogram = {
  h_bounds : float array; (* strictly increasing upper bounds, no +Inf *)
  h_counts : int Atomic.t array; (* length = Array.length h_bounds + 1 *)
  h_sum : float Atomic.t;
}

type cell = Counter of counter | Gauge of gauge | Histogram of histogram

type entry = {
  name : string;
  help : string;
  labels : (string * string) list; (* sorted by label name *)
  cell : cell;
}

type registry = { lock : Mutex.t; mutable entries : entry list }

let create () = { lock = Mutex.create (); entries = [] }
let default = create ()

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- cell constructors --- *)

let make_counter () =
  let cells = ref [] in
  let lock = Mutex.create () in
  let key =
    Domain.DLS.new_key (fun () ->
        let cell = Atomic.make 0 in
        locked lock (fun () -> cells := cell :: !cells);
        cell)
  in
  { c_cells = cells; c_lock = lock; c_key = key }

(* Default latency buckets (seconds), roughly log-spaced 0.5ms..10s. *)
let default_buckets =
  [ 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0;
    2.5; 5.0; 10.0 ]

let make_histogram buckets =
  let bounds = Array.of_list buckets in
  Array.sort compare bounds;
  let ok = ref true in
  Array.iteri
    (fun i b -> if i > 0 && b <= bounds.(i - 1) then ok := false)
    bounds;
  if Array.length bounds = 0 || not !ok then
    invalid_arg "Metrics.histogram: buckets must be non-empty and increasing";
  {
    h_bounds = bounds;
    h_counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
    h_sum = Atomic.make 0.0;
  }

(* --- registration (find-or-create, idempotent) --- *)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create registry ~name ~help ~labels make check =
  let labels = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  locked registry.lock (fun () ->
      match
        List.find_opt (fun e -> e.name = name && e.labels = labels)
          registry.entries
      with
      | Some e -> check e
      | None ->
          (* A name is one metric family: a sibling series under the same
             name but different labels must still agree on the kind, or
             the exposition would emit two conflicting TYPE lines. *)
          (match List.find_opt (fun e -> e.name = name) registry.entries with
          | Some sibling -> ignore (check sibling)
          | None -> ());
          let e = { name; help; labels; cell = make () } in
          registry.entries <- e :: registry.entries;
          (match check e with v -> v))

let wrong_kind name want e =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered as a %s, wanted %s" name
       (kind_name e.cell) want)

let counter ?(registry = default) ?(help = "") ?(labels = []) name =
  find_or_create registry ~name ~help ~labels
    (fun () -> Counter (make_counter ()))
    (fun e -> match e.cell with Counter c -> c | _ -> wrong_kind name "counter" e)

let gauge ?(registry = default) ?(help = "") ?(labels = []) name =
  find_or_create registry ~name ~help ~labels
    (fun () -> Gauge { g_value = Atomic.make 0.0 })
    (fun e -> match e.cell with Gauge g -> g | _ -> wrong_kind name "gauge" e)

let histogram ?(registry = default) ?(help = "") ?(labels = [])
    ?(buckets = default_buckets) name =
  find_or_create registry ~name ~help ~labels
    (fun () -> Histogram (make_histogram buckets))
    (fun e ->
      match e.cell with Histogram h -> h | _ -> wrong_kind name "histogram" e)

(* --- updates --- *)

let inc ?(by = 1) c = ignore (Atomic.fetch_and_add (Domain.DLS.get c.c_key) by)
let value c = locked c.c_lock (fun () -> List.fold_left (fun acc a -> acc + Atomic.get a) 0 !(c.c_cells))

let set g v = Atomic.set g.g_value v

let rec atomic_add_float a v =
  let cur = Atomic.get a in
  if not (Atomic.compare_and_set a cur (cur +. v)) then atomic_add_float a v

let add g v = atomic_add_float g.g_value v
let gauge_value g = Atomic.get g.g_value

let observe h v =
  let n = Array.length h.h_bounds in
  let rec bucket i = if i >= n || v <= h.h_bounds.(i) then i else bucket (i + 1) in
  ignore (Atomic.fetch_and_add h.h_counts.(bucket 0) 1);
  atomic_add_float h.h_sum v

(* Time [f] and record its duration (seconds) in [h]. *)
let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

let hist_count h = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.h_counts
let hist_sum h = Atomic.get h.h_sum

let reset_counter c =
  locked c.c_lock (fun () -> List.iter (fun a -> Atomic.set a 0) !(c.c_cells))

let reset ?(registry = default) () =
  let entries = locked registry.lock (fun () -> registry.entries) in
  List.iter
    (fun e ->
      match e.cell with
      | Counter c -> reset_counter c
      | Gauge g -> Atomic.set g.g_value 0.0
      | Histogram h ->
          Array.iter (fun a -> Atomic.set a 0) h.h_counts;
          Atomic.set h.h_sum 0.0)
    entries

(* --- Prometheus text exposition --- *)

(* Label values escape backslash, double-quote and newline; HELP text
   escapes backslash and newline (Prometheus text format v0.0.4). *)
let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let format_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else Printf.sprintf "%.9g" v

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             labels)
      ^ "}"

(* Labels with an extra [le] appended (histogram buckets). *)
let render_labels_le labels le =
  render_labels (labels @ [ ("le", le) ])

let render ?(registry = default) () =
  let entries = locked registry.lock (fun () -> registry.entries) in
  let entries =
    List.sort
      (fun a b ->
        match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
      entries
  in
  let buf = Buffer.create 4096 in
  let last_name = ref "" in
  List.iter
    (fun e ->
      if e.name <> !last_name then begin
        last_name := e.name;
        if e.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" e.name (escape_help e.help));
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" e.name (kind_name e.cell))
      end;
      match e.cell with
      | Counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" e.name (render_labels e.labels)
               (value c))
      | Gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" e.name (render_labels e.labels)
               (format_float (Atomic.get g.g_value)))
      | Histogram h ->
          (* Cumulative buckets, then +Inf, _sum and _count. Snapshot the
             per-bucket counts once so bucket/count lines are mutually
             consistent even while writers are active. *)
          let counts = Array.map Atomic.get h.h_counts in
          let total = Array.fold_left ( + ) 0 counts in
          let acc = ref 0 in
          Array.iteri
            (fun i bound ->
              acc := !acc + counts.(i);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" e.name
                   (render_labels_le e.labels (format_float bound))
                   !acc))
            h.h_bounds;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" e.name
               (render_labels_le e.labels "+Inf") total);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" e.name (render_labels e.labels)
               (format_float (Atomic.get h.h_sum)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" e.name (render_labels e.labels)
               total))
    entries;
  Buffer.contents buf
