(* Lightweight span tracer with Chrome trace_event JSON export.

   Spans are scoped ([with_span name f]) and carry an explicit parent link:
   each domain keeps a DLS stack of open span ids, so nesting is recorded
   even though events are only emitted at span end. Completed spans go into
   a mutex-guarded ring buffer (per run; [reset] clears it); once full, the
   oldest events are overwritten and counted as dropped.

   Disabled is the default and costs one atomic load per [with_span] — no
   allocation, no clock read — so instrumentation can stay in hot paths
   permanently. Timestamps are wall-clock microseconds, tid is the domain
   id, which is what Chrome's trace viewer groups rows by. *)

type event = {
  name : string;
  ts_us : float; (* span start, absolute wall-clock microseconds *)
  dur_us : float;
  tid : int; (* domain id *)
  id : int; (* unique span id *)
  parent : int; (* enclosing span id on the same domain, 0 = root *)
  args : (string * string) list;
}

type state = {
  enabled : bool Atomic.t;
  lock : Mutex.t;
  mutable buf : event option array;
  mutable next : int; (* ring write cursor *)
  mutable stored : int;
  mutable dropped : int;
}

let default_capacity = 65536

let state =
  {
    enabled = Atomic.make false;
    lock = Mutex.create ();
    buf = [||];
    next = 0;
    stored = 0;
    dropped = 0;
  }

let next_id = Atomic.make 1

let stack_key : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let locked f =
  Mutex.lock state.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock state.lock) f

let enabled () = Atomic.get state.enabled

let reset () =
  locked (fun () ->
      Array.fill state.buf 0 (Array.length state.buf) None;
      state.next <- 0;
      state.stored <- 0;
      state.dropped <- 0)

let enable ?(capacity = default_capacity) () =
  locked (fun () ->
      state.buf <- Array.make (max 16 capacity) None;
      state.next <- 0;
      state.stored <- 0;
      state.dropped <- 0);
  Atomic.set state.enabled true

let disable () = Atomic.set state.enabled false

let record ev =
  locked (fun () ->
      let cap = Array.length state.buf in
      if cap > 0 then begin
        if state.stored >= cap then state.dropped <- state.dropped + 1
        else state.stored <- state.stored + 1;
        state.buf.(state.next) <- Some ev;
        state.next <- (state.next + 1) mod cap
      end)

let with_span ?(args = []) name f =
  if not (Atomic.get state.enabled) then f ()
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> 0 | p :: _ -> p in
    stack := id :: !stack;
    let t0 = Unix.gettimeofday () in
    let finish () =
      let t1 = Unix.gettimeofday () in
      (match !stack with _ :: tl -> stack := tl | [] -> ());
      record
        {
          name;
          ts_us = t0 *. 1e6;
          dur_us = (t1 -. t0) *. 1e6;
          tid = (Domain.self () :> int);
          id;
          parent;
          args;
        }
    in
    Fun.protect ~finally:finish f
  end

(* Events in completion order (oldest surviving first). *)
let events () =
  locked (fun () ->
      let cap = Array.length state.buf in
      if cap = 0 then []
      else begin
        let out = ref [] in
        let start = if state.stored >= cap then state.next else 0 in
        for i = 0 to state.stored - 1 do
          match state.buf.((start + i) mod cap) with
          | Some e -> out := e :: !out
          | None -> ()
        done;
        List.rev !out
      end)

let dropped () = locked (fun () -> state.dropped)

(* --- Chrome trace_event export --- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let event_json e =
  let args =
    ("span_id", string_of_int e.id)
    :: ("parent_id", string_of_int e.parent)
    :: e.args
  in
  Printf.sprintf
    {|{"name":"%s","cat":"vrp","ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{%s}}|}
    (json_escape e.name) e.ts_us e.dur_us e.tid
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v))
          args))

let export () =
  let evs = events () in
  "{\"traceEvents\":[\n"
  ^ String.concat ",\n" (List.map event_json evs)
  ^ "\n],\"displayTimeUnit\":\"ms\"}\n"

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (export ()))
