(** Lightweight span tracer with Chrome trace_event JSON export.

    Spans are scoped ({!with_span}) and carry an explicit parent link:
    each domain keeps a stack of open span ids, so nesting is recorded
    even though events are only emitted at span end. Completed spans go
    into a mutex-guarded ring buffer; once full, the oldest events are
    overwritten and counted as {!dropped}.

    Disabled is the default and costs one atomic load per {!with_span} —
    no allocation, no clock read — so instrumentation can stay in hot
    paths permanently. Tracing never touches analysis state: output with
    tracing enabled is byte-identical to output with it disabled (pinned
    by test). *)

(** A completed span. [ts_us] is the absolute wall-clock start in
    microseconds, [tid] the domain id, [parent] the enclosing span on the
    same domain (0 = root). *)
type event = {
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  id : int;
  parent : int;
  args : (string * string) list;
}

(** Start capturing: (re)allocate the ring at [capacity] (default 65536,
    min 16) and clear any previous run. *)
val enable : ?capacity:int -> unit -> unit

(** Stop capturing; recorded events stay readable. *)
val disable : unit -> unit

val enabled : unit -> bool

(** Clear the ring and the dropped count without changing enablement. *)
val reset : unit -> unit

(** [with_span name f] runs [f] inside a span (also closed when [f]
    raises). When tracing is disabled this is just [f ()]. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Completed spans, oldest surviving first. *)
val events : unit -> event list

(** Events overwritten because the ring was full. *)
val dropped : unit -> int

(** The capture as a Chrome [trace_event] JSON document (complete events,
    [ph:"X"]; load via chrome://tracing or Perfetto). Span ids and parent
    links ride in each event's [args]. *)
val export : unit -> string

(** {!export} to a file. *)
val write : string -> unit
