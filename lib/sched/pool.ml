(** Fixed-size domain worker pool (see the interface).

    Implementation: a mutex/condition-guarded queue of thunks. Worker
    domains block on the condition until work arrives or the pool closes.
    Each [map] call wraps its tasks so every outcome — value or exception —
    lands in a slot of a results array; a per-batch countdown wakes the
    caller when the last slot is filled. While waiting, the caller drains
    the queue itself, so a pool of [jobs] gives [jobs]-way parallelism with
    only [jobs - 1] spawned domains. *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.work_available t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* closed: exit *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.lock;
    task ();
    worker_loop t
  end

let create ~jobs () =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let map (type a b) (t : t) (f : a -> b) (tasks : a array) : (b, exn) result array =
  let n = Array.length tasks in
  let run i = try Ok (f tasks.(i)) with e -> Error e in
  if t.jobs <= 1 || n <= 1 then Array.init n run
  else begin
    let results : (b, exn) result array =
      Array.make n (Error (Failure "task not executed"))
    in
    let remaining = ref n in
    let batch_lock = Mutex.create () in
    let batch_done = Condition.create () in
    let complete i outcome =
      Mutex.lock batch_lock;
      results.(i) <- outcome;
      decr remaining;
      if !remaining = 0 then Condition.signal batch_done;
      Mutex.unlock batch_lock
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.add (fun () -> complete i (run i)) t.queue
    done;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    (* The caller helps drain the queue, then sleeps until the last task —
       possibly running on a worker — completes. *)
    let continue = ref true in
    while !continue do
      Mutex.lock t.lock;
      match Queue.take_opt t.queue with
      | Some task ->
        Mutex.unlock t.lock;
        task ()
      | None ->
        Mutex.unlock t.lock;
        continue := false
    done;
    Mutex.lock batch_lock;
    while !remaining > 0 do
      Condition.wait batch_done batch_lock
    done;
    Mutex.unlock batch_lock;
    results
  end

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
