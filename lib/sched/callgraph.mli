(** Static call graph of an SSA program and its SCC condensation.

    The interprocedural driver analyses one function per task; mutually
    recursive functions (one SCC) are co-located in a single task, and the
    driver's waves visit SCCs in condensation topological order. This
    module computes that plan once per program. *)

module Ir = Vrp_ir.Ir

type t

val build : Ir.program -> t

(** Functions [name] may call, restricted to functions defined in the
    program, sorted and deduplicated. *)
val callees : t -> string -> string list

(** Strongly connected components of the call graph in topological order of
    the condensation — callers before callees (recursion permitting), with
    [main]'s component wherever the order puts it. Members of one SCC are
    sorted by name. Every program function appears in exactly one SCC. *)
val sccs : t -> string list list

(** Convenience: [sccs (build program)]. The [groups] plan for
    {!Vrp_core.Interproc.analyze}. *)
val scc_groups : Ir.program -> string list list
