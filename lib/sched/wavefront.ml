(** SCC-wave parallel interprocedural analysis (see the interface). *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc

let runner pool : Interproc.runner =
 fun tasks ->
  Pool.map pool (fun (task : Interproc.task) -> task.run ()) tasks
  |> Array.map (function Ok r -> r | Error e -> raise e)

let analyze ?config ?report ?max_rounds ?analyze_fn ~jobs program =
  let groups = Callgraph.scc_groups program in
  Pool.with_pool ~jobs (fun pool ->
      Interproc.analyze ?config ?report ?max_rounds ~groups ~run_tasks:(runner pool)
        ?analyze_fn program)
