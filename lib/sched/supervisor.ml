(** Task supervision: deadlines, retries, escalation (see the interface). *)

module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Ir = Vrp_ir.Ir
module Interproc = Vrp_core.Interproc

type policy = {
  deadline_ms : int option;
  retries : int;
  backoff_ms : int;
}

let default_policy = { deadline_ms = None; retries = 0; backoff_ms = 10 }

type counters = {
  mutable deadline_hits : int;
  mutable retry_count : int;
  mutable gave_up : int;
}

(* A running supervised task, visible to the monitor domain. *)
type running = {
  token : Diag.Cancel.token;
  deadline : float;  (* absolute, Unix.gettimeofday clock *)
}

type t = {
  policy : policy;
  lock : Mutex.t;  (* guards registry, next_id and counters *)
  registry : (int, running) Hashtbl.t;
  mutable next_id : int;
  c : counters;
  stop : bool Atomic.t;
  mutable monitor : unit Domain.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Registry mirrors of the per-supervisor counters: process-wide totals the
   metrics exposition scrapes. The per-[t] record stays authoritative for
   [counters_line]; both are bumped at the same sites. *)
let deadline_hits_total =
  Vrp_obs.Metrics.counter ~help:"Supervised tasks cancelled by deadline"
    "vrp_sched_deadline_hits_total"

let retries_total =
  Vrp_obs.Metrics.counter ~help:"Supervised task retries"
    "vrp_sched_retries_total"

let gave_up_total =
  Vrp_obs.Metrics.counter
    ~help:"Supervised tasks that exhausted their retry budget"
    "vrp_sched_gave_up_total"

(* The monitor never touches reports or results: it only flips cancellation
   flags and bumps counters, so all observable diagnostics are emitted from
   the worker that owns the task — no cross-domain races on reports. *)
let monitor_loop t () =
  while not (Atomic.get t.stop) do
    locked t (fun () ->
        let now = Unix.gettimeofday () in
        Hashtbl.iter
          (fun _ r ->
            if now > r.deadline && not (Diag.Cancel.cancelled r.token) then begin
              Diag.Cancel.cancel r.token;
              t.c.deadline_hits <- t.c.deadline_hits + 1;
              Vrp_obs.Metrics.inc deadline_hits_total
            end)
          t.registry);
    Unix.sleepf 0.002
  done

let create ?(policy = default_policy) () =
  let t =
    {
      policy;
      lock = Mutex.create ();
      registry = Hashtbl.create 32;
      next_id = 0;
      c = { deadline_hits = 0; retry_count = 0; gave_up = 0 };
      stop = Atomic.make false;
      monitor = None;
    }
  in
  (* No deadline means nothing to watch: skip the monitor domain so a
     retries-only supervisor costs nothing at idle. A per-call deadline
     arriving later spawns it lazily (see [ensure_monitor]). *)
  (match policy.deadline_ms with
  | None -> ()
  | Some _ -> t.monitor <- Some (Domain.spawn (monitor_loop t)));
  t

(* Lazy monitor spawn for supervisors created without a policy deadline
   whose first per-call deadline arrives mid-life. Under the lock so two
   racing registrations spawn one monitor; never after shutdown. *)
let ensure_monitor t =
  locked t (fun () ->
      if t.monitor = None && not (Atomic.get t.stop) then
        t.monitor <- Some (Domain.spawn (monitor_loop t)))

let shutdown t =
  Atomic.set t.stop true;
  Option.iter Domain.join t.monitor;
  t.monitor <- None

let with_supervisor ?policy f =
  let t = create ?policy () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let policy t = t.policy

let counters t =
  locked t (fun () ->
      {
        deadline_hits = t.c.deadline_hits;
        retry_count = t.c.retry_count;
        gave_up = t.c.gave_up;
      })

let counters_line t =
  let c = counters t in
  Printf.sprintf
    "supervision: %d deadline hit(s), %d retry(ies), %d task(s) gave up"
    c.deadline_hits c.retry_count c.gave_up

let register t ?deadline_ms token =
  (* A per-call deadline overrides the policy's; callers that want the
     tighter of the two (e.g. a propagated request budget under a server
     deadline) take the min before calling. *)
  let eff =
    match deadline_ms with Some _ -> deadline_ms | None -> t.policy.deadline_ms
  in
  (match eff with Some _ -> ensure_monitor t | None -> ());
  locked t (fun () ->
      let id = t.next_id in
      t.next_id <- id + 1;
      (match eff with
      | None -> ()
      | Some ms ->
        let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
        Hashtbl.replace t.registry id { token; deadline });
      id)

let unregister t id = locked t (fun () -> Hashtbl.remove t.registry id)

let supervise t ~name ?deadline_ms ?report f =
  let emit severity kind message =
    match report with
    | None -> ()
    | Some r -> Diag.add r ~fn:name severity kind message
  in
  let rec attempt n =
    let token = Diag.Cancel.make ~attempt:n () in
    let id = register t ?deadline_ms token in
    match Fun.protect ~finally:(fun () -> unregister t id) (fun () -> f token) with
    | v -> v
    | exception e ->
      (* Deterministic messages: never include wall-clock measurements, so
         reports stay byte-identical across jobs counts and machine load. *)
      (match e with
      | Diag.Cancel.Cancelled _ ->
        emit Diag.Warning Diag.Deadline_exceeded
          (Printf.sprintf "deadline exceeded in %s; analysis cancelled" name)
      | _ -> ());
      if n < t.policy.retries then begin
        locked t (fun () -> t.c.retry_count <- t.c.retry_count + 1);
        Vrp_obs.Metrics.inc retries_total;
        emit Diag.Info Diag.Task_retry
          (Printf.sprintf "retrying %s (attempt %d of %d)" name (n + 2)
             (t.policy.retries + 1));
        (* Linear deterministic backoff; bounded by policy, not by load. *)
        Unix.sleepf (float_of_int (t.policy.backoff_ms * (n + 1)) /. 1000.);
        attempt (n + 1)
      end
      else begin
        locked t (fun () -> t.c.gave_up <- t.c.gave_up + 1);
        Vrp_obs.Metrics.inc gave_up_total;
        raise e
      end
  in
  attempt 0

let wrap_analyze_fn t (inner : Interproc.analyze_fn) : Interproc.analyze_fn =
 fun ~config ~report ~call_oracle ~param_values fn ->
  let name = fn.Ir.fname in
  supervise t ~name ?report (fun token ->
      inner
        ~config:{ config with Engine.cancel = Some token }
        ~report ~call_oracle ~param_values fn)
