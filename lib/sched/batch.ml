(** Batch analysis driver (see the interface). *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc
module Pipeline = Vrp_core.Pipeline
module Summary_cache = Vrp_cache.Summary_cache

type file_result = {
  name : string;
  error : string option;
  functions : int;
  predictions : ((string * int) * float * string) list;
  demoted : (string * string) list;
  report : Diag.report;
  evaluations : int;
}

type aggregate = {
  files : int;
  failed_files : int;
  functions : int;
  branches : int;
  fallbacks : int;
  demoted_fns : int;
}

(* Fallback markers, same legend as [vrpc predict]: (fn, block) -> was the
   heuristic fallback caused by degradation. *)
let fallback_markers report =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : Diag.diag) ->
      match (d.Diag.kind, d.Diag.loc.Diag.fn, d.Diag.loc.Diag.block) with
      | Diag.Fallback_heuristic, Some fn, Some bid ->
        let degraded = d.Diag.severity <> Diag.Info in
        let prev = Option.value ~default:false (Hashtbl.find_opt tbl (fn, bid)) in
        Hashtbl.replace tbl (fn, bid) (degraded || prev)
      | _ -> ())
    (Diag.to_list report);
  tbl

let failed_result name msg report =
  {
    name;
    error = Some msg;
    functions = 0;
    predictions = [];
    demoted = [];
    report;
    evaluations = 0;
  }

let analyze_one ?cache ~config (name, source) =
  let report = Diag.create () in
  match Pipeline.compile_result source with
  | Error d ->
    Diag.add report Diag.Error d.Diag.kind d.Diag.message;
    failed_result name d.Diag.message report
  | Ok compiled ->
    let ssa = compiled.Pipeline.ssa in
    let groups = Callgraph.scc_groups ssa in
    let analyze_fn =
      match cache with
      | Some c -> Summary_cache.memoized ~slot_prefix:(name ^ ":") c ssa
      | None -> Interproc.default_analyze_fn
    in
    let vrp, ipa = Pipeline.vrp_predictions ~config ~report ~groups ~analyze_fn ssa in
    let markers = fallback_markers report in
    let predictions =
      Hashtbl.fold
        (fun key p acc ->
          let marker =
            match Hashtbl.find_opt markers key with
            | Some true -> "!"
            | Some false -> "*"
            | None -> ""
          in
          (key, p, marker) :: acc)
        vrp []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
    in
    let demoted =
      match ipa with
      | None -> []
      | Some ipa ->
        List.sort compare
          (Hashtbl.fold (fun fn why acc -> (fn, why) :: acc) ipa.Interproc.failed [])
    in
    let evaluations =
      match ipa with
      | None -> 0
      | Some ipa ->
        List.fold_left
          (fun acc (fn : Ir.fn) ->
            match Interproc.result ipa fn.Ir.fname with
            | Some res -> acc + res.Engine.evaluations
            | None -> acc)
          0 ssa.Ir.fns
    in
    {
      name;
      error = None;
      functions = List.length ssa.Ir.fns;
      predictions;
      demoted;
      report;
      evaluations;
    }

let analyze_sources ?(config = Engine.default_config) ?cache ~jobs sources =
  Pool.with_pool ~jobs (fun pool ->
      let outcomes =
        Pool.map pool (analyze_one ?cache ~config) (Array.of_list sources)
      in
      List.map2
        (fun (name, _) outcome ->
          match outcome with
          | Ok r -> r
          | Error e ->
            (* Whole-file containment: even a driver bug costs one file. *)
            let report = Diag.create () in
            let msg = Printf.sprintf "batch task crashed: %s" (Printexc.to_string e) in
            Diag.add report Diag.Error Diag.Analysis_crashed msg;
            failed_result name msg report)
        sources
        (Array.to_list outcomes))

let aggregate results =
  List.fold_left
    (fun acc r ->
      {
        files = acc.files + 1;
        failed_files = (acc.failed_files + if r.error = None then 0 else 1);
        functions = acc.functions + r.functions;
        branches = acc.branches + List.length r.predictions;
        fallbacks =
          acc.fallbacks
          + List.length (List.filter (fun (_, _, m) -> m <> "") r.predictions);
        demoted_fns = acc.demoted_fns + List.length r.demoted;
      })
    { files = 0; failed_files = 0; functions = 0; branches = 0; fallbacks = 0;
      demoted_fns = 0 }
    results

let render results =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "== %s ==\n" r.name);
      (match r.error with
      | Some msg -> Buffer.add_string buf (Printf.sprintf "error: %s\n" msg)
      | None -> begin
        Buffer.add_string buf
          (Printf.sprintf "functions: %d, branches: %d\n" r.functions
             (List.length r.predictions));
        List.iter
          (fun ((fn, bid), p, marker) ->
            Buffer.add_string buf
              (Printf.sprintf "  %-28s %6.1f%%%s\n"
                 (Printf.sprintf "%s.B%d" fn bid)
                 (100.0 *. p) marker))
          r.predictions;
        List.iter
          (fun (fn, why) ->
            Buffer.add_string buf (Printf.sprintf "  demoted: %s (%s)\n" fn why))
          r.demoted
      end))
    results;
  let a = aggregate results in
  Buffer.add_string buf
    (Printf.sprintf
       "== aggregate ==\nfiles: %d (%d failed), functions: %d, branches: %d, \
        heuristic fallbacks: %d, demoted functions: %d\n"
       a.files a.failed_files a.functions a.branches a.fallbacks a.demoted_fns);
  Buffer.contents buf

let list_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         List.mem (Filename.extension f) [ ".mc"; ".minic"; ".c" ]
         && not (Sys.is_directory (Filename.concat dir f)))
  |> List.sort String.compare
  |> List.map (Filename.concat dir)
