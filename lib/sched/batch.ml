(** Batch analysis driver (see the interface). *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc
module Pipeline = Vrp_core.Pipeline
module Summary_cache = Vrp_cache.Summary_cache
module Digest_key = Vrp_cache.Digest_key

type file_result = {
  name : string;
  error : string option;
  functions : int;
  predictions : ((string * int) * float * string) list;
  demoted : (string * string) list;
  report : Diag.report;
  evaluations : int;
  resumed : bool;
}

type aggregate = {
  files : int;
  failed_files : int;
  functions : int;
  branches : int;
  fallbacks : int;
  demoted_fns : int;
  resumed_files : int;
}

(* Fallback markers, same legend as [vrpc predict]: (fn, block) -> was the
   heuristic fallback caused by degradation. *)
let fallback_markers report =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (d : Diag.diag) ->
      match (d.Diag.kind, d.Diag.loc.Diag.fn, d.Diag.loc.Diag.block) with
      | Diag.Fallback_heuristic, Some fn, Some bid ->
        let degraded = d.Diag.severity <> Diag.Info in
        let prev = Option.value ~default:false (Hashtbl.find_opt tbl (fn, bid)) in
        Hashtbl.replace tbl (fn, bid) (degraded || prev)
      | _ -> ())
    (Diag.to_list report);
  tbl

let failed_result name msg report =
  {
    name;
    error = Some msg;
    functions = 0;
    predictions = [];
    demoted = [];
    report;
    evaluations = 0;
    resumed = false;
  }

let analyze_one ?cache ?supervisor ~config (name, source) =
  (* The crash-file fault fires before any containment the file's own
     analysis sets up: it models a worker dying mid-wave, so only the
     pool's whole-file containment may catch it. *)
  (match config.Engine.fault with
  | Some (Diag.Fault.Crash_file affix) when Vrp_util.Strutil.is_infix ~affix name ->
    raise (Diag.Fault.Injected (Printf.sprintf "injected batch-task crash in %s" name))
  | _ -> ());
  let report = Diag.create () in
  match Pipeline.compile_result source with
  | Error d ->
    Diag.add report Diag.Error d.Diag.kind d.Diag.message;
    failed_result name d.Diag.message report
  | Ok compiled ->
    let ssa = compiled.Pipeline.ssa in
    let groups = Callgraph.scc_groups ssa in
    let analyze_fn =
      match cache with
      | Some c -> Summary_cache.memoized ~slot_prefix:(name ^ ":") c ssa
      | None -> Interproc.default_analyze_fn
    in
    (* Supervision wraps outside the cache: a cache hit is served without
       burning a deadline or a retry attempt. *)
    let analyze_fn =
      match supervisor with
      | Some s -> Supervisor.wrap_analyze_fn s analyze_fn
      | None -> analyze_fn
    in
    let vrp, ipa = Pipeline.vrp_predictions ~config ~report ~groups ~analyze_fn ssa in
    let markers = fallback_markers report in
    let predictions =
      Hashtbl.fold
        (fun key p acc ->
          let marker =
            match Hashtbl.find_opt markers key with
            | Some true -> "!"
            | Some false -> "*"
            | None -> ""
          in
          (key, p, marker) :: acc)
        vrp []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
    in
    let demoted =
      match ipa with
      | None -> []
      | Some ipa ->
        List.sort compare
          (Hashtbl.fold (fun fn why acc -> (fn, why) :: acc) ipa.Interproc.failed [])
    in
    let evaluations =
      match ipa with
      | None -> 0
      | Some ipa ->
        List.fold_left
          (fun acc (fn : Ir.fn) ->
            match Interproc.result ipa fn.Ir.fname with
            | Some res -> acc + res.Engine.evaluations
            | None -> acc)
          0 ssa.Ir.fns
    in
    {
      name;
      error = None;
      functions = List.length ssa.Ir.fns;
      predictions;
      demoted;
      report;
      evaluations;
      resumed = false;
    }

(* The checkpoint identity of one batch input: the source bytes plus every
   configuration knob that can change its analysis. A resumed run replays a
   journalled result only when both still match, so an edited file or a
   different flag set is re-analyzed, never served stale. *)
let input_digest ~config source =
  Digest.to_hex (Digest.string source) ^ "-" ^ Digest_key.config_digest config

let crash_result name e =
  (* Whole-file containment: even a driver bug costs one file. *)
  let report = Diag.create () in
  let why =
    match e with
    | Diag.Fault.Injected msg -> msg
    | e -> Printexc.to_string e
  in
  let msg = Printf.sprintf "batch task crashed: %s" why in
  Diag.add report Diag.Error Diag.Analysis_crashed msg;
  failed_result name msg report

let analyze_sources ?(config = Engine.default_config) ?cache ?supervisor
    ?journal ?journal_fault ~jobs sources =
  (* Resume: trust every intact journal record whose input digest still
     matches; last record wins if a file was journalled twice. *)
  let completed : (string * string, string) Hashtbl.t = Hashtbl.create 16 in
  (match journal with
  | None -> ()
  | Some path ->
    List.iter
      (fun (r : Journal.record) ->
        Hashtbl.replace completed (r.Journal.name, r.Journal.input_digest)
          r.Journal.payload)
      (Journal.load path));
  let keyed =
    List.map (fun (name, source) -> (name, source, input_digest ~config source)) sources
  in
  let fresh =
    List.filter (fun (name, _, d) -> not (Hashtbl.mem completed (name, d))) keyed
  in
  let writer = Option.map (Journal.open_append ?fault:journal_fault) journal in
  let fresh_results =
    Pool.with_pool ~jobs (fun pool ->
        let task (name, source, digest) =
          let r = analyze_one ?cache ?supervisor ~config (name, source) in
          (* Checkpoint after the result exists; a task that crashes (or is
             torn mid-append) leaves no record, so resume re-analyzes it. *)
          (match writer with
          | None -> ()
          | Some w ->
            Journal.append w
              {
                Journal.name;
                input_digest = digest;
                payload = Marshal.to_string r [];
              });
          r
        in
        let outcomes = Pool.map pool task (Array.of_list fresh) in
        List.map2
          (fun (name, _, _) outcome ->
            match outcome with
            | Ok r -> r
            | Error e -> crash_result name e)
          fresh
          (Array.to_list outcomes))
  in
  Option.iter Journal.close writer;
  (* Merge journalled and fresh results back into input order. *)
  let fresh_by_name = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace fresh_by_name r.name r) fresh_results;
  List.map
    (fun (name, _, digest) ->
      match Hashtbl.find_opt fresh_by_name name with
      | Some r -> r
      | None ->
        let payload = Hashtbl.find completed (name, digest) in
        let r : file_result = Marshal.from_string payload 0 in
        Diag.add r.report Diag.Info Diag.Journal_event
          "result replayed from checkpoint journal (inputs unchanged)";
        { r with resumed = true })
    keyed

let aggregate results =
  List.fold_left
    (fun acc r ->
      {
        files = acc.files + 1;
        failed_files = (acc.failed_files + if r.error = None then 0 else 1);
        functions = acc.functions + r.functions;
        branches = acc.branches + List.length r.predictions;
        fallbacks =
          acc.fallbacks
          + List.length (List.filter (fun (_, _, m) -> m <> "") r.predictions);
        demoted_fns = acc.demoted_fns + List.length r.demoted;
        resumed_files = (acc.resumed_files + if r.resumed then 1 else 0);
      })
    { files = 0; failed_files = 0; functions = 0; branches = 0; fallbacks = 0;
      demoted_fns = 0; resumed_files = 0 }
    results

(* Exit-code policy shared by the CLI and pinned by the tests: failed files
   dominate strictness (a 2 is a 2 even under [--strict]). The rendered
   report deliberately excludes [resumed_files] so a resumed run stays
   byte-identical to an uninterrupted one. *)
let exit_code ~strict results =
  let a = aggregate results in
  if a.failed_files > 0 then 2
  else if strict && List.exists (fun r -> Diag.degraded r.report) results then 3
  else 0

let render results =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Printf.sprintf "== %s ==\n" r.name);
      (match r.error with
      | Some msg -> Buffer.add_string buf (Printf.sprintf "error: %s\n" msg)
      | None -> begin
        Buffer.add_string buf
          (Printf.sprintf "functions: %d, branches: %d\n" r.functions
             (List.length r.predictions));
        List.iter
          (fun ((fn, bid), p, marker) ->
            Buffer.add_string buf
              (Printf.sprintf "  %-28s %6.1f%%%s\n"
                 (Printf.sprintf "%s.B%d" fn bid)
                 (100.0 *. p) marker))
          r.predictions;
        List.iter
          (fun (fn, why) ->
            Buffer.add_string buf (Printf.sprintf "  demoted: %s (%s)\n" fn why))
          r.demoted
      end))
    results;
  let a = aggregate results in
  Buffer.add_string buf
    (Printf.sprintf
       "== aggregate ==\nfiles: %d (%d failed), functions: %d, branches: %d, \
        heuristic fallbacks: %d, demoted functions: %d\n"
       a.files a.failed_files a.functions a.branches a.fallbacks a.demoted_fns);
  Buffer.contents buf

let list_dir dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         List.mem (Filename.extension f) [ ".mc"; ".minic"; ".c" ]
         && not (Sys.is_directory (Filename.concat dir f)))
  |> List.sort String.compare
  |> List.map (Filename.concat dir)
