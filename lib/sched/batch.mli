(** High-throughput batch analysis: fan out over many MiniC sources on a
    domain pool, analysing each file's call graph in SCC condensation order
    with an optional content-addressed summary cache.

    Determinism contract: for fixed inputs and configuration, the rendered
    report is byte-identical whatever [jobs] is — results are merged in
    file order, per-file analysis follows the deterministic wavefront
    driver, and cached summaries are content-addressed so a hit returns
    exactly what the miss would have computed. Timing and cache-traffic
    numbers are deliberately excluded from {!render}; surface them
    separately (they legitimately vary run to run). *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine

type file_result = {
  name : string;
  error : string option;  (** front-end failure, making the file empty *)
  functions : int;
  predictions : ((string * int) * float * string) list;
      (** ((fn, block), P(true edge), marker) sorted by function then block;
          marker as in [vrpc predict]: ["*"] ordinary ⊥-range fallback,
          ["!"] degraded (crash / fuel / timeout), [""] exact VRP *)
  demoted : (string * string) list;  (** (fn, crash reason), sorted *)
  report : Diag.report;  (** full structured diagnostics of this file *)
  evaluations : int;  (** engine expression evaluations (cost proxy) *)
  resumed : bool;  (** replayed from a checkpoint journal, not re-analyzed *)
}

type aggregate = {
  files : int;
  failed_files : int;
  functions : int;
  branches : int;
  fallbacks : int;  (** branches predicted by heuristics, not VRP *)
  demoted_fns : int;
  resumed_files : int;  (** served from the journal on a resumed run *)
}

(** Analyse [(name, source)] pairs, [jobs]-wide across files. Results come
    back in input order. A file that fails the front end or crashes the
    driver is contained: its [error] is set and the batch continues.

    [supervisor] puts every per-function analysis under deadline/retry
    supervision (see {!Supervisor}); escalation demotes a function, then a
    file, never the run. [journal] checkpoints each completed file to that
    path and, when the journal already exists, resumes from it: files whose
    name and input digest match an intact record are replayed (marked
    [resumed]) instead of re-analyzed, so an interrupted batch re-run with
    the same journal produces a byte-identical report while skipping the
    completed work. A crashed task is never journalled. [journal_fault]
    threads [torn-journal:N] injection into the journal writer. *)
val analyze_sources :
  ?config:Engine.config ->
  ?cache:Vrp_cache.Summary_cache.t ->
  ?supervisor:Supervisor.t ->
  ?journal:string ->
  ?journal_fault:Diag.Fault.t ->
  jobs:int ->
  (string * string) list ->
  file_result list

val aggregate : file_result list -> aggregate

(** The CLI exit code for a finished batch: [2] if any file failed, else
    [3] if [strict] and any file's report is degraded, else [0]. *)
val exit_code : strict:bool -> file_result list -> int

(** Deterministic report (see the module header). *)
val render : file_result list -> string

(** MiniC files ([.mc], [.minic], [.c]) directly under [dir], sorted. *)
val list_dir : string -> string list
