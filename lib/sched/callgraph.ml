(** Static call graph + Tarjan SCC condensation (see the interface). *)

module Ir = Vrp_ir.Ir

type t = {
  order : string list;  (** program order, the traversal tie-break *)
  edges : (string, string list) Hashtbl.t;
}

let build (program : Ir.program) : t =
  let defined = Hashtbl.create 16 in
  List.iter (fun (fn : Ir.fn) -> Hashtbl.replace defined fn.Ir.fname ()) program.Ir.fns;
  let edges = Hashtbl.create 16 in
  List.iter
    (fun (fn : Ir.fn) ->
      let callees =
        List.filter (Hashtbl.mem defined) (Vrp_cache.Digest_key.static_callees fn)
      in
      Hashtbl.replace edges fn.Ir.fname callees)
    program.Ir.fns;
  { order = List.map (fun (fn : Ir.fn) -> fn.Ir.fname) program.Ir.fns; edges }

let callees t name = Option.value ~default:[] (Hashtbl.find_opt t.edges name)

(* Iterative Tarjan. The classical algorithm emits an SCC only once all
   components it reaches have been emitted, i.e. in reverse topological
   order of the condensation; we reverse at the end to get callers first. *)
let sccs t =
  let index = Hashtbl.create 16 (* name -> discovery index *) in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next_index;
    Hashtbl.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (callees t v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* v is the root of an SCC: pop the stack down to it. *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := List.sort String.compare (pop []) :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) t.order;
  !components

let scc_groups program = sccs (build program)
