(** A fixed-size worker pool on OCaml 5 domains.

    [jobs = 1] spawns no domains at all: work runs sequentially in the
    calling domain, making the single-job pool behaviourally identical to
    plain [Array.map]. With [jobs > 1], [jobs - 1] worker domains drain a
    shared queue and the caller participates in draining while it waits, so
    [jobs] tasks make progress concurrently.

    Crash containment: a task that raises yields [Error exn] in its result
    slot — one poisoned task can neither kill a worker domain nor take down
    the batch. Results always come back in task order, whatever order the
    workers finished in.

    Tasks must not submit work to the pool they run on (the worker would
    wait on itself). The batch driver therefore parallelises at one level
    at a time: across files, or across the SCC waves inside one file. *)

type t

(** [create ~jobs ()] clamps [jobs] to at least 1. *)
val create : jobs:int -> unit -> t

val jobs : t -> int

(** Run every task, returning per-task outcomes in task order. *)
val map : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array

(** Join the worker domains. The pool must not be used afterwards. *)
val shutdown : t -> unit

(** [with_pool ~jobs f] runs [f] with a fresh pool and always joins it. *)
val with_pool : jobs:int -> (t -> 'a) -> 'a
