(** Append-only batch checkpoint journal (see the interface). *)

module Diag = Vrp_diag.Diag

type record = {
  name : string;
  input_digest : string;
  payload : string;
}

(* --- Record framing ---

   magic (5 bytes) | body length (8 hex) | MD5(body) (32 hex) | body

   where body = Marshal record. A record is valid only if the whole frame
   is present and the checksum matches, so a reader can tell "the writer
   was killed mid-append" from "end of journal" without trusting anything
   after the tear. *)

let magic = "vrpj1"

let frame_of body =
  Printf.sprintf "%s%08x%s%s" magic (String.length body)
    (Digest.to_hex (Digest.string body))
    body

(* --- Reading --- *)

let read_record ic =
  match really_input_string ic (String.length magic) with
  | exception End_of_file -> None
  | m when not (String.equal m magic) -> None
  | _ -> (
    try
      match int_of_string_opt ("0x" ^ really_input_string ic 8) with
      | None -> None
      | Some len ->
        let sum = really_input_string ic 32 in
        let body = really_input_string ic len in
        if not (String.equal sum (Digest.to_hex (Digest.string body))) then None
        else Some (Marshal.from_string body 0 : record)
    with End_of_file | Failure _ -> None)

(* Scan the whole journal once: the intact records plus the byte offset
   where the first bad frame (the tear) begins. *)
let scan path =
  if not (Sys.file_exists path) then ([], 0)
  else
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc valid_end =
          match read_record ic with
          (* First bad frame = the tear left by a killed writer; everything
             before it is intact and everything after it is untrusted. *)
          | None -> (List.rev acc, valid_end)
          | Some r -> go (r :: acc) (pos_in ic)
        in
        go [] 0)

let load path = fst (scan path)

(* --- Writing --- *)

type writer = {
  oc : out_channel;
  lock : Mutex.t;  (* appenders are worker domains *)
  fault : Diag.Fault.t option;
  mutable written : int;
  mutable dead : bool;  (* after a torn-journal fault: drop all appends *)
}

let open_append ?fault path =
  (* Resuming onto a torn journal must drop the tear first: appending after
     half a frame would leave every new record behind a bad frame, where
     [load] can never see it. Truncate to the last intact record. *)
  let _, valid_end = scan path in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  Unix.ftruncate fd valid_end;
  ignore (Unix.lseek fd valid_end Unix.SEEK_SET);
  let oc = Unix.out_channel_of_descr fd in
  set_binary_mode_out oc true;
  { oc; lock = Mutex.create (); fault; written = 0; dead = false }

let append w r =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      if not w.dead then begin
        let frame = frame_of (Marshal.to_string r []) in
        (match w.fault with
        | Some (Diag.Fault.Torn_journal n) when w.written >= n ->
          (* Simulate a writer killed mid-append: half a frame hits the
             disk, then this process stops journalling for good. *)
          w.dead <- true;
          output_string w.oc (String.sub frame 0 (String.length frame / 2));
          flush w.oc;
          raise
            (Diag.Fault.Injected
               (Printf.sprintf "injected journal tear after %d record(s)" n))
        | _ -> ());
        output_string w.oc frame;
        (* One flush per record: a kill between appends can only cost the
           record being written, never a previously flushed one. *)
        flush w.oc;
        w.written <- w.written + 1
      end)

let close w =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      w.dead <- true;
      close_out_noerr w.oc)
