(** Supervised task execution: wall-clock deadlines, bounded retries, and a
    demotion escalation ladder for the batch pipeline.

    OCaml domains cannot be killed, so deadlines are enforced cooperatively:
    a supervised task gets a {!Diag.Cancel.token}, the analysis engine beats
    it and polls it at every worklist step, and a monitor domain cancels any
    token whose task outlives the policy's deadline. The worker then raises
    {!Diag.Cancel.Cancelled} from its next safe point.

    Escalation ladder for a failing task: retry it (up to [policy.retries]
    times, with linear deterministic backoff) → let the failure propagate,
    where {!Interproc.analyze}'s per-function containment demotes just that
    function to the Ball–Larus fallback → if the whole file's task dies, the
    batch driver demotes the file → a non-zero exit only under [--strict]
    (or when a file actually failed). The supervisor implements the first
    rung and provides the counters; the later rungs live where the failure
    lands.

    Determinism: supervision decisions affect only *whether* an analysis
    completes, never its value — a summary computed under supervision is
    byte-identical to one computed without. All supervision diagnostics use
    fixed messages with no wall-clock measurements. *)

module Diag = Vrp_diag.Diag
module Interproc = Vrp_core.Interproc

type policy = {
  deadline_ms : int option;
      (** per-task wall-clock budget; [None] disables the monitor *)
  retries : int;  (** extra attempts after the first failure *)
  backoff_ms : int;  (** base backoff; attempt [n] sleeps [n * backoff_ms] *)
}

(** No deadline, no retries, 10ms base backoff. *)
val default_policy : policy

type counters = {
  mutable deadline_hits : int;
      (** tasks cancelled by the monitor for outliving their deadline *)
  mutable retry_count : int;  (** retry attempts actually made *)
  mutable gave_up : int;
      (** tasks whose final attempt failed; the failure escalated *)
}

type t

(** [create ()] builds a supervisor; with a deadline in the policy it also
    spawns the monitor domain. Call {!shutdown} to join it. *)
val create : ?policy:policy -> unit -> t

(** Stop and join the monitor domain. Idempotent. *)
val shutdown : t -> unit

(** [with_supervisor f] runs [f] with a fresh supervisor and always shuts
    it down. *)
val with_supervisor : ?policy:policy -> (t -> 'a) -> 'a

val policy : t -> policy

(** Snapshot of the supervision counters. *)
val counters : t -> counters

(** Render the counters as one line, e.g. for [--diagnostics] output. *)
val counters_line : t -> string

(** [supervise t ~name f] runs [f token] under the policy: the token is
    registered with the monitor for deadline enforcement and carries the
    attempt number for fault injection. Failures are retried per policy;
    the last failure is re-raised for the caller's containment to handle.
    Deadline cancellations and retries are recorded in [report] with
    deterministic messages.

    [deadline_ms] overrides the policy deadline for this call only — how a
    request's propagated wall-clock budget (already reduced by queue wait)
    tightens the server's blanket deadline. The monitor domain is spawned
    lazily on the first call that actually has a deadline, so a supervisor
    created without one still costs nothing until needed. Callers wanting
    the tighter of policy and request budget pass the min. *)
val supervise :
  t ->
  name:string ->
  ?deadline_ms:int ->
  ?report:Diag.report ->
  (Diag.Cancel.token -> 'a) ->
  'a

(** Interpose supervision on a per-function analysis seam: each call runs
    under {!supervise} with the function's name, and the engine config is
    extended with the attempt's cancellation token so the worklist loop
    becomes cancellable. Compose outside the cache's memoized wrapper —
    supervising the lookup means a cache hit never burns an attempt. *)
val wrap_analyze_fn : t -> Interproc.analyze_fn -> Interproc.analyze_fn
