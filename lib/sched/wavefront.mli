(** SCC-wave parallelism for a single program: plugs the domain pool into
    the interprocedural driver's scheduling seam, so the independent SCCs
    of each wave run concurrently within every interprocedural round. *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag
module Engine = Vrp_core.Engine
module Interproc = Vrp_core.Interproc

(** An {!Interproc.runner} that executes a wave's tasks on the pool. A task
    whose infrastructure raises (the per-function containment inside the
    task never does) is re-raised at the merge point, exactly as it would
    in sequential execution. *)
val runner : Pool.t -> Interproc.runner

(** {!Interproc.analyze} with the SCC condensation plan of [program] and a
    pool of [jobs] domains. [jobs = 1] is the deterministic reference: any
    other value produces byte-identical results, just faster. *)
val analyze :
  ?config:Engine.config ->
  ?report:Diag.report ->
  ?max_rounds:int ->
  ?analyze_fn:Interproc.analyze_fn ->
  jobs:int ->
  Ir.program ->
  Interproc.t
