(** Append-only checkpoint journal for batch runs.

    Each completed file of a batch is appended as one framed record: magic,
    body length, body checksum, body. Frames make the journal
    crash-consistent without fsync discipline: a writer killed mid-append
    leaves a torn final frame that fails verification, and {!load} stops at
    the first bad frame — every record before the tear is trusted, nothing
    after it is. Records carry an input digest (source bytes + analysis
    configuration), so a resumed run re-analyzes any file that changed on
    disk or is being run under different settings instead of replaying a
    stale result.

    The payload is an opaque string chosen by the producer (the batch
    driver marshals its per-file result); the journal itself has no
    dependency on what it checkpoints. *)

module Diag = Vrp_diag.Diag

type record = {
  name : string;  (** source path, as passed to the batch driver *)
  input_digest : string;  (** identity of the inputs that produced it *)
  payload : string;  (** producer-defined bytes *)
}

(** [load path] returns every intact record in append order; a missing
    file is an empty journal. Never raises on torn or corrupt journals —
    the first bad frame ends the read. *)
val load : string -> record list

type writer

(** [open_append path] opens (creating if missing) the journal for
    appending; safe to call on a journal being resumed from — a torn final
    frame is truncated away first, so new records always land where a
    reader can see them, and intact records are never rewritten. [fault]
    enables [torn-journal:N]
    injection: the appender writes half a frame after [N] complete
    records, raises {!Diag.Fault.Injected}, and ignores further appends —
    exactly the on-disk state a process killed mid-append leaves behind. *)
val open_append : ?fault:Diag.Fault.t -> string -> writer

(** Append one record and flush it. Thread-safe across worker domains. *)
val append : writer -> record -> unit

(** Close the underlying channel; later appends are ignored. *)
val close : writer -> unit
