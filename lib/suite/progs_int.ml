(** The integer benchmark suite: MiniC programs whose branch mix mirrors
    SPECint92 — data-structure traversal, comparisons on input data, state
    machines, hashing — i.e. programs dominated by data-dependent non-loop
    branches that static analysis cannot fully resolve. Every program is
    self-contained: [main(n, seed)] generates its own input with an embedded
    linear congruential generator, so "different inputs" = different
    [(n, seed)] pairs, matching the paper's train-vs-reference regime. *)

(* Shared PRNG preamble; the state is a global scalar, so every read is a
   memory load with range ⊥, exactly like real input data. *)
let rng_preamble =
  {|
int rng;

int rand_step() {
  rng = (rng * 1103515245 + 12345) % 2147483648;
  return rng;
}

int rand_below(int m) {
  int r = rand_step();
  return r % m;
}
|}

let qsort =
  rng_preamble
  ^ {|
int data[4096];
int stack_lo[64];
int stack_hi[64];

void fill(int n) {
  for (int i = 0; i < n; i++) {
    data[i] = rand_below(100000);
  }
}

void insertion(int lo, int hi) {
  for (int i = lo + 1; i <= hi; i++) {
    int key = data[i];
    int j = i - 1;
    while (j >= lo && data[j] > key) {
      data[j + 1] = data[j];
      j = j - 1;
    }
    data[j + 1] = key;
  }
}

int main(int n, int seed) {
  if (n < 8) { n = 8; }
  if (n > 4096) { n = 4096; }
  rng = seed % 65536 + 1;
  fill(n);
  int sp = 1;
  stack_lo[0] = 0;
  stack_hi[0] = n - 1;
  while (sp > 0) {
    sp = sp - 1;
    int lo = stack_lo[sp];
    int hi = stack_hi[sp];
    if (hi - lo < 12) {
      insertion(lo, hi);
    } else {
      int pivot = data[(lo + hi) / 2];
      int i = lo;
      int j = hi;
      while (i <= j) {
        while (data[i] < pivot) { i++; }
        while (data[j] > pivot) { j = j - 1; }
        if (i <= j) {
          int t = data[i];
          data[i] = data[j];
          data[j] = t;
          i++;
          j = j - 1;
        }
      }
      if (sp < 60) {
        if (lo < j) { stack_lo[sp] = lo; stack_hi[sp] = j; sp++; }
        if (i < hi) { stack_lo[sp] = i; stack_hi[sp] = hi; sp++; }
      } else {
        insertion(lo, hi);
      }
    }
  }
  int bad = 0;
  int sum = 0;
  for (int i = 1; i < n; i++) {
    if (data[i - 1] > data[i]) { bad++; }
  }
  for (int i = 0; i < n; i++) { sum = (sum + data[i]) % 1000003; }
  return bad * 1000000 + (sum % 1000000);
}
|}

let compress =
  rng_preamble
  ^ {|
int input[4096];
int packed[8192];
int restored[4096];

int main(int n, int seed) {
  if (n < 16) { n = 16; }
  if (n > 4096) { n = 4096; }
  rng = seed % 65536 + 1;
  // Generate runs: small alphabet with run-biased distribution.
  int sym = 0;
  for (int i = 0; i < n; i++) {
    int roll = rand_below(100);
    if (roll < 70) {
      // extend the current run
    } else {
      sym = rand_below(16);
    }
    input[i] = sym;
  }
  // Run-length encode.
  int out = 0;
  int i = 0;
  while (i < n) {
    int v = input[i];
    int run = 1;
    while (i + run < n && input[i + run] == v && run < 255) {
      run++;
    }
    packed[out] = v;
    packed[out + 1] = run;
    out = out + 2;
    i = i + run;
  }
  // Decode.
  int pos = 0;
  for (int k = 0; k < out; k = k + 2) {
    int v = packed[k];
    int run = packed[k + 1];
    for (int r = 0; r < run; r++) {
      restored[pos] = v;
      pos++;
    }
  }
  // Verify.
  int bad = 0;
  if (pos != n) { bad = 1; }
  for (int k = 0; k < n; k++) {
    if (restored[k] != input[k]) { bad++; }
  }
  return bad * 100000 + out;
}
|}

let huffman =
  rng_preamble
  ^ {|
int text[4096];
int freq[64];
int weight[128];
int left[128];
int right[128];
int alive[128];
int depth[128];
int code_len[64];

int main(int n, int seed) {
  if (n < 32) { n = 32; }
  if (n > 4096) { n = 4096; }
  rng = seed % 65536 + 1;
  // Skewed symbol distribution over 32 symbols.
  for (int i = 0; i < n; i++) {
    int roll = rand_below(1000);
    int sym;
    if (roll < 500) { sym = rand_below(4); }
    else {
      if (roll < 800) { sym = 4 + rand_below(8); }
      else { sym = 12 + rand_below(20); }
    }
    text[i] = sym;
    freq[sym] = freq[sym] + 1;
  }
  // Leaves.
  int count = 0;
  for (int s = 0; s < 32; s++) {
    if (freq[s] > 0) {
      weight[count] = freq[s];
      left[count] = 0 - 1;
      right[count] = 0 - 1;
      alive[count] = 1;
      count++;
    }
  }
  if (count < 2) { return 1; }
  // Repeatedly join the two lightest alive nodes.
  int nodes = count;
  int remaining = count;
  while (remaining > 1) {
    int best1 = 0 - 1;
    int best2 = 0 - 1;
    for (int k = 0; k < nodes; k++) {
      if (alive[k] == 1) {
        if (best1 < 0 || weight[k] < weight[best1]) {
          best2 = best1;
          best1 = k;
        } else {
          if (best2 < 0 || weight[k] < weight[best2]) { best2 = k; }
        }
      }
    }
    alive[best1] = 0;
    alive[best2] = 0;
    weight[nodes] = weight[best1] + weight[best2];
    left[nodes] = best1;
    right[nodes] = best2;
    alive[nodes] = 1;
    nodes++;
    remaining = remaining - 1;
  }
  // Depths by top-down sweep (children appear before parents).
  depth[nodes - 1] = 0;
  for (int k = nodes - 1; k >= 0; k = k - 1) {
    if (left[k] >= 0) {
      depth[left[k]] = depth[k] + 1;
      depth[right[k]] = depth[k] + 1;
    }
  }
  // Weighted code length = sum freq * depth over leaves.
  int total = 0;
  int leaf = 0;
  for (int s = 0; s < 32; s++) {
    if (freq[s] > 0) {
      code_len[s] = depth[leaf];
      leaf++;
      total = total + (freq[s] * code_len[s]);
    }
  }
  return total % 1000000;
}
|}

let lexer =
  rng_preamble
  ^ {|
// Token stream state machine over a synthetic "source file":
// classes: 0=space 1=digit 2=alpha 3=punct 4=quote
int stream[8192];
int counts[8];

int main(int n, int seed) {
  if (n < 64) { n = 64; }
  if (n > 8192) { n = 8192; }
  rng = seed % 65536 + 1;
  for (int i = 0; i < n; i++) {
    int roll = rand_below(100);
    int c;
    if (roll < 30) { c = 0; }
    else {
      if (roll < 55) { c = 2; }
      else {
        if (roll < 75) { c = 1; }
        else {
          if (roll < 95) { c = 3; } else { c = 4; }
        }
      }
    }
    stream[i] = c;
  }
  // 0=start 1=in_number 2=in_ident 3=in_string
  int state = 0;
  int tokens = 0;
  int errors = 0;
  int i = 0;
  while (i < n) {
    int c = stream[i];
    if (state == 0) {
      if (c == 1) { state = 1; }
      else {
        if (c == 2) { state = 2; }
        else {
          if (c == 4) { state = 3; }
          else {
            if (c == 3) { tokens++; counts[3] = counts[3] + 1; }
          }
        }
      }
    } else {
      if (state == 1) {
        if (c == 1) {
          // still in number
        } else {
          if (c == 2) { errors++; state = 0; }
          else { tokens++; counts[1] = counts[1] + 1; state = 0; i = i - 1; }
        }
      } else {
        if (state == 2) {
          if (c == 1 || c == 2) {
            // still in identifier
          } else { tokens++; counts[2] = counts[2] + 1; state = 0; i = i - 1; }
        } else {
          // in string: ends at next quote
          if (c == 4) { tokens++; counts[4] = counts[4] + 1; state = 0; }
        }
      }
    }
    i++;
  }
  if (state != 0) { errors++; }
  return tokens * 100 + errors * 10 + (counts[2] % 10);
}
|}

let hashtab =
  rng_preamble
  ^ {|
int keys[8209];
int vals[8209];
int used[8209];

int lookup_slot(int key) {
  int h = (key * 2654435761) % 8209;
  if (h < 0) { h = h + 8209; }
  int probes = 0;
  while (probes < 8209) {
    if (used[h] == 0 || keys[h] == key) { return h; }
    h = h + 1;
    if (h == 8209) { h = 0; }
    probes++;
  }
  return 0 - 1;
}

int main(int n, int seed) {
  if (n < 16) { n = 16; }
  if (n > 6000) { n = 6000; }
  rng = seed % 65536 + 1;
  int inserted = 0;
  int updated = 0;
  for (int i = 0; i < n; i++) {
    int key = rand_below(n * 2) + 1;
    int slot = lookup_slot(key);
    if (slot < 0) { return 0 - 1; }
    if (used[slot] == 0) {
      used[slot] = 1;
      keys[slot] = key;
      vals[slot] = i;
      inserted++;
    } else {
      vals[slot] = vals[slot] + i;
      updated++;
    }
  }
  // Lookup phase: half hits, half misses on average.
  int hits = 0;
  int sum = 0;
  for (int i = 0; i < n; i++) {
    int key = rand_below(n * 4) + 1;
    int slot = lookup_slot(key);
    if (slot >= 0 && used[slot] == 1 && keys[slot] == key) {
      hits++;
      sum = (sum + vals[slot]) % 1000003;
    }
  }
  return inserted + updated * 7 + hits * 13 + sum % 97;
}
|}

let bfs =
  rng_preamble
  ^ {|
// Random digraph in compact adjacency arrays; BFS from node 0.
int head[2048];
int degree[2048];
int edges[16384];
int dist[2048];
int queue[2048];

int main(int n, int seed) {
  if (n < 8) { n = 8; }
  if (n > 2048) { n = 2048; }
  rng = seed % 65536 + 1;
  int avg_deg = 6;
  int e = 0;
  for (int v = 0; v < n; v++) {
    head[v] = e;
    int d = rand_below(avg_deg * 2) + 1;
    if (e + d > 16384) { d = 0; }
    degree[v] = d;
    for (int k = 0; k < d; k++) {
      edges[e] = rand_below(n);
      e++;
    }
  }
  for (int v = 0; v < n; v++) { dist[v] = 0 - 1; }
  int qh = 0;
  int qt = 0;
  dist[0] = 0;
  queue[0] = 0;
  qt = 1;
  int reached = 1;
  int total = 0;
  while (qh < qt) {
    int v = queue[qh];
    qh++;
    int base = head[v];
    int d = degree[v];
    for (int k = 0; k < d; k++) {
      int w = edges[base + k];
      if (dist[w] < 0) {
        dist[w] = dist[v] + 1;
        total = total + dist[w];
        reached++;
        if (qt < 2048) {
          queue[qt] = w;
          qt++;
        }
      }
    }
  }
  return reached * 1000 + (total % 1000);
}
|}

let kmp =
  rng_preamble
  ^ {|
int text[8192];
int pattern[32];
int fail[32];

int main(int n, int seed) {
  if (n < 64) { n = 64; }
  if (n > 8192) { n = 8192; }
  rng = seed % 65536 + 1;
  int alpha = 3;
  int m = 8 + rand_below(8);
  for (int i = 0; i < n; i++) { text[i] = rand_below(alpha); }
  for (int j = 0; j < m; j++) { pattern[j] = rand_below(alpha); }
  // Failure function.
  fail[0] = 0;
  int k = 0;
  for (int j = 1; j < m; j++) {
    while (k > 0 && pattern[j] != pattern[k]) { k = fail[k - 1]; }
    if (pattern[j] == pattern[k]) { k++; }
    fail[j] = k;
  }
  // Scan.
  int matches = 0;
  int q = 0;
  for (int i = 0; i < n; i++) {
    while (q > 0 && text[i] != pattern[q]) { q = fail[q - 1]; }
    if (text[i] == pattern[q]) { q++; }
    if (q == m) {
      matches++;
      q = fail[q - 1];
    }
  }
  // Cross-check with the naive scan.
  int naive = 0;
  for (int i = 0; i + m <= n; i++) {
    int ok = 1;
    for (int j = 0; j < m; j++) {
      if (text[i + j] != pattern[j]) { ok = 0; break; }
    }
    if (ok == 1) { naive++; }
  }
  if (naive != matches) { return 0 - 1; }
  return matches;
}
|}

let eqn =
  rng_preamble
  ^ {|
// eqntott-style: sort truth-table rows (bit vectors packed in ints),
// then count unique rows and cube merges.
int rows[4096];
int tmp[4096];

void merge_sort(int n) {
  int width = 1;
  while (width < n) {
    int i = 0;
    while (i < n) {
      int mid = i + width;
      int hi = i + width * 2;
      if (mid > n) { mid = n; }
      if (hi > n) { hi = n; }
      int a = i;
      int b = mid;
      int o = i;
      while (a < mid && b < hi) {
        if (rows[a] <= rows[b]) { tmp[o] = rows[a]; a++; }
        else { tmp[o] = rows[b]; b++; }
        o++;
      }
      while (a < mid) { tmp[o] = rows[a]; a++; o++; }
      while (b < hi) { tmp[o] = rows[b]; b++; o++; }
      for (int k = i; k < hi; k++) { rows[k] = tmp[k]; }
      i = i + width * 2;
    }
    width = width * 2;
  }
}

int main(int n, int seed) {
  if (n < 8) { n = 8; }
  if (n > 4096) { n = 4096; }
  rng = seed % 65536 + 1;
  // 12-bit rows with a few hot patterns (duplicates are common).
  for (int i = 0; i < n; i++) {
    int roll = rand_below(10);
    if (roll < 4) { rows[i] = rand_below(16) * 257 % 4096; }
    else { rows[i] = rand_below(4096); }
  }
  merge_sort(n);
  int unique = 1;
  int dup = 0;
  for (int i = 1; i < n; i++) {
    if (rows[i] == rows[i - 1]) { dup++; }
    else { unique++; }
  }
  // Adjacent-cube merge count: rows differing in exactly one bit.
  int merges = 0;
  for (int i = 1; i < n; i++) {
    int x = rows[i] ^ rows[i - 1];
    if (x != 0 && (x & (x - 1)) == 0) { merges++; }
  }
  return unique * 1000 + dup + merges * 7;
}
|}

let proto =
  rng_preamble
  ^ {|
// Packet protocol handler: lengths are clamped at the edge, then re-checked
// by defensive validation in helpers. The redundant checks are decidable
// from value ranges (symbolic narrowing of unknown inputs + interprocedural
// parameter ranges), which heuristics can only guess at.
int packet[512];

int validate(int len, int kind) {
  if (len < 4) { return 0; }
  if (len > 260) { return 0; }
  if (kind > 3) { return 0; }
  return 1;
}

int checksum(int base, int len) {
  int sum = 0;
  for (int i = 0; i < len; i++) {
    sum = (sum + packet[(base + i) % 512]) % 65536;
  }
  return sum;
}

int main(int n, int seed) {
  if (n < 16) { n = 16; }
  if (n > 4000) { n = 4000; }
  rng = seed % 65536 + 1;
  for (int i = 0; i < 512; i++) { packet[i] = rand_below(256); }
  int accepted = 0;
  int even_sums = 0;
  int total = 0;
  for (int p = 0; p < n; p++) {
    int len = rand_below(300);
    // Edge clamping: every packet is forced into the valid window.
    if (len < 4) { len = 4; }
    if (len > 260) { len = 260; }
    int kind = len & 3;
    if (validate(len, kind) == 1) {
      accepted++;
      int sum = checksum(p * 4, len);
      if (sum % 2 == 0) { even_sums++; }
      total = (total + sum) % 100000;
    }
  }
  return accepted * 1000 + even_sums % 1000 + total % 7;
}
|}

let sieve =
  rng_preamble
  ^ {|
// Sieve of Eratosthenes over a fixed window plus trial-division spot checks:
// constant-bound loops for the sieve, data-dependent branching in the checks.
int composite[8192];

int main(int n, int s) {
  if (n < 16) { n = 16; }
  if (n > 4000) { n = 4000; }
  rng = s % 65536 + 1;
  for (int i = 0; i < 8192; i++) { composite[i] = 0; }
  int primes = 0;
  for (int p = 2; p < 8192; p++) {
    if (composite[p] == 0) {
      primes++;
      for (int q = p + p; q < 8192; q = q + p) {
        composite[q] = 1;
      }
    }
  }
  // Spot-check random numbers by trial division and cross-validate.
  int mismatches = 0;
  int found = 0;
  for (int t = 0; t < n; t++) {
    int v = 2 + rand_below(8190);
    int divisor = 0;
    for (int d = 2; d * d <= v; d++) {
      if (v % d == 0) { divisor = d; break; }
    }
    int is_prime = 0;
    if (divisor == 0) { is_prime = 1; }
    if (is_prime == 1) { found++; }
    if (is_prime == composite[v]) { mismatches++; }
  }
  return primes * 1000 + found - mismatches;
}
|}

let calc =
  rng_preamble
  ^ {|
// Recursive-descent evaluator over generated token streams (li/gcc-style):
// tokens: 0=number 1=plus 2=times 3=lparen 4=rparen 5=end
int toks[512];
int vals[512];
int pos;

// (MiniC resolves calls program-wide, so mutual recursion needs no
// forward declarations.)
int parse_atom() {
  int t = toks[pos];
  if (t == 0) {
    int v = vals[pos];
    pos++;
    return v;
  }
  if (t == 3) {
    pos++;
    int v = parse_expr();
    if (toks[pos] == 4) { pos++; }
    return v;
  }
  pos++;
  return 1;
}

int parse_term() {
  int acc = parse_atom();
  while (toks[pos] == 2) {
    pos++;
    acc = (acc * parse_atom()) % 65536;
  }
  return acc;
}

int parse_expr() {
  int acc = parse_term();
  while (toks[pos] == 1) {
    pos++;
    acc = (acc + parse_term()) % 65536;
  }
  return acc;
}

int main(int n, int s) {
  if (n < 8) { n = 8; }
  if (n > 3000) { n = 3000; }
  rng = s % 65536 + 1;
  int total = 0;
  for (int round = 0; round < n; round++) {
    // Generate a small well-formed expression: num (op num)*, with
    // occasional parenthesised sub-expressions.
    int len = 0;
    int depth = 0;
    int want_operand = 1;
    while (len < 500) {
      if (want_operand == 1) {
        int roll = rand_below(10);
        if (roll < 2 && depth < 4) {
          toks[len] = 3;
          depth++;
          len++;
        } else {
          toks[len] = 0;
          vals[len] = rand_below(100);
          len++;
          want_operand = 0;
        }
      } else {
        int roll = rand_below(10);
        if (roll < 3 && depth > 0) {
          toks[len] = 4;
          depth = depth - 1;
          len++;
        } else {
          if (roll < 7) {
            if (rand_below(2) == 0) { toks[len] = 1; } else { toks[len] = 2; }
            len++;
            want_operand = 1;
          } else {
            break;
          }
        }
      }
    }
    while (depth > 0) {
      toks[len] = 4;
      depth = depth - 1;
      len++;
    }
    toks[len] = 5;
    pos = 0;
    total = (total + parse_expr()) % 100000;
  }
  return total;
}
|}

(* Affine index traffic (symbolic algebra v2 showcase): every guard
   recomputes the tested expression at its use site — [2*i + 1], [2*i],
   [n - 1 - i] — so the guard condition and the access index lower to
   distinct SSA temps. v1 symbolic bounds ([var + const]) cannot connect
   them; the sum-of-products prover discharges the bounds checks and the
   nested guard chain in [fold] becomes a proven one-way branch. *)
let affine =
  rng_preamble
  ^ {|
int data[4096];
int aux[4096];

void reverse_fill(int n) {
  // Deliberately overshoots by 3: the guard, not the loop bound, keeps
  // the store in range, and only algebra proves n-1-i >= 0 from i < n.
  for (int i = 0; i < n + 3; i++) {
    if (n - 1 - i >= 0) {
      data[n - 1 - i] = rand_below(100000);
    }
  }
}

void deinterleave(int n) {
  for (int i = 0; i < n; i++) {
    if (2 * i + 1 < n) {
      aux[2 * i + 1] = data[i];
    }
    if (2 * i < n) {
      aux[2 * i] = data[n - 1 - i];
    }
  }
}

int fold(int n) {
  int acc = 0;
  for (int x = 0; x < n; x++) {
    if (2 * x + 1 < n) {
      if (2 * x < n) {
        acc = (acc + aux[2 * x] + aux[2 * x + 1]) % 100000;
      }
    }
  }
  return acc;
}

int main(int n, int seed) {
  if (n < 8) { n = 8; }
  if (n > 4096) { n = 4096; }
  rng = seed % 65536 + 1;
  reverse_fill(n);
  deinterleave(n);
  return fold(n);
}
|}

let all : (string * string) list =
  [
    ("qsort", qsort);
    ("compress", compress);
    ("huffman", huffman);
    ("lexer", lexer);
    ("hashtab", hashtab);
    ("bfs", bfs);
    ("kmp", kmp);
    ("eqn", eqn);
    ("proto", proto);
    ("sieve", sieve);
    ("calc", calc);
    ("affine", affine);
  ]
