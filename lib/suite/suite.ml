(** The benchmark registry: programs, their suite, and their train/reference
    inputs.

    Mirrors the paper's experimental setup (§5): predictions are evaluated
    against the behaviour observed on the {e reference} input, while the
    profiling predictor is trained on the {e train} input — deliberately a
    different, smaller input ("the SPEC feedback collection inputs
    (input.short) are much shorter than the reference inputs (input.ref)"). *)

type category = Int_suite | Fp_suite

type benchmark = {
  name : string;
  category : category;
  source : string;
  train_args : int list;  (** (n, seed) for the profiling run *)
  ref_args : int list;  (** (n, seed) for the observed behaviour *)
}

let category_to_string = function Int_suite -> "int" | Fp_suite -> "fp"

let mk name category source ~train ~ref_ = { name; category; source; train_args = train; ref_args = ref_ }

let benchmarks : benchmark list =
  [
    (* Integer suite: train inputs are much smaller than reference inputs
       and use different seeds. *)
    mk "qsort" Int_suite Progs_int.qsort ~train:[ 300; 11 ] ~ref_:[ 4000; 77 ];
    mk "compress" Int_suite Progs_int.compress ~train:[ 400; 3 ] ~ref_:[ 4000; 59 ];
    mk "huffman" Int_suite Progs_int.huffman ~train:[ 400; 23 ] ~ref_:[ 4000; 5 ];
    mk "lexer" Int_suite Progs_int.lexer ~train:[ 600; 7 ] ~ref_:[ 8000; 91 ];
    mk "hashtab" Int_suite Progs_int.hashtab ~train:[ 500; 19 ] ~ref_:[ 5000; 31 ];
    mk "bfs" Int_suite Progs_int.bfs ~train:[ 200; 13 ] ~ref_:[ 2000; 43 ];
    mk "kmp" Int_suite Progs_int.kmp ~train:[ 800; 29 ] ~ref_:[ 8000; 17 ];
    mk "eqn" Int_suite Progs_int.eqn ~train:[ 300; 37 ] ~ref_:[ 4000; 3 ];
    mk "proto" Int_suite Progs_int.proto ~train:[ 250; 47 ] ~ref_:[ 3500; 9 ];
    mk "sieve" Int_suite Progs_int.sieve ~train:[ 60; 7 ] ~ref_:[ 900; 33 ];
    mk "calc" Int_suite Progs_int.calc ~train:[ 60; 21 ] ~ref_:[ 800; 55 ];
    mk "affine" Int_suite Progs_int.affine ~train:[ 300; 9 ] ~ref_:[ 4000; 27 ];
    (* Numeric suite. *)
    mk "matmul" Fp_suite Progs_fp.matmul ~train:[ 2; 41 ] ~ref_:[ 6; 7 ];
    mk "jacobi" Fp_suite Progs_fp.jacobi ~train:[ 10; 5 ] ~ref_:[ 60; 61 ];
    mk "nbody" Fp_suite Progs_fp.nbody ~train:[ 3; 53 ] ~ref_:[ 12; 13 ];
    mk "fir" Fp_suite Progs_fp.fir ~train:[ 500; 3 ] ~ref_:[ 8000; 97 ];
    mk "gauss" Fp_suite Progs_fp.gauss ~train:[ 2; 67 ] ~ref_:[ 12; 29 ];
    mk "rk4" Fp_suite Progs_fp.rk4 ~train:[ 200; 71 ] ~ref_:[ 4000; 19 ];
    mk "dft" Fp_suite Progs_fp.dft ~train:[ 2; 83 ] ~ref_:[ 10; 11 ];
    mk "cholesky" Fp_suite Progs_fp.cholesky ~train:[ 8; 89 ] ~ref_:[ 30; 23 ];
    mk "conv2d" Fp_suite Progs_fp.conv2d ~train:[ 1; 31 ] ~ref_:[ 6; 3 ];
    mk "simpson" Fp_suite Progs_fp.simpson ~train:[ 20; 17 ] ~ref_:[ 400; 73 ];
  ]

let find name = List.find_opt (fun b -> String.equal b.name name) benchmarks

let by_category cat = List.filter (fun b -> b.category = cat) benchmarks
