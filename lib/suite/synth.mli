(** Synthetic MiniC program generator for the complexity study (Figures
    5/6): structured programs of parametric size with the same ingredient
    mix as the hand-written suite. Deterministic in [(units, seed)]. *)

(** Relative weights of the statement shapes a generated unit can take.
    The same table parameterises [Fuzz.Gen]'s statement mix so the two
    generators cannot drift: a profile tuned for the fuzzer (loops-heavy,
    call-heavy, ...) means the same thing here. Weights are non-negative
    integers; a zero weight disables the shape. *)
type weights = {
  counted_loops : int;  (** counted loop with interior comparisons *)
  nested_arrays : int;  (** nested loops with array traffic *)
  data_loops : int;  (** data-dependent while loops *)
  branchy : int;  (** chained conditionals *)
  calls : int;  (** extra calls into earlier units *)
  affine : int;
      (** affine index patterns ([a\[2*i+1\]], [a\[n-1-i\]]) behind guards
          that recompute the tested expression — discharged only by the
          sum-of-products algebra ({!Vrp_ranges.Sop}) *)
}

val default_weights : weights
(** The historical fixed mix: the four original shapes equally weighted,
    no extra call or affine shape. [generate] with [default_weights]
    reproduces the pre-[?weights] output byte for byte. *)

val generate : ?weights:weights -> units:int -> seed:int -> unit -> string
