(** Synthetic MiniC program generator for the complexity study.

    Figures 5 and 6 of the paper plot expression evaluations and evaluation
    sub-operations against program size over "a collection of 50 programs".
    To sweep sizes up to ~10⁵ instructions we generate structured programs
    of parametric size: a chain of functions, each containing counted loops,
    data-dependent conditionals, array traffic and calls — the same
    ingredient mix as the hand-written suite, scaled by [units]. The
    generator is deterministic in [(units, seed)]. *)

type weights = {
  counted_loops : int;
  nested_arrays : int;
  data_loops : int;
  branchy : int;
  calls : int;
  affine : int;
}

let default_weights =
  {
    counted_loops = 1;
    nested_arrays = 1;
    data_loops = 1;
    branchy = 1;
    calls = 0;
    affine = 0;
  }

(* Weighted shape choice. With [default_weights] the total is 4 and the
   cumulative mapping is the identity, so the RNG stream (one [Prng.int]
   draw of bound 4) and therefore the emitted program are unchanged from
   the historical hard-coded mix. The [affine] shape is appended last for
   the same reason: a zero weight leaves the stream untouched. *)
let pick_shape rng w =
  let table =
    [|
      w.counted_loops; w.nested_arrays; w.data_loops; w.branchy; w.calls;
      w.affine;
    |]
  in
  let total = Array.fold_left ( + ) 0 table in
  if total <= 0 then 0
  else begin
    let r = Vrp_util.Prng.int rng total in
    let shape = ref 0 and acc = ref 0 in
    (try
       Array.iteri
         (fun i wi ->
           acc := !acc + wi;
           if r < !acc then begin
             shape := i;
             raise Exit
           end)
         table
     with Exit -> ());
    !shape
  end

let generate ?(weights = default_weights) ~(units : int) ~(seed : int) () :
    string =
  let rng = Vrp_util.Prng.create (seed + 0x51e5) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf Progs_int.rng_preamble;
  Buffer.add_string buf "int data[1024];\nint aux[1024];\n";
  let nfuncs = max 1 units in
  for f = 0 to nfuncs - 1 do
    let bound = 8 + Vrp_util.Prng.int rng 56 in
    let stride = 1 + Vrp_util.Prng.int rng 3 in
    let threshold = Vrp_util.Prng.int rng bound in
    let shape = pick_shape rng weights in
    Buffer.add_string buf (Printf.sprintf "int unit%d(int a, int b) {\n" f);
    Buffer.add_string buf "  int acc = 0;\n";
    (match shape with
    | 0 ->
      (* counted loop with an interior comparison on the counter *)
      Buffer.add_string buf
        (Printf.sprintf
           "  for (int i = 0; i < %d; i = i + %d) {\n\
           \    if (i > %d) { acc = acc + i; } else { acc = acc + 1; }\n\
           \  }\n"
           bound stride threshold)
    | 1 ->
      (* nested counted loops with array traffic *)
      Buffer.add_string buf
        (Printf.sprintf
           "  for (int i = 0; i < %d; i++) {\n\
           \    for (int j = 0; j < 8; j++) {\n\
           \      data[(i * 8 + j) %% 1024] = acc %% 256;\n\
           \      acc = acc + data[(i + j) %% 1024];\n\
           \    }\n\
           \  }\n"
           (max 4 (bound / 4)))
    | 2 ->
      (* data-dependent while loop *)
      Buffer.add_string buf
        (Printf.sprintf
           "  int x = a %% 4096;\n\
           \  if (x < 0) { x = 0 - x; }\n\
           \  while (x > 1) {\n\
           \    if (x %% 2 == 0) { x = x / 2; } else { x = x - 1; }\n\
           \    acc++;\n\
           \  }\n\
           \  acc = acc + b %% %d;\n"
           (threshold + 2))
    | 3 ->
      (* chained conditionals on the parameters *)
      Buffer.add_string buf
        (Printf.sprintf
           "  int t = a + b;\n\
           \  if (t > %d) { acc = acc + 3; }\n\
           \  if (t %% 3 == 0) { acc = acc * 2; } else { acc = acc + b; }\n\
           \  for (int i = 0; i < %d; i++) { acc = acc + aux[i %% 1024]; }\n"
           threshold bound)
    | 4 ->
      (* call-heavy: branch on the parameters, then lean on earlier units *)
      Buffer.add_string buf
        (Printf.sprintf
           "  int u = a %% 17;\n\
           \  int v = b %% 13;\n\
           \  if (u > v) { acc = u - v; } else { acc = v + 1; }\n");
      if f > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "  acc = acc + unit%d(u, v);\n\
             \  acc = acc + unit%d(v, acc %% %d);\n"
             (f - 1) (f - 1) (threshold + 3))
    | _ ->
      (* affine index traffic: the guarded [2*i+1] access recomputes the
         tested expression at the use site, so only the sum-of-products
         algebra connects guard and index *)
      Buffer.add_string buf
        (Printf.sprintf
           "  for (int i = 0; i < %d; i++) {\n\
           \    if (2 * i + 1 < 1024) { data[2 * i + 1] = acc %% 256; }\n\
           \    acc = acc + aux[1023 - i];\n\
           \  }\n"
           (512 + bound)));
    if f > 0 then
      Buffer.add_string buf
        (Printf.sprintf "  acc = acc + unit%d(acc, a %% 97);\n" (f - 1));
    Buffer.add_string buf "  return acc;\n}\n\n"
  done;
  Buffer.add_string buf
    (Printf.sprintf
       "int main(int n, int seed) {\n\
       \  rng = seed %% 65536 + 1;\n\
       \  int total = 0;\n\
       \  for (int r = 0; r < 4; r++) {\n\
       \    total = total + unit%d(rand_below(1000), r);\n\
       \  }\n\
       \  return total %% 1000000;\n\
        }\n"
       (nfuncs - 1));
  Buffer.contents buf
