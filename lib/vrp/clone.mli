(** Procedure cloning for calling-context-sensitive prediction (paper §3.7):
    callees whose call sites supply materially different argument ranges are
    duplicated per context and the call sites retargeted. *)

module Ir = Vrp_ir.Ir
module Diag = Vrp_diag.Diag

type t = {
  program : Ir.program;  (** the cloned program *)
  origin_of : (string, string) Hashtbl.t;  (** clone name -> original name *)
  clones_made : int;
}

val default_max_clones_per_fn : int

(** Decide and apply cloning, driven by a prior interprocedural analysis.
    Demoted (crashed) functions are left alone; [report] records each clone
    decision. *)
val run :
  ?max_clones_per_fn:int -> ?report:Diag.report -> Ir.program -> Interproc.t -> t
