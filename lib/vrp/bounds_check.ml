(** Array-bounds-check elimination (paper §6).

    "For languages which require (or compilers which implement) dynamic
    array bounds checking, many array bounds checks can be shown to be
    redundant by value range propagation."

    MiniC semantics require a bounds check on every [Load]/[Store]; this
    pass proves checks redundant when the index variable's range (with
    symbolic bases resolved) lies within [0, size). *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Value = Vrp_ranges.Value
module Srange = Vrp_ranges.Srange
module Sym = Vrp_ranges.Sym

type check = {
  block : int;
  instr_index : int;
      (** position of the access in [block]'s instruction list; with
          [block] it identifies the access site exactly (an instruction
          holds at most one access), which is how the fuzzing oracle maps
          runtime accesses back to checks *)
  array : string;
  index : Ir.operand;
  is_store : bool;
  provably_safe : bool;
  lower_safe : bool;  (** index ≥ 0 proven *)
  upper_safe : bool;  (** index < size proven *)
}

type report = { checks : check list; total : int; eliminated : int }

(* Certainly-in-[lo_bound, hi_bound]? Needs every range's numeric bounds. *)
let within (v : Value.t) ~(size : int) : bool * bool =
  match v with
  | Value.Top | Value.Bottom -> (false, false)
  | Value.Ranges rs ->
    let lower =
      List.for_all
        (fun (r : Srange.t) ->
          match r.Srange.lo.Sym.base with None -> r.Srange.lo.Sym.off >= 0 | Some _ -> false)
        rs
    in
    let upper =
      List.for_all
        (fun (r : Srange.t) ->
          match r.Srange.hi.Sym.base with
          | None -> r.Srange.hi.Sym.off < size
          | Some _ -> false)
        rs
    in
    (lower, upper)

(** Analyse every array access of [res]'s function against the array tables
    of [program]. With [algebra] (default), accesses the numeric ranges
    cannot prove safe get a second chance against the symbolic-algebra-v2
    prover: assertion facts, SSA-def equations, and the converged ranges
    together discharge affine index patterns ([a\[2*i+1\]], [a\[n-i-1\]])
    whose values widen to ⊥ under [var + const] bounds alone. *)
let analyze ?(algebra = true) (program : Ir.program) (res : Engine.t) : report =
  let fn = res.Engine.fn in
  let lookup (v : Var.t) = res.Engine.values.(v.Var.id) in
  let index_value (op : Ir.operand) : Value.t =
    match op with
    | Ir.Cint n -> Value.const_int n
    | Ir.Cfloat _ -> Value.bottom
    | Ir.Ovar v -> Value.subst (lookup v) ~lookup
  in
  (* The algebraic context is only sound on converged results: partial
     (fuel-exhausted / timed-out) ranges are transient claims. Built lazily:
     most functions prove all their checks numerically. *)
  let converged = not (res.Engine.fuel_exhausted || res.Engine.timed_out) in
  let alg = ref None in
  let alg_ctx () =
    match !alg with
    | Some ctx -> ctx
    | None ->
      let ctx = Alg.make fn in
      Alg.add_range_facts ctx ~values:res.Engine.values;
      alg := Some ctx;
      ctx
  in
  let checks = ref [] in
  Ir.iter_blocks fn (fun b ->
      if res.Engine.visited.(b.Ir.bid) then
        List.iteri
          (fun i instr ->
            let record array index is_store =
              match Ir.find_array program fn array with
              | None -> ()
              | Some info ->
                let lower_safe, upper_safe =
                  within (index_value index) ~size:info.Ir.size
                in
                let lower_safe, upper_safe =
                  if (lower_safe && upper_safe) || not (algebra && converged)
                  then (lower_safe, upper_safe)
                  else begin
                    let alower, aupper =
                      Alg.prove_index_bounds (alg_ctx ()) ~bid:b.Ir.bid
                        ~size:info.Ir.size index
                    in
                    (lower_safe || alower, upper_safe || aupper)
                  end
                in
                checks :=
                  {
                    block = b.Ir.bid;
                    instr_index = i;
                    array;
                    index;
                    is_store;
                    provably_safe = lower_safe && upper_safe;
                    lower_safe;
                    upper_safe;
                  }
                  :: !checks
            in
            match instr with
            | Ir.Def (_, Ir.Load (array, index)) -> record array index false
            | Ir.Store (array, index, _) -> record array index true
            | Ir.Def _ -> ())
          b.Ir.instrs);
  let checks = List.rev !checks in
  let eliminated = List.length (List.filter (fun c -> c.provably_safe) checks) in
  { checks; total = List.length checks; eliminated }
