(** Array-bounds-check elimination (paper §6): a check is redundant when the
    index's range (with symbolic bases hull-resolved) provably lies within
    [0, size). *)

module Ir = Vrp_ir.Ir

type check = {
  block : int;
  instr_index : int;
      (** position of the access in [block]'s instruction list — with
          [block], an exact access-site identity *)
  array : string;
  index : Ir.operand;
  is_store : bool;
  provably_safe : bool;
  lower_safe : bool;  (** index ≥ 0 proven *)
  upper_safe : bool;  (** index < size proven *)
}

type report = { checks : check list; total : int; eliminated : int }

(** Analyse every array access of the function analysed in [Engine.t]
    against the array tables of the program. [algebra] (default [true])
    additionally runs the symbolic-algebra-v2 prover ({!Alg}) on accesses
    the numeric ranges cannot discharge — pass [false] to measure the v1
    baseline. Algebraic proofs are only attempted on converged results. *)
val analyze : ?algebra:bool -> Ir.program -> Engine.t -> report
