(** Per-function algebraic context: the bridge between the SSA IR and the
    {!Vrp_ranges.Alg_env} fact environment (symbolic algebra v2).

    [make] walks a function once and collects
    - {e equations}: for every integer SSA definition built from affine
      material (copies, add/sub, mul/shl by constants, negation, assertion
      identities), a memoized expansion of the variable into a {!Vrp_ranges.Sop}
      polynomial over "atom" variables (φ-nodes, parameters, loads, calls);
    - {e assertion facts}: every e-SSA [Assertion {parent; arel; abound}]
      contributes [parent arel abound] over expanded operands, scoped to the
      assertion's block — the fact only holds where that block dominates.

    The context then answers relational queries three ways:
    - [decide_branch] decides a branch's relation at a given block —
      used by the engine's post-fixpoint pass to upgrade fallback branches
      to proved one-way predictions.
    - [prove_index_bounds] proves [0 <= index < size] for an array access —
      used by [Bounds_check] to eliminate checks whose index algebra
      ([a\[2*i+1\]], [a\[n-i-1\]]) is invisible to v1 [var + const] bounds.
    - [with_oracle] installs a {!Vrp_ranges.Sym.oracle} so that [Value] /
      [Srange] comparisons ([Sym.le]/[lt]/[ge]/[gt]) consult the facts when
      plain offset comparison gives up. The engine's fixpoint deliberately
      does {e not} install it: decided comparisons mid-run keep more
      endpoints symbolic, which perturbs the iteration trajectory, trips
      the widening caps more often, and measurably {e loses} precision
      (DESIGN.md §15). It remains available to post-fixpoint consumers.

    [add_range_facts] harvests the engine's {e post-fixpoint} value ranges
    (numeric or single-base symbolic bounds per variable) into additional
    facts for the two provers above. It must only be called on converged
    results — mid-propagation ranges are transient and unsound to cite. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value

type t

val make : Ir.fn -> t

val set_scope : t -> int -> unit
(** Tell the ambient oracle which block the engine is currently evaluating;
    facts are admitted iff their home block dominates it. *)

val with_oracle : t -> (unit -> 'a) -> 'a
(** Run [f] with the context installed as the ambient [Sym] relation
    oracle; always restores the previous oracle. *)

val add_range_facts : t -> values:Value.t array -> unit
(** Fold converged per-variable ranges into the fact set and re-refine. *)

val decide_branch :
  t -> bid:int -> Vrp_lang.Ast.relop -> Ir.operand -> Ir.operand -> bool option

val prove_index_bounds : t -> bid:int -> size:int -> Ir.operand -> bool * bool
(** [(lower_proved, upper_proved)] for [0 <= index] and [index <= size-1]. *)

val fact_count : t -> int
(** Direct facts currently held (diagnostics and tests). *)

val to_string : t -> string
(** Render the fact environment (diagnostics and tests). *)
