(** Interprocedural value range propagation (paper §3.7): a round-based
    whole-program driver where jump functions are the argument ranges
    observed at executable call sites and return-jump functions flow callee
    return ranges back. Within a round, functions are analysed in waves —
    the dynamic topological order of the executable call graph's SCC
    condensation — and every wave's tasks are independent, which is the
    scheduling seam the [Vrp_sched] domain pool plugs into. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value
module Diag = Vrp_diag.Diag

type t = {
  results : (string, Engine.t) Hashtbl.t;  (** per reachable function *)
  failed : (string, string) Hashtbl.t;
      (** functions whose analysis raised, with the reason: demoted to the
          heuristic predictor by the pipeline *)
  param_env : (string, Value.t list) Hashtbl.t;
  return_env : (string, Value.t) Hashtbl.t;
  rounds : int;  (** rounds actually executed *)
  converged : bool;
      (** environments stabilised before the round cap; when false the
          final environments are one step ahead of [results] and
          membership claims must not be trusted end-to-end *)
}

val result : t -> string -> Engine.t option

(** Why a function was demoted, if its analysis crashed. *)
val failure : t -> string -> string option

val default_max_rounds : int

(** Per-function analysis outcome inside one wave. *)
type outcome = Analyzed of Engine.t | Crashed of string | Skipped

(** One schedulable unit: the functions of one call-graph SCC discovered in
    the same wave. [run] reads only the previous round's environments, so
    the tasks of one wave may execute concurrently. *)
type task = {
  group : string list;
  run : unit -> (string * outcome * Diag.report) list;
}

(** The scheduler seam: execute a wave of independent tasks, returning
    results in task order. The default is sequential in-domain execution —
    the exact legacy behaviour. *)
type runner = task array -> (string * outcome * Diag.report) list array

val sequential_runner : runner

(** The per-function analysis seam; [Vrp_cache] interposes a memoizing
    wrapper here. The default is {!Engine.analyze}. *)
type analyze_fn =
  config:Engine.config ->
  report:Diag.report option ->
  call_oracle:(string -> Value.t list -> Value.t) ->
  param_values:Value.t list ->
  Ir.fn ->
  Engine.t

val default_analyze_fn : analyze_fn

(** Whole-program analysis entered at [main], with per-function fault
    containment: a function whose analysis raises is recorded in [failed]
    (and in [report] as [Analysis_crashed]) instead of aborting the run —
    also under a parallel [run_tasks], where a crash inside a pooled task
    demotes only that function. [groups] is an SCC partition of the call
    graph used to co-locate mutually recursive functions in one task;
    ungrouped functions are singletons. Results and diagnostics are merged
    in deterministic task order: for a fixed [groups] plan the output is
    byte-identical whatever [run_tasks] parallelism executes the waves.
    @raise Invalid_argument if the program has no [main]. *)
val analyze :
  ?config:Engine.config ->
  ?report:Diag.report ->
  ?max_rounds:int ->
  ?groups:string list list ->
  ?run_tasks:runner ->
  ?analyze_fn:analyze_fn ->
  Ir.program ->
  t
