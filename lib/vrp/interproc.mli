(** Interprocedural value range propagation (paper §3.7): a round-based
    whole-program driver where jump functions are the argument ranges
    observed at executable call sites and return-jump functions flow callee
    return ranges back. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value
module Diag = Vrp_diag.Diag

type t = {
  results : (string, Engine.t) Hashtbl.t;  (** per reachable function *)
  failed : (string, string) Hashtbl.t;
      (** functions whose analysis raised, with the reason: demoted to the
          heuristic predictor by the pipeline *)
  param_env : (string, Value.t list) Hashtbl.t;
  return_env : (string, Value.t) Hashtbl.t;
  rounds : int;  (** rounds actually executed *)
}

val result : t -> string -> Engine.t option

(** Why a function was demoted, if its analysis crashed. *)
val failure : t -> string -> string option

val default_max_rounds : int

(** Whole-program analysis entered at [main], with per-function fault
    containment: a function whose analysis raises is recorded in [failed]
    (and in [report] as [Analysis_crashed]) instead of aborting the run.
    @raise Invalid_argument if the program has no [main]. *)
val analyze :
  ?config:Engine.config -> ?report:Diag.report -> ?max_rounds:int -> Ir.program -> t
