(** Interprocedural value range propagation (paper §3.7).

    "Interprocedural constant propagation is usually described in terms of a
    set of jump functions associated with each call site ... In our case,
    the jump functions map directly to the range representations for the
    parameters in the call, and the propagation algorithm remains the same.
    In essence, the entire program is treated almost as if it were one huge
    control flow graph."

    Implementation: a round-based whole-program driver. Each round analyses
    every reachable function with (a) parameter ranges = the weighted merge
    of the argument ranges observed at its executable call sites in the
    previous round (the jump functions), and (b) a call oracle that returns
    each callee's merged return range (the return-jump functions, footnote
    3). [main]'s parameters are program input, hence ⊥. Rounds repeat until
    the parameter/return environments stabilise or [max_rounds] is hit —
    recursion makes the environments oscillate at most down to ⊥.

    Scheduling: within a round, functions are analysed in {e waves} — the
    levels of a breadth-first sweep of the executable call graph from
    [main], i.e. the dynamic topological order of the call-graph SCC
    condensation restricted to code the analysis can reach. Every function
    in a wave reads only the {e previous} round's environments, so the
    functions of one wave are independent: the [run_tasks] seam lets
    [Vrp_sched] execute them on a domain pool, and the [groups] plan
    co-locates the members of one SCC in a single task. Results, recorded
    call sites and diagnostics are merged in deterministic task order, so a
    parallel run is byte-identical to the sequential default. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value
module Diag = Vrp_diag.Diag

type t = {
  results : (string, Engine.t) Hashtbl.t;  (** per reachable function *)
  failed : (string, string) Hashtbl.t;
      (** functions whose analysis raised, with the reason: demoted to the
          heuristic predictor by the pipeline, never re-analysed this run *)
  param_env : (string, Value.t list) Hashtbl.t;
  return_env : (string, Value.t) Hashtbl.t;
  rounds : int;  (** rounds actually executed *)
  converged : bool;
      (** the environments stabilised before [max_rounds]; when false, the
          final environments are one step ahead of the ones [results] were
          computed against, and membership claims must not be trusted
          end-to-end (the fuzzing oracles skip such programs) *)
}

(** Per-function analysis outcome inside one wave. [Skipped] marks a
    function that was scheduled but not analysable (no parameter
    environment, or demoted in an earlier round). *)
type outcome = Analyzed of Engine.t | Crashed of string | Skipped

(** One schedulable unit: the functions of one call-graph SCC discovered in
    the same wave. [run] is pure with respect to shared driver state — it
    reads the previous round's environments only — so tasks of one wave may
    execute concurrently. Each function comes back with a private
    diagnostics report, merged by the driver in task order. *)
type task = {
  group : string list;
  run : unit -> (string * outcome * Diag.report) list;
}

(** The scheduler seam: execute a wave of independent tasks and return
    their results {e in task order}. The default runs them sequentially in
    the calling domain, which is the exact legacy behaviour. *)
type runner = task array -> (string * outcome * Diag.report) list array

(** The per-function analysis seam: [Vrp_cache] interposes a memoizing
    wrapper here. The default is {!Engine.analyze}. *)
type analyze_fn =
  config:Engine.config ->
  report:Diag.report option ->
  call_oracle:(string -> Value.t list -> Value.t) ->
  param_values:Value.t list ->
  Ir.fn ->
  Engine.t

let result t fname = Hashtbl.find_opt t.results fname

let failure t fname = Hashtbl.find_opt t.failed fname

let default_max_rounds = 5

let sequential_runner : runner = Array.map (fun task -> task.run ())

(* Scheduler-level observability: rounds/waves/tasks counted in the metrics
   registry, per-task durations in a histogram. Ticked by the driver (not
   the runner) so sequential and pooled execution report identically. *)
let rounds_total =
  Vrp_obs.Metrics.counter ~help:"Interprocedural propagation rounds"
    "vrp_interproc_rounds_total"

let waves_total =
  Vrp_obs.Metrics.counter ~help:"Scheduler waves of independent tasks"
    "vrp_sched_waves_total"

let tasks_total =
  Vrp_obs.Metrics.counter ~help:"Scheduler tasks executed"
    "vrp_sched_tasks_total"

let task_seconds =
  Vrp_obs.Metrics.histogram ~help:"Scheduler task duration in seconds"
    "vrp_sched_task_seconds"

let default_analyze_fn : analyze_fn =
 fun ~config ~report ~call_oracle ~param_values fn ->
  Engine.analyze ~config ?report ~call_oracle ~param_values fn

let env_equal (a : (string, Value.t list) Hashtbl.t) (b : (string, Value.t list) Hashtbl.t) =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun name vs acc ->
         acc
         &&
         match Hashtbl.find_opt b name with
         | Some vs' -> List.length vs = List.length vs' && List.for_all2 Value.equal vs vs'
         | None -> false)
       a true

(* Sorted key list of a string-keyed table: environment rebuilds iterate in
   canonical order so runs are reproducible whatever the hash layout. *)
let sorted_keys tbl =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

(** Whole-program analysis, entered at [main]. Per-function fault
    containment: a function whose analysis raises (divergence guard,
    injected fault, internal bug) is recorded in [failed] with an
    [Analysis_crashed] diagnostic and excluded from the environments — the
    rest of the program is still analysed, and the pipeline demotes just
    that function to the heuristic predictor. Containment composes with the
    scheduler: a crash inside a pooled task demotes only that function. *)
let analyze ?(config = Engine.default_config) ?report
    ?(max_rounds = default_max_rounds) ?(groups : string list list = [])
    ?(run_tasks = sequential_runner) ?(analyze_fn = default_analyze_fn)
    (program : Ir.program) : t =
  let param_env : (string, Value.t list) Hashtbl.t = Hashtbl.create 16 in
  let return_env : (string, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let failed : (string, string) Hashtbl.t = Hashtbl.create 4 in
  (match Ir.find_fn program "main" with
  | Some main ->
    Hashtbl.replace param_env "main" (List.map (fun _ -> Value.bottom) main.Ir.params)
  | None -> invalid_arg "Interproc.analyze: program has no main");
  (* Grouping plan: function name -> (group id, members in analysis order).
     Ungrouped functions are singleton groups. *)
  let group_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun gid members -> List.iter (fun name -> Hashtbl.replace group_of name gid) members)
    groups;
  let gid_of name =
    match Hashtbl.find_opt group_of name with
    | Some gid -> gid
    | None -> (* singleton: a unique synthetic id per name *) -1 - Hashtbl.hash name
  in
  let results = ref (Hashtbl.create 16) in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < max_rounds do
    incr rounds;
    Vrp_obs.Metrics.inc rounds_total;
    let round_results = Hashtbl.create 16 in
    (* Executable (callee, args) records of this round, in deterministic
       discovery order — the jump functions for the next round. *)
    let recorded : (string * Value.t list) list ref = ref [] in
    (* Functions already scheduled into some wave this round. *)
    let done_fns : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    (* Previous-round environments are read-only for the whole round, so
       wave tasks may safely share them across domains. *)
    let call_oracle callee _args =
      match Hashtbl.find_opt return_env callee with
      | Some v -> v
      | None -> Value.bottom
    in
    let make_task members =
      {
        group = members;
        run =
          (fun () ->
            Vrp_obs.Metrics.inc tasks_total;
            Vrp_obs.Metrics.time task_seconds @@ fun () ->
            Vrp_obs.Trace.with_span "task"
              ~args:[ ("group", String.concat "," members) ]
            @@ fun () ->
            List.map
              (fun name ->
                let local = Diag.create () in
                match (Ir.find_fn program name, Hashtbl.find_opt param_env name) with
                | Some fn, Some param_values when not (Hashtbl.mem failed name) -> (
                  match
                    (* Beat the cancellation token between functions too, so
                       a deadline can fire while a wave is between engine
                       runs — not only inside a worklist. A token cancelled
                       here demotes this function exactly as an in-engine
                       cancellation would. *)
                    let () =
                      Option.iter
                        (fun tok ->
                          Diag.Cancel.beat tok;
                          Diag.Cancel.check tok ~name)
                        config.Engine.cancel
                    in
                    analyze_fn ~config ~report:(Some local) ~call_oracle ~param_values fn
                  with
                  | res -> (name, Analyzed res, local)
                  | exception e ->
                    let why =
                      match e with
                      | Diag.Fault.Injected msg -> msg
                      (* Deterministic reason — no wall-clock numbers — so
                         a deadline demotion renders identically at any
                         parallelism. *)
                      | Diag.Cancel.Cancelled _ -> "deadline exceeded"
                      | e -> Printexc.to_string e
                    in
                    (name, Crashed why, local))
                | _ -> (name, Skipped, local))
              members);
      }
    in
    (* Wave 0 is main alone; each subsequent wave is the set of
       not-yet-scheduled functions called by an executable call site of the
       preceding waves, grouped by the SCC plan in first-discovery order. *)
    let wave = ref [ [ "main" ] ] in
    List.iter (fun members -> List.iter (fun n -> Hashtbl.replace done_fns n ()) members) !wave;
    while !wave <> [] do
      Vrp_obs.Metrics.inc waves_total;
      let task_results =
        Vrp_obs.Trace.with_span "wave"
          ~args:
            [
              ("round", string_of_int !rounds);
              ("tasks", string_of_int (List.length !wave));
            ]
          (fun () -> run_tasks (Array.of_list (List.map make_task !wave)))
      in
      (* Merge in task order: results, failures, diagnostics, call records
         and the next frontier are all deterministic. *)
      let frontier = ref [] (* reversed first-discovery order *) in
      let in_frontier : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun per_fn ->
          List.iter
            (fun (name, outcome, local) ->
              (match report with
              | Some r -> Diag.merge ~into:r local
              | None -> ());
              match outcome with
              | Skipped -> ()
              | Crashed why ->
                (* Containment: demote this function, keep the run alive.
                   The function stays demoted for the remaining rounds — a
                   crash is deterministic for given inputs, and retrying
                   would only duplicate the diagnostic. *)
                Hashtbl.replace failed name why;
                (match report with
                | Some r ->
                  Diag.add r ~fn:name Diag.Error Diag.Analysis_crashed
                    (Printf.sprintf
                       "analysis raised (%s); function demoted to heuristics" why)
                | None -> ())
              | Analyzed res ->
                Hashtbl.replace round_results name res;
                List.iter
                  (fun (_site, (callee, args)) ->
                    match Ir.find_fn program callee with
                    | None -> () (* builtin *)
                    | Some cfn ->
                      if List.length args = List.length cfn.Ir.params then
                        recorded := (callee, args) :: !recorded;
                      if not (Hashtbl.mem param_env callee) then
                        (* make the callee analysable this round if it only
                           just became reachable *)
                        Hashtbl.replace param_env callee
                          (List.map (fun _ -> Value.bottom) cfn.Ir.params);
                      if
                        (not (Hashtbl.mem done_fns callee))
                        && not (Hashtbl.mem in_frontier callee)
                      then begin
                        Hashtbl.replace in_frontier callee ();
                        frontier := callee :: !frontier
                      end)
                  res.Engine.calls_seen)
            per_fn)
        task_results;
      (* Bucket the frontier by SCC group, buckets ordered by the group's
         first appearance, members kept in discovery order. *)
      let frontier = List.rev !frontier in
      let buckets : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
      let bucket_order = ref [] in
      List.iter
        (fun name ->
          let gid = gid_of name in
          match Hashtbl.find_opt buckets gid with
          | Some members -> members := name :: !members
          | None ->
            let members = ref [ name ] in
            Hashtbl.replace buckets gid members;
            bucket_order := gid :: !bucket_order)
        frontier;
      let next_wave =
        List.rev_map
          (fun gid -> List.rev !(Hashtbl.find buckets gid))
          !bucket_order
      in
      List.iter
        (fun members -> List.iter (fun n -> Hashtbl.replace done_fns n ()) members)
        next_wave;
      wave := next_wave
    done;
    (* Build next round's environments from the recorded jump functions.
       Contributions are accumulated per parameter in record order (one
       weighted entry per executable call site). *)
    let next_params : (string, (float * Value.t) list array) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun (callee, args) ->
        let arr =
          match Hashtbl.find_opt next_params callee with
          | Some arr -> arr
          | None ->
            let arr = Array.make (List.length args) [] in
            Hashtbl.replace next_params callee arr;
            arr
        in
        List.iteri (fun i v -> arr.(i) <- (1.0, v) :: arr.(i)) args)
      (List.rev !recorded);
    let new_param_env = Hashtbl.create 16 in
    (match Ir.find_fn program "main" with
    | Some main ->
      Hashtbl.replace new_param_env "main"
        (List.map (fun _ -> Value.bottom) main.Ir.params)
    | None -> ());
    List.iter
      (fun callee ->
        if callee <> "main" then
          let arr = Hashtbl.find next_params callee in
          Hashtbl.replace new_param_env callee
            (Array.to_list (Array.map Value.union_weighted arr)))
      (sorted_keys next_params);
    let new_return_env = Hashtbl.create 16 in
    List.iter
      (fun name ->
        let res : Engine.t = Hashtbl.find round_results name in
        Hashtbl.replace new_return_env name res.Engine.return_value)
      (sorted_keys round_results);
    let ret_equal =
      Hashtbl.length new_return_env = Hashtbl.length return_env
      && Hashtbl.fold
           (fun name v acc ->
             acc
             &&
             match Hashtbl.find_opt return_env name with
             | Some v' -> Value.equal v v'
             | None -> false)
           new_return_env true
    in
    let params_equal = env_equal new_param_env param_env in
    results := round_results;
    Hashtbl.reset param_env;
    Hashtbl.iter (Hashtbl.replace param_env) new_param_env;
    Hashtbl.reset return_env;
    Hashtbl.iter (Hashtbl.replace return_env) new_return_env;
    if params_equal && ret_equal then continue := false
  done;
  {
    results = !results;
    failed;
    param_env;
    return_env;
    rounds = !rounds;
    converged = not !continue;
  }
