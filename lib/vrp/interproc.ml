(** Interprocedural value range propagation (paper §3.7).

    "Interprocedural constant propagation is usually described in terms of a
    set of jump functions associated with each call site ... In our case,
    the jump functions map directly to the range representations for the
    parameters in the call, and the propagation algorithm remains the same.
    In essence, the entire program is treated almost as if it were one huge
    control flow graph."

    Implementation: a round-based whole-program driver. Each round analyses
    every reachable function with (a) parameter ranges = the weighted merge
    of the argument ranges observed at its executable call sites in the
    previous round (the jump functions), and (b) a call oracle that returns
    each callee's merged return range (the return-jump functions, footnote
    3). [main]'s parameters are program input, hence ⊥. Rounds repeat until
    the parameter/return environments stabilise or [max_rounds] is hit —
    recursion makes the environments oscillate at most down to ⊥. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value
module Diag = Vrp_diag.Diag

type t = {
  results : (string, Engine.t) Hashtbl.t;  (** per reachable function *)
  failed : (string, string) Hashtbl.t;
      (** functions whose analysis raised, with the reason: demoted to the
          heuristic predictor by the pipeline, never re-analysed this run *)
  param_env : (string, Value.t list) Hashtbl.t;
  return_env : (string, Value.t) Hashtbl.t;
  rounds : int;  (** rounds actually executed *)
}

let result t fname = Hashtbl.find_opt t.results fname

let failure t fname = Hashtbl.find_opt t.failed fname

let default_max_rounds = 5

let env_equal (a : (string, Value.t list) Hashtbl.t) (b : (string, Value.t list) Hashtbl.t) =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun name vs acc ->
         acc
         &&
         match Hashtbl.find_opt b name with
         | Some vs' -> List.length vs = List.length vs' && List.for_all2 Value.equal vs vs'
         | None -> false)
       a true

(** Whole-program analysis, entered at [main]. Per-function fault
    containment: a function whose [Engine.analyze] raises (divergence guard,
    injected fault, internal bug) is recorded in [failed] with an
    [Analysis_crashed] diagnostic and excluded from the environments — the
    rest of the program is still analysed, and the pipeline demotes just
    that function to the heuristic predictor. *)
let analyze ?(config = Engine.default_config) ?report
    ?(max_rounds = default_max_rounds) (program : Ir.program) : t =
  let param_env : (string, Value.t list) Hashtbl.t = Hashtbl.create 16 in
  let return_env : (string, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let failed : (string, string) Hashtbl.t = Hashtbl.create 4 in
  (match Ir.find_fn program "main" with
  | Some main ->
    Hashtbl.replace param_env "main" (List.map (fun _ -> Value.bottom) main.Ir.params)
  | None -> invalid_arg "Interproc.analyze: program has no main");
  let results = ref (Hashtbl.create 16) in
  let rounds = ref 0 in
  let continue = ref true in
  while !continue && !rounds < max_rounds do
    incr rounds;
    let round_results = Hashtbl.create 16 in
    (* Jump-function accumulation for the next round: one weighted entry per
       executable call site. *)
    let next_params : (string, (float * Value.t) list array option ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let record_call callee (args : Value.t list) =
      match Ir.find_fn program callee with
      | None -> () (* builtin *)
      | Some cfn ->
        let nparams = List.length cfn.Ir.params in
        if List.length args = nparams then begin
          let slot =
            match Hashtbl.find_opt next_params callee with
            | Some r -> r
            | None ->
              let r = ref None in
              Hashtbl.replace next_params callee r;
              r
          in
          let arr =
            match !slot with
            | Some arr -> arr
            | None ->
              let arr = Array.make nparams [] in
              slot := Some arr;
              arr
          in
          List.iteri (fun i v -> arr.(i) <- (1.0, v) :: arr.(i)) args
        end
    in
    (* Analyse every function that currently has parameter ranges, in a BFS
       order from main so callees see this round's caller information. *)
    let analyzed = Hashtbl.create 16 in
    let queue = Queue.create () in
    Queue.add "main" queue;
    while not (Queue.is_empty queue) do
      let name = Queue.pop queue in
      if not (Hashtbl.mem analyzed name) then begin
        Hashtbl.replace analyzed name ();
        match (Ir.find_fn program name, Hashtbl.find_opt param_env name) with
        | Some fn, Some param_values when not (Hashtbl.mem failed name) -> (
          let call_oracle callee _args =
            match Hashtbl.find_opt return_env callee with
            | Some v -> v
            | None -> Value.bottom
          in
          match Engine.analyze ~config ?report ~call_oracle ~param_values fn with
          | exception e ->
            (* Containment: demote this function, keep the run alive. The
               function stays demoted for the remaining rounds — a crash is
               deterministic for given inputs, and retrying would only
               duplicate the diagnostic. *)
            let why =
              match e with
              | Diag.Fault.Injected msg -> msg
              | e -> Printexc.to_string e
            in
            Hashtbl.replace failed name why;
            (match report with
            | Some r ->
              Diag.add r ~fn:name Diag.Error Diag.Analysis_crashed
                (Printf.sprintf
                   "analysis raised (%s); function demoted to heuristics" why)
            | None -> ())
          | res ->
          Hashtbl.replace round_results name res;
          List.iter
            (fun (_site, (callee, args)) ->
              record_call callee args;
              if Ir.find_fn program callee <> None && not (Hashtbl.mem analyzed callee)
              then begin
                (* make the callee analysable this round if it only just
                   became reachable *)
                if not (Hashtbl.mem param_env callee) then begin
                  match Ir.find_fn program callee with
                  | Some cfn ->
                    Hashtbl.replace param_env callee
                      (List.map (fun _ -> Value.bottom) cfn.Ir.params)
                  | None -> ()
                end;
                Queue.add callee queue
              end)
            res.Engine.calls_seen)
        | _ -> ()
      end
    done;
    (* Build next round's environments. *)
    let new_param_env = Hashtbl.create 16 in
    (match Ir.find_fn program "main" with
    | Some main ->
      Hashtbl.replace new_param_env "main"
        (List.map (fun _ -> Value.bottom) main.Ir.params)
    | None -> ());
    Hashtbl.iter
      (fun callee slot ->
        if callee <> "main" then begin
          match !slot with
          | Some arr ->
            Hashtbl.replace new_param_env callee
              (Array.to_list (Array.map Value.union_weighted arr))
          | None -> ()
        end)
      next_params;
    let new_return_env = Hashtbl.create 16 in
    Hashtbl.iter
      (fun name (res : Engine.t) -> Hashtbl.replace new_return_env name res.Engine.return_value)
      round_results;
    let ret_equal =
      Hashtbl.length new_return_env = Hashtbl.length return_env
      && Hashtbl.fold
           (fun name v acc ->
             acc
             &&
             match Hashtbl.find_opt return_env name with
             | Some v' -> Value.equal v v'
             | None -> false)
           new_return_env true
    in
    let params_equal = env_equal new_param_env param_env in
    results := round_results;
    Hashtbl.reset param_env;
    Hashtbl.iter (Hashtbl.replace param_env) new_param_env;
    Hashtbl.reset return_env;
    Hashtbl.iter (Hashtbl.replace return_env) new_return_env;
    if params_equal && ret_equal then continue := false
  done;
  { results = !results; failed; param_env; return_env; rounds = !rounds }
