(** Block, edge and function execution-frequency estimation from branch
    probabilities (paper §6).

    "In this case what we want to know is the execution frequencies of
    functions and basic blocks, not the probabilities of branches. This
    information can be obtained by ... propagating frequencies around the
    control flow graph until a fixed point is reached [WuLarus94].
    Optimizations can then be applied in descending order of execution
    frequency."

    Within a function: freq(entry) = 1 and freq(b) = Σ freq(p)·prob(p→b),
    solved by Gauss–Seidel relaxation in reverse postorder (loops converge
    geometrically; a cyclic-probability cap bounds non-terminating loops, as
    in Wu–Larus). Across functions: freq(main) = 1 and each callee receives
    the sum over executable call sites of caller-frequency × site-frequency,
    iterated with a recursion cap. *)

module Ir = Vrp_ir.Ir

type fn_freq = {
  fn : Ir.fn;
  block_freq : float array;  (** executions per invocation of the function *)
  edge_freq : (int * int, float) Hashtbl.t;
}

type t = {
  per_fn : (string, fn_freq) Hashtbl.t;
  call_freq : (string, float) Hashtbl.t;  (** invocations per run of main *)
}

(* Damping bounds: a loop whose cyclic probability reaches 1 would diverge;
   Wu-Larus cap the cyclic probability, which bounds the multiplier. *)
let max_block_freq = 1e12
let relaxation_passes = 128
let convergence_eps = 1e-9

(** Per-invocation block and edge frequencies of one analysed function. *)
let of_engine (res : Engine.t) : fn_freq =
  let fn = res.Engine.fn in
  let n = Ir.num_blocks fn in
  (* Edge probabilities from the analysis: conditional branches use the
     predicted probability, jumps are certain. *)
  let edge_prob (b : Ir.block) =
    match b.Ir.term with
    | Ir.Jump d -> [ (d, 1.0) ]
    | Ir.Ret _ -> []
    | Ir.Br { tdst; fdst; _ } -> (
      match Engine.branch_prob res b.Ir.bid with
      | Some p -> [ (tdst, p); (fdst, 1.0 -. p) ]
      | None -> [ (tdst, 0.5); (fdst, 0.5) ])
  in
  (* Exact solution of the flow equations freq = A·freq + e (freq(entry)
     gets the extra unit, every other block the probability-weighted sum of
     its predecessors): Gaussian elimination on (I − A). Loops of any trip
     count are exact — iterative relaxation would converge at the loop's
     cyclic probability, hopelessly slowly for e.g. 4096-trip loops. A
     near-singular pivot corresponds to a (nearly) non-terminating loop and
     is regularised, which caps the multiplier like Wu–Larus's cyclic
     probability cap. *)
  let m = Array.make_matrix n (n + 1) 0.0 in
  for b = 0 to n - 1 do
    m.(b).(b) <- 1.0
  done;
  Ir.iter_blocks fn (fun pb ->
      List.iter
        (fun (dst, p) -> m.(dst).(pb.Ir.bid) <- m.(dst).(pb.Ir.bid) -. p)
        (edge_prob pb));
  m.(Ir.entry_bid).(n) <- 1.0;
  (* elimination with partial pivoting *)
  for col = 0 to n - 1 do
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!pivot).(col) then pivot := r
    done;
    if !pivot <> col then begin
      let t = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- t
    end;
    let d = m.(col).(col) in
    let d = if Float.abs d < 1.0 /. max_block_freq then 1.0 /. max_block_freq else d in
    m.(col).(col) <- d;
    for r = col + 1 to n - 1 do
      let factor = m.(r).(col) /. d in
      if factor <> 0.0 then
        for c = col to n do
          m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
        done
    done
  done;
  let freq = Array.make n 0.0 in
  for row = n - 1 downto 0 do
    let acc = ref m.(row).(n) in
    for c = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(c) *. freq.(c))
    done;
    freq.(row) <- Vrp_util.Stats.clamp ~lo:0.0 ~hi:max_block_freq (!acc /. m.(row).(row))
  done;
  let edge_freq = Hashtbl.create 32 in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun (dst, p) -> Hashtbl.replace edge_freq (b.Ir.bid, dst) (freq.(b.Ir.bid) *. p))
        (edge_prob b));
  { fn; block_freq = freq; edge_freq }

(** Whole-program frequencies from an interprocedural analysis. *)
let of_interproc (_program : Ir.program) (ipa : Interproc.t) : t =
  let per_fn = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name res -> Hashtbl.replace per_fn name (of_engine res))
    ipa.Interproc.results;
  (* Call-site frequencies: invocations of callee per invocation of caller. *)
  let call_sites : (string * string * float) list =
    Hashtbl.fold
      (fun caller (res : Engine.t) acc ->
        match Hashtbl.find_opt per_fn caller with
        | None -> acc
        | Some ff ->
          List.fold_left
            (fun acc ((bid, _idx), (callee, _args)) ->
              (caller, callee, ff.block_freq.(bid)) :: acc)
            acc res.Engine.calls_seen)
      ipa.Interproc.results []
  in
  let call_freq = Hashtbl.create 16 in
  Hashtbl.replace call_freq "main" 1.0;
  (* Relax over the call graph; recursion is capped like loops. *)
  let passes = ref 0 in
  let continue = ref true in
  while !continue && !passes < relaxation_passes do
    incr passes;
    let delta = ref 0.0 in
    let next = Hashtbl.create 16 in
    Hashtbl.replace next "main" 1.0;
    List.iter
      (fun (caller, callee, site_freq) ->
        let caller_f = Option.value ~default:0.0 (Hashtbl.find_opt call_freq caller) in
        let cur = Option.value ~default:0.0 (Hashtbl.find_opt next callee) in
        Hashtbl.replace next callee
          (Float.min max_block_freq (cur +. (caller_f *. site_freq))))
      call_sites;
    Hashtbl.iter
      (fun name f ->
        let old = Option.value ~default:0.0 (Hashtbl.find_opt call_freq name) in
        delta := Float.max !delta (Float.abs (f -. old));
        Hashtbl.replace call_freq name f)
      next;
    if !delta < convergence_eps then continue := false
  done;
  { per_fn; call_freq }

(** Global frequency of a block: invocations of its function × executions
    per invocation. *)
let global_block_freq (t : t) ~(fname : string) ~(bid : int) : float option =
  match (Hashtbl.find_opt t.per_fn fname, Hashtbl.find_opt t.call_freq fname) with
  | Some ff, Some cf when bid < Array.length ff.block_freq -> Some (ff.block_freq.(bid) *. cf)
  | _ -> None

(** Blocks of the whole program hottest-first — the order the paper suggests
    applying resource-limited optimizations in. *)
let hottest_blocks (t : t) : (string * int * float) list =
  Hashtbl.fold
    (fun fname ff acc ->
      let cf = Option.value ~default:0.0 (Hashtbl.find_opt t.call_freq fname) in
      Array.to_list (Array.mapi (fun bid f -> (fname, bid, f *. cf)) ff.block_freq) @ acc)
    t.per_fn []
  |> List.sort (fun (fa, ba, a) (fb, bb, b) ->
         (* Frequency-descending with a (function, block) tie-break: equal
            frequencies must not surface hash-table order. *)
         match Float.compare b a with
         | 0 -> compare (fa, ba) (fb, bb)
         | c -> c)
