(** End-to-end convenience pipeline: MiniC source → canonical SSA CFG →
    predictions. Shared by the CLI driver, the examples, the evaluation
    harness and the tests so they all agree on what "the program" is. *)

module Ir = Vrp_ir.Ir
module Value = Vrp_ranges.Value
module Predictor = Vrp_predict.Predictor
module Heuristics = Vrp_predict.Heuristics
module Diag = Vrp_diag.Diag

type compiled = {
  source : string;
  ast : Vrp_lang.Ast.program;
  ssa : Ir.program;  (** the canonical SSA program all consumers share *)
  ssa_infos : (string, Vrp_ir.Ssa.info) Hashtbl.t;
}

(** Parse, check, lower, clean, split, convert to SSA and validate.
    @raise Vrp_lang front-end errors or {!Vrp_ir.Check.Violation}. *)
let compile (source : string) : compiled =
  Vrp_obs.Trace.with_span "compile" (fun () ->
      let ast =
        Vrp_obs.Trace.with_span "parse+check" (fun () ->
            Vrp_lang.Front.parse_and_check source)
      in
      let cfg =
        Vrp_obs.Trace.with_span "build-cfg" (fun () -> Vrp_ir.Build.program ast)
      in
      let ssa, ssa_infos =
        Vrp_obs.Trace.with_span "ssa" (fun () ->
            Vrp_ir.Ssa.transform_program cfg)
      in
      Vrp_obs.Trace.with_span "check-ssa" (fun () ->
          Vrp_ir.Check.check_ssa_program ssa);
      { source; ast; ssa; ssa_infos })

(** Total variant of {!compile} for consumers that must not see exceptions:
    any front-end error, IR-check violation or internal crash becomes a
    structured [Front_end_error] diagnostic. *)
let compile_result (source : string) : (compiled, Diag.diag) result =
  match compile source with
  | c -> Ok c
  | exception e ->
    let message =
      match Vrp_lang.Front.describe_error e with
      | Some msg -> msg
      | None -> (
        match e with
        | Vrp_ir.Check.Violation msg -> "internal IR invariant violated: " ^ msg
        | e -> "internal error: " ^ Printexc.to_string e)
    in
    Error
      {
        Diag.severity = Diag.Error;
        kind = Diag.Front_end_error;
        loc = Diag.no_loc;
        message;
      }

(** Branch predictions from (interprocedural) value range propagation.

    Totality guarantee: the returned map has an entry for {e every}
    conditional branch of the program, whatever happens during analysis.
    Branches of unreachable or demoted functions fall back to the
    Ball–Larus estimate; a per-function crash or governor trip demotes only
    that function. With [report], every fallback is recorded as a
    [Fallback_heuristic] diagnostic (warning severity when caused by
    infrastructure degradation, info when it is the paper's ordinary
    ⊥-range fallback). *)
type fallback_predictor =
  ctx:Heuristics.ctx -> res:Engine.t option -> src:int -> Ir.branch -> float

let vrp_predictions ?(config = Engine.default_config) ?(interprocedural = true)
    ?report ?groups ?run_tasks ?analyze_fn ?fallback (ssa : Ir.program) :
    Predictor.prediction * Interproc.t option =
  let out = Hashtbl.create 64 in
  let record ?fn ?block severity kind message =
    match report with
    | Some r -> Diag.add r ?fn ?block severity kind message
    | None -> ()
  in
  (* What fills the gaps VRP leaves: Ball–Larus, or the learned tier when a
     [fallback] hook is given (the ladder VRP → learned → B&L lives in the
     hook's own implementation). The name reaches the diagnostics, whose
     default wording is pinned by tests — keep it byte-identical. *)
  let tier_name =
    match fallback with
    | None -> "Ball–Larus heuristics"
    | Some _ -> "the learned fallback model"
  in
  (* [demoted] explains why a function has no engine result (crash text),
     [None] meaning it is simply unreachable from main. *)
  let fill (fn : Ir.fn) (res : Engine.t option) ~(demoted : string option) =
    let hctx = lazy (Heuristics.make_ctx fn) in
    Array.iter
      (fun (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Br br ->
          let fb () =
            match fallback with
            | Some f -> f ~ctx:(Lazy.force hctx) ~res ~src:b.Ir.bid br
            | None -> Heuristics.ball_larus (Lazy.force hctx) ~src:b.Ir.bid br
          in
          let p =
            match res with
            | Some eres -> (
              match Engine.branch_prob eres b.Ir.bid with
              | Some p ->
                if Engine.used_fallback eres b.Ir.bid then begin
                  record ~fn:fn.Ir.fname ~block:b.Ir.bid Diag.Info
                    Diag.Fallback_heuristic
                    (Printf.sprintf "branch predicted by %s (range is ⊥)"
                       tier_name);
                  (* The engine's own fallback value is Ball–Larus; the
                     hook replaces it on the prediction surface. *)
                  match fallback with Some _ -> fb () | None -> p
                end
                else p
              | None ->
                if eres.Engine.fuel_exhausted || eres.Engine.timed_out then
                  record ~fn:fn.Ir.fname ~block:b.Ir.bid Diag.Warning
                    Diag.Fallback_heuristic
                    (Printf.sprintf
                       "branch not reached by the (governor-limited) \
                        analysis; using %s"
                       tier_name)
                else
                  record ~fn:fn.Ir.fname ~block:b.Ir.bid Diag.Info
                    Diag.Fallback_heuristic
                    (Printf.sprintf
                       "branch unreachable for the analysis; using %s"
                       tier_name);
                fb ())
            | None ->
              (match demoted with
              | Some why ->
                record ~fn:fn.Ir.fname ~block:b.Ir.bid Diag.Warning
                  Diag.Fallback_heuristic
                  (Printf.sprintf "function demoted (%s); branch predicted by %s"
                     why tier_name)
              | None ->
                record ~fn:fn.Ir.fname ~block:b.Ir.bid Diag.Info
                  Diag.Fallback_heuristic
                  (Printf.sprintf
                     "function unreachable from main; branch predicted by %s"
                     tier_name));
              fb ()
          in
          Hashtbl.replace out (fn.Ir.fname, b.Ir.bid) p
        | Ir.Jump _ | Ir.Ret _ -> ())
      fn.Ir.blocks
  in
  (* Last-resort containment for whole-driver failures (e.g. a program with
     no [main], or a bug in the interprocedural round logic): fall back to
     per-function intraprocedural analysis, itself per-function contained. *)
  let intraprocedural_contained () =
    List.iter
      (fun fn ->
        match Engine.analyze ~config ?report fn with
        | res -> fill fn (Some res) ~demoted:None
        | exception e ->
          let why =
            match e with
            | Diag.Fault.Injected msg -> msg
            | e -> Printexc.to_string e
          in
          record ~fn:fn.Ir.fname Diag.Error Diag.Analysis_crashed
            (Printf.sprintf "analysis raised (%s); function demoted to \
                             heuristics" why);
          fill fn None ~demoted:(Some why))
      ssa.Ir.fns
  in
  if interprocedural then begin
    match
      Vrp_obs.Trace.with_span "interproc" (fun () ->
          Interproc.analyze ~config ?report ?groups ?run_tasks ?analyze_fn ssa)
    with
    | ipa ->
      List.iter
        (fun (fn : Ir.fn) ->
          fill fn
            (Interproc.result ipa fn.Ir.fname)
            ~demoted:(Interproc.failure ipa fn.Ir.fname))
        ssa.Ir.fns;
      (out, Some ipa)
    | exception e ->
      record Diag.Error Diag.Analysis_crashed
        (Printf.sprintf
           "interprocedural driver raised (%s); falling back to \
            per-function analysis"
           (Printexc.to_string e));
      intraprocedural_contained ();
      (out, None)
  end
  else begin
    intraprocedural_contained ();
    (out, None)
  end

(** All the predictors of the paper's Figures 7/8, keyed by the legend names
    used in the harness output. [train] is the profiling predictor's
    training run. [config] (default the paper's full configuration) applies
    to the full-VRP run only — so CLI resilience options, including fault
    injection, reach it — while "vrp-sym1" (symbolic without the v2
    sum-of-products algebra) and "vrp-numeric" stay the fixed ablations of
    the numeric-vs-symbolic-v1-vs-v2 comparison. *)
let all_predictors ?report ?(config = Engine.default_config) ?fallback
    ~(train : Vrp_profile.Interp.profile) (ssa : Ir.program) :
    (string * Predictor.prediction) list =
  let vrp_full, _ = vrp_predictions ~config ?report ssa in
  let vrp_numeric, _ = vrp_predictions ~config:Engine.numeric_only_config ssa in
  (* Symbolic-v1 ablation: full symbolic ranges but no sum-of-products
     algebra, isolating the v2 contribution in the §5 comparison. *)
  let vrp_sym1, _ =
    vrp_predictions ~config:{ config with Engine.algebra = false } ssa
  in
  (* The learned tier rides on the same full-VRP configuration; only the ⊥
     gaps differ from the "vrp" column, so the delta isolates the fallback
     ladder's contribution. *)
  let learned =
    match fallback with
    | None -> []
    | Some fallback ->
      let vrp_learned, _ = vrp_predictions ~config ~fallback ssa in
      [ ("vrp+learned", vrp_learned) ]
  in
  [
    ("profiling", Predictor.profiling train ssa);
    ("ball-larus", Predictor.ball_larus ssa);
    ("vrp", vrp_full);
  ]
  @ learned
  @ [
      ("vrp-sym1", vrp_sym1);
      ("vrp-numeric", vrp_numeric);
      ("90/50", Predictor.ninety_fifty ssa);
      ("random", Predictor.random ssa);
    ]
