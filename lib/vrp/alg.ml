(* Per-function algebraic context for symbolic algebra v2. See alg.mli. *)

module Ast = Vrp_lang.Ast
module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Dom = Vrp_ir.Dom
module Sym = Vrp_ranges.Sym
module Sop = Vrp_ranges.Sop
module Value = Vrp_ranges.Value
module Srange = Vrp_ranges.Srange
module Alg_env = Vrp_ranges.Alg_env

type t = {
  fn : Ir.fn;
  dom : Dom.t;
  defs : (int, Ir.rhs) Hashtbl.t;  (* var id -> defining rhs *)
  def_block : (int, int) Hashtbl.t;  (* var id -> defining block *)
  def_var : (int, Var.t) Hashtbl.t;  (* var id -> the variable itself *)
  copy_of : (int, Var.t) Hashtbl.t;  (* var id -> the variable it copies *)
  expansion : (int, Sop.t) Hashtbl.t;  (* memoized polynomial per var *)
  mutable env : Alg_env.t;
  mutable scope : int;  (* block the engine is currently evaluating *)
}

let max_expand_depth = 8

(* Program constants admitted into equations and facts: keep well inside the
   prover's coefficient cap so its linear combinations cannot overflow. *)
let const_ok n = abs n <= Alg_env.coeff_cap

let is_int (v : Var.t) = v.Var.ty = Ast.Tint

(* Chase copy links to the canonical representative. The link table is built
   acyclic (see [copy_links]), so this terminates. *)
let rec rep ctx (v : Var.t) =
  match Hashtbl.find_opt ctx.copy_of v.Var.id with
  | Some u -> rep ctx u
  | None -> v

(* Every atom speaks the canonical representative, so facts learned about
   one SSA name of a value apply to all its copies — including copies made
   by e-SSA assertion renaming and by loop-header φs that merely shuffle an
   unmodified value around the back edge. *)
let atom ctx v = Sop.of_var (rep ctx v)

(* Expand an integer variable into a polynomial over atoms by following
   affine SSA definitions. Sound because SSA definitions are identities over
   the executions that reach any use (a use is dominated by the def), and
   assertion defs are value-copies of their parent. *)
let rec expand ctx depth (v : Var.t) : Sop.t =
  match Hashtbl.find_opt ctx.expansion v.Var.id with
  | Some s -> s
  | None ->
    let result =
      if depth >= max_expand_depth || not (is_int v) then atom ctx v
      else
        match Hashtbl.find_opt ctx.defs v.Var.id with
        | None -> atom ctx v
        | Some rhs -> expand_rhs ctx depth v rhs
    in
    (* Clamp to the prover's tame window: sub-expansions are tame (memoized
       below), so a single affine step cannot wrap a coefficient, and an
       untame result falls back to the opaque atom before anyone scales it
       again. *)
    let result = if Alg_env.tame result then result else atom ctx v in
    (* Memoize only at depth 0 frontier entries too: the expansion of a var
       does not depend on the query depth that first reached it, because we
       recompute with a fresh depth budget below. *)
    Hashtbl.replace ctx.expansion v.Var.id result;
    result

and expand_rhs ctx depth v rhs =
  let eop = function
    | Ir.Cint n when const_ok n -> Some (Sop.const n)
    | Ir.Cint _ | Ir.Cfloat _ -> None
    | Ir.Ovar u -> if is_int u then Some (expand ctx (depth + 1) u) else None
  in
  let fallback = atom ctx v in
  match rhs with
  | Ir.Op a -> ( match eop a with Some s -> s | None -> fallback)
  | Ir.Binop (Ast.Add, a, b) -> (
    match (eop a, eop b) with
    | Some sa, Some sb -> Sop.add sa sb
    | _ -> fallback)
  | Ir.Binop (Ast.Sub, a, b) -> (
    match (eop a, eop b) with
    | Some sa, Some sb -> Sop.sub sa sb
    | _ -> fallback)
  | Ir.Binop (Ast.Mul, a, b) -> (
    match (eop a, eop b) with
    | Some sa, Some sb -> (
      match Sop.mul sa sb with Some s -> s | None -> fallback)
    | _ -> fallback)
  | Ir.Binop (Ast.Shl, a, Ir.Cint k) when k >= 0 && k <= 20 -> (
    match eop a with Some sa -> Sop.scale (1 lsl k) sa | None -> fallback)
  | Ir.Unop (Ir.Neg, a) -> (
    match eop a with Some sa -> Sop.neg sa | None -> fallback)
  | Ir.Assertion { parent; _ } ->
    if is_int parent then expand ctx (depth + 1) parent else fallback
  | Ir.Binop _ | Ir.Unop _ | Ir.Cmp _ | Ir.Load _ | Ir.Call _ | Ir.Phi _ ->
    fallback

let expand0 ctx v = expand ctx 0 v

let operand_sop ctx = function
  | Ir.Cint n when const_ok n -> Some (Sop.const n)
  | Ir.Cint _ | Ir.Cfloat _ -> None
  | Ir.Ovar v -> if is_int v then Some (expand0 ctx v) else None

(* Collect assertion facts, scoped to the assertion's block. *)
let assertion_facts ctx =
  Ir.iter_blocks ctx.fn (fun b ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Def (v, Ir.Assertion { parent; arel; abound }) when is_int v -> (
            match
              (if is_int parent then Some (expand0 ctx parent) else None),
              operand_sop ctx abound
            with
            | Some sp, Some sb ->
              let scope = b.Ir.bid in
              ctx.env <-
                (match arel with
                | Ast.Lt -> Alg_env.add_lt ~scope ctx.env sp sb
                | Ast.Le -> Alg_env.add_le ~scope ctx.env sp sb
                | Ast.Gt -> Alg_env.add_lt ~scope ctx.env sb sp
                | Ast.Ge -> Alg_env.add_le ~scope ctx.env sb sp
                | Ast.Eq -> Alg_env.add_eq ~scope ctx.env sp sb
                | Ast.Ne -> ctx.env)
            | _ -> ())
          | _ -> ())
        b.Ir.instrs)

(* Build the copy-link table. A link [v -> u] means v holds exactly u's
   value on every execution where v is defined. Three sound shapes:

   - [v = op u]: a plain move.
   - [v = assert(parent ...)]: e-SSA assertions are value-copies of their
     parent; only the deduced range differs, never the value.
   - [v = φ(...)] where every input is (transitively) a copy of one
     variable [u], or of v itself (a self-copy's edge cannot be the first
     to execute, by dominance, so the value always originates from [u]).

   The φ case iterates to a fixpoint so chained loop-header renames
   collapse through each other: with [n.1 = φ(n.0, n.7)],
   [n.7 = φ(n.5, n.8)], [n.5/n.8] assertion-copies of n.1, the inner φs
   first collapse to n.1, which then turns them into self-copies of n.1
   and collapses n.1 itself onto the entry value n.0.

   Acyclicity invariant: a link [v -> u] is only added while v is
   unlinked and [rep u <> v], so no chase can return to v; [rep] always
   terminates. *)
let copy_links ctx =
  let link v u =
    let u = rep ctx u in
    if not (Var.equal u v) then Hashtbl.replace ctx.copy_of v.Var.id u
  in
  Hashtbl.iter
    (fun id rhs ->
      match (Hashtbl.find_opt ctx.def_var id, rhs) with
      | Some v, Ir.Op (Ir.Ovar u) when is_int v && is_int u -> link v u
      | Some v, Ir.Assertion { parent; _ } when is_int v && is_int parent ->
        link v parent
      | _ -> ())
    ctx.defs;
  let phis = ref [] in
  Ir.iter_blocks ctx.fn (fun b ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Def (v, Ir.Phi args) when is_int v -> phis := (v, args) :: !phis
          | _ -> ())
        b.Ir.instrs);
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun ((v : Var.t), args) ->
        if not (Hashtbl.mem ctx.copy_of v.Var.id) then
          let input_rep (_, op) =
            match op with
            | Ir.Ovar u when is_int u -> Some (rep ctx u)
            | Ir.Ovar _ | Ir.Cint _ | Ir.Cfloat _ -> None
          in
          match
            List.fold_left
              (fun acc arg ->
                match (acc, input_rep arg) with
                | Some rs, Some r -> Some (r :: rs)
                | _, _ -> None)
              (Some []) args
          with
          | Some reps -> (
            match List.filter (fun r -> not (Var.equal r v)) reps with
            | r :: rest when List.for_all (Var.equal r) rest ->
              link v r;
              if Hashtbl.mem ctx.copy_of v.Var.id then changed := true
            | _ -> ())
          | None -> ())
      !phis
  done

(* φ-nodes: poly collapse and induction bounds. Pure copy webs are already
   unified by [copy_links]; this pass covers the residual sound shapes.

   - Collapse: when every input of an integer φ expands to one polynomial
     [p] not mentioning the φ (inputs that are plain copies of the φ itself
     are allowed: their edge cannot be the first to execute, by dominance),
     the φ merely shuffles one value around the loop and [v = p] holds.
   - Induction: when every input is a constant or the φ itself plus a
     constant, the φ is bounded below by the least constant (if no step is
     negative) and above by the greatest (if no step is positive) — e.g.
     [i = φ(0, i + 1)] gives [i >= 0]. Sound by induction on iteration
     count: the first execution of the φ's block arrives via a constant
     input, and each step preserves the bound.

   Facts are scoped to the φ's block. *)
let phi_facts ctx =
  Ir.iter_blocks ctx.fn (fun b ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Def (v, Ir.Phi args)
            when is_int v && not (Hashtbl.mem ctx.copy_of v.Var.id) -> (
            let self = atom ctx v in
            let exps =
              List.map (fun (_, op) -> operand_sop ctx op) args
            in
            if List.for_all Option.is_some exps then
              let exps = List.map Option.get exps in
              let scope = b.Ir.bid in
              let non_self =
                List.filter (fun e -> not (Sop.equal e self)) exps
              in
              match non_self with
              | p :: rest
                when List.for_all (Sop.equal p) rest
                     && not (List.exists (Var.equal v) (Sop.vars p)) ->
                ctx.env <- Alg_env.add_eq ~scope ctx.env self p
              | _ -> (
                let classify e =
                  match Sop.const_value e with
                  | Some c -> Some (`Const c)
                  | None -> (
                    match Sop.const_value (Sop.sub e self) with
                    | Some k -> Some (`Step k)
                    | None -> None)
                in
                match
                  List.fold_left
                    (fun acc e ->
                      match (acc, classify e) with
                      | Some (cs, ks), Some (`Const c) -> Some (c :: cs, ks)
                      | Some (cs, ks), Some (`Step k) -> Some (cs, k :: ks)
                      | _, _ -> None)
                    (Some ([], []))
                    exps
                with
                | Some ((_ :: _ as cs), ks) ->
                  if List.for_all (fun k -> k >= 0) ks then
                    ctx.env <-
                      Alg_env.add_le ~scope ctx.env
                        (Sop.const (List.fold_left min max_int cs))
                        self;
                  if List.for_all (fun k -> k <= 0) ks then
                    ctx.env <-
                      Alg_env.add_le ~scope ctx.env self
                        (Sop.const (List.fold_left max min_int cs))
                | _ -> ()))
          | _ -> ())
        b.Ir.instrs)

let make fn =
  let ctx =
    {
      fn;
      dom = Dom.compute fn;
      defs = Hashtbl.create 64;
      def_block = Hashtbl.create 64;
      def_var = Hashtbl.create 64;
      copy_of = Hashtbl.create 32;
      expansion = Hashtbl.create 64;
      env = Alg_env.empty;
      scope = Ir.entry_bid;
    }
  in
  List.iter
    (fun (p : Var.t) ->
      Hashtbl.replace ctx.def_block p.Var.id Ir.entry_bid;
      Hashtbl.replace ctx.def_var p.Var.id p)
    fn.Ir.params;
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun instr ->
          match Ir.instr_def instr with
          | Some v ->
            (match instr with
            | Ir.Def (_, rhs) -> Hashtbl.replace ctx.defs v.Var.id rhs
            | Ir.Store _ -> ());
            Hashtbl.replace ctx.def_block v.Var.id b.Ir.bid;
            Hashtbl.replace ctx.def_var v.Var.id v
          | None -> ())
        b.Ir.instrs);
  copy_links ctx;
  phi_facts ctx;
  assertion_facts ctx;
  ctx.env <- Alg_env.refine ctx.env;
  ctx

let set_scope ctx bid = ctx.scope <- bid

let admit_at ctx bid scope_bid = Dom.dominates ctx.dom scope_bid bid

let decide_at ctx ~bid rel a b =
  Alg_env.decide ~admit:(admit_at ctx bid) ctx.env rel a b

let sop_of_sym ctx (s : Sym.t) =
  match s.Sym.base with
  | None -> Some (Sop.const s.Sym.off)
  | Some v ->
    if is_int v then Some (Sop.add (expand0 ctx v) (Sop.const s.Sym.off))
    else None

let with_oracle ctx f =
  let query rel a b =
    match (sop_of_sym ctx a, sop_of_sym ctx b) with
    | Some sa, Some sb -> decide_at ctx ~bid:ctx.scope rel sa sb
    | _ -> None
  in
  Sym.with_relation_oracle
    { Sym.o_le = query Ast.Le; Sym.o_lt = query Ast.Lt }
    f

(* Post-fixpoint harvesting: converged per-variable ranges become facts.
   Only bounds that hold for *every* range of the value are usable; fold
   them with the plain (oracle-free) Sym min/max, which is what min_sym /
   max_sym are. *)
let add_range_facts ctx ~values =
  let bound_fact v sop_v value =
    match value with
    | Value.Ranges rs when rs <> [] ->
      let fold pick f =
        List.fold_left
          (fun acc (r : Srange.t) ->
            match acc with
            | None -> None
            | Some s -> pick s (f r))
          (match rs with
          | r :: _ -> Some (f r)
          | [] -> None)
          (List.tl rs)
      in
      let scope = Hashtbl.find_opt ctx.def_block v.Var.id in
      let add_one mk =
        match mk with
        | None -> ()
        | Some fact_poly ->
          ctx.env <- Alg_env.add_nonneg ?scope ctx.env fact_poly
      in
      let lo =
        match fold Sym.min_sym (fun r -> r.Srange.lo) with
        | Some lo when not (Sym.too_big lo) -> (
          match sop_of_sym ctx lo with
          | Some slo -> Some (Sop.sub sop_v slo) (* v - lo >= 0 *)
          | None -> None)
        | _ -> None
      in
      let hi =
        match fold Sym.max_sym (fun r -> r.Srange.hi) with
        | Some hi when not (Sym.too_big hi) -> (
          match sop_of_sym ctx hi with
          | Some shi -> Some (Sop.sub shi sop_v) (* hi - v >= 0 *)
          | None -> None)
        | _ -> None
      in
      add_one lo;
      add_one hi
    | Value.Ranges _ | Value.Top | Value.Bottom -> ()
  in
  Hashtbl.fold (fun id v acc -> (id, v) :: acc) ctx.def_var []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.iter (fun (id, v) ->
         if is_int v && id < Array.length values then
           bound_fact v (expand0 ctx v) values.(id));
  ctx.env <- Alg_env.refine ctx.env

let decide_branch ctx ~bid rel ba bb =
  match (operand_sop ctx ba, operand_sop ctx bb) with
  | Some sa, Some sb -> decide_at ctx ~bid rel sa sb
  | _ -> None

let prove_index_bounds ctx ~bid ~size idx =
  match operand_sop ctx idx with
  | None -> (false, false)
  | Some s ->
    let admit = admit_at ctx bid in
    let lower = Alg_env.prove_nonneg ~admit ctx.env s in
    let upper =
      Alg_env.prove_nonneg ~admit ctx.env (Sop.sub (Sop.const (size - 1)) s)
    in
    (lower, upper)

let fact_count ctx = Alg_env.size ctx.env
let to_string ctx = Alg_env.to_string ctx.env
