(** The value range propagation engine (paper §3.3): a Wegman–Zadeck-style
    two-worklist sparse propagator over weighted value ranges, with loop
    derivation, branch assertions, heuristic fallback and edge
    probabilities. See the implementation header for the full algorithm
    description and the termination safety-valve. *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Value = Vrp_ranges.Value
module Diag = Vrp_diag.Diag

type fallback = Heuristic | Even

type config = {
  symbolic : bool;  (** track symbolic ranges (paper's full configuration) *)
  use_assertions : bool;  (** narrow through branch assertions *)
  use_derivation : bool;  (** derive loop-carried φs instead of iterating *)
  algebra : bool;
      (** symbolic algebra v2 ({!Alg}): sum-of-products facts from
          assertions, SSA equations and converged ranges feed a
          post-fixpoint pass proving fallback branches one-way (and, in
          {!Bounds_check}, index bounds). The fixpoint itself never
          consults the facts, so ranges are byte-identical to v1 and v2
          strictly adds proofs. Only effective with [symbolic] *)
  eval_quota : int;  (** per-variable value changes before widening to ⊥ *)
  trip_prior : float;  (** assumed back-edge/entry frequency ratio at φs *)
  flow_first : bool;  (** prefer the FlowWorkList (paper §3.3 step 2) *)
  fallback : fallback;
  fuel : int option;
      (** explicit worklist-step budget; [None] derives one from function
          size. Exhaustion is flagged in the result and diagnosed *)
  time_limit_s : float option;  (** wall-clock governor (partial results) *)
  max_growth : int;  (** per-variable range-set size cap before widening *)
  fault : Diag.Fault.t option;  (** deterministic fault injection *)
  cancel : Diag.Cancel.token option;
      (** supervision hook: heartbeat per worklist step, cooperative
          cancellation via {!Diag.Cancel.Cancelled}. Non-semantic (not in
          the cache's configuration digest) *)
}

val default_config : config

(** The paper's "numeric ranges only" configuration (Figures 7/8). *)
val numeric_only_config : config

(** Analysis result for one function. *)
type t = {
  fn : Ir.fn;
  values : Value.t array;  (** final output assignment, indexed by var id *)
  branch_probs : (int, float) Hashtbl.t;  (** block id -> P(true edge) *)
  branch_fallback : (int, bool) Hashtbl.t;  (** branch used heuristics *)
  visited : bool array;  (** executable blocks *)
  evaluations : int;  (** expression evaluations (Figure 5 metric) *)
  calls_seen : ((int * int) * (string * Value.t list)) list;
      (** executable call sites (block, index) with latest argument values *)
  return_value : Value.t;  (** merged over executable returns *)
  fuel_limit : int;  (** the step budget this run was given *)
  fuel_spent : int;  (** worklist steps actually taken *)
  fuel_exhausted : bool;  (** ran out of fuel before the fixed point *)
  timed_out : bool;  (** the wall-clock governor tripped *)
  widenings : int;  (** values forcibly widened to ⊥ (quota / growth cap) *)
}

val value : t -> Var.t -> Value.t
val branch_prob : t -> int -> float option
val used_fallback : t -> int -> bool

(** Analyse one function. [param_values] are the formal parameters' ranges
    (⊥ by default = unknown program input); [call_oracle] supplies return
    ranges for calls (⊥ by default — the intraprocedural setting); [report]
    collects structured diagnostics for the run.
    @raise Diag.Fault.Injected under crash fault injection. *)
val analyze :
  ?config:config ->
  ?report:Diag.report ->
  ?call_oracle:(string -> Value.t list -> Value.t) ->
  ?param_values:Value.t list ->
  Ir.fn ->
  t
