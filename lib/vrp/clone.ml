(** Procedure cloning for value range propagation (paper §3.7).

    "One particularly important extension of interprocedural value range
    propagation is the judicious use of procedure cloning for critical
    procedures ... Since the calling context has a large impact on the
    branching behavior, this leads to substantially more accurate
    predictions."

    The pass clones a callee per distinct calling context (up to
    [max_clones_per_fn]) when its call sites supply materially different
    argument ranges — i.e. when merging the jump functions would lose
    information. Call instructions in the callers are retargeted to the
    clones, and the resulting program can be re-analysed; [origin_of] maps
    clone names back to their source function for reporting. *)

module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Value = Vrp_ranges.Value
module Diag = Vrp_diag.Diag

type t = {
  program : Ir.program;  (** the cloned program *)
  origin_of : (string, string) Hashtbl.t;  (** clone name -> original name *)
  clones_made : int;
}

let default_max_clones_per_fn = 4

(* Deep copy of a function under a new name. Variable identities can be
   shared: analyses never mutate variables, and each function's value table
   is indexed independently. *)
let copy_fn (fn : Ir.fn) ~(name : string) : Ir.fn =
  let blocks =
    Array.map
      (fun (b : Ir.block) ->
        { b with Ir.instrs = List.map (fun i -> i) b.Ir.instrs; preds = b.Ir.preds })
      fn.Ir.blocks
  in
  { fn with Ir.fname = name; blocks }

(* Group call sites by argument-value signature. *)
let signature (args : Value.t list) = String.concat "|" (List.map Value.to_string args)

(** Decide and apply cloning, driven by a prior interprocedural analysis.
    Functions are cloned when at least two call-site groups disagree on some
    argument's value. Functions demoted by the analysis (in
    [ipa.failed]) have no results to group and are left alone — cloning
    degrades to a no-op for them instead of failing. [report] records each
    clone decision. *)
let run ?(max_clones_per_fn = default_max_clones_per_fn) ?report
    (program : Ir.program) (ipa : Interproc.t) : t =
  let origin_of = Hashtbl.create 8 in
  (* Collect, per callee, the signatures seen at executable call sites. *)
  let contexts : (string, (string, Value.t list) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  Hashtbl.iter
    (fun _caller (res : Engine.t) ->
      List.iter
        (fun (_site, (callee, args)) ->
          if Ir.find_fn program callee <> None && callee <> "main" then begin
            let groups =
              match Hashtbl.find_opt contexts callee with
              | Some g -> g
              | None ->
                let g = Hashtbl.create 4 in
                Hashtbl.replace contexts callee g;
                g
            in
            Hashtbl.replace groups (signature args) args
          end)
        res.Engine.calls_seen)
    ipa.Interproc.results;
  (* Choose clone targets: callee -> (signature -> clone name). *)
  let clone_plan : (string, (string, string) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let clones = ref [] in
  let n_clones = ref 0 in
  Hashtbl.iter
    (fun callee groups ->
      let sigs = Hashtbl.fold (fun s args acc -> (s, args) :: acc) groups [] in
      if List.length sigs > 1 && List.length sigs <= max_clones_per_fn then begin
        match Ir.find_fn program callee with
        | None -> ()
        | Some fn ->
          let plan = Hashtbl.create 4 in
          List.iteri
            (fun i (s, _args) ->
              let cname = Printf.sprintf "%s$%d" callee (i + 1) in
              Hashtbl.replace plan s cname;
              Hashtbl.replace origin_of cname callee;
              incr n_clones;
              clones := copy_fn fn ~name:cname :: !clones)
            (List.sort compare sigs);
          (match report with
          | Some r ->
            Diag.add r ~fn:callee Diag.Info Diag.Note
              (Printf.sprintf "cloned into %d calling-context variants"
                 (List.length sigs))
          | None -> ());
          Hashtbl.replace clone_plan callee plan
      end)
    contexts;
  if !n_clones = 0 then { program; origin_of; clones_made = 0 }
  else begin
    (* Retarget calls in every caller according to the argument signature the
       analysis observed at that site. *)
    let retarget (caller : Ir.fn) =
      match Hashtbl.find_opt ipa.Interproc.results caller.Ir.fname with
      | None -> caller
      | Some res ->
        let site_map = Hashtbl.create 8 in
        List.iter
          (fun ((bid, idx), (callee, args)) ->
            match Hashtbl.find_opt clone_plan callee with
            | Some plan -> (
              match Hashtbl.find_opt plan (signature args) with
              | Some cname -> Hashtbl.replace site_map (bid, idx) cname
              | None -> ())
            | None -> ())
          res.Engine.calls_seen;
        if Hashtbl.length site_map = 0 then caller
        else begin
          let blocks =
            Array.map
              (fun (b : Ir.block) ->
                let instrs =
                  List.mapi
                    (fun idx instr ->
                      match instr with
                      | Ir.Def (v, Ir.Call (name, args)) -> (
                        match Hashtbl.find_opt site_map (b.Ir.bid, idx) with
                        | Some cname when Hashtbl.find_opt origin_of cname = Some name ->
                          Ir.Def (v, Ir.Call (cname, args))
                        | _ -> instr)
                      | instr -> instr)
                    b.Ir.instrs
                in
                { b with Ir.instrs })
              caller.Ir.blocks
          in
          { caller with Ir.blocks }
        end
    in
    let fns = List.map retarget program.Ir.fns @ List.rev !clones in
    ({ program with Ir.fns = fns }, origin_of, !n_clones)
    |> fun (program, origin_of, clones_made) -> { program; origin_of; clones_made }
  end
