(** End-to-end convenience pipeline shared by the CLI, examples, harness and
    tests: MiniC source → canonical SSA CFG → predictions. *)

module Ir = Vrp_ir.Ir
module Predictor = Vrp_predict.Predictor
module Diag = Vrp_diag.Diag

type compiled = {
  source : string;
  ast : Vrp_lang.Ast.program;
  ssa : Ir.program;  (** the canonical SSA program all consumers share *)
  ssa_infos : (string, Vrp_ir.Ssa.info) Hashtbl.t;
}

(** Parse, check, lower, clean, split, convert to SSA and validate.
    @raise front-end errors or {!Vrp_ir.Check.Violation}. *)
val compile : string -> compiled

(** Total variant of {!compile}: any front-end error, IR-check violation or
    internal crash becomes a structured [Front_end_error] diagnostic instead
    of an exception. *)
val compile_result : string -> (compiled, Diag.diag) result

(** What predicts the branches VRP cannot (⊥ ranges, governor-starved,
    demoted or unreachable functions). [res] is the function's engine
    result when one exists — the hook may mine it for hints (e.g. "range
    known on one side"). The default tier is {!Vrp_predict.Heuristics}'
    Ball–Larus combination; {!Vrp_learn.Infer.fallback} builds the learned
    tier of the ladder VRP → learned → Ball–Larus. *)
type fallback_predictor =
  ctx:Vrp_predict.Heuristics.ctx ->
  res:Engine.t option ->
  src:int ->
  Ir.branch ->
  float

(** Branch predictions from (by default interprocedural) VRP.

    Totality guarantee: the map has an entry for every conditional branch of
    the program, whatever happens during analysis — unreachable or demoted
    functions fall back to the fallback tier, and a per-function crash or
    governor trip demotes only that function. With [report], every fallback
    is recorded as a [Fallback_heuristic] diagnostic (warning severity when
    caused by infrastructure degradation).

    [fallback] replaces the Ball–Larus fallback tier (default) on every
    gap VRP leaves — ordinary ⊥-range fallbacks included.

    [groups], [run_tasks] and [analyze_fn] are the interprocedural driver's
    scheduling and memoization seams (see {!Interproc.analyze}); the
    defaults are sequential, uncached analysis. *)
val vrp_predictions :
  ?config:Engine.config ->
  ?interprocedural:bool ->
  ?report:Diag.report ->
  ?groups:string list list ->
  ?run_tasks:Interproc.runner ->
  ?analyze_fn:Interproc.analyze_fn ->
  ?fallback:fallback_predictor ->
  Ir.program ->
  Predictor.prediction * Interproc.t option

(** The predictors of the paper's Figures 7/8, keyed by legend name.
    [train] is the profiling predictor's training profile; [report] collects
    diagnostics from the full-VRP run, and [config] (default
    {!Engine.default_config}) applies to that run only — "vrp-sym1"
    (symbolic ranges without the v2 sum-of-products algebra) and
    "vrp-numeric" stay the fixed ablations of the paper-§5
    numeric-vs-symbolic-v1-vs-v2 comparison. With [fallback], a
    "vrp+learned" column (the full-VRP run with the learned fallback tier)
    appears right after "vrp". *)
val all_predictors :
  ?report:Diag.report ->
  ?config:Engine.config ->
  ?fallback:fallback_predictor ->
  train:Vrp_profile.Interp.profile ->
  Ir.program ->
  (string * Predictor.prediction) list
