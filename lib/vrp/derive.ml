(** Loop-carried expression derivation (paper §3.6).

    A loop-carried φ-function is one with a back-edge predecessor. Executing
    the loop during propagation would make the analysis as slow as the
    program, so the derivation step matches the φ's SSA chain against the
    induction template

    {v new value = old value ± {set of possible increments}
       assert (new value between specific bounds) v}

    and, on a match, produces the φ's whole value range directly: initial
    value, stride = gcd of the increments, and final value derived from the
    loop's termination assertion (including the first {e failing} value,
    which is what the header φ sees — Figure 4 gives [x1 = 1[0:10:1]] for a
    [< 10] loop). Bounds may be numeric, loop-invariant variables (symbolic
    ranges) or variables with known numeric ranges; in the latter case the
    derivation records the dependency so the engine re-derives when the
    bound's range changes. *)

module Ast = Vrp_lang.Ast
module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Loops = Vrp_ir.Loops
module Sym = Vrp_ranges.Sym
module Value = Vrp_ranges.Value
module Srange = Vrp_ranges.Srange
module Progression = Vrp_ranges.Progression

type outcome = {
  value : Value.t;
  depends : Var.t list;
      (** variables whose value the derivation consulted; the engine
          re-derives when any of them changes *)
  even_distribution : bool;
      (** additive inductions visit their range uniformly; geometric ones do
          not ("uneven distributions must be represented by multiple
          ranges", §3.4) — branches on uneven φs should fall back to
          heuristics rather than trust the even-distribution assumption *)
}

(* A backward trace from the latch operand to the φ:
   latch value = φ + inc, subject to the [constraints] collected from
   assertions along the way, where a constraint (rel, bound, at_inc) means
   (φ + at_inc) rel bound held. [scale] supports the multiplicative template
   (paper §3.6: "adding more templates ... reduces the need for brute force
   propagation"): latch value = φ * scale + inc; only pure scalings
   (inc = 0, scale > 1) are derived geometrically. *)
type path = { inc : int; scale : int; constraints : (Ast.relop * Ir.operand * int) list }

exception No_match

let max_trace_depth = 64

(* Definition site of an SSA variable, if any (parameters have none). *)
let def_of (defs : (int, Ir.rhs) Hashtbl.t) (v : Var.t) = Hashtbl.find_opt defs v.Var.id

let build_defs (fn : Ir.fn) : (int, Ir.rhs) Hashtbl.t =
  let defs = Hashtbl.create 64 in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Def (v, rhs) -> Hashtbl.replace defs v.Var.id rhs
          | Ir.Store _ -> ())
        b.Ir.instrs);
  defs

(* Trace [u] back to [phi_var]; returns all paths. *)
let trace_paths defs ~(phi_var : Var.t) (start : Ir.operand) : path list =
  let rec go op depth (seen : int list) : path list =
    if depth > max_trace_depth then raise No_match;
    match op with
    | Ir.Cint _ | Ir.Cfloat _ -> raise No_match
    | Ir.Ovar u ->
      if Var.equal u phi_var then [ { inc = 0; scale = 1; constraints = [] } ]
      else if List.mem u.Var.id seen then raise No_match
      else begin
        let seen = u.Var.id :: seen in
        match def_of defs u with
        | None -> raise No_match
        | Some rhs -> (
          match rhs with
          | Ir.Op (Ir.Ovar w) -> go (Ir.Ovar w) (depth + 1) seen
          | Ir.Assertion { parent; arel; abound } ->
            go (Ir.Ovar parent) (depth + 1) seen
            |> List.map (fun p ->
                   (* only record the constraint when it applies to the φ
                      itself (unscaled) or at a pure additive offset *)
                   if p.scale = 1 then
                     { p with constraints = (arel, abound, p.inc) :: p.constraints }
                   else p)
          | Ir.Binop (Ast.Add, Ir.Ovar w, Ir.Cint c)
          | Ir.Binop (Ast.Add, Ir.Cint c, Ir.Ovar w) ->
            go (Ir.Ovar w) (depth + 1) seen
            |> List.map (fun p -> { p with inc = p.inc + c })
          | Ir.Binop (Ast.Sub, Ir.Ovar w, Ir.Cint c) ->
            go (Ir.Ovar w) (depth + 1) seen
            |> List.map (fun p -> { p with inc = p.inc - c })
          | Ir.Binop (Ast.Mul, Ir.Ovar w, Ir.Cint c)
          | Ir.Binop (Ast.Mul, Ir.Cint c, Ir.Ovar w) when c > 1 ->
            go (Ir.Ovar w) (depth + 1) seen
            |> List.map (fun p -> { p with scale = p.scale * c; inc = p.inc * c })
          | Ir.Binop (Ast.Shl, Ir.Ovar w, Ir.Cint c) when c >= 1 && c <= 30 ->
            go (Ir.Ovar w) (depth + 1) seen
            |> List.map (fun p -> { p with scale = p.scale lsl c; inc = p.inc lsl c })
          | Ir.Phi args -> List.concat_map (fun (_, arg) -> go arg (depth + 1) seen) args
          | Ir.Op _ | Ir.Binop _ | Ir.Unop _ | Ir.Cmp _ | Ir.Load _ | Ir.Call _ ->
            raise No_match)
      end
  in
  go start 0 []

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* A usable loop bound: symbolic or numeric, plus dependencies. *)
type bound = { bsym : Sym.t; bdeps : Var.t list }

(** Per-function context, built once and reused across derivation attempts
    (keeping each attempt O(chain length), which the linearity figures rely
    on). *)
type ctx = {
  cfn : Ir.fn;
  cloops : Loops.t;
  cdefs : (int, Ir.rhs) Hashtbl.t;
  cdef_block : (int, int) Hashtbl.t;  (** var id -> defining block *)
}

let make_ctx (fn : Ir.fn) (loops : Loops.t) : ctx =
  let cdef_block = Hashtbl.create 64 in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Def (v, _) -> Hashtbl.replace cdef_block v.Var.id b.Ir.bid
          | Ir.Store _ -> ())
        b.Ir.instrs);
  { cfn = fn; cloops = loops; cdefs = build_defs fn; cdef_block }

(** Attempt to derive the value range of the loop-carried φ [phi_var] with
    arguments [args] in block [phi_bid].

    [values] supplies current variable values; [symbolic] enables symbolic
    bounds. Returns [None] when the chain does not match the template. *)
let attempt ~(ctx : ctx) ~(values : Var.t -> Value.t) ~(symbolic : bool)
    ~(phi_bid : int) ~(phi_var : Var.t) ~(args : (int * Ir.operand) list) :
    outcome option =
  let loops = ctx.cloops in
  let defs = ctx.cdefs in
  let back, entry =
    List.partition (fun (pred, _) -> Loops.is_back_edge loops ~src:pred ~dst:phi_bid) args
  in
  if back = [] || entry = [] then None
  else begin
    try
      (* Initial value: all entry arguments must agree on one singleton. *)
      let init_syms =
        List.map
          (fun (_, op) ->
            match op with
            | Ir.Cint n -> Sym.num n
            | Ir.Cfloat _ -> raise No_match
            | Ir.Ovar v -> (
              match values v with
              | Value.Ranges [ r ] when Srange.is_singleton r -> r.Srange.lo
              | Value.Bottom when symbolic -> Sym.of_var v
              | Value.Top -> raise No_match
              | Value.Ranges _ | Value.Bottom -> raise No_match))
          entry
      in
      let init =
        match init_syms with
        | [] -> raise No_match
        | s :: rest ->
          if List.for_all (Sym.equal s) rest then s else raise No_match
      in
      (* Increment paths from every latch. *)
      let paths =
        List.concat_map (fun (_, op) -> trace_paths defs ~phi_var op) back
      in
      let pure_additive = List.for_all (fun p -> p.scale = 1) paths in
      let pure_multiplicative =
        List.for_all (fun p -> p.scale > 1 && p.inc = 0) paths
      in
      if not (pure_additive || pure_multiplicative) then raise No_match;
      let incs = List.map (fun p -> p.inc) paths in
      if pure_additive && List.exists (fun i -> i = 0) incs then raise No_match;
      let up =
        pure_multiplicative || List.for_all (fun i -> i > 0) incs
      in
      let down = pure_additive && List.for_all (fun i -> i < 0) incs in
      if not (up || down) then raise No_match;
      let g = List.fold_left (fun acc i -> gcd acc i) 0 incs in
      let g = abs g in
      let max_mag = List.fold_left (fun acc i -> max acc (abs i)) 0 incs in
      let max_scale =
        List.fold_left (fun acc p -> max acc p.scale) 1 paths
      in
      (* Loop-invariance: the bound's definition must lie outside the loop. *)
      let loop_body =
        match Loops.innermost loops phi_bid with
        | Some l -> l.Loops.body
        | None -> raise No_match
      in
      let invariant (v : Var.t) =
        match Hashtbl.find_opt ctx.cdef_block v.Var.id with
        | None -> true (* parameter *)
        | Some bid -> not (Loops.IntSet.mem bid loop_body)
      in
      (* Loop-variant bound variables are often just in-loop assertion
         copies of an invariant ancestor (the branch assertion renames both
         operands); chase the copy/assertion chain out of the loop. *)
      let rec invariant_ancestor (w : Var.t) depth (seen : int list) : Var.t =
        if depth > max_trace_depth || invariant w || List.mem w.Var.id seen then w
        else begin
          let seen = w.Var.id :: seen in
          match def_of defs w with
          | Some (Ir.Assertion { parent; _ }) -> invariant_ancestor parent (depth + 1) seen
          | Some (Ir.Op (Ir.Ovar u)) -> invariant_ancestor u (depth + 1) seen
          | Some (Ir.Phi args) -> (
            (* a header φ whose arguments all chase to one ancestor; chains
               that cycle back to the φ itself are self-references and are
               ignored *)
            let ancestors =
              List.filter_map
                (fun (_, arg) ->
                  match arg with
                  | Ir.Ovar u ->
                    let a = invariant_ancestor u (depth + 1) seen in
                    if List.mem a.Var.id seen then None else Some a
                  | Ir.Cint _ | Ir.Cfloat _ -> Some w)
                args
            in
            match ancestors with
            | a :: rest when List.for_all (Var.equal a) rest && invariant a -> a
            | _ -> w)
          | _ -> w
        end
      in
      let invariant_ancestor w depth = invariant_ancestor w depth [] in
      (* Resolve a constraint's bound operand to a Sym plus dependencies. *)
      let resolve_bound (op : Ir.operand) : bound option =
        match op with
        | Ir.Cint n -> Some { bsym = Sym.num n; bdeps = [] }
        | Ir.Cfloat _ -> None
        | Ir.Ovar w -> (
          (* An exactly-known bound is invariant by value and gives a
             countable derived range; any other bound must stay symbolic —
             the counter's range is correlated with the bound, so
             substituting a numeric hull would poison the loop branch's
             probability. *)
          match values w with
          | Value.Ranges [ r ] when Srange.is_numeric r && Srange.is_singleton r ->
            Some { bsym = Sym.num r.Srange.lo.Sym.off; bdeps = [ w ] }
          | Value.Top -> None
          | Value.Ranges _ | Value.Bottom ->
            if not symbolic then None
            else begin
              let w' = invariant_ancestor w 0 in
              if invariant w' then Some { bsym = Sym.of_var w'; bdeps = [ w; w' ] }
              else None
            end)
      in
      (* Find a termination constraint in the right direction. Only
         constraints present on EVERY latch path qualify: a path-specific
         assertion (e.g. the else-arm's [x <= 7]) bounds only that path, not
         the φ's next value. *)
      let common_constraints =
        match paths with
        | [] -> []
        | first :: rest ->
          List.filter
            (fun c -> List.for_all (fun p -> List.mem c p.constraints) rest)
            first.constraints
      in
      let candidates =
        List.filter_map
          (fun (rel, bop, at_inc) ->
            let usable =
              (* Ne termination tests (while (x != U)) behave like inclusive
                 bounds in the travel direction: the φ's last value is U. *)
              if up then rel = Ast.Lt || rel = Ast.Le || rel = Ast.Ne
              else rel = Ast.Gt || rel = Ast.Ge || rel = Ast.Ne
            in
            if not usable then None
            else
                Option.bind (resolve_bound bop) (fun b ->
                  (* constraint was on (φ + at_inc): shift the bound *)
                  let adjusted = Sym.add_const b.bsym (-at_inc) in
                  if pure_multiplicative then begin
                    (* geometric: first failing value f = v_prev * s with
                       v_prev within the bound, so f <= bound * max_scale
                       (minus one for strict bounds) *)
                    match adjusted.Sym.base with
                    | None ->
                      let u = adjusted.Sym.off in
                      let final =
                        if rel = Ast.Le then u * max_scale else (u * max_scale) - 1
                      in
                      if abs final > Sym.limit then None
                      else Some (Sym.num final, b.bdeps)
                    | Some _ -> None (* bound * variable is not representable *)
                  end
                  else if rel = Ast.Ne then begin
                    (* An Ne test behaves like an inclusive bound only when
                       the progression actually lands on it: init ≡ bound
                       (mod g) with comparable bases. A mis-phased Ne — an
                       inner [if (x == c)] whose c the counter steps over,
                       or a [while (x != U)] that never hits U — excludes
                       one point but bounds nothing. *)
                    if
                      Sym.same_base adjusted init
                      && (adjusted.Sym.off - init.Sym.off) mod g = 0
                    then Some (adjusted, b.bdeps)
                    else None
                  end
                  else begin
                    (* additive: overshoot at most the max increment
                       (inclusive bounds add one step) *)
                    let slack =
                      match rel with
                      | Ast.Le | Ast.Ge -> max_mag
                      | _ -> max_mag - 1
                    in
                    let final =
                      if up then Sym.add_const adjusted slack
                      else Sym.add_const adjusted (-slack)
                    in
                    Some (final, b.bdeps)
                  end))
          common_constraints
      in
      match candidates with
      | [] -> None
      | _ :: _ ->
        (* Use the tightest mutually-comparable bound. *)
        let final, deps =
          List.fold_left
            (fun (best, deps) (cand, cdeps) ->
              match (if up then Sym.min_sym best cand else Sym.max_sym best cand) with
              | Some tighter ->
                (tighter, if Sym.equal tighter best then deps else cdeps)
              | None -> (best, deps))
            (let f, d = List.hd candidates in
             (f, d))
            (List.tl candidates)
        in
        (* Geometric derivation needs a positive numeric start; its values
           k, k*s, k*s², ... are all multiples of k, so stride = k is the
           tightest sound alignment for the hull. *)
        let g =
          if pure_multiplicative then begin
            match init.Sym.base with
            | None when init.Sym.off >= 1 -> init.Sym.off
            | _ -> raise No_match
          end
          else g
        in
        (* Anchor the progression's phase at the initial value: the φ's
           values are init ± k·g, and membership is decided relative to the
           range's lo, so the far endpoint must be congruent to init mod g.
           Anchoring at the raw overshoot bound would phase-shift every
           element (a countdown from 9 by 3 under [> 0] would claim
           {-2,1,4,7} and exclude the actual {0,3,6,9}). Down-loops align
           the loose lower end up; up-loops align the loose upper end down
           (a strict tightening, since real values are init + k·g). *)
        let final =
          if g > 1 && Sym.same_base final init then begin
            if down then
              let shift = (((init.Sym.off - final.Sym.off) mod g) + g) mod g in
              Sym.add_const final shift
            else
              let shift = (((final.Sym.off - init.Sym.off) mod g) + g) mod g in
              Sym.add_const final (-shift)
          end
          else final
        in
        let lo = if up then init else final and hi = if up then final else init in
        let value =
          match Sym.cmp lo hi with
          | Some c when c > 0 ->
            (* statically zero-trip loop: the φ only ever sees the initial
               value *)
            Value.of_ranges [ Srange.singleton ~p:1.0 init ]
          | Some _ -> (
            match Srange.make ~p:1.0 ~lo ~hi ~stride:g with
            | Some r -> Value.of_ranges [ r ]
            | None -> raise No_match)
          | None -> (
            (* Mixed bounds (numeric init, symbolic bound): keep the
               zero-trip initial value as its own range so the union is
               sound even when the loop never runs. *)
            let first = if up then Sym.add_const init g else Sym.add_const init (-g) in
            let body =
              Srange.make ~p:0.9 ~lo:(if up then first else hi)
                ~hi:(if up then hi else first) ~stride:g
            in
            match body with
            | Some r -> Value.of_ranges [ Srange.singleton ~p:0.1 init; r ]
            | None -> Value.of_ranges [ Srange.singleton ~p:1.0 init ])
        in
        let entry_deps =
          List.filter_map (fun (_, op) -> Ir.operand_var op) entry
        in
        Some
          {
            value;
            depends = List.sort_uniq Var.compare (deps @ entry_deps);
            even_distribution = pure_additive;
          }
    with No_match -> None
  end
