(** The value range propagation engine (paper §3.3).

    A sparse forward propagator in the style of Wegman–Zadeck conditional
    constant propagation, generalised to weighted value ranges. Two
    worklists are maintained — the FlowWorkList of CFG edges and the
    SSAWorkList of def–use edges — and drained until a fixed point:

    1. visiting a block for the first time evaluates every expression in
       it; later visits re-evaluate only the φ-functions;
    2. a changed definition enqueues its SSA out-edges;
    3. loop-carried φ-functions are matched against induction templates
       ({!Derive}) instead of being iterated;
    4. a conditional branch is predicted from the value range of the tested
       variable; its out-edges carry the resulting probabilities, and edges
       with probability 0 stay unexecuted (unreachable-code detection, as in
       SCCP);
    5. branches whose range is ⊥ fall back to the Ball–Larus heuristics
       (§5), or to 50/50 when heuristics are disabled.

    Termination: the paper's argument is the finite range budget; because
    probabilities fluctuate non-monotonically we add a per-variable
    evaluation quota after which a value widens to ⊥ (a documented
    safety-valve; see DESIGN.md). φ merge weights follow footnote 1: the
    in-edge weight is the predecessor's relative frequency — computed
    acyclically by ignoring back edges — times the edge's conditional
    probability. *)

module Ast = Vrp_lang.Ast
module Ir = Vrp_ir.Ir
module Var = Vrp_ir.Var
module Loops = Vrp_ir.Loops
module Value = Vrp_ranges.Value
module Config = Vrp_ranges.Config
module Counters = Vrp_ranges.Counters
module Heuristics = Vrp_predict.Heuristics
module Diag = Vrp_diag.Diag

type fallback = Heuristic | Even

type config = {
  symbolic : bool;  (** track symbolic ranges (paper's full configuration) *)
  use_assertions : bool;  (** narrow through branch assertions *)
  use_derivation : bool;  (** derive loop-carried φs instead of iterating *)
  algebra : bool;
      (** symbolic algebra v2: build a per-function {!Alg} fact context
          (sum-of-products equations + scoped assertion facts) and run a
          post-fixpoint pass that upgrades fallback branches to proved
          one-way predictions. The fixpoint itself never consults the facts
          — the trajectory and final ranges are byte-identical to v1, so v2
          strictly adds proofs. Only effective with [symbolic] *)
  eval_quota : int;
      (** per-variable value {e changes} before widening to ⊥. Implements
          the paper's §4 observation operationally: ranges that keep
          changing are the "problematic" loop-carried ones that "quickly
          become ⊥"; a small quota lets tiny loops enumerate exactly while
          cutting runaway iteration *)
  trip_prior : float;
      (** assumed relative frequency of a loop back edge versus loop entry
          when merging at a loop-header φ; the classical ~10-iterations
          prior. Without it the loop-exit value gets half the φ's mass and
          loop-variable distributions are badly biased *)
  flow_first : bool;  (** prefer the FlowWorkList (paper §3.3 step 2) *)
  fallback : fallback;
  fuel : int option;
      (** explicit worklist-step budget; [None] derives one from function
          size. Exhaustion is never silent: it is flagged in the result
          record and surfaced as a {!Diag.Budget_exhausted} diagnostic *)
  time_limit_s : float option;
      (** wall-clock governor: stop draining (keeping partial results) once
          the analysis of this function has run this many seconds *)
  max_growth : int;
      (** per-variable range-set growth cap: a value whose range set grows
          past this many ranges is widened to ⊥ (backstop behind
          {!Vrp_ranges.Config.max_ranges}, which ablation sweeps can raise) *)
  fault : Diag.Fault.t option;
      (** deterministic fault injection for tests and the hidden CLI flag *)
  cancel : Diag.Cancel.token option;
      (** supervision hook: the engine beats the token once per worklist
          step and raises {!Diag.Cancel.Cancelled} when it was cancelled
          (a supervisor's deadline tripped). Non-semantic — deliberately
          excluded from the cache's configuration digest *)
}

let default_config =
  {
    symbolic = true;
    use_assertions = true;
    use_derivation = true;
    algebra = true;
    eval_quota = 12;
    trip_prior = 10.0;
    flow_first = true;
    fallback = Heuristic;
    fuel = None;
    time_limit_s = None;
    max_growth = 32;
    fault = None;
    cancel = None;
  }

let numeric_only_config = { default_config with symbolic = false }

type site = Instr of int | Term

(** Analysis result for one function. *)
type t = {
  fn : Ir.fn;
  values : Value.t array;  (** final output assignment, indexed by var id *)
  branch_probs : (int, float) Hashtbl.t;  (** block id -> P(true edge) *)
  branch_fallback : (int, bool) Hashtbl.t;  (** did the branch use heuristics *)
  visited : bool array;  (** executable blocks *)
  evaluations : int;  (** expression evaluations (Figure 5 metric) *)
  calls_seen : ((int * int) * (string * Value.t list)) list;
      (** executable call sites (block, index) with latest argument values *)
  return_value : Value.t;  (** merged over executable returns *)
  fuel_limit : int;  (** the step budget this run was given *)
  fuel_spent : int;  (** worklist steps actually taken *)
  fuel_exhausted : bool;  (** ran out of fuel before the fixed point *)
  timed_out : bool;  (** the wall-clock governor tripped *)
  widenings : int;  (** values forcibly widened to ⊥ (quota / growth cap) *)
}

let value t (v : Var.t) = t.values.(v.Var.id)

let branch_prob t bid = Hashtbl.find_opt t.branch_probs bid

let used_fallback t bid = Option.value ~default:false (Hashtbl.find_opt t.branch_fallback bid)

(* --- Internal analysis state --- *)

type state = {
  cfg : config;
  sfn : Ir.fn;
  loops : Loops.t;
  hctx : Heuristics.ctx;
  dctx : Derive.ctx;
  vals : Value.t array;
  uses : (int, (int * site) list) Hashtbl.t;  (** var id -> use sites *)
  extra_uses : (int, (int * site) list ref) Hashtbl.t;  (** derivation deps *)
  def_site : (int, int * site) Hashtbl.t;  (** var id -> definition site *)
  svisited : bool array;
  edge_prob : (int * int, float) Hashtbl.t;  (** conditional edge probability *)
  edge_exec : (int * int, bool) Hashtbl.t;
  bprobs : (int, float) Hashtbl.t;
  bfallback : (int, bool) Hashtbl.t;
  freq : float array;  (** acyclic relative frequencies *)
  mutable freq_dirty : bool;
  flow_list : (int * int) Queue.t;
  ssa_list : (int * site) Queue.t;  (** target block and site to re-evaluate *)
  eval_counts : int array;  (** per-variable quota accounting *)
  mutable evals : int;
  mutable derived : (int, Value.t) Hashtbl.t;  (** derived φ variables *)
  uneven : (int, unit) Hashtbl.t;
      (** φs whose derived range hull is sound but unevenly visited
          (geometric inductions): branches on them use heuristics *)
  calls : (int * int, string * Value.t list) Hashtbl.t;
  call_oracle : string -> Value.t list -> Value.t;
  assert_root : (int, Var.t) Hashtbl.t;  (** memoised assertion-chain roots *)
  report : Diag.report option;  (** structured diagnostics sink, if any *)
  mutable widenings : int;  (** forced widenings this run *)
}

let diag st ?block severity kind message =
  match st.report with
  | Some r -> Diag.add r ~fn:st.sfn.Ir.fname ?block severity kind message
  | None -> ()

let edge_probability st e = Option.value ~default:0.0 (Hashtbl.find_opt st.edge_prob e)

let edge_executable st e = Option.value ~default:false (Hashtbl.find_opt st.edge_exec e)

(* Relative block frequencies ignoring back edges (one RPO pass). Loop back
   edges contribute no mass, so a join's in-edge weights are frequencies
   relative to the enclosing region — exactly what normalised φ merging
   needs (common outer factors cancel). *)
let recompute_freq st =
  let fn = st.sfn in
  let order =
    Vrp_ir.Dom.reverse_postorder ~nblocks:(Ir.num_blocks fn)
      ~succs:(fun bid -> Ir.successors (Ir.block fn bid).Ir.term)
      ~root:Ir.entry_bid
  in
  Array.fill st.freq 0 (Array.length st.freq) 0.0;
  st.freq.(Ir.entry_bid) <- 1.0;
  Array.iter
    (fun bid ->
      let b = Ir.block fn bid in
      let f = st.freq.(bid) in
      if f > 0.0 && st.svisited.(bid) then
        List.iter
          (fun succ ->
            if not (Loops.is_back_edge st.loops ~src:bid ~dst:succ) then
              st.freq.(succ) <-
                st.freq.(succ) +. (f *. edge_probability st (bid, succ)))
          (Ir.successors b.Ir.term))
    order;
  st.freq_dirty <- false

(* Assertion-parent chain of a variable, starting with itself: used for the
   paper's special φ rule (§3.8 note: merging assertion-derived variables of
   a common parent yields the parent's range). *)
let assert_chain st (v : Var.t) : Var.t list =
  let rec go (v : Var.t) acc depth =
    if depth > 64 then List.rev acc
    else begin
      match Hashtbl.find_opt st.def_site v.Var.id with
      | Some (bid, Instr idx) -> (
        match List.nth_opt (Ir.block st.sfn bid).Ir.instrs idx with
        | Some (Ir.Def (_, Ir.Assertion { parent; _ })) ->
          go parent (parent :: acc) (depth + 1)
        | _ -> List.rev acc)
      | Some (_, Term) | None -> List.rev acc
    end
  in
  go v [ v ] 0

(* Nearest common assertion ancestor of the φ arguments, when all arguments
   are (transitive) assertion children of it. [phi_var] is the φ's own
   definition: arguments whose assertion chain passes through it are
   {e self-refinements} (narrowed copies of the φ flowing around a loop);
   they carry no new information and are ignored, so a loop-invariant
   variable that branch assertions re-version inside the loop keeps its
   entry value instead of oscillating to ⊥. *)
let nearest_common_ancestor st ~(phi_var : Var.t) (vars : Var.t list) : Var.t option =
  let chains = List.map (fun v -> (v, assert_chain st v)) vars in
  let external_chains, self_refs =
    List.partition
      (fun (_, chain) ->
        not (List.exists (fun (a : Var.t) -> Var.equal a phi_var) chain))
      chains
  in
  match external_chains with
  | [] -> None
  | (first, first_chain) :: rest ->
    let candidate =
      List.find_opt
        (fun (a : Var.t) ->
          List.for_all
            (fun (_, chain) -> List.exists (fun (b : Var.t) -> Var.equal a b) chain)
            rest)
        first_chain
    in
    (* Require the rule to actually do something: either a self-refinement
       was dropped, or some argument strictly narrows the ancestor. *)
    (match candidate with
    | Some a
      when self_refs <> []
           || List.exists (fun v -> not (Var.equal v a)) (first :: List.map fst rest) ->
      Some a
    | Some _ | None -> None)

(* Value of an operand; [symbolic_copy] controls whether a ⊥ variable is
   represented as a symbolic copy of itself (the paper's symbolic ranges). *)
let operand_value st ~symbolic_copy (op : Ir.operand) : Value.t =
  match op with
  | Ir.Cint n -> Value.const_int n
  | Ir.Cfloat _ -> Value.bottom
  | Ir.Ovar v -> (
    match st.vals.(v.Var.id) with
    | Value.Bottom when symbolic_copy && st.cfg.symbolic && v.Var.ty = Ast.Tint ->
      Value.copy_of_var v
    | value -> value)

let lookup_value st (v : Var.t) = st.vals.(v.Var.id)

(* Resolve symbolic bases against current values (one level). Probability
   queries must only substitute exactly-known bases: a derived loop range
   [0:n:1] is correlated with n, and an independent-uniform comparison of
   the two would badly mispredict the loop branch (see Value.subst_bound). *)
let resolve st (v : Value.t) : Value.t =
  Value.subst ~only_singleton:true v ~lookup:(lookup_value st)

let enqueue_uses st (v : Var.t) =
  List.iter
    (fun site -> Queue.add site st.ssa_list)
    (Option.value ~default:[] (Hashtbl.find_opt st.uses v.Var.id));
  match Hashtbl.find_opt st.extra_uses v.Var.id with
  | Some sites -> List.iter (fun site -> Queue.add site st.ssa_list) !sites
  | None -> ()

let register_extra_use st (dep : Var.t) site =
  let sites =
    match Hashtbl.find_opt st.extra_uses dep.Var.id with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace st.extra_uses dep.Var.id r;
      r
  in
  if not (List.mem site !sites) then sites := site :: !sites

(* Record a new value for [v]; returns true when it changed. The quota
   counts *changes*: a value that keeps moving is a non-inductive
   loop-carried range and is widened to ⊥ (after which it never changes
   again), guaranteeing termination. Forced widenings — quota or range-set
   growth cap — are counted and reported instead of happening silently. *)
let set_value st (v : Var.t) (value : Value.t) : bool =
  let vid = v.Var.id in
  if Value.equal st.vals.(vid) value then false
  else begin
    st.eval_counts.(vid) <- st.eval_counts.(vid) + 1;
    let widen reason =
      st.widenings <- st.widenings + 1;
      Vrp_ranges.Counters.record_widening ();
      let block =
        match Hashtbl.find_opt st.def_site vid with
        | Some (bid, _) -> Some bid
        | None -> None
      in
      diag st ?block Diag.Info Diag.Widened
        (Printf.sprintf "%s widened to ⊥: %s" (Var.to_string v) reason);
      Value.bottom
    in
    let value =
      if st.eval_counts.(vid) > st.cfg.eval_quota then begin
        if Value.is_bottom value then value
        else
          widen
            (Printf.sprintf "exceeded the %d-change evaluation quota"
               st.cfg.eval_quota)
      end
      else
        match value with
        | Value.Ranges rs when List.length rs > st.cfg.max_growth ->
          widen
            (Printf.sprintf "range set grew to %d ranges (cap %d)"
               (List.length rs) st.cfg.max_growth)
        | Value.Top | Value.Bottom | Value.Ranges _ -> value
    in
    if Value.equal st.vals.(vid) value then false
    else begin
      st.vals.(vid) <- value;
      enqueue_uses st v;
      true
    end
  end

let record_eval st =
  st.evals <- st.evals + 1;
  Counters.record_evaluation ()

(* --- Expression evaluation --- *)

let eval_phi st ~bid (v : Var.t) (args : (int * Ir.operand) list) : Value.t =
  (* Paper §3.8 note: merging assertion-derived variables of one parent (or
     a parent with its own assertion children) yields the parent's range. *)
  let exec_args =
    List.filter (fun (pred, _) -> edge_executable st (pred, bid)) args
  in
  if exec_args = [] then Value.top
  else begin
    let arg_vars =
      List.filter_map
        (fun (_, op) -> match op with Ir.Ovar u -> Some u | Ir.Cint _ | Ir.Cfloat _ -> None)
        exec_args
    in
    let common_root =
      if List.length arg_vars = List.length exec_args then
        nearest_common_ancestor st ~phi_var:v arg_vars
      else None
    in
    match common_root with
    | Some root -> operand_value st ~symbolic_copy:true (Ir.Ovar root)
    | None ->
      if st.freq_dirty then recompute_freq st;
      let parts =
        List.map
          (fun (pred, op) ->
            let base = st.freq.(pred) *. edge_probability st (pred, bid) in
            let w =
              if Loops.is_back_edge st.loops ~src:pred ~dst:bid then begin
                (* the back edge fires once per iteration: weight it by the
                   trip-count prior relative to the loop-entry mass *)
                let latch_mass =
                  if base > 0.0 then base
                  else Float.max st.freq.(pred) (edge_probability st (pred, bid))
                in
                st.cfg.trip_prior *. latch_mass
              end
              else base
            in
            (w, operand_value st ~symbolic_copy:false op))
          exec_args
      in
      ignore v;
      Value.union_weighted parts
  end

let eval_rhs st ~bid ~site (v : Var.t) (rhs : Ir.rhs) : Value.t =
  match rhs with
  | Ir.Op op -> operand_value st ~symbolic_copy:true op
  | Ir.Binop (op, a, b) ->
    if v.Var.ty = Ast.Tfloat && (op = Ast.Div || op = Ast.Mod) then Value.bottom
    else begin
      let va = operand_value st ~symbolic_copy:true a in
      let vb = operand_value st ~symbolic_copy:true b in
      Value.binop op va vb
    end
  | Ir.Unop (op, a) -> Value.unop op (operand_value st ~symbolic_copy:false a)
  | Ir.Cmp (rel, a, b) ->
    let va = resolve st (operand_value st ~symbolic_copy:true a) in
    let vb = resolve st (operand_value st ~symbolic_copy:true b) in
    Value.cmp_value rel va vb
  | Ir.Load _ -> Value.bottom  (* memory is opaque without alias analysis (§3.5) *)
  | Ir.Call (name, args) ->
    (* Argument ranges cross a function boundary: resolve symbolic bases
       against current values, then drop anything still symbolic — a
       caller's SSA names mean nothing inside the callee. *)
    let arg_values =
      List.map
        (fun a ->
          Value.purely_numeric (resolve st (operand_value st ~symbolic_copy:false a)))
        args
    in
    let key = match site with Instr idx -> (bid, idx) | Term -> (bid, -1) in
    Hashtbl.replace st.calls key (name, arg_values);
    st.call_oracle name arg_values
  | Ir.Phi args -> eval_phi st ~bid v args
  | Ir.Assertion { parent; arel; abound } ->
    let pv = operand_value st ~symbolic_copy:true (Ir.Ovar parent) in
    if not st.cfg.use_assertions then pv
    else begin
      (* Singleton-resolve the bound: an exactly-known base becomes numeric,
         anything else stays symbolic so same-base narrowing (i < n) keeps
         the relation. *)
      let bv = resolve st (operand_value st ~symbolic_copy:true abound) in
      ignore site;
      Value.assert_narrow pv arel bv
    end

(* Try to derive a loop-carried φ; true = handled (value recorded). *)
let try_derive st ~bid ~site (v : Var.t) (args : (int * Ir.operand) list) : bool =
  if not st.cfg.use_derivation then false
  else begin
    let has_back =
      List.exists (fun (pred, _) -> Loops.is_back_edge st.loops ~src:pred ~dst:bid) args
    in
    if not has_back then false
    else begin
      match
        Derive.attempt ~ctx:st.dctx ~values:(lookup_value st) ~symbolic:st.cfg.symbolic
          ~phi_bid:bid ~phi_var:v ~args
      with
      | Some { value; depends; even_distribution } ->
        List.iter (fun dep -> register_extra_use st dep (bid, site)) depends;
        Hashtbl.replace st.derived v.Var.id value;
        if even_distribution then Hashtbl.remove st.uneven v.Var.id
        else Hashtbl.replace st.uneven v.Var.id ();
        record_eval st;
        ignore (set_value st v value);
        true
      | None ->
        Hashtbl.remove st.derived v.Var.id;
        false
    end
  end

let eval_instr st ~bid ~idx (instr : Ir.instr) =
  match instr with
  | Ir.Store _ -> ()
  | Ir.Def (v, rhs) ->
    let handled =
      match rhs with
      | Ir.Phi args -> try_derive st ~bid ~site:(Instr idx) v args
      | _ -> false
    in
    if not handled then begin
      record_eval st;
      let value = eval_rhs st ~bid ~site:(Instr idx) v rhs in
      ignore (set_value st v value)
    end

(* Step 7: predict the branch from the tested variable's range and mark the
   out-edges. *)
let eval_term st ~bid (term : Ir.term) =
  match term with
  | Ir.Jump dst ->
    if edge_probability st (bid, dst) <> 1.0 then begin
      Hashtbl.replace st.edge_prob (bid, dst) 1.0;
      st.freq_dirty <- true
    end;
    if not (edge_executable st (bid, dst)) then Queue.add (bid, dst) st.flow_list
  | Ir.Ret _ -> ()
  | Ir.Br { rel; ba; bb; tdst; fdst } ->
    record_eval st;
    let va = resolve st (operand_value st ~symbolic_copy:true ba) in
    let vb = resolve st (operand_value st ~symbolic_copy:true bb) in
    (* A branch on an unevenly-distributed derived range (geometric
       induction) must not trust the even-distribution assumption. *)
    let uneven_operand op =
      match Ir.operand_var op with
      | Some v ->
        List.exists
          (fun (a : Var.t) -> Hashtbl.mem st.uneven a.Var.id)
          (assert_chain st v)
      | None -> false
    in
    let prob, fallback =
      match
        (if uneven_operand ba || uneven_operand bb then None
         else Value.cmp_prob rel va vb)
      with
      | Some p -> (p, false)
      | None -> (
        match st.cfg.fallback with
        | Heuristic ->
          (Heuristics.ball_larus st.hctx ~src:bid { rel; ba; bb; tdst; fdst }, true)
        | Even -> (0.5, true))
    in
    Hashtbl.replace st.bprobs bid prob;
    Hashtbl.replace st.bfallback bid fallback;
    let update dst p =
      let old = edge_probability st (bid, dst) in
      let first = not (Hashtbl.mem st.edge_prob (bid, dst)) in
      if first || Float.abs (old -. p) > Config.eps then begin
        Hashtbl.replace st.edge_prob (bid, dst) p;
        st.freq_dirty <- true;
        if p > 0.0 then Queue.add (bid, dst) st.flow_list
      end
    in
    update tdst prob;
    update fdst (1.0 -. prob)

let visit_block st bid =
  let blk = Ir.block st.sfn bid in
  if not st.svisited.(bid) then begin
    st.svisited.(bid) <- true;
    st.freq_dirty <- true;
    List.iteri (fun idx instr -> eval_instr st ~bid ~idx instr) blk.Ir.instrs;
    eval_term st ~bid blk.Ir.term
  end
  else
    (* revisit: φ-functions only (step 3) *)
    List.iteri
      (fun idx instr ->
        match instr with
        | Ir.Def (_, Ir.Phi _) -> eval_instr st ~bid ~idx instr
        | Ir.Def _ | Ir.Store _ -> ())
      blk.Ir.instrs

let process_flow_edge st (src, dst) =
  if edge_probability st (src, dst) > 0.0 && st.svisited.(src) then begin
    let first = not (edge_executable st (src, dst)) in
    Hashtbl.replace st.edge_exec (src, dst) true;
    if first || st.svisited.(dst) then visit_block st dst
  end

let process_ssa_site st (bid, site) =
  if st.svisited.(bid) then begin
    match site with
    | Term -> eval_term st ~bid (Ir.block st.sfn bid).Ir.term
    | Instr idx -> (
      match List.nth_opt (Ir.block st.sfn bid).Ir.instrs idx with
      | Some instr -> eval_instr st ~bid ~idx instr
      | None -> ())
  end

(* --- Use lists --- *)

let build_uses (fn : Ir.fn) =
  let uses = Hashtbl.create 64 in
  let def_site = Hashtbl.create 64 in
  let add (v : Var.t) site =
    let cur = Option.value ~default:[] (Hashtbl.find_opt uses v.Var.id) in
    Hashtbl.replace uses v.Var.id (site :: cur)
  in
  Ir.iter_blocks fn (fun b ->
      List.iteri
        (fun idx instr ->
          (match Ir.instr_def instr with
          | Some v -> Hashtbl.replace def_site v.Var.id (b.Ir.bid, Instr idx)
          | None -> ());
          List.iter (fun v -> add v (b.Ir.bid, Instr idx)) (Ir.instr_uses instr))
        b.Ir.instrs;
      List.iter (fun v -> add v (b.Ir.bid, Term)) (Ir.term_uses b.Ir.term));
  (uses, def_site)

(* --- Top-level driver --- *)

(* How much fuel a starved (fault-injected) analysis gets: enough to start,
   never enough to finish a function with a loop. *)
let starvation_fuel = 4

(** Analyse one function. [param_values] are the ranges of the formal
    parameters (⊥ by default, i.e. unknown input); [call_oracle] supplies
    return-value ranges for calls (⊥ by default — the intraprocedural
    setting). [report] collects structured diagnostics; degradation
    (fuel exhaustion, timeout, forced widening) is additionally flagged in
    the result record.
    @raise Diag.Fault.Injected under crash fault injection. *)
let analyze_body ?(config = default_config) ?report
    ?(call_oracle = fun _ _ -> Value.bottom)
    ?(param_values : Value.t list option) (fn : Ir.fn) : t =
  (* Resolve fault injection against this function. *)
  let fname = fn.Ir.fname in
  (match config.fault with
  | Some (Diag.Fault.Crash_fn f) when String.equal f fname ->
    raise (Diag.Fault.Injected (Printf.sprintf "injected crash in %s" fname))
  | Some (Diag.Fault.Flaky_fn (f, k)) when String.equal f fname ->
    (* Transient failure: crash the first [k] attempts, succeed after.
       The attempt number rides on the supervision token, so without a
       retrying supervisor this behaves like a plain crash. *)
    let attempt =
      match config.cancel with Some t -> Diag.Cancel.attempt t | None -> 0
    in
    if attempt < k then
      raise
        (Diag.Fault.Injected
           (Printf.sprintf "injected flaky failure in %s (attempt %d of %d)"
              fname (attempt + 1) k))
  | Some (Diag.Fault.Hang_fn f) when String.equal f fname ->
    (* Simulated hang: the analysis stops making progress and only beats
       its heartbeat. A supervisor's deadline cancellation breaks it out;
       a CPU-time cap bounds the unsupervised case so a misconfigured test
       degrades to a contained crash instead of wedging the run. *)
    let cap = Sys.time () +. 5.0 in
    let rec wedge () =
      (match config.cancel with
      | Some token ->
        Diag.Cancel.beat token;
        Diag.Cancel.check token ~name:fname
      | None -> ());
      if Sys.time () > cap then
        raise
          (Diag.Fault.Injected
             (Printf.sprintf "injected hang in %s exceeded its safety cap" fname));
      Domain.cpu_relax ();
      wedge ()
    in
    wedge ()
  | _ -> ());
  let starved =
    match config.fault with
    | Some (Diag.Fault.Starve_fuel f) -> String.equal f fname
    | _ -> false
  in
  let forced_timeout =
    match config.fault with
    | Some (Diag.Fault.Timeout_fn f) -> String.equal f fname
    | _ -> false
  in
  let trip_after =
    match config.fault with Some (Diag.Fault.Trip_after n) -> Some n | _ -> None
  in
  let loops = Loops.compute fn in
  let uses, def_site = build_uses fn in
  let st =
    {
      cfg = config;
      sfn = fn;
      loops;
      hctx = Heuristics.make_ctx fn;
      dctx = Derive.make_ctx fn loops;
      vals = Array.make fn.Ir.nvars Value.top;
      uses;
      extra_uses = Hashtbl.create 16;
      uneven = Hashtbl.create 8;
      def_site;
      svisited = Array.make (Ir.num_blocks fn) false;
      edge_prob = Hashtbl.create 64;
      edge_exec = Hashtbl.create 64;
      bprobs = Hashtbl.create 16;
      bfallback = Hashtbl.create 16;
      freq = Array.make (Ir.num_blocks fn) 0.0;
      freq_dirty = true;
      flow_list = Queue.create ();
      ssa_list = Queue.create ();
      eval_counts = Array.make fn.Ir.nvars 0;
      evals = 0;
      derived = Hashtbl.create 16;
      calls = Hashtbl.create 16;
      call_oracle;
      assert_root = Hashtbl.create 64;
      report;
      widenings = 0;
    }
  in
  (* The fixpoint below deliberately runs WITHOUT the ambient [Sym] relation
     oracle: installing it mid-run keeps more endpoints symbolic, which
     perturbs the iteration trajectory, trips the growth/widening caps more
     often, and can end with *wider* final ranges than v1 (measured on the
     committed suite). All v2 gains are post-fixpoint passes over converged
     v1-identical ranges — monotone by construction, and byte-identical
     whenever the algebra discovers nothing new. *)
  (* Parameters: supplied ranges, or ⊥ (program input). *)
  let pvals =
    match param_values with
    | Some vs -> vs
    | None -> List.map (fun _ -> Value.bottom) fn.Ir.params
  in
  (try
     List.iter2
       (fun (p : Var.t) v -> st.vals.(p.Var.id) <- Value.purely_numeric v)
       fn.Ir.params pvals
   with Invalid_argument _ -> invalid_arg "Engine.analyze: arity mismatch");
  visit_block st Ir.entry_bid;
  (* Drain the worklists under explicit fuel accounting: every worklist step
     costs one unit of fuel, and running out is flagged — never silent. *)
  let fuel_limit =
    let base =
      match config.fuel with
      | Some n -> max 0 n
      | None -> max 100_000 (200 * Ir.fn_size fn)
    in
    if starved then min base starvation_fuel else base
  in
  let deadline =
    if forced_timeout then Some neg_infinity
    else
      match config.time_limit_s with
      | Some limit -> Some (Sys.time () +. limit)
      | None -> None
  in
  let fuel = ref fuel_limit in
  let exhausted = ref false in
  let timed_out = ref false in
  let take_flow () =
    if Queue.is_empty st.flow_list then false
    else begin
      process_flow_edge st (Queue.pop st.flow_list);
      true
    end
  in
  let take_ssa () =
    if Queue.is_empty st.ssa_list then false
    else begin
      process_ssa_site st (Queue.pop st.ssa_list);
      true
    end
  in
  let stop = ref false in
  while
    (not !stop)
    && not (Queue.is_empty st.flow_list && Queue.is_empty st.ssa_list)
  do
    if !fuel <= 0 then begin
      exhausted := true;
      stop := true
    end
    else if
      match deadline with Some d -> Sys.time () > d | None -> false
    then begin
      timed_out := true;
      stop := true
    end
    else begin
      (* Supervision: publish liveness and honour a deadline cancellation
         at every step — the cost is one atomic increment and one load. *)
      (match config.cancel with
      | Some token ->
        Diag.Cancel.beat token;
        Diag.Cancel.check token ~name:fname
      | None -> ());
      (match trip_after with
      | Some n when fuel_limit - !fuel >= n ->
        raise
          (Diag.Fault.Injected
             (Printf.sprintf "injected trip after %d steps in %s" n fname))
      | _ -> ());
      decr fuel;
      let progressed =
        if config.flow_first then take_flow () || take_ssa ()
        else take_ssa () || take_flow ()
      in
      ignore progressed
    end
  done;
  let fuel_spent = fuel_limit - !fuel in
  if !exhausted then begin
    Vrp_ranges.Counters.record_fuel_exhaustion ();
    if starved then
      diag st Diag.Info Diag.Fault_injected "fuel starved by injected fault";
    diag st Diag.Warning Diag.Budget_exhausted
      (Printf.sprintf
         "fuel exhausted after %d steps (%d flow / %d ssa items pending); \
          results are partial"
         fuel_spent
         (Queue.length st.flow_list)
         (Queue.length st.ssa_list))
  end;
  if !timed_out then begin
    if forced_timeout then
      diag st Diag.Info Diag.Fault_injected "timeout tripped by injected fault";
    diag st Diag.Warning Diag.Timeout
      (Printf.sprintf
         "wall-clock limit hit after %d steps; results are partial" fuel_spent)
  end;
  (* Symbolic algebra v2, post-fixpoint pass: harvest the converged ranges
     into the fact environment, then try to prove fallback branches one-way.
     Only fallback branches are touched — a range-derived probability is
     never overridden — and only on converged runs, since mid-run ranges are
     transient and unsound to cite as facts. Building the fact context is
     the expensive part, so it is deferred until the first candidate: a
     function whose branches all converged to range-derived probabilities
     pays nothing for having the algebra enabled. *)
  (if config.symbolic && config.algebra && (not !exhausted) && not !timed_out
   then
     Vrp_obs.Trace.with_span "algebra" ~args:[ ("fn", fname) ] @@ fun () ->
     let alg = ref None in
     let the_alg () =
       match !alg with
       | Some a -> a
       | None ->
         let a = Alg.make fn in
         Alg.add_range_facts a ~values:st.vals;
         alg := Some a;
         a
     in
     Ir.iter_blocks fn (fun b ->
         if st.svisited.(b.Ir.bid) then
           match b.Ir.term with
           | Ir.Br { rel; ba; bb; _ }
             when Option.value ~default:false
                    (Hashtbl.find_opt st.bfallback b.Ir.bid) -> (
             match Alg.decide_branch (the_alg ()) ~bid:b.Ir.bid rel ba bb with
             | Some taken ->
               diag st ~block:b.Ir.bid Diag.Info Diag.Note
                 (Printf.sprintf "branch proved %s-way by algebraic facts"
                    (if taken then "true" else "false"));
               Hashtbl.replace st.bprobs b.Ir.bid (if taken then 1.0 else 0.0);
               Hashtbl.replace st.bfallback b.Ir.bid false
             | None -> ())
           | Ir.Br _ | Ir.Jump _ | Ir.Ret _ -> ()));
  (* Collect the merged return value over executable returns. *)
  let returns = ref [] in
  Ir.iter_blocks fn (fun b ->
      if st.svisited.(b.Ir.bid) then
        match b.Ir.term with
        | Ir.Ret (Some op) ->
          let v =
            Value.purely_numeric (resolve st (operand_value st ~symbolic_copy:false op))
          in
          returns := (1.0, v) :: !returns
        | Ir.Ret None | Ir.Jump _ | Ir.Br _ -> ());
  let return_value =
    match !returns with [] -> Value.bottom | parts -> Value.union_weighted parts
  in
  (* Deliberately unsound off-by-one behind fault injection: shrink every
     multi-element numeric range's upper bound by one stride, so e.g. a loop
     counter's final value escapes its reported range. The fuzzing oracles
     must detect this skew from observed execution. *)
  (match config.fault with
  | Some (Diag.Fault.Skew_range f) when String.equal f fname ->
    diag st Diag.Info Diag.Fault_injected "final ranges skewed by injected fault";
    Array.iteri
      (fun i v ->
        match v with
        | Value.Ranges rs ->
          let skew (r : Vrp_ranges.Srange.t) =
            if Vrp_ranges.Srange.is_numeric r && not (Vrp_ranges.Srange.is_singleton r)
            then
              let hi = Vrp_ranges.Sym.add_const r.hi (-max 1 r.stride) in
              match Vrp_ranges.Srange.make ~p:r.p ~lo:r.lo ~hi ~stride:r.stride with
              | Some r' -> r'
              | None -> r
            else r
          in
          st.vals.(i) <- Value.Ranges (List.map skew rs)
        | Value.Top | Value.Bottom -> ())
      st.vals
  | _ -> ());
  {
    fn;
    values = st.vals;
    branch_probs = st.bprobs;
    branch_fallback = st.bfallback;
    visited = st.svisited;
    evaluations = st.evals;
    calls_seen =
      (* Sorted by site (block, index): callers of this list — jump-function
         accumulation, frequency relaxation, cache digests — must see a
         canonical order, not hash-table layout. *)
      List.sort
        (fun ((a : int * int), _) (b, _) -> compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.calls []);
    return_value;
    fuel_limit;
    fuel_spent;
    fuel_exhausted = !exhausted;
    timed_out = !timed_out;
    widenings = st.widenings;
  }

(* Per-run observability around the core fixpoint: a counter + duration
   histogram in the registry and a scoped span (parent-linked under the
   caller's pipeline/interproc spans) when tracing is enabled. None of it
   touches analysis state, so results are byte-identical either way. *)
let runs_total =
  Vrp_obs.Metrics.counter ~help:"Engine analyze runs (one per function)"
    "vrp_engine_runs_total"

let run_seconds =
  Vrp_obs.Metrics.histogram ~help:"Engine analyze duration in seconds"
    "vrp_engine_run_seconds"

let analyze ?config ?report ?call_oracle ?param_values (fn : Ir.fn) : t =
  Vrp_obs.Metrics.inc runs_total;
  Vrp_obs.Metrics.time run_seconds (fun () ->
      Vrp_obs.Trace.with_span "engine" ~args:[ ("fn", fn.Ir.fname) ] (fun () ->
          analyze_body ?config ?report ?call_oracle ?param_values fn))
