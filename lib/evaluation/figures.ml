(** Regeneration of every figure in the paper's evaluation.

    - {!fig4}: the worked example's final ranges and branch probabilities
      (paper Figure 4);
    - {!fig5_6}: expression evaluations and evaluation sub-operations versus
      program size (Figures 5 and 6), over the suite plus generated
      programs;
    - {!fig7_8}: cumulative error curves for both suites, unweighted and
      execution-weighted, across the six predictors (Figures 7 and 8). *)

module Ir = Vrp_ir.Ir
module Interp = Vrp_profile.Interp
module Engine = Vrp_core.Engine
module Pipeline = Vrp_core.Pipeline
module Suite = Vrp_suite.Suite

(* --- Figure 4: the worked example --- *)

(** The paper's Figure 2 program, verbatim in MiniC. *)
let figure2_source =
  {|
int main(int n, int seed) {
  int y = 0;
  int acc = 0;
  for (int x = 0; x < 10; x++) {
    if (x > 7) { y = 1; } else { y = x; }
    if (y == 1) { acc = acc + 1; }
  }
  return acc;
}
|}

type fig4 = {
  ranges : (string * string) list;  (** variable name -> final range *)
  branch_probs : (string * float) list;  (** branch description -> P(taken) *)
}

let fig4 () : fig4 =
  let c = Pipeline.compile figure2_source in
  let fn = List.hd c.Pipeline.ssa.Ir.fns in
  let res = Engine.analyze fn in
  let ranges = ref [] in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun instr ->
          match instr with
          | Ir.Def (v, _) ->
            ranges :=
              (Vrp_ir.Var.to_string v, Vrp_ranges.Value.to_string res.Engine.values.(v.Vrp_ir.Var.id))
              :: !ranges
          | Ir.Store _ -> ())
        b.Ir.instrs);
  let branch_probs = ref [] in
  Ir.iter_blocks fn (fun b ->
      match b.Ir.term with
      | Ir.Br br -> (
        match Engine.branch_prob res b.Ir.bid with
        | Some p ->
          let desc =
            Printf.sprintf "%s %s %s" (Ir.operand_to_string br.ba)
              (Vrp_lang.Ast.relop_to_string br.rel)
              (Ir.operand_to_string br.bb)
          in
          branch_probs := (desc, p) :: !branch_probs
        | None -> ())
      | Ir.Jump _ | Ir.Ret _ -> ());
  { ranges = List.rev !ranges; branch_probs = List.rev !branch_probs }

(* --- Figures 5 and 6: complexity study --- *)

type complexity_point = {
  label : string;
  instructions : int;
  evaluations : int;  (** Figure 5 y-axis *)
  sub_operations : int;  (** Figure 6 y-axis *)
}

(** Analyse one program and record its complexity metrics. *)
let complexity_of ~label (ssa : Ir.program) : complexity_point =
  let evaluations, counters =
    Vrp_ranges.Counters.with_counters (fun () ->
        List.fold_left
          (fun acc fn ->
            let res = Engine.analyze fn in
            acc + res.Engine.evaluations)
          0 ssa.Ir.fns)
  in
  {
    label;
    instructions = Ir.program_size ssa;
    evaluations;
    sub_operations = counters.Vrp_ranges.Counters.sub_ops;
  }

(** The complexity sweep: every suite benchmark plus generated programs of
    increasing size (12 sizes by default, up to roughly 50k instructions). *)
let fig5_6 ?(sizes = [ 2; 4; 8; 16; 24; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024 ]) () :
    complexity_point list =
  let suite_points =
    List.map
      (fun (b : Suite.benchmark) ->
        let c = Pipeline.compile b.Suite.source in
        complexity_of ~label:b.Suite.name c.Pipeline.ssa)
      Suite.benchmarks
  in
  let synth_points =
    List.map
      (fun units ->
        let src = Vrp_suite.Synth.generate ~units ~seed:(units * 7) () in
        let c = Pipeline.compile src in
        complexity_of ~label:(Printf.sprintf "synth-%d" units) c.Pipeline.ssa)
      sizes
  in
  suite_points @ synth_points

(** Least-squares fit of a complexity metric against instruction count:
    (intercept, slope, r²). The paper's claim is linearity in practice. *)
let linear_fit (points : complexity_point list) ~(metric : complexity_point -> int) =
  Vrp_util.Stats.least_squares
    (List.map
       (fun p -> (float_of_int p.instructions, float_of_int (metric p)))
       points)

(* --- Figures 7 and 8: prediction accuracy --- *)

type accuracy_result = {
  suite : Suite.category;
  weighted : bool;
  curves : (string * float list) list;  (** predictor name -> cumulative curve *)
  mean_errors : (string * float) list;  (** predictor name -> mean |error| pp *)
}

(** Benchmarks measured individually; per-suite curves average the
    per-benchmark curves with equal weight. *)
let accuracy ?(category : Suite.category option) () : accuracy_result list =
  let selected =
    match category with
    | Some c -> Suite.by_category c
    | None -> Suite.benchmarks
  in
  (* Per-benchmark, per-predictor error populations. *)
  let per_bench =
    List.map
      (fun (b : Suite.benchmark) ->
        let c = Pipeline.compile b.Suite.source in
        let train = (Interp.run c.Pipeline.ssa ~args:b.Suite.train_args).Interp.profile in
        let observed = (Interp.run c.Pipeline.ssa ~args:b.Suite.ref_args).Interp.profile in
        let fallback = Vrp_learn.Infer.fallback (Lazy.force Vrp_learn.Infer.default) in
        let predictors = Pipeline.all_predictors ~fallback ~train c.Pipeline.ssa in
        ( b,
          List.map
            (fun (name, prediction) ->
              (name, Error_analysis.branch_errors ~observed prediction))
            predictors ))
      selected
  in
  let predictor_names =
    match per_bench with
    | (_, preds) :: _ -> List.map fst preds
    | [] -> []
  in
  let categories =
    match category with Some c -> [ c ] | None -> [ Suite.Int_suite; Suite.Fp_suite ]
  in
  List.concat_map
    (fun cat ->
      let benches = List.filter (fun ((b : Suite.benchmark), _) -> b.Suite.category = cat) per_bench in
      List.map
        (fun weighted ->
          let curves =
            List.map
              (fun pname ->
                let per_bench_curves =
                  List.map
                    (fun (_, preds) ->
                      Error_analysis.curve ~weighted (List.assoc pname preds))
                    benches
                in
                (pname, Error_analysis.average_curves per_bench_curves))
              predictor_names
          in
          let mean_errors =
            List.map
              (fun pname ->
                let per_bench_means =
                  List.map
                    (fun (_, preds) ->
                      Error_analysis.mean_error ~weighted (List.assoc pname preds))
                    benches
                in
                (pname, Vrp_util.Stats.mean per_bench_means))
              predictor_names
          in
          { suite = cat; weighted; curves; mean_errors })
        [ false; true ])
    categories

(* --- Text rendering shared by the bench harness and the CLI --- *)

let render_fig4 (f : fig4) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Value Ranges\n";
  List.iter
    (fun (v, r) -> Buffer.add_string buf (Printf.sprintf "  %-8s %s\n" v r))
    f.ranges;
  Buffer.add_string buf "Branch Probabilities\n";
  List.iter
    (fun (d, p) -> Buffer.add_string buf (Printf.sprintf "  %-12s %3.0f%%\n" d (100.0 *. p)))
    f.branch_probs;
  Buffer.contents buf

let render_complexity (points : complexity_point list) ~(metric : complexity_point -> int)
    ~(metric_name : string) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "# %-12s %14s %14s\n" "program" "instructions" metric_name);
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %14d %14d\n" p.label p.instructions (metric p)))
    (List.sort (fun a b -> Int.compare a.instructions b.instructions) points);
  let intercept, slope, r2 = linear_fit points ~metric in
  Buffer.add_string buf
    (Printf.sprintf "  least-squares: %s = %.2f + %.3f * instructions (r^2 = %.4f)\n"
       metric_name intercept slope r2);
  Buffer.contents buf

let render_accuracy (r : accuracy_result) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s suite, %s\n"
       (String.uppercase_ascii (Suite.category_to_string r.suite))
       (if r.weighted then "weighted by execution count" else "unweighted"));
  Buffer.add_string buf "  margin";
  List.iter (fun (name, _) -> Buffer.add_string buf (Printf.sprintf " %12s" name)) r.curves;
  Buffer.add_char buf '\n';
  List.iteri
    (fun i margin ->
      Buffer.add_string buf (Printf.sprintf "  <%-5d" margin);
      List.iter
        (fun (_, curve) -> Buffer.add_string buf (Printf.sprintf " %12.1f" (List.nth curve i)))
        r.curves;
      Buffer.add_char buf '\n')
    Error_analysis.margins;
  Buffer.add_string buf "  mean |error| (pp):";
  List.iter
    (fun (name, e) -> Buffer.add_string buf (Printf.sprintf "  %s=%.1f" name e))
    r.mean_errors;
  Buffer.add_char buf '\n';
  Buffer.contents buf
