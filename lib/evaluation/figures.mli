(** Regeneration of every figure in the paper's evaluation: the Figure 4
    worked example, the Figure 5/6 complexity study, and the Figure 7/8
    accuracy curves. *)

module Suite = Vrp_suite.Suite

(** The paper's Figure 2 program, verbatim in MiniC. *)
val figure2_source : string

type fig4 = {
  ranges : (string * string) list;  (** variable name -> final range *)
  branch_probs : (string * float) list;  (** branch description -> P(taken) *)
}

val fig4 : unit -> fig4

type complexity_point = {
  label : string;
  instructions : int;
  evaluations : int;  (** Figure 5 y-axis *)
  sub_operations : int;  (** Figure 6 y-axis *)
}

(** The complexity sweep: every suite benchmark plus generated programs of
    increasing size. *)
val fig5_6 : ?sizes:int list -> unit -> complexity_point list

(** Least-squares fit of a metric against instruction count:
    [(intercept, slope, r²)]. *)
val linear_fit :
  complexity_point list -> metric:(complexity_point -> int) -> float * float * float

type accuracy_result = {
  suite : Suite.category;
  weighted : bool;
  curves : (string * float list) list;  (** predictor -> cumulative curve *)
  mean_errors : (string * float) list;  (** predictor -> mean |error| pp *)
}

(** Figures 7/8 data: per-suite, unweighted and weighted. Omitting
    [category] measures both suites. The predictor set includes the
    "vrp+learned" column — VRP with the embedded default learned model as
    its fallback tier ({!Vrp_learn.Infer.default}). *)
val accuracy : ?category:Suite.category -> unit -> accuracy_result list

val render_fig4 : fig4 -> string

val render_complexity :
  complexity_point list -> metric:(complexity_point -> int) -> metric_name:string -> string

val render_accuracy : accuracy_result -> string
