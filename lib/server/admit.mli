(** Admission control for the serving stack: bounded connections, bounded
    in-flight work, and the shed ladder both daemons (vrpd and the fleet
    front door) climb under overload.

    The contract, from the outside in:

    - {e Connections} are bounded by [max_conns]. The accept loop calls
      {!try_conn} right after [accept]; a refusal means the connection is
      answered with one structured [busy] frame (carrying [retry_after_ms])
      and closed without ever spawning a handler thread — accept-then-shed,
      so the client learns {e why} instead of seeing a hung connect.
    - {e Requests} are bounded by [max_inflight]. An analysis request that
      cannot take a slot immediately waits in a bounded queue (at most
      [max_queue] waiters, at most [queue_wait_ms] each); past either bound
      it is shed with a [busy] response. A request whose propagated
      deadline would expire before (or while) it waits is shed as
      [Expired] — work that would start already-dead is never dispatched.
    - {e Idle connections} are bounded by [idle_timeout_ms]: the accept
      loop's sweeper closes any connection stalled mid-frame (or idle
      between frames) longer than this, and reports it here.

    Shedding is load {e signalling}, not failure: the busy response's
    [retry_after_ms] scales with queue depth, and {!Client.request_retry}
    honors it, so shed idempotent requests transparently retry — against
    the same daemon once it drains, or against another fleet worker.

    All operations are thread-safe; one [t] is shared by the accept loop,
    its sweeper, and every connection thread. *)

type limits = {
  max_conns : int;  (** concurrent connections before accept-then-shed *)
  max_inflight : int;  (** concurrent analysis requests before queueing *)
  max_queue : int;  (** waiting requests before immediate shed *)
  queue_wait_ms : int;  (** longest a request may wait for a slot *)
  idle_timeout_ms : int;
      (** per-connection stall budget enforced by the sweeper and by
          [SO_RCVTIMEO]/[SO_SNDTIMEO]; [0] disables idle sweeping *)
}

(** 1024 connections, 64 in-flight, 256 queued, 1s queue wait, 10s idle
    timeout. *)
val default_limits : limits

type counters = {
  mutable admitted : int;  (** requests that took an in-flight slot *)
  mutable shed_conns : int;  (** connections refused at accept *)
  mutable shed_requests : int;  (** requests shed at the queue *)
  mutable expired : int;  (** requests shed because their deadline passed *)
  mutable idle_closed : int;  (** connections closed by the idle sweeper *)
  mutable peak_inflight : int;
}

type t

val create : ?limits:limits -> unit -> t
val limits : t -> limits

(** Snapshot of the counters (taken under the lock). *)
val counters : t -> counters

val inflight : t -> int
val queued : t -> int
val conns : t -> int

(** Take a connection slot. [false] means the caller must shed: answer one
    busy frame and close. *)
val try_conn : t -> bool

(** Release a connection slot taken by {!try_conn}. *)
val conn_closed : t -> unit

(** Record a connection closed by the idle sweeper. *)
val note_idle_closed : t -> unit

(** The backoff hint stamped into busy responses: grows with the current
    queue depth, bounded, deterministic given the load. *)
val retry_after_ms : t -> int

type admission =
  | Admitted  (** slot taken; the caller must {!release} *)
  | Shed of int  (** over capacity; the argument is the retry-after hint *)
  | Expired  (** the request's deadline passed before a slot freed *)

(** [admit t ?deadline ()] takes an in-flight slot, waiting in the bounded
    queue if needed. [deadline] is an absolute [Unix.gettimeofday] instant:
    the wait never outlives it, and a request already past it is shed as
    [Expired] without waiting. *)
val admit : t -> ?deadline:float -> unit -> admission

(** Release an in-flight slot taken by a successful {!admit}. *)
val release : t -> unit

(** One status line, e.g.
    [admission: 2 inflight (peak 4), 0 queued, 3 shed (2 conns, 1 requests), 1 expired, 2 idle-closed]. *)
val counters_line : t -> string
