(** Admission control: bounded connections and in-flight work (see the
    interface). *)

type limits = {
  max_conns : int;
  max_inflight : int;
  max_queue : int;
  queue_wait_ms : int;
  idle_timeout_ms : int;
}

let default_limits =
  {
    max_conns = 1024;
    max_inflight = 64;
    max_queue = 256;
    queue_wait_ms = 1000;
    idle_timeout_ms = 10_000;
  }

type counters = {
  mutable admitted : int;
  mutable shed_conns : int;
  mutable shed_requests : int;
  mutable expired : int;
  mutable idle_closed : int;
  mutable peak_inflight : int;
}

type t = {
  limits : limits;
  lock : Mutex.t;
  mutable n_conns : int;
  mutable n_inflight : int;
  mutable n_queued : int;
  c : counters;
}

(* Registry mirrors, bumped at the same sites as the in-record counters so
   the Prometheus exposition and [counters_line] always agree. *)
let obs_admitted =
  Vrp_obs.Metrics.counter ~help:"Requests admitted through the gate"
    "vrpd_admission_admitted_total"

let obs_shed_conns =
  Vrp_obs.Metrics.counter ~help:"Connections shed at the accept gate"
    "vrpd_admission_shed_conns_total"

let obs_shed_requests =
  Vrp_obs.Metrics.counter ~help:"Requests shed with a busy response"
    "vrpd_admission_shed_requests_total"

let obs_expired =
  Vrp_obs.Metrics.counter ~help:"Requests shed because their deadline expired before dispatch"
    "vrpd_admission_expired_total"

let obs_idle_closed =
  Vrp_obs.Metrics.counter ~help:"Idle connections closed by the sweeper"
    "vrpd_admission_idle_closed_total"

let obs_inflight =
  Vrp_obs.Metrics.gauge ~help:"Requests currently holding an in-flight slot"
    "vrpd_inflight"

let obs_peak_inflight =
  Vrp_obs.Metrics.gauge ~help:"Peak concurrent in-flight requests"
    "vrpd_peak_inflight"

let create ?(limits = default_limits) () =
  {
    limits;
    lock = Mutex.create ();
    n_conns = 0;
    n_inflight = 0;
    n_queued = 0;
    c =
      {
        admitted = 0;
        shed_conns = 0;
        shed_requests = 0;
        expired = 0;
        idle_closed = 0;
        peak_inflight = 0;
      };
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let limits t = t.limits

let counters t =
  locked t (fun () ->
      {
        admitted = t.c.admitted;
        shed_conns = t.c.shed_conns;
        shed_requests = t.c.shed_requests;
        expired = t.c.expired;
        idle_closed = t.c.idle_closed;
        peak_inflight = t.c.peak_inflight;
      })

let inflight t = locked t (fun () -> t.n_inflight)
let queued t = locked t (fun () -> t.n_queued)
let conns t = locked t (fun () -> t.n_conns)

(* --- Connection slots --- *)

let try_conn t =
  locked t (fun () ->
      if t.n_conns < t.limits.max_conns then begin
        t.n_conns <- t.n_conns + 1;
        true
      end
      else begin
        t.c.shed_conns <- t.c.shed_conns + 1;
        Vrp_obs.Metrics.inc obs_shed_conns;
        false
      end)

let conn_closed t = locked t (fun () -> t.n_conns <- max 0 (t.n_conns - 1))
let note_idle_closed t =
  locked t (fun () ->
      t.c.idle_closed <- t.c.idle_closed + 1;
      Vrp_obs.Metrics.inc obs_idle_closed)

(* --- Request slots --- *)

(* The hint grows with queue depth so a deeper backlog spreads retries
   further apart; bounded so a shed client never waits out of proportion to
   the queue it would have stood in. *)
let retry_after_locked t = min 1000 (25 * (1 + t.n_queued))
let retry_after_ms t = locked t (fun () -> retry_after_locked t)

type admission = Admitted | Shed of int | Expired

let take_slot_locked t =
  t.n_inflight <- t.n_inflight + 1;
  t.c.admitted <- t.c.admitted + 1;
  Vrp_obs.Metrics.inc obs_admitted;
  Vrp_obs.Metrics.set obs_inflight (float_of_int t.n_inflight);
  if t.n_inflight > t.c.peak_inflight then begin
    t.c.peak_inflight <- t.n_inflight;
    Vrp_obs.Metrics.set obs_peak_inflight (float_of_int t.c.peak_inflight)
  end

(* OCaml's Condition has no timed wait, so queued requests poll for a slot
   at a 2ms period — coarse enough to cost nothing, fine enough that the
   queue drains at request (not deadline) granularity. *)
let admit t ?deadline () =
  let now = Unix.gettimeofday () in
  let expired_at now = match deadline with Some d -> now > d | None -> false in
  if expired_at now then
    locked t (fun () ->
        t.c.expired <- t.c.expired + 1;
        Vrp_obs.Metrics.inc obs_expired;
        Expired)
  else
    let verdict =
      locked t (fun () ->
          if t.n_inflight < t.limits.max_inflight then begin
            take_slot_locked t;
            `Admitted
          end
          else if t.n_queued >= t.limits.max_queue then begin
            t.c.shed_requests <- t.c.shed_requests + 1;
            Vrp_obs.Metrics.inc obs_shed_requests;
            `Shed (retry_after_locked t)
          end
          else begin
            t.n_queued <- t.n_queued + 1;
            let give_up = now +. (float_of_int t.limits.queue_wait_ms /. 1000.) in
            `Wait (match deadline with Some d -> Float.min give_up d | None -> give_up)
          end)
    in
    match verdict with
    | `Admitted -> Admitted
    | `Shed ms -> Shed ms
    | `Wait give_up ->
      let rec wait () =
        Thread.delay 0.002;
        let now = Unix.gettimeofday () in
        match
          locked t (fun () ->
              if t.n_inflight < t.limits.max_inflight then begin
                t.n_queued <- t.n_queued - 1;
                take_slot_locked t;
                Some Admitted
              end
              else if now > give_up then begin
                t.n_queued <- t.n_queued - 1;
                if expired_at now then begin
                  t.c.expired <- t.c.expired + 1;
                  Vrp_obs.Metrics.inc obs_expired;
                  Some Expired
                end
                else begin
                  t.c.shed_requests <- t.c.shed_requests + 1;
                  Vrp_obs.Metrics.inc obs_shed_requests;
                  Some (Shed (retry_after_locked t))
                end
              end
              else None)
        with
        | Some verdict -> verdict
        | None -> wait ()
      in
      wait ()

let release t =
  locked t (fun () ->
      t.n_inflight <- max 0 (t.n_inflight - 1);
      Vrp_obs.Metrics.set obs_inflight (float_of_int t.n_inflight))

let counters_line t =
  locked t (fun () ->
      Printf.sprintf
        "admission: %d inflight (peak %d), %d queued, %d shed (%d conns, %d requests), %d expired, %d idle-closed"
        t.n_inflight t.c.peak_inflight t.n_queued
        (t.c.shed_conns + t.c.shed_requests)
        t.c.shed_conns t.c.shed_requests t.c.expired t.c.idle_closed)
