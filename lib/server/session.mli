(** Per-client analysis sessions and incremental re-analysis planning.

    A session names a client's working set across requests: the function
    digests of each source it has submitted and a private warm summary
    cache. When the session re-submits an edited source, {!plan} diffs the
    new structural digests against the previous submission and classifies
    every function:

    - {e changed}: its SSA digest differs (or it is new) — must re-analyze;
    - {e dirty}: changed, or reachable from a changed function in the call
      graph — its SCC wave is downstream of an edit, so its analysis inputs
      (argument ranges from callers, return ranges from callees) may have
      moved. Only these waves should re-run;
    - {e reused}: everything else — served from the session's warm cache.

    The plan is the {e predicted} invalidation; the content-addressed cache
    remains the ground truth (a dirty function whose inputs happen not to
    move still hits). The server reports both — the plan and the request's
    exact cache-counter delta — so tests can pin "a one-function edit
    re-runs only affected SCC waves".

    Each session serializes its own analyses under {!with_lock}, which is
    what makes the counter delta exact; different sessions run freely in
    parallel. *)

module Ir = Vrp_ir.Ir
module Summary_cache = Vrp_cache.Summary_cache

type t
(** The session table; safe for concurrent use from connection threads. *)

type session

(** [create ~max_sessions ()] bounds the table (default 512): admitting a
    new session at capacity evicts the least-recently-used one, so clients
    minting fresh session ids cannot grow daemon memory without bound. An
    evicted session's in-flight request completes on the detached record;
    only its warm cache and digests are lost. *)
val create : ?max_sessions:int -> unit -> t

(** Find [id]'s session, creating it on first use. *)
val find_or_create : t -> string -> session

(** Drop a session, releasing its cache. True when it existed. *)
val drop : t -> string -> bool

val count : t -> int

(** Session ids, sorted. *)
val ids : t -> string list

(** Evict every session's cache memory tier; total entries dropped. *)
val evict_all : t -> int

val id : session -> string

(** The session's private summary cache (memory tier only). *)
val cache : session -> Summary_cache.t

(** Serialize a request against this session (analyses and counter
    accounting run inside). *)
val with_lock : session -> (unit -> 'a) -> 'a

type plan = {
  fresh : bool;  (** first submission under this source name *)
  functions : int;  (** functions in the submitted program *)
  changed : string list;  (** new or digest-differing functions, sorted *)
  dirty : string list;  (** changed + call-graph descendants, sorted *)
  reused : string list;  (** the rest — expected warm-cache hits, sorted *)
}

(** Diff [program] against the session's previous submission under [name]
    and record the new digests. Call under {!with_lock}. *)
val plan : session -> name:string -> Ir.program -> plan
